// Command vpic-bench regenerates the paper's macro-benchmark figures
// (Figures 11 and 12): a synthetic VPIC particle dump is loaded into both
// KV-CSD and the RocksDB-like baseline, a secondary index is built on the
// kinetic-energy attribute, and energy-threshold queries run at several
// selectivity levels.
//
// Usage:
//
//	vpic-bench                      # both figures at default scale
//	vpic-bench -fig 12 -scale 4     # Figure 12 with 4x more particles
//	vpic-bench -particles 65536     # particles per file, explicitly
//	vpic-bench -json-dir out/       # BENCH_11/12.json for bench-compare
package main

import (
	"flag"
	"fmt"
	"os"

	"kvcsd/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 11, 12, all")
	scale := flag.Int("scale", 1, "multiply dataset sizes by this factor")
	particles := flag.Int("particles", 0, "particles per file (overrides -scale for the dataset)")
	files := flag.Int("files", 0, "number of particle files (default 16, as the paper)")
	seed := flag.Int64("seed", 1, "simulation seed")
	jsonDir := flag.String("json-dir", "", "also write each figure as DIR/BENCH_<fig>.json for bench-compare")
	flag.Parse()

	s := bench.DefaultScale().Multiply(*scale)
	s.Seed = *seed
	if *particles > 0 {
		s.VPICParticlesPerFile = *particles
	}
	if *files > 0 {
		s.VPICFiles = *files
	}

	fmt.Fprintf(os.Stderr, "vpic-bench: %d files x %d particles (%d total, %.1f MiB)\n",
		s.VPICFiles, s.VPICParticlesPerFile, s.VPICFiles*s.VPICParticlesPerFile,
		float64(s.VPICFiles*s.VPICParticlesPerFile*48)/(1<<20))

	res, err := bench.RunMacro(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpic-bench: %v\n", err)
		os.Exit(1)
	}
	emit := func(figID string, t *bench.Table, keys ...string) {
		if *jsonDir == "" {
			return
		}
		path, err := bench.WriteTrajectory(*jsonDir, bench.TrajectoryFromTable(figID, bench.ClockVirtual, s, t, keys...))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpic-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "vpic-bench: wrote %s\n", path)
	}
	switch *fig {
	case "11":
		res.Fig11.Print(os.Stdout)
		emit("11", res.Fig11, "engine")
	case "12":
		res.Fig12.Print(os.Stdout)
		emit("12", res.Fig12, "selectivity_pct")
	case "all":
		res.Fig11.Print(os.Stdout)
		res.Fig12.Print(os.Stdout)
		emit("11", res.Fig11, "engine")
		emit("12", res.Fig12, "selectivity_pct")
	default:
		fmt.Fprintf(os.Stderr, "vpic-bench: unknown -fig %q (try 11, 12, all)\n", *fig)
		os.Exit(2)
	}
}
