// Command kvcsd-server exposes a simulated KV-CSD device (or a sharded
// multi-device array) over TCP using the kvcsd wire protocol. Remote
// clients (internal/remote, kvcsd-cli -addr) connect and drive the same
// key-value verbs the in-process client offers: keyspace lifecycle, puts,
// gets, scans, deferred compaction, secondary-index queries, stats, and
// fault injection (power-cut / recover).
//
// The simulation behind the listener is deterministic: the same -seed
// always produces the same virtual cluster. Wall-clock arrival order of
// requests decides batching, so end-to-end timings are not bit-reproducible
// across runs — see DESIGN.md for the clock-boundary discussion.
//
// Usage:
//
//	kvcsd-server                                 # one device on 127.0.0.1:7411
//	kvcsd-server -addr :9000 -devices 4 -replicas 2
//	kvcsd-server -max-inflight 512 -pipeline 128
//	kvcsd-server -telemetry 127.0.0.1:7412       # /metrics, /healthz, pprof
//	kvcsd-server -slow-op 500us                  # log ops over a virtual-time budget
//	kvcsd-server -tenant-weights "analytics=8,batch=1" -tenant-queue 8
//	                                             # multi-tenant QoS admission
//
// SIGINT/SIGTERM drains in-flight requests, shuts the simulated devices
// down cleanly, and prints the per-opcode RPC metrics table.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kvcsd/internal/array"
	"kvcsd/internal/device"
	"kvcsd/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7411", "listen address (host:port)")
		devices     = flag.Int("devices", 1, "devices in the simulated cluster (>1 serves a sharded array)")
		replicas    = flag.Int("replicas", 1, "replicas per keyspace (array mode)")
		seed        = flag.Int64("seed", 1, "simulation seed (same seed = same virtual cluster)")
		maxInflight = flag.Int("max-inflight", 0, "admission cap: max requests in service before shedding (0 = default)")
		pipeline    = flag.Int("pipeline", 0, "per-connection pipeline window (0 = default)")
		noCoalesce  = flag.Bool("no-coalesce", false, "disable write coalescing of batched puts")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-drain timeout on shutdown")
		telemetry   = flag.String("telemetry", "", "serve /metrics, /healthz, /slowops and pprof on this HTTP address")
		slowOp      = flag.Duration("slow-op", 0, "flag ops whose virtual service time exceeds this budget (0 = off)")
		trace       = flag.Bool("trace", false, "record device spans (gives slow-op records their stage breakdown)")
		replicated  = flag.Bool("replicated", false, "consensus-backed keyspaces: quorum writes and read-index reads (array mode)")

		tenantQueue    = flag.Int("tenant-queue", 0, "per-tenant per-lane admission quota (0 = one tenant may fill the window)")
		tenantWeights  = flag.String("tenant-weights", "", "DRR weights per tenant, e.g. \"analytics=8,batch=1\" (others get the default weight)")
		sessionPending = flag.Int("session-pending", 0, "per-session in-flight request cap (0 = default)")
		sessionBacklog = flag.Int("session-backlog", 0, "per-session response backlog cap in bytes (0 = default)")
	)
	flag.Parse()

	cfg := server.DefaultConfig()
	if *maxInflight > 0 {
		cfg.MaxInflight = *maxInflight
	}
	if *pipeline > 0 {
		cfg.MaxPipeline = *pipeline
	}
	cfg.DisableWriteCoalescing = *noCoalesce
	cfg.DrainTimeout = *drain
	if *slowOp > 0 {
		cfg.SlowOpThreshold = *slowOp
		cfg.SlowOpLog = os.Stderr
	}

	cfg.Replicated = *replicated

	cfg.QoS.Seed = *seed
	cfg.QoS.TenantQueue = *tenantQueue
	cfg.QoS.SessionPending = *sessionPending
	cfg.QoS.BacklogBytes = *sessionBacklog
	if *tenantWeights != "" {
		cfg.QoS.Weights = map[string]int{}
		for _, kv := range strings.Split(*tenantWeights, ",") {
			name, w, ok := strings.Cut(strings.TrimSpace(kv), "=")
			n, err := strconv.Atoi(w)
			if !ok || err != nil || name == "" || n <= 0 {
				fmt.Fprintf(os.Stderr, "kvcsd-server: bad -tenant-weights entry %q (want name=weight)\n", kv)
				os.Exit(2)
			}
			cfg.QoS.Weights[name] = n
		}
	}

	var srv *server.Server
	if *devices <= 1 {
		opts := device.DefaultOptions()
		opts.Seed = *seed
		opts.Trace = *trace
		opts.Metrics = true
		srv = server.NewDevice(opts, cfg)
	} else {
		opts := array.DefaultOptions()
		opts.Devices = *devices
		opts.Replicas = *replicas
		opts.Seed = *seed
		opts.Trace = *trace
		opts.Metrics = true
		srv = server.NewArray(opts, cfg)
	}

	got, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvcsd-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("kvcsd-server: listening on %s (devices=%d replicas=%d seed=%d inflight=%d pipeline=%d)\n",
		got, *devices, *replicas, *seed, cfg.MaxInflight, cfg.MaxPipeline)
	if *telemetry != "" {
		taddr, err := srv.ServeTelemetry(*telemetry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvcsd-server: telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kvcsd-server: telemetry on http://%s (/metrics /healthz /slowops /debug/pprof)\n", taddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("kvcsd-server: %v — draining\n", s)

	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "kvcsd-server: close: %v\n", err)
	}
	fmt.Printf("kvcsd-server: RPC metrics\n")
	srv.Metrics().Dump(os.Stdout)
}
