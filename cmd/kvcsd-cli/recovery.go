// Crash-recovery subcommands: power-cut (kill a device and show degraded
// reads), recover (power-cycle a device and print the recovery scrub
// statistics), and inject-fault (arm a seeded probabilistic fault profile and
// show the router riding through it).

package main

import (
	"flag"
	"fmt"
	"time"

	"kvcsd/internal/array"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
)

func runPowerCut(cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("power-cut", flag.ContinueOnError)
	dev := fs.Int("dev", 0, "device to cut power to")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		if *dev < 0 || *dev >= cfg.devices {
			return fmt.Errorf("device %d out of range (0..%d)", *dev, cfg.devices-1)
		}
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		if err := ks.Sync(p); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		rep := a.PowerCut(p, *dev)
		fmt.Printf("power cut device %d at %v: %d in-flight appends, %d zones torn, %s destroyed\n",
			*dev, p.Now(), rep.InFlightAppends, rep.TornZones, stats.HumanBytes(rep.TornBytes))
		// Degraded reads: the router fails over to surviving replicas.
		found, failed := 0, 0
		for q := 0; q < cfg.queries; q++ {
			i := int(mix(uint64(q)^0x51A75) % uint64(maxOf(cfg.keys, 1)))
			if _, ok, err := ks.Get(p, cliKey(cfg.seed, i)); err != nil {
				failed++
			} else if ok {
				found++
			}
		}
		fmt.Printf("degraded reads: %d/%d found, %d failed (replicas=%d)\n",
			found, cfg.queries, failed, a.Options().Replicas)
		for _, h := range a.Health() {
			state := "up"
			if h.Down {
				state = "DOWN"
			}
			fmt.Printf("  device %d: %s\n", h.ID, state)
		}
		return nil
	})
}

func runRecover(cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("recover", flag.ContinueOnError)
	dev := fs.Int("dev", 0, "device to power-cycle")
	midLoad := fs.Bool("mid-load", true, "cut during load (torn writes) instead of after compaction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		if *dev < 0 || *dev >= cfg.devices {
			return fmt.Errorf("device %d out of range (0..%d)", *dev, cfg.devices-1)
		}
		ks, err := a.CreateRangeSharded(p, cfg.ksName, cfg.devices)
		if err != nil {
			return err
		}
		cutAt := cfg.keys // after the whole load
		if *midLoad {
			cutAt = cfg.keys / 2
		}
		var cutRep ssd.PowerCutReport
		for i := 0; i < cfg.keys; i++ {
			if err := ks.BulkPut(p, cliKey(cfg.seed, i), cliValue(cfg.seed, i, cfg.valueSize)); err != nil {
				return err
			}
			if i == cutAt {
				cutRep = a.PowerCut(p, *dev)
			}
		}
		if err := ks.Flush(p); err != nil {
			return err
		}
		if cutAt == cfg.keys {
			cutRep = a.PowerCut(p, *dev)
		}
		fmt.Printf("power cut device %d: %d in-flight appends, %d zones torn, %s destroyed\n",
			*dev, cutRep.InFlightAppends, cutRep.TornZones, stats.HumanBytes(cutRep.TornBytes))
		hinted := a.HintedWrites(*dev)
		t0 := p.Now()
		rep, err := a.RestartDevice(p, *dev)
		if err != nil {
			return fmt.Errorf("restart device %d: %w", *dev, err)
		}
		fmt.Printf("recovery of device %d in %v (virtual):\n", *dev, p.Now()-t0)
		fmt.Printf("  keyspaces scrubbed:  %d\n", rep.Keyspaces)
		fmt.Printf("  scrubbed bytes:      %s\n", stats.HumanBytes(rep.ScrubbedBytes))
		fmt.Printf("  repaired zones:      %d\n", rep.RepairedZones)
		fmt.Printf("  torn records:        %d\n", rep.TornRecords)
		fmt.Printf("  recovered frames:    %d (%s)\n", rep.RecoveredFrames, stats.HumanBytes(rep.RecoveredBytes))
		fmt.Printf("  lost bytes:          %s\n", stats.HumanBytes(rep.LostBytes))
		fmt.Printf("  orphan zones swept:  %d\n", rep.OrphanZones)
		fmt.Printf("  hinted writes replayed: %d\n", hinted)
		if err := ks.Sync(p); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		found := 0
		for q := 0; q < cfg.queries; q++ {
			i := int(mix(uint64(q)^0x51A75) % uint64(maxOf(cfg.keys, 1)))
			if _, ok, err := ks.Get(p, cliKey(cfg.seed, i)); err != nil {
				return err
			} else if ok {
				found++
			}
		}
		fmt.Printf("post-recovery queries: %d/%d found\n", found, cfg.queries)
		return nil
	})
}

func runInjectFault(cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("inject-fault", flag.ContinueOnError)
	dev := fs.Int("dev", 0, "device to arm the fault profile on")
	kind := fs.String("kind", "zone-read", "operation kind: zone-read, zone-write, block-read, block-write")
	errRate := fs.Float64("error-rate", 0.05, "probability a matching op fails")
	latRate := fs.Float64("latency-rate", 0.0, "probability a matching op pays extra latency")
	extra := fs.Duration("extra-latency", time.Millisecond, "latency added when a latency fault fires")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		if *dev < 0 || *dev >= cfg.devices {
			return fmt.Errorf("device %d out of range (0..%d)", *dev, cfg.devices-1)
		}
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		a.Member(*dev).Dev.SetFaultProfile(&ssd.FaultProfile{
			Seed:         cfg.seed,
			ErrorRate:    map[string]float64{*kind: *errRate},
			LatencyRate:  map[string]float64{*kind: *latRate},
			ExtraLatency: *extra,
		})
		fmt.Printf("armed fault profile on device %d: kind=%s error-rate=%.3f latency-rate=%.3f extra=%v\n",
			*dev, *kind, *errRate, *latRate, *extra)
		t0 := p.Now()
		found, errs := 0, 0
		for q := 0; q < cfg.queries; q++ {
			i := int(mix(uint64(q)^0x51A75) % uint64(maxOf(cfg.keys, 1)))
			if _, ok, err := ks.Get(p, cliKey(cfg.seed, i)); err != nil {
				errs++
			} else if ok {
				found++
			}
		}
		fmt.Printf("queries under faults: %d/%d found, %d client-visible errors in %v\n",
			found, cfg.queries, errs, p.Now()-t0)
		for _, h := range a.Health() {
			state := "up"
			if h.Down {
				state = "DOWN"
			}
			fmt.Printf("  device %d: %s (consecutive failures: %d)\n", h.ID, state, h.Failures)
		}
		return nil
	})
}
