package main

import (
	"errors"
	"flag"
	"fmt"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/remote"
	"kvcsd/internal/stats"
	"kvcsd/internal/wire"
)

// runRemote dispatches a subcommand against a running kvcsd-server instead
// of an in-process simulation. Unlike local mode there is no preload: the
// commands operate on whatever state the server already holds, so a
// sequence like `put` then `get` against the same server actually round
// trips through the device.
func runRemote(cfg cliConfig, cmd string, args []string) error {
	switch cmd {
	case "session", "inject-fault":
		return fmt.Errorf("%s is not supported in remote mode (run it locally without -addr)", cmd)
	}

	opts := remote.DefaultOptions()
	opts.Tenant = cfg.tenant
	c, err := remote.Dial(cfg.addr, opts)
	if err != nil {
		return err
	}
	defer c.Close()

	switch cmd {
	case "put":
		return remotePut(c, cfg, args)
	case "get":
		return remoteGet(c, cfg, args)
	case "scan":
		return remoteScan(c, cfg, args)
	case "compact":
		return remoteCompact(c, cfg, args)
	case "delete-keyspace":
		return remoteDeleteKeyspace(c, cfg)
	case "stats":
		return remoteStats(c)
	case "power-cut":
		return remoteDeviceFault(c, cfg, args, "power-cut", c.PowerCut)
	case "recover":
		return remoteDeviceFault(c, cfg, args, "recover", c.Recover)
	case "scrub":
		return remoteScrub(c, args)
	case "corrupt":
		return remoteCorrupt(c, cfg, args)
	default:
		return fmt.Errorf("unknown remote command %q (try put, get, scan, compact, delete-keyspace, stats, power-cut, recover, scrub, corrupt)", cmd)
	}
}

// openOrCreate opens the working keyspace on the server, creating it on
// first use. Writes target new keyspaces; reads want existing state, so a
// missing keyspace is only an error for commands that need data.
func openOrCreate(c *remote.Client, cfg cliConfig) (*remote.Keyspace, error) {
	ks, err := c.OpenKeyspace(cfg.ksName)
	if err == nil {
		return ks, nil
	}
	if errors.Is(err, client.ErrNotFound) {
		if cfg.devices > 1 {
			return c.CreateRangeSharded(cfg.ksName, cfg.devices)
		}
		return c.CreateKeyspace(cfg.ksName)
	}
	return nil, err
}

func remotePut(c *remote.Client, cfg cliConfig, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: kvcsd-cli -addr host:port put <key> <value>")
	}
	key, err := parseKey(args[0])
	if err != nil {
		return err
	}
	ks, err := openOrCreate(c, cfg)
	if err != nil {
		return err
	}
	t0 := time.Now()
	if err := ks.Put(key, []byte(args[1])); err != nil {
		return err
	}
	fmt.Printf("put %q (%d bytes) into %s on %s in %v\n",
		args[0], len(args[1]), cfg.ksName, c.Addr(), time.Since(t0).Round(time.Microsecond))
	return nil
}

func remoteGet(c *remote.Client, cfg cliConfig, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: kvcsd-cli -addr host:port get <key>  (0x… for hex)")
	}
	key, err := parseKey(args[0])
	if err != nil {
		return err
	}
	ks, err := c.OpenKeyspace(cfg.ksName)
	if err != nil {
		return err
	}
	t0 := time.Now()
	val, ok, err := ks.Get(key)
	if err != nil {
		return err
	}
	if !ok {
		fmt.Printf("get %s: not found (%v)\n", args[0], time.Since(t0).Round(time.Microsecond))
		return nil
	}
	fmt.Printf("get %s: %d bytes in %v\n  value: 0x%x\n",
		args[0], len(val), time.Since(t0).Round(time.Microsecond), val)
	return nil
}

func remoteScan(c *remote.Client, cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	lo := fs.String("lo", "", "low key bound, inclusive (0x… for hex)")
	hi := fs.String("hi", "", "high key bound, exclusive (0x… for hex)")
	limit := fs.Int("limit", 20, "max pairs to return (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var loB, hiB []byte
	var err error
	if *lo != "" {
		if loB, err = parseKey(*lo); err != nil {
			return err
		}
	}
	if *hi != "" {
		if hiB, err = parseKey(*hi); err != nil {
			return err
		}
	}
	ks, err := c.OpenKeyspace(cfg.ksName)
	if err != nil {
		return err
	}
	t0 := time.Now()
	pairs, err := ks.Scan(loB, hiB, *limit)
	if err != nil {
		return err
	}
	fmt.Printf("scan %s: %d pairs in %v\n", cfg.ksName, len(pairs), time.Since(t0).Round(time.Microsecond))
	for _, kv := range pairs {
		fmt.Printf("  0x%x  (%d bytes)\n", kv.Key, len(kv.Value))
	}
	return nil
}

func remoteCompact(c *remote.Client, cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	policy := fs.String("policy", "", "install a compaction policy first: device, host, or collaborative")
	width := fs.Int("width", 0, "install a device compaction pipeline width (0 = sequential)")
	status := fs.Bool("status", false, "only report compaction progress, do not start a compaction")
	cold := fs.Bool("migrate-cold", false, "after compaction, sweep device cold tiers and report zones moved")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ccfg, set, err := compactionConfigFlags(*policy, *width)
	if err != nil {
		return err
	}
	if set {
		if ccfg, err = c.SetCompactionPolicy(ccfg); err != nil {
			return err
		}
		fmt.Printf("installed compaction config: policy=%s width=%d\n", ccfg.Policy, ccfg.PipelineWidth)
	}
	ks, err := c.OpenKeyspace(cfg.ksName)
	if err != nil {
		return err
	}
	if *status {
		pr, done, err := ks.CompactionProgress()
		if err != nil {
			return err
		}
		fmt.Printf("%s: done=%v stage=%s granules=%d/%d moved=%s runs=host:%d/device:%d occupancy=%d\n",
			cfg.ksName, done, pr.Stage, pr.GranulesDone, pr.GranulesTotal,
			stats.HumanBytes(int64(pr.BytesMoved)), pr.HostRuns, pr.DeviceRuns, pr.Occupancy)
		return nil
	}
	t0 := time.Now()
	if err := ks.Compact(); err != nil {
		return err
	}
	if err := ks.WaitCompacted(); err != nil {
		return err
	}
	info, err := ks.Info()
	if err != nil {
		return err
	}
	fmt.Printf("compacted %s in %v (wall)\n", cfg.ksName, time.Since(t0).Round(time.Microsecond))
	fmt.Printf("state=%s pairs=%d zones=%d\n", info.State, info.Pairs, info.ZoneCount)
	if pr, _, err := ks.CompactionProgress(); err == nil {
		fmt.Printf("split: host runs=%d device runs=%d bytes moved=%s\n",
			pr.HostRuns, pr.DeviceRuns, stats.HumanBytes(int64(pr.BytesMoved)))
	}
	if *cold {
		var total int64
		for dev := 0; dev < maxOf(cfg.devices, 1); dev++ {
			moved, err := c.MigrateCold(dev)
			if err != nil {
				return err
			}
			total += moved
		}
		fmt.Printf("extra cold-tier sweep: %d zones migrated (array servers already sweep inside the fleet compaction window)\n", total)
	}
	return nil
}

func remoteDeleteKeyspace(c *remote.Client, cfg cliConfig) error {
	if err := c.DeleteKeyspace(cfg.ksName); err != nil {
		return err
	}
	fmt.Printf("deleted keyspace %s on %s\n", cfg.ksName, c.Addr())
	return nil
}

func remoteStats(c *remote.Client) error {
	rep, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("server %s: %d device(s)\n", c.Addr(), rep.Devices)
	fmt.Printf("  media write: %s   media read: %s\n",
		stats.HumanBytes(rep.MediaWrite), stats.HumanBytes(rep.MediaRead))
	fmt.Printf("  host->device: %s  device->host: %s\n",
		stats.HumanBytes(rep.HostToDevice), stats.HumanBytes(rep.DeviceToHost))
	fmt.Printf("  commands: %d  app writes: %s\n", rep.Commands, stats.HumanBytes(rep.AppWrite))
	if len(rep.Health) > 0 {
		fmt.Printf("health:\n")
		for _, h := range rep.Health {
			state := "up"
			if h.Down {
				state = "DOWN"
			}
			fmt.Printf("  device %d: %s (consecutive failures: %d)\n", h.ID, state, h.Failures)
		}
	}
	if len(rep.Ring) > 0 {
		fmt.Printf("ring:\n")
		for _, e := range rep.Ring {
			leader := "-"
			if e.Leader >= 0 {
				leader = fmt.Sprintf("dev%d", e.Leader)
			}
			fmt.Printf("  %s shard %d: epoch=%d leader=%s members=%v\n",
				e.Keyspace, e.Shard, e.Epoch, leader, e.Members)
		}
	}
	if len(rep.Tenants) > 0 {
		fmt.Printf("tenants:\n")
		for _, t := range rep.Tenants {
			fmt.Printf("  %-12s weight=%-3d sessions=%-3d backlog=%s\n",
				t.Tenant, t.Weight, t.Sessions, stats.HumanBytes(t.BacklogBytes))
			for _, l := range t.Lanes {
				fmt.Printf("    %-8s admitted=%-8d completed=%-8d shed=%-6d queued=%d\n",
					wire.Lane(l.Lane), l.Admitted, l.Completed, l.Shed, l.Queued)
			}
			if n := t.ShedSession + t.ShedTenant + t.ShedGlobal + t.ShedBacklog; n > 0 {
				fmt.Printf("    shed by cause: session-cap=%d tenant-cap=%d global-cap=%d backlog-full=%d\n",
					t.ShedSession, t.ShedTenant, t.ShedGlobal, t.ShedBacklog)
			}
		}
	}
	if len(rep.Compactions) > 0 {
		fmt.Printf("compactions:\n")
		for _, row := range rep.Compactions {
			pr := row.Progress
			fmt.Printf("  %-12s stage=%-8s granules=%d/%d moved=%s runs=host:%d/device:%d occupancy=%d\n",
				row.Keyspace, pr.Stage, pr.GranulesDone, pr.GranulesTotal,
				stats.HumanBytes(int64(pr.BytesMoved)), pr.HostRuns, pr.DeviceRuns, pr.Occupancy)
		}
	}
	if r := rep.RPC; r != nil {
		fmt.Printf("rpc gateway:\n")
		fmt.Printf("  accepted: %d  shed: %d  refused: %d  bad frames: %d  slow ops: %d\n",
			r.Accepted, r.Shed, r.Refused, r.BadFrames, r.SlowOps)
		if r.Batches > 0 {
			fmt.Printf("  coalesced puts: %d into %d batches\n", r.Coalesced, r.Batches)
		}
		for _, op := range r.Ops {
			fmt.Printf("  %-16s n=%-6d errs=%-4d svc=%v virt=%v queue=%v\n",
				op.Op, op.Count, op.Errs,
				time.Duration(op.ServiceNs), time.Duration(op.VirtualNs), time.Duration(op.QueueNs))
		}
	}
	fmt.Printf("server virtual time: %v\n", time.Duration(rep.VirtualNanos))
	return nil
}

// remoteScrub runs a scrub-and-repair pass on one device of the server's
// array and prints the report (an array-level scrub repairs what it finds
// from replica copies).
func remoteScrub(c *remote.Client, args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ContinueOnError)
	dev := fs.Int("dev", 0, "target device index")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, report, err := c.Scrub(*dev)
	if err != nil {
		return err
	}
	fmt.Printf("scrub device %d on %s:\n%s\n", *dev, c.Addr(), report)
	if rep != nil {
		for _, ext := range rep.Corrupt {
			fmt.Printf("  corrupt: %s %s granule %d (zone %d)\n",
				ext.Keyspace, ext.Kind, ext.Granule, ext.Zone)
		}
	}
	return nil
}

// remoteCorrupt flips bits inside one extent granule on the server — the
// fault-injection counterpart of scrub. -ks must name the device-side shard
// ("data#p0" for range-sharded keyspaces).
func remoteCorrupt(c *remote.Client, cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("corrupt", flag.ContinueOnError)
	dev := fs.Int("dev", 0, "target device index")
	kind := fs.String("kind", "sorted", "extent kind: klog, vlog, pidx, sorted, sidx")
	index := fs.String("index", "", "secondary index name (sidx extents)")
	granule := fs.Int64("granule", 0, "granule index within the extent")
	bits := fs.Int("bits", 16, "bits to flip")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kd, err := parseExtentKind(*kind)
	if err != nil {
		return err
	}
	report, err := c.Corrupt(*dev, cfg.ksName, wire.ExtentAddr{
		Kind:    uint8(kd),
		Index:   *index,
		Granule: *granule,
		Bits:    uint32(*bits),
	})
	if err != nil {
		return err
	}
	fmt.Printf("corrupt on %s: %s\n", c.Addr(), report)
	return nil
}

func remoteDeviceFault(c *remote.Client, cfg cliConfig, args []string, verb string, do func(int) (string, error)) error {
	fs := flag.NewFlagSet(verb, flag.ContinueOnError)
	dev := fs.Int("dev", 0, "target device index")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := do(*dev)
	if err != nil {
		return err
	}
	fmt.Printf("%s device %d on %s:\n%s\n", verb, *dev, c.Addr(), rep)
	return nil
}
