// Integrity subcommands: corrupt (flip bits inside one extent granule and
// show reads failing over typed, never silently wrong) and scrub (walk a
// device's checksummed extents, optionally repairing what the walk finds from
// replica copies). Both mirror the power-cut/recover pattern: the local mode
// rebuilds the deterministic cluster and injects the fault itself; with -addr
// they drive a live kvcsd-server.

package main

import (
	"flag"
	"fmt"
	"strings"

	"kvcsd/internal/array"
	"kvcsd/internal/core"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

// parseExtentKind maps the CLI -kind argument to the device extent kind.
func parseExtentKind(s string) (core.ExtentKind, error) {
	switch strings.ToLower(s) {
	case "klog":
		return core.ExtentKLOG, nil
	case "vlog":
		return core.ExtentVLOG, nil
	case "pidx":
		return core.ExtentPIDX, nil
	case "sorted":
		return core.ExtentSorted, nil
	case "sidx":
		return core.ExtentSIDX, nil
	}
	return 0, fmt.Errorf("unknown extent kind %q (try klog, vlog, pidx, sorted, sidx)", s)
}

// shardOn returns the index of the first partition of ks with a replica on
// dev, -1 when the device holds none of the keyspace.
func shardOn(ks *array.Keyspace, dev int) int {
	for pi := 0; pi < ks.Partitions(); pi++ {
		for _, d := range ks.Replicas(pi) {
			if d == dev {
				return pi
			}
		}
	}
	return -1
}

func runCorrupt(cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("corrupt", flag.ContinueOnError)
	dev := fs.Int("dev", 0, "device to poison")
	kind := fs.String("kind", "sorted", "extent kind: klog, vlog, pidx, sorted, sidx")
	index := fs.String("index", "", "secondary index name (sidx extents)")
	granule := fs.Int64("granule", 0, "granule index within the extent")
	bits := fs.Int("bits", 16, "bits to flip")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kd, err := parseExtentKind(*kind)
	if err != nil {
		return err
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		if *dev < 0 || *dev >= cfg.devices {
			return fmt.Errorf("device %d out of range (0..%d)", *dev, cfg.devices-1)
		}
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		pi := shardOn(ks, *dev)
		if pi < 0 {
			return fmt.Errorf("device %d holds no shard of %s", *dev, cfg.ksName)
		}
		addr := nvme.ExtentAddr{Kind: uint8(kd), Index: *index, Granule: *granule, Bits: *bits}
		flipped, err := a.CorruptExtent(p, *dev, ks.ShardName(pi), addr)
		if err != nil {
			return err
		}
		fmt.Printf("flipped %d bits in %s of %s granule %d on device %d\n",
			flipped, kd, ks.ShardName(pi), *granule, *dev)

		// Reads must now either verify byte-exact on this replica, fail over
		// to a peer, or fail typed — never return the poisoned bytes.
		found, errs := 0, 0
		for q := 0; q < cfg.queries; q++ {
			i := int(mix(uint64(q)^0x51A75) % uint64(maxOf(cfg.keys, 1)))
			if _, ok, err := ks.Get(p, cliKey(cfg.seed, i)); err != nil {
				errs++
			} else if ok {
				found++
			}
		}
		a.WaitRepairsIdle(p) // drain the read-repair passes corrupted reads scheduled
		fmt.Printf("queries over poisoned media: %d/%d found, %d typed errors (replicas=%d)\n",
			found, cfg.queries, errs, a.Options().Replicas)
		rep, err := a.ScrubDevice(p, *dev)
		if err != nil {
			return err
		}
		fmt.Printf("post-repair scrub of device %d: %s\n", *dev, rep)
		printIntegrityCounters(a.Stats())
		return nil
	})
}

func runScrub(cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ContinueOnError)
	dev := fs.Int("dev", 0, "device to scrub")
	poison := fs.Int("poison", 1, "granules to poison before the scrub (0 = scrub clean media)")
	repair := fs.Bool("repair", true, "repair corrupt extents from replica copies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		if *dev < 0 || *dev >= cfg.devices {
			return fmt.Errorf("device %d out of range (0..%d)", *dev, cfg.devices-1)
		}
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		poisoned := 0
		for pi := 0; pi < ks.Partitions() && poisoned < *poison; pi++ {
			onDev := false
			for _, d := range ks.Replicas(pi) {
				onDev = onDev || d == *dev
			}
			if !onDev {
				continue
			}
			addr := nvme.ExtentAddr{Kind: uint8(core.ExtentSorted), Granule: 0, Bits: 16}
			if _, err := a.CorruptExtent(p, *dev, ks.ShardName(pi), addr); err != nil {
				return err
			}
			poisoned++
		}
		if poisoned > 0 {
			fmt.Printf("poisoned %d sorted granule(s) on device %d\n", poisoned, *dev)
		}
		var rep *core.ScrubReport
		if *repair {
			rep, err = a.RepairDevice(p, *dev)
		} else {
			rep, err = a.ScrubDevice(p, *dev)
		}
		if err != nil {
			return err
		}
		fmt.Printf("scrub device %d (repair=%v): %s\n", *dev, *repair, rep)
		for _, ext := range rep.Corrupt {
			fmt.Printf("  corrupt: %s %s granule %d (zone %d)\n",
				ext.Keyspace, ext.Kind, ext.Granule, ext.Zone)
		}
		printIntegrityCounters(a.Stats())
		return nil
	})
}

func printIntegrityCounters(st *stats.IOStats) {
	fmt.Printf("integrity counters:\n")
	fmt.Printf("  rotted bytes: %s  corrupt detected: %d\n",
		stats.HumanBytes(st.MediaRotted.Value()), st.CorruptDetected.Value())
	fmt.Printf("  scrubbed: %s  extents repaired: %d  zones quarantined: %d\n",
		stats.HumanBytes(st.ScrubbedBytes.Value()), st.RepairedExtents.Value(),
		st.QuarantinedZones.Value())
}
