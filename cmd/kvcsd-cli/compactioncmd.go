// Compaction-control plumbing shared by the local and remote `compact` and
// `stats` verbs: flag parsing for the policy/width pair and rendering of the
// per-keyspace compaction progress section.
package main

import (
	"fmt"
	"sort"
	"strings"

	"kvcsd/internal/array"
	"kvcsd/internal/compaction"
	"kvcsd/internal/stats"
)

// compactionConfigFlags folds the -policy/-width flags into a config; set
// reports whether anything was requested at all.
func compactionConfigFlags(policy string, width int) (compaction.Config, bool, error) {
	if policy == "" && width == 0 {
		return compaction.Config{}, false, nil
	}
	cfg := compaction.Config{PipelineWidth: width}
	if policy != "" {
		pol, err := compaction.ParsePolicy(policy)
		if err != nil {
			return compaction.Config{}, false, err
		}
		cfg.Policy = pol
	}
	return cfg, true, nil
}

// compactionRow is one keyspace's progress line.
type compactionRow struct {
	keyspace string
	progress compaction.Progress
}

// progressRows aggregates the fleet's per-shard compaction progress into one
// row per logical keyspace (shards are "<keyspace>#pN" on their devices),
// mirroring the wire StatsReport aggregation.
func progressRows(a *array.Array) []compactionRow {
	byKs := make(map[string]*compaction.Progress)
	var names []string
	for _, m := range a.Members() {
		if m.Dev.PoweredOff() {
			continue
		}
		for _, row := range m.Dev.Engine().Progresses() {
			name, _, _ := strings.Cut(row.Keyspace, "#")
			agg, ok := byKs[name]
			if !ok {
				cp := row.Progress
				byKs[name] = &cp
				names = append(names, name)
				continue
			}
			agg.GranulesDone += row.Progress.GranulesDone
			agg.GranulesTotal += row.Progress.GranulesTotal
			agg.BytesMoved += row.Progress.BytesMoved
			agg.HostRuns += row.Progress.HostRuns
			agg.DeviceRuns += row.Progress.DeviceRuns
			agg.Occupancy += row.Progress.Occupancy
		}
	}
	sort.Strings(names)
	rows := make([]compactionRow, 0, len(names))
	for _, name := range names {
		rows = append(rows, compactionRow{keyspace: name, progress: *byKs[name]})
	}
	return rows
}

// printCompactions renders the compaction progress section (no-op when no
// keyspace has compaction activity).
func printCompactions(rows []compactionRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Printf("compactions:\n")
	for _, r := range rows {
		pr := r.progress
		fmt.Printf("  %-12s stage=%-8s granules=%d/%d moved=%s runs=host:%d/device:%d occupancy=%d\n",
			r.keyspace, pr.Stage, pr.GranulesDone, pr.GranulesTotal,
			stats.HumanBytes(int64(pr.BytesMoved)), pr.HostRuns, pr.DeviceRuns, pr.Occupancy)
	}
}
