// Command kvcsd-cli drives simulated KV-CSD storage through a scripted
// key-value session and prints what the devices did: keyspace lifecycle,
// timings of each phase (virtual time), and device-side statistics.
//
// The default "session" command preserves the classic single-device flow
// (bulk insert, deferred compaction, queries). The other subcommands operate
// on a deterministic multi-device array: each invocation re-creates the same
// virtual cluster from -seed, preloads -keys pairs into a range-sharded
// keyspace, and then performs the requested operation on it.
//
// Usage:
//
//	kvcsd-cli [global flags] <command> [args]
//
//	kvcsd-cli                                  # classic session, one device
//	kvcsd-cli -keys 1000000 session            # bigger session
//	kvcsd-cli -devices 4 -replicas 2 stats     # fleet statistics + health
//	kvcsd-cli -devices 4 put mykey myvalue     # replicated routed PUT
//	kvcsd-cli -devices 4 get 0xA1B2...         # point GET (hex or raw key)
//	kvcsd-cli -devices 4 scan -limit 10        # ordered scatter-gather scan
//	kvcsd-cli -devices 4 compact               # staggered fleet compaction
//	kvcsd-cli -devices 4 compact -policy collaborative -width 4   # host/device split + pipeline
//	kvcsd-cli -cold-zones 256 compact -migrate-cold               # lifetime-aware cold placement
//	kvcsd-cli -devices 4 delete-keyspace       # drop the preloaded keyspace
//	kvcsd-cli -devices 3 -replicas 2 power-cut -dev 0    # kill one replica, degraded reads
//	kvcsd-cli -devices 3 -replicas 2 recover -dev 0      # power-cycle + recovery scrub stats
//	kvcsd-cli -devices 3 -replicas 2 inject-fault -dev 0 # seeded probabilistic media faults
//	kvcsd-cli -devices 3 -replicas 2 corrupt -dev 0      # flip bits in an extent, reads fail over
//	kvcsd-cli -devices 3 -replicas 2 scrub -dev 0        # scrub + replica read-repair report
//
// With -addr the same verbs run against a live kvcsd-server over TCP
// instead of an in-process simulation:
//
//	kvcsd-cli -addr 127.0.0.1:7411 put mykey myvalue
//	kvcsd-cli -addr 127.0.0.1:7411 compact
//	kvcsd-cli -addr 127.0.0.1:7411 get mykey
//	kvcsd-cli -addr 127.0.0.1:7411 stats
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"kvcsd"
	"kvcsd/internal/array"
	"kvcsd/internal/device"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

// cliConfig carries the global flags shared by every subcommand.
type cliConfig struct {
	devices   int
	replicas  int
	keys      int
	valueSize int
	keyspaces int
	queries   int
	seed      int64
	ksName    string
	addr      string
	tenant    string
	coldZones int
}

func main() {
	cfg := cliConfig{}
	flag.StringVar(&cfg.addr, "addr", "", "kvcsd-server address (host:port); when set, commands run against the remote server instead of an in-process simulation")
	flag.IntVar(&cfg.devices, "devices", 1, "devices in the simulated array")
	flag.IntVar(&cfg.replicas, "replicas", 1, "replicas per keyspace (array commands)")
	flag.IntVar(&cfg.keys, "keys", 100000, "keys to preload (session: keys per keyspace)")
	flag.IntVar(&cfg.valueSize, "value-size", 32, "value size in bytes")
	flag.IntVar(&cfg.keyspaces, "keyspaces", 1, "session: number of keyspaces (one writer thread each)")
	flag.IntVar(&cfg.queries, "queries", 1000, "session/stats: random point queries after compaction")
	flag.Int64Var(&cfg.seed, "seed", 1, "simulation seed (same seed = same virtual cluster)")
	flag.StringVar(&cfg.ksName, "ks", "data", "keyspace name for array commands")
	flag.StringVar(&cfg.tenant, "tenant", "", "remote mode: open a session as this tenant so requests are billed to its fair share")
	flag.IntVar(&cfg.coldZones, "cold-zones", 0, "local mode: reserve this many zones per device as a cold tier (enables compact -migrate-cold)")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "session"
	}
	args := flag.Args()
	if len(args) > 0 {
		args = args[1:]
	}

	if cfg.addr != "" {
		if err := runRemote(cfg, cmd, args); err != nil {
			fmt.Fprintf(os.Stderr, "kvcsd-cli: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var err error
	switch cmd {
	case "session":
		err = runSession(cfg)
	case "put":
		err = runPut(cfg, args)
	case "get":
		err = runGet(cfg, args)
	case "scan":
		err = runScan(cfg, args)
	case "compact":
		err = runCompact(cfg, args)
	case "delete-keyspace":
		err = runDeleteKeyspace(cfg)
	case "stats":
		err = runStats(cfg)
	case "power-cut":
		err = runPowerCut(cfg, args)
	case "recover":
		err = runRecover(cfg, args)
	case "inject-fault":
		err = runInjectFault(cfg, args)
	case "scrub":
		err = runScrub(cfg, args)
	case "corrupt":
		err = runCorrupt(cfg, args)
	default:
		fmt.Fprintf(os.Stderr, "kvcsd-cli: unknown command %q (try session, put, get, scan, compact, delete-keyspace, stats, power-cut, recover, inject-fault, scrub, corrupt)\n", cmd)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvcsd-cli: %v\n", err)
		os.Exit(1)
	}
}

// --- Array plumbing shared by the subcommands ------------------------------

// newArray assembles the deterministic virtual cluster from the globals.
func newArray(cfg cliConfig, env *sim.Env) *array.Array {
	opts := array.DefaultOptions()
	opts.Devices = cfg.devices
	opts.Replicas = cfg.replicas
	opts.Seed = cfg.seed
	if cfg.coldZones > 0 {
		d := device.DefaultOptions()
		d.SSD.ColdZones = cfg.coldZones
		d.Engine.ColdHeatThreshold = 1
		opts.Device = d
	}
	return array.New(env, opts)
}

// load creates the routed keyspace and bulk-preloads cfg.keys pairs into it
// (range-sharded, one partition per device). It leaves the keyspace
// uncompacted so each subcommand drives exactly the phases it demonstrates.
func load(p *sim.Proc, a *array.Array, cfg cliConfig) (*array.Keyspace, error) {
	ks, err := a.CreateRangeSharded(p, cfg.ksName, cfg.devices)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.keys; i++ {
		if err := ks.BulkPut(p, cliKey(cfg.seed, i), cliValue(cfg.seed, i, cfg.valueSize)); err != nil {
			return nil, err
		}
	}
	if err := ks.Flush(p); err != nil {
		return nil, err
	}
	return ks, nil
}

// cliKey derives the i-th preloaded key (8-byte hashed prefix spreads keys
// across all range shards; print with %x).
func cliKey(seed int64, i int) []byte {
	return kvcsd.Uint64Key(mix(uint64(seed)<<32 ^ uint64(i)))
}

func cliValue(seed int64, i, size int) []byte {
	v := make([]byte, size)
	x := mix(uint64(seed)<<33 ^ uint64(i) ^ 0xABCD)
	for j := range v {
		v[j] = byte(x >> (8 * uint(j%8)))
		if j%8 == 7 {
			x = mix(x)
		}
	}
	return v
}

func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// parseKey interprets a CLI key argument: 0x-prefixed arguments decode as
// hex (how scan and the preload print keys), everything else is raw bytes.
func parseKey(arg string) ([]byte, error) {
	if strings.HasPrefix(arg, "0x") || strings.HasPrefix(arg, "0X") {
		b, err := hex.DecodeString(arg[2:])
		if err != nil {
			return nil, fmt.Errorf("bad hex key %q: %w", arg, err)
		}
		return b, nil
	}
	return []byte(arg), nil
}

// runArray executes fn as the master proc over a fresh cluster and prints
// fleet statistics afterwards when wanted.
func runArray(cfg cliConfig, fn func(p *sim.Proc, a *array.Array) error) error {
	env := sim.NewEnv()
	a := newArray(cfg, env)
	var err error
	env.Go("cli", func(p *sim.Proc) {
		err = fn(p, a)
		a.Shutdown()
	})
	env.Run()
	return err
}

// --- Subcommands -----------------------------------------------------------

func runPut(cfg cliConfig, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: kvcsd-cli put <key> <value>")
	}
	key, err := parseKey(args[0])
	if err != nil {
		return err
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		if err := ks.Put(p, key, []byte(args[1])); err != nil {
			return err
		}
		fmt.Printf("put %q (%d bytes) into %s: replicated to devices %v\n",
			args[0], len(args[1]), cfg.ksName, ks.OwnersOf(key))
		return nil
	})
}

func runGet(cfg cliConfig, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: kvcsd-cli get <key>  (0x… for hex)")
	}
	key, err := parseKey(args[0])
	if err != nil {
		return err
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		t0 := p.Now()
		val, ok, err := ks.Get(p, key)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("get %s: not found (%v)\n", args[0], p.Now()-t0)
			return nil
		}
		fmt.Printf("get %s: %d bytes in %v\n  value: 0x%x\n", args[0], len(val), p.Now()-t0, val)
		return nil
	})
}

func runScan(cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("scan", flag.ContinueOnError)
	lo := fs.String("lo", "", "low key bound, inclusive (0x… for hex)")
	hi := fs.String("hi", "", "high key bound, exclusive (0x… for hex)")
	limit := fs.Int("limit", 20, "max pairs to return (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var loB, hiB []byte
	var err error
	if *lo != "" {
		if loB, err = parseKey(*lo); err != nil {
			return err
		}
	}
	if *hi != "" {
		if hiB, err = parseKey(*hi); err != nil {
			return err
		}
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		t0 := p.Now()
		pairs, err := ks.Scan(p, loB, hiB, *limit)
		if err != nil {
			return err
		}
		fmt.Printf("scan %s: %d pairs across %d shards in %v\n",
			cfg.ksName, len(pairs), ks.Partitions(), p.Now()-t0)
		for _, kv := range pairs {
			fmt.Printf("  0x%x  (%d bytes)\n", kv.Key, len(kv.Value))
		}
		return nil
	})
}

func runCompact(cfg cliConfig, args []string) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	policy := fs.String("policy", "", "install a compaction policy first: device, host, or collaborative")
	width := fs.Int("width", 0, "install a device compaction pipeline width (0 = sequential)")
	cold := fs.Bool("migrate-cold", false, "after compaction, sweep every device's cold tier and report zones moved")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ccfg, set, err := compactionConfigFlags(*policy, *width)
	if err != nil {
		return err
	}
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		if set {
			for _, m := range a.Members() {
				if ccfg, err = m.Client.SetCompactionConfig(p, ccfg); err != nil {
					return err
				}
			}
			fmt.Printf("installed compaction config: policy=%s width=%d\n", ccfg.Policy, ccfg.PipelineWidth)
		}
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		t0 := p.Now()
		if err := ks.Compact(p); err != nil {
			return err
		}
		fmt.Printf("fleet compaction of %s (%d shards, cap %d, stagger %v): %v\n",
			cfg.ksName, ks.Partitions(), a.Options().MaxConcurrentCompactions,
			a.Options().CompactionStagger, p.Now()-t0)
		info, err := ks.Info(p)
		if err != nil {
			return err
		}
		fmt.Printf("state=%s pairs=%d zones=%d\n", info.State, info.Pairs, info.ZoneCount)
		for _, row := range ks.ShardMap() {
			fmt.Printf("  shard %s\n", row)
		}
		printCompactions(progressRows(a))
		if *cold {
			var total int64
			for _, m := range a.Members() {
				moved, err := m.Client.MigrateCold(p)
				if err != nil {
					return err
				}
				total += moved
			}
			fmt.Printf("extra cold-tier sweep: %d zones migrated (the fleet window already sweeps after each device's compactions)\n", total)
		}
		return nil
	})
}

func runDeleteKeyspace(cfg cliConfig) error {
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		if _, err := load(p, a, cfg); err != nil {
			return err
		}
		if err := a.DeleteKeyspace(p, cfg.ksName); err != nil {
			return err
		}
		fmt.Printf("deleted keyspace %s from all shards; remaining keyspaces: %v\n",
			cfg.ksName, a.Keyspaces())
		return nil
	})
}

func runStats(cfg cliConfig) error {
	return runArray(cfg, func(p *sim.Proc, a *array.Array) error {
		ks, err := load(p, a, cfg)
		if err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		for q := 0; q < cfg.queries; q++ {
			i := int(mix(uint64(q)^0x51A75) % uint64(maxOf(cfg.keys, 1)))
			if _, _, err := ks.Get(p, cliKey(cfg.seed, i)); err != nil {
				return err
			}
		}
		fmt.Printf("array: %d devices, %d replicas, %d keys preloaded, %d queries\n",
			cfg.devices, a.Options().Replicas, cfg.keys, cfg.queries)
		fmt.Printf("fleet totals:\n")
		printIOStats("  ", a.Stats())
		for _, m := range a.Members() {
			fmt.Printf("device %d:\n", m.ID)
			printIOStats("  ", m.Stats)
		}
		fmt.Printf("health:\n")
		for _, h := range a.Health() {
			state := "up"
			if h.Down {
				state = "DOWN"
			}
			fmt.Printf("  device %d: %s (consecutive failures: %d)\n", h.ID, state, h.Failures)
		}
		printCompactions(progressRows(a))
		fmt.Printf("virtual time: %v\n", p.Now())
		return nil
	})
}

func printIOStats(indent string, st *stats.IOStats) {
	fmt.Printf("%smedia write: %s   media read: %s\n", indent,
		stats.HumanBytes(st.MediaWrite.Value()), stats.HumanBytes(st.MediaRead.Value()))
	fmt.Printf("%shost->device: %s  device->host: %s\n", indent,
		stats.HumanBytes(st.HostToDevice.Value()), stats.HumanBytes(st.DeviceToHost.Value()))
	fmt.Printf("%scommands: %d  write amplification: %.2f\n", indent,
		st.Commands.Value(), st.WriteAmplification())
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- The classic single-device session -------------------------------------

func runSession(cfg cliConfig) error {
	sys := kvcsd.New(nil)
	err := sys.Run(func(p *kvcsd.Proc) error {
		// Insert phase: one writer process per keyspace.
		t0 := p.Now()
		errs := make([]error, cfg.keyspaces)
		handles := make([]*kvcsd.Keyspace, cfg.keyspaces)
		var writers []*kvcsd.Proc
		for w := 0; w < cfg.keyspaces; w++ {
			w := w
			writers = append(writers, sys.Go(fmt.Sprintf("writer-%d", w), func(wp *kvcsd.Proc) {
				ks, err := sys.Client.CreateKeyspace(wp, fmt.Sprintf("ks-%d", w))
				if err != nil {
					errs[w] = err
					return
				}
				handles[w] = ks
				val := make([]byte, cfg.valueSize)
				for i := 0; i < cfg.keys; i++ {
					key := kvcsd.Uint64Key(uint64(w)<<48 | uint64(i*2654435761))
					if err := ks.BulkPut(wp, key, val); err != nil {
						errs[w] = err
						return
					}
				}
				errs[w] = ks.Compact(wp) // deferred: returns immediately
			}))
		}
		p.Join(writers...)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		writeTime := p.Now() - t0
		fmt.Printf("insert+compact-invoke: %v  (%d keys x %d keyspaces, %dB values)\n",
			writeTime, cfg.keys, cfg.keyspaces, cfg.valueSize)

		// Wait out the asynchronous device compaction.
		t1 := p.Now()
		for _, ks := range handles {
			if err := ks.WaitCompacted(p); err != nil {
				return err
			}
		}
		fmt.Printf("device compaction window: %v (hidden from the application)\n", p.Now()-t1)

		for _, ks := range handles {
			info, err := ks.Info(p)
			if err != nil {
				return err
			}
			fmt.Printf("keyspace %-6s state=%-10s pairs=%-10d zones=%-4d compaction=%v\n",
				info.Name, info.State, info.Pairs, info.ZoneCount, info.CompactDur)
		}

		// Query phase.
		t2 := p.Now()
		found := 0
		for w, ks := range handles {
			for q := 0; q < cfg.queries; q++ {
				key := kvcsd.Uint64Key(uint64(w)<<48 | uint64((q*7919%cfg.keys)*2654435761))
				_, ok, err := ks.Get(p, key)
				if err != nil {
					return err
				}
				if ok {
					found++
				}
			}
		}
		total := cfg.queries * cfg.keyspaces
		fmt.Printf("queries: %d/%d found in %v (%.1fus avg)\n",
			found, total, p.Now()-t2, float64(p.Now()-t2)/float64(total)/1e3)
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("\ndevice statistics:\n")
	fmt.Printf("  media write: %s   media read: %s\n",
		stats.HumanBytes(sys.Stats.MediaWrite.Value()), stats.HumanBytes(sys.Stats.MediaRead.Value()))
	fmt.Printf("  host->device: %s  device->host: %s\n",
		stats.HumanBytes(sys.Stats.HostToDevice.Value()), stats.HumanBytes(sys.Stats.DeviceToHost.Value()))
	fmt.Printf("  commands: %d  write amplification: %.2f\n",
		sys.Stats.Commands.Value(), sys.Stats.WriteAmplification())
	fmt.Printf("  total virtual time: %v\n", sys.Elapsed())
	return nil
}
