// Command kvcsd-cli drives a simulated KV-CSD device through a scripted
// key-value session and prints what the device did: keyspace lifecycle,
// timings of each phase (virtual time), and the device-side statistics.
// It is the quickest way to watch the deferred-compaction flow end to end.
//
// Usage:
//
//	kvcsd-cli                      # default session: 100k keys, queries
//	kvcsd-cli -keys 1000000 -value-size 128
//	kvcsd-cli -keyspaces 8         # multi-keyspace session
package main

import (
	"flag"
	"fmt"
	"os"

	"kvcsd"
	"kvcsd/internal/stats"
)

func main() {
	keys := flag.Int("keys", 100000, "keys to insert per keyspace")
	valueSize := flag.Int("value-size", 32, "value size in bytes")
	keyspaces := flag.Int("keyspaces", 1, "number of keyspaces (one writer thread each)")
	queries := flag.Int("queries", 1000, "random point queries per keyspace after compaction")
	flag.Parse()

	sys := kvcsd.New(nil)
	err := sys.Run(func(p *kvcsd.Proc) error {
		// Insert phase: one writer process per keyspace.
		t0 := p.Now()
		errs := make([]error, *keyspaces)
		handles := make([]*kvcsd.Keyspace, *keyspaces)
		var writers []*kvcsd.Proc
		for w := 0; w < *keyspaces; w++ {
			w := w
			writers = append(writers, sys.Go(fmt.Sprintf("writer-%d", w), func(wp *kvcsd.Proc) {
				ks, err := sys.Client.CreateKeyspace(wp, fmt.Sprintf("ks-%d", w))
				if err != nil {
					errs[w] = err
					return
				}
				handles[w] = ks
				val := make([]byte, *valueSize)
				for i := 0; i < *keys; i++ {
					key := kvcsd.Uint64Key(uint64(w)<<48 | uint64(i*2654435761))
					if err := ks.BulkPut(wp, key, val); err != nil {
						errs[w] = err
						return
					}
				}
				errs[w] = ks.Compact(wp) // deferred: returns immediately
			}))
		}
		p.Join(writers...)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		writeTime := p.Now() - t0
		fmt.Printf("insert+compact-invoke: %v  (%d keys x %d keyspaces, %dB values)\n",
			writeTime, *keys, *keyspaces, *valueSize)

		// Wait out the asynchronous device compaction.
		t1 := p.Now()
		for _, ks := range handles {
			if err := ks.WaitCompacted(p); err != nil {
				return err
			}
		}
		fmt.Printf("device compaction window: %v (hidden from the application)\n", p.Now()-t1)

		for _, ks := range handles {
			info, err := ks.Info(p)
			if err != nil {
				return err
			}
			fmt.Printf("keyspace %-6s state=%-10s pairs=%-10d zones=%-4d compaction=%v\n",
				info.Name, info.State, info.Pairs, info.ZoneCount, info.CompactDur)
		}

		// Query phase.
		t2 := p.Now()
		found := 0
		for w, ks := range handles {
			for q := 0; q < *queries; q++ {
				key := kvcsd.Uint64Key(uint64(w)<<48 | uint64((q*7919%*keys)*2654435761))
				_, ok, err := ks.Get(p, key)
				if err != nil {
					return err
				}
				if ok {
					found++
				}
			}
		}
		total := *queries * *keyspaces
		fmt.Printf("queries: %d/%d found in %v (%.1fus avg)\n",
			found, total, p.Now()-t2, float64(p.Now()-t2)/float64(total)/1e3)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvcsd-cli: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\ndevice statistics:\n")
	fmt.Printf("  media write: %s   media read: %s\n",
		stats.HumanBytes(sys.Stats.MediaWrite.Value()), stats.HumanBytes(sys.Stats.MediaRead.Value()))
	fmt.Printf("  host->device: %s  device->host: %s\n",
		stats.HumanBytes(sys.Stats.HostToDevice.Value()), stats.HumanBytes(sys.Stats.DeviceToHost.Value()))
	fmt.Printf("  commands: %d  write amplification: %.2f\n",
		sys.Stats.Commands.Value(), sys.Stats.WriteAmplification())
	fmt.Printf("  total virtual time: %v\n", sys.Elapsed())
}
