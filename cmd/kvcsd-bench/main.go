// Command kvcsd-bench regenerates the paper's micro-benchmark figures
// (Figures 7a, 7b, 8, 9, 10a, 10b and Table I) on the simulator.
//
// Usage:
//
//	kvcsd-bench -fig all            # every micro figure at default scale
//	kvcsd-bench -fig 7a -scale 8    # Figure 7a with 8x larger datasets
//	kvcsd-bench -fig ablations      # the design-choice ablations
//	kvcsd-bench -fig array -devices 8 -replicas 2   # multi-device scaling
//	kvcsd-bench -config             # print the simulated hardware (Table I)
//
// Observability (runs an instrumented bulk-insert + compaction + foreground
// session instead of a figure unless -fig is given explicitly):
//
//	kvcsd-bench -trace=out.json     # Chrome trace of every command (Perfetto)
//	kvcsd-bench -metrics            # stage histograms, gauges, counters
//	kvcsd-bench -sample-interval=1ms -sample-csv=series.csv
//
// Perf trajectory (machine-readable results for regression gating):
//
//	kvcsd-bench -fig all -json-dir out/        # BENCH_<fig>.json per figure
//	kvcsd-bench -remote-trace merged.json      # merged client+server trace
//	bench-compare -baseline base/ -current out/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"kvcsd/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 7a, 7b, 8, 9, 10a, 10b, table1, ablations, array, remote, failover, fairness, scrub, compactsplit, all")
	scale := flag.Int("scale", 1, "multiply dataset sizes by this factor")
	seed := flag.Int64("seed", 1, "simulation seed")
	devices := flag.Int("devices", 8, "largest device count in the array-scaling sweep")
	replicas := flag.Int("replicas", 2, "replicas per keyspace in the array-scaling sweep")
	traceFile := flag.String("trace", "", "write a Chrome trace of an instrumented run to FILE (load in Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics registry of an instrumented run")
	sampleInterval := flag.Duration("sample-interval", 0, "virtual-time sampling period for the instrumented run (default 250µs)")
	sampleCSV := flag.String("sample-csv", "", "write the sampler time series to FILE (- for stdout)")
	jsonDir := flag.String("json-dir", "", "also write each figure as DIR/BENCH_<fig>.json for bench-compare")
	remoteTrace := flag.String("remote-trace", "", "run a traced remote session and write the merged client+server Chrome trace to FILE")
	flag.Parse()

	s := bench.DefaultScale().Multiply(*scale)
	s.Seed = *seed
	out := os.Stdout

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "kvcsd-bench: %v\n", err)
		os.Exit(1)
	}

	// emit mirrors a printed figure into -json-dir as one trajectory file.
	emit := func(figID, clock string, t *bench.Table, keys ...string) {
		if *jsonDir == "" {
			return
		}
		path, err := bench.WriteTrajectory(*jsonDir, bench.TrajectoryFromTable(figID, clock, s, t, keys...))
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "kvcsd-bench: wrote %s\n", path)
	}

	if *remoteTrace != "" {
		if err := runRemoteTraceDemo(s, out, *remoteTrace); err != nil {
			fail(err)
		}
		figRequestedEarly := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "fig" {
				figRequestedEarly = true
			}
		})
		if !figRequestedEarly {
			return
		}
	}

	obsRequested := *traceFile != "" || *metrics || *sampleInterval > 0 || *sampleCSV != ""
	figRequested := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fig" {
			figRequested = true
		}
	})
	if obsRequested || *jsonDir != "" {
		if err := runObserve(s, out, *jsonDir, *traceFile, *metrics, *sampleInterval, *sampleCSV); err != nil {
			fail(err)
		}
		if !figRequested {
			return
		}
	}

	want := func(names ...string) bool {
		if *fig == "all" {
			return true
		}
		for _, n := range names {
			if strings.EqualFold(*fig, n) {
				return true
			}
		}
		return false
	}

	ran := false
	if want("table1", "1") {
		bench.Table1().Print(out)
		ran = true
	}
	if want("7a", "7b", "7") {
		a, b, err := bench.Fig7(s)
		if err != nil {
			fail(err)
		}
		if want("7a", "7") {
			a.Print(out)
			emit("7a", bench.ClockVirtual, a, "threads")
		}
		if want("7b", "7") {
			b.Print(out)
			emit("7b", bench.ClockVirtual, b, "threads", "engine")
		}
		ran = true
	}
	if want("8") {
		t, err := bench.Fig8(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		emit("8", bench.ClockVirtual, t, "value_size")
		ran = true
	}
	if want("9") {
		t, err := bench.Fig9(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		emit("9", bench.ClockVirtual, t, "keyspaces")
		ran = true
	}
	if want("10a", "10b", "10") {
		a, b, err := bench.Fig10(s)
		if err != nil {
			fail(err)
		}
		if want("10a", "10") {
			a.Print(out)
			emit("10a", bench.ClockVirtual, a, "queries")
		}
		if want("10b", "10") {
			b.Print(out)
			emit("10b", bench.ClockVirtual, b, "queries", "engine")
		}
		ran = true
	}
	if want("remote") {
		t, err := bench.RemoteThroughput(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		emit("remote", bench.ClockWall, t, "conns", "pipeline")
		ran = true
	}
	if want("array") {
		t, err := bench.ArrayScaling(s, *devices, *replicas)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		emit("array", bench.ClockVirtual, t, "devices", "replicas")
		ran = true
	}
	if want("failover") {
		t, err := bench.FailoverLatency(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		emit("failover", bench.ClockVirtual, t, "nodes")
		ran = true
	}
	if want("fairness") {
		t, err := bench.OverloadFairness(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		emit("fairness", bench.ClockVirtual, t, "phase", "tenant")
		ran = true
	}
	if want("scrub") {
		t, err := bench.ScrubOverhead(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		emit("scrub", bench.ClockVirtual, t, "scrub_interval")
		ran = true
	}
	if want("compactsplit") {
		t, err := bench.CompactSplit(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		emit("compactsplit", bench.ClockVirtual, t, "policy", "width")
		ran = true
	}
	if want("ablations") {
		type abl struct {
			name string
			key  string
			fn   func(bench.Scale) (*bench.Table, error)
		}
		for _, a := range []abl{
			{"bulk-put", "mode", bench.AblationBulkPut},
			{"kv-separation", "layout", bench.AblationKVSeparation},
			{"striping", "stripe_width", bench.AblationStriping},
			{"deferred-compaction", "policy", bench.AblationDeferredCompaction},
			{"sort-budget", "budget", bench.AblationSortBudget},
			{"ingest-buffer", "buffer", bench.AblationIngestBuffer},
			{"consolidated-indexing", "strategy", bench.AblationConsolidatedIndexing},
			{"remote-access", "link", bench.AblationRemoteAccess},
		} {
			t, err := a.fn(s)
			if err != nil {
				fail(fmt.Errorf("%s: %w", a.name, err))
			}
			t.Print(out)
			emit("ablation-"+a.name, bench.ClockVirtual, t, a.key)
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "kvcsd-bench: unknown -fig %q (try 7a, 7b, 8, 9, 10a, 10b, table1, ablations, array, remote, failover, fairness, scrub, compactsplit, all)\n", *fig)
		os.Exit(2)
	}
}

// runObserve executes the instrumented session and writes whichever outputs
// were requested.
func runObserve(s bench.Scale, out io.Writer, jsonDir, traceFile string, metrics bool, sampleInterval time.Duration, sampleCSV string) error {
	res, err := bench.Observe(s, bench.ObserveConfig{
		SampleInterval: sampleInterval,
		Trace:          true, // the stage-breakdown summary needs spans
	})
	if err != nil {
		return err
	}
	res.Summary.Print(out)
	if jsonDir != "" {
		path, err := bench.WriteTrajectory(jsonDir,
			bench.TrajectoryFromTable("stages", bench.ClockVirtual, s, res.Summary, "op"))
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "kvcsd-bench: wrote %s\n", path)
	}
	if metrics {
		fmt.Fprintf(out, "\n== Metrics registry ==\n")
		if err := res.Registry.Dump(out); err != nil {
			return err
		}
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := res.Tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(out, "\ntrace written to %s (open in https://ui.perfetto.dev)\n", traceFile)
	}
	if sampleCSV != "" {
		w := out
		if sampleCSV != "-" {
			f, err := os.Create(sampleCSV)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		} else {
			fmt.Fprintf(out, "\n== Sampler time series ==\n")
		}
		if err := res.Sampler.WriteCSV(w); err != nil {
			return fmt.Errorf("write sampler csv: %w", err)
		}
		if sampleCSV != "-" {
			fmt.Fprintf(out, "\nsampler time series written to %s\n", sampleCSV)
		}
	}
	return nil
}
