// Command kvcsd-bench regenerates the paper's micro-benchmark figures
// (Figures 7a, 7b, 8, 9, 10a, 10b and Table I) on the simulator.
//
// Usage:
//
//	kvcsd-bench -fig all            # every micro figure at default scale
//	kvcsd-bench -fig 7a -scale 8    # Figure 7a with 8x larger datasets
//	kvcsd-bench -fig ablations      # the design-choice ablations
//	kvcsd-bench -config             # print the simulated hardware (Table I)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kvcsd/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 7a, 7b, 8, 9, 10a, 10b, table1, ablations, all")
	scale := flag.Int("scale", 1, "multiply dataset sizes by this factor")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	s := bench.DefaultScale().Multiply(*scale)
	s.Seed = *seed
	out := os.Stdout

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "kvcsd-bench: %v\n", err)
		os.Exit(1)
	}

	want := func(names ...string) bool {
		if *fig == "all" {
			return true
		}
		for _, n := range names {
			if strings.EqualFold(*fig, n) {
				return true
			}
		}
		return false
	}

	ran := false
	if want("table1", "1") {
		bench.Table1().Print(out)
		ran = true
	}
	if want("7a", "7b", "7") {
		a, b, err := bench.Fig7(s)
		if err != nil {
			fail(err)
		}
		if want("7a", "7") {
			a.Print(out)
		}
		if want("7b", "7") {
			b.Print(out)
		}
		ran = true
	}
	if want("8") {
		t, err := bench.Fig8(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		ran = true
	}
	if want("9") {
		t, err := bench.Fig9(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		ran = true
	}
	if want("10a", "10b", "10") {
		a, b, err := bench.Fig10(s)
		if err != nil {
			fail(err)
		}
		if want("10a", "10") {
			a.Print(out)
		}
		if want("10b", "10") {
			b.Print(out)
		}
		ran = true
	}
	if want("ablations") {
		type abl struct {
			name string
			fn   func(bench.Scale) (*bench.Table, error)
		}
		for _, a := range []abl{
			{"bulk-put", bench.AblationBulkPut},
			{"kv-separation", bench.AblationKVSeparation},
			{"striping", bench.AblationStriping},
			{"deferred-compaction", bench.AblationDeferredCompaction},
			{"sort-budget", bench.AblationSortBudget},
			{"ingest-buffer", bench.AblationIngestBuffer},
			{"consolidated-indexing", bench.AblationConsolidatedIndexing},
			{"remote-access", bench.AblationRemoteAccess},
		} {
			t, err := a.fn(s)
			if err != nil {
				fail(fmt.Errorf("%s: %w", a.name, err))
			}
			t.Print(out)
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "kvcsd-bench: unknown -fig %q (try 7a, 7b, 8, 9, 10a, 10b, table1, ablations, all)\n", *fig)
		os.Exit(2)
	}
}
