// Command kvcsd-bench regenerates the paper's micro-benchmark figures
// (Figures 7a, 7b, 8, 9, 10a, 10b and Table I) on the simulator.
//
// Usage:
//
//	kvcsd-bench -fig all            # every micro figure at default scale
//	kvcsd-bench -fig 7a -scale 8    # Figure 7a with 8x larger datasets
//	kvcsd-bench -fig ablations      # the design-choice ablations
//	kvcsd-bench -fig array -devices 8 -replicas 2   # multi-device scaling
//	kvcsd-bench -config             # print the simulated hardware (Table I)
//
// Observability (runs an instrumented bulk-insert + compaction + foreground
// session instead of a figure unless -fig is given explicitly):
//
//	kvcsd-bench -trace=out.json     # Chrome trace of every command (Perfetto)
//	kvcsd-bench -metrics            # stage histograms, gauges, counters
//	kvcsd-bench -sample-interval=1ms -sample-csv=series.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"kvcsd/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 7a, 7b, 8, 9, 10a, 10b, table1, ablations, array, remote, all")
	scale := flag.Int("scale", 1, "multiply dataset sizes by this factor")
	seed := flag.Int64("seed", 1, "simulation seed")
	devices := flag.Int("devices", 8, "largest device count in the array-scaling sweep")
	replicas := flag.Int("replicas", 2, "replicas per keyspace in the array-scaling sweep")
	traceFile := flag.String("trace", "", "write a Chrome trace of an instrumented run to FILE (load in Perfetto)")
	metrics := flag.Bool("metrics", false, "print the metrics registry of an instrumented run")
	sampleInterval := flag.Duration("sample-interval", 0, "virtual-time sampling period for the instrumented run (default 250µs)")
	sampleCSV := flag.String("sample-csv", "", "write the sampler time series to FILE (- for stdout)")
	flag.Parse()

	s := bench.DefaultScale().Multiply(*scale)
	s.Seed = *seed
	out := os.Stdout

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "kvcsd-bench: %v\n", err)
		os.Exit(1)
	}

	obsRequested := *traceFile != "" || *metrics || *sampleInterval > 0 || *sampleCSV != ""
	figRequested := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fig" {
			figRequested = true
		}
	})
	if obsRequested {
		if err := runObserve(s, out, *traceFile, *metrics, *sampleInterval, *sampleCSV); err != nil {
			fail(err)
		}
		if !figRequested {
			return
		}
	}

	want := func(names ...string) bool {
		if *fig == "all" {
			return true
		}
		for _, n := range names {
			if strings.EqualFold(*fig, n) {
				return true
			}
		}
		return false
	}

	ran := false
	if want("table1", "1") {
		bench.Table1().Print(out)
		ran = true
	}
	if want("7a", "7b", "7") {
		a, b, err := bench.Fig7(s)
		if err != nil {
			fail(err)
		}
		if want("7a", "7") {
			a.Print(out)
		}
		if want("7b", "7") {
			b.Print(out)
		}
		ran = true
	}
	if want("8") {
		t, err := bench.Fig8(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		ran = true
	}
	if want("9") {
		t, err := bench.Fig9(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		ran = true
	}
	if want("10a", "10b", "10") {
		a, b, err := bench.Fig10(s)
		if err != nil {
			fail(err)
		}
		if want("10a", "10") {
			a.Print(out)
		}
		if want("10b", "10") {
			b.Print(out)
		}
		ran = true
	}
	if want("remote") {
		t, err := bench.RemoteThroughput(s)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		ran = true
	}
	if want("array") {
		t, err := bench.ArrayScaling(s, *devices, *replicas)
		if err != nil {
			fail(err)
		}
		t.Print(out)
		ran = true
	}
	if want("ablations") {
		type abl struct {
			name string
			fn   func(bench.Scale) (*bench.Table, error)
		}
		for _, a := range []abl{
			{"bulk-put", bench.AblationBulkPut},
			{"kv-separation", bench.AblationKVSeparation},
			{"striping", bench.AblationStriping},
			{"deferred-compaction", bench.AblationDeferredCompaction},
			{"sort-budget", bench.AblationSortBudget},
			{"ingest-buffer", bench.AblationIngestBuffer},
			{"consolidated-indexing", bench.AblationConsolidatedIndexing},
			{"remote-access", bench.AblationRemoteAccess},
		} {
			t, err := a.fn(s)
			if err != nil {
				fail(fmt.Errorf("%s: %w", a.name, err))
			}
			t.Print(out)
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "kvcsd-bench: unknown -fig %q (try 7a, 7b, 8, 9, 10a, 10b, table1, ablations, array, remote, all)\n", *fig)
		os.Exit(2)
	}
}

// runObserve executes the instrumented session and writes whichever outputs
// were requested.
func runObserve(s bench.Scale, out io.Writer, traceFile string, metrics bool, sampleInterval time.Duration, sampleCSV string) error {
	res, err := bench.Observe(s, bench.ObserveConfig{
		SampleInterval: sampleInterval,
		Trace:          true, // the stage-breakdown summary needs spans
	})
	if err != nil {
		return err
	}
	res.Summary.Print(out)
	if metrics {
		fmt.Fprintf(out, "\n== Metrics registry ==\n")
		if err := res.Registry.Dump(out); err != nil {
			return err
		}
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := res.Tracer.WriteChromeTrace(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Fprintf(out, "\ntrace written to %s (open in https://ui.perfetto.dev)\n", traceFile)
	}
	if sampleCSV != "" {
		w := out
		if sampleCSV != "-" {
			f, err := os.Create(sampleCSV)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		} else {
			fmt.Fprintf(out, "\n== Sampler time series ==\n")
		}
		if err := res.Sampler.WriteCSV(w); err != nil {
			return fmt.Errorf("write sampler csv: %w", err)
		}
		if sampleCSV != "-" {
			fmt.Fprintf(out, "\nsampler time series written to %s\n", sampleCSV)
		}
	}
	return nil
}
