package main

import (
	"fmt"
	"io"
	"os"

	"kvcsd/internal/bench"
	"kvcsd/internal/device"
	"kvcsd/internal/obs"
	"kvcsd/internal/remote"
	"kvcsd/internal/server"
)

// runRemoteTraceDemo runs a small traced remote session — a real loopback TCP
// server in front of the simulated device — and writes the merged two-process
// Chrome trace: client RPC spans (wall clock) flow-linked to the gateway and
// device spans (virtual clock) they caused.
func runRemoteTraceDemo(s bench.Scale, out io.Writer, path string) error {
	opts := device.DefaultOptions()
	opts.Seed = s.Seed
	opts.Trace = true
	opts.Metrics = true
	srv := server.NewDevice(opts, server.DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	wt := obs.NewWallTracer(uint64(s.Seed))
	ropts := remote.DefaultOptions()
	ropts.Tracer = wt
	rc, err := remote.Dial(addr.String(), ropts)
	if err != nil {
		return err
	}
	defer rc.Close()

	ks, err := rc.CreateKeyspace("trace-demo")
	if err != nil {
		return err
	}
	const pairs = 64
	for i := 0; i < pairs; i++ {
		if err := ks.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("value-%04d", i))); err != nil {
			return err
		}
	}
	if err := ks.Compact(); err != nil {
		return err
	}
	if err := ks.WaitCompacted(); err != nil {
		return err
	}
	for i := 0; i < pairs; i += 8 {
		if _, _, err := ks.Get([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			return err
		}
	}
	tr := srv.Backend().Tracer()
	// Stop the server first: the sim must finish before its tracer is read.
	if err := srv.Close(); err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteMergedChromeTrace(f, wt, tr); err == nil {
		err = f.Close()
	}
	if err != nil {
		return fmt.Errorf("write merged trace: %w", err)
	}
	fmt.Fprintf(out, "merged remote trace written to %s (open in https://ui.perfetto.dev)\n", path)
	return nil
}
