// Command zns-inspect runs a short KV-CSD session and dumps the device's
// internal state: per-type zone usage, keyspace table contents, metadata
// recovery check, and SoC DRAM gauge — the view the paper's Figure 4
// describes (KLOG/VLOG vs PIDX/SIDX/SORTED_VALUES zones).
//
// Usage:
//
//	zns-inspect                       # small session, dump state
//	zns-inspect -keys 500000 -secondary
//	zns-inspect -addr 127.0.0.1:7411  # inspect a running kvcsd-server
package main

import (
	"flag"
	"fmt"
	"os"

	"kvcsd"
	"kvcsd/internal/core"
	"kvcsd/internal/host"
	"kvcsd/internal/remote"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

func main() {
	keys := flag.Int("keys", 50000, "keys to insert")
	secondary := flag.Bool("secondary", false, "also build a secondary index")
	compact := flag.Bool("compact", true, "invoke compaction")
	traceFile := flag.String("trace", "", "write a Chrome trace of the session to FILE (load in Perfetto)")
	addr := flag.String("addr", "", "inspect a running kvcsd-server instead of a local session (host:port)")
	flag.Parse()

	if *addr != "" {
		if err := inspectRemote(*addr); err != nil {
			fmt.Fprintf(os.Stderr, "zns-inspect: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := kvcsd.DefaultOptions()
	opts.Metrics = true
	opts.Trace = *traceFile != ""
	sys := kvcsd.New(&opts)
	eng := sys.Device.Engine()
	reg := sys.Registry()

	dump := func(label string) {
		fmt.Printf("--- %s (t=%v) ---\n", label, sys.Env.Now())
		zm := eng.ZoneManager()
		fmt.Printf("zones: %d used / %d free\n", zm.UsedZones(), zm.FreeZones())
		// Zone write-pointer/utilization view, published by the SSD into the
		// metrics registry as it transitions zone states.
		open := reg.Gauge("ssd/zones_open").Value()
		full := reg.Gauge("ssd/zones_full").Value()
		wp := reg.Gauge("ssd/wp_bytes").Value()
		cap := float64(sys.Device.SSD().NumZones()) * float64(sys.Device.SSD().ZoneSize())
		fmt.Printf("zone states: %g open, %g full; write pointers at %s (%.2f%% of namespace)\n",
			open, full, stats.HumanBytes(int64(wp)), 100*wp/cap)
		byType := zm.UsedByType()
		for _, ty := range []core.ZoneType{
			core.ZoneKLOG, core.ZoneVLOG, core.ZonePIDX,
			core.ZoneSIDX, core.ZoneSortedValues, core.ZoneTemp,
		} {
			if n := byType[ty]; n > 0 {
				fmt.Printf("  %-14s %d zones\n", ty, n)
			}
		}
		for _, name := range eng.Manager().Names() {
			info, err := eng.KeyspaceInfo(name)
			if err != nil {
				continue
			}
			fmt.Printf("keyspace %-8s state=%-10s pairs=%-8d bytes=%-10s zones=%d secondary=%v\n",
				info.Name, info.State, info.Pairs, stats.HumanBytes(info.Bytes),
				info.ZoneCount, info.Secondary)
		}
		fmt.Println()
	}

	err := sys.Run(func(p *kvcsd.Proc) error {
		ks, err := sys.Client.CreateKeyspace(p, "data")
		if err != nil {
			return err
		}
		val := make([]byte, 32)
		for i := 0; i < *keys; i++ {
			copy(val[28:], kvcsd.Float32Key(float32(i%97)))
			if err := ks.BulkPut(p, kvcsd.Uint64Key(uint64(i*2654435761)), val); err != nil {
				return err
			}
		}
		if err := ks.Sync(p); err != nil {
			return err
		}
		dump("after insertion (WRITABLE: KLOG/VLOG zones)")

		if !*compact {
			return nil
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		if err := ks.WaitCompacted(p); err != nil {
			return err
		}
		dump("after compaction (COMPACTED: PIDX/SORTED_VALUES zones)")

		if *secondary {
			if err := ks.BuildSecondaryIndex(p, kvcsd.IndexSpec{
				Name: "attr", Offset: 28, Length: 4, Type: kvcsd.TypeFloat32,
			}); err != nil {
				return err
			}
			if err := ks.WaitIndexBuilt(p, "attr"); err != nil {
				return err
			}
			dump("after secondary index (SIDX zones)")
		}

		// Recovery check: a fresh engine must reconstruct the same table
		// from the metadata zones.
		soc2 := host.New(sys.Env, host.DefaultSoCConfig())
		eng2 := core.NewEngine(sys.Env, sys.Device.SSD(), soc2, core.DefaultConfig(), sim.NewRNG(2), sys.Stats)
		if err := eng2.Recover(p); err != nil {
			return fmt.Errorf("recovery check failed: %w", err)
		}
		fmt.Printf("recovery check: %d keyspace(s) reconstructed from metadata zones: %v\n\n",
			len(eng2.Manager().Names()), eng2.Manager().Names())
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "zns-inspect: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("media write: %s  media read: %s  total virtual time: %v\n",
		stats.HumanBytes(sys.Stats.MediaWrite.Value()),
		stats.HumanBytes(sys.Stats.MediaRead.Value()),
		sys.Elapsed())
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zns-inspect: %v\n", err)
			os.Exit(1)
		}
		if err := sys.Tracer().WriteChromeTrace(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "zns-inspect: write trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (open in https://ui.perfetto.dev)\n", *traceFile)
	}
}

// inspectRemote connects to a running kvcsd-server and prints the cluster's
// ownership view: device health plus the ring table from the Stats response
// (shard → devices, ownership epoch, and — for consensus-backed keyspaces —
// the live leader).
func inspectRemote(addr string) error {
	c, err := remote.Dial(addr, remote.DefaultOptions())
	if err != nil {
		return err
	}
	defer c.Close()
	rep, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("server %s: %d device(s)\n", c.Addr(), rep.Devices)
	fmt.Printf("  media write: %s  media read: %s  commands: %d\n",
		stats.HumanBytes(rep.MediaWrite), stats.HumanBytes(rep.MediaRead), rep.Commands)
	if len(rep.Health) > 0 {
		fmt.Printf("health:\n")
		for _, h := range rep.Health {
			state := "up"
			if h.Down {
				state = "DOWN"
			}
			fmt.Printf("  device %d: %s (consecutive failures: %d)\n", h.ID, state, h.Failures)
		}
	}
	if len(rep.Ring) == 0 {
		fmt.Printf("ring: empty (no keyspaces, or a single-device server)\n")
		return nil
	}
	fmt.Printf("ring ownership (%d entries):\n", len(rep.Ring))
	for _, e := range rep.Ring {
		leader := "-"
		if e.Leader >= 0 {
			leader = fmt.Sprintf("dev%d", e.Leader)
		}
		fmt.Printf("  %-12s shard %-3d epoch=%-4d leader=%-6s members=%v\n",
			e.Keyspace, e.Shard, e.Epoch, leader, e.Members)
	}
	return nil
}
