// Command bench-compare diffs two perf trajectories (directories of
// BENCH_<fig>.json files written by kvcsd-bench/vpic-bench -json-dir) and
// exits nonzero when a gated metric regressed beyond tolerance. It is the CI
// regression gate: virtual-clock figures are deterministic for a fixed
// (scale, seed), so any drift there is a real behavior change, while
// wall-clock figures are machine-dependent and only gated with -gate-wall.
//
// Usage:
//
//	bench-compare -baseline testdata/bench-baseline -current out/
//	bench-compare -baseline old/BENCH_7a.json -current new/BENCH_7a.json
//	bench-compare -baseline base/ -current out/ -tolerance 0.25 -gate-wall
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"kvcsd/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "", "baseline trajectory file or directory")
	current := flag.String("current", "", "current trajectory file or directory")
	tolerance := flag.Float64("tolerance", 0.15, "allowed relative drift before a gated metric counts as a regression")
	gateWall := flag.Bool("gate-wall", false, "also gate wall-clock figures (machine-dependent; off by default)")
	flag.Parse()

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: -baseline and -current are required")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(2)
	}

	basePaths, err := trajectoryPaths(*baseline)
	if err != nil {
		fail(err)
	}
	if len(basePaths) == 0 {
		fail(fmt.Errorf("no BENCH_*.json files under %s", *baseline))
	}

	var regressions []bench.Regression
	compared, skippedWall, missing := 0, 0, 0
	for _, bp := range basePaths {
		base, err := bench.ReadTrajectory(bp)
		if err != nil {
			fail(err)
		}
		cp := counterpart(*current, bp)
		cur, err := bench.ReadTrajectory(cp)
		if os.IsNotExist(err) {
			fmt.Printf("MISSING  %-12s baseline has %s but current run did not produce it\n",
				base.Fig, filepath.Base(bp))
			missing++
			continue
		}
		if err != nil {
			fail(err)
		}
		regs := bench.CompareTrajectories(base, cur, *tolerance)
		gated := base.Clock != bench.ClockWall || *gateWall
		tag := "ok"
		if len(regs) > 0 {
			tag = fmt.Sprintf("%d regression(s)", len(regs))
			if !gated {
				tag += " [wall clock, not gated]"
			}
		}
		fmt.Printf("%-8s %-12s %d rows vs %d, clock=%s: %s\n",
			verdict(len(regs) > 0 && gated), base.Fig, len(cur.Rows), len(base.Rows), base.Clock, tag)
		for _, r := range regs {
			fmt.Printf("         %s\n", r)
		}
		if gated {
			regressions = append(regressions, regs...)
		} else if len(regs) > 0 {
			skippedWall++
		}
		compared++
	}

	fmt.Printf("\nbench-compare: %d figure(s) compared, %d missing, tolerance %.0f%%\n",
		compared, missing, *tolerance*100)
	if skippedWall > 0 {
		fmt.Printf("bench-compare: %d wall-clock figure(s) drifted but are not gated (use -gate-wall)\n", skippedWall)
	}
	if len(regressions) > 0 {
		fmt.Printf("bench-compare: FAIL — %d gated regression(s)\n", len(regressions))
		os.Exit(1)
	}
	fmt.Println("bench-compare: PASS")
}

func verdict(bad bool) string {
	if bad {
		return "FAIL"
	}
	return "PASS"
}

// trajectoryPaths expands a file-or-directory argument into the sorted list
// of trajectory files it names.
func trajectoryPaths(arg string) ([]string, error) {
	fi, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return []string{arg}, nil
	}
	paths, err := filepath.Glob(filepath.Join(arg, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// counterpart maps a baseline trajectory path into the current tree: same
// file name under the current directory, or the current argument itself when
// it names a single file.
func counterpart(current, basePath string) string {
	fi, err := os.Stat(current)
	if err == nil && !fi.IsDir() {
		return current
	}
	return filepath.Join(current, filepath.Base(basePath))
}
