package kvcsd

// One testing.B benchmark per table/figure of the paper's evaluation, plus
// the ablations DESIGN.md calls out. Each benchmark runs its experiment once
// (results are deterministic), prints the reproduction table under -v, and
// reports the headline comparative metric via b.ReportMetric so
// `go test -bench=. -benchmem` regenerates every figure.

import (
	"os"
	"sync"
	"testing"

	"kvcsd/internal/bench"
)

// benchScale keeps `go test -bench=.` under a few minutes.
func benchScale() bench.Scale {
	s := bench.DefaultScale()
	s.Threads = []int{1, 2, 8, 32}
	s.VPICParticlesPerFile = 8192
	return s
}

var (
	macroOnce sync.Once
	macroRes  *bench.MacroResult
	macroErr  error
)

func macro() (*bench.MacroResult, error) {
	macroOnce.Do(func() { macroRes, macroErr = bench.RunMacro(benchScale()) })
	return macroRes, macroErr
}

// report runs fn once, then idles for the remaining b.N iterations (results
// are deterministic; re-running would only re-measure the simulator).
func report(b *testing.B, fn func() error) {
	b.Helper()
	if err := fn(); err != nil {
		b.Fatal(err)
	}
	for i := 1; i < b.N; i++ {
		// Deterministic simulation: nothing new to measure.
	}
}

func printTable(b *testing.B, t *bench.Table) {
	b.Helper()
	if testing.Verbose() {
		t.Print(os.Stderr)
	}
}

func BenchmarkTable1Config(b *testing.B) {
	report(b, func() error {
		printTable(b, bench.Table1())
		return nil
	})
}

func BenchmarkFig7aPutScaling(b *testing.B) {
	report(b, func() error {
		a, _, err := bench.Fig7(benchScale())
		if err != nil {
			return err
		}
		printTable(b, a)
		b.ReportMetric(a.Float(len(a.Rows)-1, "speedup"), "speedup@32cores")
		b.ReportMetric(a.Float(1, "speedup"), "speedup@2cores")
		return nil
	})
}

func BenchmarkFig7bIOStats(b *testing.B) {
	report(b, func() error {
		_, t, err := bench.Fig7(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		return nil
	})
}

func BenchmarkFig8ValueSizes(b *testing.B) {
	report(b, func() error {
		t, err := bench.Fig8(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		b.ReportMetric(t.Float(len(t.Rows)-1, "speedup32"), "speedup@4KiB")
		return nil
	})
}

func BenchmarkFig9MultiKeyspace(b *testing.B) {
	report(b, func() error {
		t, err := bench.Fig9(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		last := len(t.Rows) - 1
		b.ReportMetric(t.Float(last, "vs_auto"), "vs_auto@32ks")
		b.ReportMetric(t.Float(last, "vs_none"), "vs_none@32ks")
		return nil
	})
}

func BenchmarkFig10aGets(b *testing.B) {
	report(b, func() error {
		a, _, err := bench.Fig10(benchScale())
		if err != nil {
			return err
		}
		printTable(b, a)
		b.ReportMetric(a.Float(0, "speedup"), "speedup@fewest")
		return nil
	})
}

func BenchmarkFig10bReadInflation(b *testing.B) {
	report(b, func() error {
		_, t, err := bench.Fig10(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		b.ReportMetric(t.Float(1, "read_inflation"), "rocks_inflation")
		return nil
	})
}

func BenchmarkFig11WriteBreakdown(b *testing.B) {
	report(b, func() error {
		res, err := macro()
		if err != nil {
			return err
		}
		printTable(b, res.Fig11)
		b.ReportMetric(float64(res.RocksTotal)/float64(res.KVCSDInsert), "effective_speedup")
		return nil
	})
}

func BenchmarkFig12SelectivityQueries(b *testing.B) {
	report(b, func() error {
		res, err := macro()
		if err != nil {
			return err
		}
		printTable(b, res.Fig12)
		b.ReportMetric(res.Fig12.Float(0, "speedup"), "speedup@0.1pct")
		b.ReportMetric(res.Fig12.Float(len(res.Fig12.Rows)-1, "speedup"), "speedup@20pct")
		return nil
	})
}

func BenchmarkArrayScaling(b *testing.B) {
	report(b, func() error {
		t, err := bench.ArrayScaling(benchScale(), 8, 2)
		if err != nil {
			return err
		}
		printTable(b, t)
		b.ReportMetric(t.Float(len(t.Rows)-1, "speedup"), "speedup@8dev")
		return nil
	})
}

func BenchmarkAblationBulkPut(b *testing.B) {
	report(b, func() error {
		t, err := bench.AblationBulkPut(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		b.ReportMetric(t.Float(1, "speedup"), "bulk_speedup")
		return nil
	})
}

func BenchmarkAblationKVSeparation(b *testing.B) {
	report(b, func() error {
		t, err := bench.AblationKVSeparation(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		return nil
	})
}

func BenchmarkAblationStriping(b *testing.B) {
	report(b, func() error {
		t, err := bench.AblationStriping(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		return nil
	})
}

func BenchmarkAblationDeferredCompaction(b *testing.B) {
	report(b, func() error {
		t, err := bench.AblationDeferredCompaction(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		return nil
	})
}

func BenchmarkAblationSortBudget(b *testing.B) {
	report(b, func() error {
		t, err := bench.AblationSortBudget(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		return nil
	})
}

func BenchmarkAblationConsolidatedIndexing(b *testing.B) {
	report(b, func() error {
		t, err := bench.AblationConsolidatedIndexing(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		return nil
	})
}

func BenchmarkAblationRemoteAccess(b *testing.B) {
	report(b, func() error {
		t, err := bench.AblationRemoteAccess(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		return nil
	})
}

func BenchmarkAblationIngestBuffer(b *testing.B) {
	report(b, func() error {
		t, err := bench.AblationIngestBuffer(benchScale())
		if err != nil {
			return err
		}
		printTable(b, t)
		return nil
	})
}
