package compaction

import "encoding/binary"

// HeatTable tracks per-granule read heat on a keyspace's sorted cluster.
// Foreground Get/Scan paths Touch the granules they read; the cold-migration
// scan asks which granules stayed cold since the table was last decayed, and
// the engine halves every counter after each migration pass so old heat ages
// out instead of pinning data hot forever.
type HeatTable struct {
	counts  []uint32
	touches uint64
}

// NewHeatTable sizes a zeroed table for n granules.
func NewHeatTable(n int) *HeatTable {
	if n < 0 {
		n = 0
	}
	return &HeatTable{counts: make([]uint32, n)}
}

// Len returns the number of tracked granules.
func (h *HeatTable) Len() int {
	if h == nil {
		return 0
	}
	return len(h.counts)
}

// Touches returns the total touch count since the table was built.
func (h *HeatTable) Touches() uint64 {
	if h == nil {
		return 0
	}
	return h.touches
}

// Touch bumps the heat of one granule; out-of-range granules are ignored so
// callers need not bounds-check speculative offsets.
func (h *HeatTable) Touch(granule int) {
	if h == nil || granule < 0 || granule >= len(h.counts) {
		return
	}
	if h.counts[granule] < 1<<31 {
		h.counts[granule]++
	}
	h.touches++
}

// Heat returns one granule's counter (0 when out of range).
func (h *HeatTable) Heat(granule int) uint32 {
	if h == nil || granule < 0 || granule >= len(h.counts) {
		return 0
	}
	return h.counts[granule]
}

// Decay halves every counter — called after each migration pass so heat is
// "touches since roughly the last few passes", not "touches ever".
func (h *HeatTable) Decay() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] >>= 1
	}
}

// MaxInRange returns the hottest counter among granules [lo, hi).
func (h *HeatTable) MaxInRange(lo, hi int) uint32 {
	if h == nil {
		return 0
	}
	lo = clampInt(lo, 0, len(h.counts))
	hi = clampInt(hi, lo, len(h.counts))
	var max uint32
	for _, c := range h.counts[lo:hi] {
		if c > max {
			max = c
		}
	}
	return max
}

// EncodeHeat renders the canonical byte form of a table: the granule count
// followed by delta-free uvarint counters (most are tiny, so this stays
// compact without a second pass).
func EncodeHeat(h *HeatTable) []byte {
	n := h.Len()
	buf := make([]byte, 0, 2+n)
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, c := range h.counts {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

// maxHeatGranules bounds decoder allocation against hostile lengths.
const maxHeatGranules = 1 << 22

// DecodeHeat parses a heat table, rejecting oversized lengths, out-of-range
// counters, and trailing bytes.
func DecodeHeat(b []byte) (*HeatTable, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxHeatGranules {
		return nil, errCodec
	}
	rest := b[sz:]
	h := &HeatTable{counts: make([]uint32, n)}
	for i := range h.counts {
		v, m := binary.Uvarint(rest)
		if m <= 0 || v > 1<<32-1 {
			return nil, errCodec
		}
		h.counts[i] = uint32(v)
		rest = rest[m:]
	}
	if len(rest) != 0 {
		return nil, errCodec
	}
	return h, nil
}
