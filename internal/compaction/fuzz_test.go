package compaction

import (
	"bytes"
	"testing"
)

// FuzzDecodeConfig drives the compact-policy codec with arbitrary bytes: no
// panics, and every accepted payload re-encodes to the exact input (the
// codec is canonical).
func FuzzDecodeConfig(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeConfig(Config{}))
	f.Add(EncodeConfig(Config{Policy: PolicyCollaborative, PipelineWidth: 4}))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeConfig(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeConfig(c), data) {
			t.Fatalf("config not canonical: %+v from %x", c, data)
		}
	})
}

// FuzzDecodeProgress fuzzes the compaction-progress codec.
func FuzzDecodeProgress(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeProgress(Progress{}))
	f.Add(EncodeProgress(Progress{Stage: StageValues, GranulesDone: 1, GranulesTotal: 2, BytesMoved: 1 << 40, HostRuns: 9, DeviceRuns: 1, Occupancy: 65535}))
	f.Add([]byte{0x06, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := DecodeProgress(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeProgress(pr), data) {
			t.Fatalf("progress not canonical: %+v from %x", pr, data)
		}
	})
}

// FuzzDecodeHeat fuzzes the heat-table codec, guarding the bounded
// allocation and canonical round-trip.
func FuzzDecodeHeat(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeHeat(NewHeatTable(0)))
	h := NewHeatTable(5)
	h.Touch(0)
	h.Touch(4)
	h.Touch(4)
	f.Add(EncodeHeat(h))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		ht, err := DecodeHeat(data)
		if err != nil {
			return
		}
		if ht.Len() > maxHeatGranules {
			t.Fatalf("oversized table accepted: %d", ht.Len())
		}
		if !bytes.Equal(EncodeHeat(ht), data) {
			t.Fatalf("heat not canonical from %x", data)
		}
	})
}

// FuzzDecodeRuns fuzzes the host-merge run framing.
func FuzzDecodeRuns(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeRuns(nil))
	f.Add(EncodeRuns([][]byte{[]byte("a"), []byte("bb")}))
	f.Add([]byte{0x02, 0xff, 0xff, 0xff, 0xff, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		runs, err := DecodeRuns(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeRuns(runs), data) {
			t.Fatalf("runs not canonical from %x", data)
		}
	})
}
