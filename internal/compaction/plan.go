package compaction

// Signals is the planner's snapshot of live load on both sides of the PCIe
// link, sampled at the instant a compaction reaches its merge step.
type Signals struct {
	// QueueDepth is the device submission-queue backlog (nvme Pending) —
	// foreground commands waiting on the SoC.
	QueueDepth int
	// BgJobs is the number of background engine jobs already running.
	BgJobs int
	// ChannelUtil is the mean utilization of the SSD channels in [0, 1].
	ChannelUtil float64
	// SoCQueue is the SoC compute run-queue (cores in use plus waiters) at
	// the sampling instant.
	SoCQueue int
	// SoCUtil is the SoC's utilization in [0, 1] over the compaction's
	// run-formation phase. Closed-loop foreground readers never pile up in
	// the submission queue — each has one command in flight and the
	// dispatchers drain it immediately — so sustained compute pressure is
	// only visible as busy time.
	SoCUtil float64
	// HostQueue is the host CPU run-queue length the assist loop reported
	// on its latest merge poll.
	HostQueue int
	// HostAttached reports whether a host assist loop is polling at all;
	// without one every plan degrades to device-only.
	HostAttached bool
}

// Plan is the planner's verdict: how many sorted runs the host pre-merges
// versus how many stay on the SoC. The two groups merge concurrently; the
// device then runs the final merge over the (at most two) pre-merged runs.
type Plan struct {
	HostRuns   int
	DeviceRuns int
}

// DecideSplit assigns nRuns sorted runs between host and device under the
// given policy. The collaborative decision function biases the host share by
// the ratio of device pressure (queue depth, SoC run-queue, channel
// utilization, background jobs) to host pressure (CPU run-queue), clamped to [1/4, 3/4] so neither
// side is starved while both are alive. It is pure arithmetic on the sampled
// signals, so identical snapshots always produce identical plans.
func DecideSplit(pol Policy, sig Signals, nRuns int) Plan {
	if nRuns < 0 {
		nRuns = 0
	}
	deviceOnly := Plan{HostRuns: 0, DeviceRuns: nRuns}
	if !sig.HostAttached || nRuns == 0 {
		return deviceOnly
	}
	switch pol {
	case PolicyHost:
		return Plan{HostRuns: nRuns, DeviceRuns: 0}
	case PolicyCollaborative:
		if nRuns < 2 {
			return deviceOnly
		}
		devLoad := 1.0 + sig.ChannelUtil + float64(clampInt(sig.QueueDepth, 0, 32))/8 +
			float64(clampInt(sig.BgJobs, 0, 8))/2 + float64(clampInt(sig.SoCQueue, 0, 32))/8 +
			2.5*clampFloat(sig.SoCUtil, 0, 1)
		hostLoad := 1.0 + float64(clampInt(sig.HostQueue, 0, 32))/8
		frac := devLoad / (devLoad + hostLoad)
		if frac < 0.25 {
			frac = 0.25
		} else if frac > 0.75 {
			frac = 0.75
		}
		h := clampInt(int(frac*float64(nRuns)+0.5), 1, nRuns-1)
		return Plan{HostRuns: h, DeviceRuns: nRuns - h}
	}
	return deviceOnly
}

func clampFloat(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
