package compaction

import "encoding/binary"

// maxRunBytes bounds a single host-merge payload; a run group larger than
// this should never be shipped (the planner splits at run granularity and
// runs are sort-budget sized).
const maxRunBytes = 1 << 30

// EncodeRuns frames a group of encoded sorted runs into one host-merge
// payload: run count, then per-run length-prefixed bytes.
func EncodeRuns(runs [][]byte) []byte {
	total := binary.MaxVarintLen64
	for _, r := range runs {
		total += binary.MaxVarintLen64 + len(r)
	}
	buf := make([]byte, 0, total)
	buf = binary.AppendUvarint(buf, uint64(len(runs)))
	for _, r := range runs {
		buf = binary.AppendUvarint(buf, uint64(len(r)))
		buf = append(buf, r...)
	}
	return buf
}

// DecodeRuns parses a host-merge payload back into its runs, rejecting
// oversized counts and trailing bytes. Returned slices alias the input.
func DecodeRuns(b []byte) ([][]byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > 1<<16 {
		return nil, errCodec
	}
	rest := b[sz:]
	runs := make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(rest)
		if m <= 0 || l > maxRunBytes || uint64(len(rest)-m) < l {
			return nil, errCodec
		}
		runs = append(runs, rest[m:m+int(l)])
		rest = rest[m+int(l):]
	}
	if len(rest) != 0 {
		return nil, errCodec
	}
	return runs, nil
}
