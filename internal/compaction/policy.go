// Package compaction holds the collaborative host/device compaction
// subsystem shared by the SoC engine (internal/core), the NVMe command layer
// (internal/nvme), the host client (internal/client), and the fleet scheduler
// (internal/array): the merge-split planner and its load signals, the
// compaction policy knobs and their wire codec, per-granule heat tracking for
// lifetime-aware tiered placement, the host-merge assist queue, and the
// bounded ring buffers that stage the parallel device pipeline.
//
// The package depends only on internal/sim so every layer of the stack can
// import it without cycles.
package compaction

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Policy selects who merges the sorted runs of a compaction.
type Policy uint8

// Compaction policies.
const (
	// PolicyDevice merges everything on the device SoC — the paper's
	// baseline offload path and the default.
	PolicyDevice Policy = iota
	// PolicyHost ships every run to the host, which merges them on its
	// (faster, more numerous) cores and pushes one merged run back.
	PolicyHost
	// PolicyCollaborative splits the runs between host and SoC by live
	// load signals (Co-KV style); both halves merge concurrently.
	PolicyCollaborative
)

// String names the policy for flags and stats output.
func (p Policy) String() string {
	switch p {
	case PolicyDevice:
		return "device"
	case PolicyHost:
		return "host"
	case PolicyCollaborative:
		return "collaborative"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "device", "":
		return PolicyDevice, nil
	case "host":
		return PolicyHost, nil
	case "collaborative", "collab":
		return PolicyCollaborative, nil
	}
	return PolicyDevice, fmt.Errorf("compaction: unknown policy %q (want device, host, or collaborative)", s)
}

// errCodec reports a malformed compaction payload.
var errCodec = errors.New("compaction: malformed payload")

// Config is the runtime-settable compaction configuration carried by the
// compact-policy RPC.
type Config struct {
	// Policy selects the merge split.
	Policy Policy
	// PipelineWidth is the number of in-flight 256 KiB chunks each
	// pipeline stage may buffer; 1 degenerates to the sequential path.
	PipelineWidth int
}

// EncodeConfig renders the canonical wire form of a Config.
func EncodeConfig(c Config) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64)
	buf = append(buf, byte(c.Policy))
	buf = binary.AppendUvarint(buf, uint64(c.PipelineWidth))
	return buf
}

// DecodeConfig parses a Config, rejecting trailing bytes and out-of-range
// values so the codec stays canonical.
func DecodeConfig(b []byte) (Config, error) {
	if len(b) < 1 {
		return Config{}, errCodec
	}
	pol := Policy(b[0])
	if pol > PolicyCollaborative {
		return Config{}, errCodec
	}
	w, n := binary.Uvarint(b[1:])
	if n <= 0 || w > 1<<20 {
		return Config{}, errCodec
	}
	if 1+n != len(b) {
		return Config{}, errCodec
	}
	return Config{Policy: pol, PipelineWidth: int(w)}, nil
}
