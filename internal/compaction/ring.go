package compaction

import "kvcsd/internal/sim"

// Ring is a bounded producer/consumer buffer between two pipeline stage
// procs, built on the sim Block/Wake primitive (the same wake-list idiom as
// the NVMe submission queue). Push blocks while the ring is full, Pop while
// it is empty; Close releases both sides so pipelines always drain even on
// error paths. The onDelta hook feeds the engine's pipeline-occupancy gauge.
type Ring[T any] struct {
	env      *sim.Env
	cap      int
	items    []T
	pushWait []*sim.Proc
	popWait  []*sim.Proc
	closed   bool
	onDelta  func(int)
}

// NewRing builds a ring holding at most capacity items (minimum 1). onDelta,
// if non-nil, is called with +1 on every buffered item and -1 on every
// consumed one.
func NewRing[T any](env *sim.Env, capacity int, onDelta func(int)) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{env: env, cap: capacity, onDelta: onDelta}
}

// Len returns the number of buffered items.
func (r *Ring[T]) Len() int { return len(r.items) }

// Push appends an item, blocking while the ring is full. It returns false if
// the ring was closed (the consumer gave up — stop producing).
func (r *Ring[T]) Push(p *sim.Proc, v T) bool {
	for len(r.items) >= r.cap && !r.closed {
		r.pushWait = append(r.pushWait, p)
		p.Block()
	}
	if r.closed {
		return false
	}
	r.items = append(r.items, v)
	if r.onDelta != nil {
		r.onDelta(1)
	}
	r.wake(&r.popWait)
	return true
}

// Pop removes the oldest item, blocking while the ring is empty. ok is false
// once the ring is closed and drained.
func (r *Ring[T]) Pop(p *sim.Proc) (v T, ok bool) {
	for len(r.items) == 0 && !r.closed {
		r.popWait = append(r.popWait, p)
		p.Block()
	}
	if len(r.items) == 0 {
		return v, false
	}
	v = r.items[0]
	r.items = r.items[1:]
	if r.onDelta != nil {
		r.onDelta(-1)
	}
	r.wake(&r.pushWait)
	return v, true
}

// Close wakes every blocked producer and consumer. Buffered items remain
// poppable (a closed ring drains); further pushes are refused. Items never
// consumed still retire from the occupancy hook so gauges return to zero.
func (r *Ring[T]) Close() {
	if r.closed {
		return
	}
	r.closed = true
	for len(r.pushWait) > 0 {
		r.wake(&r.pushWait)
	}
	for len(r.popWait) > 0 {
		r.wake(&r.popWait)
	}
}

// Discard empties the ring without consuming, retiring occupancy for every
// dropped item — error paths call Close then Discard so the gauge settles.
func (r *Ring[T]) Discard() {
	if r.onDelta != nil && len(r.items) > 0 {
		r.onDelta(-len(r.items))
	}
	r.items = nil
}

func (r *Ring[T]) wake(list *[]*sim.Proc) {
	if len(*list) == 0 {
		return
	}
	p := (*list)[0]
	*list = (*list)[1:]
	r.env.Wake(p)
}
