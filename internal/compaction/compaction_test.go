package compaction

import (
	"bytes"
	"errors"
	"testing"

	"kvcsd/internal/sim"
)

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, pol := range []Policy{PolicyDevice, PolicyHost, PolicyCollaborative} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
	if pol, err := ParsePolicy(""); err != nil || pol != PolicyDevice {
		t.Fatalf("empty policy: %v, %v", pol, err)
	}
}

func TestConfigCodec(t *testing.T) {
	for _, c := range []Config{{}, {Policy: PolicyHost, PipelineWidth: 1}, {Policy: PolicyCollaborative, PipelineWidth: 8}} {
		got, err := DecodeConfig(EncodeConfig(c))
		if err != nil || got != c {
			t.Fatalf("config round-trip %+v -> %+v, %v", c, got, err)
		}
	}
	if _, err := DecodeConfig([]byte{9, 0}); err == nil {
		t.Fatal("accepted unknown policy")
	}
	if _, err := DecodeConfig(append(EncodeConfig(Config{}), 0)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestDecideSplit(t *testing.T) {
	sig := Signals{HostAttached: true}
	if p := DecideSplit(PolicyDevice, sig, 8); p.HostRuns != 0 || p.DeviceRuns != 8 {
		t.Fatalf("device policy split %+v", p)
	}
	if p := DecideSplit(PolicyHost, sig, 8); p.HostRuns != 8 || p.DeviceRuns != 0 {
		t.Fatalf("host policy split %+v", p)
	}
	// No assist loop: everything degrades to device-only.
	if p := DecideSplit(PolicyHost, Signals{}, 8); p.HostRuns != 0 || p.DeviceRuns != 8 {
		t.Fatalf("detached host split %+v", p)
	}
	// Collaborative keeps both sides non-empty and responds to load.
	idle := DecideSplit(PolicyCollaborative, sig, 8)
	if idle.HostRuns < 1 || idle.DeviceRuns < 1 || idle.HostRuns+idle.DeviceRuns != 8 {
		t.Fatalf("collab idle split %+v", idle)
	}
	busyDev := DecideSplit(PolicyCollaborative, Signals{HostAttached: true, QueueDepth: 32, ChannelUtil: 1, BgJobs: 4}, 8)
	if busyDev.HostRuns <= idle.HostRuns {
		t.Fatalf("device pressure should push runs to host: idle=%+v busy=%+v", idle, busyDev)
	}
	busyHost := DecideSplit(PolicyCollaborative, Signals{HostAttached: true, HostQueue: 32}, 8)
	if busyHost.HostRuns >= idle.HostRuns {
		t.Fatalf("host pressure should keep runs on device: idle=%+v busy=%+v", idle, busyHost)
	}
	// Determinism: same snapshot, same plan.
	if again := DecideSplit(PolicyCollaborative, sig, 8); again != idle {
		t.Fatalf("split not deterministic: %+v vs %+v", idle, again)
	}
	if p := DecideSplit(PolicyCollaborative, sig, 1); p.HostRuns != 0 || p.DeviceRuns != 1 {
		t.Fatalf("single-run collab split %+v", p)
	}
}

func TestProgressCodec(t *testing.T) {
	pr := Progress{Stage: StageMerge, GranulesDone: 7, GranulesTotal: 40, BytesMoved: 1 << 30, HostRuns: 3, DeviceRuns: 5, Occupancy: 2}
	got, err := DecodeProgress(EncodeProgress(pr))
	if err != nil || got != pr {
		t.Fatalf("progress round-trip %+v -> %+v, %v", pr, got, err)
	}
	if _, err := DecodeProgress([]byte{byte(stageMax), 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("accepted unknown stage")
	}
}

func TestHeatTable(t *testing.T) {
	h := NewHeatTable(10)
	h.Touch(3)
	h.Touch(3)
	h.Touch(9)
	h.Touch(-1) // ignored
	h.Touch(10) // ignored
	if h.Heat(3) != 2 || h.Heat(9) != 1 || h.Touches() != 3 {
		t.Fatalf("heat counters: %d %d %d", h.Heat(3), h.Heat(9), h.Touches())
	}
	if h.MaxInRange(0, 5) != 2 || h.MaxInRange(4, 9) != 0 {
		t.Fatalf("MaxInRange: %d %d", h.MaxInRange(0, 5), h.MaxInRange(4, 9))
	}
	h.Decay()
	if h.Heat(3) != 1 || h.Heat(9) != 0 {
		t.Fatalf("decay: %d %d", h.Heat(3), h.Heat(9))
	}
	got, err := DecodeHeat(EncodeHeat(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 || got.Heat(3) != 1 {
		t.Fatalf("heat round-trip: len=%d heat3=%d", got.Len(), got.Heat(3))
	}
}

func TestRunsCodec(t *testing.T) {
	runs := [][]byte{[]byte("alpha"), nil, []byte("gamma-run-bytes")}
	got, err := DecodeRuns(EncodeRuns(runs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[0], runs[0]) || len(got[1]) != 0 || !bytes.Equal(got[2], runs[2]) {
		t.Fatalf("runs round-trip: %q", got)
	}
	if _, err := DecodeRuns(append(EncodeRuns(runs), 1)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}

func TestRingPipelinesAndCloses(t *testing.T) {
	env := sim.NewEnv()
	occupancy := 0
	r := NewRing[int](env, 2, func(d int) { occupancy += d })
	var got []int
	producer := env.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if !r.Push(p, i) {
				t.Error("push refused on open ring")
			}
			p.Sleep(sim.Duration(1))
		}
		r.Close()
	})
	consumer := env.Go("consumer", func(p *sim.Proc) {
		for {
			v, ok := r.Pop(p)
			if !ok {
				return
			}
			got = append(got, v)
			p.Sleep(sim.Duration(3)) // slower than producer: ring fills, Push blocks
		}
	})
	env.Go("join", func(p *sim.Proc) { p.Join(producer, consumer) })
	env.Run()
	if len(got) != 10 {
		t.Fatalf("consumed %d of 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
	if occupancy != 0 {
		t.Fatalf("occupancy did not settle: %d", occupancy)
	}
}

func TestRingCloseUnblocksProducer(t *testing.T) {
	env := sim.NewEnv()
	r := NewRing[int](env, 1, nil)
	var refused bool
	prod := env.Go("producer", func(p *sim.Proc) {
		r.Push(p, 1)
		refused = !r.Push(p, 2) // blocks until Close, then refused
	})
	env.Go("closer", func(p *sim.Proc) {
		p.Sleep(sim.Duration(5))
		r.Close()
		r.Discard()
		p.Join(prod)
	})
	env.Run()
	if !refused {
		t.Fatal("push not refused after close")
	}
	if r.Len() != 0 {
		t.Fatalf("discard left %d items", r.Len())
	}
}

func TestAssistQueueRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	q := NewAssistQueue(env)
	if q.Attached() {
		t.Fatal("attached before any poll")
	}
	var merged []byte
	var waitErr error
	sub := env.Go("submitter", func(p *sim.Proc) {
		p.Sleep(sim.Duration(2))
		j, err := q.Submit(EncodeRuns([][]byte{[]byte("run")}))
		if err != nil {
			t.Error(err)
			return
		}
		merged, waitErr = q.Wait(p, j)
	})
	loop := env.Go("assist", func(p *sim.Proc) {
		for {
			j, ok := q.Poll(p, 3)
			if !ok {
				return
			}
			q.Complete(j.ID, []byte("merged"), nil)
		}
	})
	env.Go("driver", func(p *sim.Proc) {
		p.Join(sub)
		if !q.Attached() || q.HostLoad() != 3 {
			t.Errorf("attached=%v load=%d", q.Attached(), q.HostLoad())
		}
		q.Close()
		p.Join(loop)
	})
	env.Run()
	if waitErr != nil || string(merged) != "merged" {
		t.Fatalf("wait: %q, %v", merged, waitErr)
	}
}

func TestAssistQueueCloseFailsJobs(t *testing.T) {
	env := sim.NewEnv()
	q := NewAssistQueue(env)
	var waitErr error
	sub := env.Go("submitter", func(p *sim.Proc) {
		j, err := q.Submit(nil)
		if err != nil {
			t.Error(err)
			return
		}
		_, waitErr = q.Wait(p, j)
	})
	env.Go("closer", func(p *sim.Proc) {
		p.Sleep(sim.Duration(1))
		q.Close()
		p.Join(sub)
		if _, err := q.Submit(nil); !errors.Is(err, ErrAssistClosed) {
			t.Errorf("submit after close: %v", err)
		}
	})
	env.Run()
	if !errors.Is(waitErr, ErrAssistClosed) {
		t.Fatalf("wait after close: %v", waitErr)
	}
}
