package compaction

import "encoding/binary"

// Stage labels where a compaction (or cold migration) currently is.
type Stage uint8

// Compaction stages, in pipeline order.
const (
	StageIdle Stage = iota
	StageFlush
	StageSort
	StageMerge
	StageValues
	StageWrite
	StageMigrate
	stageMax
)

// String names the stage for stats output.
func (s Stage) String() string {
	switch s {
	case StageIdle:
		return "idle"
	case StageFlush:
		return "flush"
	case StageSort:
		return "sort"
	case StageMerge:
		return "merge"
	case StageValues:
		return "values"
	case StageWrite:
		return "write"
	case StageMigrate:
		return "migrate"
	}
	return "stage?"
}

// Progress is a point-in-time view of one keyspace's compaction, surfaced
// through compact-status completions and wire StatsReports.
type Progress struct {
	// Stage is the pipeline stage the compaction is in.
	Stage Stage
	// GranulesDone / GranulesTotal track the current stage's sweep.
	GranulesDone  uint32
	GranulesTotal uint32
	// BytesMoved accumulates every byte the compaction has written so far
	// (runs, merged output, index blocks, sorted values).
	BytesMoved uint64
	// HostRuns / DeviceRuns record the planner's split for this pass.
	HostRuns   uint16
	DeviceRuns uint16
	// Occupancy is the number of pipeline chunks currently buffered
	// in-flight — nonzero means stages are still draining.
	Occupancy uint16
}

// WireSize is the modeled completion payload cost of shipping a Progress.
func (pr *Progress) WireSize() int64 {
	if pr == nil {
		return 0
	}
	return 24
}

// EncodeProgress renders the canonical byte form of a Progress.
func EncodeProgress(pr Progress) []byte {
	buf := make([]byte, 0, 1+5*binary.MaxVarintLen64)
	buf = append(buf, byte(pr.Stage))
	buf = binary.AppendUvarint(buf, uint64(pr.GranulesDone))
	buf = binary.AppendUvarint(buf, uint64(pr.GranulesTotal))
	buf = binary.AppendUvarint(buf, pr.BytesMoved)
	buf = binary.AppendUvarint(buf, uint64(pr.HostRuns))
	buf = binary.AppendUvarint(buf, uint64(pr.DeviceRuns))
	buf = binary.AppendUvarint(buf, uint64(pr.Occupancy))
	return buf
}

// DecodeProgress parses a Progress, rejecting unknown stages, out-of-range
// fields, and trailing bytes.
func DecodeProgress(b []byte) (Progress, error) {
	if len(b) < 1 || Stage(b[0]) >= stageMax {
		return Progress{}, errCodec
	}
	pr := Progress{Stage: Stage(b[0])}
	rest := b[1:]
	u32 := func() (uint32, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > 1<<32-1 {
			return 0, false
		}
		rest = rest[n:]
		return uint32(v), true
	}
	var ok bool
	if pr.GranulesDone, ok = u32(); !ok {
		return Progress{}, errCodec
	}
	if pr.GranulesTotal, ok = u32(); !ok {
		return Progress{}, errCodec
	}
	v, n := binary.Uvarint(rest)
	if n <= 0 {
		return Progress{}, errCodec
	}
	pr.BytesMoved = v
	rest = rest[n:]
	u16 := func() (uint16, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > 1<<16-1 {
			return 0, false
		}
		rest = rest[n:]
		return uint16(v), true
	}
	if pr.HostRuns, ok = u16(); !ok {
		return Progress{}, errCodec
	}
	if pr.DeviceRuns, ok = u16(); !ok {
		return Progress{}, errCodec
	}
	if pr.Occupancy, ok = u16(); !ok {
		return Progress{}, errCodec
	}
	if len(rest) != 0 {
		return Progress{}, errCodec
	}
	return pr, nil
}
