package compaction

import (
	"errors"

	"kvcsd/internal/sim"
)

// ErrAssistClosed reports that the assist queue shut down (device halt or
// power cut) before a job completed; the submitter falls back to merging the
// job's runs on the SoC.
var ErrAssistClosed = errors.New("compaction: host assist queue closed")

// Job is one host-merge work item: a framed group of encoded sorted runs
// (EncodeRuns) the host merges into a single run and pushes back.
type Job struct {
	ID      uint64
	Payload []byte

	done   bool
	result []byte
	err    error
	waiter *sim.Proc
}

// AssistQueue hands merge jobs from compacting engine procs to the host
// assist loop. The loop long-polls via Poll (blocking inside the device
// dispatcher until work arrives), merges, and answers via Complete; the
// compaction proc that submitted the job waits on it with Wait while merging
// its own device-side share concurrently.
type AssistQueue struct {
	env      *sim.Env
	pending  []*Job
	inflight map[uint64]*Job
	pollWait []*sim.Proc
	closed   bool
	attached bool
	hostLoad int
	seq      uint64
}

// NewAssistQueue builds an empty queue.
func NewAssistQueue(env *sim.Env) *AssistQueue {
	return &AssistQueue{env: env, inflight: make(map[uint64]*Job)}
}

// Attached reports whether a host assist loop has ever polled — the
// planner's signal that host merging is available at all.
func (q *AssistQueue) Attached() bool { return q != nil && q.attached && !q.closed }

// HostLoad returns the host CPU run-queue length reported on the most
// recent poll.
func (q *AssistQueue) HostLoad() int {
	if q == nil {
		return 0
	}
	return q.hostLoad
}

// Pending returns the number of jobs not yet picked up.
func (q *AssistQueue) Pending() int { return len(q.pending) }

// Submit enqueues a merge job and wakes a poller. It never blocks; callers
// overlap their own work and Wait later.
func (q *AssistQueue) Submit(payload []byte) (*Job, error) {
	if q.closed {
		return nil, ErrAssistClosed
	}
	q.seq++
	j := &Job{ID: q.seq, Payload: payload}
	q.pending = append(q.pending, j)
	q.wakeOnePoller()
	return j, nil
}

// Wait blocks until the job completes (or the queue closes) and returns the
// host-merged run bytes.
func (q *AssistQueue) Wait(p *sim.Proc, j *Job) ([]byte, error) {
	for !j.done {
		j.waiter = p
		p.Block()
	}
	j.waiter = nil
	return j.result, j.err
}

// Poll blocks until a job is available, registering the caller as an
// attached assist loop and recording its reported host load. ok is false
// once the queue closes — the loop's signal to exit.
func (q *AssistQueue) Poll(p *sim.Proc, hostLoad int) (*Job, bool) {
	q.hostLoad = hostLoad
	if !q.closed {
		q.attached = true
	}
	for len(q.pending) == 0 && !q.closed {
		q.pollWait = append(q.pollWait, p)
		p.Block()
	}
	if len(q.pending) == 0 {
		return nil, false
	}
	j := q.pending[0]
	q.pending = q.pending[1:]
	q.inflight[j.ID] = j
	return j, true
}

// Complete resolves a picked-up job with the host's merged bytes (or its
// error) and wakes the submitter. Unknown IDs (stale pushes after a power
// cut rebuilt the engine) are ignored.
func (q *AssistQueue) Complete(id uint64, result []byte, err error) bool {
	j, ok := q.inflight[id]
	if !ok {
		return false
	}
	delete(q.inflight, id)
	j.result, j.err, j.done = result, err, true
	if j.waiter != nil {
		q.env.Wake(j.waiter)
	}
	return true
}

// Close fails every pending and in-flight job with ErrAssistClosed and wakes
// all pollers and waiters: submitters fall back to device-side merging, the
// assist loop sees ok=false and exits. Safe to call repeatedly.
func (q *AssistQueue) Close() {
	if q == nil || q.closed {
		return
	}
	q.closed = true
	q.attached = false
	for _, j := range q.pending {
		j.err, j.done = ErrAssistClosed, true
		if j.waiter != nil {
			q.env.Wake(j.waiter)
		}
	}
	q.pending = nil
	for id, j := range q.inflight {
		delete(q.inflight, id)
		j.err, j.done = ErrAssistClosed, true
		if j.waiter != nil {
			q.env.Wake(j.waiter)
		}
	}
	for len(q.pollWait) > 0 {
		p := q.pollWait[0]
		q.pollWait = q.pollWait[1:]
		q.env.Wake(p)
	}
}

func (q *AssistQueue) wakeOnePoller() {
	if len(q.pollWait) == 0 {
		return
	}
	p := q.pollWait[0]
	q.pollWait = q.pollWait[1:]
	q.env.Wake(p)
}
