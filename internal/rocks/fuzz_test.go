package rocks

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// encodeWALRecord mirrors walWriter.append's canonical layout so fuzz seeds
// and round-trip checks can build records without a simulated file.
func encodeWALRecord(kind entryKind, seq uint64, key, value []byte) []byte {
	payload := make([]byte, 1+8+4+len(key)+4+len(value))
	payload[0] = byte(kind)
	binary.LittleEndian.PutUint64(payload[1:], seq)
	binary.LittleEndian.PutUint32(payload[9:], uint32(len(key)))
	copy(payload[13:], key)
	off := 13 + len(key)
	binary.LittleEndian.PutUint32(payload[off:], uint32(len(value)))
	copy(payload[off+4:], value)
	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec, crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(payload)))
	copy(rec[8:], payload)
	return rec
}

// FuzzWALDecode drives the pure WAL decoder with arbitrary log images. The
// decoder must never panic, must fail only with ErrWALCorrupt, and every
// record it does return must be a faithful parse: re-encoding the returned
// records reproduces a byte-exact prefix of the input.
func FuzzWALDecode(f *testing.F) {
	valid := append(
		encodeWALRecord(kindValue, 1, []byte("key-1"), []byte("value-1")),
		encodeWALRecord(kindDelete, 2, []byte("key-2"), nil)...)
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail: decoder stops at record 1
	corruptTail := append([]byte(nil), valid...)
	corruptTail[len(corruptTail)-1] ^= 0x40
	f.Add(corruptTail) // checksum-failing tail: treated as torn
	corruptMid := append([]byte(nil), valid...)
	corruptMid[12] ^= 0x40
	f.Add(corruptMid) // mid-log corruption: ErrWALCorrupt

	f.Fuzz(func(t *testing.T, buf []byte) {
		recs, err := decodeWAL(buf)
		if err != nil && !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("unexpected error class: %v", err)
		}
		var reenc []byte
		for _, r := range recs {
			reenc = append(reenc, encodeWALRecord(r.kind, r.seq, r.key, r.value)...)
		}
		if !bytes.HasPrefix(buf, reenc) {
			t.Fatalf("decoded records do not re-encode to an input prefix (%d records, %d bytes)", len(recs), len(reenc))
		}
		again, err := decodeWAL(reenc)
		if err != nil || len(again) != len(recs) {
			t.Fatalf("re-encoded log does not round-trip: %d -> %d records, err=%v", len(recs), len(again), err)
		}
	})
}

// TestWALDecodeTornAndCorrupt pins the three recovery outcomes the fuzz
// seeds exercise: clean log, torn/corrupt tail (silent stop), and mid-log
// corruption (ErrWALCorrupt).
func TestWALDecodeTornAndCorrupt(t *testing.T) {
	r1 := encodeWALRecord(kindValue, 1, []byte("a"), []byte("1"))
	r2 := encodeWALRecord(kindDelete, 2, []byte("b"), nil)
	log := append(append([]byte(nil), r1...), r2...)

	if recs, err := decodeWAL(log); err != nil || len(recs) != 2 {
		t.Fatalf("clean log: %d records, err=%v", len(recs), err)
	}
	if recs, err := decodeWAL(log[:len(log)-1]); err != nil || len(recs) != 1 {
		t.Fatalf("torn tail: %d records, err=%v", len(recs), err)
	}
	corrupt := append([]byte(nil), log...)
	corrupt[len(corrupt)-1] ^= 1
	if recs, err := decodeWAL(corrupt); err != nil || len(recs) != 1 {
		t.Fatalf("corrupt tail: %d records, err=%v", len(recs), err)
	}
	corrupt = append([]byte(nil), log...)
	corrupt[10] ^= 1 // inside record 1's payload, not the tail
	if recs, err := decodeWAL(corrupt); !errors.Is(err, ErrWALCorrupt) || len(recs) != 0 {
		t.Fatalf("mid-log corruption: %d records, err=%v", len(recs), err)
	}
}
