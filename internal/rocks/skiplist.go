package rocks

import (
	"bytes"

	"kvcsd/internal/sim"
)

const skiplistMaxHeight = 12

// entryKind distinguishes live values from tombstones inside the LSM.
type entryKind uint8

// Entry kinds.
const (
	kindValue entryKind = iota
	kindDelete
)

// skipNode is one skiplist node. Keys are internal keys: user key plus a
// descending sequence number so newer writes for the same user key sort
// first.
type skipNode struct {
	key   []byte
	value []byte
	kind  entryKind
	seq   uint64
	next  []*skipNode
}

// skiplist is a deterministic (seeded) skiplist keyed by (userKey asc, seq
// desc). It is single-writer under the DES, so no synchronization is needed.
type skiplist struct {
	head   *skipNode
	height int
	rng    *sim.RNG
	count  int
	bytes  int64
}

func newSkiplist(rng *sim.RNG) *skiplist {
	return &skiplist{
		head:   &skipNode{next: make([]*skipNode, skiplistMaxHeight)},
		height: 1,
		rng:    rng,
	}
}

// compareInternal orders by user key ascending then sequence descending.
func compareInternal(aKey []byte, aSeq uint64, bKey []byte, bSeq uint64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aSeq > bSeq:
		return -1
	case aSeq < bSeq:
		return 1
	default:
		return 0
	}
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < skiplistMaxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// insert adds an entry; duplicate (key, seq) pairs are not expected.
func (s *skiplist) insert(key, value []byte, kind entryKind, seq uint64) {
	var prev [skiplistMaxHeight]*skipNode
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && compareInternal(x.next[level].key, x.next[level].seq, key, seq) < 0 {
			x = x.next[level]
		}
		prev[level] = x
	}
	h := s.randomHeight()
	if h > s.height {
		for level := s.height; level < h; level++ {
			prev[level] = s.head
		}
		s.height = h
	}
	n := &skipNode{key: key, value: value, kind: kind, seq: seq, next: make([]*skipNode, h)}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	s.count++
	s.bytes += int64(len(key) + len(value) + 24)
}

// seekGE returns the first node with internal key >= (key, seq).
func (s *skiplist) seekGE(key []byte, seq uint64) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && compareInternal(x.next[level].key, x.next[level].seq, key, seq) < 0 {
			x = x.next[level]
		}
	}
	return x.next[0]
}

// get returns the newest entry for key visible at snapshot seq.
func (s *skiplist) get(key []byte, seq uint64) (*skipNode, bool) {
	n := s.seekGE(key, seq) // seq desc: first node with seq <= snapshot
	if n != nil && bytes.Equal(n.key, key) {
		return n, true
	}
	return nil, false
}

// first returns the lowest node.
func (s *skiplist) first() *skipNode { return s.head.next[0] }

// skiplistIter walks the list in internal-key order.
type skiplistIter struct {
	list *skiplist
	node *skipNode
}

func (s *skiplist) iterator() *skiplistIter { return &skiplistIter{list: s} }

func (it *skiplistIter) SeekToFirst()    { it.node = it.list.first() }
func (it *skiplistIter) Seek(key []byte) { it.node = it.list.seekGE(key, ^uint64(0)) }
func (it *skiplistIter) Valid() bool     { return it.node != nil }
func (it *skiplistIter) Next()           { it.node = it.node.next[0] }
func (it *skiplistIter) Key() []byte     { return it.node.key }
func (it *skiplistIter) Value() []byte   { return it.node.value }
func (it *skiplistIter) Kind() entryKind { return it.node.kind }
func (it *skiplistIter) Seq() uint64     { return it.node.seq }
