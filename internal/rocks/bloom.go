package rocks

// bloomFilter is a LevelDB-style bloom filter: k probes derived from a
// double-hashed 64-bit key fingerprint.
type bloomFilter struct {
	bits []byte
	k    uint8
}

// bloomHash is FNV-1a over the key, mixed for double hashing.
func bloomHash(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// newBloomFilter builds a filter for keys with bitsPerKey bits per key.
func newBloomFilter(keys [][]byte, bitsPerKey int) *bloomFilter {
	if bitsPerKey <= 0 || len(keys) == 0 {
		return nil
	}
	// k = bitsPerKey * ln2, clamped like LevelDB.
	k := uint8(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := len(keys) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	f := &bloomFilter{bits: make([]byte, nBytes), k: k}
	for _, key := range keys {
		h := bloomHash(key)
		delta := h>>33 | h<<31
		for i := uint8(0); i < k; i++ {
			pos := h % uint64(nBits)
			f.bits[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return f
}

// mayContain reports whether key was possibly added (no false negatives).
func (f *bloomFilter) mayContain(key []byte) bool {
	if f == nil || len(f.bits) == 0 {
		return true
	}
	nBits := uint64(len(f.bits) * 8)
	h := bloomHash(key)
	delta := h>>33 | h<<31
	for i := uint8(0); i < f.k; i++ {
		pos := h % nBits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// marshal serializes the filter: bits then k.
func (f *bloomFilter) marshal() []byte {
	if f == nil {
		return nil
	}
	out := make([]byte, len(f.bits)+1)
	copy(out, f.bits)
	out[len(f.bits)] = f.k
	return out
}

// unmarshalBloom reconstructs a filter from marshal's output.
func unmarshalBloom(data []byte) *bloomFilter {
	if len(data) < 2 {
		return nil
	}
	return &bloomFilter{bits: data[:len(data)-1], k: data[len(data)-1]}
}

// sizeBytes returns the serialized size.
func (f *bloomFilter) sizeBytes() int64 {
	if f == nil {
		return 0
	}
	return int64(len(f.bits) + 1)
}
