package rocks

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"kvcsd/internal/sim"
)

// tableHandle couples a table's metadata with its (lazily opened) reader.
type tableHandle struct {
	meta   tableMeta
	reader *tableReader
}

// open returns the table's reader, opening it on first use.
func (t *tableHandle) open(p *sim.Proc, db *DB) (*tableReader, error) {
	if t.reader != nil {
		return t.reader, nil
	}
	f, err := db.fs.Open(p, db.fileName(t.meta.fileNum))
	if err != nil {
		return nil, err
	}
	r, err := openTable(p, f, db.h, db.cache, t.meta)
	if err != nil {
		return nil, err
	}
	t.reader = r
	return r, nil
}

// levels is the LSM shape: levels[0] holds overlapping L0 tables newest
// first; deeper levels hold disjoint tables sorted by smallest key.
type levels struct {
	files [][]*tableHandle
}

func newLevels(n int) *levels {
	return &levels{files: make([][]*tableHandle, n)}
}

// addL0 prepends a fresh flush output (newest first).
func (l *levels) addL0(t *tableHandle) {
	l.files[0] = append([]*tableHandle{t}, l.files[0]...)
}

// addSorted inserts a table into a deeper level, keeping smallest-key order.
func (l *levels) addSorted(level int, t *tableHandle) {
	fs := l.files[level]
	i := sort.Search(len(fs), func(i int) bool {
		return bytes.Compare(fs[i].meta.smallest, t.meta.smallest) >= 0
	})
	fs = append(fs, nil)
	copy(fs[i+1:], fs[i:])
	fs[i] = t
	l.files[level] = fs
}

// remove deletes a table from a level by file number.
func (l *levels) remove(level int, fileNum uint64) {
	fs := l.files[level]
	for i, t := range fs {
		if t.meta.fileNum == fileNum {
			l.files[level] = append(fs[:i:i], fs[i+1:]...)
			return
		}
	}
}

// levelBytes returns a level's total size.
func (l *levels) levelBytes(level int) int64 {
	var n int64
	for _, t := range l.files[level] {
		n += t.meta.size
	}
	return n
}

// totalTables returns the number of live tables.
func (l *levels) totalTables() int {
	n := 0
	for _, fs := range l.files {
		n += len(fs)
	}
	return n
}

// overlapping returns tables in level whose key range intersects [lo, hi].
func (l *levels) overlapping(level int, lo, hi []byte) []*tableHandle {
	var out []*tableHandle
	for _, t := range l.files[level] {
		if bytes.Compare(t.meta.largest, lo) < 0 || bytes.Compare(t.meta.smallest, hi) > 0 {
			continue
		}
		out = append(out, t)
	}
	return out
}

// candidateForKey returns the single table in a sorted level that could hold
// key, or nil.
func (l *levels) candidateForKey(level int, key []byte) *tableHandle {
	fs := l.files[level]
	i := sort.Search(len(fs), func(i int) bool {
		return bytes.Compare(fs[i].meta.largest, key) >= 0
	})
	if i < len(fs) && bytes.Compare(fs[i].meta.smallest, key) <= 0 {
		return fs[i]
	}
	return nil
}

// manifestState is the durable form of the version state.
type manifestState struct {
	NextFileNum uint64
	LastSeq     uint64
	Levels      [][]manifestTable
}

type manifestTable struct {
	FileNum  uint64
	Size     int64
	Entries  int64
	Smallest []byte
	Largest  []byte
}

// saveManifest rewrites the manifest atomically (write temp + rename).
// Concurrent callers serialize on the manifest lock; each write uses a unique
// temp name so an interrupted writer cannot clobber another's file.
func (db *DB) saveManifest(p *sim.Proc) error {
	p.Acquire(db.manifestLock)
	defer p.Release(db.manifestLock)
	state := manifestState{NextFileNum: db.nextFileNum, LastSeq: db.seq}
	state.Levels = make([][]manifestTable, len(db.levels.files))
	for i, fs := range db.levels.files {
		for _, t := range fs {
			state.Levels[i] = append(state.Levels[i], manifestTable{
				FileNum:  t.meta.fileNum,
				Size:     t.meta.size,
				Entries:  t.meta.entries,
				Smallest: t.meta.smallest,
				Largest:  t.meta.largest,
			})
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&state); err != nil {
		return fmt.Errorf("rocks: manifest encode: %w", err)
	}
	db.manifestSeq++
	tmp := fmt.Sprintf("%s/MANIFEST.%06d.tmp", db.name, db.manifestSeq)
	f, err := db.fs.Create(p, tmp)
	if err != nil {
		return err
	}
	if err := f.Append(p, buf.Bytes()); err != nil {
		return err
	}
	if err := f.Sync(p); err != nil {
		return err
	}
	return db.fs.Rename(p, tmp, db.name+"/MANIFEST")
}

// loadManifest restores version state; returns false if no manifest exists.
func (db *DB) loadManifest(p *sim.Proc) (bool, error) {
	name := db.name + "/MANIFEST"
	if !db.fs.Exists(name) {
		return false, nil
	}
	f, err := db.fs.Open(p, name)
	if err != nil {
		return false, err
	}
	data := make([]byte, f.Size())
	if err := f.ReadAt(p, data, 0); err != nil {
		return false, err
	}
	var state manifestState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&state); err != nil {
		return false, fmt.Errorf("rocks: manifest decode: %w", err)
	}
	db.nextFileNum = state.NextFileNum
	db.seq = state.LastSeq
	db.levels = newLevels(db.opts.Levels)
	for i, fs := range state.Levels {
		if i >= db.opts.Levels {
			break
		}
		for _, mt := range fs {
			h := &tableHandle{meta: tableMeta{
				fileNum:  mt.FileNum,
				size:     mt.Size,
				entries:  mt.Entries,
				smallest: mt.Smallest,
				largest:  mt.Largest,
			}}
			if i == 0 {
				db.levels.files[0] = append(db.levels.files[0], h)
			} else {
				db.levels.addSorted(i, h)
			}
		}
	}
	return true, nil
}
