package rocks

import "container/heap"

// internalIterator walks entries in internal-key order (user key ascending,
// sequence descending). Implemented by skiplistIter and tableIter.
type internalIterator interface {
	SeekToFirst()
	Seek(userKey []byte)
	Valid() bool
	Next()
	Key() []byte
	Value() []byte
	Kind() entryKind
	Seq() uint64
}

// mergingIter merges several internalIterators. Sources must be given
// newest-first: when two sources hold identical internal keys (which cannot
// happen for distinct seqs) the lower source index wins.
type mergingIter struct {
	iters []internalIterator
	h     mergeHeap
}

type mergeItem struct {
	it  internalIterator
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := compareInternal(h[i].it.Key(), h[i].it.Seq(), h[j].it.Key(), h[j].it.Seq())
	if c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func newMergingIter(iters ...internalIterator) *mergingIter {
	return &mergingIter{iters: iters}
}

func (m *mergingIter) rebuild() {
	m.h = m.h[:0]
	for i, it := range m.iters {
		if it.Valid() {
			m.h = append(m.h, mergeItem{it: it, src: i})
		}
	}
	heap.Init(&m.h)
}

// SeekToFirst positions all sources at their start.
func (m *mergingIter) SeekToFirst() {
	for _, it := range m.iters {
		it.SeekToFirst()
	}
	m.rebuild()
}

// Seek positions at the first entry with user key >= target.
func (m *mergingIter) Seek(target []byte) {
	for _, it := range m.iters {
		it.Seek(target)
	}
	m.rebuild()
}

// Valid reports whether an entry is available.
func (m *mergingIter) Valid() bool { return len(m.h) > 0 }

// Next advances past the current smallest entry.
func (m *mergingIter) Next() {
	top := m.h[0]
	top.it.Next()
	if top.it.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}

// Key returns the current user key.
func (m *mergingIter) Key() []byte { return m.h[0].it.Key() }

// Value returns the current value.
func (m *mergingIter) Value() []byte { return m.h[0].it.Value() }

// Kind returns the current entry kind.
func (m *mergingIter) Kind() entryKind { return m.h[0].it.Kind() }

// Seq returns the current sequence number.
func (m *mergingIter) Seq() uint64 { return m.h[0].it.Seq() }
