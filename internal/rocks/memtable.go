package rocks

import "kvcsd/internal/sim"

// memtable is the in-memory write buffer: a skiplist plus size accounting.
type memtable struct {
	list *skiplist
}

func newMemtable(rng *sim.RNG) *memtable {
	return &memtable{list: newSkiplist(rng)}
}

// add inserts a put or delete.
func (m *memtable) add(key, value []byte, kind entryKind, seq uint64) {
	k := append([]byte(nil), key...)
	var v []byte
	if kind == kindValue {
		v = append([]byte(nil), value...)
	}
	m.list.insert(k, v, kind, seq)
}

// get returns (value, found, deleted) for the newest visible entry.
func (m *memtable) get(key []byte, snapshot uint64) ([]byte, bool, bool) {
	n, ok := m.list.get(key, snapshot)
	if !ok {
		return nil, false, false
	}
	if n.kind == kindDelete {
		return nil, true, true
	}
	return n.value, true, false
}

// approximateBytes returns the memory footprint.
func (m *memtable) approximateBytes() int64 { return m.list.bytes }

// count returns the number of entries (including shadowed versions).
func (m *memtable) count() int { return m.list.count }

// empty reports whether the memtable holds no entries.
func (m *memtable) empty() bool { return m.list.count == 0 }

// iterator walks entries in internal-key order.
func (m *memtable) iterator() *skiplistIter { return m.list.iterator() }
