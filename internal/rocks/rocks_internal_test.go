package rocks

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"kvcsd/internal/sim"
)

// --- bloom filter --------------------------------------------------------

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(keys [][]byte) bool {
		if len(keys) == 0 {
			return true
		}
		bf := newBloomFilter(keys, 10)
		for _, k := range keys {
			if !bf.mayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 10000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("key-%08d", i)))
	}
	bf := newBloomFilter(keys, 10)
	fp := 0
	probes := 10000
	for i := 0; i < probes; i++ {
		if bf.mayContain([]byte(fmt.Sprintf("absent-%08d", i))) {
			fp++
		}
	}
	// 10 bits/key should give ~1% FPR; allow generous slack.
	if rate := float64(fp) / float64(probes); rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	bf := newBloomFilter(keys, 10)
	re := unmarshalBloom(bf.marshal())
	for _, k := range keys {
		if !re.mayContain(k) {
			t.Fatalf("unmarshaled filter lost key %q", k)
		}
	}
	if bf.sizeBytes() != int64(len(bf.marshal())) {
		t.Fatal("sizeBytes mismatch")
	}
}

func TestBloomNilSafety(t *testing.T) {
	var bf *bloomFilter
	if !bf.mayContain([]byte("x")) {
		t.Fatal("nil filter must not reject")
	}
	if bf.marshal() != nil || bf.sizeBytes() != 0 {
		t.Fatal("nil filter marshal should be empty")
	}
	if newBloomFilter(nil, 10) != nil {
		t.Fatal("empty key set should produce nil filter")
	}
	if newBloomFilter([][]byte{[]byte("k")}, 0) != nil {
		t.Fatal("0 bits per key should disable the filter")
	}
	if unmarshalBloom([]byte{1}) != nil {
		t.Fatal("too-short data should produce nil filter")
	}
}

// --- skiplist ------------------------------------------------------------

func TestSkiplistSortedOrder(t *testing.T) {
	rng := sim.NewRNG(1)
	s := newSkiplist(rng)
	keys := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, k := range keys {
		s.insert([]byte(k), []byte("v"), kindValue, uint64(i+1))
	}
	it := s.iterator()
	it.SeekToFirst()
	var got []string
	for it.Valid() {
		got = append(got, string(it.Key()))
		it.Next()
	}
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v", got)
		}
	}
	if s.count != 5 {
		t.Fatalf("count %d", s.count)
	}
}

func TestSkiplistVersionOrdering(t *testing.T) {
	s := newSkiplist(sim.NewRNG(2))
	s.insert([]byte("k"), []byte("old"), kindValue, 1)
	s.insert([]byte("k"), []byte("new"), kindValue, 5)
	// Snapshot 10 sees the newest version.
	n, ok := s.get([]byte("k"), 10)
	if !ok || string(n.value) != "new" {
		t.Fatalf("got %+v ok=%v", n, ok)
	}
	// Snapshot 3 sees only the old version.
	n, ok = s.get([]byte("k"), 3)
	if !ok || string(n.value) != "old" {
		t.Fatalf("snapshot read got %q", n.value)
	}
}

func TestSkiplistSeek(t *testing.T) {
	s := newSkiplist(sim.NewRNG(3))
	for i := 0; i < 100; i += 10 {
		s.insert([]byte(fmt.Sprintf("%03d", i)), nil, kindValue, uint64(i+1))
	}
	it := s.iterator()
	it.Seek([]byte("045"))
	if !it.Valid() || string(it.Key()) != "050" {
		t.Fatalf("seek landed on %q", it.Key())
	}
	it.Seek([]byte("zzz"))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestSkiplistPropertySorted(t *testing.T) {
	f := func(keys [][]byte) bool {
		s := newSkiplist(sim.NewRNG(4))
		for i, k := range keys {
			s.insert(append([]byte(nil), k...), nil, kindValue, uint64(i+1))
		}
		it := s.iterator()
		it.SeekToFirst()
		var prev []byte
		var prevSeq uint64
		for it.Valid() {
			if prev != nil && compareInternal(prev, prevSeq, it.Key(), it.Seq()) > 0 {
				return false
			}
			prev = append([]byte(nil), it.Key()...)
			prevSeq = it.Seq()
			it.Next()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- merging iterator ----------------------------------------------------

func TestMergingIterInterleaves(t *testing.T) {
	a := newSkiplist(sim.NewRNG(5))
	b := newSkiplist(sim.NewRNG(6))
	for i := 0; i < 10; i += 2 {
		a.insert([]byte(fmt.Sprintf("%02d", i)), []byte("a"), kindValue, uint64(100+i))
	}
	for i := 1; i < 10; i += 2 {
		b.insert([]byte(fmt.Sprintf("%02d", i)), []byte("b"), kindValue, uint64(100+i))
	}
	m := newMergingIter(a.iterator(), b.iterator())
	m.SeekToFirst()
	for i := 0; i < 10; i++ {
		if !m.Valid() {
			t.Fatalf("iterator exhausted at %d", i)
		}
		if string(m.Key()) != fmt.Sprintf("%02d", i) {
			t.Fatalf("at %d got %q", i, m.Key())
		}
		m.Next()
	}
	if m.Valid() {
		t.Fatal("iterator should be exhausted")
	}
}

func TestMergingIterNewestVersionFirst(t *testing.T) {
	older := newSkiplist(sim.NewRNG(7))
	newer := newSkiplist(sim.NewRNG(8))
	older.insert([]byte("k"), []byte("old"), kindValue, 1)
	newer.insert([]byte("k"), []byte("new"), kindValue, 9)
	m := newMergingIter(newer.iterator(), older.iterator())
	m.SeekToFirst()
	if string(m.Value()) != "new" || m.Seq() != 9 {
		t.Fatalf("first version %q seq=%d", m.Value(), m.Seq())
	}
	m.Next()
	if string(m.Value()) != "old" {
		t.Fatalf("second version %q", m.Value())
	}
}

func TestMergingIterSeek(t *testing.T) {
	a := newSkiplist(sim.NewRNG(9))
	for i := 0; i < 20; i++ {
		a.insert([]byte(fmt.Sprintf("%02d", i)), nil, kindValue, uint64(i+1))
	}
	m := newMergingIter(a.iterator())
	m.Seek([]byte("07"))
	if string(m.Key()) != "07" {
		t.Fatalf("seek got %q", m.Key())
	}
}

// --- internal key comparison --------------------------------------------

func TestCompareInternal(t *testing.T) {
	if compareInternal([]byte("a"), 5, []byte("b"), 1) >= 0 {
		t.Fatal("user key should dominate")
	}
	if compareInternal([]byte("a"), 5, []byte("a"), 1) >= 0 {
		t.Fatal("higher seq should sort first")
	}
	if compareInternal([]byte("a"), 5, []byte("a"), 5) != 0 {
		t.Fatal("identical internal keys should compare equal")
	}
}

func TestCompareInternalTotalOrderProperty(t *testing.T) {
	f := func(a, b []byte, sa, sb uint64) bool {
		c1 := compareInternal(a, sa, b, sb)
		c2 := compareInternal(b, sb, a, sa)
		if c1 == 0 {
			return c2 == 0 && bytes.Equal(a, b) && sa == sb
		}
		return (c1 < 0) == (c2 > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- block cache ---------------------------------------------------------

func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(100)
	c.put(1, 0, make([]byte, 40))
	c.put(1, 1, make([]byte, 40))
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("entry 0 missing")
	}
	c.put(1, 2, make([]byte, 40)) // evicts LRU = block 1
	if _, ok := c.get(1, 1); ok {
		t.Fatal("block 1 should have been evicted")
	}
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("recently used block 0 should survive")
	}
}

func TestBlockCacheEvictFile(t *testing.T) {
	c := newBlockCache(1000)
	c.put(1, 0, make([]byte, 10))
	c.put(2, 0, make([]byte, 10))
	c.evictFile(1)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("file 1 blocks should be gone")
	}
	if _, ok := c.get(2, 0); !ok {
		t.Fatal("file 2 blocks should remain")
	}
}

func TestBlockCacheNilSafe(t *testing.T) {
	var c *blockCache
	if _, ok := c.get(1, 1); ok {
		t.Fatal("nil cache get should miss")
	}
	c.put(1, 1, nil) // must not panic
	c.evictFile(1)
	c.clear()
	if newBlockCache(0) != nil {
		t.Fatal("0-capacity cache should be nil")
	}
}

func TestBlockCacheUpdateInPlace(t *testing.T) {
	c := newBlockCache(100)
	c.put(1, 0, make([]byte, 10))
	c.put(1, 0, make([]byte, 30))
	if c.used != 30 {
		t.Fatalf("used %d after update", c.used)
	}
}

// --- options -------------------------------------------------------------

func TestSanitizeFillsDefaults(t *testing.T) {
	o := Options{}.sanitize()
	d := DefaultOptions()
	if o.MemtableBytes != d.MemtableBytes || o.Levels != d.Levels ||
		o.CompactionWorkers != d.CompactionWorkers {
		t.Fatalf("sanitize left zeros: %+v", o)
	}
}

func TestCompactionModeString(t *testing.T) {
	if CompactionAuto.String() != "auto" || CompactionDeferred.String() != "deferred" ||
		CompactionDisabled.String() != "disabled" || CompactionMode(9).String() != "unknown" {
		t.Fatal("mode strings wrong")
	}
}

// --- levels --------------------------------------------------------------

func TestLevelsSortedInsertAndOverlap(t *testing.T) {
	l := newLevels(3)
	mk := func(num uint64, lo, hi string) *tableHandle {
		return &tableHandle{meta: tableMeta{fileNum: num, size: 10, smallest: []byte(lo), largest: []byte(hi)}}
	}
	l.addSorted(1, mk(2, "m", "r"))
	l.addSorted(1, mk(1, "a", "f"))
	l.addSorted(1, mk(3, "s", "z"))
	if l.files[1][0].meta.fileNum != 1 || l.files[1][2].meta.fileNum != 3 {
		t.Fatal("level not sorted by smallest key")
	}
	ov := l.overlapping(1, []byte("e"), []byte("n"))
	if len(ov) != 2 {
		t.Fatalf("overlap count %d", len(ov))
	}
	if c := l.candidateForKey(1, []byte("t")); c == nil || c.meta.fileNum != 3 {
		t.Fatal("candidate lookup failed")
	}
	if c := l.candidateForKey(1, []byte("g")); c != nil {
		t.Fatal("gap key should have no candidate")
	}
	l.remove(1, 2)
	if len(l.files[1]) != 2 {
		t.Fatal("remove failed")
	}
	if l.levelBytes(1) != 20 {
		t.Fatalf("level bytes %d", l.levelBytes(1))
	}
	if l.totalTables() != 2 {
		t.Fatalf("total tables %d", l.totalTables())
	}
}

func TestKeyRangeOf(t *testing.T) {
	tables := []*tableHandle{
		{meta: tableMeta{smallest: []byte("g"), largest: []byte("m")}},
		{meta: tableMeta{smallest: []byte("a"), largest: []byte("e")}},
		{meta: tableMeta{smallest: []byte("p"), largest: []byte("z")}},
	}
	lo, hi := keyRangeOf(tables)
	if string(lo) != "a" || string(hi) != "z" {
		t.Fatalf("range %q..%q", lo, hi)
	}
}

// --- sorted check helper used by other tests -----------------------------

func assertSorted(t *testing.T, keys [][]byte) {
	t.Helper()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
		t.Fatal("keys not sorted")
	}
}
