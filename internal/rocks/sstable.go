package rocks

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"kvcsd/internal/host"
	"kvcsd/internal/sim"
	"kvcsd/internal/vfs"
)

// SSTable layout:
//
//	dataBlock*  filterBlock  indexBlock  footer
//
// data block entry: klen uvarint | vlen uvarint | kind byte | seq uvarint |
// key | value. The index block stores, per data block, the last user key and
// the block's (offset, length). The footer is fixed-size at the file tail.
//
// Readers pin the index and bloom filter in memory at open (as RocksDB
// commonly configures) and fetch data blocks through the DB's block cache.

const tableMagic = 0x6b76637364746231 // "kvcsdtb1"

const footerSize = 8 * 6

var errTableCorrupt = errors.New("rocks: sstable corrupt")

// tableMeta describes one on-disk table.
type tableMeta struct {
	fileNum  uint64
	size     int64
	entries  int64
	smallest []byte // user keys
	largest  []byte
}

func tableFileName(n uint64) string { return fmt.Sprintf("%06d.sst", n) }

// tableBuilder accumulates sorted internal entries into an SSTable file.
type tableBuilder struct {
	f              *vfs.File
	h              *host.Host
	opts           *Options
	blockBuf       []byte
	entriesInBlock int64
	index          []indexEntry
	keys           [][]byte // for the bloom filter
	offset         int64
	entries        int64
	smallest       []byte
	largest        []byte
	lastKey        []byte
}

type indexEntry struct {
	lastKey []byte
	offset  int64
	length  int
}

func newTableBuilder(f *vfs.File, h *host.Host, opts *Options) *tableBuilder {
	return &tableBuilder{f: f, h: h, opts: opts}
}

// add appends an entry; keys must arrive in ascending internal order.
func (b *tableBuilder) add(p *sim.Proc, key, value []byte, kind entryKind, seq uint64) error {
	var hdr [2*binary.MaxVarintLen32 + 1 + binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(value)))
	hdr[n] = byte(kind)
	n++
	n += binary.PutUvarint(hdr[n:], seq)
	b.blockBuf = append(b.blockBuf, hdr[:n]...)
	b.blockBuf = append(b.blockBuf, key...)
	b.blockBuf = append(b.blockBuf, value...)
	b.keys = append(b.keys, append([]byte(nil), key...))
	b.entries++
	b.entriesInBlock++
	if b.smallest == nil {
		b.smallest = append([]byte(nil), key...)
	}
	b.lastKey = append(b.lastKey[:0], key...)
	if len(b.blockBuf) >= b.opts.BlockBytes {
		return b.finishBlock(p)
	}
	return nil
}

func (b *tableBuilder) finishBlock(p *sim.Proc) error {
	if len(b.blockBuf) == 0 {
		return nil
	}
	b.h.BlockOp(p, 1)                   // block assembly + checksum CPU
	b.h.Compares(p, 4*b.entriesInBlock) // per-entry encode work
	b.entriesInBlock = 0
	b.index = append(b.index, indexEntry{
		lastKey: append([]byte(nil), b.lastKey...),
		offset:  b.offset,
		length:  len(b.blockBuf),
	})
	if err := b.f.Append(p, b.blockBuf); err != nil {
		return err
	}
	b.offset += int64(len(b.blockBuf))
	b.blockBuf = b.blockBuf[:0]
	return nil
}

// finish flushes remaining data, writes filter/index/footer, and syncs.
func (b *tableBuilder) finish(p *sim.Proc) (int64, error) {
	if err := b.finishBlock(p); err != nil {
		return 0, err
	}
	b.largest = append([]byte(nil), b.lastKey...)

	filter := newBloomFilter(b.keys, b.opts.BloomBitsPerKey).marshal()
	filterOff := b.offset
	if len(filter) > 0 {
		if err := b.f.Append(p, filter); err != nil {
			return 0, err
		}
		b.offset += int64(len(filter))
	}

	idx := b.marshalIndex()
	indexOff := b.offset
	if err := b.f.Append(p, idx); err != nil {
		return 0, err
	}
	b.offset += int64(len(idx))

	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(filterOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(filter)))
	binary.LittleEndian.PutUint64(footer[16:], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(idx)))
	binary.LittleEndian.PutUint64(footer[32:], uint64(b.entries))
	binary.LittleEndian.PutUint64(footer[40:], tableMagic)
	if err := b.f.Append(p, footer[:]); err != nil {
		return 0, err
	}
	b.offset += footerSize
	if err := b.f.Sync(p); err != nil {
		return 0, err
	}
	return b.offset, nil
}

func (b *tableBuilder) marshalIndex() []byte {
	var out []byte
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b.index)))
	out = append(out, tmp[:]...)
	for _, e := range b.index {
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(e.lastKey)))
		out = append(out, tmp[:]...)
		out = append(out, e.lastKey...)
		var off [8]byte
		binary.LittleEndian.PutUint64(off[:], uint64(e.offset))
		out = append(out, off[:]...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(e.length))
		out = append(out, tmp[:]...)
	}
	return out
}

// tableReader serves point lookups and scans from one SSTable.
type tableReader struct {
	f       *vfs.File
	h       *host.Host
	meta    tableMeta
	index   []indexEntry
	filter  *bloomFilter
	cache   *blockCache
	entries int64
}

// openTable reads the footer, index, and filter (charged I/O).
func openTable(p *sim.Proc, f *vfs.File, h *host.Host, cache *blockCache, meta tableMeta) (*tableReader, error) {
	size := f.Size()
	if size < footerSize {
		return nil, errTableCorrupt
	}
	var footer [footerSize]byte
	if err := f.ReadAt(p, footer[:], size-footerSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[40:]) != tableMagic {
		return nil, errTableCorrupt
	}
	filterOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	filterLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	indexOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[24:]))
	entries := int64(binary.LittleEndian.Uint64(footer[32:]))

	r := &tableReader{f: f, h: h, meta: meta, cache: cache, entries: entries}
	if filterLen > 0 {
		fb := make([]byte, filterLen)
		if err := f.ReadAt(p, fb, filterOff); err != nil {
			return nil, err
		}
		r.filter = unmarshalBloom(fb)
	}
	ib := make([]byte, indexLen)
	if err := f.ReadAt(p, ib, indexOff); err != nil {
		return nil, err
	}
	if err := r.unmarshalIndex(ib); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *tableReader) unmarshalIndex(data []byte) error {
	if len(data) < 4 {
		return errTableCorrupt
	}
	n := int(binary.LittleEndian.Uint32(data))
	pos := 4
	r.index = make([]indexEntry, 0, n)
	for i := 0; i < n; i++ {
		if pos+4 > len(data) {
			return errTableCorrupt
		}
		klen := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if pos+klen+12 > len(data) {
			return errTableCorrupt
		}
		key := append([]byte(nil), data[pos:pos+klen]...)
		pos += klen
		off := int64(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		length := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		r.index = append(r.index, indexEntry{lastKey: key, offset: off, length: length})
	}
	return nil
}

// blockFor returns the index of the first block whose lastKey >= userKey,
// or len(index) when the key is past the table.
func (r *tableReader) blockFor(p *sim.Proc, userKey []byte) int {
	lo, hi := 0, len(r.index)
	steps := 0
	for lo < hi {
		mid := (lo + hi) / 2
		steps++
		if bytes.Compare(r.index[mid].lastKey, userKey) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r.h.Compares(p, int64(steps))
	return lo
}

// readBlock fetches a data block through the block cache.
func (r *tableReader) readBlock(p *sim.Proc, i int) ([]byte, error) {
	if data, ok := r.cache.get(r.meta.fileNum, i); ok {
		return data, nil
	}
	e := r.index[i]
	data := make([]byte, e.length)
	if err := r.f.ReadAt(p, data, e.offset); err != nil {
		return nil, err
	}
	r.h.BlockOp(p, 1) // decode + checksum verify
	r.cache.put(r.meta.fileNum, i, data)
	return data, nil
}

// blockEntry is a decoded data-block entry (slices alias the block).
type blockEntry struct {
	key   []byte
	value []byte
	kind  entryKind
	seq   uint64
}

// decodeEntries parses a data block.
func decodeEntries(data []byte) ([]blockEntry, error) {
	var out []blockEntry
	pos := 0
	for pos < len(data) {
		klen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, errTableCorrupt
		}
		pos += n
		vlen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, errTableCorrupt
		}
		pos += n
		if pos >= len(data) {
			return nil, errTableCorrupt
		}
		kind := entryKind(data[pos])
		pos++
		seq, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, errTableCorrupt
		}
		pos += n
		if pos+int(klen)+int(vlen) > len(data) {
			return nil, errTableCorrupt
		}
		key := data[pos : pos+int(klen)]
		pos += int(klen)
		value := data[pos : pos+int(vlen)]
		pos += int(vlen)
		out = append(out, blockEntry{key: key, value: value, kind: kind, seq: seq})
	}
	return out, nil
}

// get returns the newest visible entry for userKey at snapshot.
// Returns (value, found, deleted, error).
func (r *tableReader) get(p *sim.Proc, userKey []byte, snapshot uint64) ([]byte, bool, bool, error) {
	if bytes.Compare(userKey, r.meta.smallest) < 0 || bytes.Compare(userKey, r.meta.largest) > 0 {
		return nil, false, false, nil
	}
	if !r.filter.mayContain(userKey) {
		r.h.Compares(p, 4) // filter probe CPU
		return nil, false, false, nil
	}
	bi := r.blockFor(p, userKey)
	for ; bi < len(r.index); bi++ {
		data, err := r.readBlock(p, bi)
		if err != nil {
			return nil, false, false, err
		}
		entries, err := decodeEntries(data)
		if err != nil {
			return nil, false, false, err
		}
		r.h.Compares(p, int64(len(entries))/4+1) // in-block scan CPU
		for _, e := range entries {
			c := bytes.Compare(e.key, userKey)
			if c < 0 {
				continue
			}
			if c > 0 {
				return nil, false, false, nil
			}
			if e.seq > snapshot {
				continue // too new for this snapshot
			}
			if e.kind == kindDelete {
				return nil, true, true, nil
			}
			return append([]byte(nil), e.value...), true, false, nil
		}
		// Key could continue into the next block only if it equals this
		// block's lastKey; the loop handles that naturally.
		if bytes.Compare(r.index[bi].lastKey, userKey) > 0 {
			return nil, false, false, nil
		}
	}
	return nil, false, false, nil
}

// tableIter iterates a table in internal-key order.
type tableIter struct {
	r       *tableReader
	p       *sim.Proc
	block   int
	entries []blockEntry
	pos     int
	err     error
}

func (r *tableReader) iterator(p *sim.Proc) *tableIter {
	return &tableIter{r: r, p: p, block: -1}
}

// prefetchBlocks pulls a run of data blocks starting at i into the block
// cache with one large file read (sequential-scan readahead): compactions
// and range scans stream tables without paying per-block media latency.
func (r *tableReader) prefetchBlocks(p *sim.Proc, i int) error {
	const runBlocks = 16
	end := i + runBlocks
	if end > len(r.index) {
		end = len(r.index)
	}
	// Trim the run at the first already-cached block.
	for j := i; j < end; j++ {
		if _, ok := r.cache.get(r.meta.fileNum, j); ok {
			end = j
			break
		}
	}
	if end <= i {
		return nil
	}
	start := r.index[i].offset
	last := r.index[end-1]
	span := last.offset + int64(last.length) - start
	buf := make([]byte, span)
	if err := r.f.ReadAt(p, buf, start); err != nil {
		return err
	}
	for j := i; j < end; j++ {
		e := r.index[j]
		blk := buf[e.offset-start : e.offset-start+int64(e.length)]
		r.cache.put(r.meta.fileNum, j, append([]byte(nil), blk...))
	}
	r.h.BlockOp(p, int64(end-i))
	return nil
}

func (it *tableIter) loadBlock(i int) bool {
	if i >= len(it.r.index) {
		it.entries = nil
		return false
	}
	if it.r.cache != nil {
		if _, ok := it.r.cache.get(it.r.meta.fileNum, i); !ok {
			if err := it.r.prefetchBlocks(it.p, i); err != nil {
				it.err = err
				it.entries = nil
				return false
			}
		}
	}
	data, err := it.r.readBlock(it.p, i)
	if err != nil {
		it.err = err
		it.entries = nil
		return false
	}
	entries, err := decodeEntries(data)
	if err != nil {
		it.err = err
		it.entries = nil
		return false
	}
	it.block = i
	it.entries = entries
	it.pos = 0
	return len(entries) > 0
}

// SeekToFirst positions at the table's first entry.
func (it *tableIter) SeekToFirst() {
	it.loadBlock(0)
}

// Seek positions at the first entry with user key >= target.
func (it *tableIter) Seek(target []byte) {
	bi := it.r.blockFor(it.p, target)
	if !it.loadBlock(bi) {
		return
	}
	for it.pos < len(it.entries) && bytes.Compare(it.entries[it.pos].key, target) < 0 {
		it.pos++
	}
	it.r.h.Compares(it.p, int64(it.pos+1))
	if it.pos >= len(it.entries) {
		it.loadBlock(it.block + 1)
	}
}

// Valid reports whether the iterator points at an entry.
func (it *tableIter) Valid() bool {
	return it.err == nil && it.entries != nil && it.pos < len(it.entries)
}

// Next advances one entry.
func (it *tableIter) Next() {
	it.pos++
	if it.pos >= len(it.entries) {
		it.loadBlock(it.block + 1)
	}
}

// Key returns the current user key.
func (it *tableIter) Key() []byte { return it.entries[it.pos].key }

// Value returns the current value.
func (it *tableIter) Value() []byte { return it.entries[it.pos].value }

// Kind returns the current entry kind.
func (it *tableIter) Kind() entryKind { return it.entries[it.pos].kind }

// Seq returns the current sequence number.
func (it *tableIter) Seq() uint64 { return it.entries[it.pos].seq }

// Err returns any I/O or decode error the iterator hit.
func (it *tableIter) Err() error { return it.err }
