package rocks

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"kvcsd/internal/host"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
	"kvcsd/internal/vfs"
)

type dbFixture struct {
	env *sim.Env
	h   *host.Host
	fs  *vfs.FS
	st  *stats.IOStats
	rng *sim.RNG
}

func newDBFixture() *dbFixture {
	env := sim.NewEnv()
	st := stats.NewIOStats()
	scfg := ssd.DefaultConfig()
	scfg.ConvBlocks = 1 << 20 // 4 GiB
	dev := ssd.New(env, scfg, st)
	h := host.New(env, host.DefaultHostConfig())
	fsys := vfs.New(dev, h, vfs.DefaultConfig(), st)
	return &dbFixture{env: env, h: h, fs: fsys, st: st, rng: sim.NewRNG(99)}
}

// smallOpts returns options sized so tests exercise flushes and compactions.
func smallOpts(mode CompactionMode) Options {
	o := DefaultOptions()
	o.MemtableBytes = 32 << 10
	o.BaseLevelBytes = 128 << 10
	o.TargetFileBytes = 64 << 10
	o.CompactionMode = mode
	return o
}

func (fx *dbFixture) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	fx.env.Go("test", fn)
	fx.env.Run()
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%08d-%032d", i, i)) }

func TestPutGetRoundTrip(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, err := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if err := db.Put(p, key(i), value(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 1000; i++ {
			v, found, err := db.Get(p, key(i))
			if err != nil || !found || !bytes.Equal(v, value(i)) {
				t.Fatalf("get %d: found=%v err=%v v=%q", i, found, err, v)
			}
		}
		if _, found, _ := db.Get(p, []byte("missing")); found {
			t.Fatal("missing key found")
		}
		if err := db.Close(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOverwriteReturnsNewest(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		_ = db.Put(p, []byte("k"), []byte("v1"))
		_ = db.Put(p, []byte("k"), []byte("v2"))
		_ = db.Flush(p)
		_ = db.Put(p, []byte("k"), []byte("v3"))
		v, found, _ := db.Get(p, []byte("k"))
		if !found || string(v) != "v3" {
			t.Fatalf("got %q", v)
		}
		_ = db.Close(p)
	})
}

func TestDeleteHidesKey(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		_ = db.Put(p, []byte("k"), []byte("v"))
		_ = db.Flush(p)
		_ = db.Delete(p, []byte("k"))
		if _, found, _ := db.Get(p, []byte("k")); found {
			t.Fatal("deleted key still visible")
		}
		// Deleted key also invisible after flush and compaction.
		_ = db.Flush(p)
		_ = db.CompactAll(p)
		if _, found, _ := db.Get(p, []byte("k")); found {
			t.Fatal("deleted key visible after compaction")
		}
		_ = db.Close(p)
	})
}

func TestFlushCreatesL0AndGetStillWorks(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionDisabled))
		for i := 0; i < 500; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		if err := db.Flush(p); err != nil {
			t.Fatal(err)
		}
		if db.L0Files() == 0 {
			t.Fatal("flush produced no L0 tables")
		}
		for i := 0; i < 500; i += 37 {
			v, found, err := db.Get(p, key(i))
			if err != nil || !found || !bytes.Equal(v, value(i)) {
				t.Fatalf("get %d after flush failed", i)
			}
		}
		_ = db.Close(p)
	})
}

func TestAutoCompactionKeepsDataAndBoundsL0(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		n := 5000
		for i := 0; i < n; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		if err := db.WaitBackgroundIdle(p); err != nil {
			t.Fatal(err)
		}
		if db.Metrics().Compactions == 0 {
			t.Fatal("expected compactions to run")
		}
		if db.L0Files() >= db.Options().L0CompactionTrigger {
			t.Fatalf("L0 not compacted: %d files", db.L0Files())
		}
		for i := 0; i < n; i += 113 {
			v, found, err := db.Get(p, key(i))
			if err != nil || !found || !bytes.Equal(v, value(i)) {
				t.Fatalf("get %d after compaction: found=%v err=%v", i, found, err)
			}
		}
		_ = db.Close(p)
	})
}

func TestDeferredCompactAllSinglePass(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionDeferred))
		n := 3000
		for i := 0; i < n; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		preCompactions := db.Metrics().Compactions
		if preCompactions != 0 {
			t.Fatal("deferred mode ran compactions during insert")
		}
		if err := db.CompactAll(p); err != nil {
			t.Fatal(err)
		}
		counts := db.LevelTableCounts()
		for l := 0; l < len(counts)-1; l++ {
			if counts[l] != 0 {
				t.Fatalf("level %d not empty after full compaction: %v", l, counts)
			}
		}
		if counts[len(counts)-1] == 0 {
			t.Fatal("bottom level empty")
		}
		for i := 0; i < n; i += 97 {
			v, found, _ := db.Get(p, key(i))
			if !found || !bytes.Equal(v, value(i)) {
				t.Fatalf("get %d after CompactAll", i)
			}
		}
		_ = db.Close(p)
	})
}

func TestDisabledModeL0Grows(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionDisabled))
		for i := 0; i < 5000; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		_ = db.Flush(p)
		if db.Metrics().Compactions != 0 {
			t.Fatal("disabled mode ran compactions")
		}
		if db.L0Files() < db.Options().L0CompactionTrigger {
			t.Fatalf("expected many L0 files, got %d", db.L0Files())
		}
		_ = db.Close(p)
	})
}

func TestScanRange(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		for i := 0; i < 2000; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		_ = db.Flush(p)
		var got [][]byte
		n, err := db.Scan(p, key(100), key(200), 0, func(k, v []byte) bool {
			got = append(got, k)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != 100 || len(got) != 100 {
			t.Fatalf("scan returned %d", n)
		}
		assertSorted(t, got)
		if !bytes.Equal(got[0], key(100)) || !bytes.Equal(got[99], key(199)) {
			t.Fatalf("range bounds wrong: %q..%q", got[0], got[99])
		}
		_ = db.Close(p)
	})
}

func TestScanSkipsDeletedAndShadowed(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		for i := 0; i < 100; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		_ = db.Flush(p)
		_ = db.Delete(p, key(50))
		_ = db.Put(p, key(60), []byte("updated"))
		seen := map[string]string{}
		_, err := db.Scan(p, nil, nil, 0, func(k, v []byte) bool {
			seen[string(k)] = string(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := seen[string(key(50))]; ok {
			t.Fatal("deleted key in scan")
		}
		if seen[string(key(60))] != "updated" {
			t.Fatalf("shadowed value returned: %q", seen[string(key(60))])
		}
		if len(seen) != 99 {
			t.Fatalf("scan saw %d keys", len(seen))
		}
		_ = db.Close(p)
	})
}

func TestScanLimit(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		for i := 0; i < 100; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		n, _ := db.Scan(p, nil, nil, 7, func(k, v []byte) bool { return true })
		if n != 7 {
			t.Fatalf("limit ignored: %d", n)
		}
		// Early stop by callback.
		count := 0
		_, _ = db.Scan(p, nil, nil, 0, func(k, v []byte) bool {
			count++
			return count < 3
		})
		if count != 3 {
			t.Fatalf("callback stop ignored: %d", count)
		}
		_ = db.Close(p)
	})
}

func TestWALRecoveryAfterCrash(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		opts := smallOpts(CompactionAuto)
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", opts)
		for i := 0; i < 200; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		_ = db.wal.sync(p) // data reached the log...
		// ...and the process "crashes": no Close, reopen over the same files.
		db.closed = true // silence old workers
		db.signalWork()
		db2, err := Open(p, fx.h, fx.fs, fx.rng.Fork(2), "db0", opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i += 13 {
			v, found, err := db2.Get(p, key(i))
			if err != nil || !found || !bytes.Equal(v, value(i)) {
				t.Fatalf("recovered get %d: found=%v err=%v", i, found, err)
			}
		}
		_ = db2.Close(p)
	})
}

func TestReopenAfterCleanClose(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		opts := smallOpts(CompactionAuto)
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", opts)
		n := 3000
		for i := 0; i < n; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		_ = db.WaitBackgroundIdle(p)
		seqBefore := db.Seq()
		if err := db.Close(p); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(p, fx.h, fx.fs, fx.rng.Fork(3), "db0", opts)
		if err != nil {
			t.Fatal(err)
		}
		if db2.Seq() < seqBefore {
			t.Fatalf("sequence regressed: %d < %d", db2.Seq(), seqBefore)
		}
		for i := 0; i < n; i += 311 {
			v, found, _ := db2.Get(p, key(i))
			if !found || !bytes.Equal(v, value(i)) {
				t.Fatalf("get %d after reopen", i)
			}
		}
		_ = db2.Close(p)
	})
}

func TestDisableWALSkipsLogFiles(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		opts := smallOpts(CompactionAuto)
		opts.DisableWAL = true
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", opts)
		_ = db.Put(p, []byte("k"), []byte("v"))
		for _, f := range fx.fs.List() {
			if bytes.Contains([]byte(f), []byte("wal-")) {
				t.Fatalf("WAL file exists with WAL disabled: %s", f)
			}
		}
		_ = db.Close(p)
	})
}

func TestWriteStallUnderLoad(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		opts := smallOpts(CompactionAuto)
		opts.MemtableBytes = 4 << 10
		opts.L0CompactionTrigger = 2
		opts.L0SlowdownTrigger = 3
		opts.L0StopTrigger = 5
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", opts)
		for i := 0; i < 4000; i++ {
			if err := db.Put(p, key(i), value(i)); err != nil {
				t.Fatal(err)
			}
		}
		_ = db.WaitBackgroundIdle(p)
		m := db.Metrics()
		if m.SlowdownTime == 0 && m.StallTime == 0 {
			t.Fatal("expected write slowdown or stall under L0 pressure")
		}
		// Data is still all there.
		for i := 0; i < 4000; i += 501 {
			if _, found, _ := db.Get(p, key(i)); !found {
				t.Fatalf("key %d lost under stall", i)
			}
		}
		_ = db.Close(p)
	})
}

func TestConcurrentWriters(t *testing.T) {
	fx := newDBFixture()
	var db *DB
	fx.env.Go("open", func(p *sim.Proc) {
		var err error
		db, err = Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		if err != nil {
			t.Fatal(err)
		}
		var writers []*sim.Proc
		for w := 0; w < 8; w++ {
			w := w
			writers = append(writers, p.Env().Go("writer", func(wp *sim.Proc) {
				for i := 0; i < 300; i++ {
					if err := db.Put(wp, key(w*1000+i), value(w*1000+i)); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}))
		}
		p.Join(writers...)
		_ = db.WaitBackgroundIdle(p)
		for w := 0; w < 8; w++ {
			for i := 0; i < 300; i += 53 {
				v, found, _ := db.Get(p, key(w*1000+i))
				if !found || !bytes.Equal(v, value(w*1000+i)) {
					t.Fatalf("writer %d key %d missing", w, i)
				}
			}
		}
		_ = db.Close(p)
	})
	fx.env.Run()
}

func TestClosedDBRejectsOps(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		_ = db.Close(p)
		if err := db.Put(p, []byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
			t.Fatalf("put after close: %v", err)
		}
		if _, _, err := db.Get(p, []byte("k")); !errors.Is(err, ErrClosed) {
			t.Fatalf("get after close: %v", err)
		}
		if _, err := db.Scan(p, nil, nil, 0, nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("scan after close: %v", err)
		}
		if err := db.Close(p); !errors.Is(err, ErrClosed) {
			t.Fatalf("double close: %v", err)
		}
	})
}

func TestCompactionReducesReadPath(t *testing.T) {
	// After full compaction a get should touch fewer tables than before.
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionDeferred))
		for i := 0; i < 4000; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		_ = db.Flush(p)
		tablesBefore := db.TotalTables()
		_ = db.CompactAll(p)
		if db.TotalTables() > tablesBefore {
			t.Fatalf("compaction grew table count: %d -> %d", tablesBefore, db.TotalTables())
		}
		counts := db.LevelTableCounts()
		if counts[len(counts)-1] != db.TotalTables() {
			t.Fatalf("tables not all at bottom level: %v", counts)
		}
		// A point get after full compaction consults exactly one table.
		hitsBefore, missesBefore := db.CacheHitStats()
		_, _, _ = db.Get(p, key(1234))
		hits, misses := db.CacheHitStats()
		if (hits-hitsBefore)+(misses-missesBefore) > 2 {
			t.Fatalf("get touched too many blocks: %d", (hits-hitsBefore)+(misses-missesBefore))
		}
		_ = db.Close(p)
	})
}

func TestMetricsAccounting(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionAuto))
		for i := 0; i < 5000; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		_ = db.WaitBackgroundIdle(p)
		m := db.Metrics()
		if m.Flushes == 0 || m.FlushBytes == 0 {
			t.Fatalf("flush metrics empty: %+v", m)
		}
		if m.Compactions == 0 || m.CompactReadBytes == 0 || m.CompactWriteBytes == 0 {
			t.Fatalf("compaction metrics empty: %+v", m)
		}
		_ = db.Close(p)
	})
}

func TestBlockCacheSpeedsRepeatGets(t *testing.T) {
	fx := newDBFixture()
	fx.run(t, func(p *sim.Proc) {
		db, _ := Open(p, fx.h, fx.fs, fx.rng, "db0", smallOpts(CompactionDeferred))
		for i := 0; i < 2000; i++ {
			_ = db.Put(p, key(i), value(i))
		}
		_ = db.CompactAll(p)
		fx.fs.DropCaches()
		db.DropBlockCache()
		t0 := p.Now()
		_, _, _ = db.Get(p, key(777))
		cold := p.Now() - t0
		t1 := p.Now()
		_, _, _ = db.Get(p, key(777))
		warm := p.Now() - t1
		if warm >= cold {
			t.Fatalf("cached get (%v) not faster than cold get (%v)", warm, cold)
		}
		hits, _ := db.CacheHitStats()
		if hits == 0 {
			t.Fatal("no cache hits recorded")
		}
		_ = db.Close(p)
	})
}

func TestRandomOpsMatchReferenceMap(t *testing.T) {
	f := func(seed int64) bool {
		fx := newDBFixture()
		ok := true
		fx.run(t, func(p *sim.Proc) {
			rng := sim.NewRNG(seed)
			db, err := Open(p, fx.h, fx.fs, rng.Fork(1), "prop", smallOpts(CompactionAuto))
			if err != nil {
				ok = false
				return
			}
			ref := map[string]string{}
			for op := 0; op < 800; op++ {
				k := fmt.Sprintf("k%03d", rng.Intn(200))
				switch rng.Intn(10) {
				case 0: // delete
					_ = db.Delete(p, []byte(k))
					delete(ref, k)
				case 1: // flush sometimes
					_ = db.Flush(p)
				default:
					v := fmt.Sprintf("v%d-%d", op, rng.Intn(1000))
					_ = db.Put(p, []byte(k), []byte(v))
					ref[k] = v
				}
			}
			_ = db.WaitBackgroundIdle(p)
			for k, v := range ref {
				got, found, err := db.Get(p, []byte(k))
				if err != nil || !found || string(got) != v {
					ok = false
					return
				}
			}
			// And scan agrees with the reference size.
			n, err := db.Scan(p, nil, nil, 0, func(k, v []byte) bool {
				if ref[string(k)] != string(v) {
					ok = false
				}
				return true
			})
			if err != nil || n != len(ref) {
				ok = false
			}
			_ = db.Close(p)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
