package rocks

import (
	"bytes"
	"fmt"
	"testing"

	"kvcsd/internal/host"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
	"kvcsd/internal/vfs"
)

type tableFixture struct {
	env *sim.Env
	h   *host.Host
	fs  *vfs.FS
}

func newTableFixture() *tableFixture {
	env := sim.NewEnv()
	st := stats.NewIOStats()
	scfg := ssd.DefaultConfig()
	scfg.ConvBlocks = 1 << 18
	dev := ssd.New(env, scfg, st)
	h := host.New(env, host.DefaultHostConfig())
	return &tableFixture{env: env, h: h, fs: vfs.New(dev, h, vfs.DefaultConfig(), st)}
}

func buildTestTable(t *testing.T, p *sim.Proc, fx *tableFixture, name string, n int) (*tableReader, tableMeta) {
	t.Helper()
	opts := DefaultOptions()
	f, err := fx.fs.Create(p, name)
	if err != nil {
		t.Fatal(err)
	}
	b := newTableBuilder(f, fx.h, &opts)
	for i := 0; i < n; i++ {
		if err := b.add(p, key(i), value(i), kindValue, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	size, err := b.finish(p)
	if err != nil {
		t.Fatal(err)
	}
	meta := tableMeta{fileNum: 1, size: size, entries: int64(n),
		smallest: append([]byte(nil), key(0)...), largest: append([]byte(nil), key(n-1)...)}
	rf, err := fx.fs.Open(p, name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := openTable(p, rf, fx.h, newBlockCache(1<<20), meta)
	if err != nil {
		t.Fatal(err)
	}
	return r, meta
}

func TestTableBuildAndGet(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		r, _ := buildTestTable(t, p, fx, "t.sst", 1000)
		for i := 0; i < 1000; i += 17 {
			v, found, del, err := r.get(p, key(i), ^uint64(0))
			if err != nil || !found || del || !bytes.Equal(v, value(i)) {
				t.Fatalf("get %d: found=%v del=%v err=%v", i, found, del, err)
			}
		}
		// Absent keys (within and outside range).
		if _, found, _, _ := r.get(p, []byte("key-00000500x"), ^uint64(0)); found {
			t.Fatal("found absent key")
		}
		if _, found, _, _ := r.get(p, []byte("zzz"), ^uint64(0)); found {
			t.Fatal("found key past range")
		}
		if _, found, _, _ := r.get(p, []byte("aaa"), ^uint64(0)); found {
			t.Fatal("found key before range")
		}
	})
	fx.env.Run()
}

func TestTableSnapshotVisibility(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		opts := DefaultOptions()
		f, _ := fx.fs.Create(p, "v.sst")
		b := newTableBuilder(f, fx.h, &opts)
		// Two versions of one key, newest (higher seq) first in internal order.
		_ = b.add(p, []byte("k"), []byte("new"), kindValue, 10)
		_ = b.add(p, []byte("k"), []byte("old"), kindValue, 3)
		size, _ := b.finish(p)
		meta := tableMeta{fileNum: 2, size: size, entries: 2, smallest: []byte("k"), largest: []byte("k")}
		rf, _ := fx.fs.Open(p, "v.sst")
		r, err := openTable(p, rf, fx.h, newBlockCache(1<<20), meta)
		if err != nil {
			t.Fatal(err)
		}
		v, found, _, _ := r.get(p, []byte("k"), ^uint64(0))
		if !found || string(v) != "new" {
			t.Fatalf("latest snapshot got %q", v)
		}
		v, found, _, _ = r.get(p, []byte("k"), 5)
		if !found || string(v) != "old" {
			t.Fatalf("snapshot 5 got %q found=%v", v, found)
		}
		if _, found, _, _ = r.get(p, []byte("k"), 2); found {
			t.Fatal("snapshot 2 should see nothing")
		}
	})
	fx.env.Run()
}

func TestTableTombstone(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		opts := DefaultOptions()
		f, _ := fx.fs.Create(p, "d.sst")
		b := newTableBuilder(f, fx.h, &opts)
		_ = b.add(p, []byte("gone"), nil, kindDelete, 5)
		size, _ := b.finish(p)
		meta := tableMeta{fileNum: 3, size: size, entries: 1, smallest: []byte("gone"), largest: []byte("gone")}
		rf, _ := fx.fs.Open(p, "d.sst")
		r, _ := openTable(p, rf, fx.h, newBlockCache(1<<20), meta)
		_, found, del, _ := r.get(p, []byte("gone"), ^uint64(0))
		if !found || !del {
			t.Fatalf("tombstone not surfaced: found=%v del=%v", found, del)
		}
	})
	fx.env.Run()
}

func TestTableIteratorFullWalk(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		n := 2500
		r, _ := buildTestTable(t, p, fx, "walk.sst", n)
		it := r.iterator(p)
		it.SeekToFirst()
		count := 0
		var prev []byte
		for it.Valid() {
			if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
				t.Fatal("iterator out of order")
			}
			prev = append(prev[:0], it.Key()...)
			count++
			it.Next()
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		if count != n {
			t.Fatalf("walked %d of %d", count, n)
		}
	})
	fx.env.Run()
}

func TestTableIteratorSeek(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		r, _ := buildTestTable(t, p, fx, "seek.sst", 1000)
		it := r.iterator(p)
		it.Seek(key(500))
		if !it.Valid() || !bytes.Equal(it.Key(), key(500)) {
			t.Fatalf("seek landed on %q", it.Key())
		}
		// Seek between keys lands on the next one.
		it.Seek([]byte("key-00000500a"))
		if !it.Valid() || !bytes.Equal(it.Key(), key(501)) {
			t.Fatalf("between-seek landed on %q", it.Key())
		}
		// Seek past the end.
		it.Seek([]byte("zzz"))
		if it.Valid() {
			t.Fatal("seek past end should be invalid")
		}
	})
	fx.env.Run()
}

func TestTableCorruptFooter(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "bad.sst")
		_ = f.Append(p, make([]byte, 100)) // garbage, no magic
		_ = f.Sync(p)
		rf, _ := fx.fs.Open(p, "bad.sst")
		if _, err := openTable(p, rf, fx.h, nil, tableMeta{}); err == nil {
			t.Fatal("corrupt table opened successfully")
		}
		// Too short for a footer at all.
		g, _ := fx.fs.Create(p, "tiny.sst")
		_ = g.Append(p, []byte("x"))
		rg, _ := fx.fs.Open(p, "tiny.sst")
		if _, err := openTable(p, rg, fx.h, nil, tableMeta{}); err == nil {
			t.Fatal("tiny table opened successfully")
		}
	})
	fx.env.Run()
}

func TestDecodeEntriesCorrupt(t *testing.T) {
	if _, err := decodeEntries([]byte{0xFF}); err == nil {
		t.Fatal("truncated varint accepted")
	}
	if _, err := decodeEntries([]byte{10, 10, 0}); err == nil {
		t.Fatal("overflowing lengths accepted")
	}
}

func TestBloomSkipAvoidsBlockReads(t *testing.T) {
	fx := newTableFixture()
	var missReads, presentReads int64
	fx.env.Go("test", func(p *sim.Proc) {
		r, _ := buildTestTable(t, p, fx, "bloom.sst", 5000)
		fx.fs.DropCaches()
		st := fx.fs.Stats()
		before := st.MediaRead.Value()
		// Probe many absent keys: blooms should skip nearly all block reads.
		for i := 0; i < 100; i++ {
			_, found, _, _ := r.get(p, []byte(fmt.Sprintf("nope-%04d", i)), ^uint64(0))
			if found {
				t.Fatal("absent key found")
			}
		}
		missReads = st.MediaRead.Value() - before
		before = st.MediaRead.Value()
		for i := 0; i < 100; i++ {
			_, found, _, _ := r.get(p, key(i*37), ^uint64(0))
			if !found {
				t.Fatal("present key missing")
			}
		}
		presentReads = st.MediaRead.Value() - before
	})
	fx.env.Run()
	if missReads >= presentReads/4 {
		t.Fatalf("bloom filters ineffective: miss reads %d vs present reads %d", missReads, presentReads)
	}
}

// --- WAL -----------------------------------------------------------------

func TestWALRoundTrip(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "test.log")
		w := newWALWriter(f)
		for i := 0; i < 100; i++ {
			if err := w.append(p, kindValue, uint64(i+1), key(i), value(i)); err != nil {
				t.Fatal(err)
			}
		}
		_ = w.append(p, kindDelete, 101, []byte("dead"), nil)
		if err := w.sync(p); err != nil {
			t.Fatal(err)
		}
		rf, _ := fx.fs.Open(p, "test.log")
		recs, err := replayWAL(p, rf)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 101 {
			t.Fatalf("replayed %d records", len(recs))
		}
		for i := 0; i < 100; i++ {
			r := recs[i]
			if r.kind != kindValue || r.seq != uint64(i+1) ||
				!bytes.Equal(r.key, key(i)) || !bytes.Equal(r.value, value(i)) {
				t.Fatalf("record %d mismatch: %+v", i, r)
			}
		}
		if recs[100].kind != kindDelete || string(recs[100].key) != "dead" {
			t.Fatalf("tombstone record wrong: %+v", recs[100])
		}
	})
	fx.env.Run()
}

func TestWALTornTailIgnored(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "torn.log")
		w := newWALWriter(f)
		_ = w.append(p, kindValue, 1, []byte("k1"), []byte("v1"))
		_ = w.append(p, kindValue, 2, []byte("k2"), []byte("v2"))
		// A torn record: header promising more bytes than exist.
		_ = f.Append(p, []byte{0, 0, 0, 0, 255, 0, 0, 0, 1, 2, 3})
		_ = f.Sync(p)
		rf, _ := fx.fs.Open(p, "torn.log")
		recs, err := replayWAL(p, rf)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 {
			t.Fatalf("replayed %d records, want 2", len(recs))
		}
	})
	fx.env.Run()
}

func TestWALEmptyFile(t *testing.T) {
	fx := newTableFixture()
	fx.env.Go("test", func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "empty.log")
		rf, _ := fx.fs.Open(p, f.Name())
		recs, err := replayWAL(p, rf)
		if err != nil || len(recs) != 0 {
			t.Fatalf("empty replay: %d recs, err %v", len(recs), err)
		}
	})
	fx.env.Run()
}
