// Package rocks implements the software key-value store baseline the paper
// compares KV-CSD against: a leveled-compaction LSM-tree in the style of
// RocksDB/LevelDB, running on a host filesystem (internal/vfs) and host CPU
// cores (internal/host).
//
// The store has a skiplist memtable, a CRC-checked write-ahead log, 4 KiB
// block SSTables with bloom filters and index blocks, L0..Lmax leveled
// compaction executed by background worker processes, an LRU block cache
// ("aggressive client-side caching", Fig 10/12), and L0-trigger write
// slowdown/stall logic (the write stalls of paper §I). Compaction can run
// automatically, be deferred to an explicit call, or be disabled — the three
// RocksDB modes of Figure 9.
package rocks

import "time"

// CompactionMode selects when compaction runs (Figure 9's three baselines).
type CompactionMode int

// Compaction modes.
const (
	// CompactionAuto compacts in the background as data is inserted
	// (RocksDB's default).
	CompactionAuto CompactionMode = iota
	// CompactionDeferred holds compaction until CompactAll is called.
	CompactionDeferred
	// CompactionDisabled never compacts.
	CompactionDisabled
)

// String names the mode.
func (m CompactionMode) String() string {
	switch m {
	case CompactionAuto:
		return "auto"
	case CompactionDeferred:
		return "deferred"
	case CompactionDisabled:
		return "disabled"
	default:
		return "unknown"
	}
}

// Options configures a DB instance.
type Options struct {
	// MemtableBytes is the write buffer size; a full memtable becomes
	// immutable and is flushed to an L0 table.
	MemtableBytes int64
	// BlockBytes is the SSTable data-block size.
	BlockBytes int
	// BloomBitsPerKey sizes per-table bloom filters (0 disables).
	BloomBitsPerKey int
	// BlockCacheBytes is the LRU block cache capacity (0 disables).
	BlockCacheBytes int64
	// Levels is the number of LSM levels including L0.
	Levels int
	// L0CompactionTrigger is the L0 file count that schedules compaction.
	L0CompactionTrigger int
	// L0SlowdownTrigger delays each write when L0 grows past it.
	L0SlowdownTrigger int
	// L0StopTrigger stalls writes entirely until L0 shrinks.
	L0StopTrigger int
	// BaseLevelBytes is the target size of L1; each level below is
	// LevelMultiplier times larger.
	BaseLevelBytes int64
	// LevelMultiplier is the size ratio between adjacent levels.
	LevelMultiplier int
	// TargetFileBytes is the max output SSTable size during compaction.
	TargetFileBytes int64
	// CompactionWorkers is the number of background compaction/flush
	// processes (RocksDB's default of 2 per instance, per the paper).
	CompactionWorkers int
	// CompactionMode selects auto / deferred / disabled.
	CompactionMode CompactionMode
	// DisableWAL skips write-ahead logging.
	DisableWAL bool
	// SyncWrites fsyncs the WAL on every write batch.
	SyncWrites bool
	// SlowdownDelay is the per-write penalty in the slowdown regime.
	SlowdownDelay time.Duration
}

// DefaultOptions mirrors RocksDB-flavoured defaults scaled for simulation.
func DefaultOptions() Options {
	return Options{
		MemtableBytes:       4 << 20,
		BlockBytes:          4096,
		BloomBitsPerKey:     10,
		BlockCacheBytes:     32 << 20,
		Levels:              7,
		L0CompactionTrigger: 4,
		L0SlowdownTrigger:   20,
		L0StopTrigger:       36,
		BaseLevelBytes:      16 << 20,
		LevelMultiplier:     10,
		TargetFileBytes:     8 << 20,
		CompactionWorkers:   2,
		CompactionMode:      CompactionAuto,
		DisableWAL:          false,
		SyncWrites:          false,
		SlowdownDelay:       time.Millisecond,
	}
}

// sanitize fills zero fields with defaults.
func (o Options) sanitize() Options {
	d := DefaultOptions()
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = d.MemtableBytes
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = d.BlockBytes
	}
	if o.BlockCacheBytes < 0 {
		o.BlockCacheBytes = 0
	}
	if o.Levels <= 1 {
		o.Levels = d.Levels
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = d.L0CompactionTrigger
	}
	if o.L0SlowdownTrigger <= 0 {
		o.L0SlowdownTrigger = d.L0SlowdownTrigger
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = d.L0StopTrigger
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = d.BaseLevelBytes
	}
	if o.LevelMultiplier <= 1 {
		o.LevelMultiplier = d.LevelMultiplier
	}
	if o.TargetFileBytes <= 0 {
		o.TargetFileBytes = d.TargetFileBytes
	}
	if o.CompactionWorkers <= 0 {
		o.CompactionWorkers = d.CompactionWorkers
	}
	if o.SlowdownDelay <= 0 {
		o.SlowdownDelay = d.SlowdownDelay
	}
	return o
}
