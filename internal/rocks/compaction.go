package rocks

import (
	"bytes"
	"errors"
	"fmt"

	"kvcsd/internal/sim"
	"kvcsd/internal/vfs"
)

// compactionJob describes one unit of background work: either a memtable
// flush or a table-merging compaction.
type compactionJob struct {
	flush      *memtable // non-nil for flush jobs
	flushWAL   string    // WAL file to delete once the flush lands
	level      int       // input level for merge jobs
	inputs     []*tableHandle
	overlaps   []*tableHandle // inputs from level+1
	output     int            // destination level
	everything bool           // full-DB single-pass compaction (deferred mode)
}

// levelTargetBytes returns the size target for a level (L1 = base).
func (db *DB) levelTargetBytes(level int) int64 {
	if level < 1 {
		return 0
	}
	t := db.opts.BaseLevelBytes
	for i := 1; i < level; i++ {
		t *= int64(db.opts.LevelMultiplier)
	}
	return t
}

// pickCompaction chooses the highest-priority merge job, or nil.
func (db *DB) pickCompaction() *compactionJob {
	// L0 by file count.
	if len(db.levels.files[0]) >= db.opts.L0CompactionTrigger {
		inputs := append([]*tableHandle(nil), db.levels.files[0]...)
		lo, hi := keyRangeOf(inputs)
		overlaps := db.levels.overlapping(1, lo, hi)
		return &compactionJob{level: 0, inputs: inputs, overlaps: overlaps, output: 1}
	}
	// Deeper levels by size score.
	for level := 1; level < db.opts.Levels-1; level++ {
		if db.levels.levelBytes(level) <= db.levelTargetBytes(level) {
			continue
		}
		if len(db.levels.files[level]) == 0 {
			continue
		}
		// Round-robin through the level.
		idx := db.compactPtr[level] % len(db.levels.files[level])
		db.compactPtr[level]++
		in := db.levels.files[level][idx]
		overlaps := db.levels.overlapping(level+1, in.meta.smallest, in.meta.largest)
		return &compactionJob{level: level, inputs: []*tableHandle{in}, overlaps: overlaps, output: level + 1}
	}
	return nil
}

func keyRangeOf(tables []*tableHandle) (lo, hi []byte) {
	for _, t := range tables {
		if lo == nil || bytes.Compare(t.meta.smallest, lo) < 0 {
			lo = t.meta.smallest
		}
		if hi == nil || bytes.Compare(t.meta.largest, hi) > 0 {
			hi = t.meta.largest
		}
	}
	return lo, hi
}

// runFlush writes an immutable memtable out as an L0 table.
func (db *DB) runFlush(p *sim.Proc, job *compactionJob) error {
	mem := job.flush
	if !mem.empty() {
		meta, err := db.buildTable(p, mem.iterator(), 0, false)
		if err != nil {
			return err
		}
		db.levels.addL0(meta)
		db.metrics.Flushes++
	}
	// Drop the flushed memtable and its WAL.
	for i, m := range db.imms {
		if m == mem {
			db.imms = append(db.imms[:i:i], db.imms[i+1:]...)
			break
		}
	}
	if job.flushWAL != "" && db.fs.Exists(job.flushWAL) {
		if err := db.fs.Remove(p, job.flushWAL); err != nil {
			return err
		}
	}
	return db.saveManifest(p)
}

// runCompaction merges job inputs into the output level.
func (db *DB) runCompaction(p *sim.Proc, job *compactionJob) error {
	all := append(append([]*tableHandle(nil), job.inputs...), job.overlaps...)
	var iters []internalIterator
	var inBytes int64
	for _, t := range all {
		r, err := t.open(p, db)
		if err != nil {
			return err
		}
		iters = append(iters, r.iterator(p))
		inBytes += t.meta.size
	}
	db.metrics.CompactReadBytes += inBytes

	merged := newMergingIter(iters...)
	merged.SeekToFirst()

	// Tombstones may be dropped only when nothing deeper can hold the key.
	bottom := job.output >= db.opts.Levels-1 || job.everything
	if !bottom {
		deeperEmpty := true
		for l := job.output + 1; l < db.opts.Levels; l++ {
			if len(db.levels.files[l]) > 0 {
				deeperEmpty = false
				break
			}
		}
		bottom = deeperEmpty
	}

	outputs, err := db.writeMerged(p, merged, bottom)
	if err != nil {
		return err
	}

	// Install: remove inputs, add outputs, persist.
	if job.everything {
		for l := range db.levels.files {
			db.levels.files[l] = nil
		}
	} else {
		for _, t := range job.inputs {
			db.levels.remove(job.level, t.meta.fileNum)
		}
		for _, t := range job.overlaps {
			db.levels.remove(job.output, t.meta.fileNum)
		}
	}
	for _, t := range outputs {
		if job.output == 0 {
			db.levels.addL0(t)
		} else {
			db.levels.addSorted(job.output, t)
		}
		db.metrics.CompactWriteBytes += t.meta.size
	}
	db.metrics.Compactions++
	for _, t := range all {
		db.obsolete = append(db.obsolete, t.meta.fileNum)
	}
	db.deleteObsolete(p)
	return db.saveManifest(p)
}

// writeMerged drains a merging iterator into size-capped output tables,
// dropping shadowed versions and (at the bottom) tombstones.
func (db *DB) writeMerged(p *sim.Proc, merged *mergingIter, bottom bool) ([]*tableHandle, error) {
	var outputs []*tableHandle
	var builder *tableBuilder
	var f interface{ Close() error }
	var curNum uint64
	var curSmallest []byte
	var curEntries int64
	var lastKey []byte

	finish := func() error {
		if builder == nil {
			return nil
		}
		size, err := builder.finish(p)
		if err != nil {
			return err
		}
		outputs = append(outputs, &tableHandle{meta: tableMeta{
			fileNum:  curNum,
			size:     size,
			entries:  curEntries,
			smallest: curSmallest,
			largest:  append([]byte(nil), builder.largest...),
		}})
		_ = f.Close()
		builder = nil
		return nil
	}

	for merged.Valid() {
		key, value, kind, seq := merged.Key(), merged.Value(), merged.Kind(), merged.Seq()
		db.h.Compares(p, 10) // heap sift + decode + re-encode per merged entry
		if lastKey != nil && bytes.Equal(key, lastKey) {
			merged.Next()
			continue // shadowed older version
		}
		lastKey = append(lastKey[:0], key...)
		if kind == kindDelete && bottom {
			merged.Next()
			continue // tombstone reached the bottom: drop
		}
		if builder == nil {
			curNum = db.nextFileNum
			db.nextFileNum++
			file, err := db.fs.Create(p, db.fileName(curNum))
			if err != nil {
				return nil, err
			}
			builder = newTableBuilder(file, db.h, &db.opts)
			f = file
			curSmallest = append([]byte(nil), key...)
			curEntries = 0
		}
		if err := builder.add(p, key, value, kind, seq); err != nil {
			return nil, err
		}
		curEntries++
		if builder.offset+int64(len(builder.blockBuf)) >= db.opts.TargetFileBytes {
			if err := finish(); err != nil {
				return nil, err
			}
		}
		merged.Next()
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return outputs, nil
}

// buildTable writes a whole memtable (or iterator) as one table file on the
// given level and returns its handle.
func (db *DB) buildTable(p *sim.Proc, it internalIterator, level int, seeked bool) (*tableHandle, error) {
	if !seeked {
		it.SeekToFirst()
	}
	num := db.nextFileNum
	db.nextFileNum++
	file, err := db.fs.Create(p, db.fileName(num))
	if err != nil {
		return nil, err
	}
	builder := newTableBuilder(file, db.h, &db.opts)
	var smallest []byte
	var entries int64
	for it.Valid() {
		if smallest == nil {
			smallest = append([]byte(nil), it.Key()...)
		}
		if err := builder.add(p, it.Key(), it.Value(), it.Kind(), it.Seq()); err != nil {
			return nil, err
		}
		entries++
		it.Next()
	}
	size, err := builder.finish(p)
	if err != nil {
		return nil, err
	}
	db.metrics.FlushBytes += size
	_ = file.Close()
	_ = level
	return &tableHandle{meta: tableMeta{
		fileNum:  num,
		size:     size,
		entries:  entries,
		smallest: smallest,
		largest:  append([]byte(nil), builder.largest...),
	}}, nil
}

// deleteObsolete removes replaced table files when no iterators are live.
// The batch is detached first because vfs.Remove can yield (syscall cost),
// letting other processes queue more obsolete files or call this again.
func (db *DB) deleteObsolete(p *sim.Proc) {
	if db.activeIters > 0 || len(db.obsolete) == 0 {
		return
	}
	batch := db.obsolete
	db.obsolete = nil
	for _, num := range batch {
		name := db.fileName(num)
		if db.fs.Exists(name) {
			if err := db.fs.Remove(p, name); err != nil && !errors.Is(err, vfs.ErrNotExist) {
				panic(fmt.Sprintf("rocks: delete obsolete %s: %v", name, err))
			}
		}
		db.cache.evictFile(num)
	}
}
