package rocks

import "container/list"

// blockCache is the DB's LRU block cache — the "aggressive client-side
// caching" whose effect Figures 10 and 12 attribute RocksDB's improving
// query times to.
type blockCache struct {
	capacity int64
	used     int64
	ll       *list.List
	idx      map[blockCacheKey]*list.Element
	hits     int64
	misses   int64
}

type blockCacheKey struct {
	file  uint64
	block int
}

type blockCacheEntry struct {
	key  blockCacheKey
	data []byte
}

func newBlockCache(capacity int64) *blockCache {
	if capacity <= 0 {
		return nil
	}
	return &blockCache{capacity: capacity, ll: list.New(), idx: make(map[blockCacheKey]*list.Element)}
}

func (c *blockCache) get(file uint64, block int) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	if el, ok := c.idx[blockCacheKey{file, block}]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*blockCacheEntry).data, true
	}
	c.misses++
	return nil, false
}

func (c *blockCache) put(file uint64, block int, data []byte) {
	if c == nil {
		return
	}
	key := blockCacheKey{file, block}
	if el, ok := c.idx[key]; ok {
		c.used += int64(len(data)) - int64(len(el.Value.(*blockCacheEntry).data))
		el.Value.(*blockCacheEntry).data = data
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&blockCacheEntry{key: key, data: data})
		c.idx[key] = el
		c.used += int64(len(data))
	}
	for c.used > c.capacity && c.ll.Len() > 0 {
		back := c.ll.Back()
		ent := back.Value.(*blockCacheEntry)
		c.ll.Remove(back)
		delete(c.idx, ent.key)
		c.used -= int64(len(ent.data))
	}
}

// evictFile drops all cached blocks of a deleted table file.
func (c *blockCache) evictFile(file uint64) {
	if c == nil {
		return
	}
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*blockCacheEntry)
		if ent.key.file == file {
			c.ll.Remove(el)
			delete(c.idx, ent.key)
			c.used -= int64(len(ent.data))
		}
		el = next
	}
}

func (c *blockCache) clear() {
	if c == nil {
		return
	}
	c.ll.Init()
	c.idx = make(map[blockCacheKey]*list.Element)
	c.used = 0
}
