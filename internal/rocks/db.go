package rocks

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"kvcsd/internal/host"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
	"kvcsd/internal/vfs"
)

// Errors returned by DB operations.
var (
	ErrClosed     = errors.New("rocks: db closed")
	ErrBackground = errors.New("rocks: background error")
)

// Metrics exposes per-DB background activity for the I/O-statistics figures.
type Metrics struct {
	Flushes           int64
	Compactions       int64
	FlushBytes        int64
	CompactReadBytes  int64
	CompactWriteBytes int64
	StallTime         time.Duration
	SlowdownTime      time.Duration
}

// DB is one software key-value store instance (one "RocksDB instance" of the
// paper's experiments). All methods must be called from simulation processes.
type DB struct {
	env  *sim.Env
	h    *host.Host
	fs   *vfs.FS
	st   *stats.IOStats
	opts Options
	name string
	rng  *sim.RNG

	mem     *memtable
	imms    []*memtable
	wal     *walWriter
	walName string
	walSeq  uint64
	seq     uint64

	nextFileNum uint64
	levels      *levels
	cache       *blockCache
	compactPtr  []int

	closed            bool
	bgErr             error
	pendingFlush      []*compactionJob
	runningJobs       int
	compactionRunning bool
	activeIters       int
	obsolete          []uint64

	workWaiters  []*sim.Proc
	condWaiters  []*sim.Proc
	stallWaiters []*sim.Proc
	workersDone  []*sim.Event
	manifestLock *sim.Resource
	manifestSeq  uint64

	metrics Metrics
}

// Open creates or reopens a DB named name on the given filesystem. Existing
// state (MANIFEST, WALs) is recovered. Must run inside a simulation process.
func Open(p *sim.Proc, h *host.Host, fsys *vfs.FS, rng *sim.RNG, name string, opts Options) (*DB, error) {
	opts = opts.sanitize()
	db := &DB{
		env:         p.Env(),
		h:           h,
		fs:          fsys,
		st:          fsys.Stats(),
		opts:        opts,
		name:        name,
		rng:         rng,
		nextFileNum: 1,
		cache:       newBlockCache(opts.BlockCacheBytes),
		compactPtr:  make([]int, opts.Levels),
	}
	db.manifestLock = sim.NewResource(p.Env(), name+"-manifest", 1)
	db.levels = newLevels(opts.Levels)
	db.mem = newMemtable(rng.Fork(1))
	if _, err := db.loadManifest(p); err != nil {
		return nil, err
	}
	if err := db.recoverWALs(p); err != nil {
		return nil, err
	}
	if err := db.rotateWAL(p); err != nil {
		return nil, err
	}
	for i := 0; i < opts.CompactionWorkers; i++ {
		w := db.env.Go(fmt.Sprintf("%s-bg%d", name, i), db.worker)
		db.workersDone = append(db.workersDone, w.Done())
	}
	return db, nil
}

func (db *DB) fileName(n uint64) string { return db.name + "/" + tableFileName(n) }

func (db *DB) walFileName(n uint64) string { return fmt.Sprintf("%s/wal-%06d.log", db.name, n) }

// recoverWALs replays surviving log files (oldest first) into the memtable.
func (db *DB) recoverWALs(p *sim.Proc) error {
	if db.opts.DisableWAL {
		return nil
	}
	prefix := db.name + "/wal-"
	var logs []string
	for _, f := range db.fs.List() {
		if strings.HasPrefix(f, prefix) {
			logs = append(logs, f)
		}
	}
	sort.Strings(logs)
	for _, lg := range logs {
		f, err := db.fs.Open(p, lg)
		if err != nil {
			return err
		}
		recs, err := replayWAL(p, f)
		if err != nil {
			return err
		}
		for _, r := range recs {
			db.mem.add(r.key, r.value, r.kind, r.seq)
			if r.seq > db.seq {
				db.seq = r.seq
			}
		}
	}
	// Persist replayed data as an L0 table before removing logs, so a crash
	// during or right after recovery loses nothing.
	if len(logs) > 0 && !db.mem.empty() {
		t, err := db.buildTable(p, db.mem.iterator(), 0, false)
		if err != nil {
			return err
		}
		db.levels.addL0(t)
		db.mem = newMemtable(db.rng.Fork(int64(db.seq) + 7))
		if err := db.saveManifest(p); err != nil {
			return err
		}
	}
	for _, lg := range logs {
		if err := db.fs.Remove(p, lg); err != nil {
			return err
		}
	}
	return nil
}

// rotateWAL starts a fresh log file for the current memtable.
func (db *DB) rotateWAL(p *sim.Proc) error {
	if db.opts.DisableWAL {
		return nil
	}
	db.walSeq++
	name := db.walFileName(db.walSeq)
	f, err := db.fs.Create(p, name)
	if err != nil {
		return err
	}
	db.wal = newWALWriter(f)
	db.walName = name
	return nil
}

// --- Background machinery ----------------------------------------------

func (db *DB) wakeAll(list *[]*sim.Proc) {
	for _, w := range *list {
		db.env.Wake(w)
	}
	*list = (*list)[:0]
}

func (db *DB) signalWork() { db.wakeAll(&db.workWaiters) }

// broadcast wakes condition and stall waiters so they re-check predicates.
func (db *DB) broadcast() {
	db.wakeAll(&db.condWaiters)
	db.wakeAll(&db.stallWaiters)
}

// needsCompaction reports (side-effect free) whether auto compaction has work.
func (db *DB) needsCompaction() bool {
	if len(db.levels.files[0]) >= db.opts.L0CompactionTrigger {
		return true
	}
	for level := 1; level < db.opts.Levels-1; level++ {
		if db.levels.levelBytes(level) > db.levelTargetBytes(level) && len(db.levels.files[level]) > 0 {
			return true
		}
	}
	return false
}

func (db *DB) nextJob() *compactionJob {
	if db.bgErr != nil {
		return nil
	}
	if len(db.pendingFlush) > 0 {
		job := db.pendingFlush[0]
		db.pendingFlush = db.pendingFlush[1:]
		return job
	}
	if db.opts.CompactionMode == CompactionAuto && !db.compactionRunning && db.needsCompaction() {
		if job := db.pickCompaction(); job != nil {
			db.compactionRunning = true
			return job
		}
	}
	return nil
}

func (db *DB) worker(p *sim.Proc) {
	for {
		job := db.nextJob()
		if job == nil {
			if db.closed {
				return
			}
			db.workWaiters = append(db.workWaiters, p)
			p.Block()
			continue
		}
		db.runningJobs++
		var err error
		if job.flush != nil {
			err = db.runFlush(p, job)
		} else {
			err = db.runCompaction(p, job)
			db.compactionRunning = false
		}
		if err != nil && db.bgErr == nil {
			db.bgErr = err
		}
		db.runningJobs--
		db.signalWork()
		db.broadcast()
	}
}

// waitCond parks the process until cond() holds; background job completions
// re-check it.
func (db *DB) waitCond(p *sim.Proc, cond func() bool) {
	for !cond() {
		db.condWaiters = append(db.condWaiters, p)
		p.Block()
	}
}

// --- Write path ---------------------------------------------------------

// maybeStall applies the L0 slowdown/stop backpressure of a leveled LSM.
func (db *DB) maybeStall(p *sim.Proc) {
	if db.opts.CompactionMode != CompactionAuto {
		return
	}
	for len(db.levels.files[0]) >= db.opts.L0StopTrigger && db.bgErr == nil {
		t0 := p.Now()
		db.stallWaiters = append(db.stallWaiters, p)
		p.Block()
		db.metrics.StallTime += time.Duration(p.Now() - t0)
	}
	if len(db.levels.files[0]) >= db.opts.L0SlowdownTrigger {
		p.Sleep(db.opts.SlowdownDelay)
		db.metrics.SlowdownTime += db.opts.SlowdownDelay
	}
}

func (db *DB) write(p *sim.Proc, key, value []byte, kind entryKind) error {
	if db.closed {
		return ErrClosed
	}
	if db.bgErr != nil {
		return fmt.Errorf("%w: %v", ErrBackground, db.bgErr)
	}
	db.maybeStall(p)
	db.seq++
	if !db.opts.DisableWAL {
		if err := db.wal.append(p, kind, db.seq, key, value); err != nil {
			return err
		}
		if db.opts.SyncWrites {
			if err := db.wal.sync(p); err != nil {
				return err
			}
		}
	}
	db.mem.add(key, value, kind, db.seq)
	db.h.KVOp(p, 1)
	if db.mem.approximateBytes() >= db.opts.MemtableBytes {
		return db.rotateMemtable(p)
	}
	return nil
}

// rotateMemtable freezes the active memtable and queues its flush.
func (db *DB) rotateMemtable(p *sim.Proc) error {
	if db.mem.empty() {
		return nil
	}
	frozen := db.mem
	walName := db.walName
	db.imms = append(db.imms, frozen)
	db.mem = newMemtable(db.rng.Fork(int64(db.seq)))
	if err := db.rotateWAL(p); err != nil {
		return err
	}
	db.pendingFlush = append(db.pendingFlush, &compactionJob{flush: frozen, flushWAL: walName})
	db.signalWork()
	return nil
}

// Put stores a key-value pair.
func (db *DB) Put(p *sim.Proc, key, value []byte) error {
	db.st.Puts.Add(1)
	db.st.AppWrite.Add(int64(len(key) + len(value)))
	return db.write(p, key, value, kindValue)
}

// Delete removes a key (writes a tombstone).
func (db *DB) Delete(p *sim.Proc, key []byte) error {
	db.st.Deletes.Add(1)
	return db.write(p, key, nil, kindDelete)
}

// --- Read path ----------------------------------------------------------

// Get returns the value for key, or found=false.
func (db *DB) Get(p *sim.Proc, key []byte) ([]byte, bool, error) {
	if db.closed {
		return nil, false, ErrClosed
	}
	db.st.Gets.Add(1)
	snapshot := db.seq
	db.h.KVOp(p, 1)
	if v, found, del := db.mem.get(key, snapshot); found {
		db.recordAppRead(v, del)
		return v, !del, nil
	}
	for i := len(db.imms) - 1; i >= 0; i-- {
		if v, found, del := db.imms[i].get(key, snapshot); found {
			db.recordAppRead(v, del)
			return v, !del, nil
		}
	}
	// L0: newest first, ranges overlap.
	for _, t := range db.levels.files[0] {
		r, err := t.open(p, db)
		if err != nil {
			return nil, false, err
		}
		v, found, del, err := r.get(p, key, snapshot)
		if err != nil {
			return nil, false, err
		}
		if found {
			db.recordAppRead(v, del)
			return v, !del, nil
		}
	}
	for level := 1; level < db.opts.Levels; level++ {
		t := db.levels.candidateForKey(level, key)
		if t == nil {
			continue
		}
		r, err := t.open(p, db)
		if err != nil {
			return nil, false, err
		}
		v, found, del, err := r.get(p, key, snapshot)
		if err != nil {
			return nil, false, err
		}
		if found {
			db.recordAppRead(v, del)
			return v, !del, nil
		}
	}
	return nil, false, nil
}

func (db *DB) recordAppRead(v []byte, del bool) {
	if !del {
		db.st.AppRead.Add(int64(len(v)))
	}
}

// Scan streams live entries with lo <= key < hi (nil bounds are open) to fn
// in key order until fn returns false or limit entries are emitted (0 = no
// limit). Returns the number of entries emitted.
func (db *DB) Scan(p *sim.Proc, lo, hi []byte, limit int, fn func(key, value []byte) bool) (int, error) {
	if db.closed {
		return 0, ErrClosed
	}
	db.st.Scans.Add(1)
	snapshot := db.seq
	var iters []internalIterator
	iters = append(iters, db.mem.iterator())
	for i := len(db.imms) - 1; i >= 0; i-- {
		iters = append(iters, db.imms[i].iterator())
	}
	db.activeIters++
	defer func() {
		db.activeIters--
		db.deleteObsolete(p)
	}()
	for _, t := range db.levels.files[0] {
		r, err := t.open(p, db)
		if err != nil {
			return 0, err
		}
		iters = append(iters, r.iterator(p))
	}
	for level := 1; level < db.opts.Levels; level++ {
		for _, t := range db.levels.files[level] {
			if hi != nil && bytes.Compare(t.meta.smallest, hi) >= 0 {
				continue
			}
			if lo != nil && bytes.Compare(t.meta.largest, lo) < 0 {
				continue
			}
			r, err := t.open(p, db)
			if err != nil {
				return 0, err
			}
			iters = append(iters, r.iterator(p))
		}
	}
	merged := newMergingIter(iters...)
	if lo != nil {
		merged.Seek(lo)
	} else {
		merged.SeekToFirst()
	}
	var lastKey []byte
	emitted := 0
	for merged.Valid() {
		key := merged.Key()
		if hi != nil && bytes.Compare(key, hi) >= 0 {
			break
		}
		db.h.Compares(p, 2)
		if merged.Seq() > snapshot {
			merged.Next()
			continue
		}
		if lastKey != nil && bytes.Equal(key, lastKey) {
			merged.Next()
			continue
		}
		lastKey = append(lastKey[:0], key...)
		if merged.Kind() != kindDelete {
			db.st.AppRead.Add(int64(len(merged.Value())))
			if !fn(append([]byte(nil), key...), append([]byte(nil), merged.Value()...)) {
				break
			}
			emitted++
			if limit > 0 && emitted >= limit {
				break
			}
		}
		merged.Next()
	}
	return emitted, nil
}

// --- Maintenance --------------------------------------------------------

// Flush freezes the memtable and waits until all immutables have landed in L0.
func (db *DB) Flush(p *sim.Proc) error {
	if db.closed {
		return ErrClosed
	}
	if err := db.rotateMemtable(p); err != nil {
		return err
	}
	db.waitCond(p, func() bool {
		return (len(db.imms) == 0 && len(db.pendingFlush) == 0 && !db.flushRunning()) || db.bgErr != nil
	})
	return db.bgErr
}

func (db *DB) flushRunning() bool {
	// runningJobs counts flushes and compactions together; for Flush we wait
	// for the whole queue to drain, which is a superset and always safe.
	return db.runningJobs > 0
}

// CompactAll performs the paper's "deferred compaction" — a single-pass merge
// of the entire store into the bottom level, run on the caller's thread.
func (db *DB) CompactAll(p *sim.Proc) error {
	if err := db.Flush(p); err != nil {
		return err
	}
	db.waitCond(p, func() bool { return db.runningJobs == 0 || db.bgErr != nil })
	if db.bgErr != nil {
		return db.bgErr
	}
	var inputs []*tableHandle
	for _, fs := range db.levels.files {
		inputs = append(inputs, fs...)
	}
	if len(inputs) <= 1 {
		return nil
	}
	job := &compactionJob{inputs: inputs, output: db.opts.Levels - 1, everything: true}
	db.runningJobs++
	db.compactionRunning = true
	err := db.runCompaction(p, job)
	db.compactionRunning = false
	db.runningJobs--
	db.broadcast()
	return err
}

// WaitBackgroundIdle blocks until no flush or compaction work remains —
// the paper's "wait until all compaction work concludes before exiting".
func (db *DB) WaitBackgroundIdle(p *sim.Proc) error {
	db.waitCond(p, func() bool {
		if db.bgErr != nil {
			return true
		}
		if len(db.imms) > 0 || len(db.pendingFlush) > 0 || db.runningJobs > 0 {
			return false
		}
		return db.opts.CompactionMode != CompactionAuto || !db.needsCompaction()
	})
	return db.bgErr
}

// Close flushes the WAL, stops workers, and marks the DB unusable.
func (db *DB) Close(p *sim.Proc) error {
	if db.closed {
		return ErrClosed
	}
	if !db.opts.DisableWAL && db.wal != nil {
		if err := db.wal.sync(p); err != nil {
			return err
		}
	}
	db.closed = true
	db.signalWork()
	for _, done := range db.workersDone {
		p.Wait(done)
	}
	return db.saveManifest(p)
}

// --- Introspection ------------------------------------------------------

// Metrics returns background-activity counters.
func (db *DB) Metrics() Metrics { return db.metrics }

// L0Files returns the current L0 table count.
func (db *DB) L0Files() int { return len(db.levels.files[0]) }

// LevelTableCounts returns the table count per level.
func (db *DB) LevelTableCounts() []int {
	out := make([]int, len(db.levels.files))
	for i, fs := range db.levels.files {
		out[i] = len(fs)
	}
	return out
}

// TotalTables returns the number of live tables.
func (db *DB) TotalTables() int { return db.levels.totalTables() }

// Seq returns the last assigned sequence number.
func (db *DB) Seq() uint64 { return db.seq }

// CacheHitStats returns block-cache hits and misses.
func (db *DB) CacheHitStats() (hits, misses int64) {
	if db.cache == nil {
		return 0, 0
	}
	return db.cache.hits, db.cache.misses
}

// DropBlockCache empties the DB block cache (test/bench hygiene).
func (db *DB) DropBlockCache() { db.cache.clear() }

// BackgroundErr returns any error a background job hit.
func (db *DB) BackgroundErr() error { return db.bgErr }

// Options returns the (sanitized) options in use.
func (db *DB) Options() Options { return db.opts }
