package rocks

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"kvcsd/internal/sim"
	"kvcsd/internal/vfs"
)

// WAL record layout:
//
//	crc32(payload) uint32 | payloadLen uint32 | payload
//	payload: kind uint8 | seq uint64 | keyLen uint32 | key | valLen uint32 | val
//
// A torn or corrupt tail record terminates replay without error, matching
// the recovery semantics of LevelDB's log reader.

// ErrWALCorrupt reports a mid-log checksum failure (not a clean torn tail).
var ErrWALCorrupt = errors.New("rocks: WAL corrupt")

type walWriter struct {
	f *vfs.File
}

func newWALWriter(f *vfs.File) *walWriter { return &walWriter{f: f} }

// append writes one record.
func (w *walWriter) append(p *sim.Proc, kind entryKind, seq uint64, key, value []byte) error {
	payload := make([]byte, 1+8+4+len(key)+4+len(value))
	payload[0] = byte(kind)
	binary.LittleEndian.PutUint64(payload[1:], seq)
	binary.LittleEndian.PutUint32(payload[9:], uint32(len(key)))
	copy(payload[13:], key)
	off := 13 + len(key)
	binary.LittleEndian.PutUint32(payload[off:], uint32(len(value)))
	copy(payload[off+4:], value)

	rec := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(rec, crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(payload)))
	copy(rec[8:], payload)
	return w.f.Append(p, rec)
}

// sync flushes the log to stable storage.
func (w *walWriter) sync(p *sim.Proc) error { return w.f.Sync(p) }

// walRecord is one recovered entry.
type walRecord struct {
	kind  entryKind
	seq   uint64
	key   []byte
	value []byte
}

// replayWAL reads all intact records from a WAL file. A short or
// checksum-failing tail ends replay silently; corruption before the tail
// returns ErrWALCorrupt.
func replayWAL(p *sim.Proc, f *vfs.File) ([]walRecord, error) {
	buf := make([]byte, f.Size())
	if err := f.ReadAt(p, buf, 0); err != nil {
		return nil, fmt.Errorf("rocks: WAL read: %w", err)
	}
	return decodeWAL(buf)
}

// decodeWAL parses the record stream of a whole WAL image. It is pure (no
// I/O) so recovery behavior on arbitrary byte sequences can be fuzzed.
func decodeWAL(buf []byte) ([]walRecord, error) {
	size := int64(len(buf))
	var out []walRecord
	var off int64
	for off+8 <= size {
		wantCRC := binary.LittleEndian.Uint32(buf[off:])
		plen := int64(binary.LittleEndian.Uint32(buf[off+4:]))
		if off+8+plen > size {
			return out, nil // torn tail
		}
		payload := buf[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if off+8+plen == size {
				return out, nil // corrupt tail record: treated as torn
			}
			return out, ErrWALCorrupt
		}
		if plen < 17 {
			return out, ErrWALCorrupt
		}
		kind := entryKind(payload[0])
		seq := binary.LittleEndian.Uint64(payload[1:])
		klen := int64(binary.LittleEndian.Uint32(payload[9:]))
		if 13+klen+4 > plen {
			return out, ErrWALCorrupt
		}
		key := append([]byte(nil), payload[13:13+klen]...)
		vlen := int64(binary.LittleEndian.Uint32(payload[13+klen:]))
		if 13+klen+4+vlen != plen {
			return out, ErrWALCorrupt
		}
		value := append([]byte(nil), payload[13+klen+4:]...)
		out = append(out, walRecord{kind: kind, seq: seq, key: key, value: value})
		off += 8 + plen
	}
	return out, nil
}
