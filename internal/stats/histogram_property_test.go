package stats

import (
	"math/rand"
	"testing"
	"time"
)

// TestHistogramMergePreservesDistribution is a property test: for random
// sample sets split into random partitions, merging the parts must preserve
// the total count, sum, min, and max exactly, and every quantile of the
// merged histogram must equal the quantile of one histogram holding all
// samples (merging is associative over the raw-sample representation).
func TestHistogramMergePreservesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0, 0.1, 0.5, 0.9, 0.99, 1}

	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.Int63n(int64(time.Second)))
		}

		whole := NewHistogram("whole")
		for _, s := range samples {
			whole.Record(s)
		}

		// Split into 1..8 random parts, preserving multiplicity.
		parts := 1 + rng.Intn(8)
		shards := make([]*Histogram, parts)
		for i := range shards {
			shards[i] = NewHistogram("shard")
		}
		for _, s := range samples {
			shards[rng.Intn(parts)].Record(s)
		}

		merged := NewHistogram("merged")
		for _, sh := range shards {
			merged.Merge(sh)
		}

		if merged.Count() != whole.Count() {
			t.Fatalf("trial %d: merged count = %d, want %d", trial, merged.Count(), whole.Count())
		}
		if merged.Sum() != whole.Sum() {
			t.Fatalf("trial %d: merged sum = %v, want %v", trial, merged.Sum(), whole.Sum())
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("trial %d: merged min/max = %v/%v, want %v/%v",
				trial, merged.Min(), merged.Max(), whole.Min(), whole.Max())
		}
		for _, q := range quantiles {
			got, want := merged.Quantile(q), whole.Quantile(q)
			if got != want {
				t.Fatalf("trial %d: merged q%.2f = %v, want %v", trial, q, got, want)
			}
			if got < merged.Min() || got > merged.Max() {
				t.Fatalf("trial %d: q%.2f = %v outside [min,max] = [%v,%v]",
					trial, q, got, merged.Min(), merged.Max())
			}
		}
	}
}

// TestHistogramConcurrentRecord proves Record/Quantile/Clone are safe under
// concurrent use (meaningful under -race).
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram("conc")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			h.Record(time.Duration(i))
		}
	}()
	for i := 0; i < 200; i++ {
		_ = h.Quantile(0.5)
		_ = h.Clone().Mean()
		_ = h.Count()
	}
	<-done
	if h.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", h.Count())
	}
}
