package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterAdd(t *testing.T) {
	s := NewIOStats()
	s.MediaRead.Add(100)
	s.MediaRead.Add(50)
	if s.MediaRead.Value() != 150 {
		t.Fatalf("value = %d", s.MediaRead.Value())
	}
	if s.MediaRead.Name() != "media_read_bytes" {
		t.Fatalf("name = %q", s.MediaRead.Name())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewIOStats()
	s.Puts.Add(-1)
}

func TestWriteAmplification(t *testing.T) {
	s := NewIOStats()
	if s.WriteAmplification() != 0 {
		t.Fatal("empty WA should be 0")
	}
	s.AppWrite.Add(100)
	s.MediaWrite.Add(450)
	if wa := s.WriteAmplification(); wa != 4.5 {
		t.Fatalf("WA = %v", wa)
	}
}

func TestReadInflation(t *testing.T) {
	s := NewIOStats()
	if s.ReadInflation() != 0 {
		t.Fatal("empty inflation should be 0")
	}
	s.AppRead.Add(48)
	s.MediaRead.Add(4096)
	want := 4096.0 / 48.0
	if got := s.ReadInflation(); got != want {
		t.Fatalf("inflation = %v, want %v", got, want)
	}
}

func TestCacheHitRate(t *testing.T) {
	s := NewIOStats()
	if s.CacheHitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	s.CacheHits.Add(3)
	s.CacheMisses.Add(1)
	if r := s.CacheHitRate(); r != 0.75 {
		t.Fatalf("hit rate = %v", r)
	}
}

func TestSnapshotContainsAllCounters(t *testing.T) {
	s := NewIOStats()
	s.Gets.Add(7)
	m := s.Snapshot()
	if len(m) != 23 {
		t.Fatalf("snapshot has %d entries", len(m))
	}
	if m["gets"] != 7 {
		t.Fatalf("gets = %d", m["gets"])
	}
}

func TestStringOnlyNonZeroSorted(t *testing.T) {
	s := NewIOStats()
	s.Puts.Add(2)
	s.Gets.Add(1)
	got := s.String()
	if got != "gets=1 puts=2" {
		t.Fatalf("String() = %q", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1.0KiB"},
		{1536, "1.5KiB"},
		{1 << 20, "1.0MiB"},
		{1 << 30, "1.0GiB"},
		{3 << 40, "3.0TiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	if h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean %v", h.Mean())
	}
	if q := h.Quantile(0.5); q != 50*time.Millisecond {
		t.Fatalf("p50 %v", q)
	}
	if q := h.Quantile(0.99); q != 99*time.Millisecond {
		t.Fatalf("p99 %v", q)
	}
	if q := h.Quantile(0); q != time.Millisecond {
		t.Fatalf("p0 %v", q)
	}
	if q := h.Quantile(1); q != 100*time.Millisecond {
		t.Fatalf("p100 %v", q)
	}
}

func TestHistogramRecordAfterQuantile(t *testing.T) {
	h := NewHistogram("x")
	h.Record(5 * time.Millisecond)
	_ = h.Quantile(0.5)
	h.Record(time.Millisecond) // must re-sort
	if q := h.Quantile(0); q != time.Millisecond {
		t.Fatalf("p0 after re-record = %v", q)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram("q")
	for i := 0; i < 37; i++ {
		h.Record(time.Duration((i*7919)%1000) * time.Microsecond)
	}
	f := func(a, b float64) bool {
		qa, qb := a-float64(int(a)), b-float64(int(b)) // into [0,1)
		if qa < 0 {
			qa = -qa
		}
		if qb < 0 {
			qb = -qb
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSamplesReturnsCopy(t *testing.T) {
	h := NewHistogram("s")
	h.Record(5 * time.Millisecond)
	h.Record(time.Millisecond)
	h.Record(3 * time.Millisecond)

	got := h.Samples()
	if len(got) != 3 {
		t.Fatalf("samples len = %d", len(got))
	}
	// Quantile sorts the backing slice in place; a previously returned copy
	// must not be affected (the regression this test pins down).
	before := append([]time.Duration(nil), got...)
	_ = h.Quantile(0.5)
	for i := range got {
		if got[i] != before[i] {
			t.Fatalf("Samples() result mutated by Quantile: %v -> %v", before, got)
		}
	}
	// Mutating the returned copy must not corrupt the histogram.
	got[0] = time.Hour
	if h.Max() != 5*time.Millisecond || h.Quantile(1) != 5*time.Millisecond {
		t.Fatal("mutating Samples() copy affected the histogram")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("a")
	b := NewHistogram("b")
	for i := 1; i <= 3; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 4; i <= 6; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	_ = a.Quantile(0.5) // leave a in sorted state; Merge must invalidate it

	a.Merge(b)
	if a.Count() != 6 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != time.Millisecond || a.Max() != 6*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Sum() != 21*time.Millisecond {
		t.Fatalf("merged sum = %v", a.Sum())
	}
	if q := a.Quantile(1); q != 6*time.Millisecond {
		t.Fatalf("merged p100 = %v", q)
	}
	// b unchanged.
	if b.Count() != 3 || b.Min() != 4*time.Millisecond {
		t.Fatal("Merge mutated its argument")
	}
	a.Merge(nil)
	a.Merge(NewHistogram("empty"))
	if a.Count() != 6 {
		t.Fatalf("merge of nil/empty changed count to %d", a.Count())
	}
	// Empty receiver adopts min/max from the merged histogram.
	c := NewHistogram("c")
	c.Merge(b)
	if c.Min() != 4*time.Millisecond || c.Max() != 6*time.Millisecond {
		t.Fatalf("empty-receiver merge min/max = %v/%v", c.Min(), c.Max())
	}
}

func TestIOStatsCloneAndDelta(t *testing.T) {
	s := NewIOStats()
	s.Puts.Add(10)
	s.MediaWrite.Add(4096)

	prev := s.Clone()
	if prev.Puts.Value() != 10 || prev.MediaWrite.Value() != 4096 {
		t.Fatalf("clone values: %s", prev)
	}
	prev.Puts.Add(1)
	if s.Puts.Value() != 10 {
		t.Fatal("clone shares state with original")
	}

	prev = s.Clone()
	s.Puts.Add(5)
	s.MediaWrite.Add(100)
	s.Gets.Add(2)
	d := s.Delta(prev)
	if d.Puts.Value() != 5 || d.MediaWrite.Value() != 100 || d.Gets.Value() != 2 {
		t.Fatalf("delta = %s", d)
	}
	if d.AppWrite.Value() != 0 {
		t.Fatalf("untouched counter delta = %d", d.AppWrite.Value())
	}
	// Nil prev means "delta from zero".
	z := s.Delta(nil)
	if z.Puts.Value() != 15 {
		t.Fatalf("delta from nil = %d", z.Puts.Value())
	}
	// Delta result keeps counter names for reporting.
	if d.Puts.Name() != "puts" {
		t.Fatalf("delta counter name = %q", d.Puts.Name())
	}
}

func TestIOStatsMerge(t *testing.T) {
	a := NewIOStats()
	a.Puts.Add(10)
	a.MediaWrite.Add(4096)
	b := NewIOStats()
	b.Puts.Add(3)
	b.Gets.Add(7)
	b.MediaWrite.Add(1000)

	a.Merge(b)
	if a.Puts.Value() != 13 || a.Gets.Value() != 7 || a.MediaWrite.Value() != 5096 {
		t.Fatalf("merged = %s", a)
	}
	// Merge reads but does not mutate the operand.
	if b.Puts.Value() != 3 || b.MediaWrite.Value() != 1000 {
		t.Fatalf("operand mutated: %s", b)
	}
	// Nil operand is a no-op.
	a.Merge(nil)
	if a.Puts.Value() != 13 {
		t.Fatalf("merge(nil) changed counters: %s", a)
	}
	// Summing per-device blocks one by one equals merging all at once.
	total := NewIOStats()
	for _, st := range []*IOStats{a, b, b} {
		total.Merge(st)
	}
	if total.Puts.Value() != 13+3+3 || total.MediaWrite.Value() != 5096+2000 {
		t.Fatalf("aggregate = %s", total)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram("lat")
	if !strings.Contains(h.String(), "empty") {
		t.Fatalf("empty string %q", h.String())
	}
	h.Record(time.Second)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("string %q", h.String())
	}
}

func TestPhaseTimer(t *testing.T) {
	pt := NewPhaseTimer()
	pt.Record("insert", 2*time.Second)
	pt.Record("compact", 3*time.Second)
	pt.Record("insert", time.Second) // accumulate
	if got := pt.Get("insert"); got != 3*time.Second {
		t.Fatalf("insert %v", got)
	}
	if pt.Total() != 6*time.Second {
		t.Fatalf("total %v", pt.Total())
	}
	ph := pt.Phases()
	if len(ph) != 2 || ph[0] != "insert" || ph[1] != "compact" {
		t.Fatalf("phases %v", ph)
	}
	if pt.Get("missing") != 0 {
		t.Fatal("missing phase should be 0")
	}
	if pt.String() != "insert=3s compact=3s" {
		t.Fatalf("String() = %q", pt.String())
	}
}
