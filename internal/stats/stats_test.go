package stats

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterAdd(t *testing.T) {
	s := NewIOStats()
	s.MediaRead.Add(100)
	s.MediaRead.Add(50)
	if s.MediaRead.Value() != 150 {
		t.Fatalf("value = %d", s.MediaRead.Value())
	}
	if s.MediaRead.Name() != "media_read_bytes" {
		t.Fatalf("name = %q", s.MediaRead.Name())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewIOStats()
	s.Puts.Add(-1)
}

func TestWriteAmplification(t *testing.T) {
	s := NewIOStats()
	if s.WriteAmplification() != 0 {
		t.Fatal("empty WA should be 0")
	}
	s.AppWrite.Add(100)
	s.MediaWrite.Add(450)
	if wa := s.WriteAmplification(); wa != 4.5 {
		t.Fatalf("WA = %v", wa)
	}
}

func TestReadInflation(t *testing.T) {
	s := NewIOStats()
	if s.ReadInflation() != 0 {
		t.Fatal("empty inflation should be 0")
	}
	s.AppRead.Add(48)
	s.MediaRead.Add(4096)
	want := 4096.0 / 48.0
	if got := s.ReadInflation(); got != want {
		t.Fatalf("inflation = %v, want %v", got, want)
	}
}

func TestCacheHitRate(t *testing.T) {
	s := NewIOStats()
	if s.CacheHitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
	s.CacheHits.Add(3)
	s.CacheMisses.Add(1)
	if r := s.CacheHitRate(); r != 0.75 {
		t.Fatalf("hit rate = %v", r)
	}
}

func TestSnapshotContainsAllCounters(t *testing.T) {
	s := NewIOStats()
	s.Gets.Add(7)
	m := s.Snapshot()
	if len(m) != 16 {
		t.Fatalf("snapshot has %d entries", len(m))
	}
	if m["gets"] != 7 {
		t.Fatalf("gets = %d", m["gets"])
	}
}

func TestStringOnlyNonZeroSorted(t *testing.T) {
	s := NewIOStats()
	s.Puts.Add(2)
	s.Gets.Add(1)
	got := s.String()
	if got != "gets=1 puts=2" {
		t.Fatalf("String() = %q", got)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1.0KiB"},
		{1536, "1.5KiB"},
		{1 << 20, "1.0MiB"},
		{1 << 30, "1.0GiB"},
		{3 << 40, "3.0TiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	if h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean %v", h.Mean())
	}
	if q := h.Quantile(0.5); q != 50*time.Millisecond {
		t.Fatalf("p50 %v", q)
	}
	if q := h.Quantile(0.99); q != 99*time.Millisecond {
		t.Fatalf("p99 %v", q)
	}
	if q := h.Quantile(0); q != time.Millisecond {
		t.Fatalf("p0 %v", q)
	}
	if q := h.Quantile(1); q != 100*time.Millisecond {
		t.Fatalf("p100 %v", q)
	}
}

func TestHistogramRecordAfterQuantile(t *testing.T) {
	h := NewHistogram("x")
	h.Record(5 * time.Millisecond)
	_ = h.Quantile(0.5)
	h.Record(time.Millisecond) // must re-sort
	if q := h.Quantile(0); q != time.Millisecond {
		t.Fatalf("p0 after re-record = %v", q)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram("q")
	for i := 0; i < 37; i++ {
		h.Record(time.Duration((i*7919)%1000) * time.Microsecond)
	}
	f := func(a, b float64) bool {
		qa, qb := a-float64(int(a)), b-float64(int(b)) // into [0,1)
		if qa < 0 {
			qa = -qa
		}
		if qb < 0 {
			qb = -qb
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram("lat")
	if !strings.Contains(h.String(), "empty") {
		t.Fatalf("empty string %q", h.String())
	}
	h.Record(time.Second)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("string %q", h.String())
	}
}

func TestPhaseTimer(t *testing.T) {
	pt := NewPhaseTimer()
	pt.Record("insert", 2*time.Second)
	pt.Record("compact", 3*time.Second)
	pt.Record("insert", time.Second) // accumulate
	if got := pt.Get("insert"); got != 3*time.Second {
		t.Fatalf("insert %v", got)
	}
	if pt.Total() != 6*time.Second {
		t.Fatalf("total %v", pt.Total())
	}
	ph := pt.Phases()
	if len(ph) != 2 || ph[0] != "insert" || ph[1] != "compact" {
		t.Fatalf("phases %v", ph)
	}
	if pt.Get("missing") != 0 {
		t.Fatal("missing phase should be 0")
	}
	if pt.String() != "insert=3s compact=3s" {
		t.Fatalf("String() = %q", pt.String())
	}
}
