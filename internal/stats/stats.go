// Package stats collects the I/O and timing statistics the KV-CSD paper
// reports: bytes moved between host and device, bytes read and written at the
// storage media, operation counts, and latency histograms. Figures 7b and 10b
// are rendered directly from these counters.
//
// Collection happens inside a single-threaded discrete-event simulation, but
// the live telemetry endpoint reads counters from HTTP goroutines while the
// simulation runs, so counters are atomics.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing count of events or bytes. Reads and
// writes are atomic, so concurrent readers always see a consistent value.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter; negative deltas panic.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("stats: negative add to counter " + c.name)
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter name.
func (c *Counter) Name() string { return c.name }

// IOStats aggregates the storage-traffic counters for one engine run. The
// split mirrors the paper's Figure 7b / 10b axes.
type IOStats struct {
	// Media traffic: bytes actually read from / written to the SSD NAND.
	MediaRead  Counter
	MediaWrite Counter
	// MediaTorn counts written bytes a power cut destroyed before their
	// channel operation completed (torn and queued appends). Media bytes
	// surviving on NAND = MediaWrite - MediaTorn.
	MediaTorn Counter
	// MediaRotted counts bytes poisoned in place by bit-rot injection:
	// reads of those ranges return wrong bytes, not errors, until a repair
	// rewrites them.
	MediaRotted Counter
	// MediaRepaired counts bytes rewritten in place by extent repair.
	MediaRepaired Counter
	// Integrity machinery: checksum failures detected on the read path or by
	// the scrubber, bytes the scrubber verified, extents rebuilt from a
	// replica, and zones quarantined after repeated corruption.
	CorruptDetected  Counter
	ScrubbedBytes    Counter
	RepairedExtents  Counter
	QuarantinedZones Counter
	// Host link traffic: bytes crossing the host<->device PCIe boundary.
	HostToDevice Counter
	DeviceToHost Counter
	// Logical application traffic for computing amplification factors.
	AppWrite Counter // bytes the application asked to store
	AppRead  Counter // bytes the application asked to read back
	// Operation counts.
	Puts        Counter
	Gets        Counter
	Scans       Counter
	Deletes     Counter
	BulkPuts    Counter
	Commands    Counter // device commands issued (KV-CSD only)
	FSReads     Counter // filesystem-level read calls (baseline only)
	FSWrites    Counter
	CacheHits   Counter
	CacheMisses Counter
}

// NewIOStats creates a named, zeroed stats block.
func NewIOStats() *IOStats {
	s := &IOStats{}
	s.MediaRead.name = "media_read_bytes"
	s.MediaWrite.name = "media_write_bytes"
	s.MediaTorn.name = "media_torn_bytes"
	s.MediaRotted.name = "media_rotted_bytes"
	s.MediaRepaired.name = "media_repaired_bytes"
	s.CorruptDetected.name = "corrupt_detected"
	s.ScrubbedBytes.name = "scrubbed_bytes"
	s.RepairedExtents.name = "repaired_extents"
	s.QuarantinedZones.name = "quarantined_zones"
	s.HostToDevice.name = "host_to_device_bytes"
	s.DeviceToHost.name = "device_to_host_bytes"
	s.AppWrite.name = "app_write_bytes"
	s.AppRead.name = "app_read_bytes"
	s.Puts.name = "puts"
	s.Gets.name = "gets"
	s.Scans.name = "scans"
	s.Deletes.name = "deletes"
	s.BulkPuts.name = "bulk_puts"
	s.Commands.name = "commands"
	s.FSReads.name = "fs_reads"
	s.FSWrites.name = "fs_writes"
	s.CacheHits.name = "cache_hits"
	s.CacheMisses.name = "cache_misses"
	return s
}

// WriteAmplification returns media-written bytes divided by app-written
// bytes, or 0 when nothing was written.
func (s *IOStats) WriteAmplification() float64 {
	if s.AppWrite.Value() == 0 {
		return 0
	}
	return float64(s.MediaWrite.Value()) / float64(s.AppWrite.Value())
}

// ReadInflation returns media-read bytes divided by app-read bytes — the
// paper's "read inflation" (Fig 10b), where a software store reads whole file
// blocks to return small values.
func (s *IOStats) ReadInflation() float64 {
	if s.AppRead.Value() == 0 {
		return 0
	}
	return float64(s.MediaRead.Value()) / float64(s.AppRead.Value())
}

// CacheHitRate returns hits/(hits+misses), or 0 with no lookups.
func (s *IOStats) CacheHitRate() float64 {
	total := s.CacheHits.Value() + s.CacheMisses.Value()
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits.Value()) / float64(total)
}

// Clone returns an independent copy of the stats block with the same
// counter values — the "previous sample" operand for Delta.
func (s *IOStats) Clone() *IOStats {
	c := NewIOStats()
	src := s.counters()
	for i, dst := range c.counters() {
		dst.v.Store(src[i].Value())
	}
	return c
}

// Delta returns a new stats block holding s minus prev, counter by counter.
// A nil prev is treated as all zeros. This is how the obs sampler derives
// per-interval rates from cumulative counters without resetting them.
func (s *IOStats) Delta(prev *IOStats) *IOStats {
	d := s.Clone()
	if prev == nil {
		return d
	}
	pc := prev.counters()
	for i, c := range d.counters() {
		c.v.Add(-pc[i].Value())
	}
	return d
}

// Merge adds other's counter values into s, counter by counter — the sum
// counterpart to Clone/Delta. A multi-device array keeps one IOStats per
// device and merges them into a fleet-wide view for reporting. A nil other
// is a no-op.
func (s *IOStats) Merge(other *IOStats) {
	if other == nil {
		return
	}
	oc := other.counters()
	for i, c := range s.counters() {
		c.v.Add(oc[i].Value())
	}
}

// Snapshot returns all counters as a sorted name->value map for reporting.
func (s *IOStats) Snapshot() map[string]int64 {
	m := make(map[string]int64, 16)
	for _, c := range s.counters() {
		m[c.name] = c.Value()
	}
	return m
}

func (s *IOStats) counters() []*Counter {
	return []*Counter{
		&s.MediaRead, &s.MediaWrite, &s.MediaTorn, &s.MediaRotted, &s.MediaRepaired,
		&s.CorruptDetected, &s.ScrubbedBytes, &s.RepairedExtents, &s.QuarantinedZones,
		&s.HostToDevice, &s.DeviceToHost,
		&s.AppWrite, &s.AppRead, &s.Puts, &s.Gets, &s.Scans, &s.Deletes,
		&s.BulkPuts, &s.Commands, &s.FSReads, &s.FSWrites,
		&s.CacheHits, &s.CacheMisses,
	}
}

// String renders the non-zero counters, sorted by name.
func (s *IOStats) String() string {
	type kv struct {
		k string
		v int64
	}
	var rows []kv
	for _, c := range s.counters() {
		if v := c.Value(); v != 0 {
			rows = append(rows, kv{c.name, v})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	var b strings.Builder
	for i, r := range rows {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", r.k, r.v)
	}
	return b.String()
}

// HumanBytes formats a byte count with a binary-prefix unit.
func HumanBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
