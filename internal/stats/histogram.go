package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records latency samples with exact quantile computation. Runs in
// the discrete-event simulator are modest in sample count, so we keep raw
// samples; Quantile sorts lazily. All methods are safe for concurrent use —
// the telemetry endpoint reads histograms from HTTP goroutines while the
// simulation records into them.
type Histogram struct {
	mu      sync.Mutex
	name    string
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// NewHistogram creates an empty named histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, min: math.MaxInt64}
}

// Name returns the histogram name.
func (h *Histogram) Name() string { return h.name }

// Record adds one latency sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Samples returns a copy of the raw samples. Order is unspecified: Quantile
// sorts the histogram's backing storage in place, so samples recorded before
// a Quantile call may no longer be in recording order. The copy is the
// caller's to keep — later Record or Quantile calls never mutate it.
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Clone returns an independent copy of the histogram — a consistent snapshot
// readers can sort and quantile without holding up writers.
func (h *Histogram) Clone() *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := &Histogram{
		name:    h.name,
		samples: append([]time.Duration(nil), h.samples...),
		sorted:  h.sorted,
		sum:     h.sum,
		min:     h.min,
		max:     h.max,
	}
	return c
}

// Merge adds every sample of other into h. The other histogram is unchanged.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	// Snapshot other before locking h, so Merge never holds two histogram
	// locks at once (and self-merge cannot deadlock).
	other.mu.Lock()
	samples := append([]time.Duration(nil), other.samples...)
	sum, min, max := other.sum, other.min, other.max
	other.mu.Unlock()
	if len(samples) == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, samples...)
	h.sorted = false
	h.sum += sum
	if min < h.min {
		h.min = min
	}
	if max > h.max {
		h.max = max
	}
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-th quantile (0 <= q <= 1) using nearest-rank on the
// sorted samples; 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.Count() == 0 {
		return fmt.Sprintf("%s: empty", h.name)
	}
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p99=%v max=%v",
		h.name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// PhaseTimer records named phase durations in insertion order — used for the
// Figure 11 write-phase breakdown (insert / compact / secondary index).
type PhaseTimer struct {
	names []string
	durs  map[string]time.Duration
}

// NewPhaseTimer creates an empty phase timer.
func NewPhaseTimer() *PhaseTimer {
	return &PhaseTimer{durs: make(map[string]time.Duration)}
}

// Record adds (or extends) a named phase.
func (t *PhaseTimer) Record(name string, d time.Duration) {
	if _, ok := t.durs[name]; !ok {
		t.names = append(t.names, name)
	}
	t.durs[name] += d
}

// Get returns the accumulated duration for a phase (0 if absent).
func (t *PhaseTimer) Get(name string) time.Duration { return t.durs[name] }

// Phases returns phase names in first-recorded order.
func (t *PhaseTimer) Phases() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Total returns the sum of all phases.
func (t *PhaseTimer) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.durs {
		sum += d
	}
	return sum
}

// String renders "name=dur" pairs in order.
func (t *PhaseTimer) String() string {
	s := ""
	for i, n := range t.names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", n, t.durs[n])
	}
	return s
}
