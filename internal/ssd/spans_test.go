package ssd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

func TestWriteZoneSpansParallelAcrossChannels(t *testing.T) {
	cfg := testCfg()
	cfg.WriteLatency = 100 * time.Microsecond
	env := sim.NewEnv()
	d := New(env, cfg, stats.NewIOStats())
	var end sim.Time
	env.Go("w", func(p *sim.Proc) {
		// Four zones on four distinct channels: one burst, one latency.
		zones := []int{0, 1, 2, 3}
		data := [][]byte{{1}, {2}, {3}, {4}}
		if err := d.WriteZoneSpans(p, zones, data); err != nil {
			t.Error(err)
		}
		end = p.Now()
	})
	env.Run()
	// All four writes overlap: total ~ one write latency, not four.
	if end >= sim.Time(2*cfg.WriteLatency) {
		t.Fatalf("parallel spans took %v, want ~%v", end, cfg.WriteLatency)
	}
	for i := 0; i < 4; i++ {
		zi, _ := d.Zone(i)
		if zi.WritePointer != 1 {
			t.Fatalf("zone %d wp %d", i, zi.WritePointer)
		}
	}
}

func TestWriteZoneSpansSameChannelSerializes(t *testing.T) {
	cfg := testCfg() // 4 channels
	cfg.WriteLatency = 100 * time.Microsecond
	env := sim.NewEnv()
	d := New(env, cfg, stats.NewIOStats())
	var end sim.Time
	env.Go("w", func(p *sim.Proc) {
		// Zones 0 and 4 share channel 0.
		if err := d.WriteZoneSpans(p, []int{0, 4}, [][]byte{{1}, {2}}); err != nil {
			t.Error(err)
		}
		end = p.Now()
	})
	env.Run()
	if end < sim.Time(2*cfg.WriteLatency) {
		t.Fatalf("same-channel spans took %v, want >= %v", end, 2*cfg.WriteLatency)
	}
}

func TestWriteZoneSpansValidation(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, testCfg(), stats.NewIOStats())
	env.Go("w", func(p *sim.Proc) {
		if err := d.WriteZoneSpans(p, []int{0}, nil); err == nil {
			t.Error("length mismatch accepted")
		}
		if err := d.WriteZoneSpans(p, []int{-1}, [][]byte{{1}}); !errors.Is(err, ErrZoneBounds) {
			t.Errorf("bounds: %v", err)
		}
		big := make([]byte, d.ZoneSize()+1)
		if err := d.WriteZoneSpans(p, []int{0}, [][]byte{big}); !errors.Is(err, ErrZoneFull) {
			t.Errorf("overflow: %v", err)
		}
		// Write to a FULL zone rejected.
		fill := make([]byte, d.ZoneSize())
		if err := d.WriteZoneSpans(p, []int{1}, [][]byte{fill}); err != nil {
			t.Error(err)
		}
		if err := d.WriteZoneSpans(p, []int{1}, [][]byte{{1}}); !errors.Is(err, ErrZoneState) {
			t.Errorf("full zone: %v", err)
		}
	})
	env.Run()
}

func TestReadZoneSpansRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, testCfg(), stats.NewIOStats())
	env.Go("w", func(p *sim.Proc) {
		_ = d.WriteZone(p, 0, []byte("zone-zero-data"))
		_ = d.WriteZone(p, 1, []byte("zone-one-data!"))
		out, err := d.ReadZoneSpans(p, []ZoneSpan{
			{Zone: 0, Off: 0, N: 9},
			{Zone: 1, Off: 5, N: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if string(out[0]) != "zone-zero" || string(out[1]) != "one" {
			t.Fatalf("spans %q %q", out[0], out[1])
		}
	})
	env.Run()
}

func TestReadZoneSpansValidation(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, testCfg(), stats.NewIOStats())
	env.Go("w", func(p *sim.Proc) {
		_ = d.WriteZone(p, 0, []byte("short"))
		if _, err := d.ReadZoneSpans(p, []ZoneSpan{{Zone: 99, Off: 0, N: 1}}); !errors.Is(err, ErrZoneBounds) {
			t.Errorf("bounds: %v", err)
		}
		if _, err := d.ReadZoneSpans(p, []ZoneSpan{{Zone: 0, Off: 3, N: 10}}); !errors.Is(err, ErrReadBeyondWP) {
			t.Errorf("beyond wp: %v", err)
		}
		d.InjectFault("zone-read", 0, 1)
		if _, err := d.ReadZoneSpans(p, []ZoneSpan{{Zone: 0, Off: 0, N: 1}}); !errors.Is(err, ErrInjectedFault) {
			t.Errorf("fault: %v", err)
		}
	})
	env.Run()
}

func TestBlockRunRoundTrip(t *testing.T) {
	cfg := testCfg()
	env := sim.NewEnv()
	d := New(env, cfg, stats.NewIOStats())
	env.Go("w", func(p *sim.Proc) {
		blocks := make([][]byte, 8)
		for i := range blocks {
			blocks[i] = bytes.Repeat([]byte{byte(i + 1)}, cfg.BlockSize)
		}
		if err := d.WriteBlockRun(p, 100, blocks); err != nil {
			t.Fatal(err)
		}
		got, err := d.ReadBlockRun(p, 100, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range blocks {
			if !bytes.Equal(got[i], blocks[i]) {
				t.Fatalf("block %d mismatch", i)
			}
		}
		// Unwritten blocks read back zero.
		z, err := d.ReadBlockRun(p, 500, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range z[0] {
			if b != 0 {
				t.Fatal("unwritten block not zero")
			}
		}
	})
	env.Run()
}

func TestBlockRunParallelFasterThanSerial(t *testing.T) {
	cfg := testCfg()
	cfg.ReadLatency = 100 * time.Microsecond
	measure := func(run bool) sim.Time {
		env := sim.NewEnv()
		d := New(env, cfg, stats.NewIOStats())
		var end sim.Time
		env.Go("w", func(p *sim.Proc) {
			blocks := make([][]byte, 4)
			for i := range blocks {
				blocks[i] = make([]byte, cfg.BlockSize)
			}
			_ = d.WriteBlockRun(p, 0, blocks)
			t0 := p.Now()
			if run {
				_, _ = d.ReadBlockRun(p, 0, 4)
			} else {
				buf := make([]byte, cfg.BlockSize)
				for i := int64(0); i < 4; i++ {
					_ = d.ReadBlock(p, i, buf)
				}
			}
			end = p.Now() - t0
		})
		env.Run()
		return end
	}
	serial := measure(false)
	burst := measure(true)
	if burst*2 >= serial {
		t.Fatalf("burst read (%v) should be much faster than serial (%v)", burst, serial)
	}
}

func TestBlockRunValidation(t *testing.T) {
	cfg := testCfg()
	env := sim.NewEnv()
	d := New(env, cfg, stats.NewIOStats())
	env.Go("w", func(p *sim.Proc) {
		if err := d.WriteBlockRun(p, cfg.ConvBlocks-1, [][]byte{make([]byte, cfg.BlockSize), make([]byte, cfg.BlockSize)}); !errors.Is(err, ErrBlockBounds) {
			t.Errorf("bounds: %v", err)
		}
		if err := d.WriteBlockRun(p, 0, [][]byte{{1, 2}}); !errors.Is(err, ErrUnalignedRequest) {
			t.Errorf("alignment: %v", err)
		}
		if _, err := d.ReadBlockRun(p, -1, 1); !errors.Is(err, ErrBlockBounds) {
			t.Errorf("read bounds: %v", err)
		}
		d.InjectFault("block-write", 7, 1)
		if err := d.WriteBlockRun(p, 7, [][]byte{make([]byte, cfg.BlockSize)}); !errors.Is(err, ErrInjectedFault) {
			t.Errorf("fault: %v", err)
		}
	})
	env.Run()
}

func TestConfigAccessors(t *testing.T) {
	cfg := testCfg()
	d := New(sim.NewEnv(), cfg, stats.NewIOStats())
	if d.Config().Channels != cfg.Channels {
		t.Fatal("Config() mismatch")
	}
	if d.ChannelCount() != cfg.Channels {
		t.Fatal("ChannelCount mismatch")
	}
}
