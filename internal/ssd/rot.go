// Silent-corruption (bit-rot) modelling. Unlike InjectFault/FaultProfile
// errors — which fail an operation loudly — rot poisons bytes on the media in
// place: subsequent reads of the range succeed and return wrong bytes. Only a
// checksum layer above the device can tell. Rot is persistent until a repair
// rewrites the range (Rewrite) or the zone is reset.
//
// Two injection mechanisms, both deterministic given their seeds:
//
//   - CorruptBlock is the targeted verb: flip seeded bits in a specific byte
//     range of a zone, for chaos scenarios and the kvcsd-cli corrupt verb;
//   - FaultProfile.RotRate arms ambient decay: each matching read draws
//     against the rate and, when it fires, flips seeded bits somewhere in the
//     range being read — the "reads surface latent corruption" model.
package ssd

import (
	"kvcsd/internal/sim"
)

// DefaultRotBits is how many bits a rot event flips when the profile does not
// say otherwise. More than one bit defeats accidental parity cancellation.
const DefaultRotBits = 3

// CorruptBlock flips bits in the byte range [off, off+n) of a zone, below the
// write pointer: seeded, persistent, and silent — reads of the range keep
// succeeding and return the poisoned bytes. It flips max(1, bits) bits at
// seeded positions and returns how many byte positions were touched. No
// virtual time passes: rot is not an I/O.
func (d *Device) CorruptBlock(zone int, off, n int64, bits int) (int, error) {
	if zone < 0 || zone >= len(d.zones) {
		return 0, ErrZoneBounds
	}
	z := &d.zones[zone]
	if off < 0 || n <= 0 || off+n > z.wp {
		return 0, ErrReadBeyondWP
	}
	if bits < 1 {
		bits = DefaultRotBits
	}
	return d.flipBits(z, off, n, bits), nil
}

// flipBits flips `bits` seeded bit positions within z.data[off:off+n] and
// returns the byte positions touched.
func (d *Device) flipBits(z *zone, off, n int64, bits int) int {
	touched := 0
	for i := 0; i < bits; i++ {
		pos := off + int64(d.rng.Intn(int(n)))
		bit := byte(1) << uint(d.rng.Intn(8))
		z.data[pos] ^= bit
		touched++
	}
	d.st.MediaRotted.Add(int64(touched))
	return touched
}

// maybeRot draws the ambient-decay schedule for one read of [off, off+n) in a
// zone: when the profile's RotRate for the kind fires, seeded bits somewhere
// in the range flip before the read returns — so the caller receives poisoned
// bytes with a successful status.
func (d *Device) maybeRot(kind string, zone int, off, n int64) {
	if d.fprof == nil || n <= 0 {
		return
	}
	rate := d.fprof.RotRate[kind]
	if rate <= 0 || d.frng.Float64() >= rate {
		return
	}
	bits := d.fprof.RotBits
	if bits < 1 {
		bits = DefaultRotBits
	}
	d.flipBits(&d.zones[zone], off, n, bits)
}

// Rewrite programs bytes in place below a zone's write pointer — the repair
// verb. Real ZNS media cannot overwrite, but a repair path rewriting a
// corrupted extent models a read-modify-write zone renovation; the simulation
// grants it directly and charges one channel write operation. The range must
// lie entirely below the write pointer.
func (d *Device) Rewrite(p *sim.Proc, zone int, off int64, data []byte) error {
	if zone < 0 || zone >= len(d.zones) {
		return ErrZoneBounds
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	z := &d.zones[zone]
	if off < 0 || off+int64(len(data)) > z.wp {
		return ErrReadBeyondWP
	}
	if err := d.checkFault("zone-write", int64(zone)); err != nil {
		return err
	}
	d.busy(p, d.Channel(zone), "rewrite", d.cfg.WriteLatency+d.faultLatency("zone-write"),
		int64(len(data)), d.cfg.WriteBandwidth)
	if d.poweredOff {
		return ErrPoweredOff
	}
	copy(z.data[off:], data)
	d.st.MediaWrite.Add(int64(len(data)))
	d.st.MediaRepaired.Add(int64(len(data)))
	return nil
}
