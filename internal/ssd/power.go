// Power-loss and probabilistic fault modelling.
//
// A power cut freezes the media: every append whose channel operation has not
// completed by the instant of the cut is torn — the earliest in-flight append
// per zone keeps a seeded prefix of its bytes and everything queued behind it
// on the channel is lost whole. The device then refuses all operations with
// ErrPoweredOff until PowerOn, mirroring a drive dropping off the bus: the
// controller still completes commands (with an error) but touches no media.
//
// Beyond the count-based InjectFault schedule, a FaultProfile arms seeded
// probabilistic faults: each matching operation independently fails with
// ErrInjectedFault or pays extra latency, with per-kind probabilities. Both
// mechanisms are deterministic given the seed and the operation sequence.
package ssd

import (
	"time"

	"kvcsd/internal/sim"
)

// inflightAppend records one zone append whose media operation may still be
// in flight: the zone, where it started, its length, and when the channel
// completes it. Appends are recorded in issue order, so per zone the first
// incomplete entry is the tear point of a power cut.
type inflightAppend struct {
	zone    int
	startWP int64
	n       int64
	done    sim.Time
}

// noteAppend records an issued zone append and prunes completed entries.
func (d *Device) noteAppend(zone int, startWP, n int64, done sim.Time) {
	now := d.env.Now()
	keep := d.inflight[:0]
	for _, a := range d.inflight {
		if a.done > now {
			keep = append(keep, a)
		}
	}
	d.inflight = append(keep, inflightAppend{zone: zone, startWP: startWP, n: n, done: done})
}

// SetSeed reseeds the device's internal randomness (torn-append offsets).
// Call before the first PowerCut; the default seed is 1.
func (d *Device) SetSeed(seed int64) {
	d.rng = sim.NewRNG(seed).Fork(0x535344) // decorrelate from engine streams
}

// PoweredOff reports whether the device is in the powered-off state.
func (d *Device) PoweredOff() bool { return d.poweredOff }

// PowerCutReport summarizes what a power cut destroyed.
type PowerCutReport struct {
	// InFlightAppends is how many zone appends were still on a channel at
	// the instant of the cut.
	InFlightAppends int
	// TornZones is how many zones were truncated at a torn append.
	TornZones int
	// TornBytes is the total bytes discarded from torn and queued appends.
	TornBytes int64
}

// PowerCut cuts power at the current instant: the earliest in-flight append
// of each zone is torn at a seeded byte offset (leaving a partial record on
// media), appends queued behind it are lost whole, and the device transitions
// to the powered-off state where every operation fails with ErrPoweredOff.
// Durable zone contents — everything whose channel operation had completed —
// survive untouched. Idempotent while powered off.
func (d *Device) PowerCut(p *sim.Proc) PowerCutReport {
	var rep PowerCutReport
	if d.poweredOff {
		return rep
	}
	now := d.env.Now()
	d.poweredOff = true
	torn := make(map[int]bool)
	for _, a := range d.inflight {
		if a.done <= now {
			continue
		}
		rep.InFlightAppends++
		if torn[a.zone] {
			continue // already truncated below this append's start
		}
		torn[a.zone] = true
		keep := int64(0)
		if a.n > 0 {
			keep = int64(d.rng.Intn(int(a.n)))
		}
		rep.TornBytes += d.truncateZone(a.zone, a.startWP+keep)
		rep.TornZones++
	}
	d.inflight = d.inflight[:0]
	return rep
}

// PowerOn restores the device: media ops work again over whatever the cut
// left on media. Recovery (CRC scrub, write-pointer repair) is the layer
// above's job — see device.Restart.
func (d *Device) PowerOn() {
	d.poweredOff = false
	d.inflight = d.inflight[:0]
}

// truncateZone rewinds a zone's write pointer to newWP, discarding the bytes
// above it, and returns how many bytes were lost. Zone state follows the
// pointer: empty at zero, reopened if it had filled.
func (d *Device) truncateZone(zi int, newWP int64) int64 {
	z := &d.zones[zi]
	lost := z.wp - newWP
	if lost <= 0 {
		return 0
	}
	prev := z.state
	z.wp = newWP
	z.data = z.data[:newWP]
	switch {
	case newWP == 0:
		z.state = ZoneEmpty
		z.data = nil
	case prev == ZoneFull:
		z.state = ZoneOpen
	}
	d.noteZoneTransition(prev, z.state, -lost)
	d.st.MediaTorn.Add(lost) // counted as written at issue, destroyed by the cut
	return lost
}

// FaultProfile arms seeded probabilistic fault injection. Each matching
// operation independently draws against the configured per-kind rates:
// an error draw fails the operation with ErrInjectedFault, a latency draw
// adds ExtraLatency to its channel time. Kinds match InjectFault:
// "zone-write", "zone-read", "block-write", "block-read".
type FaultProfile struct {
	// Seed drives the fault draws; the schedule is deterministic given the
	// seed and the operation sequence.
	Seed int64
	// ErrorRate maps a kind to its probability of ErrInjectedFault.
	ErrorRate map[string]float64
	// LatencyRate maps a kind to its probability of a latency fault.
	LatencyRate map[string]float64
	// ExtraLatency is added when a latency fault fires (default 1ms).
	ExtraLatency time.Duration
	// RotRate maps a read kind ("zone-read") to the probability that the read
	// surfaces latent bit-rot: seeded bits in the range being read flip in
	// place before the read returns, silently. See rot.go.
	RotRate map[string]float64
	// RotBits is how many bits each rot event flips (default DefaultRotBits).
	RotBits int
}

// SetFaultProfile installs (or, with nil, removes) a probabilistic fault
// schedule. Count-based InjectFault faults keep working alongside it and are
// checked first.
func (d *Device) SetFaultProfile(fp *FaultProfile) {
	if fp == nil {
		d.fprof = nil
		d.frng = nil
		return
	}
	cp := *fp
	if cp.ExtraLatency <= 0 {
		cp.ExtraLatency = time.Millisecond
	}
	d.fprof = &cp
	d.frng = sim.NewRNG(cp.Seed)
}

// profileFault draws the error schedule for one operation of the given kind.
func (d *Device) profileFault(kind string) error {
	if d.fprof == nil {
		return nil
	}
	if rate := d.fprof.ErrorRate[kind]; rate > 0 && d.frng.Float64() < rate {
		return ErrInjectedFault
	}
	return nil
}

// faultLatency draws the latency schedule for one operation of the given
// kind, returning the extra channel time it must pay.
func (d *Device) faultLatency(kind string) time.Duration {
	if d.fprof == nil {
		return 0
	}
	if rate := d.fprof.LatencyRate[kind]; rate > 0 && d.frng.Float64() < rate {
		return d.fprof.ExtraLatency
	}
	return 0
}
