// Package ssd models the NVMe SSD at the bottom of the KV-CSD stack.
//
// The device exposes two namespaces over the same simulated NAND media:
//
//   - a Zoned Namespace (ZNS), used by the KV-CSD device engine: fixed-size
//     zones with write pointers, sequential-write enforcement, explicit
//     resets, and a zone state machine (EMPTY -> OPEN -> FULL);
//   - a conventional block namespace, used by the ext4-like filesystem under
//     the RocksDB baseline: random 4 KiB block reads/writes with a simple
//     FTL (valid-page tracking and background garbage collection).
//
// The media itself is modelled as N independent channels, each a capacity-1
// sim.Resource with per-operation latency and bandwidth. Zones (and block
// stripes) map statically to channels, so concurrent writers that land on the
// same channel queue behind each other — the channel-conflict effect the
// paper's zone-cluster striping is designed to mitigate.
package ssd

import (
	"errors"
	"fmt"
	"time"

	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

// Errors returned by device operations.
var (
	ErrZoneBounds       = errors.New("ssd: zone index out of range")
	ErrNotSequential    = errors.New("ssd: write not at zone write pointer")
	ErrZoneFull         = errors.New("ssd: write exceeds zone capacity")
	ErrZoneState        = errors.New("ssd: operation invalid for zone state")
	ErrReadBeyondWP     = errors.New("ssd: read beyond zone write pointer")
	ErrBlockBounds      = errors.New("ssd: block address out of range")
	ErrInjectedFault    = errors.New("ssd: injected media fault")
	ErrDeviceCapacity   = errors.New("ssd: conventional namespace out of space")
	ErrUnalignedRequest = errors.New("ssd: request not block aligned")
	ErrPoweredOff       = errors.New("ssd: device powered off")
)

// ZoneState is the lifecycle state of a zone.
type ZoneState uint8

// Zone states, a simplified version of the ZNS state machine.
const (
	ZoneEmpty ZoneState = iota
	ZoneOpen
	ZoneFull
)

// String names the state.
func (s ZoneState) String() string {
	switch s {
	case ZoneEmpty:
		return "EMPTY"
	case ZoneOpen:
		return "OPEN"
	case ZoneFull:
		return "FULL"
	default:
		return fmt.Sprintf("ZoneState(%d)", uint8(s))
	}
}

// Config sizes and times the simulated SSD. The defaults approximate the
// paper's 15 TB E1.L ZNS drive scaled down for in-memory simulation: what
// matters for figure shapes is channel count and per-channel bandwidth, not
// total capacity.
type Config struct {
	ZoneSize       int64         // bytes per zone
	NumZones       int           // zones in the zoned namespace
	BlockSize      int           // logical block size (both namespaces)
	ConvBlocks     int64         // blocks in the conventional namespace
	Channels       int           // independent NAND channels
	ReadBandwidth  float64       // bytes/sec per channel
	WriteBandwidth float64       // bytes/sec per channel
	ReadLatency    time.Duration // fixed per-op read latency
	WriteLatency   time.Duration // fixed per-op program latency
	// GCThreshold is the fraction of conventional-namespace free blocks
	// below which background GC kicks in.
	GCThreshold float64
	// OverprovisionPct reserves extra physical blocks for the conventional
	// FTL (affects GC efficiency bookkeeping only).
	OverprovisionPct float64
	// ColdZones dedicates the last N zones of the zoned namespace to a
	// cheap/slow cold tier (dense QLC-style media). Zero disables the tier;
	// the timing model is then untouched.
	ColdZones int
	// ColdReadFactor and ColdWriteFactor scale per-operation time (latency
	// and transfer) on cold-tier zones. Values <= 0 mean 1 (no penalty).
	ColdReadFactor  float64
	ColdWriteFactor float64
}

// DefaultConfig returns the simulation defaults used by all experiments.
func DefaultConfig() Config {
	return Config{
		ZoneSize:         32 << 20, // 32 MiB zones
		NumZones:         2048,     // 64 GiB zoned namespace
		BlockSize:        4096,
		ConvBlocks:       16 << 20, // 64 GiB conventional namespace
		Channels:         16,
		ReadBandwidth:    800e6, // 800 MB/s per channel
		WriteBandwidth:   400e6, // 400 MB/s per channel
		ReadLatency:      60 * time.Microsecond,
		WriteLatency:     20 * time.Microsecond,
		GCThreshold:      0.10,
		OverprovisionPct: 0.07,
	}
}

// zone is one ZNS zone: state machine plus backing bytes (allocated lazily).
type zone struct {
	state ZoneState
	wp    int64 // write pointer, bytes from zone start
	data  []byte
}

// Device is the simulated SSD.
type Device struct {
	cfg      Config
	env      *sim.Env
	channels []*sim.Resource
	zones    []zone
	st       *stats.IOStats

	// Observability (optional): media spans attach to the calling process's
	// current span; zone-state gauges publish into the registry.
	tr         *obs.Tracer
	gZonesOpen *sim.Gauge
	gZonesFull *sim.Gauge
	gWPBytes   *sim.Gauge

	// conventional namespace
	conv        map[int64][]byte // LBA -> block contents
	convWritten map[int64]bool   // physically live blocks (valid pages)
	convFree    int64            // free physical blocks
	gcRuns      int64
	gcCopied    int64

	faults map[faultKey]int // injected fault countdowns
	fprof  *FaultProfile    // probabilistic fault schedule (nil = off)
	frng   *sim.RNG         // fault-profile draws

	// Power-loss state (power.go): while poweredOff every operation fails
	// with ErrPoweredOff; inflight tracks appends a cut would tear.
	poweredOff bool
	inflight   []inflightAppend
	rng        *sim.RNG // torn-append tear offsets
}

type faultKey struct {
	kind string // "zone-write", "zone-read", "block-write", "block-read"
	id   int64  // zone index or LBA; -1 = any
}

// New creates a device attached to the simulation environment. The stats
// block records media traffic; pass a dedicated block per engine under test.
func New(env *sim.Env, cfg Config, st *stats.IOStats) *Device {
	if cfg.Channels < 1 || cfg.NumZones < 1 || cfg.ZoneSize < int64(cfg.BlockSize) {
		panic("ssd: invalid config")
	}
	d := &Device{
		cfg:         cfg,
		env:         env,
		zones:       make([]zone, cfg.NumZones),
		st:          st,
		conv:        make(map[int64][]byte),
		convWritten: make(map[int64]bool),
		convFree:    cfg.ConvBlocks + int64(float64(cfg.ConvBlocks)*cfg.OverprovisionPct),
		faults:      make(map[faultKey]int),
		rng:         sim.NewRNG(1).Fork(0x535344),
	}
	d.channels = make([]*sim.Resource, cfg.Channels)
	for i := range d.channels {
		d.channels[i] = sim.NewResource(env, fmt.Sprintf("ssd-ch%d", i), 1)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// NumZones returns the zone count of the zoned namespace.
func (d *Device) NumZones() int { return d.cfg.NumZones }

// ZoneSize returns the zone capacity in bytes.
func (d *Device) ZoneSize() int64 { return d.cfg.ZoneSize }

// Channel returns the channel resource a zone maps to, for inspection.
func (d *Device) Channel(zoneIdx int) *sim.Resource {
	return d.channels[zoneIdx%d.cfg.Channels]
}

// ChannelCount returns the number of NAND channels.
func (d *Device) ChannelCount() int { return d.cfg.Channels }

// ChannelBacklog reports the fraction of channels with queued reservations
// right now — an instantaneous utilization signal for load-aware planners.
func (d *Device) ChannelBacklog() float64 {
	if len(d.channels) == 0 {
		return 0
	}
	busy := 0
	for _, ch := range d.channels {
		if ch.NextFree() > d.env.Now() {
			busy++
		}
	}
	return float64(busy) / float64(len(d.channels))
}

// ChannelBusyTime returns the busy virtual time summed across all channels —
// paired with a wall-clock window it yields mean channel utilization, the
// sustained complement to ChannelBacklog's instantaneous sample.
func (d *Device) ChannelBusyTime() time.Duration {
	var t time.Duration
	for _, ch := range d.channels {
		t += ch.BusyTime()
	}
	return t
}

// ChannelBusyTimes returns each channel's busy virtual time. Hot data pins
// individual channels while the mean stays low, and a striped operation is
// gated by its busiest channel — so planners should difference these over a
// window and look at the max, not the mean.
func (d *Device) ChannelBusyTimes(out []time.Duration) []time.Duration {
	out = out[:0]
	for _, ch := range d.channels {
		out = append(out, ch.BusyTime())
	}
	return out
}

// IsCold reports whether a zone belongs to the configured cold tier.
func (d *Device) IsCold(zone int) bool {
	return d.cfg.ColdZones > 0 && zone >= d.cfg.NumZones-d.cfg.ColdZones
}

// coldFactor returns the time multiplier for an operation on a zone.
func (d *Device) coldFactor(zone int, write bool) float64 {
	if !d.IsCold(zone) {
		return 1
	}
	f := d.cfg.ColdReadFactor
	if write {
		f = d.cfg.ColdWriteFactor
	}
	if f <= 0 {
		return 1
	}
	return f
}

// readCost and writeCost return the channel time (latency + transfer) for an
// n-byte zone operation, scaled by the zone's tier.
func (d *Device) readCost(zone int, n int64) time.Duration {
	base := d.cfg.ReadLatency + sim.TransferTime(n, d.cfg.ReadBandwidth)
	return time.Duration(float64(base) * d.coldFactor(zone, false))
}

func (d *Device) writeCost(zone int, n int64) time.Duration {
	base := d.cfg.WriteLatency + sim.TransferTime(n, d.cfg.WriteBandwidth)
	return time.Duration(float64(base) * d.coldFactor(zone, true))
}

// Stats returns the device's stats block.
func (d *Device) Stats() *stats.IOStats { return d.st }

// SetObs attaches observability: media operations become "media"-stage child
// spans of the calling process's current span, and zone-state gauges
// (ssd/zones_open, ssd/zones_full, ssd/wp_bytes) publish into reg. Either
// argument may be nil. Gauges are primed from the current zone state.
func (d *Device) SetObs(tr *obs.Tracer, reg *obs.Registry) {
	d.tr = tr
	if reg == nil {
		return
	}
	d.gZonesOpen = reg.Gauge("ssd/zones_open")
	d.gZonesFull = reg.Gauge("ssd/zones_full")
	d.gWPBytes = reg.Gauge("ssd/wp_bytes")
	var open, full int
	var wp int64
	for i := range d.zones {
		switch d.zones[i].state {
		case ZoneOpen:
			open++
		case ZoneFull:
			full++
		}
		wp += d.zones[i].wp
	}
	d.gZonesOpen.Set(float64(open))
	d.gZonesFull.Set(float64(full))
	d.gWPBytes.Set(float64(wp))
}

// traceMedia attaches a media-stage span covering [start, end] to the calling
// process's current span, if tracing is on.
func (d *Device) traceMedia(p *sim.Proc, kind string, n int64, start, end sim.Time) {
	if d.tr == nil {
		return
	}
	cur := d.tr.Current(p)
	if cur == nil {
		return
	}
	sp := cur.ChildFrom("media:"+kind, obs.StageMedia, start)
	sp.SetInt("bytes", n)
	sp.EndAt(end)
}

// noteZoneTransition updates the zone-state gauges for one zone moving from
// one state to another, plus a write-pointer delta.
func (d *Device) noteZoneTransition(from, to ZoneState, wpDelta int64) {
	if d.gZonesOpen == nil {
		return
	}
	if from != to {
		switch from {
		case ZoneOpen:
			d.gZonesOpen.Add(-1)
		case ZoneFull:
			d.gZonesFull.Add(-1)
		}
		switch to {
		case ZoneOpen:
			d.gZonesOpen.Add(1)
		case ZoneFull:
			d.gZonesFull.Add(1)
		}
	}
	if wpDelta != 0 {
		d.gWPBytes.Add(float64(wpDelta))
	}
}

// InjectFault arms an injected error: the n-th matching future operation of
// the given kind on the given zone/LBA (id = -1 matches any) fails with
// ErrInjectedFault. Kinds: "zone-write", "zone-read", "block-write",
// "block-read".
func (d *Device) InjectFault(kind string, id int64, after int) {
	d.faults[faultKey{kind, id}] = after
}

func (d *Device) checkFault(kind string, id int64) error {
	for _, k := range []faultKey{{kind, id}, {kind, -1}} {
		if n, ok := d.faults[k]; ok {
			if n <= 1 {
				delete(d.faults, k)
				return ErrInjectedFault
			}
			d.faults[k] = n - 1
		}
	}
	return d.profileFault(kind)
}

// busy books a channel for an operation of n bytes and waits for it. The
// reservation model lets several operations issued back-to-back by one
// process overlap on distinct channels (NVMe queue depth). kind labels the
// media span emitted when tracing is on; the span covers channel queueing as
// well as the transfer itself (channel conflicts count as media time).
func (d *Device) busy(p *sim.Proc, ch *sim.Resource, kind string, lat time.Duration, n int64, bw float64) {
	start := d.env.Now()
	done := ch.Reserve(lat + sim.TransferTime(n, bw))
	p.SleepUntil(done)
	d.traceMedia(p, kind, n, start, done)
}

// busyDur is busy with a fully precomputed channel time (used where tier
// scaling has already been folded into the duration).
func (d *Device) busyDur(p *sim.Proc, ch *sim.Resource, kind string, dur time.Duration, n int64) {
	start := d.env.Now()
	done := ch.Reserve(dur)
	p.SleepUntil(done)
	d.traceMedia(p, kind, n, start, done)
}

// ZoneSpan names a contiguous byte range inside one zone.
type ZoneSpan struct {
	Zone int
	Off  int64
	N    int
}

// ReadZoneSpans reads several zone spans as one parallel I/O burst: each
// span's channel is reserved immediately and the caller sleeps until the
// last completion. Spans on distinct channels proceed in parallel — the
// large-request behavior of ZNS reads.
func (d *Device) ReadZoneSpans(p *sim.Proc, spans []ZoneSpan) ([][]byte, error) {
	if d.poweredOff {
		return nil, ErrPoweredOff
	}
	out := make([][]byte, len(spans))
	start := d.env.Now()
	var total int64
	var latest sim.Time
	for i, sp := range spans {
		if sp.Zone < 0 || sp.Zone >= len(d.zones) {
			return nil, ErrZoneBounds
		}
		z := &d.zones[sp.Zone]
		if sp.Off < 0 || sp.Off+int64(sp.N) > z.wp {
			return nil, ErrReadBeyondWP
		}
		if err := d.checkFault("zone-read", int64(sp.Zone)); err != nil {
			return nil, err
		}
		d.maybeRot("zone-read", sp.Zone, sp.Off, int64(sp.N))
		done := d.Channel(sp.Zone).Reserve(d.readCost(sp.Zone, int64(sp.N)) + d.faultLatency("zone-read"))
		if done > latest {
			latest = done
		}
		out[i] = z.data[sp.Off : sp.Off+int64(sp.N) : sp.Off+int64(sp.N)]
		d.st.MediaRead.Add(int64(sp.N))
		total += int64(sp.N)
	}
	p.SleepUntil(latest)
	if d.poweredOff {
		return nil, ErrPoweredOff
	}
	if len(spans) > 0 {
		d.traceMedia(p, "read", total, start, latest)
	}
	return out, nil
}

// WriteZoneSpans appends data to several zones as one parallel burst. Each
// write must land exactly at its zone's write pointer (spans for the same
// zone must be given in order).
func (d *Device) WriteZoneSpans(p *sim.Proc, zones []int, data [][]byte) error {
	if len(zones) != len(data) {
		return fmt.Errorf("ssd: zones/data length mismatch")
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	start := d.env.Now()
	var total int64
	var latest sim.Time
	for i, zi := range zones {
		if zi < 0 || zi >= len(d.zones) {
			return ErrZoneBounds
		}
		z := &d.zones[zi]
		if z.state == ZoneFull {
			return ErrZoneState
		}
		if z.wp+int64(len(data[i])) > d.cfg.ZoneSize {
			return ErrZoneFull
		}
		if err := d.checkFault("zone-write", int64(zi)); err != nil {
			return err
		}
		done := d.Channel(zi).Reserve(d.writeCost(zi, int64(len(data[i]))) + d.faultLatency("zone-write"))
		if done > latest {
			latest = done
		}
		d.noteAppend(zi, z.wp, int64(len(data[i])), done)
		if z.data == nil {
			z.data = make([]byte, 0, 64<<10)
		}
		z.data = append(z.data, data[i]...)
		prev := z.state
		z.wp += int64(len(data[i]))
		if z.state == ZoneEmpty {
			z.state = ZoneOpen
		}
		if z.wp == d.cfg.ZoneSize {
			z.state = ZoneFull
		}
		d.noteZoneTransition(prev, z.state, int64(len(data[i])))
		d.st.MediaWrite.Add(int64(len(data[i])))
		total += int64(len(data[i]))
	}
	p.SleepUntil(latest)
	if d.poweredOff {
		return ErrPoweredOff
	}
	if len(zones) > 0 {
		d.traceMedia(p, "write", total, start, latest)
	}
	return nil
}

// ReadBlockRun reads count consecutive LBAs starting at lba as one parallel
// burst (filesystem readahead), returning one buffer per block.
func (d *Device) ReadBlockRun(p *sim.Proc, lba int64, count int) ([][]byte, error) {
	if lba < 0 || lba+int64(count) > d.cfg.ConvBlocks {
		return nil, ErrBlockBounds
	}
	if d.poweredOff {
		return nil, ErrPoweredOff
	}
	out := make([][]byte, count)
	start := d.env.Now()
	var latest sim.Time
	for i := 0; i < count; i++ {
		cur := lba + int64(i)
		if err := d.checkFault("block-read", cur); err != nil {
			return nil, err
		}
		done := d.convChannel(cur).Reserve(d.cfg.ReadLatency + d.faultLatency("block-read") + sim.TransferTime(int64(d.cfg.BlockSize), d.cfg.ReadBandwidth))
		if done > latest {
			latest = done
		}
		buf := make([]byte, d.cfg.BlockSize)
		if blk := d.conv[cur]; blk != nil {
			copy(buf, blk)
		}
		out[i] = buf
		d.st.MediaRead.Add(int64(d.cfg.BlockSize))
	}
	p.SleepUntil(latest)
	if d.poweredOff {
		return nil, ErrPoweredOff
	}
	if count > 0 {
		d.traceMedia(p, "read", int64(count)*int64(d.cfg.BlockSize), start, latest)
	}
	return out, nil
}

// WriteBlockRun writes len(blocks) consecutive LBAs starting at lba as one
// parallel burst (filesystem writeback).
func (d *Device) WriteBlockRun(p *sim.Proc, lba int64, blocks [][]byte) error {
	if lba < 0 || lba+int64(len(blocks)) > d.cfg.ConvBlocks {
		return ErrBlockBounds
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	start := d.env.Now()
	var total int64
	var latest sim.Time
	for i, b := range blocks {
		if len(b) != d.cfg.BlockSize {
			return ErrUnalignedRequest
		}
		cur := lba + int64(i)
		if err := d.checkFault("block-write", cur); err != nil {
			return err
		}
		if !d.convWritten[cur] {
			if d.convFree == 0 {
				return ErrDeviceCapacity
			}
			d.convWritten[cur] = true
			d.convFree--
		}
		done := d.convChannel(cur).Reserve(d.cfg.WriteLatency + d.faultLatency("block-write") + sim.TransferTime(int64(len(b)), d.cfg.WriteBandwidth))
		if done > latest {
			latest = done
		}
		blk := d.conv[cur]
		if blk == nil {
			blk = make([]byte, d.cfg.BlockSize)
			d.conv[cur] = blk
		} else {
			d.maybeGC(p)
		}
		copy(blk, b)
		d.st.MediaWrite.Add(int64(len(b)))
		total += int64(len(b))
	}
	p.SleepUntil(latest)
	if d.poweredOff {
		return ErrPoweredOff
	}
	if len(blocks) > 0 {
		d.traceMedia(p, "write", total, start, latest)
	}
	return nil
}

// ZoneInfo is an inspection snapshot of one zone.
type ZoneInfo struct {
	Index        int
	State        ZoneState
	WritePointer int64
	Channel      int
}

// Zone returns an inspection snapshot.
func (d *Device) Zone(idx int) (ZoneInfo, error) {
	if idx < 0 || idx >= len(d.zones) {
		return ZoneInfo{}, ErrZoneBounds
	}
	z := &d.zones[idx]
	return ZoneInfo{Index: idx, State: z.state, WritePointer: z.wp, Channel: idx % d.cfg.Channels}, nil
}

// WriteZone appends data at the zone's write pointer. The zone transitions
// EMPTY->OPEN on first write and OPEN->FULL when it fills exactly. Writes
// that would cross the zone capacity fail with ErrZoneFull, and writes to a
// FULL zone fail with ErrZoneState. Virtual time: one channel operation.
func (d *Device) WriteZone(p *sim.Proc, idx int, data []byte) error {
	if idx < 0 || idx >= len(d.zones) {
		return ErrZoneBounds
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	z := &d.zones[idx]
	if z.state == ZoneFull {
		return ErrZoneState
	}
	if z.wp+int64(len(data)) > d.cfg.ZoneSize {
		return ErrZoneFull
	}
	if err := d.checkFault("zone-write", int64(idx)); err != nil {
		return err
	}
	// The append lands on media at issue time (matching WriteZoneSpans) so a
	// power cut during the channel sleep can tear it at a byte offset.
	start := d.env.Now()
	done := d.Channel(idx).Reserve(d.writeCost(idx, int64(len(data))) + d.faultLatency("zone-write"))
	d.noteAppend(idx, z.wp, int64(len(data)), done)
	if z.data == nil {
		z.data = make([]byte, 0, 64<<10)
	}
	z.data = append(z.data, data...)
	prev := z.state
	z.wp += int64(len(data))
	if z.state == ZoneEmpty {
		z.state = ZoneOpen
	}
	if z.wp == d.cfg.ZoneSize {
		z.state = ZoneFull
	}
	d.noteZoneTransition(prev, z.state, int64(len(data)))
	d.st.MediaWrite.Add(int64(len(data)))
	p.SleepUntil(done)
	if d.poweredOff {
		return ErrPoweredOff
	}
	d.traceMedia(p, "write", int64(len(data)), start, done)
	return nil
}

// ReadZone reads n bytes at offset off within a zone. Reads beyond the write
// pointer fail. The returned slice aliases device memory; callers must not
// mutate it.
func (d *Device) ReadZone(p *sim.Proc, idx int, off int64, n int) ([]byte, error) {
	if idx < 0 || idx >= len(d.zones) {
		return nil, ErrZoneBounds
	}
	if d.poweredOff {
		return nil, ErrPoweredOff
	}
	z := &d.zones[idx]
	if off < 0 || off+int64(n) > z.wp {
		return nil, ErrReadBeyondWP
	}
	if err := d.checkFault("zone-read", int64(idx)); err != nil {
		return nil, err
	}
	d.maybeRot("zone-read", idx, off, int64(n))
	d.busyDur(p, d.Channel(idx), "read", d.readCost(idx, int64(n))+d.faultLatency("zone-read"), int64(n))
	if d.poweredOff {
		return nil, ErrPoweredOff
	}
	if off+int64(n) > z.wp {
		return nil, ErrReadBeyondWP // a concurrent power cut tore this range
	}
	d.st.MediaRead.Add(int64(n))
	return z.data[off : off+int64(n) : off+int64(n)], nil
}

// ResetZone rewinds a zone to EMPTY, discarding its contents. Resetting an
// empty zone is a no-op (permitted by ZNS).
func (d *Device) ResetZone(p *sim.Proc, idx int) error {
	if idx < 0 || idx >= len(d.zones) {
		return ErrZoneBounds
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	z := &d.zones[idx]
	if z.state == ZoneEmpty {
		return nil
	}
	// A reset is a management command: cheap, one latency unit on the channel.
	d.busy(p, d.Channel(idx), "reset", d.cfg.WriteLatency, 0, d.cfg.WriteBandwidth)
	if d.poweredOff {
		return ErrPoweredOff
	}
	d.noteZoneTransition(z.state, ZoneEmpty, -z.wp)
	z.state = ZoneEmpty
	z.wp = 0
	z.data = nil
	return nil
}

// FinishZone transitions an OPEN zone to FULL, sealing it against writes.
func (d *Device) FinishZone(p *sim.Proc, idx int) error {
	if idx < 0 || idx >= len(d.zones) {
		return ErrZoneBounds
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	z := &d.zones[idx]
	if z.state != ZoneOpen {
		return ErrZoneState
	}
	z.state = ZoneFull
	d.noteZoneTransition(ZoneOpen, ZoneFull, 0)
	return nil
}

// openZoneCount returns the number of zones currently OPEN (inspection).
func (d *Device) OpenZones() int {
	n := 0
	for i := range d.zones {
		if d.zones[i].state == ZoneOpen {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Conventional namespace (block interface + simple FTL) for the baseline.

// convChannel maps an LBA to a channel, striping consecutive blocks.
func (d *Device) convChannel(lba int64) *sim.Resource {
	return d.channels[int(lba)%d.cfg.Channels]
}

// WriteBlock writes one logical block. Overwrites invalidate the previous
// physical page; when free physical blocks fall below GCThreshold the FTL
// garbage-collects (charged as extra media traffic — the block-interface tax
// ZNS avoids).
func (d *Device) WriteBlock(p *sim.Proc, lba int64, data []byte) error {
	if lba < 0 || lba >= d.cfg.ConvBlocks {
		return ErrBlockBounds
	}
	if len(data) != d.cfg.BlockSize {
		return ErrUnalignedRequest
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	if err := d.checkFault("block-write", lba); err != nil {
		return err
	}
	d.busy(p, d.convChannel(lba), "write", d.cfg.WriteLatency+d.faultLatency("block-write"), int64(len(data)), d.cfg.WriteBandwidth)
	if d.poweredOff {
		return ErrPoweredOff // the in-flight block write never hit media
	}
	if !d.convWritten[lba] {
		if d.convFree == 0 {
			return ErrDeviceCapacity
		}
		d.convWritten[lba] = true
		d.convFree--
	}
	// An overwrite consumes a fresh physical page and invalidates the old one.
	blk := d.conv[lba]
	if blk == nil {
		blk = make([]byte, d.cfg.BlockSize)
		d.conv[lba] = blk
	} else {
		d.maybeGC(p)
	}
	copy(blk, data)
	d.st.MediaWrite.Add(int64(len(data)))
	return nil
}

// ReadBlock reads one logical block; unwritten blocks read as zeros.
func (d *Device) ReadBlock(p *sim.Proc, lba int64, buf []byte) error {
	if lba < 0 || lba >= d.cfg.ConvBlocks {
		return ErrBlockBounds
	}
	if len(buf) != d.cfg.BlockSize {
		return ErrUnalignedRequest
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	if err := d.checkFault("block-read", lba); err != nil {
		return err
	}
	d.busy(p, d.convChannel(lba), "read", d.cfg.ReadLatency+d.faultLatency("block-read"), int64(len(buf)), d.cfg.ReadBandwidth)
	if d.poweredOff {
		return ErrPoweredOff
	}
	if blk := d.conv[lba]; blk != nil {
		copy(buf, blk)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	d.st.MediaRead.Add(int64(len(buf)))
	return nil
}

// TrimBlock marks a logical block unused, returning its physical page to the
// free pool (what ext4 issues on file deletion).
func (d *Device) TrimBlock(p *sim.Proc, lba int64) error {
	if lba < 0 || lba >= d.cfg.ConvBlocks {
		return ErrBlockBounds
	}
	if d.poweredOff {
		return ErrPoweredOff
	}
	if d.convWritten[lba] {
		delete(d.convWritten, lba)
		delete(d.conv, lba)
		d.convFree++
	}
	return nil
}

// maybeGC models FTL garbage collection pressure: when the free pool is low
// relative to live blocks, each overwrite triggers a copy-forward of victim
// pages, charged as extra media read+write traffic.
func (d *Device) maybeGC(p *sim.Proc) {
	total := float64(d.cfg.ConvBlocks) * (1 + d.cfg.OverprovisionPct)
	if float64(d.convFree)/total >= d.cfg.GCThreshold {
		return
	}
	// Copy-forward a victim's worth of valid data: modelled as moving 4
	// blocks per GC step.
	const victims = 4
	n := int64(victims * d.cfg.BlockSize)
	ch := d.channels[int(d.gcRuns)%d.cfg.Channels]
	d.busy(p, ch, "gc", d.cfg.ReadLatency+d.cfg.WriteLatency,
		2*n, d.cfg.WriteBandwidth)
	d.st.MediaRead.Add(n)
	d.st.MediaWrite.Add(n)
	d.gcRuns++
	d.gcCopied += n
}

// GCRuns returns how many GC steps the conventional FTL performed.
func (d *Device) GCRuns() int64 { return d.gcRuns }

// GCCopiedBytes returns the bytes copied forward by GC.
func (d *Device) GCCopiedBytes() int64 { return d.gcCopied }

// FreeConvBlocks returns the free physical block count of the conventional
// namespace (inspection/testing).
func (d *Device) FreeConvBlocks() int64 { return d.convFree }
