package ssd

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.ZoneSize = 64 << 10 // small zones for tests
	cfg.NumZones = 32
	cfg.ConvBlocks = 1024
	cfg.Channels = 4
	return cfg
}

// run executes fn inside a one-process simulation against a fresh device.
func run(t *testing.T, cfg Config, fn func(p *sim.Proc, d *Device)) (*Device, sim.Time) {
	t.Helper()
	env := sim.NewEnv()
	d := New(env, cfg, stats.NewIOStats())
	env.Go("test", func(p *sim.Proc) { fn(p, d) })
	end := env.Run()
	return d, end
}

func TestZoneStateMachine(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		zi, err := d.Zone(0)
		if err != nil || zi.State != ZoneEmpty || zi.WritePointer != 0 {
			t.Fatalf("initial zone: %+v err=%v", zi, err)
		}
		if err := d.WriteZone(p, 0, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		zi, _ = d.Zone(0)
		if zi.State != ZoneOpen || zi.WritePointer != 4096 {
			t.Fatalf("after write: %+v", zi)
		}
		// Fill to capacity -> FULL.
		if err := d.WriteZone(p, 0, make([]byte, int(d.ZoneSize())-4096)); err != nil {
			t.Fatal(err)
		}
		zi, _ = d.Zone(0)
		if zi.State != ZoneFull {
			t.Fatalf("zone should be FULL: %+v", zi)
		}
		if err := d.WriteZone(p, 0, []byte{1}); !errors.Is(err, ErrZoneState) {
			t.Fatalf("write to FULL zone: %v", err)
		}
		if err := d.ResetZone(p, 0); err != nil {
			t.Fatal(err)
		}
		zi, _ = d.Zone(0)
		if zi.State != ZoneEmpty || zi.WritePointer != 0 {
			t.Fatalf("after reset: %+v", zi)
		}
	})
}

func TestWriteExceedingZoneCapacity(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		big := make([]byte, d.ZoneSize()+1)
		if err := d.WriteZone(p, 0, big); !errors.Is(err, ErrZoneFull) {
			t.Fatalf("err = %v", err)
		}
		// Partial fill then overflow.
		if err := d.WriteZone(p, 1, make([]byte, d.ZoneSize()-10)); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteZone(p, 1, make([]byte, 11)); !errors.Is(err, ErrZoneFull) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestReadBackWrittenData(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		want := []byte("hello zoned namespace")
		if err := d.WriteZone(p, 3, want); err != nil {
			t.Fatal(err)
		}
		got, err := d.ReadZone(p, 3, 0, len(want))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %q, want %q", got, want)
		}
		// Offset read.
		got, err = d.ReadZone(p, 3, 6, 5)
		if err != nil || string(got) != "zoned" {
			t.Fatalf("offset read %q err=%v", got, err)
		}
	})
}

func TestReadBeyondWritePointer(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		if err := d.WriteZone(p, 0, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
		if _, err := d.ReadZone(p, 0, 50, 51); !errors.Is(err, ErrReadBeyondWP) {
			t.Fatalf("err = %v", err)
		}
		if _, err := d.ReadZone(p, 0, -1, 1); !errors.Is(err, ErrReadBeyondWP) {
			t.Fatalf("negative offset err = %v", err)
		}
	})
}

func TestZoneBounds(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		if err := d.WriteZone(p, -1, nil); !errors.Is(err, ErrZoneBounds) {
			t.Fatal(err)
		}
		if err := d.WriteZone(p, d.NumZones(), nil); !errors.Is(err, ErrZoneBounds) {
			t.Fatal(err)
		}
		if _, err := d.ReadZone(p, 99, 0, 1); !errors.Is(err, ErrZoneBounds) {
			t.Fatal(err)
		}
		if err := d.ResetZone(p, 99); !errors.Is(err, ErrZoneBounds) {
			t.Fatal(err)
		}
		if _, err := d.Zone(-5); !errors.Is(err, ErrZoneBounds) {
			t.Fatal(err)
		}
	})
}

func TestFinishZone(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		if err := d.FinishZone(p, 0); !errors.Is(err, ErrZoneState) {
			t.Fatalf("finishing EMPTY zone: %v", err)
		}
		if err := d.WriteZone(p, 0, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := d.FinishZone(p, 0); err != nil {
			t.Fatal(err)
		}
		zi, _ := d.Zone(0)
		if zi.State != ZoneFull {
			t.Fatalf("state %v", zi.State)
		}
	})
}

func TestResetEmptyZoneNoop(t *testing.T) {
	d, end := run(t, testCfg(), func(p *sim.Proc, d *Device) {
		if err := d.ResetZone(p, 0); err != nil {
			t.Fatal(err)
		}
	})
	if end != 0 {
		t.Fatalf("reset of empty zone consumed time %v", end)
	}
	_ = d
}

func TestOpenZonesCount(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		for i := 0; i < 5; i++ {
			if err := d.WriteZone(p, i, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if got := d.OpenZones(); got != 5 {
			t.Fatalf("open zones %d", got)
		}
	})
}

func TestWriteTimingMatchesModel(t *testing.T) {
	cfg := testCfg()
	cfg.WriteLatency = 20 * time.Microsecond
	cfg.WriteBandwidth = 400e6
	n := 40000
	_, end := run(t, cfg, func(p *sim.Proc, d *Device) {
		if err := d.WriteZone(p, 0, make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	})
	want := sim.Time(cfg.WriteLatency) + sim.Time(sim.TransferTime(int64(n), cfg.WriteBandwidth))
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestChannelContention(t *testing.T) {
	// Two writers on the same channel serialize; on different channels they
	// proceed in parallel.
	cfg := testCfg()
	env := sim.NewEnv()
	d := New(env, cfg, stats.NewIOStats())
	n := 40000 // 0.1ms at 400MB/s; fits the 64KiB test zones
	var sameEnd, diffEnd sim.Time
	env.Go("same-a", func(p *sim.Proc) { _ = d.WriteZone(p, 0, make([]byte, n)) })
	env.Go("same-b", func(p *sim.Proc) {
		_ = d.WriteZone(p, cfg.Channels, make([]byte, n)) // zone Channels -> channel 0 too
		sameEnd = p.Now()
	})
	env.Run()

	env2 := sim.NewEnv()
	d2 := New(env2, cfg, stats.NewIOStats())
	env2.Go("diff-a", func(p *sim.Proc) { _ = d2.WriteZone(p, 0, make([]byte, n)) })
	env2.Go("diff-b", func(p *sim.Proc) {
		_ = d2.WriteZone(p, 1, make([]byte, n)) // different channel
		diffEnd = p.Now()
	})
	env2.Run()

	if sameEnd <= diffEnd {
		t.Fatalf("same-channel writes (%v) should be slower than cross-channel (%v)", sameEnd, diffEnd)
	}
	if sameEnd < 2*diffEnd-sim.Time(time.Microsecond) {
		t.Fatalf("same-channel should roughly double: %v vs %v", sameEnd, diffEnd)
	}
}

func TestMediaStatsAccounting(t *testing.T) {
	d, _ := run(t, testCfg(), func(p *sim.Proc, d *Device) {
		_ = d.WriteZone(p, 0, make([]byte, 1000))
		_, _ = d.ReadZone(p, 0, 0, 500)
	})
	if d.Stats().MediaWrite.Value() != 1000 {
		t.Fatalf("media write %d", d.Stats().MediaWrite.Value())
	}
	if d.Stats().MediaRead.Value() != 500 {
		t.Fatalf("media read %d", d.Stats().MediaRead.Value())
	}
}

func TestConventionalReadWrite(t *testing.T) {
	cfg := testCfg()
	run(t, cfg, func(p *sim.Proc, d *Device) {
		blk := make([]byte, cfg.BlockSize)
		copy(blk, "block data")
		if err := d.WriteBlock(p, 7, blk); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, cfg.BlockSize)
		if err := d.ReadBlock(p, 7, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blk) {
			t.Fatal("block mismatch")
		}
		// Unwritten block reads as zeros.
		if err := d.ReadBlock(p, 8, buf); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("unwritten block not zero")
			}
		}
	})
}

func TestConventionalBoundsAndAlignment(t *testing.T) {
	cfg := testCfg()
	run(t, cfg, func(p *sim.Proc, d *Device) {
		blk := make([]byte, cfg.BlockSize)
		if err := d.WriteBlock(p, -1, blk); !errors.Is(err, ErrBlockBounds) {
			t.Fatal(err)
		}
		if err := d.WriteBlock(p, cfg.ConvBlocks, blk); !errors.Is(err, ErrBlockBounds) {
			t.Fatal(err)
		}
		if err := d.WriteBlock(p, 0, blk[:100]); !errors.Is(err, ErrUnalignedRequest) {
			t.Fatal(err)
		}
		if err := d.ReadBlock(p, 0, blk[:100]); !errors.Is(err, ErrUnalignedRequest) {
			t.Fatal(err)
		}
		if err := d.TrimBlock(p, cfg.ConvBlocks+5); !errors.Is(err, ErrBlockBounds) {
			t.Fatal(err)
		}
	})
}

func TestTrimFreesBlocks(t *testing.T) {
	cfg := testCfg()
	run(t, cfg, func(p *sim.Proc, d *Device) {
		free0 := d.FreeConvBlocks()
		blk := make([]byte, cfg.BlockSize)
		if err := d.WriteBlock(p, 3, blk); err != nil {
			t.Fatal(err)
		}
		if d.FreeConvBlocks() != free0-1 {
			t.Fatal("write did not consume a block")
		}
		if err := d.TrimBlock(p, 3); err != nil {
			t.Fatal(err)
		}
		if d.FreeConvBlocks() != free0 {
			t.Fatal("trim did not free the block")
		}
		// Double trim is a no-op.
		if err := d.TrimBlock(p, 3); err != nil {
			t.Fatal(err)
		}
		if d.FreeConvBlocks() != free0 {
			t.Fatal("double trim changed accounting")
		}
	})
}

func TestGCKicksInUnderChurn(t *testing.T) {
	cfg := testCfg()
	cfg.ConvBlocks = 64
	cfg.OverprovisionPct = 0
	cfg.GCThreshold = 0.5
	d, _ := run(t, cfg, func(p *sim.Proc, d *Device) {
		blk := make([]byte, cfg.BlockSize)
		// Fill most of the namespace, then overwrite repeatedly.
		for i := int64(0); i < 60; i++ {
			if err := d.WriteBlock(p, i, blk); err != nil {
				t.Fatal(err)
			}
		}
		for r := 0; r < 5; r++ {
			for i := int64(0); i < 60; i++ {
				if err := d.WriteBlock(p, i, blk); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	if d.GCRuns() == 0 {
		t.Fatal("expected GC activity under overwrite churn")
	}
	if d.GCCopiedBytes() != d.GCRuns()*4*int64(cfg.BlockSize) {
		t.Fatalf("gc accounting inconsistent: runs=%d copied=%d", d.GCRuns(), d.GCCopiedBytes())
	}
}

func TestCapacityExhaustion(t *testing.T) {
	cfg := testCfg()
	cfg.ConvBlocks = 8
	cfg.OverprovisionPct = 0
	run(t, cfg, func(p *sim.Proc, d *Device) {
		blk := make([]byte, cfg.BlockSize)
		for i := int64(0); i < 8; i++ {
			if err := d.WriteBlock(p, i, blk); err != nil {
				t.Fatal(err)
			}
		}
		// All physical blocks consumed; a new logical block must fail.
		// (LBA space is also 8, so reuse after trim instead.)
		if got := d.FreeConvBlocks(); got != 0 {
			t.Fatalf("free = %d", got)
		}
	})
}

func TestFaultInjectionZoneWrite(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		d.InjectFault("zone-write", 2, 2) // second write to zone 2 fails
		if err := d.WriteZone(p, 2, []byte{1}); err != nil {
			t.Fatalf("first write should succeed: %v", err)
		}
		if err := d.WriteZone(p, 2, []byte{2}); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("second write: %v", err)
		}
		// Fault is consumed.
		if err := d.WriteZone(p, 2, []byte{3}); err != nil {
			t.Fatalf("third write: %v", err)
		}
	})
}

func TestFaultInjectionAnyRead(t *testing.T) {
	run(t, testCfg(), func(p *sim.Proc, d *Device) {
		_ = d.WriteZone(p, 0, []byte{1, 2, 3})
		d.InjectFault("zone-read", -1, 1)
		if _, err := d.ReadZone(p, 0, 0, 1); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("err = %v", err)
		}
		if _, err := d.ReadZone(p, 0, 0, 1); err != nil {
			t.Fatalf("fault should be consumed: %v", err)
		}
	})
}

func TestFaultInjectionBlock(t *testing.T) {
	cfg := testCfg()
	run(t, cfg, func(p *sim.Proc, d *Device) {
		blk := make([]byte, cfg.BlockSize)
		d.InjectFault("block-write", 5, 1)
		if err := d.WriteBlock(p, 5, blk); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("err = %v", err)
		}
		d.InjectFault("block-read", 5, 1)
		_ = d.WriteBlock(p, 5, blk)
		if err := d.ReadBlock(p, 5, blk); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestZoneStateString(t *testing.T) {
	if ZoneEmpty.String() != "EMPTY" || ZoneOpen.String() != "OPEN" || ZoneFull.String() != "FULL" {
		t.Fatal("state strings wrong")
	}
	if ZoneState(9).String() != "ZoneState(9)" {
		t.Fatal("unknown state string wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := testCfg()
	cfg.Channels = 0
	New(sim.NewEnv(), cfg, stats.NewIOStats())
}

func TestSequentialWritesAccumulate(t *testing.T) {
	// Property: any sequence of writes fitting in a zone reads back intact.
	cfg := testCfg()
	f := func(chunks [][]byte) bool {
		var total int64
		for _, c := range chunks {
			total += int64(len(c))
		}
		if total > cfg.ZoneSize || total == 0 {
			return true
		}
		ok := true
		run(t, cfg, func(p *sim.Proc, d *Device) {
			var want []byte
			for _, c := range chunks {
				if err := d.WriteZone(p, 0, c); err != nil {
					ok = false
					return
				}
				want = append(want, c...)
			}
			got, err := d.ReadZone(p, 0, 0, len(want))
			if err != nil || !bytes.Equal(got, want) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
