package server

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kvcsd/internal/device"
	"kvcsd/internal/nvme"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// gateBackend blocks OpGet applies on a real channel (freezing virtual time
// and holding admission tokens) and records coalesced bulk submissions.
// Everything else completes immediately.
type gateBackend struct {
	gate    chan struct{}
	applies atomic.Int64

	mu    sync.Mutex
	bulks [][]nvme.KVPair
}

func newGateBackend() *gateBackend {
	return &gateBackend{gate: make(chan struct{})}
}

func (b *gateBackend) Apply(p *sim.Proc, req *wire.Request) *wire.Response {
	b.applies.Add(1)
	switch req.Op {
	case wire.OpGet:
		<-b.gate
	case wire.OpScan:
		p.Sleep(time.Millisecond) // simulated device work
	}
	return &wire.Response{Status: wire.StatusOK}
}

func (b *gateBackend) BulkApply(p *sim.Proc, keyspace string, pairs []nvme.KVPair) *wire.Response {
	b.mu.Lock()
	cp := make([]nvme.KVPair, len(pairs))
	copy(cp, pairs)
	b.bulks = append(b.bulks, cp)
	b.mu.Unlock()
	return &wire.Response{Status: wire.StatusOK}
}

func (b *gateBackend) BackgroundJobs() int        { return 0 }
func (b *gateBackend) WaitIdle(p *sim.Proc) error { return nil }
func (b *gateBackend) Shutdown()                  {}
func (b *gateBackend) Tracer() *obs.Tracer        { return nil }
func (b *gateBackend) Registry() *obs.Registry    { return nil }

func (b *gateBackend) bulkCalls() [][]nvme.KVPair {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([][]nvme.KVPair(nil), b.bulks...)
}

// sendReq writes one request frame on a raw connection.
func sendReq(t *testing.T, nc net.Conn, req *wire.Request) {
	t.Helper()
	if err := wire.WriteRequest(nc, req); err != nil {
		t.Fatalf("write request %d: %v", req.ID, err)
	}
}

// readResp reads one (possibly streamed) response.
func readResp(t *testing.T, nc net.Conn) *wire.Response {
	t.Helper()
	var acc *wire.Response
	for {
		h, payload, err := wire.ReadFrame(nc)
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		chunk, err := wire.DecodeResponse(h, payload)
		if err != nil {
			t.Fatalf("decode response: %v", err)
		}
		var done bool
		acc, done = wire.Accumulate(acc, chunk)
		if done {
			return acc
		}
	}
}

func waitInflight(t *testing.T, s *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Inflight() != want {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, want %d (timeout)", s.Inflight(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedsOverCap holds the single admission token with a blocked
// request and verifies that further requests are refused immediately with
// StatusOverloaded — shed, not queued.
func TestAdmissionShedsOverCap(t *testing.T) {
	b := newGateBackend()
	cfg := DefaultConfig()
	cfg.MaxInflight = 1
	cfg.MaxPipeline = 8
	srv := New(sim.NewEnv(), b, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()

	// Request 1 takes the only token and blocks inside the backend.
	sendReq(t, nc, &wire.Request{ID: 1, Op: wire.OpGet, Keyspace: "ks", Key: []byte("k")})
	waitInflight(t, srv, 1)

	// Requests 2 and 3 must be shed while the token is held.
	sendReq(t, nc, &wire.Request{ID: 2, Op: wire.OpGet, Keyspace: "ks", Key: []byte("k")})
	sendReq(t, nc, &wire.Request{ID: 3, Op: wire.OpGet, Keyspace: "ks", Key: []byte("k")})
	for i := 0; i < 2; i++ {
		resp := readResp(t, nc)
		if resp.ID != 2 && resp.ID != 3 {
			t.Fatalf("unexpected response ID %d while request 1 is blocked", resp.ID)
		}
		if resp.Status != wire.StatusOverloaded {
			t.Fatalf("response %d: status %v, want Overloaded", resp.ID, resp.Status)
		}
		if resp.Status.Err() == nil || !errors.Is(resp.Status.Err(), wire.ErrOverloaded) {
			t.Fatalf("overloaded status did not map to wire.ErrOverloaded")
		}
	}

	// Release the gate: request 1 completes normally.
	close(b.gate)
	resp := readResp(t, nc)
	if resp.ID != 1 || resp.Status != wire.StatusOK {
		t.Fatalf("blocked request finished as ID=%d status=%v", resp.ID, resp.Status)
	}

	m := srv.Metrics()
	if m.Shed != 2 || m.Accepted != 1 {
		t.Fatalf("metrics: shed=%d accepted=%d, want 2/1", m.Shed, m.Accepted)
	}
	waitInflight(t, srv, 0)
}

// TestWriteCoalescing gates the pipeline behind a blocked request, queues
// several puts to one keyspace, and verifies they execute as a single bulk
// submission whose outcome answers every constituent request.
func TestWriteCoalescing(t *testing.T) {
	b := newGateBackend()
	cfg := DefaultConfig()
	cfg.MaxInflight = 16
	srv := New(sim.NewEnv(), b, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()

	// Block the gateway mid-batch on a get...
	sendReq(t, nc, &wire.Request{ID: 1, Op: wire.OpGet, Keyspace: "ks", Key: []byte("k")})
	waitInflight(t, srv, 1)
	// ...while four puts to one keyspace pile up in the queue.
	for i := uint64(2); i <= 5; i++ {
		sendReq(t, nc, &wire.Request{ID: i, Op: wire.OpPut, Keyspace: "ks",
			Key: []byte{byte(i)}, Value: []byte{byte(i), byte(i)}})
	}
	waitInflight(t, srv, 5)
	close(b.gate)

	seen := make(map[uint64]wire.Status)
	for i := 0; i < 5; i++ {
		resp := readResp(t, nc)
		seen[resp.ID] = resp.Status
	}
	for id := uint64(1); id <= 5; id++ {
		if seen[id] != wire.StatusOK {
			t.Fatalf("request %d: status %v", id, seen[id])
		}
	}

	bulks := b.bulkCalls()
	if len(bulks) != 1 || len(bulks[0]) != 4 {
		t.Fatalf("bulk submissions = %v, want one of 4 pairs", bulks)
	}
	m := srv.Metrics()
	if m.Coalesced != 4 || m.Batches != 1 {
		t.Fatalf("metrics: coalesced=%d batches=%d, want 4/1", m.Coalesced, m.Batches)
	}
}

// TestCoalescePutsGrouping is the white-box grouping unit test: puts group
// per keyspace in first-seen order, lone puts and non-puts stay singles.
func TestCoalescePutsGrouping(t *testing.T) {
	mk := func(op wire.Op, ks string) *task {
		return &task{req: &wire.Request{Op: op, Keyspace: ks}}
	}
	batch := []*task{
		mk(wire.OpPut, "a"),
		mk(wire.OpGet, "a"),
		mk(wire.OpPut, "b"),
		mk(wire.OpPut, "a"),
		mk(wire.OpScan, "b"),
		mk(wire.OpPut, "c"), // lone put: stays single
	}
	groups, singles := coalescePuts(batch)
	if len(groups) != 1 || groups[0].keyspace != "a" || len(groups[0].tasks) != 2 {
		t.Fatalf("groups = %+v, want one group of 2 puts on a", groups)
	}
	// b has only one put -> single; plus get, scan, and the lone c put.
	if len(singles) != 4 {
		t.Fatalf("singles = %d, want 4", len(singles))
	}
}

// TestGarbageBytesDropConnection feeds a non-protocol byte stream and
// verifies the server drops that connection but keeps serving others.
func TestGarbageBytesDropConnection(t *testing.T) {
	b := newGateBackend()
	close(b.gate) // nothing blocks
	srv := New(sim.NewEnv(), b, DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	bad, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer bad.Close()
	// More than one header's worth of non-protocol bytes, so the framing
	// check fires immediately.
	if _, err := bad.Write([]byte("GET /index.html HTTP/1.1\r\nHost: nope\r\nAccept: */*\r\nUser-Agent: junk\r\n\r\n")); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	// The server must cut the connection, not hang or crash.
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	if _, err := bad.Read(buf); err == nil {
		if _, err = bad.Read(buf); err == nil {
			t.Fatal("garbage connection still open and talking")
		}
	}

	// A well-formed connection still works.
	good, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial good: %v", err)
	}
	defer good.Close()
	sendReq(t, good, &wire.Request{ID: 9, Op: wire.OpPing})
	if resp := readResp(t, good); resp.Status != wire.StatusOK {
		t.Fatalf("ping after garbage: %v", resp.Status)
	}
	if srv.Metrics().BadFrames == 0 {
		t.Fatal("bad frame not counted")
	}
}

// TestGracefulDrain verifies Close answers all admitted work, refuses late
// requests, and shuts the simulation down without deadlocking.
func TestGracefulDrain(t *testing.T) {
	opts := device.DefaultOptions()
	opts.Seed = 7
	srv := NewDevice(opts, DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	sendReq(t, nc, &wire.Request{ID: 1, Op: wire.OpCreateKeyspace, Keyspace: "d"})
	if resp := readResp(t, nc); resp.Status != wire.StatusOK {
		t.Fatalf("create: %v", resp.Status)
	}
	for i := uint64(2); i < 10; i++ {
		sendReq(t, nc, &wire.Request{ID: i, Op: wire.OpPut, Keyspace: "d",
			Key: []byte{byte(i)}, Value: []byte("v")})
	}
	for i := 0; i < 8; i++ {
		if resp := readResp(t, nc); resp.Status != wire.StatusOK {
			t.Fatalf("put: %v", resp.Status)
		}
	}

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not drain")
	}
	// Idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// A request on the old connection is either refused with ShuttingDown
	// or the connection is already cut; both are acceptable drain outcomes.
	if err := wire.WriteRequest(nc, &wire.Request{ID: 99, Op: wire.OpPing}); err == nil {
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if h, payload, err := wire.ReadFrame(nc); err == nil {
			resp, err := wire.DecodeResponse(h, payload)
			if err != nil {
				t.Fatalf("decode post-close response: %v", err)
			}
			if resp.Status != wire.StatusShuttingDown {
				t.Fatalf("post-close status %v, want ShuttingDown", resp.Status)
			}
		}
	}

	// New connections are refused outright.
	if c2, err := net.Dial("tcp", addr.String()); err == nil {
		c2.Close()
		t.Fatal("listener still accepting after Close")
	}
}

// TestPipelinedOutOfOrderCompletion verifies responses leave in completion
// order, not arrival order: within one batch a cheap ping sent after an
// expensive scan (1ms of virtual device time) must be answered first, on
// the same connection, distinguished by request ID.
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	b := newGateBackend()
	srv := New(sim.NewEnv(), b, DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	gate, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer gate.Close()
	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()

	// Hold the gateway in batch 1 with a blocked get, so the scan and ping
	// both queue up and are admitted into the same batch.
	sendReq(t, gate, &wire.Request{ID: 1, Op: wire.OpGet, Keyspace: "ks", Key: []byte("k")})
	waitInflight(t, srv, 1)
	sendReq(t, nc, &wire.Request{ID: 2, Op: wire.OpScan, Keyspace: "ks"})
	sendReq(t, nc, &wire.Request{ID: 3, Op: wire.OpPing})
	waitInflight(t, srv, 3)
	close(b.gate)

	// The ping (zero virtual cost) completes before the scan (1ms virtual),
	// so its response overtakes on the shared connection.
	first := readResp(t, nc)
	second := readResp(t, nc)
	if first.ID != 3 || second.ID != 2 {
		t.Fatalf("response order = %d,%d; want ping (3) before scan (2)", first.ID, second.ID)
	}
	if resp := readResp(t, gate); resp.ID != 1 || resp.Status != wire.StatusOK {
		t.Fatalf("gated get: %+v", resp)
	}
}
