package server

import (
	"time"

	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// gateway is the bridge proc between wall-clock sockets and virtual time.
// It blocks on the request channel while the server is idle (the simulation
// spends no virtual time on an idle server), drains whatever has accumulated
// into one batch, and runs the batch as concurrent sim procs that share the
// same virtual admission instant — which is what lets pipelined requests
// from many connections genuinely overlap inside the device model.
func (s *Server) gateway(p *sim.Proc) {
	for {
		// While the socket side is quiet but the device still has
		// background work (compaction, index builds), advance virtual time
		// in small slices so status polls from remote clients observe
		// progress. Without this pump, background jobs would stay frozen
		// between requests and a WaitCompacted poll loop would never finish.
		for len(s.reqCh) == 0 && s.backend.BackgroundJobs() > 0 {
			p.Sleep(s.cfg.BackgroundSlice)
		}
		batch, ok := s.nextBatch()
		if len(batch) > 0 {
			s.runBatch(p, batch)
		}
		if !ok {
			break
		}
	}
	// Drain: reqCh is closed and empty. Finish background work, then stop
	// the device dispatch loops so the simulation can end.
	_ = s.backend.WaitIdle(p)
	s.backend.Shutdown()
}

// nextBatch blocks for the first task (freezing virtual time), then drains
// up to MaxBatch-1 more without blocking. ok is false once the request
// channel is closed and fully drained.
func (s *Server) nextBatch() ([]*task, bool) {
	first, ok := <-s.reqCh
	if !ok {
		return nil, false
	}
	batch := []*task{first}
	for len(batch) < s.cfg.MaxBatch {
		select {
		case t, ok := <-s.reqCh:
			if !ok {
				return batch, false
			}
			batch = append(batch, t)
		default:
			return batch, true
		}
	}
	return batch, true
}

// putGroup is a set of same-keyspace puts coalesced into one bulk device
// submission.
type putGroup struct {
	keyspace string
	tasks    []*task
}

// runBatch executes one admitted batch: coalescable puts become one bulk
// submission per keyspace, everything else runs as its own handler proc.
// All handlers start at the same virtual instant; Join holds the gateway
// until the batch completes so batches never interleave.
func (s *Server) runBatch(p *sim.Proc, batch []*task) {
	env := p.Env()
	var procs []*sim.Proc
	singles := batch
	if !s.cfg.DisableWriteCoalescing {
		var groups []*putGroup
		groups, singles = coalescePuts(batch)
		for _, g := range groups {
			g := g
			s.met.addCoalesced(len(g.tasks))
			procs = append(procs, env.Go("rpc-put-batch", func(q *sim.Proc) {
				s.handleGroup(q, g)
			}))
		}
	}
	for _, t := range singles {
		t := t
		procs = append(procs, env.Go("rpc-"+t.req.Op.String(), func(q *sim.Proc) {
			s.handle(q, t)
		}))
	}
	p.Join(procs...)
}

// coalescePuts splits a batch into per-keyspace put groups (two or more
// puts) and the remaining singles, preserving first-seen order so the
// grouping is deterministic for a given batch.
func coalescePuts(batch []*task) ([]*putGroup, []*task) {
	byKS := make(map[string]*putGroup)
	var order []*putGroup
	var singles []*task
	for _, t := range batch {
		if t.req.Op != wire.OpPut {
			singles = append(singles, t)
			continue
		}
		g, ok := byKS[t.req.Keyspace]
		if !ok {
			g = &putGroup{keyspace: t.req.Keyspace}
			byKS[t.req.Keyspace] = g
			order = append(order, g)
		}
		g.tasks = append(g.tasks, t)
	}
	var groups []*putGroup
	for _, g := range order {
		if len(g.tasks) < 2 {
			// A lone put gains nothing from the bulk path; run it as-is.
			singles = append(singles, g.tasks...)
			continue
		}
		groups = append(groups, g)
	}
	return groups, singles
}

// handle runs one request in its own sim proc.
func (s *Server) handle(q *sim.Proc, t *task) {
	queueWait := time.Since(t.enq)
	span := s.tr.StartRoot(q, "rpc:"+t.req.Op.String(), "rpc/"+t.req.Op.String())
	if span != nil {
		s.tr.Push(q, span)
	}
	v0 := q.Now()
	r0 := time.Now()
	resp := s.backend.Apply(q, t.req)
	svc := time.Since(r0)
	virt := time.Duration(q.Now() - v0)
	if span != nil {
		s.tr.Pop(q)
		span.End()
	}
	resp.ID, resp.Op = t.req.ID, t.req.Op
	s.met.observeService(t.req.Op, queueWait, svc, virt, resp.Status)
	t.c.respond(resp)
}

// handleGroup runs one coalesced put group: a single bulk submission whose
// outcome answers every constituent request.
func (s *Server) handleGroup(q *sim.Proc, g *putGroup) {
	pairs := make([]nvme.KVPair, len(g.tasks))
	for i, t := range g.tasks {
		pairs[i] = nvme.KVPair{Key: t.req.Key, Value: t.req.Value}
	}
	span := s.tr.StartRoot(q, "rpc:PutBatch", "rpc/PutBatch")
	if span != nil {
		s.tr.Push(q, span)
	}
	v0 := q.Now()
	r0 := time.Now()
	out := s.backend.BulkApply(q, g.keyspace, pairs)
	svc := time.Since(r0)
	virt := time.Duration(q.Now() - v0)
	if span != nil {
		s.tr.Pop(q)
		span.End()
	}
	for _, t := range g.tasks {
		s.met.observeService(t.req.Op, r0.Sub(t.enq), svc, virt, out.Status)
		t.c.respond(&wire.Response{
			ID:     t.req.ID,
			Op:     t.req.Op,
			Status: out.Status,
			Err:    out.Err,
		})
	}
}
