package server

import (
	"encoding/json"
	"time"

	"kvcsd/internal/nvme"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// gateway is the bridge proc between wall-clock sockets and virtual time.
// It blocks on the fair scheduler while the server is idle (the simulation
// spends no virtual time on an idle server), takes whatever has accumulated
// as one batch — in weighted-fair order: priority lanes by credit, tenants
// within a lane by deficit round-robin — and runs the batch as concurrent
// sim procs that share the same virtual admission instant, which is what
// lets pipelined requests from many connections genuinely overlap inside
// the device model.
func (s *Server) gateway(p *sim.Proc) {
	for {
		// While the socket side is quiet but the device still has
		// background work (compaction, index builds), advance virtual time
		// in small slices so status polls from remote clients observe
		// progress. Without this pump, background jobs would stay frozen
		// between requests and a WaitCompacted poll loop would never finish.
		for s.sched.Queued() == 0 && s.backend.BackgroundJobs() > 0 {
			p.Sleep(s.cfg.BackgroundSlice)
		}
		items, ok := s.sched.NextBatch(s.cfg.MaxBatch)
		if len(items) > 0 {
			batch := make([]*task, len(items))
			for i, it := range items {
				batch[i] = it.Value.(*task)
			}
			s.runBatch(p, batch)
		}
		if !ok {
			break
		}
	}
	// Drain: intake is closed and the scheduler is empty. Finish background
	// work, then stop the device dispatch loops so the simulation can end.
	_ = s.backend.WaitIdle(p)
	s.backend.Shutdown()
}

// putGroup is a set of same-keyspace puts coalesced into one bulk device
// submission.
type putGroup struct {
	keyspace string
	tasks    []*task
}

// runBatch executes one admitted batch: coalescable puts become one bulk
// submission per keyspace, everything else runs as its own handler proc.
// All handlers start at the same virtual instant; Join holds the gateway
// until the batch completes so batches never interleave.
func (s *Server) runBatch(p *sim.Proc, batch []*task) {
	env := p.Env()
	var procs []*sim.Proc
	singles := batch
	if !s.cfg.DisableWriteCoalescing {
		var groups []*putGroup
		groups, singles = coalescePuts(batch)
		for _, g := range groups {
			g := g
			s.met.addCoalesced(len(g.tasks))
			procs = append(procs, env.Go("rpc-put-batch", func(q *sim.Proc) {
				s.handleGroup(q, g)
			}))
		}
	}
	for _, t := range singles {
		t := t
		procs = append(procs, env.Go("rpc-"+t.req.Op.String(), func(q *sim.Proc) {
			s.handle(q, t)
		}))
	}
	p.Join(procs...)
}

// coalescePuts splits a batch into per-keyspace put groups (two or more
// puts) and the remaining singles, preserving first-seen order so the
// grouping is deterministic for a given batch.
func coalescePuts(batch []*task) ([]*putGroup, []*task) {
	byKS := make(map[string]*putGroup)
	var order []*putGroup
	var singles []*task
	for _, t := range batch {
		if t.req.Op != wire.OpPut {
			singles = append(singles, t)
			continue
		}
		g, ok := byKS[t.req.Keyspace]
		if !ok {
			g = &putGroup{keyspace: t.req.Keyspace}
			byKS[t.req.Keyspace] = g
			order = append(order, g)
		}
		g.tasks = append(g.tasks, t)
	}
	var groups []*putGroup
	for _, g := range order {
		if len(g.tasks) < 2 {
			// A lone put gains nothing from the bulk path; run it as-is.
			singles = append(singles, g.tasks...)
			continue
		}
		groups = append(groups, g)
	}
	return groups, singles
}

// handle runs one request in its own sim proc. The request's trace context
// (propagated in the frame header) seeds the rpc span, so device spans the
// request causes are descendants of the remote client span that sent it.
func (s *Server) handle(q *sim.Proc, t *task) {
	queueWait := time.Since(t.enq)
	span := s.tr.StartRemoteRoot(q, "rpc:"+t.req.Op.String(), "rpc/"+t.req.Op.String(),
		t.req.Trace.TraceID, t.req.Trace.SpanID)
	if span != nil {
		s.tr.Push(q, span)
	}
	v0 := q.Now()
	r0 := time.Now()
	resp := s.backend.Apply(q, t.req)
	svc := time.Since(r0)
	virt := time.Duration(q.Now() - v0)
	if span != nil {
		s.tr.Pop(q)
		span.End()
	}
	resp.ID, resp.Op, resp.Trace, resp.Session = t.req.ID, t.req.Op, t.req.Trace, t.req.Session
	if resp.Stats != nil {
		// Stats responses carry the gateway's RPC counters alongside the
		// engine's, so remote clients see the whole stack in one report.
		resp.Stats.RPC = s.met.snapshot().wireReport()
		resp.Stats.Tenants = s.mgr.WireStats()
	}
	s.met.observeService(t.req.Op, queueWait, svc, virt, resp.Status)
	s.noteSlowOp(t.req.Op.String(), queueWait, svc, virt, span)
	if t.sess != nil {
		t.sess.MarkApplied(t.req.ID, resp.Status)
	}
	t.c.respond(t, resp)
}

// handleGroup runs one coalesced put group: a single bulk submission whose
// outcome answers every constituent request.
func (s *Server) handleGroup(q *sim.Proc, g *putGroup) {
	pairs := make([]nvme.KVPair, len(g.tasks))
	for i, t := range g.tasks {
		pairs[i] = nvme.KVPair{Key: t.req.Key, Value: t.req.Value}
	}
	// A coalesced group has many remote parents; the batch span stays local
	// and each constituent response echoes its own request's trace context.
	span := s.tr.StartRoot(q, "rpc:PutBatch", "rpc/PutBatch")
	if span != nil {
		s.tr.Push(q, span)
	}
	v0 := q.Now()
	r0 := time.Now()
	out := s.backend.BulkApply(q, g.keyspace, pairs)
	svc := time.Since(r0)
	virt := time.Duration(q.Now() - v0)
	if span != nil {
		s.tr.Pop(q)
		span.End()
	}
	s.noteSlowOp("PutBatch", 0, svc, virt, span)
	for _, t := range g.tasks {
		s.met.observeService(t.req.Op, r0.Sub(t.enq), svc, virt, out.Status)
		if t.sess != nil {
			t.sess.MarkApplied(t.req.ID, out.Status)
		}
		t.c.respond(t, &wire.Response{
			ID:      t.req.ID,
			Op:      t.req.Op,
			Trace:   t.req.Trace,
			Session: t.req.Session,
			Status:  out.Status,
			Err:     out.Err,
		})
	}
}

// noteSlowOp applies the slow-op budget: an op whose virtual service time
// exceeds the threshold is recorded in the bounded ring and, when a log
// writer is configured, dumped as one JSON line with the stage breakdown
// accumulated on its span (device stages roll up into the rpc span).
func (s *Server) noteSlowOp(op string, queue, real, virt time.Duration, span *obs.Span) {
	if s.cfg.SlowOpThreshold <= 0 || virt <= s.cfg.SlowOpThreshold {
		return
	}
	rec := SlowOp{
		Op:          op,
		QueueNs:     int64(queue),
		RealNs:      int64(real),
		VirtualNs:   int64(virt),
		ThresholdNs: int64(s.cfg.SlowOpThreshold),
	}
	if st := span.Stages(); len(st) > 0 {
		rec.Stages = make(map[string]int64, len(st))
		for stage, d := range st {
			rec.Stages[stage] = int64(d)
		}
	}
	rec = s.met.addSlowOp(rec)
	if s.cfg.SlowOpLog != nil {
		if b, err := json.Marshal(rec); err == nil {
			s.slowMu.Lock()
			s.cfg.SlowOpLog.Write(append(b, '\n'))
			s.slowMu.Unlock()
		}
	}
}
