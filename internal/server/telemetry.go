package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"kvcsd/internal/wire"
)

// Telemetry is the live observability sidecar: a plain HTTP endpoint beside
// the wire-protocol listener serving
//
//	/metrics  Prometheus text exposition — RPC counters, per-opcode
//	          dual-clock service summaries, sim registry gauges and stage
//	          histograms, and engine I/O counters
//	/healthz  liveness + drain state as JSON
//	/slowops  the bounded ring of over-budget ops with stage breakdowns
//	/debug/pprof/...  the standard Go profiler handlers
//
// Everything it reads is mutex- or atomic-guarded, so scraping while the
// simulation runs is safe; readings are per-metric consistent, not a global
// snapshot.

// telemetryServer is the lifecycle wrapper around the sidecar listener.
type telemetryServer struct {
	ln  net.Listener
	srv *http.Server
}

func (t *telemetryServer) close() {
	t.srv.Close()
	t.ln.Close()
}

// ServeTelemetry binds addr (e.g. "127.0.0.1:0") and serves the telemetry
// endpoints until the server is closed. It returns the bound address.
func (s *Server) ServeTelemetry(addr string) (net.Addr, error) {
	if s.telemetry != nil {
		return nil, fmt.Errorf("server: telemetry already serving on %s", s.telemetry.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: s.TelemetryHandler(), ReadHeaderTimeout: 5 * time.Second}
	s.telemetry = &telemetryServer{ln: ln, srv: srv}
	go srv.Serve(ln)
	return ln.Addr(), nil
}

// TelemetryHandler returns the sidecar's HTTP handler (also usable under a
// caller-owned server or in tests without a socket).
func (s *Server) TelemetryHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/slowops", s.handleSlowOps)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.connMu.Lock()
	conns := len(s.conns)
	s.connMu.Unlock()
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
		"inflight": s.inflight.Load(),
		"conns":    conns,
	})
}

func (s *Server) handleSlowOps(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	ring := s.met.slowOpsSnapshot()
	if ring == nil {
		ring = []SlowOp{}
	}
	json.NewEncoder(w).Encode(map[string]any{
		"threshold_ns": int64(s.cfg.SlowOpThreshold),
		"slow_ops":     ring,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writePrometheus(w)
}

// promQuantiles are the summary quantiles exposed per opcode.
var promQuantiles = []float64{0.5, 0.9, 0.99}

func secs(d time.Duration) float64 { return float64(d) / 1e9 }

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// writePrometheus renders the full text exposition.
func (s *Server) writePrometheus(w io.Writer) {
	sn := s.met.snapshot()

	fmt.Fprint(w, "# HELP kvcsd_rpc_requests_total RPC requests handled, by opcode.\n")
	fmt.Fprint(w, "# TYPE kvcsd_rpc_requests_total counter\n")
	ops := make([]wire.Op, 0, len(sn.PerOp))
	for op := range sn.PerOp {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		fmt.Fprintf(w, "kvcsd_rpc_requests_total{op=%q} %d\n", op, sn.PerOp[op].Count)
	}
	fmt.Fprint(w, "# HELP kvcsd_rpc_errors_total RPC requests answered with a non-OK status, by opcode.\n")
	fmt.Fprint(w, "# TYPE kvcsd_rpc_errors_total counter\n")
	for _, op := range ops {
		fmt.Fprintf(w, "kvcsd_rpc_errors_total{op=%q} %d\n", op, sn.PerOp[op].Errs)
	}

	fmt.Fprint(w, "# HELP kvcsd_rpc_stage_seconds_total Cumulative per-stage time, by opcode. decode/queue/service/write are wall clock; service_virtual is virtual device time.\n")
	fmt.Fprint(w, "# TYPE kvcsd_rpc_stage_seconds_total counter\n")
	for _, op := range ops {
		st := sn.PerOp[op]
		for _, stage := range []struct {
			name string
			d    time.Duration
		}{
			{"decode", st.Decode}, {"queue", st.Queue}, {"service", st.Service},
			{"service_virtual", st.Virtual}, {"write", st.Write},
		} {
			fmt.Fprintf(w, "kvcsd_rpc_stage_seconds_total{op=%q,stage=%q} %g\n", op, stage.name, secs(stage.d))
		}
	}

	// Dual-clock service summaries: the wall-clock figure is what a remote
	// client experiences; the virtual figure is comparable to the in-process
	// benchmarks and is deterministic for a given workload.
	for _, clock := range []struct {
		metric string
		help   string
		pick   func(st rpcStats) *histView
	}{
		{"kvcsd_rpc_service_seconds", "RPC service latency, wall clock.",
			func(st rpcStats) *histView { return newHistView(st.RealHist.Samples()) }},
		{"kvcsd_rpc_service_virtual_seconds", "RPC service latency, virtual device clock.",
			func(st rpcStats) *histView { return newHistView(st.VirtHist.Samples()) }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n", clock.metric, clock.help)
		fmt.Fprintf(w, "# TYPE %s summary\n", clock.metric)
		for _, op := range ops {
			h := clock.pick(sn.PerOp[op])
			for _, q := range promQuantiles {
				fmt.Fprintf(w, "%s{op=%q,quantile=\"%g\"} %g\n", clock.metric, op, q, secs(h.quantile(q)))
			}
			fmt.Fprintf(w, "%s_sum{op=%q} %g\n", clock.metric, op, secs(h.sum()))
			fmt.Fprintf(w, "%s_count{op=%q} %d\n", clock.metric, op, h.count())
		}
	}

	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"kvcsd_rpc_accepted_total", "Requests admitted past the admission pool.", sn.Accepted},
		{"kvcsd_rpc_shed_total", "Requests shed with StatusOverloaded.", sn.Shed},
		{"kvcsd_rpc_refused_total", "Requests refused while draining.", sn.Refused},
		{"kvcsd_rpc_bad_frames_total", "Malformed frames that killed a connection.", sn.BadFrames},
		{"kvcsd_rpc_coalesced_puts_total", "Puts absorbed into coalesced bulk submissions.", sn.Coalesced},
		{"kvcsd_rpc_coalesced_batches_total", "Coalesced bulk submissions issued.", sn.Batches},
		{"kvcsd_rpc_slow_ops_total", "Ops over the slow-op virtual-time budget.", sn.SlowOps},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n", c.name, c.help)
		fmt.Fprintf(w, "# TYPE %s counter\n", c.name)
		fmt.Fprintf(w, "%s %d\n", c.name, c.v)
	}

	fmt.Fprint(w, "# HELP kvcsd_inflight_requests Admitted requests not yet answered.\n")
	fmt.Fprint(w, "# TYPE kvcsd_inflight_requests gauge\n")
	fmt.Fprintf(w, "kvcsd_inflight_requests %d\n", s.inflight.Load())

	// Per-tenant QoS accounting from the session manager: admission outcomes
	// and queue depth per (tenant, lane), shed causes, open sessions, and
	// persistent backlog bytes.
	tenants := s.mgr.WireStats()
	for _, c := range []struct {
		metric, help string
		pick         func(l wire.LaneStats) int64
		gauge        bool
	}{
		{"kvcsd_tenant_admitted_total", "Requests admitted into the fair scheduler, by tenant and lane.",
			func(l wire.LaneStats) int64 { return l.Admitted }, false},
		{"kvcsd_tenant_completed_total", "Responses written or spilled to a session backlog, by tenant and lane.",
			func(l wire.LaneStats) int64 { return l.Completed }, false},
		{"kvcsd_tenant_shed_total", "Requests shed, by tenant and lane (any cause).",
			func(l wire.LaneStats) int64 { return l.Shed }, false},
		{"kvcsd_tenant_queued", "Requests currently parked in the fair scheduler, by tenant and lane.",
			func(l wire.LaneStats) int64 { return l.Queued }, true},
	} {
		kind := "counter"
		if c.gauge {
			kind = "gauge"
		}
		fmt.Fprintf(w, "# HELP %s %s\n", c.metric, c.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", c.metric, kind)
		for _, ts := range tenants {
			for _, l := range ts.Lanes {
				fmt.Fprintf(w, "%s{tenant=\"%s\",lane=%q} %d\n",
					c.metric, escapeLabel(ts.Tenant), wire.Lane(l.Lane), c.pick(l))
			}
		}
	}
	fmt.Fprint(w, "# HELP kvcsd_tenant_shed_cause_total Requests shed, by tenant and shed cause.\n")
	fmt.Fprint(w, "# TYPE kvcsd_tenant_shed_cause_total counter\n")
	for _, ts := range tenants {
		for _, c := range []struct {
			cause string
			v     int64
		}{
			{"session-cap", ts.ShedSession}, {"tenant-cap", ts.ShedTenant},
			{"global-cap", ts.ShedGlobal}, {"backlog-full", ts.ShedBacklog},
		} {
			fmt.Fprintf(w, "kvcsd_tenant_shed_cause_total{tenant=\"%s\",cause=%q} %d\n",
				escapeLabel(ts.Tenant), c.cause, c.v)
		}
	}
	fmt.Fprint(w, "# HELP kvcsd_tenant_sessions Open sessions per tenant.\n")
	fmt.Fprint(w, "# TYPE kvcsd_tenant_sessions gauge\n")
	for _, ts := range tenants {
		fmt.Fprintf(w, "kvcsd_tenant_sessions{tenant=\"%s\"} %d\n", escapeLabel(ts.Tenant), ts.Sessions)
	}
	fmt.Fprint(w, "# HELP kvcsd_tenant_backlog_bytes Persistent per-session response backlog, summed per tenant.\n")
	fmt.Fprint(w, "# TYPE kvcsd_tenant_backlog_bytes gauge\n")
	for _, ts := range tenants {
		fmt.Fprintf(w, "kvcsd_tenant_backlog_bytes{tenant=\"%s\"} %d\n", escapeLabel(ts.Tenant), ts.BacklogBytes)
	}

	// Simulation registry: gauges and stage histograms published by the
	// engine and device layers. Mean needs the sim's current time and is not
	// safe to read concurrently, so only current value and max are exposed.
	reg := s.backend.Registry()
	if reg != nil {
		if gauges := reg.GaugeNames(); len(gauges) > 0 {
			fmt.Fprint(w, "# HELP kvcsd_sim_gauge Current value of a simulation gauge.\n")
			fmt.Fprint(w, "# TYPE kvcsd_sim_gauge gauge\n")
			for _, n := range gauges {
				fmt.Fprintf(w, "kvcsd_sim_gauge{name=\"%s\"} %g\n", escapeLabel(n), reg.LookupGauge(n).Value())
			}
			fmt.Fprint(w, "# HELP kvcsd_sim_gauge_max Maximum value a simulation gauge reached.\n")
			fmt.Fprint(w, "# TYPE kvcsd_sim_gauge_max gauge\n")
			for _, n := range gauges {
				fmt.Fprintf(w, "kvcsd_sim_gauge_max{name=\"%s\"} %g\n", escapeLabel(n), reg.LookupGauge(n).Max())
			}
		}
		if hists := reg.HistogramNames(); len(hists) > 0 {
			fmt.Fprint(w, "# HELP kvcsd_sim_latency_seconds Simulation latency histogram (virtual time), by stage histogram name.\n")
			fmt.Fprint(w, "# TYPE kvcsd_sim_latency_seconds summary\n")
			for _, n := range hists {
				h := reg.LookupHistogram(n).Clone()
				if h.Count() == 0 {
					continue
				}
				for _, q := range promQuantiles {
					fmt.Fprintf(w, "kvcsd_sim_latency_seconds{name=\"%s\",quantile=\"%g\"} %g\n",
						escapeLabel(n), q, secs(h.Quantile(q)))
				}
				fmt.Fprintf(w, "kvcsd_sim_latency_seconds_sum{name=\"%s\"} %g\n", escapeLabel(n), secs(h.Sum()))
				fmt.Fprintf(w, "kvcsd_sim_latency_seconds_count{name=\"%s\"} %d\n", escapeLabel(n), h.Count())
			}
		}
		if io := reg.IOStats(); io != nil {
			snap := io.Snapshot()
			names := make([]string, 0, len(snap))
			for n := range snap {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprint(w, "# HELP kvcsd_io_total Engine I/O counters (bytes and operation counts).\n")
			fmt.Fprint(w, "# TYPE kvcsd_io_total counter\n")
			for _, n := range names {
				fmt.Fprintf(w, "kvcsd_io_total{counter=\"%s\"} %d\n", escapeLabel(n), snap[n])
			}
		}
	}
}

// histView computes summary statistics over one consistent sample snapshot,
// so the quantile/sum/count triple exposed for a metric is self-consistent.
type histView struct{ samples []time.Duration }

func newHistView(samples []time.Duration) *histView {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return &histView{samples: samples}
}

func (h *histView) count() int { return len(h.samples) }

func (h *histView) sum() time.Duration {
	var s time.Duration
	for _, d := range h.samples {
		s += d
	}
	return s
}

func (h *histView) quantile(q float64) time.Duration {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	idx := int(float64(n)*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}
