package server

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"kvcsd/internal/array"
	"kvcsd/internal/client"
	"kvcsd/internal/compaction"
	"kvcsd/internal/core"
	"kvcsd/internal/device"
	"kvcsd/internal/host"
	"kvcsd/internal/keyenc"
	"kvcsd/internal/nvme"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
	"kvcsd/internal/wire"
)

// Backend executes decoded wire requests against some storage target inside
// the simulation. Every method that takes a *sim.Proc is invoked only from
// sim procs spawned by the server's gateway, so implementations may rely on
// the simulator's cooperative scheduling (one proc runs at a time) for
// anything they do not explicitly guard.
type Backend interface {
	// Apply executes one request and returns its response (ID/Op are filled
	// in by the caller). It must not return nil.
	Apply(p *sim.Proc, req *wire.Request) *wire.Response
	// BulkApply stages a coalesced batch of puts/deletes into one keyspace
	// and flushes it as a single device submission.
	BulkApply(p *sim.Proc, keyspace string, pairs []nvme.KVPair) *wire.Response
	// BackgroundJobs reports running background work (compactions, index
	// builds) so the gateway can keep virtual time advancing while the
	// socket side is idle.
	BackgroundJobs() int
	// WaitIdle parks until background work has drained (called on shutdown).
	WaitIdle(p *sim.Proc) error
	// Shutdown finalizes metrics gauges after the sim has drained.
	Shutdown()
	// Tracer exposes the backend's span collector (may be nil).
	Tracer() *obs.Tracer
	// Registry exposes the backend's metrics registry (may be nil).
	Registry() *obs.Registry
}

// statusFromErr maps a backend error to a wire status plus optional detail.
// Device statuses travel numerically; router conditions map onto the nearest
// device or transport status so remote clients can reuse the client
// library's retry rules unchanged.
func statusFromErr(err error) (wire.Status, string) {
	if err == nil {
		return wire.StatusOK, ""
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		return wire.FromNVMe(se.Status), ""
	}
	switch {
	case errors.Is(err, client.ErrNotFound):
		return wire.StatusNotFound, ""
	case errors.Is(err, array.ErrKeyspaceUnknown):
		return wire.StatusNotFound, err.Error()
	case errors.Is(err, array.ErrKeyspaceExists):
		return wire.StatusExists, err.Error()
	case errors.Is(err, array.ErrNoReplicas):
		return wire.StatusUnavailable, err.Error()
	}
	return wire.StatusInternal, err.Error()
}

func respErr(err error) *wire.Response {
	st, msg := statusFromErr(err)
	return &wire.Response{Status: st, Err: msg}
}

func respOK() *wire.Response { return &wire.Response{Status: wire.StatusOK} }

func clientSpec(s wire.IndexSpec) client.IndexSpec {
	return client.IndexSpec{
		Name:   s.Name,
		Offset: int(s.Offset),
		Length: int(s.Length),
		Type:   keyenc.SecondaryType(s.Type),
	}
}

func clientSpecs(specs []wire.IndexSpec) []client.IndexSpec {
	out := make([]client.IndexSpec, len(specs))
	for i, s := range specs {
		out[i] = clientSpec(s)
	}
	return out
}

// extentAddr converts the wire extent body to the NVMe command form.
func extentAddr(e *wire.ExtentAddr) (nvme.ExtentAddr, bool) {
	if e == nil {
		return nvme.ExtentAddr{}, false
	}
	return nvme.ExtentAddr{Kind: e.Kind, Index: e.Index, Granule: e.Granule, Bits: int(e.Bits)}, true
}

// scrubResponse renders a scrub report as both the human-readable Report
// line and the self-checking binary form (Value) remote tooling decodes.
func scrubResponse(rep *core.ScrubReport) *wire.Response {
	return &wire.Response{
		Status: wire.StatusOK,
		Report: rep.String(),
		Value:  core.EncodeScrubReport(rep),
	}
}

// --- Single-device backend -------------------------------------------------

// deviceBackend fronts one simulated device through the client library.
type deviceBackend struct {
	env *sim.Env
	h   *host.Host
	dev *device.Device
	cl  *client.Client
	st  *stats.IOStats

	ks    map[string]*client.Keyspace
	locks map[string]*sim.Resource
}

func newDeviceBackend(env *sim.Env, opts device.Options) *deviceBackend {
	st := stats.NewIOStats()
	h := host.New(env, host.DefaultHostConfig())
	dev := device.New(env, opts, st)
	return &deviceBackend{
		env:   env,
		h:     h,
		dev:   dev,
		cl:    client.New(h, dev),
		st:    st,
		ks:    make(map[string]*client.Keyspace),
		locks: make(map[string]*sim.Resource),
	}
}

func (b *deviceBackend) handle(p *sim.Proc, name string) (*client.Keyspace, error) {
	if ks, ok := b.ks[name]; ok {
		return ks, nil
	}
	ks, err := b.cl.OpenKeyspace(p, name)
	if err != nil {
		return nil, err
	}
	b.ks[name] = ks
	return ks, nil
}

// lock serializes bulk staging per keyspace: the client library stages bulk
// pairs on the shared handle and flushes them as one message, which must not
// interleave across concurrently running RPC handlers.
func (b *deviceBackend) lock(name string) *sim.Resource {
	r, ok := b.locks[name]
	if !ok {
		r = sim.NewResource(b.env, "bulk:"+name, 1)
		b.locks[name] = r
	}
	return r
}

func (b *deviceBackend) Apply(p *sim.Proc, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return respOK()

	case wire.OpCreateKeyspace:
		ks, err := b.cl.CreateKeyspace(p, req.Keyspace)
		if err != nil {
			return respErr(err)
		}
		b.ks[req.Keyspace] = ks
		return respOK()

	case wire.OpOpenKeyspace:
		_, err := b.handle(p, req.Keyspace)
		return respErr(err)

	case wire.OpDeleteKeyspace:
		delete(b.ks, req.Keyspace)
		delete(b.locks, req.Keyspace)
		return respErr(b.cl.DeleteKeyspace(p, req.Keyspace))

	case wire.OpStats:
		return b.statsReport()

	case wire.OpPowerCut:
		rep := b.dev.PowerCut(p)
		return &wire.Response{Status: wire.StatusOK, Report: fmt.Sprintf("%+v", rep)}

	case wire.OpRecover:
		rep, err := b.dev.Restart(p)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Report: fmt.Sprintf("%+v", rep)}

	case wire.OpScrub:
		rep, err := b.cl.ScrubMedia(p)
		if err != nil {
			return respErr(err)
		}
		return scrubResponse(rep)

	case wire.OpCompactPolicy:
		return compactPolicy(p, b.cl, req.Value)

	case wire.OpMigrateCold:
		moved, err := b.cl.MigrateCold(p)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Moved: moved}

	case wire.OpCorrupt:
		addr, ok := extentAddr(req.Extent)
		if !ok {
			return &wire.Response{Status: wire.StatusInvalid, Err: "corrupt: missing extent address"}
		}
		flips, err := b.cl.CorruptMedia(p, req.Keyspace, addr)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK,
			Report: fmt.Sprintf("flipped %d bits in %s granule %d", flips, req.Keyspace, addr.Granule)}
	}

	ks, err := b.handle(p, req.Keyspace)
	if err != nil {
		return respErr(err)
	}

	switch req.Op {
	case wire.OpPut:
		return respErr(ks.Put(p, req.Key, req.Value))
	case wire.OpDelete:
		return respErr(ks.Delete(p, req.Key))
	case wire.OpBulkPut:
		return b.BulkApply(p, req.Keyspace, req.Pairs)
	case wire.OpSync:
		return respErr(ks.Sync(p))
	case wire.OpGet:
		v, ok, err := ks.Get(p, req.Key)
		if err != nil {
			return respErr(err)
		}
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK, Value: v, Exists: true}
	case wire.OpExist:
		ok, err := ks.Exist(p, req.Key)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Exists: ok}
	case wire.OpScan:
		pairs, err := ks.Scan(p, req.Low, req.High, int(req.Limit))
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Pairs: pairs}
	case wire.OpSecondaryRange:
		pairs, err := ks.QuerySecondaryRange(p, req.Index.Name, req.Low, req.High, int(req.Limit))
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Pairs: pairs}
	case wire.OpSecondaryPoint:
		pairs, err := ks.QuerySecondaryPoint(p, req.Index.Name, req.Key, int(req.Limit))
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Pairs: pairs}
	case wire.OpCompact:
		return respErr(ks.Compact(p))
	case wire.OpCompactWithIndexes:
		return respErr(ks.CompactWithIndexes(p, clientSpecs(req.Indexes)))
	case wire.OpCompactStatus:
		pr, done, err := ks.CompactionProgress(p)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Done: done, Progress: &pr}
	case wire.OpBuildIndex:
		return respErr(ks.BuildSecondaryIndex(p, clientSpec(req.Index)))
	case wire.OpIndexStatus:
		done, err := ks.IndexBuilt(p, req.Index.Name)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Done: done}
	case wire.OpKeyspaceInfo:
		info, err := ks.Info(p)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, HasInfo: true, Info: info}
	}
	return &wire.Response{Status: wire.StatusBadRequest, Err: "unhandled opcode " + req.Op.String()}
}

// compactPolicy serves OpCompactPolicy against one device client: a non-empty
// body installs the config, and either way the response echoes the device's
// active config.
func compactPolicy(p *sim.Proc, cl *client.Client, body []byte) *wire.Response {
	var cfg compaction.Config
	var err error
	if len(body) > 0 {
		want, derr := compaction.DecodeConfig(body)
		if derr != nil {
			return &wire.Response{Status: wire.StatusBadRequest, Err: derr.Error()}
		}
		cfg, err = cl.SetCompactionConfig(p, want)
	} else {
		cfg, err = cl.CompactionConfig(p)
	}
	if err != nil {
		return respErr(err)
	}
	return &wire.Response{Status: wire.StatusOK, Value: compaction.EncodeConfig(cfg)}
}

func (b *deviceBackend) BulkApply(p *sim.Proc, keyspace string, pairs []nvme.KVPair) *wire.Response {
	ks, err := b.handle(p, keyspace)
	if err != nil {
		return respErr(err)
	}
	lk := b.lock(keyspace)
	p.Acquire(lk)
	defer p.Release(lk)
	for _, kv := range pairs {
		if kv.Tombstone {
			err = ks.BulkDelete(p, kv.Key)
		} else {
			err = ks.BulkPut(p, kv.Key, kv.Value)
		}
		if err != nil {
			return respErr(err)
		}
	}
	return respErr(ks.Flush(p))
}

func (b *deviceBackend) statsReport() *wire.Response {
	rep := &wire.StatsReport{
		Devices:      1,
		Commands:     b.st.Commands.Value(),
		MediaRead:    b.st.MediaRead.Value(),
		MediaWrite:   b.st.MediaWrite.Value(),
		HostToDevice: b.st.HostToDevice.Value(),
		DeviceToHost: b.st.DeviceToHost.Value(),
		AppWrite:     b.st.AppWrite.Value(),
		VirtualNanos: int64(b.env.Now()),
		Health:       []wire.DeviceHealth{{ID: 0, Down: b.dev.PoweredOff()}},
	}
	if !b.dev.PoweredOff() {
		for _, pr := range b.dev.Engine().Progresses() {
			rep.Compactions = append(rep.Compactions,
				wire.CompactionProgress{Keyspace: pr.Keyspace, Progress: pr.Progress})
		}
	}
	return &wire.Response{Status: wire.StatusOK, Stats: rep}
}

func (b *deviceBackend) BackgroundJobs() int { return b.dev.Engine().BackgroundJobs() }

func (b *deviceBackend) WaitIdle(p *sim.Proc) error { return b.dev.WaitBackgroundIdle(p) }

func (b *deviceBackend) Shutdown() { b.dev.Shutdown() }

func (b *deviceBackend) Tracer() *obs.Tracer { return b.dev.Tracer() }

func (b *deviceBackend) Registry() *obs.Registry { return b.dev.Registry() }

// --- Array backend ---------------------------------------------------------

// arrayBackend fronts a sharded, replicated device array. With replicated
// set, keyspaces are created consensus-backed: writes commit at quorum
// through per-shard leaders and reads go through the leader's read-index
// (see array.CreateReplicated).
type arrayBackend struct {
	env        *sim.Env
	arr        *array.Array
	locks      map[string]*sim.Resource
	replicated bool
}

func newArrayBackend(env *sim.Env, opts array.Options, replicated bool) *arrayBackend {
	return &arrayBackend{
		env:        env,
		arr:        array.New(env, opts),
		locks:      make(map[string]*sim.Resource),
		replicated: replicated,
	}
}

func (b *arrayBackend) lock(name string) *sim.Resource {
	r, ok := b.locks[name]
	if !ok {
		r = sim.NewResource(b.env, "bulk:"+name, 1)
		b.locks[name] = r
	}
	return r
}

func (b *arrayBackend) Apply(p *sim.Proc, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return respOK()

	case wire.OpCreateKeyspace:
		var err error
		switch {
		case b.replicated:
			_, err = b.arr.CreateReplicated(p, req.Keyspace, int(req.Parts))
		case req.Parts > 1:
			_, err = b.arr.CreateRangeSharded(p, req.Keyspace, int(req.Parts))
		default:
			_, err = b.arr.CreateKeyspace(p, req.Keyspace)
		}
		return respErr(err)

	case wire.OpOpenKeyspace:
		if _, err := b.arr.OpenReplicated(req.Keyspace); err == nil {
			return respOK()
		}
		_, err := b.arr.OpenKeyspace(req.Keyspace)
		return respErr(err)

	case wire.OpDeleteKeyspace:
		delete(b.locks, req.Keyspace)
		return respErr(b.arr.DeleteKeyspace(p, req.Keyspace))

	case wire.OpStats:
		return b.statsReport()

	case wire.OpPowerCut:
		id := int(req.Device)
		if id < 0 || id >= len(b.arr.Members()) {
			return &wire.Response{Status: wire.StatusInvalid, Err: fmt.Sprintf("device %d out of range", id)}
		}
		rep := b.arr.PowerCut(p, id)
		return &wire.Response{Status: wire.StatusOK, Report: fmt.Sprintf("%+v", rep)}

	case wire.OpRecover:
		id := int(req.Device)
		if id < 0 || id >= len(b.arr.Members()) {
			return &wire.Response{Status: wire.StatusInvalid, Err: fmt.Sprintf("device %d out of range", id)}
		}
		rep, err := b.arr.RestartDevice(p, id)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Report: fmt.Sprintf("%+v", rep)}

	case wire.OpScrub:
		id := int(req.Device)
		if id < 0 || id >= len(b.arr.Members()) {
			return &wire.Response{Status: wire.StatusInvalid, Err: fmt.Sprintf("device %d out of range", id)}
		}
		// An array scrub repairs what it finds from healthy replica copies.
		rep, err := b.arr.RepairDevice(p, id)
		if err != nil {
			return respErr(err)
		}
		return scrubResponse(rep)

	case wire.OpCorrupt:
		id := int(req.Device)
		if id < 0 || id >= len(b.arr.Members()) {
			return &wire.Response{Status: wire.StatusInvalid, Err: fmt.Sprintf("device %d out of range", id)}
		}
		addr, ok := extentAddr(req.Extent)
		if !ok {
			return &wire.Response{Status: wire.StatusInvalid, Err: "corrupt: missing extent address"}
		}
		flips, err := b.arr.CorruptExtent(p, id, req.Keyspace, addr)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK,
			Report: fmt.Sprintf("flipped %d bits in %s granule %d on device %d", flips, req.Keyspace, addr.Granule, id)}

	case wire.OpCompactPolicy:
		// Fan the config out to every healthy member; the echo is the last
		// member's active config (members share one template, so they agree).
		var last *wire.Response
		for _, m := range b.arr.Members() {
			if !m.Healthy() {
				continue
			}
			last = compactPolicy(p, m.Client, req.Value)
			if last.Status != wire.StatusOK {
				return last
			}
		}
		if last == nil {
			return &wire.Response{Status: wire.StatusUnavailable, Err: "compact-policy: no healthy device"}
		}
		return last

	case wire.OpMigrateCold:
		id := int(req.Device)
		if id < 0 || id >= len(b.arr.Members()) {
			return &wire.Response{Status: wire.StatusInvalid, Err: fmt.Sprintf("device %d out of range", id)}
		}
		moved, err := b.arr.Member(id).Client.MigrateCold(p)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Moved: moved}
	}

	if rk, err := b.arr.OpenReplicated(req.Keyspace); err == nil {
		return b.applyReplicated(p, rk, req)
	}

	ks, err := b.arr.OpenKeyspace(req.Keyspace)
	if err != nil {
		return respErr(err)
	}

	switch req.Op {
	case wire.OpPut:
		return respErr(ks.Put(p, req.Key, req.Value))
	case wire.OpDelete:
		return respErr(ks.Delete(p, req.Key))
	case wire.OpBulkPut:
		return b.BulkApply(p, req.Keyspace, req.Pairs)
	case wire.OpSync:
		return respErr(ks.Sync(p))
	case wire.OpGet:
		v, ok, err := ks.Get(p, req.Key)
		if err != nil {
			return respErr(err)
		}
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK, Value: v, Exists: true}
	case wire.OpExist:
		ok, err := ks.Exist(p, req.Key)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Exists: ok}
	case wire.OpScan:
		pairs, err := ks.Scan(p, req.Low, req.High, int(req.Limit))
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Pairs: pairs}
	case wire.OpSecondaryRange:
		pairs, err := ks.QuerySecondaryRange(p, req.Index.Name, req.Low, req.High, int(req.Limit))
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Pairs: pairs}
	case wire.OpSecondaryPoint:
		pairs, err := ks.QuerySecondaryPoint(p, req.Index.Name, req.Key, int(req.Limit))
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Pairs: pairs}
	case wire.OpCompact:
		return respErr(ks.Compact(p))
	case wire.OpCompactWithIndexes:
		return respErr(ks.CompactWithIndexes(p, clientSpecs(req.Indexes)))
	case wire.OpCompactStatus:
		done, err := ks.CompactDone(p)
		if err != nil {
			return respErr(err)
		}
		pr := compaction.Progress{}
		for _, row := range b.aggregateCompactions() {
			if row.Keyspace == req.Keyspace {
				pr = row.Progress
				break
			}
		}
		return &wire.Response{Status: wire.StatusOK, Done: done, Progress: &pr}
	case wire.OpBuildIndex:
		return respErr(ks.BuildSecondaryIndex(p, clientSpec(req.Index)))
	case wire.OpIndexStatus:
		done, err := ks.IndexBuilt(p, req.Index.Name)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Done: done}
	case wire.OpKeyspaceInfo:
		info, err := ks.Info(p)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, HasInfo: true, Info: info}
	}
	return &wire.Response{Status: wire.StatusBadRequest, Err: "unhandled opcode " + req.Op.String()}
}

// aggregateCompactions folds the fleet's per-shard compaction progress into
// one row per logical keyspace (shards are named "<keyspace>#pN" on their
// devices): counters sum across shards and replicas, and the stage shown is
// the furthest-behind shard's — any active stage outranks idle, and among
// active stages the earliest pipeline stage wins.
func (b *arrayBackend) aggregateCompactions() []wire.CompactionProgress {
	byKs := make(map[string]*compaction.Progress)
	var names []string
	for _, m := range b.arr.Members() {
		if m.Dev.PoweredOff() {
			continue
		}
		for _, row := range m.Dev.Engine().Progresses() {
			name, _, _ := strings.Cut(row.Keyspace, "#")
			agg, ok := byKs[name]
			if !ok {
				cp := row.Progress
				byKs[name] = &cp
				names = append(names, name)
				continue
			}
			agg.GranulesDone += row.Progress.GranulesDone
			agg.GranulesTotal += row.Progress.GranulesTotal
			agg.BytesMoved += row.Progress.BytesMoved
			agg.HostRuns += row.Progress.HostRuns
			agg.DeviceRuns += row.Progress.DeviceRuns
			agg.Occupancy += row.Progress.Occupancy
			if stageBehind(row.Progress.Stage, agg.Stage) {
				agg.Stage = row.Progress.Stage
			}
		}
	}
	sort.Strings(names)
	out := make([]wire.CompactionProgress, 0, len(names))
	for _, name := range names {
		out = append(out, wire.CompactionProgress{Keyspace: name, Progress: *byKs[name]})
	}
	return out
}

// stageBehind reports whether stage a is further behind than b.
func stageBehind(a, b compaction.Stage) bool {
	if a == compaction.StageIdle {
		return false
	}
	if b == compaction.StageIdle {
		return true
	}
	return a < b
}

// applyReplicated serves the consensus-backed keyspace operation set. Ops
// outside it (scans, secondary indexes, compaction) are not replicated yet
// and are refused rather than silently served stale.
func (b *arrayBackend) applyReplicated(p *sim.Proc, rk *array.ReplicatedKeyspace, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPut:
		return respErr(rk.Put(p, req.Key, req.Value))
	case wire.OpDelete:
		return respErr(rk.Delete(p, req.Key))
	case wire.OpBulkPut:
		return b.BulkApply(p, req.Keyspace, req.Pairs)
	case wire.OpSync:
		return respOK() // every committed write is already at quorum
	case wire.OpGet:
		v, ok, err := rk.Get(p, req.Key)
		if err != nil {
			return respErr(err)
		}
		if !ok {
			return &wire.Response{Status: wire.StatusNotFound}
		}
		return &wire.Response{Status: wire.StatusOK, Value: v, Exists: true}
	case wire.OpExist:
		_, ok, err := rk.Get(p, req.Key)
		if err != nil {
			return respErr(err)
		}
		return &wire.Response{Status: wire.StatusOK, Exists: ok}
	}
	return &wire.Response{Status: wire.StatusBadRequest,
		Err: req.Op.String() + " not supported on replicated keyspace " + rk.Name()}
}

func (b *arrayBackend) BulkApply(p *sim.Proc, keyspace string, pairs []nvme.KVPair) *wire.Response {
	if rk, err := b.arr.OpenReplicated(keyspace); err == nil {
		for _, kv := range pairs {
			var err error
			if kv.Tombstone {
				err = rk.Delete(p, kv.Key)
			} else {
				err = rk.Put(p, kv.Key, kv.Value)
			}
			if err != nil {
				return respErr(err)
			}
		}
		return respOK()
	}
	ks, err := b.arr.OpenKeyspace(keyspace)
	if err != nil {
		return respErr(err)
	}
	lk := b.lock(keyspace)
	p.Acquire(lk)
	defer p.Release(lk)
	for _, kv := range pairs {
		if kv.Tombstone {
			err = ks.BulkDelete(p, kv.Key)
		} else {
			err = ks.BulkPut(p, kv.Key, kv.Value)
		}
		if err != nil {
			return respErr(err)
		}
	}
	return respErr(ks.Flush(p))
}

func (b *arrayBackend) statsReport() *wire.Response {
	st := b.arr.Stats()
	health := b.arr.Health()
	wh := make([]wire.DeviceHealth, len(health))
	for i, h := range health {
		wh[i] = wire.DeviceHealth{ID: uint32(h.ID), Down: h.Down, Failures: uint32(h.Failures)}
	}
	rep := &wire.StatsReport{
		Devices:      uint32(len(b.arr.Members())),
		Commands:     st.Commands.Value(),
		MediaRead:    st.MediaRead.Value(),
		MediaWrite:   st.MediaWrite.Value(),
		HostToDevice: st.HostToDevice.Value(),
		DeviceToHost: st.DeviceToHost.Value(),
		AppWrite:     st.AppWrite.Value(),
		VirtualNanos: int64(b.env.Now()),
		Health:       wh,
		Ring:         b.arr.RingTable(),
		Compactions:  b.aggregateCompactions(),
	}
	return &wire.Response{Status: wire.StatusOK, Stats: rep}
}

func (b *arrayBackend) BackgroundJobs() int {
	n := 0
	for _, m := range b.arr.Members() {
		n += m.Dev.Engine().BackgroundJobs()
	}
	return n
}

func (b *arrayBackend) WaitIdle(p *sim.Proc) error { return b.arr.WaitBackgroundIdle(p) }

func (b *arrayBackend) Shutdown() { b.arr.Shutdown() }

func (b *arrayBackend) Tracer() *obs.Tracer { return b.arr.Tracer() }

func (b *arrayBackend) Registry() *obs.Registry { return b.arr.Registry() }
