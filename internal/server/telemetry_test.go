package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"kvcsd/internal/device"
	"kvcsd/internal/obs"
	"kvcsd/internal/remote"
)

// startTracedServer runs a device server with tracing and metrics on, a tiny
// slow-op budget, and a traced remote client that performs a put and a get.
func startTracedServer(t *testing.T, slowLog *bytes.Buffer) (*Server, *obs.WallTracer) {
	t.Helper()
	opts := device.DefaultOptions()
	opts.Seed = 11
	opts.Trace = true
	opts.Metrics = true
	cfg := DefaultConfig()
	cfg.SlowOpThreshold = 1 * time.Nanosecond // flag everything
	cfg.SlowOpLog = slowLog
	srv := NewDevice(opts, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	wt := obs.NewWallTracer(11)
	ropts := remote.DefaultOptions()
	ropts.Tracer = wt
	rc, err := remote.Dial(addr.String(), ropts)
	if err != nil {
		srv.Close()
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	ks, err := rc.CreateKeyspace("tele")
	if err != nil {
		t.Fatalf("create keyspace: %v", err)
	}
	if err := ks.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := ks.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := ks.WaitCompacted(); err != nil {
		t.Fatalf("wait compacted: %v", err)
	}
	if _, _, err := ks.Get([]byte("k1")); err != nil {
		t.Fatalf("get: %v", err)
	}
	return srv, wt
}

// TestRemoteTraceAncestry is the tentpole acceptance test: a remote put/get
// must yield server-side rpc spans whose remote parent is the client's wall
// span, with the device command spans as their descendants, all sharing the
// propagated trace id — one causally-linked timeline across the two clocks.
func TestRemoteTraceAncestry(t *testing.T) {
	var slowLog bytes.Buffer
	srv, wt := startTracedServer(t, &slowLog)
	tr := srv.Backend().Tracer()
	srv.Close() // sim finished: safe to walk the tracer

	clientByID := make(map[uint64]*obs.WallSpan)
	clientByTrace := make(map[uint64]*obs.WallSpan)
	for _, ws := range wt.Finished() {
		clientByID[ws.ID()] = ws
		clientByTrace[ws.TraceID()] = ws
	}
	if len(clientByID) < 3 { // create + put + get
		t.Fatalf("client wall spans = %d, want >= 3", len(clientByID))
	}

	linked := 0
	cmdUnderRPC := 0
	for _, s := range tr.Finished() {
		if !s.IsRoot() {
			continue
		}
		if strings.HasPrefix(s.Name(), "rpc:") && s.RemoteParent() != 0 {
			c, ok := clientByID[s.RemoteParent()]
			if !ok {
				t.Errorf("rpc span %s has unknown remote parent %d", s.Name(), s.RemoteParent())
				continue
			}
			if c.TraceID() != s.TraceID() {
				t.Errorf("rpc span %s trace id %#x != client span trace id %#x",
					s.Name(), s.TraceID(), c.TraceID())
			}
			if want := "remote:" + strings.TrimPrefix(s.Name(), "rpc:"); c.Name() != want {
				t.Errorf("rpc span %s linked to client span %s, want %s", s.Name(), c.Name(), want)
			}
			linked++
		}
		// Device command spans must sit under an rpc span and inherit its
		// propagated trace id.
		if strings.HasPrefix(s.Name(), "cmd:") {
			p := s.Parent()
			for p != nil && !strings.HasPrefix(p.Name(), "rpc:") {
				p = p.Parent()
			}
			if p == nil {
				t.Errorf("device span %s has no rpc ancestor", s.Name())
				continue
			}
			if s.TraceID() == 0 || s.TraceID() != p.TraceID() {
				t.Errorf("device span %s trace id %#x != rpc ancestor trace id %#x",
					s.Name(), s.TraceID(), p.TraceID())
			}
			if _, ok := clientByTrace[s.TraceID()]; !ok {
				t.Errorf("device span %s trace id %#x unknown to the client tracer", s.Name(), s.TraceID())
			}
			cmdUnderRPC++
		}
	}
	if linked == 0 {
		t.Error("no rpc span linked to a client wall span")
	}
	if cmdUnderRPC == 0 {
		t.Error("no device command span found under an rpc span")
	}

	// The merged export must render both processes and at least one flow
	// arrow per linked rpc.
	var merged bytes.Buffer
	if err := obs.WriteMergedChromeTrace(&merged, wt, tr); err != nil {
		t.Fatalf("merged export: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	flows := 0
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		if ev.Ph == "s" {
			flows++
		}
	}
	if flows < linked {
		t.Errorf("merged trace flow starts = %d, want >= %d", flows, linked)
	}
	if !pids[1] || !pids[2] {
		t.Errorf("merged trace missing a process: %v", pids)
	}
}

// promLine matches one Prometheus text-exposition sample.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? ([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|NaN|[-+]?Inf)$`)

func TestTelemetryEndpoints(t *testing.T) {
	var slowLog bytes.Buffer
	srv, _ := startTracedServer(t, &slowLog)
	defer srv.Close()
	h := srv.TelemetryHandler()

	// /metrics must be valid Prometheus text exposition.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	body := rec.Body.String()
	sc := bufio.NewScanner(strings.NewReader(body))
	samples := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples in /metrics output")
	}
	for _, want := range []string{
		`kvcsd_rpc_requests_total{op="Put"}`,
		`kvcsd_rpc_requests_total{op="Get"}`,
		`kvcsd_rpc_service_virtual_seconds{op="Put",quantile="0.99"}`,
		"kvcsd_rpc_accepted_total",
		"kvcsd_rpc_slow_ops_total",
		"kvcsd_sim_gauge{",
		"kvcsd_io_total{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /healthz reports liveness.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if health.Status != "ok" || health.Draining {
		t.Errorf("/healthz = %+v", health)
	}

	// /slowops carries the over-budget ops (threshold 1ns flags everything).
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slowops", nil))
	var slow struct {
		ThresholdNs int64    `json:"threshold_ns"`
		SlowOps     []SlowOp `json:"slow_ops"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slow); err != nil {
		t.Fatalf("/slowops not JSON: %v", err)
	}
	if len(slow.SlowOps) == 0 {
		t.Fatal("no slow ops recorded despite 1ns threshold")
	}
	found := false
	for _, op := range slow.SlowOps {
		if op.Op == "Put" {
			found = true
			if op.VirtualNs <= 0 {
				t.Errorf("slow op virtual_ns = %d", op.VirtualNs)
			}
			if len(op.Stages) == 0 {
				t.Error("slow Put carries no stage breakdown")
			}
		}
	}
	if !found {
		t.Error("Put not flagged as slow")
	}

	// pprof index answers.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/ status=%d", rec.Code)
	}

	// The structured slow-op log is JSON lines with stage breakdowns.
	lines := 0
	lsc := bufio.NewScanner(bytes.NewReader(slowLog.Bytes()))
	for lsc.Scan() {
		var rec SlowOp
		if err := json.Unmarshal(lsc.Bytes(), &rec); err != nil {
			t.Fatalf("slow-op log line %d not JSON: %v", lines+1, err)
		}
		if rec.ThresholdNs != 1 {
			t.Errorf("slow-op threshold_ns = %d, want 1", rec.ThresholdNs)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("slow-op log empty")
	}
}

// TestRemoteStatsCarriesRPCReport verifies the satellite: a remote Stats call
// returns the gateway's RPC counters alongside engine stats.
func TestRemoteStatsCarriesRPCReport(t *testing.T) {
	var slowLog bytes.Buffer
	srv, _ := startTracedServer(t, &slowLog)
	defer srv.Close()

	rc, err := remote.Dial(srv.Addr().String(), remote.DefaultOptions())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()
	rep, err := rc.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if rep.RPC == nil {
		t.Fatal("stats report has no RPC section")
	}
	if rep.RPC.Accepted == 0 || len(rep.RPC.Ops) == 0 {
		t.Fatalf("rpc report empty: %+v", rep.RPC)
	}
	var put *struct{ count, errs int64 }
	for _, o := range rep.RPC.Ops {
		if o.Op.String() == "Put" {
			put = &struct{ count, errs int64 }{o.Count, o.Errs}
		}
	}
	if put == nil || put.count == 0 {
		t.Fatalf("rpc report missing Put counts: %+v", rep.RPC.Ops)
	}
	if rep.RPC.SlowOps == 0 {
		t.Error("rpc report slow_ops = 0 despite 1ns threshold")
	}
}
