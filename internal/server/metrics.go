package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"kvcsd/internal/wire"
)

// rpcStats accumulates per-opcode stage totals. Decode/queue/write stages are
// measured in real (wall-clock) time because they happen on socket
// goroutines; the service stage is measured in both real time and virtual
// device time, which is the figure comparable to the in-process benchmarks.
type rpcStats struct {
	Count   int64
	Errs    int64
	Decode  time.Duration // frame read + payload decode, real time
	Queue   time.Duration // admission to handler start, real time
	Service time.Duration // backend execution, real time
	Virtual time.Duration // backend execution, virtual device time
	Write   time.Duration // response encode + socket write, real time
}

// metrics is the server-wide RPC counter block. It is written from socket
// goroutines and sim handler procs concurrently, so unlike the sim-internal
// stats.Histogram it guards itself with a mutex.
type metrics struct {
	mu        sync.Mutex
	perOp     map[wire.Op]*rpcStats
	accepted  int64
	shed      int64
	refused   int64 // draining refusals
	badFrames int64
	coalesced int64 // puts absorbed into coalesced bulk submissions
	batches   int64 // coalesced bulk submissions issued
}

func newMetrics() *metrics {
	return &metrics{perOp: make(map[wire.Op]*rpcStats)}
}

func (m *metrics) op(op wire.Op) *rpcStats {
	s, ok := m.perOp[op]
	if !ok {
		s = &rpcStats{}
		m.perOp[op] = s
	}
	return s
}

func (m *metrics) observeDecode(op wire.Op, d time.Duration) {
	m.mu.Lock()
	m.op(op).Decode += d
	m.mu.Unlock()
}

func (m *metrics) observeService(op wire.Op, queue, service, virtual time.Duration, st wire.Status) {
	m.mu.Lock()
	s := m.op(op)
	s.Count++
	if st != wire.StatusOK {
		s.Errs++
	}
	s.Queue += queue
	s.Service += service
	s.Virtual += virtual
	m.mu.Unlock()
}

func (m *metrics) observeWrite(op wire.Op, d time.Duration) {
	m.mu.Lock()
	m.op(op).Write += d
	m.mu.Unlock()
}

func (m *metrics) addAccepted() { m.mu.Lock(); m.accepted++; m.mu.Unlock() }
func (m *metrics) addShed()     { m.mu.Lock(); m.shed++; m.mu.Unlock() }
func (m *metrics) addRefused()  { m.mu.Lock(); m.refused++; m.mu.Unlock() }
func (m *metrics) addBadFrame() { m.mu.Lock(); m.badFrames++; m.mu.Unlock() }

func (m *metrics) addCoalesced(puts int) {
	m.mu.Lock()
	m.coalesced += int64(puts)
	m.batches++
	m.mu.Unlock()
}

// MetricsSnapshot is a copy of the server's RPC counters at one instant.
type MetricsSnapshot struct {
	PerOp     map[wire.Op]rpcStats
	Accepted  int64
	Shed      int64
	Refused   int64
	BadFrames int64
	Coalesced int64
	Batches   int64
}

func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	sn := MetricsSnapshot{
		PerOp:     make(map[wire.Op]rpcStats, len(m.perOp)),
		Accepted:  m.accepted,
		Shed:      m.shed,
		Refused:   m.refused,
		BadFrames: m.badFrames,
		Coalesced: m.coalesced,
		Batches:   m.batches,
	}
	for op, s := range m.perOp {
		sn.PerOp[op] = *s
	}
	return sn
}

// Dump renders the snapshot as a per-opcode stage table plus totals.
func (sn MetricsSnapshot) Dump(w io.Writer) {
	ops := make([]wire.Op, 0, len(sn.PerOp))
	for op := range sn.PerOp {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	fmt.Fprintf(w, "%-20s %8s %6s %12s %12s %12s %12s %12s\n",
		"op", "count", "errs", "decode", "queue", "service", "virtual", "write")
	for _, op := range ops {
		s := sn.PerOp[op]
		fmt.Fprintf(w, "%-20s %8d %6d %12v %12v %12v %12v %12v\n",
			op, s.Count, s.Errs, s.Decode, s.Queue, s.Service, s.Virtual, s.Write)
	}
	fmt.Fprintf(w, "accepted=%d shed=%d refused=%d bad_frames=%d coalesced_puts=%d coalesced_batches=%d\n",
		sn.Accepted, sn.Shed, sn.Refused, sn.BadFrames, sn.Coalesced, sn.Batches)
}
