package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"kvcsd/internal/stats"
	"kvcsd/internal/wire"
)

// rpcStats accumulates per-opcode stage totals. Decode/queue/write stages are
// measured in real (wall-clock) time because they happen on socket
// goroutines; the service stage is measured in both real time and virtual
// device time, which is the figure comparable to the in-process benchmarks.
// The two histograms carry the full service-latency distribution on both
// clocks for quantile exposition.
type rpcStats struct {
	Count   int64
	Errs    int64
	Decode  time.Duration // frame read + payload decode, real time
	Queue   time.Duration // admission to handler start, real time
	Service time.Duration // backend execution, real time
	Virtual time.Duration // backend execution, virtual device time
	Write   time.Duration // response encode + socket write, real time

	RealHist *stats.Histogram // service latency distribution, real clock
	VirtHist *stats.Histogram // service latency distribution, virtual clock
}

// SlowOp is one over-budget operation: an op whose virtual service time
// exceeded the configured threshold, captured with its full stage breakdown.
type SlowOp struct {
	Seq         int64            `json:"seq"`
	Op          string           `json:"op"`
	QueueNs     int64            `json:"queue_ns"`
	RealNs      int64            `json:"real_ns"`
	VirtualNs   int64            `json:"virtual_ns"`
	ThresholdNs int64            `json:"threshold_ns"`
	Stages      map[string]int64 `json:"stages_ns,omitempty"`
}

// slowRingCap bounds the in-memory slow-op history served at /slowops.
const slowRingCap = 128

// metrics is the server-wide RPC counter block. It is written from socket
// goroutines and sim handler procs concurrently, so it guards itself with a
// mutex.
type metrics struct {
	mu        sync.Mutex
	perOp     map[wire.Op]*rpcStats
	accepted  int64
	shed      int64
	refused   int64 // draining refusals
	badFrames int64
	coalesced int64 // puts absorbed into coalesced bulk submissions
	batches   int64 // coalesced bulk submissions issued
	slowOps   int64 // ops over the slow-op budget
	slowRing  []SlowOp
}

func newMetrics() *metrics {
	return &metrics{perOp: make(map[wire.Op]*rpcStats)}
}

func (m *metrics) op(op wire.Op) *rpcStats {
	s, ok := m.perOp[op]
	if !ok {
		s = &rpcStats{
			RealHist: stats.NewHistogram(op.String() + "/real"),
			VirtHist: stats.NewHistogram(op.String() + "/virtual"),
		}
		m.perOp[op] = s
	}
	return s
}

func (m *metrics) observeDecode(op wire.Op, d time.Duration) {
	m.mu.Lock()
	m.op(op).Decode += d
	m.mu.Unlock()
}

func (m *metrics) observeService(op wire.Op, queue, service, virtual time.Duration, st wire.Status) {
	m.mu.Lock()
	s := m.op(op)
	s.Count++
	if st != wire.StatusOK {
		s.Errs++
	}
	s.Queue += queue
	s.Service += service
	s.Virtual += virtual
	real, virt := s.RealHist, s.VirtHist
	m.mu.Unlock()
	// Histograms lock themselves; record outside the metrics lock.
	real.Record(service)
	virt.Record(virtual)
}

func (m *metrics) observeWrite(op wire.Op, d time.Duration) {
	m.mu.Lock()
	m.op(op).Write += d
	m.mu.Unlock()
}

func (m *metrics) addAccepted() { m.mu.Lock(); m.accepted++; m.mu.Unlock() }
func (m *metrics) addShed()     { m.mu.Lock(); m.shed++; m.mu.Unlock() }
func (m *metrics) addRefused()  { m.mu.Lock(); m.refused++; m.mu.Unlock() }
func (m *metrics) addBadFrame() { m.mu.Lock(); m.badFrames++; m.mu.Unlock() }

func (m *metrics) addCoalesced(puts int) {
	m.mu.Lock()
	m.coalesced += int64(puts)
	m.batches++
	m.mu.Unlock()
}

// addSlowOp records one over-budget op in the bounded ring and returns it
// stamped with its sequence number.
func (m *metrics) addSlowOp(s SlowOp) SlowOp {
	m.mu.Lock()
	m.slowOps++
	s.Seq = m.slowOps
	if len(m.slowRing) == slowRingCap {
		copy(m.slowRing, m.slowRing[1:])
		m.slowRing = m.slowRing[:slowRingCap-1]
	}
	m.slowRing = append(m.slowRing, s)
	m.mu.Unlock()
	return s
}

// slowOpsSnapshot returns a copy of the slow-op ring, oldest first.
func (m *metrics) slowOpsSnapshot() []SlowOp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]SlowOp(nil), m.slowRing...)
}

// MetricsSnapshot is a copy of the server's RPC counters at one instant. The
// per-op histograms are deep-copied, so the snapshot can be sorted and
// quantiled without racing live recording.
type MetricsSnapshot struct {
	PerOp     map[wire.Op]rpcStats
	Accepted  int64
	Shed      int64
	Refused   int64
	BadFrames int64
	Coalesced int64
	Batches   int64
	SlowOps   int64
}

func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	sn := MetricsSnapshot{
		PerOp:     make(map[wire.Op]rpcStats, len(m.perOp)),
		Accepted:  m.accepted,
		Shed:      m.shed,
		Refused:   m.refused,
		BadFrames: m.badFrames,
		Coalesced: m.coalesced,
		Batches:   m.batches,
		SlowOps:   m.slowOps,
	}
	for op, s := range m.perOp {
		c := *s
		c.RealHist = s.RealHist.Clone()
		c.VirtHist = s.VirtHist.Clone()
		sn.PerOp[op] = c
	}
	return sn
}

// wireReport converts the snapshot to its wire form, so remote stats clients
// receive the gateway's RPC counters alongside engine stats.
func (sn MetricsSnapshot) wireReport() *wire.RPCReport {
	r := &wire.RPCReport{
		Accepted:  sn.Accepted,
		Shed:      sn.Shed,
		Refused:   sn.Refused,
		BadFrames: sn.BadFrames,
		Coalesced: sn.Coalesced,
		Batches:   sn.Batches,
		SlowOps:   sn.SlowOps,
	}
	ops := make([]wire.Op, 0, len(sn.PerOp))
	for op := range sn.PerOp {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		s := sn.PerOp[op]
		r.Ops = append(r.Ops, wire.RPCOpStats{
			Op:        op,
			Count:     s.Count,
			Errs:      s.Errs,
			DecodeNs:  int64(s.Decode),
			QueueNs:   int64(s.Queue),
			ServiceNs: int64(s.Service),
			VirtualNs: int64(s.Virtual),
			WriteNs:   int64(s.Write),
		})
	}
	return r
}

// Dump renders the snapshot as a per-opcode stage table plus totals.
func (sn MetricsSnapshot) Dump(w io.Writer) {
	ops := make([]wire.Op, 0, len(sn.PerOp))
	for op := range sn.PerOp {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	fmt.Fprintf(w, "%-20s %8s %6s %12s %12s %12s %12s %12s\n",
		"op", "count", "errs", "decode", "queue", "service", "virtual", "write")
	for _, op := range ops {
		s := sn.PerOp[op]
		fmt.Fprintf(w, "%-20s %8d %6d %12v %12v %12v %12v %12v\n",
			op, s.Count, s.Errs, s.Decode, s.Queue, s.Service, s.Virtual, s.Write)
	}
	fmt.Fprintf(w, "accepted=%d shed=%d refused=%d bad_frames=%d coalesced_puts=%d coalesced_batches=%d slow_ops=%d\n",
		sn.Accepted, sn.Shed, sn.Refused, sn.BadFrames, sn.Coalesced, sn.Batches, sn.SlowOps)
}
