package server

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// hello performs a raw handshake on nc and returns the session token and
// the reply's replayed count.
func hello(t *testing.T, nc net.Conn, tenant string, resume uint64) (uint64, uint32) {
	t.Helper()
	sendReq(t, nc, &wire.Request{ID: 1, Op: wire.OpHello, Hello: &wire.HelloMsg{Tenant: tenant, Resume: resume}})
	resp := readResp(t, nc)
	if resp.Status != wire.StatusOK || resp.Hello == nil || resp.Hello.Token == 0 {
		t.Fatalf("handshake failed: %+v", resp)
	}
	return resp.Hello.Token, resp.Hello.Replayed
}

// TestCloseDrainsParkedQueue regresses the shutdown path against the fair
// scheduler: requests parked in per-session/per-tenant queues (admitted but
// not yet dispatched to the sim) must be answered by Close, not stranded.
// MaxBatch=1 keeps the gateway busy with one gated request while four more
// park in the scheduler; Close runs concurrently and every request must
// still complete with StatusOK.
func TestCloseDrainsParkedQueue(t *testing.T) {
	b := newGateBackend()
	cfg := DefaultConfig()
	cfg.MaxInflight = 8
	cfg.MaxBatch = 1
	cfg.MaxPipeline = 8
	srv := New(sim.NewEnv(), b, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()

	// Request 1 occupies the gateway (MaxBatch=1, blocked in the backend);
	// requests 2..5 are admitted and parked in the scheduler queue.
	sendReq(t, nc, &wire.Request{ID: 1, Op: wire.OpGet, Keyspace: "ks", Key: []byte("k")})
	waitInflight(t, srv, 1)
	for id := uint64(2); id <= 5; id++ {
		sendReq(t, nc, &wire.Request{ID: id, Op: wire.OpPing})
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.sched.Queued() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 4 parked requests", srv.sched.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	closeDone := make(chan struct{})
	go func() {
		srv.Close()
		close(closeDone)
	}()
	// Give Close time to flip into draining and close intake, then unblock
	// the gateway.
	time.Sleep(20 * time.Millisecond)
	close(b.gate)

	got := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		resp := readResp(t, nc)
		if resp.Status != wire.StatusOK {
			t.Fatalf("response %d: status %v, want OK (parked request stranded by Close?)", resp.ID, resp.Status)
		}
		got[resp.ID] = true
	}
	for id := uint64(1); id <= 5; id++ {
		if !got[id] {
			t.Fatalf("request %d never answered across Close", id)
		}
	}
	select {
	case <-closeDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return")
	}
	if n := srv.Inflight(); n != 0 {
		t.Fatalf("inflight after Close = %d", n)
	}
}

// TestSessionResumeReplaysBacklog kills a sessioned connection while its
// responses are still being produced, resumes the session with the token on
// a fresh connection, and asserts the backlog replays byte-identical frames
// in original order — and that a duplicate request is served from the
// backlog without re-applying.
func TestSessionResumeReplaysBacklog(t *testing.T) {
	b := newGateBackend()
	cfg := DefaultConfig()
	cfg.MaxInflight = 8
	cfg.MaxBatch = 1
	cfg.MaxPipeline = 8
	srv := New(sim.NewEnv(), b, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	nc1, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc1.Close()
	token, replayed := hello(t, nc1, "analytics", 0)
	if replayed != 0 {
		t.Fatalf("fresh session claims %d replayed responses", replayed)
	}

	// Request 10 occupies the gateway (gated); 11 and 12 park behind it.
	sendReq(t, nc1, &wire.Request{ID: 10, Op: wire.OpGet, Session: token, Keyspace: "ks", Key: []byte("k")})
	waitInflight(t, srv, 1)
	sendReq(t, nc1, &wire.Request{ID: 11, Op: wire.OpPing, Session: token})
	sendReq(t, nc1, &wire.Request{ID: 12, Op: wire.OpPing, Session: token})

	// Kick nc1 by resuming the session elsewhere before any response is
	// written: the old connection is marked dead, so all three responses
	// must spill into the session backlog instead of the socket.
	nc2, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	if _, replayed := hello(t, nc2, "analytics", token); replayed != 0 {
		t.Fatalf("resume before completion claims %d replayed responses", replayed)
	}
	nc2.Close()

	close(b.gate)

	sess := srv.SessionManager().Lookup(token)
	if sess == nil {
		t.Fatal("session vanished")
	}
	deadline := time.Now().Add(5 * time.Second)
	for sess.BacklogPending() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("backlog pending = %d, want 3 spilled responses", sess.BacklogPending())
		}
		time.Sleep(time.Millisecond)
	}
	if applies := b.applies.Load(); applies != 3 {
		t.Fatalf("applies = %d before resume, want 3", applies)
	}

	// Resume: the handshake reply must announce 3 replayed responses, and
	// the replay must be byte-identical to the spilled frames, in original
	// completion order (10 first, then 11 and 12 in admission order).
	nc3, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial 3: %v", err)
	}
	defer nc3.Close()
	token2, replayed := hello(t, nc3, "analytics", token)
	if token2 != token {
		t.Fatalf("resume changed the token: %d != %d", token2, token)
	}
	if replayed != 3 {
		t.Fatalf("resume replayed %d responses, want 3", replayed)
	}
	for _, id := range []uint64{10, 11, 12} {
		want, ok := sess.LookupFrame(id)
		if !ok {
			t.Fatalf("backlog lost frame for id %d", id)
		}
		got := make([]byte, len(want))
		if _, err := io.ReadFull(nc3, got); err != nil {
			t.Fatalf("read replay of id %d: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replay of id %d is not byte-identical to the spilled frame", id)
		}
		h, _, err := wire.ReadFrame(bytes.NewReader(got))
		if err != nil || h.ID != id {
			t.Fatalf("replay order broken: frame decodes to id %d err %v, want %d", h.ID, err, id)
		}
	}

	// A duplicate of the applied request is answered from the backlog with
	// the identical bytes — the backend must not apply it a second time.
	sendReq(t, nc3, &wire.Request{ID: 10, Op: wire.OpGet, Session: token, Keyspace: "ks", Key: []byte("k")})
	resp := readResp(t, nc3)
	if resp.ID != 10 || resp.Status != wire.StatusOK {
		t.Fatalf("duplicate re-serve: %+v", resp)
	}
	if applies := b.applies.Load(); applies != 3 {
		t.Fatalf("duplicate request re-applied: applies = %d, want 3", applies)
	}
}

// TestSessionUnknownToken asserts a request carrying a token not opened on
// its connection is refused with StatusSessionUnknown.
func TestSessionUnknownToken(t *testing.T) {
	b := newGateBackend()
	close(b.gate)
	srv := New(sim.NewEnv(), b, DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	sendReq(t, nc, &wire.Request{ID: 2, Op: wire.OpPing, Session: 0xBADF00D})
	resp := readResp(t, nc)
	if resp.Status != wire.StatusSessionUnknown {
		t.Fatalf("status = %v, want SessionUnknown", resp.Status)
	}
}
