// Package server exposes a simulated KV-CSD (single device or sharded
// array) over TCP using the wire protocol, so many real remote clients can
// drive one simulation concurrently.
//
// The hard problem the package solves is the clock boundary: clients live in
// wall-clock time on real sockets, while the device lives in virtual time
// inside a cooperatively-scheduled simulation that must be driven from one
// goroutine. The bridge is a gateway process inside the sim:
//
//   - socket goroutines decode frames and push admitted requests onto a
//     buffered channel;
//   - the gateway proc blocks on that channel (freezing virtual time while
//     the server is idle — an idle server spends no simulated nanoseconds),
//     then drains whatever has accumulated into a batch and runs one sim
//     proc per request, joining the batch before taking the next;
//   - completions stream back to per-connection writer goroutines, so
//     responses leave in completion order, not arrival order — the request
//     ID in every frame is what lets clients pipeline through that.
//
// Backpressure is explicit and two-level: a per-connection pipeline window
// (slow readers block their own socket, nobody else's) and a server-wide
// admission token pool. When the pool is empty new requests are refused
// immediately with StatusOverloaded — shed, not queued — so a burst cannot
// grow memory or latency without bound.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kvcsd/internal/array"
	"kvcsd/internal/device"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// Config tunes the server's concurrency and batching.
type Config struct {
	// MaxInflight is the server-wide admission cap: requests executing or
	// awaiting execution. Beyond it, requests are shed with
	// StatusOverloaded. Default 256.
	MaxInflight int
	// MaxPipeline is the per-connection window of outstanding requests; a
	// connection that exceeds it stops being read until responses drain.
	// Default 64.
	MaxPipeline int
	// MaxBatch caps how many queued requests the gateway admits into one
	// virtual-time batch. Default: MaxInflight.
	MaxBatch int
	// ChunkPairs splits large scan results into streamed frames of this many
	// pairs (FlagMore). Default 128. Negative disables streaming.
	ChunkPairs int
	// DisableWriteCoalescing turns off the put-coalescing optimization that
	// merges a batch's puts per keyspace into one bulk device submission.
	DisableWriteCoalescing bool
	// BackgroundSlice is the virtual-time slice the gateway sleeps while the
	// socket side is idle but device background work (compaction, index
	// builds) is still running. Default 500µs.
	BackgroundSlice time.Duration
	// DrainTimeout bounds Close: connections that cannot absorb their final
	// responses within it are cut. Default 5s (real time).
	DrainTimeout time.Duration
	// SlowOpThreshold, when positive, flags any op whose virtual service
	// time exceeds it: the op is counted, kept in a bounded in-memory ring
	// (served at /slowops by the telemetry endpoint), and — when SlowOpLog
	// is set — dumped as one JSON line with its full stage breakdown.
	// Virtual time is the budget clock because it is deterministic: the same
	// workload flags the same ops on every run.
	SlowOpThreshold time.Duration
	// SlowOpLog receives one JSON line per over-budget op (nil = ring only).
	SlowOpLog io.Writer
	// Replicated makes an array backend create consensus-backed keyspaces:
	// writes commit at quorum through per-shard leaders, reads go through the
	// leader's read-index, and the Stats ring table carries live leaders and
	// epochs. Ignored by device backends.
	Replicated bool
}

// DefaultConfig returns the default server tuning.
func DefaultConfig() Config {
	return Config{
		MaxInflight:     256,
		MaxPipeline:     64,
		ChunkPairs:      128,
		BackgroundSlice: 500 * time.Microsecond,
		DrainTimeout:    5 * time.Second,
	}
}

func (c *Config) normalize() {
	d := DefaultConfig()
	if c.MaxInflight <= 0 {
		c.MaxInflight = d.MaxInflight
	}
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = d.MaxPipeline
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.MaxInflight
	}
	if c.ChunkPairs == 0 {
		c.ChunkPairs = d.ChunkPairs
	}
	if c.BackgroundSlice <= 0 {
		c.BackgroundSlice = d.BackgroundSlice
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
}

// task is one admitted request traveling from a socket to the gateway.
type task struct {
	req *wire.Request
	c   *conn
	enq time.Time
}

// Server bridges TCP connections into one simulation.
type Server struct {
	cfg     Config
	env     *sim.Env
	backend Backend
	met     *metrics
	tr      *obs.Tracer

	ln    net.Listener
	reqCh chan *task
	// tokens is the admission pool: send = take a slot (non-blocking at
	// admission), receive = release. Close acquires every slot to drain.
	tokens   chan struct{}
	inflight atomic.Int64
	draining atomic.Bool
	started  bool

	connMu sync.Mutex
	conns  map[*conn]struct{}

	slowMu sync.Mutex // serializes SlowOpLog writes

	telemetry *telemetryServer

	simDone    chan struct{}
	acceptDone chan struct{}
	closeOnce  sync.Once
}

// New wires a server around an existing environment and backend. The
// environment must not be running yet: the server registers its gateway
// process at construction and takes over driving env.Run when Start is
// called.
func New(env *sim.Env, b Backend, cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:        cfg,
		env:        env,
		backend:    b,
		met:        newMetrics(),
		tr:         b.Tracer(),
		reqCh:      make(chan *task, cfg.MaxInflight),
		tokens:     make(chan struct{}, cfg.MaxInflight),
		conns:      make(map[*conn]struct{}),
		simDone:    make(chan struct{}),
		acceptDone: make(chan struct{}),
	}
	env.Go("gateway", s.gateway)
	return s
}

// NewDevice builds a server over one simulated device.
func NewDevice(opts device.Options, cfg Config) *Server {
	env := sim.NewEnv()
	return New(env, newDeviceBackend(env, opts), cfg)
}

// NewArray builds a server over a sharded, replicated device array.
func NewArray(opts array.Options, cfg Config) *Server {
	env := sim.NewEnv()
	return New(env, newArrayBackend(env, opts, cfg.Replicated), cfg)
}

// Env returns the simulation environment the server drives.
func (s *Server) Env() *sim.Env { return s.env }

// Backend returns the storage backend.
func (s *Server) Backend() Backend { return s.backend }

// Metrics returns a snapshot of the server's RPC counters.
func (s *Server) Metrics() MetricsSnapshot { return s.met.snapshot() }

// Inflight returns the number of admitted requests not yet answered.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Start binds addr, starts the simulation and the accept loop, and returns
// the bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	if s.started {
		return nil, fmt.Errorf("server: Start called twice")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.started = true
	s.ln = ln
	go s.runSim()
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) runSim() {
	defer close(s.simDone)
	s.env.Run()
}

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		c := &conn{
			s:      s,
			nc:     nc,
			out:    make(chan outMsg, s.cfg.MaxPipeline),
			window: make(chan struct{}, s.cfg.MaxPipeline),
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		go c.writeLoop()
		go c.readLoop()
	}
}

// Close drains and stops the server: it refuses new work, waits for every
// admitted request to be answered (bounded by DrainTimeout per connection
// write), runs device background work to completion, shuts the simulation
// down, and closes all sockets. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		if !s.started {
			return
		}
		s.ln.Close()
		// Bound the drain: a client that stops reading cannot hold its
		// admission tokens past the deadline.
		deadline := time.Now().Add(s.cfg.DrainTimeout)
		s.connMu.Lock()
		for c := range s.conns {
			c.nc.SetWriteDeadline(deadline)
		}
		s.connMu.Unlock()
		// Take every admission token: once all are held, no request is in
		// flight and none can be admitted. simDone guards against a
		// simulation that died and can no longer release tokens.
		for i := 0; i < cap(s.tokens); i++ {
			select {
			case s.tokens <- struct{}{}:
			case <-s.simDone:
				i = cap(s.tokens)
			}
		}
		close(s.reqCh)
		<-s.simDone
		// Cut surviving connections (readers parked in ReadFrame).
		s.connMu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.connMu.Unlock()
		<-s.acceptDone
		if s.telemetry != nil {
			s.telemetry.close()
		}
	})
	return nil
}

// outMsg is one response owed to a connection.
type outMsg struct {
	resp     *wire.Response
	admitted bool
}

// conn is one client connection: a reader goroutine (framing, admission), a
// writer goroutine (encoding, token release), and a window semaphore
// bounding requests outstanding between them.
type conn struct {
	s  *Server
	nc net.Conn
	// out carries responses to the writer; capacity MaxPipeline so enqueues
	// never block (each queued response holds a window slot).
	out chan outMsg
	// window is the per-connection pipeline semaphore: the reader takes a
	// slot per request (blocking — per-connection backpressure), the writer
	// returns it once the response is on the wire.
	window chan struct{}
	// owed counts responses promised but not yet written; only the reader
	// increments it, so after the reader exits it can only fall.
	owed sync.WaitGroup
	dead atomic.Bool
}

// reply queues a response generated on the socket side (shed, malformed,
// draining) without touching the simulation. Caller must hold a window slot.
func (c *conn) reply(resp *wire.Response) {
	c.owed.Add(1)
	c.out <- outMsg{resp: resp}
}

// respond queues an admitted request's response from the sim side. The
// reader already counted it in owed at admission.
func (c *conn) respond(resp *wire.Response) {
	c.out <- outMsg{resp: resp, admitted: true}
}

func (c *conn) readLoop() {
	defer func() {
		c.nc.Close()
		// Close out only after every owed response has been queued and
		// written; admitted requests still in the sim finish against a
		// possibly-dead socket and are discarded by the writer.
		go func() {
			c.owed.Wait()
			close(c.out)
		}()
	}()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		t0 := time.Now()
		h, payload, err := wire.ReadFrame(br)
		if err != nil {
			// A framing error is fatal for the connection: with the length
			// prefix untrusted there is no way to resynchronize the stream.
			switch {
			case errors.Is(err, wire.ErrBadMagic), errors.Is(err, wire.ErrBadVersion),
				errors.Is(err, wire.ErrBadKind), errors.Is(err, wire.ErrFrameTooLarge),
				errors.Is(err, wire.ErrFrameCorrupt):
				c.s.met.addBadFrame()
			}
			return
		}
		// Take a pipeline slot; the writer returns it after the response.
		c.window <- struct{}{}
		if h.Kind != wire.KindRequest {
			c.reply(&wire.Response{ID: h.ID, Op: h.Op, Trace: h.Trace, Status: wire.StatusBadRequest, Err: "expected request frame"})
			continue
		}
		req, derr := wire.DecodeRequest(h, payload)
		c.s.met.observeDecode(h.Op, time.Since(t0))
		if derr != nil {
			c.s.met.addBadFrame()
			c.reply(&wire.Response{ID: h.ID, Op: h.Op, Trace: h.Trace, Status: wire.StatusBadRequest, Err: derr.Error()})
			continue
		}
		if c.s.draining.Load() {
			c.s.met.addRefused()
			c.reply(&wire.Response{ID: req.ID, Op: req.Op, Trace: req.Trace, Status: wire.StatusShuttingDown})
			continue
		}
		select {
		case c.s.tokens <- struct{}{}:
			// Admitted. reqCh has capacity MaxInflight, so with a token
			// held this send cannot block; and while we hold the token,
			// Close cannot collect all slots, so reqCh cannot be closed
			// underneath us.
			c.s.met.addAccepted()
			c.owed.Add(1)
			c.s.inflight.Add(1)
			c.s.reqCh <- &task{req: req, c: c, enq: time.Now()}
		default:
			// Pool exhausted: shed immediately instead of queueing.
			c.s.met.addShed()
			c.reply(&wire.Response{ID: req.ID, Op: req.Op, Trace: req.Trace, Status: wire.StatusOverloaded,
				Err: "admission cap reached"})
		}
	}
}

func (c *conn) writeLoop() {
	defer func() {
		c.nc.Close()
		c.s.connMu.Lock()
		delete(c.s.conns, c)
		c.s.connMu.Unlock()
	}()
	for m := range c.out {
		t0 := time.Now()
		if !c.dead.Load() {
			err := wire.WriteResponse(c.nc, m.resp, c.s.cfg.ChunkPairs)
			if err != nil {
				c.dead.Store(true)
				c.nc.Close()
			}
		}
		c.s.met.observeWrite(m.resp.Op, time.Since(t0))
		if m.admitted {
			<-c.s.tokens
			c.s.inflight.Add(-1)
		}
		c.owed.Done()
		<-c.window
	}
}
