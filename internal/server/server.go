// Package server exposes a simulated KV-CSD (single device or sharded
// array) over TCP using the wire protocol, so many real remote clients can
// drive one simulation concurrently.
//
// The hard problem the package solves is the clock boundary: clients live in
// wall-clock time on real sockets, while the device lives in virtual time
// inside a cooperatively-scheduled simulation that must be driven from one
// goroutine. The bridge is a gateway process inside the sim:
//
//   - socket goroutines decode frames and push admitted requests onto a
//     buffered channel;
//   - the gateway proc blocks on that channel (freezing virtual time while
//     the server is idle — an idle server spends no simulated nanoseconds),
//     then drains whatever has accumulated into a batch and runs one sim
//     proc per request, joining the batch before taking the next;
//   - completions stream back to per-connection writer goroutines, so
//     responses leave in completion order, not arrival order — the request
//     ID in every frame is what lets clients pipeline through that.
//
// Backpressure is explicit and layered: a per-connection pipeline window
// (slow readers block their own socket, nobody else's), a per-session
// outstanding cap, per-tenant per-lane queue caps, and a server-wide
// admission cap enforced by the fair scheduler. Beyond any cap, requests are
// refused immediately with StatusOverloaded — shed, not queued unboundedly —
// so a burst cannot grow memory or latency without bound.
//
// Between the sockets and the gateway sits the session layer
// (internal/session): connections may open resumable, tenant-scoped sessions
// via OpHello, and admitted requests are ordered by a deficit-weighted-fair
// scheduler (priority lanes, per-tenant DRR) instead of a FIFO channel, so
// one abusive tenant cannot starve the rest. Responses that cannot reach a
// dead or kicked connection spill into the session's backlog and replay on
// resume.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kvcsd/internal/array"
	"kvcsd/internal/device"
	"kvcsd/internal/obs"
	"kvcsd/internal/session"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// Config tunes the server's concurrency and batching.
type Config struct {
	// MaxInflight is the server-wide admission cap: requests executing or
	// awaiting execution. Beyond it, requests are shed with
	// StatusOverloaded. Default 256.
	MaxInflight int
	// MaxPipeline is the per-connection window of outstanding requests; a
	// connection that exceeds it stops being read until responses drain.
	// Default 64.
	MaxPipeline int
	// MaxBatch caps how many queued requests the gateway admits into one
	// virtual-time batch. Default: MaxInflight.
	MaxBatch int
	// ChunkPairs splits large scan results into streamed frames of this many
	// pairs (FlagMore). Default 128. Negative disables streaming.
	ChunkPairs int
	// DisableWriteCoalescing turns off the put-coalescing optimization that
	// merges a batch's puts per keyspace into one bulk device submission.
	DisableWriteCoalescing bool
	// BackgroundSlice is the virtual-time slice the gateway sleeps while the
	// socket side is idle but device background work (compaction, index
	// builds) is still running. Default 500µs.
	BackgroundSlice time.Duration
	// DrainTimeout bounds Close: connections that cannot absorb their final
	// responses within it are cut. Default 5s (real time).
	DrainTimeout time.Duration
	// SlowOpThreshold, when positive, flags any op whose virtual service
	// time exceeds it: the op is counted, kept in a bounded in-memory ring
	// (served at /slowops by the telemetry endpoint), and — when SlowOpLog
	// is set — dumped as one JSON line with its full stage breakdown.
	// Virtual time is the budget clock because it is deterministic: the same
	// workload flags the same ops on every run.
	SlowOpThreshold time.Duration
	// SlowOpLog receives one JSON line per over-budget op (nil = ring only).
	SlowOpLog io.Writer
	// Replicated makes an array backend create consensus-backed keyspaces:
	// writes commit at quorum through per-shard leaders, reads go through the
	// leader's read-index, and the Stats ring table carries live leaders and
	// epochs. Ignored by device backends.
	Replicated bool
	// QoS tunes the session layer: tenant weights, lane weights, per-tenant
	// and per-session caps, backlog sizing. Zero values take the session
	// package defaults, which reproduce the old single-pool behavior for a
	// single tenant.
	QoS session.Config
}

// DefaultConfig returns the default server tuning.
func DefaultConfig() Config {
	return Config{
		MaxInflight:     256,
		MaxPipeline:     64,
		ChunkPairs:      128,
		BackgroundSlice: 500 * time.Microsecond,
		DrainTimeout:    5 * time.Second,
	}
}

func (c *Config) normalize() {
	d := DefaultConfig()
	if c.MaxInflight <= 0 {
		c.MaxInflight = d.MaxInflight
	}
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = d.MaxPipeline
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.MaxInflight
	}
	if c.ChunkPairs == 0 {
		c.ChunkPairs = d.ChunkPairs
	}
	if c.BackgroundSlice <= 0 {
		c.BackgroundSlice = d.BackgroundSlice
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
}

// task is one admitted request traveling from a socket to the gateway,
// carrying its session-layer classification.
type task struct {
	req    *wire.Request
	c      *conn
	enq    time.Time
	sess   *session.Session // nil for unsessioned requests
	tenant *session.Tenant
	lane   wire.Lane
}

// Server bridges TCP connections into one simulation.
type Server struct {
	cfg     Config
	env     *sim.Env
	backend Backend
	met     *metrics
	tr      *obs.Tracer

	ln net.Listener
	// mgr owns tenants and resumable sessions; sched is the weighted-fair
	// admission queue between the socket goroutines and the gateway proc.
	mgr      *session.Manager
	sched    *session.Scheduler
	inflight atomic.Int64
	draining atomic.Bool
	started  bool

	connMu sync.Mutex
	conns  map[*conn]struct{}

	slowMu sync.Mutex // serializes SlowOpLog writes

	telemetry *telemetryServer

	simDone    chan struct{}
	acceptDone chan struct{}
	closeOnce  sync.Once
}

// New wires a server around an existing environment and backend. The
// environment must not be running yet: the server registers its gateway
// process at construction and takes over driving env.Run when Start is
// called.
func New(env *sim.Env, b Backend, cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:        cfg,
		env:        env,
		backend:    b,
		met:        newMetrics(),
		tr:         b.Tracer(),
		mgr:        session.NewManager(cfg.QoS),
		sched:      session.NewScheduler(cfg.QoS, cfg.MaxInflight),
		conns:      make(map[*conn]struct{}),
		simDone:    make(chan struct{}),
		acceptDone: make(chan struct{}),
	}
	env.Go("gateway", s.gateway)
	return s
}

// NewDevice builds a server over one simulated device.
func NewDevice(opts device.Options, cfg Config) *Server {
	env := sim.NewEnv()
	return New(env, newDeviceBackend(env, opts), cfg)
}

// NewArray builds a server over a sharded, replicated device array.
func NewArray(opts array.Options, cfg Config) *Server {
	env := sim.NewEnv()
	return New(env, newArrayBackend(env, opts, cfg.Replicated), cfg)
}

// Env returns the simulation environment the server drives.
func (s *Server) Env() *sim.Env { return s.env }

// Backend returns the storage backend.
func (s *Server) Backend() Backend { return s.backend }

// Metrics returns a snapshot of the server's RPC counters.
func (s *Server) Metrics() MetricsSnapshot { return s.met.snapshot() }

// SessionManager exposes the tenant/session table (telemetry, tests).
func (s *Server) SessionManager() *session.Manager { return s.mgr }

// Inflight returns the number of admitted requests not yet answered.
func (s *Server) Inflight() int64 { return s.inflight.Load() }

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Start binds addr, starts the simulation and the accept loop, and returns
// the bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	if s.started {
		return nil, fmt.Errorf("server: Start called twice")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.started = true
	s.ln = ln
	go s.runSim()
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) runSim() {
	defer close(s.simDone)
	s.env.Run()
}

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		c := &conn{
			s:      s,
			nc:     nc,
			out:    make(chan outMsg, s.cfg.MaxPipeline),
			window: make(chan struct{}, s.cfg.MaxPipeline),
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		go c.writeLoop()
		go c.readLoop()
	}
}

// Close drains and stops the server: it refuses new work, drains every
// request parked in the fair scheduler's per-session/per-tenant queues
// through the gateway, waits for every admitted response to be written or
// spilled (bounded by DrainTimeout), runs device background work to
// completion, shuts the simulation down, and closes all sockets. Safe to
// call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		if !s.started {
			return
		}
		s.ln.Close()
		// Bound the drain: a client that stops reading cannot hold its
		// responses on the socket past the deadline — the write fails and the
		// response spills to its session backlog instead.
		deadline := time.Now().Add(s.cfg.DrainTimeout)
		s.connMu.Lock()
		for c := range s.conns {
			c.nc.SetWriteDeadline(deadline)
		}
		s.connMu.Unlock()
		// Refuse further admissions. Requests already parked in the
		// scheduler's queues keep draining through NextBatch — shutdown
		// answers parked work, it does not strand it — and once the scheduler
		// is empty the gateway finishes background work and stops the sim.
		s.sched.CloseIntake()
		<-s.simDone
		// Every admitted request has now produced a response; wait (bounded)
		// for the writers to put them on the wire or spill them.
		for s.inflight.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		// Cut surviving connections (readers parked in ReadFrame).
		s.connMu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.connMu.Unlock()
		<-s.acceptDone
		if s.telemetry != nil {
			s.telemetry.close()
		}
	})
	return nil
}

// outMsg is one response owed to a connection. Exactly one of resp and raw is
// set: resp is encoded by the writer, raw is pre-framed bytes (a backlog
// replay or a duplicate re-serve) written verbatim. Every outMsg holds one
// window slot, so the sim side can never block on a full out channel.
type outMsg struct {
	resp     *wire.Response
	raw      []byte
	id       uint64
	sess     *session.Session
	tenant   *session.Tenant
	lane     wire.Lane
	admitted bool
}

// conn is one client connection: a reader goroutine (framing, session
// handshakes, admission), a writer goroutine (encoding, slot release,
// backlog spill), and a window semaphore bounding requests outstanding
// between them.
type conn struct {
	s  *Server
	nc net.Conn
	// out carries responses to the writer; capacity MaxPipeline so enqueues
	// never block (each queued response holds a window slot).
	out chan outMsg
	// window is the per-connection pipeline semaphore: the reader takes a
	// slot per request (blocking — per-connection backpressure), the writer
	// returns it once the response is on the wire.
	window chan struct{}
	// owed counts responses promised but not yet written; only the reader
	// increments it, so after the reader exits it can only fall.
	owed sync.WaitGroup
	dead atomic.Bool
	// sess is the session opened by OpHello on this connection; reader-owned.
	sess *session.Session
}

// reply queues a response generated on the socket side (shed, malformed,
// draining, handshake) without touching the simulation. Caller must hold a
// window slot.
func (c *conn) reply(resp *wire.Response) {
	c.owed.Add(1)
	c.out <- outMsg{resp: resp}
}

// respond queues an admitted request's response from the sim side. The
// reader already counted it in owed at admission.
func (c *conn) respond(t *task, resp *wire.Response) {
	c.out <- outMsg{resp: resp, id: t.req.ID, sess: t.sess, tenant: t.tenant, lane: t.lane, admitted: true}
}

func (c *conn) readLoop() {
	defer func() {
		if c.sess != nil {
			c.sess.Detach(c)
		}
		c.nc.Close()
		// Close out only after every owed response has been queued and
		// written; admitted requests still in the sim finish against a
		// possibly-dead socket and spill into their session's backlog.
		go func() {
			c.owed.Wait()
			close(c.out)
		}()
	}()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		t0 := time.Now()
		h, payload, err := wire.ReadFrame(br)
		if err != nil {
			// A framing error is fatal for the connection: with the length
			// prefix untrusted there is no way to resynchronize the stream.
			switch {
			case errors.Is(err, wire.ErrBadMagic), errors.Is(err, wire.ErrBadVersion),
				errors.Is(err, wire.ErrBadKind), errors.Is(err, wire.ErrFrameTooLarge),
				errors.Is(err, wire.ErrFrameCorrupt):
				c.s.met.addBadFrame()
			}
			return
		}
		// Take a pipeline slot; the writer returns it after the response.
		c.window <- struct{}{}
		if h.Kind != wire.KindRequest {
			c.reply(&wire.Response{ID: h.ID, Op: h.Op, Trace: h.Trace, Status: wire.StatusBadRequest, Err: "expected request frame"})
			continue
		}
		req, derr := wire.DecodeRequest(h, payload)
		c.s.met.observeDecode(h.Op, time.Since(t0))
		if derr != nil {
			c.s.met.addBadFrame()
			c.reply(&wire.Response{ID: h.ID, Op: h.Op, Trace: h.Trace, Status: wire.StatusBadRequest, Err: derr.Error()})
			continue
		}
		if req.Op == wire.OpHello {
			// The handshake is handled socket-side: it never enters the fair
			// scheduler, so an overloaded server still accepts resumes.
			c.handleHello(req)
			continue
		}
		// Classify: a session token is honored only on the connection that
		// opened it (the handshake is the authorization boundary).
		var sess *session.Session
		tenant := c.s.mgr.Anon()
		var class uint8
		if c.sess != nil {
			tenant = c.sess.Tenant()
			class = c.sess.Class()
			if req.Session == c.sess.Token() {
				sess = c.sess
			}
		}
		lane := session.ResolveLane(req.Op, req.Lane, class)
		if req.Session != 0 && sess == nil {
			c.reply(&wire.Response{ID: req.ID, Op: req.Op, Trace: req.Trace, Session: req.Session,
				Status: wire.StatusSessionUnknown, Err: "session token not opened on this connection"})
			continue
		}
		if c.s.draining.Load() {
			c.s.met.addRefused()
			tenant.NoteShed(lane, session.CauseDraining)
			c.reply(&wire.Response{ID: req.ID, Op: req.Op, Trace: req.Trace, Session: req.Session, Status: wire.StatusShuttingDown})
			continue
		}
		if sess != nil {
			// Duplicate suppression, strongest evidence first: a spilled
			// response re-serves its exact bytes; a known outcome of a
			// non-idempotent op re-serves the status without re-applying; an
			// id still in flight is dropped silently (the original's response
			// answers it).
			if frames, ok := sess.LookupFrame(req.ID); ok {
				c.owed.Add(1)
				c.out <- outMsg{raw: frames, id: req.ID, sess: sess, tenant: tenant, lane: lane}
				continue
			}
			if st, ok := sess.LookupApplied(req.ID); ok && !req.Op.Idempotent() {
				c.reply(&wire.Response{ID: req.ID, Op: req.Op, Trace: req.Trace, Session: req.Session, Status: st})
				continue
			}
			dup, full := sess.BeginPending(req.ID)
			if dup {
				<-c.window
				continue
			}
			if full {
				c.s.met.addShed()
				tenant.NoteShed(lane, session.CauseSession)
				c.reply(&wire.Response{ID: req.ID, Op: req.Op, Trace: req.Trace, Session: req.Session,
					Status: wire.StatusOverloaded, Err: "admission refused: " + session.CauseSession.String()})
				continue
			}
		}
		// Admission: owed and inflight are charged before Enqueue so the sim
		// side can never complete a task the reader has not counted.
		c.owed.Add(1)
		c.s.inflight.Add(1)
		t := &task{req: req, c: c, enq: time.Now(), sess: sess, tenant: tenant, lane: lane}
		cause := c.s.sched.Enqueue(&session.Item{
			Sess: sess, Tenant: tenant, Lane: lane, Cost: session.RequestCost(req), Value: t,
		})
		if cause != session.CauseNone {
			c.s.inflight.Add(-1)
			if sess != nil {
				sess.AbortPending(req.ID)
			}
			tenant.NoteShed(lane, cause)
			status := wire.StatusOverloaded
			if cause == session.CauseDraining {
				status = wire.StatusShuttingDown
				c.s.met.addRefused()
			} else {
				c.s.met.addShed()
			}
			// Reuse the owed slot charged above for the shed reply.
			c.out <- outMsg{resp: &wire.Response{ID: req.ID, Op: req.Op, Trace: req.Trace, Session: req.Session,
				Status: status, Err: "admission refused: " + cause.String()}}
			continue
		}
		c.s.met.addAccepted()
		tenant.NoteAdmitted(lane)
	}
}

// handleHello opens or resumes a session, entirely on the socket side. The
// previous connection (if any) is kicked so its in-flight responses spill to
// the backlog, the handshake reply is queued, and then every unreplayed
// backlog record is queued verbatim — original order, byte-identical frames.
// Each replay frame takes a window slot like any other response, so a huge
// backlog applies backpressure to the resuming reader instead of growing the
// out channel.
func (c *conn) handleHello(req *wire.Request) {
	resp := &wire.Response{ID: req.ID, Op: req.Op, Trace: req.Trace}
	if req.Hello == nil {
		resp.Status, resp.Err = wire.StatusBadRequest, "hello without handshake body"
		c.reply(resp)
		return
	}
	sess, replay, resumed, prev, err := c.s.mgr.Hello(req.Hello, c)
	if err != nil {
		if errors.Is(err, session.ErrTooManySessions) {
			resp.Status = wire.StatusOverloaded
		} else {
			resp.Status = wire.StatusBadRequest
		}
		resp.Err = err.Error()
		c.reply(resp)
		return
	}
	if prevC, ok := prev.(*conn); ok && prevC != nil && prevC != c {
		// Kick the session's old connection: marking it dead first makes its
		// writer spill (not write) anything still queued for it.
		prevC.dead.Store(true)
		prevC.nc.Close()
	}
	if old := c.sess; old != nil && old != sess {
		old.Detach(c)
	}
	c.sess = sess
	resp.Status = wire.StatusOK
	resp.Session = sess.Token()
	resp.Hello = &wire.HelloReply{Token: sess.Token(), Resumed: resumed, Replayed: uint32(len(replay))}
	c.reply(resp)
	for _, e := range replay {
		c.window <- struct{}{}
		c.owed.Add(1)
		c.out <- outMsg{raw: e.Frames, id: e.ID, sess: sess, tenant: sess.Tenant(), lane: wire.LaneNormal}
	}
}

func (c *conn) writeLoop() {
	defer func() {
		c.nc.Close()
		c.s.connMu.Lock()
		delete(c.s.conns, c)
		c.s.connMu.Unlock()
	}()
	for m := range c.out {
		t0 := time.Now()
		frames := m.raw
		if frames == nil {
			frames = wire.AppendResponseFrames(nil, m.resp, c.s.cfg.ChunkPairs)
		}
		delivered := false
		if !c.dead.Load() {
			if _, err := c.nc.Write(frames); err != nil {
				c.dead.Store(true)
				c.nc.Close()
			} else {
				delivered = true
			}
		}
		if m.resp != nil {
			c.s.met.observeWrite(m.resp.Op, time.Since(t0))
		}
		if !delivered && m.sess != nil && (m.admitted || m.raw != nil) {
			// The exact bytes that failed to reach the socket go to the
			// session backlog, to replay verbatim on resume.
			m.sess.Spill(m.id, m.lane, frames)
		}
		if m.admitted {
			c.s.sched.Release(1)
			c.s.inflight.Add(-1)
			m.tenant.NoteCompleted(m.lane)
		}
		c.owed.Done()
		<-c.window
	}
}
