package replica

import (
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// pending is a client proposal waiting for its log entry to commit and apply.
type pending struct {
	client uint64
	seq    uint64
	ev     *sim.Event
	err    error
}

// pendingRead is a read-index read waiting for a quorum heartbeat round.
type pendingRead struct {
	round uint64
	index uint64
	key   []byte
	ev    *sim.Event
	value []byte
	found bool
	err   error
}

// group is one node's member state for one shard: a Raft-shaped replicated
// log plus the shard state machine. All state marked persistent survives
// Crash/Restart (it models what the node would have fsynced); everything else
// is rebuilt on restart.
type group struct {
	c     *Cluster
	shard int
	id    int // this node's ID

	// --- persistent ---------------------------------------------------------
	term         uint64
	votedFor     int
	log          []wire.ReplicaEntry // log[i].Index == base+1+i
	base         uint64              // snapshot: last included index / term / state
	baseTerm     uint64
	snapPairs    []nvme.KVPair
	snapSessions map[uint64]uint64
	baseMembers  []int // config as of the snapshot point
	baseEpoch    uint64

	// members/epoch are derived from baseMembers plus the latest config entry
	// in the log (config takes membership effect when appended).
	members []int
	epoch   uint64

	// --- volatile -----------------------------------------------------------
	role      int
	leader    int // last observed leader, -1 unknown
	commit    uint64
	applied   uint64
	applyBusy bool // an applyCommitted drain loop is active
	sm        StateMachine
	sessions  map[uint64]uint64 // client -> highest applied seq

	votes        map[int]bool
	next         map[int]uint64
	match        map[int]uint64
	lastAck      map[int]sim.Time
	lastAckRound map[int]uint64

	electionDeadline sim.Time
	heartbeatDue     sim.Time
	quorumCheckDue   sim.Time

	readSeq uint64
	props   map[uint64]*pending
	reads   []*pendingRead

	// staging accumulates migrate chunks until the Done chunk installs them;
	// stagingStream is the stream ID the staged chunks belong to, so chunks
	// from an aborted earlier stream are discarded instead of merged.
	staging       []nvme.KVPair
	stagingStream uint64

	// snapDue rate-limits leader catch-up snapshots per peer: while one is in
	// flight there is no point re-shipping the full state every heartbeat.
	snapDue map[int]sim.Time

	rng *sim.RNG
}

func newGroup(c *Cluster, shard, id int, members []int, sm StateMachine) *group {
	g := &group{
		c:            c,
		shard:        shard,
		id:           id,
		votedFor:     -1,
		leader:       -1,
		sm:           sm,
		sessions:     map[uint64]uint64{},
		snapSessions: map[uint64]uint64{},
		baseMembers:  append([]int(nil), members...),
		baseEpoch:    1,
		members:      append([]int(nil), members...),
		epoch:        1,
		props:        map[uint64]*pending{},
		rng:          c.rng.Fork(int64(shard)*1024 + int64(id) + 1),
	}
	g.resetElectionDeadline()
	return g
}

func (g *group) node() *node { return g.c.nodes[g.id] }

func (g *group) lastIndex() uint64 { return g.base + uint64(len(g.log)) }

func (g *group) lastTerm() uint64 {
	if len(g.log) == 0 {
		return g.baseTerm
	}
	return g.log[len(g.log)-1].Term
}

// termAt returns the term of index i, or 0 when i is outside the log.
func (g *group) termAt(i uint64) uint64 {
	if i == g.base {
		return g.baseTerm
	}
	if i < g.base || i > g.lastIndex() {
		return 0
	}
	return g.log[i-g.base-1].Term
}

func (g *group) entryAt(i uint64) *wire.ReplicaEntry { return &g.log[i-g.base-1] }

func (g *group) isMember(id int) bool {
	for _, m := range g.members {
		if m == id {
			return true
		}
	}
	return false
}

func (g *group) quorum() int { return len(g.members)/2 + 1 }

// recomputeConfig re-derives members/epoch from the snapshot config plus the
// latest config entry still in the log — needed after a conflict truncation.
func (g *group) recomputeConfig() {
	g.members = append(g.members[:0], g.baseMembers...)
	g.epoch = g.baseEpoch
	for i := range g.log {
		if g.log[i].Kind == entryConfig {
			g.members = g.members[:0]
			for _, m := range g.log[i].Members {
				g.members = append(g.members, int(m))
			}
			g.epoch = g.log[i].Epoch
		}
	}
}

func (g *group) resetElectionDeadline() {
	et := g.c.opts.ElectionTimeout
	jitter := sim.Duration(g.rng.Int63() % int64(et))
	g.electionDeadline = g.c.env.Now().Add(et + jitter)
}

// tick drives timers: election timeout on followers/candidates, heartbeats
// and the CheckQuorum rule on leaders.
func (g *group) tick(p *sim.Proc) {
	now := g.c.env.Now()
	switch g.role {
	case roleLeader:
		if now >= g.quorumCheckDue {
			g.quorumCheckDue = now.Add(g.c.opts.ElectionTimeout)
			if !g.hasQuorumContact(now) {
				// CheckQuorum: an isolated leader must stop pretending.
				// Stepping down fails every pending proposal with ErrUnknown
				// within one election timeout, which is what keeps client
				// retry loops (and the simulation) from hanging forever.
				g.stepDown(g.term, -1)
				return
			}
		}
		if now >= g.heartbeatDue {
			g.broadcastAppend(0)
		}
	default:
		if now >= g.electionDeadline && g.isMember(g.id) && g.node().running {
			g.startElection(p)
		}
	}
}

func (g *group) hasQuorumContact(now sim.Time) bool {
	contact := 1 // self
	for _, m := range g.members {
		if m == g.id {
			continue
		}
		if now-g.lastAck[m] <= sim.Time(g.c.opts.ElectionTimeout) {
			contact++
		}
	}
	return contact >= g.quorum()
}

// --- elections --------------------------------------------------------------

func (g *group) startElection(p *sim.Proc) {
	g.term++
	g.votedFor = g.id
	g.role = roleCandidate
	g.leader = -1
	g.votes = map[int]bool{g.id: true}
	g.resetElectionDeadline()
	g.c.countElection(g.shard)
	if len(g.members) == 1 && g.isMember(g.id) {
		g.becomeLeader(p)
		return
	}
	for _, m := range g.members {
		if m == g.id {
			continue
		}
		g.c.net.sendRequest(g.id, m, &wire.Request{
			ID: g.c.nextMsgID(),
			Op: wire.OpRequestVote,
			Replica: &wire.ReplicaMsg{
				Shard:        uint32(g.shard),
				From:         uint32(g.id),
				Term:         g.term,
				LastLogIndex: g.lastIndex(),
				LastLogTerm:  g.lastTerm(),
			},
		})
	}
}

func (g *group) handleRequestVote(p *sim.Proc, m *wire.ReplicaMsg) {
	if m.Term > g.term {
		g.stepDown(m.Term, -1)
	}
	grant := false
	if m.Term == g.term && (g.votedFor == -1 || g.votedFor == int(m.From)) {
		upToDate := m.LastLogTerm > g.lastTerm() ||
			(m.LastLogTerm == g.lastTerm() && m.LastLogIndex >= g.lastIndex())
		if upToDate {
			grant = true
			g.votedFor = int(m.From)
			g.resetElectionDeadline()
		}
	}
	g.c.net.sendResponse(g.id, int(m.From), &wire.Response{
		ID: g.c.nextMsgID(), Op: wire.OpRequestVote, Status: wire.StatusOK,
		Replica: &wire.ReplicaReply{
			Shard: uint32(g.shard), From: uint32(g.id), Term: g.term, Success: grant,
		},
	})
}

func (g *group) handleVoteReply(p *sim.Proc, r *wire.ReplicaReply) {
	if r.Term > g.term {
		g.stepDown(r.Term, -1)
		return
	}
	if g.role != roleCandidate || r.Term != g.term || !r.Success {
		return
	}
	g.votes[int(r.From)] = true
	count := 0
	for _, m := range g.members {
		if g.votes[m] {
			count++
		}
	}
	if count >= g.quorum() {
		g.becomeLeader(p)
	}
}

func (g *group) becomeLeader(p *sim.Proc) {
	now := g.c.env.Now()
	g.role = roleLeader
	g.leader = g.id
	g.next = map[int]uint64{}
	g.match = map[int]uint64{}
	g.lastAck = map[int]sim.Time{}
	g.lastAckRound = map[int]uint64{}
	g.snapDue = map[int]sim.Time{}
	for _, m := range g.members {
		g.next[m] = g.lastIndex() + 1
		g.lastAck[m] = now
	}
	g.quorumCheckDue = now.Add(g.c.opts.ElectionTimeout)
	g.c.noteLeader(g.shard, g.id, g.term)
	// A fresh leader cannot commit entries from older terms by counting
	// replicas; the no-op commits the current term and unblocks read-index.
	g.appendLocal(p, wire.ReplicaEntry{Term: g.term, Kind: entryNop})
	g.broadcastAppend(0)
}

// --- log replication --------------------------------------------------------

// appendLocal assigns the next index and appends to the leader's own log.
func (g *group) appendLocal(p *sim.Proc, e wire.ReplicaEntry) uint64 {
	e.Index = g.lastIndex() + 1
	g.log = append(g.log, e)
	if e.Kind == entryConfig {
		g.recomputeConfig()
	}
	if len(g.members) == 1 && g.isMember(g.id) {
		g.advanceCommit(p)
	}
	return e.Index
}

// broadcastAppend sends AppendEntries to every peer, carrying round as a
// read-index confirmation tag when non-zero.
func (g *group) broadcastAppend(round uint64) {
	g.heartbeatDue = g.c.env.Now().Add(g.c.opts.HeartbeatInterval)
	for _, m := range g.members {
		if m == g.id {
			continue
		}
		g.sendAppend(m, round)
	}
}

func (g *group) sendAppend(to int, round uint64) {
	next := g.next[to]
	if next == 0 {
		next = 1
	}
	if next <= g.base {
		// The peer is behind our snapshot horizon: ship the snapshot itself.
		g.sendSnapshot(to)
		return
	}
	prev := next - 1
	var entries []wire.ReplicaEntry
	if next <= g.lastIndex() {
		entries = append(entries, g.log[next-g.base-1:]...)
	}
	g.c.net.sendRequest(g.id, to, &wire.Request{
		ID: g.c.nextMsgID(),
		Op: wire.OpAppendEntries,
		Replica: &wire.ReplicaMsg{
			Shard:     uint32(g.shard),
			From:      uint32(g.id),
			Term:      g.term,
			PrevIndex: prev,
			PrevTerm:  g.termAt(prev),
			Commit:    g.commit,
			Round:     round,
			Entries:   entries,
		},
	})
}

func (g *group) handleAppendEntries(p *sim.Proc, m *wire.ReplicaMsg) {
	reply := &wire.ReplicaReply{Shard: uint32(g.shard), From: uint32(g.id)}
	defer func() {
		reply.Term = g.term
		g.c.net.sendResponse(g.id, int(m.From), &wire.Response{
			ID: g.c.nextMsgID(), Op: wire.OpAppendEntries, Status: wire.StatusOK,
			Replica: reply,
		})
	}()
	if m.Term < g.term {
		return // Success=false, stale leader learns our term
	}
	if m.Term > g.term || g.role != roleFollower {
		g.stepDown(m.Term, int(m.From))
	}
	g.leader = int(m.From)
	g.resetElectionDeadline()

	// Log-matching check at (PrevIndex, PrevTerm).
	if m.PrevIndex > g.lastIndex() {
		reply.MatchIndex = g.lastIndex()
		return
	}
	if m.PrevIndex >= g.base && g.termAt(m.PrevIndex) != m.PrevTerm {
		back := m.PrevIndex - 1
		if back > g.base {
			reply.MatchIndex = back
		} else {
			reply.MatchIndex = g.base
		}
		return
	}

	// Append, skipping entries the snapshot already covers and truncating on
	// the first conflict.
	changed := false
	for _, e := range m.Entries {
		if e.Index <= g.base {
			continue
		}
		if e.Index <= g.lastIndex() {
			if g.termAt(e.Index) == e.Term {
				continue
			}
			g.log = g.log[:e.Index-g.base-1]
			changed = true
		}
		g.log = append(g.log, e)
		changed = true
	}
	if changed {
		g.recomputeConfig()
	}
	reply.Success = true
	reply.MatchIndex = m.PrevIndex + uint64(len(m.Entries))
	reply.Round = m.Round
	if m.Commit > g.commit {
		g.commit = min(m.Commit, g.lastIndex())
		g.applyCommitted(p)
	}
}

func (g *group) handleAppendReply(p *sim.Proc, r *wire.ReplicaReply) {
	if r.Term > g.term {
		g.stepDown(r.Term, -1)
		return
	}
	if g.role != roleLeader || r.Term != g.term {
		return
	}
	from := int(r.From)
	g.lastAck[from] = g.c.env.Now()
	if !r.Success {
		// Back off next[] toward the follower's hint and re-probe.
		n := r.MatchIndex + 1
		if n < 1 {
			n = 1
		}
		if n < g.next[from] {
			g.next[from] = n
		} else if g.next[from] > 1 {
			g.next[from]--
		}
		g.sendAppend(from, 0)
		return
	}
	if r.MatchIndex > g.match[from] {
		g.match[from] = r.MatchIndex
		g.next[from] = r.MatchIndex + 1
	}
	if r.Round > g.lastAckRound[from] {
		g.lastAckRound[from] = r.Round
	}
	g.advanceCommit(p)
	g.serveReads(p)
	// Keep pushing if the follower is still behind.
	if g.next[from] <= g.lastIndex() {
		g.sendAppend(from, 0)
	}
}

// advanceCommit moves the commit index to the highest current-term entry
// replicated on a quorum, then applies.
func (g *group) advanceCommit(p *sim.Proc) {
	for n := g.lastIndex(); n > g.commit; n-- {
		if g.termAt(n) != g.term {
			break
		}
		count := 0
		for _, m := range g.members {
			if m == g.id {
				if g.lastIndex() >= n {
					count++
				}
			} else if g.match[m] >= n {
				count++
			}
		}
		if count >= g.quorum() {
			g.commit = n
			g.applyCommitted(p)
			break
		}
	}
}

// applyCommitted applies every committed-but-unapplied entry to the state
// machine, resolves client proposals, flips routing on config applies, and
// deduplicates by (client, seq).
//
// Device-backed state machines yield virtual time inside Apply, so this can
// be re-entered from another deliver proc while an apply is in flight. The
// applyBusy guard keeps exactly one drain loop active — the loop re-checks
// the commit index every iteration, so entries committed during a yield are
// drained by the active loop. Without the guard, a concurrent re-entrant
// loop advances g.applied underneath the yielded one, which then resolves
// the wrong pending proposal and strands its proposer forever.
func (g *group) applyCommitted(p *sim.Proc) {
	if g.applyBusy {
		return
	}
	g.applyBusy = true
	defer func() { g.applyBusy = false }()
	for g.applied < g.commit {
		g.applied++
		idx := g.applied // stable across yields even if a crash resets the cursor
		e := *g.entryAt(idx)
		switch e.Kind {
		case entryPut, entryDelete:
			if e.Client != 0 && g.sessions[e.Client] >= e.Seq {
				break // duplicate of an already-applied proposal
			}
			if e.Client != 0 {
				g.sessions[e.Client] = e.Seq
			}
			if err := g.sm.Apply(p, Command{Kind: e.Kind, Key: e.Key, Value: e.Value}); err != nil {
				// State machines in this simulation only fail when their
				// device is down, in which case the node is about to be
				// crashed anyway; surface to the proposal if one waits.
				if pd := g.props[idx]; pd != nil {
					pd.err = err
					pd.ev.Signal()
					delete(g.props, idx)
				}
				continue
			}
		case entryConfig:
			g.c.routeApplied(p, g.shard, &e)
			if !g.isMember(g.id) && g.role == roleLeader {
				// A leader removed by the config it just committed steps
				// down; the remaining members elect among themselves.
				g.stepDown(g.term, -1)
			}
		}
		if pd := g.props[idx]; pd != nil {
			if pd.client == e.Client && pd.seq == e.Seq {
				pd.err = nil
			} else {
				pd.err = ErrUnknown
			}
			pd.ev.Signal()
			delete(g.props, idx)
		}
	}
	g.c.noteCommit(g.shard, g.id)
}

// --- snapshots --------------------------------------------------------------

// sendSnapshot ships the leader's snapshot to a peer that has fallen behind
// the log base, as a single Migrate frame with Round=0 (no coordinator call):
// the ack comes back through handleSnapshotReply, which advances next[to] so
// post-snapshot entries follow via ordinary AppendEntries. While one snapshot
// is in flight, re-sends to the same peer are suppressed.
func (g *group) sendSnapshot(to int) {
	now := g.c.env.Now()
	if now < g.snapDue[to] {
		return
	}
	g.snapDue[to] = now.Add(g.c.opts.ElectionTimeout)
	pairs := append([]nvme.KVPair(nil), g.snapPairs...)
	g.c.countSnapshot(g.shard)
	g.c.net.sendRequest(g.id, to, &wire.Request{
		ID:    g.c.nextMsgID(),
		Op:    wire.OpMigrate,
		Pairs: pairs,
		Replica: &wire.ReplicaMsg{
			Shard:     uint32(g.shard),
			From:      uint32(g.id),
			Term:      g.term,
			SnapIndex: g.base,
			SnapTerm:  g.baseTerm,
			Epoch:     g.baseEpoch,
			Done:      true,
			Sessions:  sessionList(g.snapSessions),
			Stream:    g.c.nextMsgID(),
			Entries: []wire.ReplicaEntry{
				{Kind: entryConfig, Members: memberList(g.baseMembers), Epoch: g.baseEpoch},
			},
		},
	})
}

// handleSnapshotReply is the leader-side ack path for catch-up snapshots
// (Migrate replies whose Round matches no coordinator call). A Success ack
// carries MatchIndex = the installed snapshot base; a refusal carries the
// follower's applied index — applied entries are committed, and a leader's
// log holds every committed entry, so either way MatchIndex is a proven log
// match the leader can resume AppendEntries from.
func (g *group) handleSnapshotReply(p *sim.Proc, r *wire.ReplicaReply) {
	if r.Term > g.term {
		g.stepDown(r.Term, -1)
		return
	}
	if g.role != roleLeader || r.Term != g.term {
		return
	}
	from := int(r.From)
	g.lastAck[from] = g.c.env.Now()
	g.snapDue[from] = 0
	if r.MatchIndex > g.match[from] {
		g.match[from] = r.MatchIndex
	}
	if r.MatchIndex+1 > g.next[from] {
		g.next[from] = r.MatchIndex + 1
	}
	g.advanceCommit(p)
	g.serveReads(p)
	if g.next[from] <= g.lastIndex() {
		g.sendAppend(from, 0)
	}
}

// handleMigrate installs a streamed snapshot chunk. Chunks accumulate in a
// staging area; the Done chunk commits the install: the log resets to the
// snapshot base and the state machine is restored. Used both by elastic
// resharding (streaming a shard to its new owner) and by leaders bringing a
// hopelessly-behind follower back.
func (g *group) handleMigrate(p *sim.Proc, req *wire.Request) {
	m := req.Replica
	reply := &wire.ReplicaReply{
		Shard: uint32(g.shard), From: uint32(g.id), Round: m.Round,
	}
	send := func() {
		reply.Term = g.term // after any stepDown, so the sender trusts the ack
		g.c.net.sendResponse(g.id, int(m.From), &wire.Response{
			ID: g.c.nextMsgID(), Op: wire.OpMigrate, Status: wire.StatusOK,
			Replica: reply,
		})
	}
	if m.Term > g.term {
		g.stepDown(m.Term, -1)
	}
	// A chunk from a different stream means the previous stream aborted
	// mid-flight; its staged pairs must never leak into this install.
	if m.Stream != g.stagingStream {
		g.staging = nil
		g.stagingStream = m.Stream
	}
	// Refuse installs that would rewind an already-longer, already-applied
	// state: the migration coordinator retries elsewhere, and a catch-up
	// leader resumes AppendEntries from our applied index (committed state,
	// so it is a proven log match).
	if m.Done && m.SnapIndex < g.applied {
		g.staging = nil
		reply.MatchIndex = g.applied
		send()
		return
	}
	g.staging = append(g.staging, req.Pairs...)
	if !m.Done {
		reply.Success = true
		send()
		return
	}
	pairs := g.staging
	g.staging = nil
	if err := g.sm.Restore(p, pairs); err != nil {
		send()
		return
	}
	g.base = m.SnapIndex
	g.baseTerm = m.SnapTerm
	g.log = nil
	g.snapPairs = append([]nvme.KVPair(nil), pairs...)
	g.snapSessions = map[uint64]uint64{}
	g.sessions = map[uint64]uint64{}
	for _, s := range m.Sessions {
		g.snapSessions[s.Client] = s.Seq
		g.sessions[s.Client] = s.Seq
	}
	if len(m.Entries) > 0 && m.Entries[0].Kind == entryConfig {
		g.baseMembers = g.baseMembers[:0]
		for _, mm := range m.Entries[0].Members {
			g.baseMembers = append(g.baseMembers, int(mm))
		}
		g.baseEpoch = m.Entries[0].Epoch
	}
	g.recomputeConfig()
	g.commit = g.base
	g.applied = g.base
	g.role = roleFollower
	g.resetElectionDeadline()
	reply.Success = true
	reply.MatchIndex = g.base
	send()
}

// --- role changes -----------------------------------------------------------

// stepDown demotes to follower (adopting newTerm if higher) and fails every
// in-flight proposal with the ambiguous ErrUnknown — the entries may yet
// commit under the next leader, and session dedup makes the client retry
// safe either way.
func (g *group) stepDown(newTerm uint64, leader int) {
	if newTerm > g.term {
		g.term = newTerm
		g.votedFor = -1
	}
	g.role = roleFollower
	g.leader = leader
	g.votes = nil
	g.failPending(ErrUnknown, &NotLeaderError{Hint: leader})
	g.resetElectionDeadline()
	g.c.noteStepDown(g.shard, g.id)
}

// failPending resolves all waiting proposals with propErr and all waiting
// reads with readErr.
func (g *group) failPending(propErr, readErr error) {
	for idx, pd := range g.props {
		pd.err = propErr
		pd.ev.Signal()
		delete(g.props, idx)
	}
	for _, rd := range g.reads {
		rd.err = readErr
		rd.ev.Signal()
	}
	g.reads = nil
}

// --- client operations ------------------------------------------------------

// propose appends a client command on the leader and returns a pending the
// caller waits on; nil pending with nil error means already done.
func (g *group) propose(p *sim.Proc, e wire.ReplicaEntry) (*pending, error) {
	if g.c.stopped {
		return nil, ErrStopped
	}
	if !g.node().running {
		return nil, ErrDown
	}
	if g.role != roleLeader {
		return nil, &NotLeaderError{Hint: g.leader}
	}
	if e.Client != 0 && g.sessions[e.Client] >= e.Seq {
		return nil, nil // retry of an already-applied proposal: success
	}
	e.Term = g.term
	idx := g.appendLocal(p, e)
	if g.applied >= idx {
		// Single-member group: appendLocal already committed and applied.
		return nil, nil
	}
	pd := &pending{client: e.Client, seq: e.Seq, ev: sim.NewEvent(g.c.env)}
	g.props[idx] = pd
	g.broadcastAppend(0)
	return pd, nil
}

// read starts a read-index read and returns the pending the caller waits on.
func (g *group) read(p *sim.Proc, key []byte) (*pendingRead, error) {
	if g.c.stopped {
		return nil, ErrStopped
	}
	if !g.node().running {
		return nil, ErrDown
	}
	if g.role != roleLeader {
		return nil, &NotLeaderError{Hint: g.leader}
	}
	if g.termAt(g.commit) != g.term {
		// No entry from this term committed yet: the leader cannot prove its
		// commit index is current. The no-op will fix this within a round.
		return nil, ErrNotReady
	}
	g.readSeq++
	rd := &pendingRead{round: g.readSeq, index: g.commit, key: key, ev: sim.NewEvent(g.c.env)}
	g.reads = append(g.reads, rd)
	if len(g.members) == 1 && g.isMember(g.id) {
		g.serveUpTo(p, g.readSeq)
		return rd, nil
	}
	g.broadcastAppend(g.readSeq)
	return rd, nil
}

// serveReads completes reads whose confirmation round a quorum has acked.
func (g *group) serveReads(p *sim.Proc) {
	if len(g.reads) == 0 || g.role != roleLeader {
		return
	}
	// A peer acking round R confirms every round <= R.
	confirmed := uint64(0)
	for _, rd := range g.reads {
		count := 1 // self
		for _, m := range g.members {
			if m != g.id && g.lastAckRound[m] >= rd.round {
				count++
			}
		}
		if count >= g.quorum() {
			confirmed = rd.round
		}
	}
	if confirmed == 0 {
		return
	}
	g.serveUpTo(p, confirmed)
}

func (g *group) serveUpTo(p *sim.Proc, round uint64) {
	rest := g.reads[:0]
	for _, rd := range g.reads {
		if rd.round > round || g.applied < rd.index {
			rest = append(rest, rd)
			continue
		}
		rd.value, rd.found, rd.err = g.sm.Lookup(p, rd.key)
		rd.ev.Signal()
	}
	g.reads = rest
}

// unsafeRead serves a read from this node's local applied state with no
// quorum confirmation — the deliberately broken mode behind the checker's
// negative control.
func (g *group) unsafeRead(p *sim.Proc, key []byte) ([]byte, bool, error) {
	if !g.node().running {
		return nil, false, ErrDown
	}
	return g.sm.Lookup(p, key)
}

// --- crash / restart --------------------------------------------------------

// crash models a power cut: volatile state vanishes, persistent state stays.
func (g *group) crash() {
	// Pending proposals were already appended to the local log and may have
	// replicated; they can still commit under the next leader, so their fate
	// is ambiguous. Reads have no side effects and may fail definitely.
	g.failPending(ErrUnknown, ErrDown)
	g.role = roleFollower
	g.leader = -1
	g.votes = nil
	g.commit = g.base
	g.applied = g.base
	g.staging = nil
}

// restart rebuilds volatile state from the persisted snapshot and log: the
// state machine is restored to the snapshot and the log will be re-applied as
// the commit index re-advances (replay is idempotent thanks to session dedup
// and last-writer-wins semantics).
func (g *group) restart(p *sim.Proc) {
	g.role = roleFollower
	g.leader = -1
	g.commit = g.base
	g.applied = g.base
	g.sessions = map[uint64]uint64{}
	for c, s := range g.snapSessions {
		g.sessions[c] = s
	}
	// Restore the state machine to the snapshot; the leader's AppendEntries
	// re-advance commit from there and replay the log through applyCommitted
	// (replay is idempotent, so a device-backed machine that survived with
	// newer state converges rather than corrupts).
	_ = g.sm.Restore(p, g.snapPairs)
	g.recomputeConfig()
	g.resetElectionDeadline()
}

// --- helpers ----------------------------------------------------------------

func memberList(members []int) []uint32 {
	out := make([]uint32, len(members))
	for i, m := range members {
		out[i] = uint32(m)
	}
	return out
}

func sessionList(sessions map[uint64]uint64) []wire.ReplicaSession {
	clients := make([]uint64, 0, len(sessions))
	for c := range sessions {
		clients = append(clients, c)
	}
	sortUint64(clients)
	out := make([]wire.ReplicaSession, 0, len(clients))
	for _, c := range clients {
		out = append(out, wire.ReplicaSession{Client: c, Seq: sessions[c]})
	}
	return out
}

func sortUint64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
