package replica

import (
	"errors"
	"fmt"

	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// ErrMigrate reports a resharding step that could not complete (target
// unreachable, leader lost, or install refused). The shard stays on its old
// owners; MoveShard can simply be retried.
var ErrMigrate = errors.New("replica: migration failed")

// migrateChunkPairs is how many pairs ride in one Migrate frame.
const migrateChunkPairs = 128

// call is an in-flight migrate RPC: the coordinator waits on ev until the
// ack arrives or the timeout proc fires.
type call struct {
	ev    *sim.Event
	reply *wire.ReplicaReply
	err   error
}

// resolveCall completes the migrate RPC the reply's Round names, reporting
// whether a registered call claimed the reply (leader catch-up snapshots send
// with Round=0 and no call; their acks route to handleSnapshotReply instead).
func (c *Cluster) resolveCall(r *wire.ReplicaReply) bool {
	cl := c.calls[r.Round]
	if cl == nil {
		return false
	}
	delete(c.calls, r.Round)
	cl.reply = r
	cl.ev.Signal()
	return true
}

// rpcMigrate ships one migrate frame from coordinator-on-node `from` to
// node `to` and waits for the ack, with a virtual-time timeout so a crashed
// target cannot hang the coordinator (or deadlock the simulation).
func (c *Cluster) rpcMigrate(p *sim.Proc, from, to int, req *wire.Request) (*wire.ReplicaReply, error) {
	id := c.nextMsgID()
	req.ID = id
	req.Replica.Round = id
	cl := &call{ev: sim.NewEvent(c.env)}
	c.calls[id] = cl
	c.net.sendRequest(from, to, req)
	c.env.Go(fmt.Sprintf("replica:migrate-timeout:%d", id), func(tp *sim.Proc) {
		tp.Sleep(5 * c.opts.ElectionTimeout)
		if pending := c.calls[id]; pending == cl {
			delete(c.calls, id)
			cl.err = fmt.Errorf("%w: chunk ack timeout", ErrMigrate)
			cl.ev.Signal()
		}
	})
	p.Wait(cl.ev)
	if cl.err != nil {
		return nil, cl.err
	}
	return cl.reply, nil
}

// MoveShard reshards: it streams the shard's state to node `to` over Migrate
// frames, then runs two single-server config changes — add `to`, remove
// `from` — so that every adjacent config pair shares a quorum. The routing
// table flips atomically when each config record is applied (epoch bump).
// On error the cluster is left in a safe config: either the old one, or the
// intermediate one that includes both nodes.
func (c *Cluster) MoveShard(p *sim.Proc, shard, from, to int) error {
	if c.stopped {
		return ErrStopped
	}
	if to < 0 || to >= len(c.nodes) || !c.nodes[to].running {
		return fmt.Errorf("%w: target node %d down", ErrMigrate, to)
	}
	leaderID, err := c.WaitLeader(p, shard)
	if err != nil {
		return fmt.Errorf("%w: no leader for shard %d", ErrMigrate, shard)
	}
	g := c.nodes[leaderID].groups[shard]
	if containsInt(g.members, to) {
		return c.removeMember(p, shard, from)
	}

	// Snapshot the leader's applied state and stream it to the new owner.
	pairs, err := g.sm.Snapshot(p)
	if err != nil {
		return fmt.Errorf("%w: snapshot: %v", ErrMigrate, err)
	}
	snapIndex, snapTerm := g.applied, g.termAt(g.applied)
	sessions := sessionList(g.sessions)
	baseCfg := wire.ReplicaEntry{Kind: entryConfig, Members: memberList(g.members), Epoch: g.epoch}
	stream := c.nextMsgID()
	c.countMigration()
	for off := 0; ; off += migrateChunkPairs {
		end := off + migrateChunkPairs
		done := end >= len(pairs)
		if end > len(pairs) {
			end = len(pairs)
		}
		var chunk []nvme.KVPair
		if off < len(pairs) {
			chunk = pairs[off:end]
		}
		msg := &wire.ReplicaMsg{
			Shard:  uint32(shard),
			From:   uint32(leaderID),
			Term:   g.term,
			Done:   done,
			Stream: stream,
		}
		if done {
			msg.SnapIndex = snapIndex
			msg.SnapTerm = snapTerm
			msg.Epoch = g.epoch
			msg.Sessions = sessions
			msg.Entries = []wire.ReplicaEntry{baseCfg}
		}
		var reply *wire.ReplicaReply
		var lastErr error
		for attempt := 0; attempt < 3; attempt++ {
			reply, lastErr = c.rpcMigrate(p, leaderID, to, &wire.Request{
				Op: wire.OpMigrate, Pairs: chunk,
				Replica: cloneMsg(msg),
			})
			if lastErr == nil {
				break
			}
		}
		if lastErr != nil {
			return lastErr
		}
		if !reply.Success {
			return fmt.Errorf("%w: node %d refused install", ErrMigrate, to)
		}
		if done {
			break
		}
	}

	// Config change 1: add the new owner. It catches up from its snapshot
	// base via ordinary AppendEntries once the leader starts including it.
	members := append(memberList(g.members), uint32(to))
	if err := c.proposeConfig(p, shard, members); err != nil {
		return err
	}
	// Config change 2: retire the old owner.
	return c.removeMember(p, shard, from)
}

// AddMember grows a shard group by one node (snapshot stream + config add)
// without removing anyone — the first half of MoveShard.
func (c *Cluster) AddMember(p *sim.Proc, shard, to int) error {
	return c.MoveShard(p, shard, -1, to)
}

// removeMember proposes the config without `from`; from == -1 is a no-op.
func (c *Cluster) removeMember(p *sim.Proc, shard, from int) error {
	if from < 0 {
		return nil
	}
	leaderID, err := c.WaitLeader(p, shard)
	if err != nil {
		return fmt.Errorf("%w: no leader for shard %d", ErrMigrate, shard)
	}
	g := c.nodes[leaderID].groups[shard]
	if !containsInt(g.members, from) {
		return nil
	}
	var members []uint32
	for _, m := range g.members {
		if m != from {
			members = append(members, uint32(m))
		}
	}
	if len(members) == 0 {
		return fmt.Errorf("%w: refusing to empty shard %d", ErrMigrate, shard)
	}
	return c.proposeConfig(p, shard, members)
}

// proposeConfig replicates one config record and waits for it to commit,
// retrying across leader changes. The entry carries the next epoch; routing
// flips when it applies.
func (c *Cluster) proposeConfig(p *sim.Proc, shard int, members []uint32) error {
	session := c.Client(0x436F6E66<<16 | uint64(shard) + 1) // "Conf"
	var lastErr error = ErrNoLeader
	for attempt := 0; attempt < 40; attempt++ {
		if c.stopped {
			return ErrStopped
		}
		leaderID, err := c.WaitLeader(p, shard)
		if err != nil {
			return fmt.Errorf("%w: no leader for shard %d", ErrMigrate, shard)
		}
		g := c.nodes[leaderID].groups[shard]
		if sameMembers(g.members, members) {
			return nil // already in effect (e.g. committed before a retry)
		}
		session.seq++
		pd, err := g.propose(p, wire.ReplicaEntry{
			Kind:    entryConfig,
			Client:  session.id,
			Seq:     session.seq,
			Members: members,
			Epoch:   g.epoch + 1,
		})
		if err == nil && pd == nil {
			return nil
		}
		if err == nil {
			p.Wait(pd.ev)
			err = pd.err
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if err == ErrStopped {
			return err
		}
		p.Sleep(c.opts.HeartbeatInterval * sim.Duration(1+attempt/4))
	}
	return fmt.Errorf("%w: config change: %v", ErrMigrate, lastErr)
}

func (c *Cluster) countMigration() {
	if c.gauges != nil {
		c.gauges.migrations.Add(1)
	}
}

func cloneMsg(m *wire.ReplicaMsg) *wire.ReplicaMsg {
	cp := *m
	return &cp
}

func sameMembers(have []int, want []uint32) bool {
	if len(have) != len(want) {
		return false
	}
	for _, w := range want {
		if !containsInt(have, int(w)) {
			return false
		}
	}
	return true
}
