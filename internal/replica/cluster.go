package replica

import (
	"fmt"

	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// route is the cluster's view of one shard: who owns it (as last flipped by
// an applied config record) and which node was last seen leading it.
type route struct {
	members []int
	epoch   uint64
	leader  int // hint; -1 unknown
}

// node is one replica host. A node that is !running drops every frame and
// rejects every client call until Restart.
type node struct {
	c       *Cluster
	id      int
	running bool
	groups  map[int]*group
}

func (n *node) group(shard int) *group { return n.groups[shard] }

// Cluster is a set of replica nodes hosting per-shard consensus groups over a
// simulated network. All methods must be called from simulation processes of
// the Env the cluster was built on.
type Cluster struct {
	env     *Env
	opts    Options
	nodes   []*node
	routes  []*route
	net     *transport
	rng     *sim.RNG
	msgID   uint64
	stopped bool

	// calls tracks in-flight migrate RPCs awaiting their ack.
	calls map[uint64]*call

	elections int64
	snapshots int64

	gauges *gauges
}

// Env is re-exported to keep the constructor signature obvious.
type Env = sim.Env

// New builds a cluster: Nodes hosts, Shards groups, each group placed on
// ReplicationFactor consecutive nodes. Tickers start immediately, so the
// first elections begin as soon as the simulation runs.
func New(env *Env, opts Options) *Cluster {
	opts.defaults()
	c := &Cluster{
		env:   env,
		opts:  opts,
		rng:   sim.NewRNG(opts.Seed).Fork(0x5245504C), // "REPL"
		calls: map[uint64]*call{},
	}
	c.net = newTransport(c, opts.LinkDelay)
	for i := 0; i < opts.Nodes; i++ {
		c.nodes = append(c.nodes, &node{c: c, id: i, running: true, groups: map[int]*group{}})
	}
	newSM := opts.NewSM
	if newSM == nil {
		newSM = func(int, int) StateMachine { return NewMemKV() }
	}
	for s := 0; s < opts.Shards; s++ {
		var members []int
		if opts.Members != nil {
			members = append(members, opts.Members(s)...)
		} else {
			for r := 0; r < opts.ReplicationFactor; r++ {
				members = append(members, (s+r)%opts.Nodes)
			}
		}
		c.routes = append(c.routes, &route{members: members, epoch: 1, leader: -1})
		// Every node hosts a group shell for every shard; only members
		// participate, but this lets resharding stream state to any node.
		for i := 0; i < opts.Nodes; i++ {
			c.nodes[i].groups[s] = newGroup(c, s, i, members, newSM(s, i))
		}
	}
	if opts.Registry != nil {
		c.gauges = newGauges(opts.Registry, opts.GaugePrefix, opts.Shards)
	}
	for i := range c.nodes {
		c.startTicker(i)
	}
	return c
}

func (c *Cluster) startTicker(id int) {
	n := c.nodes[id]
	c.env.Go(fmt.Sprintf("replica:tick:%d", id), func(p *sim.Proc) {
		for !c.stopped {
			p.Sleep(c.opts.TickInterval)
			if c.stopped {
				return
			}
			if !n.running {
				continue
			}
			for s := 0; s < c.opts.Shards; s++ {
				n.groups[s].tick(p)
			}
		}
	})
}

func (c *Cluster) nextMsgID() uint64 {
	c.msgID++
	return c.msgID
}

// Stop shuts the cluster down: tickers exit on their next tick, in-flight
// frames are dropped, and every waiting client unblocks with ErrStopped.
// Idempotent. After Stop the env can drain to completion without deadlock.
func (c *Cluster) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, n := range c.nodes {
		for _, g := range n.groups {
			g.failPending(ErrStopped, ErrStopped)
		}
	}
	for id, cl := range c.calls {
		cl.err = ErrStopped
		cl.ev.Signal()
		delete(c.calls, id)
	}
}

// --- fault injection --------------------------------------------------------

// Crash power-cuts a node: volatile consensus state is lost, persistent state
// (term, vote, log, snapshot) survives for Restart.
func (c *Cluster) Crash(id int) {
	n := c.nodes[id]
	if !n.running {
		return
	}
	n.running = false
	for s := 0; s < c.opts.Shards; s++ {
		g := n.groups[s]
		wasLeader := g.role == roleLeader
		g.crash()
		if wasLeader {
			c.noteStepDown(s, id)
		}
	}
}

// Restart brings a crashed node back: state machines restore from their
// snapshots and the logs replay as commit indexes re-advance.
func (c *Cluster) Restart(p *sim.Proc, id int) {
	n := c.nodes[id]
	if n.running {
		return
	}
	for s := 0; s < c.opts.Shards; s++ {
		n.groups[s].restart(p)
	}
	n.running = true
}

// Running reports whether the node is up.
func (c *Cluster) Running(id int) bool { return c.nodes[id].running }

// Partition severs the link between two nodes in both directions.
func (c *Cluster) Partition(a, b int) { c.net.cut(a, b) }

// Isolate severs every link touching the node.
func (c *Cluster) Isolate(id int) {
	for i := range c.nodes {
		if i != id {
			c.net.cut(id, i)
		}
	}
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.net.heal() }

// --- routing and introspection ----------------------------------------------

// routeApplied is called when a config entry is applied on any node: the
// highest epoch wins and atomically flips ownership for client routing.
func (c *Cluster) routeApplied(p *sim.Proc, shard int, e *wire.ReplicaEntry) {
	rt := c.routes[shard]
	if e.Epoch <= rt.epoch {
		return
	}
	rt.epoch = e.Epoch
	rt.members = rt.members[:0]
	for _, m := range e.Members {
		rt.members = append(rt.members, int(m))
	}
	if !containsInt(rt.members, rt.leader) {
		rt.leader = -1
	}
	if c.gauges != nil {
		c.gauges.epoch[shard].Set(float64(e.Epoch))
	}
}

// Leader returns the routing layer's current leader hint for a shard (-1
// when no leader has been observed since the last failover).
func (c *Cluster) Leader(shard int) int { return c.routes[shard].leader }

// Members returns the routing layer's current member set for a shard.
func (c *Cluster) Members(shard int) []int {
	return append([]int(nil), c.routes[shard].members...)
}

// Epoch returns the shard's current config epoch.
func (c *Cluster) Epoch(shard int) uint64 { return c.routes[shard].epoch }

// WaitLeader blocks until some node leads the shard with a committed entry
// of its own term (i.e. it can serve reads), returning its ID.
func (c *Cluster) WaitLeader(p *sim.Proc, shard int) (int, error) {
	for try := 0; try < 10000; try++ {
		if c.stopped {
			return -1, ErrStopped
		}
		for _, id := range c.routes[shard].members {
			g := c.nodes[id].groups[shard]
			if c.nodes[id].running && g.role == roleLeader && g.termAt(g.commit) == g.term {
				return id, nil
			}
		}
		p.Sleep(c.opts.TickInterval)
	}
	return -1, ErrNoLeader
}

// RouteTable renders the cluster's shard-ownership view as wire ring entries
// for Stats reports and inspection tools.
func (c *Cluster) RouteTable(keyspace string) []wire.RingEntry {
	out := make([]wire.RingEntry, 0, len(c.routes))
	for s, rt := range c.routes {
		out = append(out, wire.RingEntry{
			Keyspace: keyspace,
			Shard:    uint32(s),
			Epoch:    rt.epoch,
			Leader:   int32(rt.leader),
			Members:  memberList(rt.members),
		})
	}
	return out
}

// FramesSent, FramesDropped, BytesSent expose transport counters.
func (c *Cluster) FramesSent() int64    { return c.net.framesSent }
func (c *Cluster) FramesDropped() int64 { return c.net.framesDropped }
func (c *Cluster) BytesSent() int64     { return c.net.bytesSent }

// Elections returns the number of elections started across all shards.
func (c *Cluster) Elections() int64 { return c.elections }

// --- gauge plumbing ---------------------------------------------------------

type gauges struct {
	leader     []*sim.Gauge
	term       []*sim.Gauge
	epoch      []*sim.Gauge
	commit     []*sim.Gauge
	elections  *sim.Gauge
	snapshots  *sim.Gauge
	stepdowns  *sim.Gauge
	migrations *sim.Gauge
}

func newGauges(reg *obs.Registry, prefix string, shards int) *gauges {
	g := &gauges{
		elections:  reg.Gauge(prefix + "replica.elections_total"),
		snapshots:  reg.Gauge(prefix + "replica.snapshots_total"),
		stepdowns:  reg.Gauge(prefix + "replica.stepdowns_total"),
		migrations: reg.Gauge(prefix + "replica.migrations_total"),
	}
	for s := 0; s < shards; s++ {
		lg := reg.Gauge(fmt.Sprintf("%sreplica.shard%d.leader", prefix, s))
		lg.Set(-1)
		g.leader = append(g.leader, lg)
		g.term = append(g.term, reg.Gauge(fmt.Sprintf("%sreplica.shard%d.term", prefix, s)))
		eg := reg.Gauge(fmt.Sprintf("%sreplica.shard%d.epoch", prefix, s))
		eg.Set(1)
		g.epoch = append(g.epoch, eg)
		g.commit = append(g.commit, reg.Gauge(fmt.Sprintf("%sreplica.shard%d.commit", prefix, s)))
	}
	return g
}

func (c *Cluster) countElection(shard int) {
	c.elections++
	if c.gauges != nil {
		c.gauges.elections.Add(1)
	}
}

func (c *Cluster) countSnapshot(shard int) {
	c.snapshots++
	if c.gauges != nil {
		c.gauges.snapshots.Add(1)
	}
}

func (c *Cluster) noteLeader(shard, id int, term uint64) {
	c.routes[shard].leader = id
	if c.gauges != nil {
		c.gauges.leader[shard].Set(float64(id))
		c.gauges.term[shard].Set(float64(term))
	}
}

func (c *Cluster) noteStepDown(shard, id int) {
	if c.routes[shard].leader == id {
		c.routes[shard].leader = -1
		if c.gauges != nil {
			c.gauges.leader[shard].Set(-1)
		}
	}
	if c.gauges != nil {
		c.gauges.stepdowns.Add(1)
	}
}

func (c *Cluster) noteCommit(shard, id int) {
	if c.gauges != nil && c.routes[shard].leader == id {
		g := c.nodes[id].groups[shard]
		c.gauges.commit[shard].Set(float64(g.commit))
	}
}

// --- client sessions --------------------------------------------------------

// Session is a client identity with its own sequence counter. Operations
// retry across leader changes; a retry reuses the operation's sequence
// number, so the session dedup table makes the retry exactly-once.
type Session struct {
	c       *Cluster
	id      uint64
	seq     uint64
	rrNext  int
	rng     *sim.RNG
	backoff sim.Duration
}

// Client returns a session for the given non-zero client identity.
func (c *Cluster) Client(id uint64) *Session {
	if id == 0 {
		panic("replica: client id must be non-zero")
	}
	return &Session{
		c:       c,
		id:      id,
		rng:     c.rng.Fork(int64(id)),
		backoff: c.opts.HeartbeatInterval,
	}
}

// Put replicates a write through the shard's leader, returning once a quorum
// has committed and the leader has applied it.
func (s *Session) Put(p *sim.Proc, shard int, key, value []byte) error {
	s.seq++
	return s.mutate(p, shard, wire.ReplicaEntry{
		Kind: entryPut, Client: s.id, Seq: s.seq, Key: key, Value: value,
	})
}

// Delete replicates a tombstone.
func (s *Session) Delete(p *sim.Proc, shard int, key []byte) error {
	s.seq++
	return s.mutate(p, shard, wire.ReplicaEntry{
		Kind: entryDelete, Client: s.id, Seq: s.seq, Key: key,
	})
}

func (s *Session) mutate(p *sim.Proc, shard int, e wire.ReplicaEntry) error {
	var lastErr error = ErrNoLeader
	// Once any attempt ends ambiguously the whole operation is ambiguous:
	// that attempt's entry may commit later, so no subsequent definite
	// rejection can prove the op never applied.
	ambiguous := false
	fail := func(err error) error {
		if ambiguous && Definite(err) {
			return ErrUnknown
		}
		return err
	}
	for attempt := 0; attempt < s.c.opts.RetryAttempts; attempt++ {
		if s.c.stopped {
			return fail(ErrStopped)
		}
		g := s.pickGroup(shard, lastErr)
		if g == nil {
			lastErr = ErrNoLeader
			s.pause(p, attempt)
			continue
		}
		pd, err := g.propose(p, e)
		if err == nil && pd == nil {
			return nil
		}
		if err == nil {
			p.Wait(pd.ev)
			err = pd.err
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !Definite(err) {
			ambiguous = true
		}
		if err == ErrStopped {
			return fail(err)
		}
		s.pause(p, attempt)
	}
	return fail(lastErr)
}

// Get performs a linearizable read via the leader's read-index (or a stale
// local read when the cluster was built with UnsafeStaleReads).
func (s *Session) Get(p *sim.Proc, shard int, key []byte) ([]byte, bool, error) {
	var lastErr error = ErrNoLeader
	for attempt := 0; attempt < s.c.opts.RetryAttempts; attempt++ {
		if s.c.stopped {
			return nil, false, ErrStopped
		}
		g := s.pickGroup(shard, lastErr)
		if g == nil {
			lastErr = ErrNoLeader
			s.pause(p, attempt)
			continue
		}
		if s.c.opts.UnsafeStaleReads {
			// Broken mode: read whichever replica rotation lands on, no
			// quorum round — exactly the stale-read bug the checker exists
			// to catch.
			rt := s.c.routes[shard]
			s.rrNext++
			g = s.c.nodes[rt.members[s.rrNext%len(rt.members)]].groups[shard]
			v, found, err := g.unsafeRead(p, key)
			if err == nil {
				return v, found, nil
			}
			lastErr = err
			s.pause(p, attempt)
			continue
		}
		rd, err := g.read(p, key)
		if err == nil {
			p.Wait(rd.ev)
			if rd.err == nil {
				return rd.value, rd.found, nil
			}
			err = rd.err
		}
		lastErr = err
		if err == ErrStopped {
			return nil, false, err
		}
		s.pause(p, attempt)
	}
	return nil, false, lastErr
}

// pickGroup chooses which node to contact for a shard: the leader hint from
// the previous error or the routing table when available, otherwise the
// members in rotation.
func (s *Session) pickGroup(shard int, lastErr error) *group {
	rt := s.c.routes[shard]
	if len(rt.members) == 0 {
		return nil
	}
	target := -1
	if nl, ok := lastErr.(*NotLeaderError); ok && nl.Hint >= 0 &&
		containsInt(rt.members, nl.Hint) && s.c.nodes[nl.Hint].running {
		target = nl.Hint
	} else if rt.leader >= 0 && containsInt(rt.members, rt.leader) && s.c.nodes[rt.leader].running {
		target = rt.leader
	} else {
		s.rrNext++
		target = rt.members[s.rrNext%len(rt.members)]
	}
	return s.c.nodes[target].groups[shard]
}

// pause backs off between attempts with jitter, growing with the attempt
// count so retry storms during elections settle quickly.
func (s *Session) pause(p *sim.Proc, attempt int) {
	d := s.backoff * sim.Duration(1+attempt/4)
	jitter := sim.Duration(s.rng.Int63() % int64(s.backoff))
	p.Sleep(d + jitter)
}

func containsInt(v []int, x int) bool {
	for _, e := range v {
		if e == x {
			return true
		}
	}
	return false
}
