package replica

import (
	"bytes"
	"fmt"
	"testing"

	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// run drives fn inside a fresh simulation with a cluster built from opts,
// stopping the cluster when fn returns so the env drains cleanly.
func run(t *testing.T, opts Options, fn func(p *sim.Proc, c *Cluster)) {
	t.Helper()
	env := sim.NewEnv()
	c := New(env, opts)
	env.Go("test", func(p *sim.Proc) {
		defer c.Stop()
		fn(p, c)
	})
	env.Run()
}

func TestElectionAndReplication(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 1}, func(p *sim.Proc, c *Cluster) {
		leader, err := c.WaitLeader(p, 0)
		if err != nil {
			t.Fatalf("WaitLeader: %v", err)
		}
		if leader < 0 || leader > 2 {
			t.Fatalf("bad leader %d", leader)
		}
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("k"), []byte("v1")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		v, found, err := s.Get(p, 0, []byte("k"))
		if err != nil || !found || !bytes.Equal(v, []byte("v1")) {
			t.Fatalf("Get = %q,%v,%v", v, found, err)
		}
		if err := s.Delete(p, 0, []byte("k")); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, found, _ := s.Get(p, 0, []byte("k")); found {
			t.Fatalf("key survived delete")
		}
		// The write replicated to a quorum; check the followers actually hold
		// the entries by killing the leader and reading from the survivors.
		c.Crash(leader)
		if err := s.Put(p, 0, []byte("k2"), []byte("v2")); err != nil {
			t.Fatalf("Put after leader crash: %v", err)
		}
		v, found, err = s.Get(p, 0, []byte("k2"))
		if err != nil || !found || !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("Get after failover = %q,%v,%v", v, found, err)
		}
	})
}

func TestDeterministicElections(t *testing.T) {
	outcome := func(seed int64) string {
		var s string
		run(t, Options{Nodes: 5, Shards: 2, ReplicationFactor: 3, Seed: seed}, func(p *sim.Proc, c *Cluster) {
			l0, err0 := c.WaitLeader(p, 0)
			l1, err1 := c.WaitLeader(p, 1)
			s = fmt.Sprintf("%d/%v %d/%v elections=%d at=%v", l0, err0, l1, err1, c.Elections(), p.Now())
		})
		return s
	}
	a, b := outcome(7), outcome(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

func TestLeaderCrashFailover(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 3}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		for i := 0; i < 5; i++ {
			if err := s.Put(p, 0, []byte{byte(i)}, []byte{byte(i)}); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
		old, _ := c.WaitLeader(p, 0)
		c.Crash(old)
		next, err := c.WaitLeader(p, 0)
		if err != nil {
			t.Fatalf("no new leader: %v", err)
		}
		if next == old {
			t.Fatalf("crashed node still leading")
		}
		for i := 0; i < 5; i++ {
			v, found, err := s.Get(p, 0, []byte{byte(i)})
			if err != nil || !found || !bytes.Equal(v, []byte{byte(i)}) {
				t.Fatalf("lost key %d after failover: %q,%v,%v", i, v, found, err)
			}
		}
		// Bring the old leader back; it must catch up, not corrupt.
		c.Restart(p, old)
		if err := s.Put(p, 0, []byte("after"), []byte("restart")); err != nil {
			t.Fatalf("Put after restart: %v", err)
		}
	})
}

func TestIsolatedLeaderStepsDown(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 5}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		old, _ := c.WaitLeader(p, 0)
		c.Isolate(old)
		// The majority side elects a new leader and keeps accepting writes.
		if err := s.Put(p, 0, []byte("k"), []byte("v2")); err != nil {
			t.Fatalf("Put during partition: %v", err)
		}
		next, err := c.WaitLeader(p, 0)
		if err != nil || next == old {
			t.Fatalf("majority did not elect around isolated leader: %d, %v", next, err)
		}
		// CheckQuorum: the isolated node must have stepped down by now.
		if g := c.nodes[old].groups[0]; g.role == roleLeader {
			t.Fatalf("isolated node still thinks it leads")
		}
		c.Heal()
		v, found, err := s.Get(p, 0, []byte("k"))
		if err != nil || !found || !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("Get after heal = %q,%v,%v", v, found, err)
		}
	})
}

func TestRetryAfterUnknownIsExactlyOnce(t *testing.T) {
	// A leader that loses quorum mid-proposal fails the op with ErrUnknown;
	// the session retries with the same seq. If the entry did commit, dedup
	// must turn the retry into a no-op rather than a double apply. We force
	// the scenario by partitioning the leader right after propose.
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 11}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("ctr"), []byte{1}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		leader, _ := c.WaitLeader(p, 0)
		g := c.nodes[leader].groups[0]
		// Propose directly, then immediately isolate the leader so the ack
		// path is severed; the entry may or may not reach a follower first.
		s.seq++
		pd, err := g.propose(p, entryFor(s.id, s.seq, []byte("ctr"), []byte{2}))
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		c.Isolate(leader)
		if pd != nil {
			p.Wait(pd.ev)
		}
		c.Heal()
		// Retry with the same seq until it lands.
		if err := s.mutate(p, 0, entryFor(s.id, s.seq, []byte("ctr"), []byte{2})); err != nil {
			t.Fatalf("retry: %v", err)
		}
		v, found, err := s.Get(p, 0, []byte("ctr"))
		if err != nil || !found || !bytes.Equal(v, []byte{2}) {
			t.Fatalf("Get = %q,%v,%v", v, found, err)
		}
	})
}

func entryFor(client, seq uint64, key, value []byte) wire.ReplicaEntry {
	return wire.ReplicaEntry{Kind: entryPut, Client: client, Seq: seq, Key: key, Value: value}
}

func TestMoveShard(t *testing.T) {
	run(t, Options{Nodes: 4, Shards: 1, ReplicationFactor: 3, Seed: 13}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		for i := 0; i < 300; i++ {
			if err := s.Put(p, 0, []byte(fmt.Sprintf("key-%03d", i)), []byte{byte(i)}); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
		members := c.Members(0)
		if containsInt(members, 3) {
			t.Fatalf("node 3 unexpectedly already a member: %v", members)
		}
		from := members[0]
		epochBefore := c.Epoch(0)
		if err := c.MoveShard(p, 0, from, 3); err != nil {
			t.Fatalf("MoveShard: %v", err)
		}
		after := c.Members(0)
		if !containsInt(after, 3) || containsInt(after, from) {
			t.Fatalf("ownership did not flip: %v -> %v", members, after)
		}
		if c.Epoch(0) <= epochBefore {
			t.Fatalf("epoch did not advance: %d -> %d", epochBefore, c.Epoch(0))
		}
		// All data must survive the move, including through the new member.
		for i := 0; i < 300; i++ {
			v, found, err := s.Get(p, 0, []byte(fmt.Sprintf("key-%03d", i)))
			if err != nil || !found || !bytes.Equal(v, []byte{byte(i)}) {
				t.Fatalf("lost key %d after move: %q,%v,%v", i, v, found, err)
			}
		}
		// And writes keep working in the new config.
		if err := s.Put(p, 0, []byte("post-move"), []byte("ok")); err != nil {
			t.Fatalf("Put after move: %v", err)
		}
	})
}

func TestMoveShardSurvivesMidMigrationPowerCut(t *testing.T) {
	run(t, Options{Nodes: 4, Shards: 1, ReplicationFactor: 3, Seed: 17}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		for i := 0; i < 400; i++ {
			if err := s.Put(p, 0, []byte(fmt.Sprintf("key-%03d", i)), []byte{byte(i)}); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
		members := c.Members(0)
		from := members[0]
		// Power-cut the migration target shortly after the stream starts.
		c.env.Go("nemesis", func(np *sim.Proc) {
			np.Sleep(c.opts.LinkDelay * 2)
			c.Crash(3)
			np.Sleep(c.opts.ElectionTimeout * 20)
			if !c.stopped {
				c.Restart(np, 3)
			}
		})
		err := c.MoveShard(p, 0, from, 3)
		if err != nil {
			// The move failed cleanly; ownership must be unchanged or the
			// safe intermediate config, and data must be intact.
			cur := c.Members(0)
			for _, m := range members {
				if !containsInt(cur, m) && m != from {
					t.Fatalf("member %d vanished after failed move: %v", m, cur)
				}
			}
		}
		for i := 0; i < 400; i++ {
			v, found, gerr := s.Get(p, 0, []byte(fmt.Sprintf("key-%03d", i)))
			if gerr != nil || !found || !bytes.Equal(v, []byte{byte(i)}) {
				t.Fatalf("lost key %d (move err=%v): %q,%v,%v", i, err, v, found, gerr)
			}
		}
	})
}

func TestGaugesPublished(t *testing.T) {
	env := sim.NewEnv()
	reg := obs.NewRegistry(env)
	c := New(env, Options{Nodes: 3, Shards: 2, ReplicationFactor: 3, Seed: 19, Registry: reg})
	env.Go("test", func(p *sim.Proc) {
		defer c.Stop()
		if _, err := c.WaitLeader(p, 0); err != nil {
			t.Errorf("WaitLeader: %v", err)
		}
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("k"), []byte("v")); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	env.Run()
	if g := reg.LookupGauge("replica.shard0.leader"); g == nil || g.Value() < 0 {
		t.Fatalf("leader gauge missing or unset: %+v", g)
	}
	if g := reg.LookupGauge("replica.elections_total"); g == nil || g.Value() < 1 {
		t.Fatalf("elections gauge missing or zero")
	}
	if g := reg.LookupGauge("replica.shard0.commit"); g == nil || g.Value() < 1 {
		t.Fatalf("commit gauge missing or zero")
	}
}

func TestRouteTable(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 2, ReplicationFactor: 2, Seed: 23}, func(p *sim.Proc, c *Cluster) {
		if _, err := c.WaitLeader(p, 0); err != nil {
			t.Fatalf("WaitLeader: %v", err)
		}
		ring := c.RouteTable("atoms")
		if len(ring) != 2 {
			t.Fatalf("ring entries = %d, want 2", len(ring))
		}
		for _, e := range ring {
			if e.Keyspace != "atoms" || len(e.Members) != 2 || e.Epoch != 1 {
				t.Fatalf("bad ring entry %+v", e)
			}
		}
		if ring[0].Leader < 0 {
			t.Fatalf("shard 0 leader hint missing after WaitLeader")
		}
	})
}

func TestWireTrafficIsReal(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 29}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if c.FramesSent() == 0 || c.BytesSent() == 0 {
			t.Fatalf("no wire frames moved: sent=%d bytes=%d", c.FramesSent(), c.BytesSent())
		}
	})
}
