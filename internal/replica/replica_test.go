package replica

import (
	"bytes"
	"fmt"
	"testing"

	"kvcsd/internal/nvme"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// run drives fn inside a fresh simulation with a cluster built from opts,
// stopping the cluster when fn returns so the env drains cleanly.
func run(t *testing.T, opts Options, fn func(p *sim.Proc, c *Cluster)) {
	t.Helper()
	env := sim.NewEnv()
	c := New(env, opts)
	env.Go("test", func(p *sim.Proc) {
		defer c.Stop()
		fn(p, c)
	})
	env.Run()
}

func TestElectionAndReplication(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 1}, func(p *sim.Proc, c *Cluster) {
		leader, err := c.WaitLeader(p, 0)
		if err != nil {
			t.Fatalf("WaitLeader: %v", err)
		}
		if leader < 0 || leader > 2 {
			t.Fatalf("bad leader %d", leader)
		}
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("k"), []byte("v1")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		v, found, err := s.Get(p, 0, []byte("k"))
		if err != nil || !found || !bytes.Equal(v, []byte("v1")) {
			t.Fatalf("Get = %q,%v,%v", v, found, err)
		}
		if err := s.Delete(p, 0, []byte("k")); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, found, _ := s.Get(p, 0, []byte("k")); found {
			t.Fatalf("key survived delete")
		}
		// The write replicated to a quorum; check the followers actually hold
		// the entries by killing the leader and reading from the survivors.
		c.Crash(leader)
		if err := s.Put(p, 0, []byte("k2"), []byte("v2")); err != nil {
			t.Fatalf("Put after leader crash: %v", err)
		}
		v, found, err = s.Get(p, 0, []byte("k2"))
		if err != nil || !found || !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("Get after failover = %q,%v,%v", v, found, err)
		}
	})
}

func TestDeterministicElections(t *testing.T) {
	outcome := func(seed int64) string {
		var s string
		run(t, Options{Nodes: 5, Shards: 2, ReplicationFactor: 3, Seed: seed}, func(p *sim.Proc, c *Cluster) {
			l0, err0 := c.WaitLeader(p, 0)
			l1, err1 := c.WaitLeader(p, 1)
			s = fmt.Sprintf("%d/%v %d/%v elections=%d at=%v", l0, err0, l1, err1, c.Elections(), p.Now())
		})
		return s
	}
	a, b := outcome(7), outcome(7)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

func TestLeaderCrashFailover(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 3}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		for i := 0; i < 5; i++ {
			if err := s.Put(p, 0, []byte{byte(i)}, []byte{byte(i)}); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
		old, _ := c.WaitLeader(p, 0)
		c.Crash(old)
		next, err := c.WaitLeader(p, 0)
		if err != nil {
			t.Fatalf("no new leader: %v", err)
		}
		if next == old {
			t.Fatalf("crashed node still leading")
		}
		for i := 0; i < 5; i++ {
			v, found, err := s.Get(p, 0, []byte{byte(i)})
			if err != nil || !found || !bytes.Equal(v, []byte{byte(i)}) {
				t.Fatalf("lost key %d after failover: %q,%v,%v", i, v, found, err)
			}
		}
		// Bring the old leader back; it must catch up, not corrupt.
		c.Restart(p, old)
		if err := s.Put(p, 0, []byte("after"), []byte("restart")); err != nil {
			t.Fatalf("Put after restart: %v", err)
		}
	})
}

func TestIsolatedLeaderStepsDown(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 5}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		old, _ := c.WaitLeader(p, 0)
		c.Isolate(old)
		// The majority side elects a new leader and keeps accepting writes.
		if err := s.Put(p, 0, []byte("k"), []byte("v2")); err != nil {
			t.Fatalf("Put during partition: %v", err)
		}
		next, err := c.WaitLeader(p, 0)
		if err != nil || next == old {
			t.Fatalf("majority did not elect around isolated leader: %d, %v", next, err)
		}
		// CheckQuorum: the isolated node must have stepped down by now.
		if g := c.nodes[old].groups[0]; g.role == roleLeader {
			t.Fatalf("isolated node still thinks it leads")
		}
		c.Heal()
		v, found, err := s.Get(p, 0, []byte("k"))
		if err != nil || !found || !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("Get after heal = %q,%v,%v", v, found, err)
		}
	})
}

func TestRetryAfterUnknownIsExactlyOnce(t *testing.T) {
	// A leader that loses quorum mid-proposal fails the op with ErrUnknown;
	// the session retries with the same seq. If the entry did commit, dedup
	// must turn the retry into a no-op rather than a double apply. We force
	// the scenario by partitioning the leader right after propose.
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 11}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("ctr"), []byte{1}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		leader, _ := c.WaitLeader(p, 0)
		g := c.nodes[leader].groups[0]
		// Propose directly, then immediately isolate the leader so the ack
		// path is severed; the entry may or may not reach a follower first.
		s.seq++
		pd, err := g.propose(p, entryFor(s.id, s.seq, []byte("ctr"), []byte{2}))
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		c.Isolate(leader)
		if pd != nil {
			p.Wait(pd.ev)
		}
		c.Heal()
		// Retry with the same seq until it lands.
		if err := s.mutate(p, 0, entryFor(s.id, s.seq, []byte("ctr"), []byte{2})); err != nil {
			t.Fatalf("retry: %v", err)
		}
		v, found, err := s.Get(p, 0, []byte("ctr"))
		if err != nil || !found || !bytes.Equal(v, []byte{2}) {
			t.Fatalf("Get = %q,%v,%v", v, found, err)
		}
	})
}

func entryFor(client, seq uint64, key, value []byte) wire.ReplicaEntry {
	return wire.ReplicaEntry{Kind: entryPut, Client: client, Seq: seq, Key: key, Value: value}
}

func TestMoveShard(t *testing.T) {
	run(t, Options{Nodes: 4, Shards: 1, ReplicationFactor: 3, Seed: 13}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		for i := 0; i < 300; i++ {
			if err := s.Put(p, 0, []byte(fmt.Sprintf("key-%03d", i)), []byte{byte(i)}); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
		members := c.Members(0)
		if containsInt(members, 3) {
			t.Fatalf("node 3 unexpectedly already a member: %v", members)
		}
		from := members[0]
		epochBefore := c.Epoch(0)
		if err := c.MoveShard(p, 0, from, 3); err != nil {
			t.Fatalf("MoveShard: %v", err)
		}
		after := c.Members(0)
		if !containsInt(after, 3) || containsInt(after, from) {
			t.Fatalf("ownership did not flip: %v -> %v", members, after)
		}
		if c.Epoch(0) <= epochBefore {
			t.Fatalf("epoch did not advance: %d -> %d", epochBefore, c.Epoch(0))
		}
		// All data must survive the move, including through the new member.
		for i := 0; i < 300; i++ {
			v, found, err := s.Get(p, 0, []byte(fmt.Sprintf("key-%03d", i)))
			if err != nil || !found || !bytes.Equal(v, []byte{byte(i)}) {
				t.Fatalf("lost key %d after move: %q,%v,%v", i, v, found, err)
			}
		}
		// And writes keep working in the new config.
		if err := s.Put(p, 0, []byte("post-move"), []byte("ok")); err != nil {
			t.Fatalf("Put after move: %v", err)
		}
	})
}

func TestMoveShardSurvivesMidMigrationPowerCut(t *testing.T) {
	run(t, Options{Nodes: 4, Shards: 1, ReplicationFactor: 3, Seed: 17}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		for i := 0; i < 400; i++ {
			if err := s.Put(p, 0, []byte(fmt.Sprintf("key-%03d", i)), []byte{byte(i)}); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
		members := c.Members(0)
		from := members[0]
		// Power-cut the migration target shortly after the stream starts.
		c.env.Go("nemesis", func(np *sim.Proc) {
			np.Sleep(c.opts.LinkDelay * 2)
			c.Crash(3)
			np.Sleep(c.opts.ElectionTimeout * 20)
			if !c.stopped {
				c.Restart(np, 3)
			}
		})
		err := c.MoveShard(p, 0, from, 3)
		if err != nil {
			// The move failed cleanly; ownership must be unchanged or the
			// safe intermediate config, and data must be intact.
			cur := c.Members(0)
			for _, m := range members {
				if !containsInt(cur, m) && m != from {
					t.Fatalf("member %d vanished after failed move: %v", m, cur)
				}
			}
		}
		for i := 0; i < 400; i++ {
			v, found, gerr := s.Get(p, 0, []byte(fmt.Sprintf("key-%03d", i)))
			if gerr != nil || !found || !bytes.Equal(v, []byte{byte(i)}) {
				t.Fatalf("lost key %d (move err=%v): %q,%v,%v", i, err, v, found, gerr)
			}
		}
	})
}

func TestSnapshotCatchUpAfterPostMigrationFailover(t *testing.T) {
	// Regression: a leader whose log base > 0 (it installed a migration
	// snapshot) must be able to bring a behind follower back with a catch-up
	// snapshot whose ack actually reaches it — otherwise next[] never
	// advances, the follower never acks, and the group stalls as soon as the
	// quorum depends on that follower.
	run(t, Options{Nodes: 4, Shards: 1, ReplicationFactor: 3, Seed: 31}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		for i := 0; i < 50; i++ {
			if err := s.Put(p, 0, []byte(fmt.Sprintf("key-%03d", i)), []byte{byte(i)}); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
		leader, err := c.WaitLeader(p, 0)
		if err != nil {
			t.Fatalf("WaitLeader: %v", err)
		}
		var behind, other = -1, -1
		for _, m := range c.Members(0) {
			if m == leader {
				continue
			}
			if behind < 0 {
				behind = m
			} else {
				other = m
			}
		}
		// Cut one follower dark, then write entries it will never see.
		c.Crash(behind)
		for i := 50; i < 200; i++ {
			if err := s.Put(p, 0, []byte(fmt.Sprintf("key-%03d", i)), []byte{byte(i)}); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
		// Reshard the remaining follower's seat to node 3: node 3 installs a
		// migration snapshot, so its log base covers everything `behind` lacks.
		if err := c.MoveShard(p, 0, other, 3); err != nil {
			t.Fatalf("MoveShard: %v", err)
		}
		// Kill the old leader and bring `behind` back. Node 3 holds the only
		// complete log among running members, so it must win the election —
		// and committing anything then requires `behind`, which can only
		// catch up through a leader-initiated snapshot.
		c.Crash(leader)
		c.Restart(p, behind)
		nl, err := c.WaitLeader(p, 0)
		if err != nil {
			t.Fatalf("no leader after failover (snapshot acks lost?): %v", err)
		}
		if nl != 3 {
			t.Fatalf("leader = %d, want the migrated node 3", nl)
		}
		if err := s.Put(p, 0, []byte("post-failover"), []byte("ok")); err != nil {
			t.Fatalf("Put needing snapshot-caught-up quorum: %v", err)
		}
		v, found, err := s.Get(p, 0, []byte("key-120"))
		if err != nil || !found || !bytes.Equal(v, []byte{120}) {
			t.Fatalf("Get key-120 after catch-up = %q,%v,%v", v, found, err)
		}
		if c.snapshots == 0 {
			t.Fatalf("no catch-up snapshot was sent; follower caught up some other way")
		}
		if g := c.nodes[behind].groups[0]; g.base == 0 {
			t.Fatalf("behind follower never installed the catch-up snapshot")
		}
	})
}

func TestMigrateStagingIsolatedPerStream(t *testing.T) {
	// Regression: staged chunks from an aborted stream must not leak into a
	// later install, and a refused Done chunk must clear the staging area.
	run(t, Options{Nodes: 2, Shards: 1, ReplicationFactor: 1, Seed: 37}, func(p *sim.Proc, c *Cluster) {
		g := c.nodes[1].groups[0] // non-member shell, as a reshard target
		chunk := func(stream uint64, done bool, snapIndex uint64, key string) {
			g.handleMigrate(p, &wire.Request{
				Op:    wire.OpMigrate,
				Pairs: []nvme.KVPair{{Key: []byte(key), Value: []byte(key)}},
				Replica: &wire.ReplicaMsg{
					Shard: 0, From: 0, Stream: stream,
					Done: done, SnapIndex: snapIndex, SnapTerm: 1,
				},
			})
		}
		has := func(key string) bool {
			_, found, err := g.sm.Lookup(p, []byte(key))
			if err != nil {
				t.Fatalf("Lookup %q: %v", key, err)
			}
			return found
		}
		// Stream 100 aborts after one chunk; stream 200 installs.
		chunk(100, false, 0, "stale")
		chunk(200, true, 5, "fresh")
		if has("stale") || !has("fresh") {
			t.Fatalf("aborted stream leaked into install: stale=%v fresh=%v", has("stale"), has("fresh"))
		}
		// Stream 300's Done is refused (SnapIndex 2 < applied 5): its staged
		// chunk must be dropped, not merged into the next stream's install.
		chunk(300, false, 0, "ghost")
		chunk(300, true, 2, "ghost2")
		if len(g.staging) != 0 {
			t.Fatalf("refused install left %d staged pairs", len(g.staging))
		}
		chunk(400, true, 9, "solid")
		if has("ghost") || has("ghost2") || !has("solid") {
			t.Fatalf("refused stream resurrected pairs: ghost=%v ghost2=%v solid=%v",
				has("ghost"), has("ghost2"), has("solid"))
		}
	})
}

func TestGaugesPublished(t *testing.T) {
	env := sim.NewEnv()
	reg := obs.NewRegistry(env)
	c := New(env, Options{Nodes: 3, Shards: 2, ReplicationFactor: 3, Seed: 19, Registry: reg})
	env.Go("test", func(p *sim.Proc) {
		defer c.Stop()
		if _, err := c.WaitLeader(p, 0); err != nil {
			t.Errorf("WaitLeader: %v", err)
		}
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("k"), []byte("v")); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	env.Run()
	if g := reg.LookupGauge("replica.shard0.leader"); g == nil || g.Value() < 0 {
		t.Fatalf("leader gauge missing or unset: %+v", g)
	}
	if g := reg.LookupGauge("replica.elections_total"); g == nil || g.Value() < 1 {
		t.Fatalf("elections gauge missing or zero")
	}
	if g := reg.LookupGauge("replica.shard0.commit"); g == nil || g.Value() < 1 {
		t.Fatalf("commit gauge missing or zero")
	}
}

func TestRouteTable(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 2, ReplicationFactor: 2, Seed: 23}, func(p *sim.Proc, c *Cluster) {
		if _, err := c.WaitLeader(p, 0); err != nil {
			t.Fatalf("WaitLeader: %v", err)
		}
		ring := c.RouteTable("atoms")
		if len(ring) != 2 {
			t.Fatalf("ring entries = %d, want 2", len(ring))
		}
		for _, e := range ring {
			if e.Keyspace != "atoms" || len(e.Members) != 2 || e.Epoch != 1 {
				t.Fatalf("bad ring entry %+v", e)
			}
		}
		if ring[0].Leader < 0 {
			t.Fatalf("shard 0 leader hint missing after WaitLeader")
		}
	})
}

func TestWireTrafficIsReal(t *testing.T) {
	run(t, Options{Nodes: 3, Shards: 1, ReplicationFactor: 3, Seed: 29}, func(p *sim.Proc, c *Cluster) {
		s := c.Client(1)
		if err := s.Put(p, 0, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if c.FramesSent() == 0 || c.BytesSent() == 0 {
			t.Fatalf("no wire frames moved: sent=%d bytes=%d", c.FramesSent(), c.BytesSent())
		}
	})
}
