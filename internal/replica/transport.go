package replica

import (
	"bytes"
	"fmt"

	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// Local aliases for the wire-level entry kinds, so group logic reads cleanly.
const (
	entryNop    = wire.EntryNop
	entryPut    = wire.EntryPut
	entryDelete = wire.EntryDelete
	entryConfig = wire.EntryConfig
)

// transport moves consensus frames between nodes over simulated links. Every
// message is encoded to a real wire frame on send and decoded on delivery, so
// the bytes counted here are the bytes a physical deployment would move, and
// a frame a partition drops is a frame the protocol never saw.
type transport struct {
	c     *Cluster
	delay sim.Duration

	// blocked holds directed (from, to) pairs a partition currently severs.
	blocked map[[2]int]bool

	framesSent    int64
	framesDropped int64
	bytesSent     int64
}

func newTransport(c *Cluster, delay sim.Duration) *transport {
	return &transport{c: c, delay: delay, blocked: map[[2]int]bool{}}
}

func (t *transport) cut(a, b int) {
	t.blocked[[2]int{a, b}] = true
	t.blocked[[2]int{b, a}] = true
}

func (t *transport) heal() { t.blocked = map[[2]int]bool{} }

func (t *transport) severed(from, to int) bool { return t.blocked[[2]int{from, to}] }

// sendRequest frames and ships a consensus request from node `from` to node
// `to`; delivery happens one link delay later unless the link is severed or
// the target is down at delivery time.
func (t *transport) sendRequest(from, to int, req *wire.Request) {
	frame := wire.AppendFrame(nil, wire.KindRequest, req.Op, 0, req.ID, wire.EncodeRequest(req))
	t.ship(from, to, frame)
}

// sendResponse frames and ships a consensus reply.
func (t *transport) sendResponse(from, to int, resp *wire.Response) {
	frame := wire.AppendFrame(nil, wire.KindResponse, resp.Op, 0, resp.ID, wire.EncodeResponse(resp))
	t.ship(from, to, frame)
}

func (t *transport) ship(from, to int, frame []byte) {
	c := t.c
	if c.stopped || from == to || to < 0 || to >= len(c.nodes) {
		return
	}
	if t.severed(from, to) || !c.nodes[from].running {
		t.framesDropped++
		return
	}
	t.framesSent++
	t.bytesSent += int64(len(frame))
	c.env.Go(fmt.Sprintf("replica:net:%d->%d", from, to), func(p *sim.Proc) {
		p.Sleep(t.delay)
		if c.stopped || t.severed(from, to) || !c.nodes[to].running {
			t.framesDropped++
			return
		}
		c.nodes[to].deliver(p, frame)
	})
}

// deliver decodes one frame on the receiving node and dispatches it to the
// shard group it names. Malformed frames are dropped, exactly as a gateway
// would drop them.
func (n *node) deliver(p *sim.Proc, frame []byte) {
	h, payload, err := wire.ReadFrame(bytes.NewReader(frame))
	if err != nil {
		n.c.net.framesDropped++
		return
	}
	switch h.Kind {
	case wire.KindRequest:
		req, err := wire.DecodeRequest(h, payload)
		if err != nil || req.Replica == nil {
			n.c.net.framesDropped++
			return
		}
		g := n.group(int(req.Replica.Shard))
		if g == nil {
			return
		}
		switch req.Op {
		case wire.OpRequestVote:
			g.handleRequestVote(p, req.Replica)
		case wire.OpAppendEntries:
			g.handleAppendEntries(p, req.Replica)
		case wire.OpMigrate:
			g.handleMigrate(p, req)
		}
	case wire.KindResponse:
		resp, err := wire.DecodeResponse(h, payload)
		if err != nil || resp.Replica == nil {
			n.c.net.framesDropped++
			return
		}
		g := n.group(int(resp.Replica.Shard))
		if g == nil {
			return
		}
		switch resp.Op {
		case wire.OpRequestVote:
			g.handleVoteReply(p, resp.Replica)
		case wire.OpAppendEntries:
			g.handleAppendReply(p, resp.Replica)
		case wire.OpMigrate:
			// Coordinator-issued chunks carry a registered call (Round =
			// msgID); everything else is a leader catch-up snapshot ack.
			if !n.c.resolveCall(resp.Replica) {
				g.handleSnapshotReply(p, resp.Replica)
			}
		}
	}
}
