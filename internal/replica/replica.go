// Package replica implements consensus-backed shard groups for the KV-CSD
// array: per-shard replicated state machines with an elected leader and a
// replicated log carried over the wire protocol, all inside the deterministic
// virtual-time simulator so that elections, replication, partitions, and
// failovers are seed-reproducible.
//
// The protocol is Raft-shaped: terms, RequestVote with log-up-to-date checks,
// AppendEntries with log matching and quorum commit, a no-op entry appended by
// every fresh leader, CheckQuorum leader step-down, and read-index reads (a
// leader confirms its leadership with a heartbeat round before serving a read
// at its commit index). Writes carry a (client, seq) session identity and the
// state machine deduplicates applies, so a client that retries after an
// ambiguous failure cannot double-apply — the property the linearizability
// checker in internal/linearize leans on.
//
// Membership changes are single-server config entries that take membership
// effect when appended and flip the routing table (with an epoch bump) when
// applied; elastic resharding streams a state-machine snapshot to the new
// owner over Migrate frames and then runs add-then-remove config changes, so
// any two successive configs share a quorum.
//
// Every consensus message is genuinely encoded to a wire frame (CRC and all)
// on send and decoded on delivery: the transport is the same protocol a
// remote shard group would speak, just running over simulated links.
package replica

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"kvcsd/internal/nvme"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
)

// Roles of a group member.
const (
	roleFollower = iota
	roleCandidate
	roleLeader
)

// Errors returned by client operations. ErrUnknown is the ambiguous outcome:
// the proposal may or may not have committed (leader lost quorum or crashed
// mid-flight). It is safe to retry — session dedup makes the retry
// exactly-once — and the linearizability checker treats the operation as
// possibly-applied.
var (
	ErrDown     = errors.New("replica: node is down")
	ErrUnknown  = errors.New("replica: result unknown (leader lost quorum)")
	ErrNotReady = errors.New("replica: leader not ready (no committed entry this term)")
	ErrNoLeader = errors.New("replica: no leader reachable")
	ErrStopped  = errors.New("replica: cluster stopped")
)

// NotLeaderError redirects a client to the leader the contacted node last
// heard from (-1 when unknown).
type NotLeaderError struct{ Hint int }

func (e *NotLeaderError) Error() string {
	return fmt.Sprintf("replica: not leader (hint %d)", e.Hint)
}

// Definite reports whether err proves the operation did NOT take effect. Only
// such errors may be recorded as failed in an operation history; everything
// else must stay ambiguous — including ErrStopped, which can surface after
// an entry was appended but before its fate was decided.
func Definite(err error) bool {
	var nl *NotLeaderError
	return errors.As(err, &nl) ||
		errors.Is(err, ErrDown) || errors.Is(err, ErrNotReady) ||
		errors.Is(err, ErrNoLeader)
}

// Command is one state-machine mutation (a put or a delete).
type Command struct {
	Kind  uint8 // wire.EntryPut or wire.EntryDelete
	Key   []byte
	Value []byte
}

// StateMachine is the replicated application state of one shard. Apply must
// be deterministic; Snapshot/Restore must round-trip the full state. The
// sim.Proc lets device-backed implementations charge virtual time.
type StateMachine interface {
	Apply(p *sim.Proc, cmd Command) error
	Lookup(p *sim.Proc, key []byte) (value []byte, found bool, err error)
	Snapshot(p *sim.Proc) ([]nvme.KVPair, error)
	Restore(p *sim.Proc, pairs []nvme.KVPair) error
}

// MemKV is the reference in-memory state machine used by tests, chaos, and
// the failover benchmark.
type MemKV struct {
	m map[string][]byte
}

// NewMemKV returns an empty in-memory state machine.
func NewMemKV() *MemKV { return &MemKV{m: make(map[string][]byte)} }

// Apply implements StateMachine.
func (s *MemKV) Apply(p *sim.Proc, cmd Command) error {
	switch cmd.Kind {
	case entryPut:
		v := make([]byte, len(cmd.Value))
		copy(v, cmd.Value)
		s.m[string(cmd.Key)] = v
	case entryDelete:
		delete(s.m, string(cmd.Key))
	}
	return nil
}

// Lookup implements StateMachine.
func (s *MemKV) Lookup(p *sim.Proc, key []byte) ([]byte, bool, error) {
	v, ok := s.m[string(key)]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

// Snapshot implements StateMachine; pairs are sorted for determinism.
func (s *MemKV) Snapshot(p *sim.Proc) ([]nvme.KVPair, error) {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]nvme.KVPair, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, nvme.KVPair{Key: []byte(k), Value: s.m[k]})
	}
	return pairs, nil
}

// Restore implements StateMachine.
func (s *MemKV) Restore(p *sim.Proc, pairs []nvme.KVPair) error {
	s.m = make(map[string][]byte, len(pairs))
	for _, kv := range pairs {
		v := make([]byte, len(kv.Value))
		copy(v, kv.Value)
		s.m[string(kv.Key)] = v
	}
	return nil
}

// Options configures a cluster of shard groups.
type Options struct {
	// Nodes is the number of replica nodes (IDs 0..Nodes-1).
	Nodes int
	// Shards is the number of independent shard groups.
	Shards int
	// ReplicationFactor is the member count per shard group.
	ReplicationFactor int
	// Seed drives election jitter and client backoff.
	Seed int64

	// Timing (virtual). Zero values take the defaults below.
	ElectionTimeout   sim.Duration
	HeartbeatInterval sim.Duration
	TickInterval      sim.Duration
	LinkDelay         sim.Duration

	// NewSM builds the state machine for (shard, node); nil means MemKV.
	NewSM func(shard, node int) StateMachine

	// Members, when set, overrides the default round-robin initial placement
	// with an explicit member list per shard (the array uses its placement
	// ring here). Returned lists must be non-empty subsets of 0..Nodes-1.
	Members func(shard int) []int

	// Registry, when set, receives replication/election gauges.
	Registry *obs.Registry

	// GaugePrefix namespaces the gauge names (e.g. "ks0/"), letting several
	// clusters share one registry.
	GaugePrefix string

	// RetryAttempts bounds a session operation's retry loop (default 40).
	// Chaos campaigns lower it so operations racing a fault can end with an
	// ambiguous outcome instead of always retrying through to success.
	RetryAttempts int

	// UnsafeStaleReads serves reads from any replica's local state without a
	// read-index round. This is a deliberately broken mode: it exists as the
	// negative control proving the linearizability checker catches stale
	// reads. Never enable it outside that test.
	UnsafeStaleReads bool
}

func (o *Options) defaults() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.ReplicationFactor <= 0 || o.ReplicationFactor > o.Nodes {
		o.ReplicationFactor = min(3, o.Nodes)
	}
	if o.ElectionTimeout <= 0 {
		o.ElectionTimeout = 10 * time.Millisecond
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Millisecond
	}
	if o.TickInterval <= 0 {
		o.TickInterval = time.Millisecond
	}
	if o.LinkDelay <= 0 {
		o.LinkDelay = 200 * time.Microsecond
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 40
	}
}
