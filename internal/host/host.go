// Package host models the compute side of the simulation: a pool of CPU
// cores plus the cost constants that price software work in virtual time.
//
// Two instances appear in every experiment: the host machine (32 EPYC cores
// in the paper's Table I) that runs applications, the filesystem, and the
// RocksDB baseline; and the KV-CSD SoC (4 ARM Cortex-A53 cores) that runs the
// device-side key-value engine. A core pool is a sim.Resource, so when more
// software threads want CPU than cores exist — or when background compaction
// competes with foreground inserts — the queueing that the paper measures
// emerges naturally.
//
// The Speed field scales all compute durations: the A53 SoC is configured
// substantially slower per core than the host's EPYC cores.
package host

import (
	"time"

	"kvcsd/internal/sim"
)

// Config prices software work. Durations are for Speed == 1.0 (a host-class
// core); actual charge = duration / Speed.
type Config struct {
	Name  string
	Cores int
	Speed float64 // relative per-core speed; 1.0 = host class

	// SyscallCost is the kernel entry/exit plus VFS path cost per system
	// call — the "host software overhead" the paper's motivation cites.
	SyscallCost time.Duration
	// MemBandwidth prices in-memory copies and checksums, bytes/sec.
	MemBandwidth float64
	// KVOpCost is the per-key CPU cost of a key-value engine operation
	// (memtable insert, probe) excluding copies.
	KVOpCost time.Duration
	// CompareCost prices one key comparison during sorting/merging.
	CompareCost time.Duration
	// BlockOpCost prices assembling or decoding one 4 KiB block.
	BlockOpCost time.Duration
}

// DefaultHostConfig models the paper's 32-core AMD EPYC host.
func DefaultHostConfig() Config {
	return Config{
		Name:         "host",
		Cores:        32,
		Speed:        1.0,
		SyscallCost:  2 * time.Microsecond,
		MemBandwidth: 12e9,
		KVOpCost:     900 * time.Nanosecond,
		CompareCost:  40 * time.Nanosecond,
		BlockOpCost:  2 * time.Microsecond,
	}
}

// DefaultSoCConfig models the Fidus SW-100's quad-core ARM Cortex-A53.
func DefaultSoCConfig() Config {
	return Config{
		Name:         "soc",
		Cores:        4,
		Speed:        0.45,
		SyscallCost:  0, // the device engine is a userspace SPDK driver: no kernel in the path
		MemBandwidth: 6e9,
		KVOpCost:     120 * time.Nanosecond,
		CompareCost:  40 * time.Nanosecond,
		BlockOpCost:  2 * time.Microsecond,
	}
}

// Host is a core pool bound to a simulation environment.
type Host struct {
	cfg Config
	cpu *sim.Resource
}

// New creates a host with cfg.Cores cores.
func New(env *sim.Env, cfg Config) *Host {
	if cfg.Cores < 1 {
		panic("host: need at least one core")
	}
	if cfg.Speed <= 0 {
		panic("host: speed must be positive")
	}
	return &Host{cfg: cfg, cpu: sim.NewResource(env, cfg.Name+"-cpu", cfg.Cores)}
}

// Config returns the host configuration.
func (h *Host) Config() Config { return h.cfg }

// CPU exposes the core pool for inspection.
func (h *Host) CPU() *sim.Resource { return h.cpu }

// Compute occupies one core for d (scaled by Speed) of virtual time.
func (h *Host) Compute(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	p.Use(h.cpu, time.Duration(float64(d)/h.cfg.Speed))
}

// Syscall charges one kernel crossing.
func (h *Host) Syscall(p *sim.Proc) { h.Compute(p, h.cfg.SyscallCost) }

// Copy charges an in-memory move/checksum of n bytes.
func (h *Host) Copy(p *sim.Proc, n int64) {
	h.Compute(p, sim.TransferTime(n, h.cfg.MemBandwidth))
}

// KVOp charges n key-value engine operations.
func (h *Host) KVOp(p *sim.Proc, n int64) {
	h.Compute(p, time.Duration(n)*h.cfg.KVOpCost)
}

// Compares charges n key comparisons (sort/merge work).
func (h *Host) Compares(p *sim.Proc, n int64) {
	h.Compute(p, time.Duration(n)*h.cfg.CompareCost)
}

// BlockOp charges assembling/decoding n blocks.
func (h *Host) BlockOp(p *sim.Proc, n int64) {
	h.Compute(p, time.Duration(n)*h.cfg.BlockOpCost)
}

// SortCost returns the CPU duration for comparison-sorting n keys
// (n log2 n comparisons), before Speed scaling.
func (h *Host) SortCost(n int64) time.Duration {
	if n < 2 {
		return 0
	}
	log2 := 0
	for v := n; v > 1; v >>= 1 {
		log2++
	}
	return time.Duration(n*int64(log2)) * h.cfg.CompareCost
}
