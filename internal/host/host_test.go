package host

import (
	"testing"
	"time"

	"kvcsd/internal/sim"
)

func TestComputeScalesBySpeed(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultSoCConfig()
	cfg.Speed = 0.5
	h := New(env, cfg)
	var end sim.Time
	env.Go("w", func(p *sim.Proc) {
		h.Compute(p, time.Millisecond)
		end = p.Now()
	})
	env.Run()
	if end != sim.Time(2*time.Millisecond) {
		t.Fatalf("end %v, want 2ms", end)
	}
}

func TestCoreContention(t *testing.T) {
	env := sim.NewEnv()
	cfg := DefaultHostConfig()
	cfg.Cores = 2
	h := New(env, cfg)
	var last sim.Time
	for i := 0; i < 4; i++ {
		env.Go("w", func(p *sim.Proc) {
			h.Compute(p, time.Millisecond)
			last = p.Now()
		})
	}
	env.Run()
	// 4 jobs, 2 cores, 1ms each => 2ms.
	if last != sim.Time(2*time.Millisecond) {
		t.Fatalf("last %v", last)
	}
}

func TestZeroComputeFree(t *testing.T) {
	env := sim.NewEnv()
	h := New(env, DefaultHostConfig())
	env.Go("w", func(p *sim.Proc) {
		h.Compute(p, 0)
		h.Compute(p, -time.Second)
		if p.Now() != 0 {
			t.Errorf("time advanced: %v", p.Now())
		}
	})
	env.Run()
}

func TestChargeHelpers(t *testing.T) {
	env := sim.NewEnv()
	cfg := Config{Name: "t", Cores: 1, Speed: 1,
		SyscallCost: time.Microsecond, MemBandwidth: 1e9,
		KVOpCost: 100 * time.Nanosecond, CompareCost: 10 * time.Nanosecond,
		BlockOpCost: time.Microsecond}
	h := New(env, cfg)
	var end sim.Time
	env.Go("w", func(p *sim.Proc) {
		h.Syscall(p)       // 1µs
		h.Copy(p, 1000)    // 1µs
		h.KVOp(p, 10)      // 1µs
		h.Compares(p, 100) // 1µs
		h.BlockOp(p, 1)    // 1µs
		end = p.Now()
	})
	env.Run()
	if end != sim.Time(5*time.Microsecond) {
		t.Fatalf("end %v, want 5µs", end)
	}
}

func TestSortCost(t *testing.T) {
	h := New(sim.NewEnv(), Config{Name: "t", Cores: 1, Speed: 1, CompareCost: 10 * time.Nanosecond})
	if h.SortCost(0) != 0 || h.SortCost(1) != 0 {
		t.Fatal("trivial sorts should be free")
	}
	// 1024 keys, log2=10 => 10240 comparisons => 102.4µs
	if got := h.SortCost(1024); got != 102400*time.Nanosecond {
		t.Fatalf("SortCost(1024) = %v", got)
	}
	if h.SortCost(1<<20) <= h.SortCost(1<<10) {
		t.Fatal("sort cost not increasing")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "bad", Cores: 0, Speed: 1},
		{Name: "bad", Cores: 4, Speed: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			New(sim.NewEnv(), cfg)
		}()
	}
}

func TestDefaultsSane(t *testing.T) {
	hc, sc := DefaultHostConfig(), DefaultSoCConfig()
	if hc.Cores != 32 || sc.Cores != 4 {
		t.Fatal("core counts should match Table I")
	}
	if sc.Speed >= hc.Speed {
		t.Fatal("SoC cores should be slower than host cores")
	}
	if sc.SyscallCost != 0 {
		t.Fatal("SPDK userspace driver should have no syscall cost")
	}
}
