package session

import (
	"bytes"
	"fmt"
	"testing"

	"kvcsd/internal/nvme"
	"kvcsd/internal/wire"
)

func TestBacklogAppendReplayFrame(t *testing.T) {
	b := NewBacklog(1 << 16)
	for i := 1; i <= 3; i++ {
		if err := b.Append(uint64(i), []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := b.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	rep := b.Replay()
	if len(rep) != 3 {
		t.Fatalf("replay = %d entries, want 3", len(rep))
	}
	for i, e := range rep {
		want := fmt.Sprintf("frame-%d", i+1)
		if e.ID != uint64(i+1) || string(e.Frames) != want {
			t.Fatalf("replay[%d] = (%d, %q), want (%d, %q)", i, e.ID, e.Frames, i+1, want)
		}
	}
	if b.Pending() != 0 {
		t.Fatalf("pending after replay = %d", b.Pending())
	}
	// Replayed records are retained for duplicate suppression.
	if fr, ok := b.Frame(2); !ok || string(fr) != "frame-2" {
		t.Fatalf("Frame(2) = %q, %v", fr, ok)
	}
	if b.Replay() != nil {
		t.Fatal("second replay not empty")
	}
}

func TestBacklogCapEvictsReplayedOnly(t *testing.T) {
	rec := len(encodeBacklogRecord(1, bytes.Repeat([]byte("x"), 100)))
	b := NewBacklog(2 * rec)
	must := func(id uint64) {
		t.Helper()
		if err := b.Append(id, bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	must(1)
	must(2)
	// Full of unreplayed records: the next spill is refused, not dropped-oldest.
	if err := b.Append(3, bytes.Repeat([]byte("x"), 100)); err != ErrBacklogFull {
		t.Fatalf("overflow append: err = %v, want ErrBacklogFull", err)
	}
	b.Replay()
	// Now replayed records may be evicted to make room.
	must(3)
	if _, ok := b.Frame(1); ok {
		t.Fatal("oldest replayed record not evicted")
	}
	if _, ok := b.Frame(3); !ok {
		t.Fatal("new record missing after eviction")
	}
}

func TestBacklogRecoverStopsAtTornTail(t *testing.T) {
	b := NewBacklog(1 << 16)
	for i := 1; i <= 4; i++ {
		if err := b.Append(uint64(i), []byte(fmt.Sprintf("frame-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := b.Snapshot()

	// A clean snapshot recovers fully.
	r, n := RecoverBacklog(snap, 1<<16)
	if n != len(snap) || r.Pending() != 4 {
		t.Fatalf("clean recover: consumed %d/%d, pending %d", n, len(snap), r.Pending())
	}

	// Tear the tail mid-record: recovery rolls forward to the last whole one.
	torn := snap[:len(snap)-3]
	r, n = RecoverBacklog(torn, 1<<16)
	if r.Pending() != 3 {
		t.Fatalf("torn recover: pending = %d, want 3", r.Pending())
	}
	if n >= len(torn) {
		t.Fatalf("torn recover consumed the torn record (%d bytes)", n)
	}

	// Flip a bit inside the third record's payload: its CRC fails and
	// recovery stops before it, keeping records 1-2.
	flipped := append([]byte(nil), snap...)
	third := 2 * (backlogHdr + backlogIDSize + len("frame-1"))
	flipped[third+backlogHdr+backlogIDSize] ^= 0x40
	r, _ = RecoverBacklog(flipped, 1<<16)
	if r.Pending() != 2 {
		t.Fatalf("corrupt recover: pending = %d, want 2", r.Pending())
	}
	if fr, ok := r.Frame(2); !ok || string(fr) != "frame-2" {
		t.Fatalf("corrupt recover Frame(2) = %q, %v", fr, ok)
	}
}

// drain pops everything currently queued, in fair order.
func drain(s *Scheduler) []*Item {
	var out []*Item
	for s.Queued() > 0 {
		batch, _ := s.NextBatch(1)
		out = append(out, batch...)
	}
	return out
}

func TestSchedulerLanePriority(t *testing.T) {
	m := NewManager(Config{})
	s := NewScheduler(m.Config(), 1024)
	tn := m.Tenant("t")
	// Park bulk work first, then latency work: the latency lane's higher
	// weight must put its items ahead under contention.
	for i := 0; i < 8; i++ {
		if c := s.Enqueue(&Item{Tenant: tn, Lane: wire.LaneBulk, Cost: 1, Value: fmt.Sprintf("b%d", i)}); c != CauseNone {
			t.Fatalf("enqueue bulk: %v", c)
		}
	}
	for i := 0; i < 8; i++ {
		if c := s.Enqueue(&Item{Tenant: tn, Lane: wire.LaneLatency, Cost: 1, Value: fmt.Sprintf("l%d", i)}); c != CauseNone {
			t.Fatalf("enqueue latency: %v", c)
		}
	}
	order := drain(s)
	if len(order) != 16 {
		t.Fatalf("drained %d items", len(order))
	}
	// Count latency items in the first half of the drain: with weights 8:1
	// the latency lane should dominate early service.
	lat := 0
	for _, it := range order[:8] {
		if it.Lane == wire.LaneLatency {
			lat++
		}
	}
	if lat < 6 {
		t.Fatalf("latency items in first half = %d, want >= 6 (order %v)", lat, order[:8])
	}
}

func TestSchedulerTenantFairness(t *testing.T) {
	m := NewManager(Config{})
	s := NewScheduler(m.Config(), 4096)
	heavy := m.Tenant("heavy")
	light := m.Tenant("light")
	// Heavy floods 100 items before light's 10 arrive; equal weights mean
	// light's items must not wait behind all of heavy's.
	for i := 0; i < 100; i++ {
		s.Enqueue(&Item{Tenant: heavy, Lane: wire.LaneNormal, Cost: 1, Value: "h"})
	}
	for i := 0; i < 10; i++ {
		s.Enqueue(&Item{Tenant: light, Lane: wire.LaneNormal, Cost: 1, Value: "l"})
	}
	order := drain(s)
	// All of light's items should be served within the first ~30 pops
	// (round-robin alternation), far earlier than FIFO's positions 101-110.
	seen := 0
	for i, it := range order {
		if it.Tenant == light {
			seen++
			if seen == 10 && i >= 40 {
				t.Fatalf("light tenant's last item served at position %d", i)
			}
		}
	}
	if seen != 10 {
		t.Fatalf("light items served = %d", seen)
	}
}

func TestSchedulerCostChargesBulk(t *testing.T) {
	m := NewManager(Config{})
	s := NewScheduler(m.Config(), 4096)
	bulky := m.Tenant("bulky")
	tiny := m.Tenant("tiny")
	// Interleave: bulky's items cost 100 each, tiny's cost 1. With equal
	// weights tiny should get many items served per bulky item.
	for i := 0; i < 10; i++ {
		s.Enqueue(&Item{Tenant: bulky, Lane: wire.LaneNormal, Cost: 100, Value: "B"})
	}
	for i := 0; i < 50; i++ {
		s.Enqueue(&Item{Tenant: tiny, Lane: wire.LaneNormal, Cost: 1, Value: "t"})
	}
	order := drain(s)
	// By the time the second bulky item is served, most of tiny's should be done.
	bulkySeen, tinySeen := 0, 0
	for _, it := range order {
		if it.Tenant == bulky {
			bulkySeen++
			if bulkySeen == 2 {
				break
			}
		} else {
			tinySeen++
		}
	}
	if tinySeen < 25 {
		t.Fatalf("only %d tiny items served before bulky's second (cost-blind?)", tinySeen)
	}
}

func TestSchedulerCapsAndCauses(t *testing.T) {
	m := NewManager(Config{TenantQueue: 2})
	s := NewScheduler(m.Config(), 3)
	a := m.Tenant("a")
	b := m.Tenant("b")
	if c := s.Enqueue(&Item{Tenant: a, Lane: wire.LaneNormal, Cost: 1}); c != CauseNone {
		t.Fatal(c)
	}
	if c := s.Enqueue(&Item{Tenant: a, Lane: wire.LaneNormal, Cost: 1}); c != CauseNone {
		t.Fatal(c)
	}
	// Tenant a hits its per-lane cap while b is still admitted.
	if c := s.Enqueue(&Item{Tenant: a, Lane: wire.LaneNormal, Cost: 1}); c != CauseTenant {
		t.Fatalf("tenant cap: %v", c)
	}
	if c := s.Enqueue(&Item{Tenant: b, Lane: wire.LaneNormal, Cost: 1}); c != CauseNone {
		t.Fatal(c)
	}
	// Global cap (3) is now reached for everyone.
	if c := s.Enqueue(&Item{Tenant: b, Lane: wire.LaneNormal, Cost: 1}); c != CauseGlobal {
		t.Fatalf("global cap: %v", c)
	}
	// Popping frees queue space but not occupancy until Release.
	s.NextBatch(1)
	if c := s.Enqueue(&Item{Tenant: b, Lane: wire.LaneNormal, Cost: 1}); c != CauseGlobal {
		t.Fatalf("occupancy held across dispatch: %v", c)
	}
	s.Release(1)
	if c := s.Enqueue(&Item{Tenant: b, Lane: wire.LaneNormal, Cost: 1}); c != CauseNone {
		t.Fatalf("after release: %v", c)
	}
	s.CloseIntake()
	if c := s.Enqueue(&Item{Tenant: b, Lane: wire.LaneNormal, Cost: 1}); c != CauseDraining {
		t.Fatalf("after close: %v", c)
	}
	// Parked items still drain after CloseIntake.
	got := 0
	for {
		batch, ok := s.NextBatch(8)
		got += len(batch)
		if !ok {
			break
		}
	}
	if got != 3 {
		t.Fatalf("drained %d parked items after close, want 3", got)
	}
}

func TestManagerHelloResumeAndDedup(t *testing.T) {
	m := NewManager(Config{Seed: 7})
	connA, connB := "connA", "connB"
	sess, replay, resumed, prev, err := m.Hello(&wire.HelloMsg{Tenant: "t1"}, connA)
	if err != nil || resumed || prev != nil || len(replay) != 0 {
		t.Fatalf("fresh hello: %v %v %v %d", err, resumed, prev, len(replay))
	}
	if sess.Token() == 0 {
		t.Fatal("zero token")
	}

	// Deterministic tokens for a fixed seed.
	m2 := NewManager(Config{Seed: 7})
	s2, _, _, _, _ := m2.Hello(&wire.HelloMsg{Tenant: "t1"}, connA)
	if s2.Token() != sess.Token() {
		t.Fatalf("tokens not deterministic: %d != %d", s2.Token(), sess.Token())
	}

	// Pending window and duplicate suppression.
	if dup, full := sess.BeginPending(10); dup || full {
		t.Fatal("first begin")
	}
	if dup, _ := sess.BeginPending(10); !dup {
		t.Fatal("in-flight duplicate not detected")
	}
	sess.MarkApplied(10, wire.StatusOK)
	if st, ok := sess.LookupApplied(10); !ok || st != wire.StatusOK {
		t.Fatalf("applied lookup: %v %v", st, ok)
	}

	// Spill, then resume from another connection: backlog replays and the
	// old connection is reported for kicking.
	if err := sess.Spill(11, wire.LaneNormal, []byte("resp-11")); err != nil {
		t.Fatal(err)
	}
	got, replay, resumed, prev, err := m.Hello(&wire.HelloMsg{Tenant: "t1", Resume: sess.Token()}, connB)
	if err != nil || !resumed || got != sess {
		t.Fatalf("resume: %v %v", err, resumed)
	}
	if prev != connA {
		t.Fatalf("prev = %v, want connA", prev)
	}
	if len(replay) != 1 || replay[0].ID != 11 || string(replay[0].Frames) != "resp-11" {
		t.Fatalf("replay = %+v", replay)
	}

	// Wrong tenant on resume opens a fresh session instead.
	other, _, resumed, _, err := m.Hello(&wire.HelloMsg{Tenant: "t2", Resume: sess.Token()}, connA)
	if err != nil || resumed || other == sess {
		t.Fatalf("cross-tenant resume: %v %v", err, resumed)
	}

	if _, _, _, _, err := m.Hello(&wire.HelloMsg{}, connA); err == nil {
		t.Fatal("empty tenant accepted")
	}
}

func TestResolveLaneAndCost(t *testing.T) {
	if l := ResolveLane(wire.OpGet, 0, 0); l != wire.LaneLatency {
		t.Fatalf("get default: %v", l)
	}
	if l := ResolveLane(wire.OpBulkPut, 0, 0); l != wire.LaneBulk {
		t.Fatalf("bulkput default: %v", l)
	}
	if l := ResolveLane(wire.OpGet, 0, wire.LaneOverride(wire.LaneBulk)); l != wire.LaneBulk {
		t.Fatalf("session class: %v", l)
	}
	if l := ResolveLane(wire.OpGet, wire.LaneOverride(wire.LaneNormal), wire.LaneOverride(wire.LaneBulk)); l != wire.LaneNormal {
		t.Fatalf("frame override: %v", l)
	}
	small := &wire.Request{Op: wire.OpGet, Key: []byte("k")}
	if c := RequestCost(small); c != 1 {
		t.Fatalf("small cost: %d", c)
	}
	big := &wire.Request{Op: wire.OpBulkPut, Pairs: []nvme.KVPair{{Key: []byte("k"), Value: bytes.Repeat([]byte("v"), 64<<10)}}}
	if c := RequestCost(big); c < 16 {
		t.Fatalf("bulk cost: %d", c)
	}
}
