package session

import (
	"sync"

	"kvcsd/internal/wire"
)

// Cause classifies why a request was refused admission.
type Cause uint8

// Shed causes.
const (
	CauseNone     Cause = iota
	CauseGlobal         // server-wide admission cap reached
	CauseTenant         // the tenant's per-lane queue cap reached
	CauseSession        // the session's outstanding-request cap reached
	CauseBacklog        // the session's backlog byte cap reached on spill
	CauseDraining       // server shutting down
	numCauses
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseGlobal:
		return "global-cap"
	case CauseTenant:
		return "tenant-cap"
	case CauseSession:
		return "session-cap"
	case CauseBacklog:
		return "backlog-full"
	case CauseDraining:
		return "draining"
	}
	return "unknown"
}

// Item is one request parked in the scheduler.
type Item struct {
	Sess   *Session // nil for anonymous (unsessioned) requests
	Tenant *Tenant
	Lane   wire.Lane
	Cost   int64 // service cost in quantum units (see RequestCost)
	Value  any   // the server's task
}

// flow is one tenant's FIFO within a lane, with its DRR deficit counter.
type flow struct {
	tenant  *Tenant
	items   []*Item
	head    int
	deficit int64
}

func (f *flow) push(it *Item) { f.items = append(f.items, it) }

func (f *flow) pop() *Item {
	it := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 > len(f.items) {
		f.items = append(f.items[:0], f.items[f.head:]...)
		f.head = 0
	}
	return it
}

func (f *flow) empty() bool { return f.head == len(f.items) }

// laneQ is one priority lane: a deficit round-robin over active tenant flows
// plus the lane's own weighted credit against the other lanes.
type laneQ struct {
	credit int64
	flows  map[*Tenant]*flow
	ring   []*flow
	cur    int
	fresh  bool // the flow at cur has not yet received this visit's top-up
	length int
}

func (lq *laneQ) push(it *Item) {
	f := lq.flows[it.Tenant]
	if f == nil {
		f = &flow{tenant: it.Tenant}
		lq.flows[it.Tenant] = f
		lq.ring = append(lq.ring, f)
		if len(lq.ring) == 1 {
			lq.fresh = true
		}
	}
	f.push(it)
	lq.length++
}

// pop serves the lane by classic deficit round-robin: a visit starts by
// topping the flow's deficit up once by quantum × tenant weight, then serves
// items while the deficit covers their cost; when it no longer does, the
// visit ends and the next flow gets its turn. Heavier tenants therefore
// drain proportionally more cost per round, and an expensive head item waits
// a bounded number of rounds rather than blocking the lane.
func (lq *laneQ) pop(quantum int64) *Item {
	for {
		f := lq.ring[lq.cur]
		if lq.fresh {
			f.deficit += quantum * int64(f.tenant.Weight)
			lq.fresh = false
		}
		head := f.items[f.head]
		if f.deficit < head.Cost {
			lq.cur = (lq.cur + 1) % len(lq.ring)
			lq.fresh = true
			continue
		}
		f.deficit -= head.Cost
		it := f.pop()
		lq.length--
		if f.empty() {
			// An emptied flow leaves the round-robin and forfeits its
			// deficit, so idle tenants cannot bank credit.
			delete(lq.flows, f.tenant)
			lq.ring = append(lq.ring[:lq.cur], lq.ring[lq.cur+1:]...)
			if len(lq.ring) > 0 {
				lq.cur %= len(lq.ring)
			} else {
				lq.cur = 0
			}
			lq.fresh = true
		}
		return it
	}
}

// Scheduler is the deficit-weighted-fair admission queue between the socket
// goroutines and the gateway proc. Enqueue parks admitted requests; NextBatch
// blocks until work exists (or intake closes) and serves lanes by weighted
// credit, tenants within a lane by DRR.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	quantum     int64
	laneWeights [wire.NumLanes]int64
	tenantQueue int
	maxInflight int

	occupied int // enqueued + dispatched but not yet released
	queued   int
	closed   bool
	lanes    [wire.NumLanes]laneQ
}

// NewScheduler builds a scheduler for the given (normalized) config;
// maxInflight is the server-wide cap on requests parked or executing.
func NewScheduler(cfg Config, maxInflight int) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		quantum:     int64(cfg.Quantum),
		tenantQueue: cfg.TenantQueue,
		maxInflight: maxInflight,
	}
	if s.tenantQueue <= 0 {
		// Default: one tenant may fill the whole admission window — the
		// single-tenant behavior of the old global token pool.
		s.tenantQueue = maxInflight
	}
	for l := 0; l < wire.NumLanes; l++ {
		s.laneWeights[l] = int64(cfg.LaneWeights[l])
		s.lanes[l].flows = make(map[*Tenant]*flow)
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Enqueue parks one item, returning CauseNone on success or the shed cause.
// The caller owns the per-session cap (CauseSession) and all counter
// bookkeeping; the scheduler enforces the global and per-tenant caps.
func (s *Scheduler) Enqueue(it *Item) Cause {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CauseDraining
	}
	if s.occupied >= s.maxInflight {
		return CauseGlobal
	}
	if it.Tenant.queued[it.Lane].Load() >= int64(s.tenantQueue) {
		return CauseTenant
	}
	s.lanes[it.Lane].push(it)
	s.occupied++
	s.queued++
	it.Tenant.queued[it.Lane].Add(1)
	s.cond.Signal()
	return CauseNone
}

// NextBatch blocks until at least one item is parked (or intake is closed),
// then pops up to max items in fair order. ok is false once the scheduler is
// closed and fully drained.
func (s *Scheduler) NextBatch(max int) ([]*Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.queued == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.queued == 0 {
		return nil, false
	}
	if max <= 0 {
		max = 1
	}
	batch := make([]*Item, 0, min(max, s.queued))
	for len(batch) < max && s.queued > 0 {
		batch = append(batch, s.popLocked())
	}
	return batch, !s.closed || s.queued > 0
}

// popLocked picks the non-empty lane with the most credit (priority order
// breaks ties); when every candidate is out of credit, all lanes replenish by
// their weight — so under sustained contention lane throughput converges to
// the weight ratio, while an uncontended lane runs at full speed.
func (s *Scheduler) popLocked() *Item {
	for {
		best := -1
		for l := 0; l < wire.NumLanes; l++ {
			if s.lanes[l].length == 0 {
				continue
			}
			if best == -1 || s.lanes[l].credit > s.lanes[best].credit {
				best = l
			}
		}
		if best == -1 {
			return nil
		}
		if s.lanes[best].credit <= 0 {
			for l := 0; l < wire.NumLanes; l++ {
				capCredit := 4 * s.quantum * s.laneWeights[l]
				s.lanes[l].credit += s.quantum * s.laneWeights[l]
				if s.lanes[l].credit > capCredit {
					s.lanes[l].credit = capCredit
				}
			}
			continue
		}
		lq := &s.lanes[best]
		it := lq.pop(s.quantum)
		lq.credit -= it.Cost
		s.queued--
		it.Tenant.queued[it.Lane].Add(-1)
		return it
	}
}

// Release returns n admission slots once their responses are written (or
// spilled); the counterpart of Enqueue's occupancy charge.
func (s *Scheduler) Release(n int) {
	s.mu.Lock()
	s.occupied -= n
	s.mu.Unlock()
}

// Queued reports how many items are parked (not yet dispatched).
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// CloseIntake refuses all further Enqueues; parked items still drain through
// NextBatch so shutdown cannot strand queued work.
func (s *Scheduler) CloseIntake() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
