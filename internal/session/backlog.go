// Package session is the million-session front end: multi-tenant sessions,
// deficit-weighted-fair QoS admission, and per-session response backlogs for
// the server gateway.
//
// The layer sits between the socket goroutines and the virtual-time
// simulation. Every connection may open a session (wire.OpHello) naming the
// tenant it bills to; admitted requests enter a deficit-weighted-fair
// scheduler that serves three priority lanes (latency > normal > bulk) and,
// within a lane, round-robins tenants by weighted deficit — so one abusive
// bulk loader cannot starve thousands of latency-sensitive readers. A
// response that cannot be delivered (slow or dead client) spills into the
// session's CRC-framed backlog and replays, byte-identical and in order, when
// the client resumes the session with its token.
package session

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Backlog framing mirrors the KLOG durability framing (internal/core): every
// spilled response is one CRC-framed record
//
//	magic u32 ("KVBL") | plen u32 | crc32 u32 | payload
//
// where payload = request ID (u64 LE) followed by the exact response frame
// bytes the writer would have put on the socket. A torn tail (the process
// died mid-append) fails the checksum and recovery rolls forward to the last
// whole record, exactly like KLOG crash recovery. Replayed records are
// retained (until evicted under the byte cap) so a duplicate request ID can
// be answered with the identical bytes instead of re-applying.

const (
	backlogMagic  = 0x4C42564B // "KVBL"
	backlogHdr    = 12
	backlogIDSize = 8
)

// ErrBacklogFull reports a spill refused because the session's backlog byte
// cap is reached and no replayed record can be evicted.
var ErrBacklogFull = errors.New("session: backlog full")

// bentry is one spilled response: the full framed record plus its parsed id.
type bentry struct {
	id       uint64
	framed   []byte
	replayed bool
}

// frames returns the response frame bytes inside the record.
func (e *bentry) frames() []byte { return e.framed[backlogHdr+backlogIDSize:] }

// Backlog is a bounded, CRC-framed log of undeliverable responses for one
// session. Not safe for concurrent use; Session serializes access.
type Backlog struct {
	limit   int
	total   int // sum of framed record bytes
	entries []*bentry
	index   map[uint64]*bentry // request id -> latest record
}

// NewBacklog returns an empty backlog bounded to limit bytes of framed
// records.
func NewBacklog(limit int) *Backlog {
	return &Backlog{limit: limit, index: make(map[uint64]*bentry)}
}

func encodeBacklogRecord(id uint64, frames []byte) []byte {
	rec := make([]byte, backlogHdr+backlogIDSize+len(frames))
	payload := rec[backlogHdr:]
	binary.LittleEndian.PutUint64(payload, id)
	copy(payload[backlogIDSize:], frames)
	binary.LittleEndian.PutUint32(rec[0:], backlogMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(payload))
	return rec
}

// Append spills one response (its wire frame bytes, possibly several chunked
// frames) under the given request id. When the byte cap is reached, replayed
// records are evicted oldest-first to make room; if the record still does not
// fit, the spill is refused with ErrBacklogFull.
func (b *Backlog) Append(id uint64, frames []byte) error {
	rec := encodeBacklogRecord(id, frames)
	for b.total+len(rec) > b.limit {
		if !b.evictOneReplayed() {
			return ErrBacklogFull
		}
	}
	e := &bentry{id: id, framed: rec}
	b.entries = append(b.entries, e)
	b.index[id] = e
	b.total += len(rec)
	return nil
}

// evictOneReplayed drops the oldest replayed record; false if none exists.
func (b *Backlog) evictOneReplayed() bool {
	for i, e := range b.entries {
		if !e.replayed {
			continue
		}
		b.total -= len(e.framed)
		if b.index[e.id] == e {
			delete(b.index, e.id)
		}
		b.entries = append(b.entries[:i], b.entries[i+1:]...)
		return true
	}
	return false
}

// ReplayEntry is one backlogged response handed back during resume.
type ReplayEntry struct {
	ID     uint64
	Frames []byte
}

// Replay returns every not-yet-replayed record in append order and marks them
// replayed. The records stay in the backlog (evictable) so duplicate request
// IDs keep resolving to the identical bytes.
func (b *Backlog) Replay() []ReplayEntry {
	var out []ReplayEntry
	for _, e := range b.entries {
		if e.replayed {
			continue
		}
		e.replayed = true
		out = append(out, ReplayEntry{ID: e.id, Frames: e.frames()})
	}
	return out
}

// Frame returns the response frame bytes spilled under id, if present.
func (b *Backlog) Frame(id uint64) ([]byte, bool) {
	e, ok := b.index[id]
	if !ok {
		return nil, false
	}
	return e.frames(), true
}

// Pending counts records not yet replayed.
func (b *Backlog) Pending() int {
	n := 0
	for _, e := range b.entries {
		if !e.replayed {
			n++
		}
	}
	return n
}

// Bytes is the total framed size of retained records.
func (b *Backlog) Bytes() int { return b.total }

// Snapshot serializes the backlog as a contiguous framed log — the
// persistent form RecoverBacklog parses back.
func (b *Backlog) Snapshot() []byte {
	out := make([]byte, 0, b.total)
	for _, e := range b.entries {
		out = append(out, e.framed...)
	}
	return out
}

// RecoverBacklog rolls forward through a framed log, keeping the valid
// prefix: parsing stops at the first record whose magic, length, or checksum
// does not hold (a torn tail), and consumed reports how many bytes of data
// were recovered. Recovered records count as not yet replayed — they are
// responses the client never acknowledged seeing.
func RecoverBacklog(data []byte, limit int) (b *Backlog, consumed int) {
	b = NewBacklog(limit)
	off := 0
	for off+backlogHdr+backlogIDSize <= len(data) {
		if binary.LittleEndian.Uint32(data[off:]) != backlogMagic {
			break
		}
		plen := int(binary.LittleEndian.Uint32(data[off+4:]))
		if plen < backlogIDSize || off+backlogHdr+plen > len(data) {
			break
		}
		payload := data[off+backlogHdr : off+backlogHdr+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[off+8:]) {
			break
		}
		id := binary.LittleEndian.Uint64(payload)
		frames := append([]byte(nil), payload[backlogIDSize:]...)
		// Recovered records bypass the cap check: they were admitted before
		// the restart and truncating them would drop acknowledged work.
		rec := encodeBacklogRecord(id, frames)
		e := &bentry{id: id, framed: rec}
		b.entries = append(b.entries, e)
		b.index[id] = e
		b.total += len(rec)
		off += backlogHdr + plen
	}
	return b, off
}
