package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kvcsd/internal/wire"
)

// Config tunes the session layer. Zero values take defaults.
type Config struct {
	// Weights maps tenant name -> DRR weight; unnamed tenants get
	// DefaultWeight. A heavier tenant drains proportionally more cost per
	// scheduling round within its lane.
	Weights map[string]int
	// DefaultWeight is the weight for tenants absent from Weights. Default 4.
	DefaultWeight int
	// LaneWeights sets the credit ratio between the latency, normal, and
	// bulk lanes under contention. Default {8, 3, 1}.
	LaneWeights [wire.NumLanes]int
	// Quantum is the deficit each flow gains per round-robin visit, per
	// weight unit, in cost units (one unit ≈ one small request; large
	// payloads cost more — see RequestCost). Small quanta interleave
	// tenants finely; large quanta serve longer per-tenant bursts.
	// Default 1.
	Quantum int
	// TenantQueue caps how many requests one tenant may have parked per
	// lane; beyond it the tenant is shed (CauseTenant) while others keep
	// being admitted. Default: the server's MaxInflight (single-tenant
	// behavior matches the old global pool).
	TenantQueue int
	// SessionPending caps outstanding (parked or executing) requests per
	// session — the slow-client bound. Default 64.
	SessionPending int
	// BacklogBytes caps each session's spilled-response backlog. Default 1 MiB.
	BacklogBytes int
	// MaxSessions caps concurrently open sessions server-wide. Default 1<<20.
	MaxSessions int
	// AppliedWindow is how many (request id -> status) outcomes a session
	// retains for duplicate suppression. Default 1024.
	AppliedWindow int
	// Seed makes session token generation deterministic for a fixed seed.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 4
	}
	if c.LaneWeights == ([wire.NumLanes]int{}) {
		c.LaneWeights = [wire.NumLanes]int{8, 3, 1}
	}
	for l := range c.LaneWeights {
		if c.LaneWeights[l] <= 0 {
			c.LaneWeights[l] = 1
		}
	}
	if c.Quantum <= 0 {
		c.Quantum = 1
	}
	if c.SessionPending <= 0 {
		c.SessionPending = 64
	}
	if c.BacklogBytes <= 0 {
		c.BacklogBytes = 1 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1 << 20
	}
	if c.AppliedWindow <= 0 {
		c.AppliedWindow = 1024
	}
	return c
}

// AnonTenant is the tenant unsessioned connections bill to.
const AnonTenant = "anon"

// Session-layer errors.
var (
	// ErrNoTenant reports a Hello with an empty tenant name.
	ErrNoTenant = errors.New("session: hello without a tenant")
	// ErrTooManySessions reports the server-wide session cap.
	ErrTooManySessions = errors.New("session: too many open sessions")
)

// Tenant is one billing principal: its fair-share weight plus per-lane
// accounting. All counters are atomic so the telemetry endpoint and stats
// snapshots read them without locking the scheduler.
type Tenant struct {
	Name   string
	Weight int

	queued    [wire.NumLanes]atomic.Int64
	admitted  [wire.NumLanes]atomic.Int64
	completed [wire.NumLanes]atomic.Int64
	shedLane  [wire.NumLanes]atomic.Int64
	shedCause [numCauses]atomic.Int64

	sessions     atomic.Int64
	backlogBytes atomic.Int64
}

// NoteAdmitted counts one request accepted into the scheduler.
func (t *Tenant) NoteAdmitted(l wire.Lane) { t.admitted[l].Add(1) }

// NoteCompleted counts one response written (or spilled to a backlog).
func (t *Tenant) NoteCompleted(l wire.Lane) { t.completed[l].Add(1) }

// NoteShed counts one refused request with its cause.
func (t *Tenant) NoteShed(l wire.Lane, c Cause) {
	t.shedLane[l].Add(1)
	t.shedCause[c].Add(1)
}

// Queued reports the tenant's current parked depth on one lane.
func (t *Tenant) Queued(l wire.Lane) int64 { return t.queued[l].Load() }

// Stats snapshots the tenant's accounting in wire form.
func (t *Tenant) Stats() wire.TenantStats {
	ts := wire.TenantStats{
		Tenant:       t.Name,
		Weight:       int64(t.Weight),
		Sessions:     t.sessions.Load(),
		BacklogBytes: t.backlogBytes.Load(),
		ShedSession:  t.shedCause[CauseSession].Load(),
		ShedTenant:   t.shedCause[CauseTenant].Load(),
		ShedGlobal:   t.shedCause[CauseGlobal].Load() + t.shedCause[CauseDraining].Load(),
		ShedBacklog:  t.shedCause[CauseBacklog].Load(),
		Lanes:        make([]wire.LaneStats, wire.NumLanes),
	}
	for l := 0; l < wire.NumLanes; l++ {
		ts.Lanes[l] = wire.LaneStats{
			Lane:      uint8(l),
			Admitted:  t.admitted[l].Load(),
			Completed: t.completed[l].Load(),
			Shed:      t.shedLane[l].Load(),
			Queued:    t.queued[l].Load(),
		}
	}
	return ts
}

// Manager owns the tenant table and the session table: handshakes, resumes,
// token generation, and the per-tenant stats rollup.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*Tenant
	sessions map[uint64]*Session
	tokenCtr uint64
}

// NewManager builds a session manager; zero config fields take defaults.
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:      cfg.withDefaults(),
		tenants:  make(map[string]*Tenant),
		sessions: make(map[uint64]*Session),
	}
}

// Config returns the normalized configuration.
func (m *Manager) Config() Config { return m.cfg }

// Tenant returns (creating on first use) the named tenant.
func (m *Manager) Tenant(name string) *Tenant {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenantLocked(name)
}

func (m *Manager) tenantLocked(name string) *Tenant {
	t, ok := m.tenants[name]
	if !ok {
		w := m.cfg.Weights[name]
		if w <= 0 {
			w = m.cfg.DefaultWeight
		}
		t = &Tenant{Name: name, Weight: w}
		m.tenants[name] = t
	}
	return t
}

// Anon returns the tenant unsessioned requests bill to.
func (m *Manager) Anon() *Tenant { return m.Tenant(AnonTenant) }

// Lookup resolves a session token (nil if unknown).
func (m *Manager) Lookup(token uint64) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessions[token]
}

// Sessions reports how many sessions are open.
func (m *Manager) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// splitmix64 finalizer: deterministic, well-mixed session tokens from
// (seed, counter) without any global randomness.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (m *Manager) newTokenLocked() uint64 {
	for {
		m.tokenCtr++
		tok := mix64(uint64(m.cfg.Seed)*0x9E3779B97F4A7C15 + m.tokenCtr)
		if tok != 0 {
			if _, taken := m.sessions[tok]; !taken {
				return tok
			}
		}
	}
}

// Hello opens or resumes a session for conn. On resume the returned replay
// holds the backlog's unreplayed responses (original order, byte-identical
// frames) and prev is the connection the session was attached to before (the
// caller should kick it). A resume token that is unknown — or that names a
// session of a different tenant — falls back to opening a fresh session.
func (m *Manager) Hello(h *wire.HelloMsg, conn any) (sess *Session, replay []ReplayEntry, resumed bool, prev any, err error) {
	if h.Tenant == "" {
		return nil, nil, false, nil, ErrNoTenant
	}
	m.mu.Lock()
	if h.Resume != 0 {
		if s := m.sessions[h.Resume]; s != nil && s.tenant.Name == h.Tenant {
			m.mu.Unlock()
			prev = s.Attach(conn)
			return s, s.Replay(), true, prev, nil
		}
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		return nil, nil, false, nil, fmt.Errorf("%w (cap %d)", ErrTooManySessions, m.cfg.MaxSessions)
	}
	t := m.tenantLocked(h.Tenant)
	tok := m.newTokenLocked()
	sess = &Session{
		token:      tok,
		tenant:     t,
		class:      h.Class,
		pendingCap: m.cfg.SessionPending,
		appliedCap: m.cfg.AppliedWindow,
		pending:    make(map[uint64]struct{}),
		applied:    make(map[uint64]wire.Status),
		backlog:    NewBacklog(m.cfg.BacklogBytes),
	}
	m.sessions[tok] = sess
	m.mu.Unlock()
	t.sessions.Add(1)
	sess.Attach(conn)
	return sess, nil, false, nil, nil
}

// WireStats snapshots every tenant's accounting, sorted by name.
func (m *Manager) WireStats() []wire.TenantStats {
	m.mu.Lock()
	tenants := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		tenants = append(tenants, t)
	}
	m.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
	out := make([]wire.TenantStats, len(tenants))
	for i, t := range tenants {
		out[i] = t.Stats()
	}
	return out
}

// Session is one resumable client session: its token, tenant, priority
// class, outstanding-request window, duplicate-suppression state, and
// response backlog.
type Session struct {
	token      uint64
	tenant     *Tenant
	class      uint8
	pendingCap int
	appliedCap int

	mu           sync.Mutex
	attached     any
	pending      map[uint64]struct{}
	applied      map[uint64]wire.Status
	appliedOrder []uint64
	backlog      *Backlog
}

// Token returns the session token.
func (s *Session) Token() uint64 { return s.token }

// Tenant returns the owning tenant.
func (s *Session) Tenant() *Tenant { return s.tenant }

// Class returns the session-wide lane override byte (0 = none).
func (s *Session) Class() uint8 { return s.class }

// Attach binds the session to a connection, returning the previously
// attached one (nil if none) so the caller can kick it.
func (s *Session) Attach(conn any) (prev any) {
	s.mu.Lock()
	prev = s.attached
	s.attached = conn
	s.mu.Unlock()
	if prev == conn {
		return nil
	}
	return prev
}

// Detach clears the attachment if conn is still the attached connection.
func (s *Session) Detach(conn any) {
	s.mu.Lock()
	if s.attached == conn {
		s.attached = nil
	}
	s.mu.Unlock()
}

// BeginPending registers an outstanding request id. dup reports an id
// already in flight (the caller should drop the duplicate silently — the
// original's response will answer it); full reports the session's
// outstanding cap is reached (shed with CauseSession).
func (s *Session) BeginPending(id uint64) (dup, full bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pending[id]; ok {
		return true, false
	}
	if len(s.pending) >= s.pendingCap {
		return false, true
	}
	s.pending[id] = struct{}{}
	return false, false
}

// AbortPending removes an id registered by BeginPending whose enqueue failed.
func (s *Session) AbortPending(id uint64) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// MarkApplied records a request's outcome for duplicate suppression and
// clears its pending slot. The applied window is bounded: the oldest entry
// falls out once appliedCap outcomes are retained.
func (s *Session) MarkApplied(id uint64, status wire.Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, id)
	if _, ok := s.applied[id]; !ok {
		s.appliedOrder = append(s.appliedOrder, id)
		if len(s.appliedOrder) > s.appliedCap {
			old := s.appliedOrder[0]
			s.appliedOrder = s.appliedOrder[1:]
			delete(s.applied, old)
		}
	}
	s.applied[id] = status
}

// LookupApplied reports a previously applied request's status.
func (s *Session) LookupApplied(id uint64) (wire.Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.applied[id]
	return st, ok
}

// LookupFrame returns the backlogged response frames for id, if spilled.
func (s *Session) LookupFrame(id uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backlog.Frame(id)
}

// Spill parks an undeliverable response in the backlog. Overflow is counted
// against the tenant (CauseBacklog) and the response is dropped — the client
// re-asks under the same id after resuming.
func (s *Session) Spill(id uint64, lane wire.Lane, frames []byte) error {
	s.mu.Lock()
	before := s.backlog.Bytes()
	err := s.backlog.Append(id, frames)
	delta := int64(s.backlog.Bytes() - before)
	s.mu.Unlock()
	s.tenant.backlogBytes.Add(delta)
	if err != nil {
		s.tenant.NoteShed(lane, CauseBacklog)
	}
	return err
}

// Replay drains the backlog's unreplayed responses in original order.
func (s *Session) Replay() []ReplayEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backlog.Replay()
}

// BacklogBytes reports the session's retained backlog size.
func (s *Session) BacklogBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backlog.Bytes()
}

// BacklogPending reports backlog records not yet replayed.
func (s *Session) BacklogPending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backlog.Pending()
}

// ResolveLane picks a request's service lane: an explicit per-frame override
// wins, then the session's priority class, then the opcode's default.
func ResolveLane(op wire.Op, frameOverride, sessionClass uint8) wire.Lane {
	if l, ok := wire.DecodeLaneOverride(frameOverride); ok {
		return l
	}
	if l, ok := wire.DecodeLaneOverride(sessionClass); ok {
		return l
	}
	return wire.LaneOf(op)
}

// RequestCost prices a request for the fair scheduler: one unit plus one per
// 4 KiB of payload plus one per 8 staged pairs, so a bulk put is charged
// proportionally to the device time it will consume — per-pair index work as
// much as raw bytes — rather than counting like a point get.
func RequestCost(r *wire.Request) int64 {
	n := len(r.Key) + len(r.Value)
	for i := range r.Pairs {
		n += len(r.Pairs[i].Key) + len(r.Pairs[i].Value)
	}
	return 1 + int64(n)/4096 + int64(len(r.Pairs))/8
}
