// Package vpic generates a synthetic stand-in for the paper's macro
// benchmark dataset: a partial VPIC particle-in-cell simulation dump.
//
// The paper's dataset is 256M particles in 16 binary files; each particle is
// 48 bytes — a 16-byte particle ID and a 32-byte payload of 8 numeric
// attributes, one of which (kinetic energy) drives secondary index
// construction and selective queries. The real dump is not redistributable,
// so we synthesize particles with the same record schema and an
// exponentially distributed energy attribute, which makes the paper's
// selectivity levels (0.1%..20%) reproducible via closed-form thresholds:
// P(E > t) = exp(-t).
package vpic

import (
	"encoding/binary"
	"math"

	"kvcsd/internal/keyenc"
	"kvcsd/internal/sim"
)

// ParticleSize is the record size: 16 B ID + 32 B payload.
const ParticleSize = 48

// PayloadSize is the value portion of a particle record.
const PayloadSize = 32

// EnergyOffset locates the float32 kinetic energy inside the payload (the
// last of the 8 numeric attributes).
const EnergyOffset = 28

// Particle is one simulation particle.
type Particle struct {
	ID      uint64
	Payload [PayloadSize]byte
}

// Key returns the particle's 16-byte primary key.
func (pt *Particle) Key() []byte {
	k := keyenc.MakeFixedKey16(pt.ID)
	return append([]byte(nil), k.Bytes()...)
}

// Energy decodes the particle's kinetic energy attribute.
func (pt *Particle) Energy() float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(pt.Payload[EnergyOffset:]))
}

// File is one synthetic particle dump file.
type File struct {
	Index     int
	Particles []Particle
}

// Dataset is a full synthetic dump: NumFiles files of PerFile particles.
type Dataset struct {
	Files []File
}

// Generate builds a deterministic dataset. Particle IDs are unique across
// files (file f holds IDs f*perFile .. (f+1)*perFile-1, bit-mixed so key
// order is not insertion order); the first seven attributes are uniform
// noise and the energy attribute is Exp(1)-distributed.
func Generate(seed int64, numFiles, perFile int) *Dataset {
	ds := &Dataset{}
	for f := 0; f < numFiles; f++ {
		rng := sim.NewRNG(seed).Fork(int64(f + 1))
		file := File{Index: f, Particles: make([]Particle, perFile)}
		for i := 0; i < perFile; i++ {
			pt := &file.Particles[i]
			pt.ID = mix64(uint64(f*perFile + i))
			for a := 0; a < 7; a++ {
				binary.LittleEndian.PutUint32(pt.Payload[a*4:], uint32(rng.Uint64()))
			}
			energy := float32(rng.ExpFloat64())
			binary.LittleEndian.PutUint32(pt.Payload[EnergyOffset:], math.Float32bits(energy))
		}
		ds.Files = append(ds.Files, file)
	}
	return ds
}

// mix64 is a splitmix64 finalizer: spreads sequential IDs over the key space
// so insertion order is not already sorted.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// TotalParticles returns the dataset size.
func (ds *Dataset) TotalParticles() int {
	n := 0
	for _, f := range ds.Files {
		n += len(f.Particles)
	}
	return n
}

// EnergyThreshold returns the energy cutoff t such that a fraction sel of
// particles (in expectation) satisfies energy > t, using the Exp(1)
// distribution: t = -ln(sel).
func EnergyThreshold(sel float64) float32 {
	if sel <= 0 {
		return math.MaxFloat32
	}
	if sel >= 1 {
		return 0
	}
	return float32(-math.Log(sel))
}

// CountAbove returns how many particles in the dataset exceed the threshold
// (ground truth for query validation).
func (ds *Dataset) CountAbove(t float32) int {
	n := 0
	for _, f := range ds.Files {
		for i := range f.Particles {
			if f.Particles[i].Energy() > t {
				n++
			}
		}
	}
	return n
}
