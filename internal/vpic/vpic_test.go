package vpic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	ds := Generate(1, 4, 1000)
	if len(ds.Files) != 4 || ds.TotalParticles() != 4000 {
		t.Fatalf("files=%d total=%d", len(ds.Files), ds.TotalParticles())
	}
	for i, f := range ds.Files {
		if f.Index != i || len(f.Particles) != 1000 {
			t.Fatalf("file %d malformed", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 2, 100)
	b := Generate(7, 2, 100)
	for f := range a.Files {
		for i := range a.Files[f].Particles {
			if a.Files[f].Particles[i] != b.Files[f].Particles[i] {
				t.Fatal("same seed produced different datasets")
			}
		}
	}
	c := Generate(8, 2, 100)
	if a.Files[0].Particles[0] == c.Files[0].Particles[0] {
		t.Fatal("different seeds produced identical particles")
	}
}

func TestIDsUnique(t *testing.T) {
	ds := Generate(3, 4, 2000)
	seen := make(map[uint64]bool, 8000)
	for _, f := range ds.Files {
		for i := range f.Particles {
			id := f.Particles[i].ID
			if seen[id] {
				t.Fatalf("duplicate particle ID %x", id)
			}
			seen[id] = true
		}
	}
}

func TestKeyEncodesID(t *testing.T) {
	pt := Particle{ID: 0xCAFEBABE}
	k := pt.Key()
	if len(k) != 16 {
		t.Fatalf("key length %d", len(k))
	}
	var got uint64
	for _, b := range k[8:] {
		got = got<<8 | uint64(b)
	}
	if got != 0xCAFEBABE {
		t.Fatalf("decoded ID %x", got)
	}
}

func TestEnergyDistribution(t *testing.T) {
	ds := Generate(11, 1, 100000)
	var sum float64
	for i := range ds.Files[0].Particles {
		e := float64(ds.Files[0].Particles[i].Energy())
		if e < 0 {
			t.Fatal("negative energy")
		}
		sum += e
	}
	mean := sum / 100000
	if mean < 0.95 || mean > 1.05 {
		t.Fatalf("energy mean %v, want ~1 (Exp(1))", mean)
	}
}

func TestEnergyThreshold(t *testing.T) {
	if EnergyThreshold(1) != 0 {
		t.Fatal("sel=1 should be threshold 0")
	}
	if EnergyThreshold(0) != math.MaxFloat32 {
		t.Fatal("sel=0 should be max threshold")
	}
	// t = -ln(0.5) ~ 0.693
	if got := EnergyThreshold(0.5); math.Abs(float64(got)-0.693) > 0.001 {
		t.Fatalf("threshold(0.5) = %v", got)
	}
}

func TestSelectivityMatchesThreshold(t *testing.T) {
	ds := Generate(5, 2, 50000)
	total := float64(ds.TotalParticles())
	for _, sel := range []float64{0.001, 0.01, 0.05, 0.20} {
		got := float64(ds.CountAbove(EnergyThreshold(sel))) / total
		// Expect within a factor of ~1.5 plus small-sample noise.
		if got < sel*0.6 || got > sel*1.6 {
			t.Errorf("selectivity %v -> measured %v", sel, got)
		}
	}
}

func TestSelectivityMonotoneProperty(t *testing.T) {
	ds := Generate(9, 1, 20000)
	f := func(a, b float64) bool {
		sa := math.Abs(math.Mod(a, 1))
		sb := math.Abs(math.Mod(b, 1))
		if sa == 0 || sb == 0 {
			return true
		}
		if sa > sb {
			sa, sb = sb, sa
		}
		// Lower selectivity -> higher threshold -> fewer matches.
		return ds.CountAbove(EnergyThreshold(sa)) <= ds.CountAbove(EnergyThreshold(sb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
