// Package nvme defines the command interface between the KV-CSD client
// library and the device: the NVMe Key-Value command set (Store, Retrieve,
// Delete, Exist, List) plus KV-CSD's vendor extensions for operations the
// standard does not cover — keyspace management, bulk store, compaction,
// secondary index construction, and offloaded queries (paper §III, "NVMe").
//
// Commands travel through a QueuePair: a bounded submission queue drained by
// the device runtime, with per-command completions the host waits on. Queue
// interactions happen in virtual time under internal/sim.
package nvme

import (
	"errors"
	"fmt"

	"kvcsd/internal/compaction"
	"kvcsd/internal/keyenc"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
)

// Opcode identifies a command. The first group mirrors the NVMe KV command
// set specification; the second group is KV-CSD vendor-specific.
type Opcode uint8

// Command opcodes.
const (
	// Standard NVMe KV command set.
	OpStore Opcode = iota
	OpRetrieve
	OpDelete
	OpExist
	OpList

	// KV-CSD vendor extensions.
	OpCreateKeyspace
	OpOpenKeyspace
	OpDeleteKeyspace
	OpBulkStore
	OpCompact
	OpCompactStatus
	OpBuildSecondaryIndex
	OpIndexStatus
	OpQueryPrimaryRange
	OpQuerySecondaryPoint
	OpQuerySecondaryRange
	OpKeyspaceInfo
	OpSync
	OpCompactWithIndexes

	// Integrity extensions: background media scrub, extent read/repair for
	// replica read-repair, and targeted corruption injection (test verb).
	OpScrubMedia
	OpReadExtent
	OpRepairExtent
	OpCorruptMedia

	// Collaborative compaction extensions: the host assist loop long-polls
	// merge jobs and pushes merged runs back; the array tier sets the split
	// policy and triggers cold-placement sweeps.
	OpHostMergePoll
	OpHostMergePush
	OpCompactPolicy
	OpMigrateCold
)

var opNames = map[Opcode]string{
	OpStore:               "Store",
	OpRetrieve:            "Retrieve",
	OpDelete:              "Delete",
	OpExist:               "Exist",
	OpList:                "List",
	OpCreateKeyspace:      "CreateKeyspace",
	OpOpenKeyspace:        "OpenKeyspace",
	OpDeleteKeyspace:      "DeleteKeyspace",
	OpBulkStore:           "BulkStore",
	OpCompact:             "Compact",
	OpCompactStatus:       "CompactStatus",
	OpBuildSecondaryIndex: "BuildSecondaryIndex",
	OpIndexStatus:         "IndexStatus",
	OpQueryPrimaryRange:   "QueryPrimaryRange",
	OpQuerySecondaryPoint: "QuerySecondaryPoint",
	OpQuerySecondaryRange: "QuerySecondaryRange",
	OpKeyspaceInfo:        "KeyspaceInfo",
	OpSync:                "Sync",
	OpCompactWithIndexes:  "CompactWithIndexes",
	OpScrubMedia:          "ScrubMedia",
	OpReadExtent:          "ReadExtent",
	OpRepairExtent:        "RepairExtent",
	OpCorruptMedia:        "CorruptMedia",
	OpHostMergePoll:       "HostMergePoll",
	OpHostMergePush:       "HostMergePush",
	OpCompactPolicy:       "CompactPolicy",
	OpMigrateCold:         "MigrateCold",
}

// String names the opcode.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Status is a command completion status.
type Status uint8

// Completion statuses.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusExists
	StatusInvalid
	StatusKeyspaceState // operation not valid in the keyspace's current state
	StatusNoSpace
	StatusInternal
	StatusPoweredOff // device lost power; retry after it is restarted
	StatusCorrupted  // checksum mismatch on the read path; retry on another replica
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NotFound"
	case StatusExists:
		return "Exists"
	case StatusInvalid:
		return "Invalid"
	case StatusKeyspaceState:
		return "KeyspaceState"
	case StatusNoSpace:
		return "NoSpace"
	case StatusInternal:
		return "Internal"
	case StatusPoweredOff:
		return "PoweredOff"
	case StatusCorrupted:
		return "Corrupted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Err converts a non-OK status into an error (nil for StatusOK).
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return fmt.Errorf("nvme: %s", s)
}

// SecondaryIndexSpec configures a secondary index per the paper: which byte
// range of the value holds the key and how to interpret it.
type SecondaryIndexSpec struct {
	Name   string
	Offset int // byte offset within the value
	Length int // byte length of the field
	Type   keyenc.SecondaryType
}

// Validate checks spec sanity against a value size (0 = unknown).
func (s SecondaryIndexSpec) Validate(valueSize int) error {
	if s.Name == "" {
		return errors.New("nvme: secondary index needs a name")
	}
	if s.Offset < 0 || s.Length <= 0 {
		return errors.New("nvme: secondary index byte range invalid")
	}
	if w := s.Type.Width(); w != 0 && s.Length != w {
		return fmt.Errorf("nvme: type %s requires length %d, got %d", s.Type, w, s.Length)
	}
	if valueSize > 0 && s.Offset+s.Length > valueSize {
		return fmt.Errorf("nvme: byte range [%d,%d) exceeds value size %d", s.Offset, s.Offset+s.Length, valueSize)
	}
	return nil
}

// KVPair is one key-value record, used in bulk payloads and query results.
// In bulk store payloads, Tombstone marks a deletion (paper: bulk deletes).
type KVPair struct {
	Key       []byte
	Value     []byte
	Tombstone bool
}

// Command is a request sent from the host client to the device. Fields are
// interpreted per opcode; unused fields are zero.
type Command struct {
	Op       Opcode
	Keyspace string

	Key   []byte
	Value []byte

	// Bulk store payload (OpBulkStore).
	Pairs []KVPair

	// Range bounds (OpQueryPrimaryRange / OpQuerySecondaryRange), inclusive
	// low, exclusive high; nil means open.
	Low, High []byte

	// Secondary index operations.
	Index SecondaryIndexSpec
	// Indexes declares several secondary indexes at compaction time
	// (OpCompactWithIndexes, the consolidated construction extension).
	Indexes []SecondaryIndexSpec

	// ResultLimit caps query results (0 = unlimited).
	ResultLimit int

	// Extent addresses one checksummed granule (OpReadExtent, OpRepairExtent,
	// OpCorruptMedia); the granule's keyspace is Command.Keyspace and repair
	// payloads travel in Command.Value.
	Extent ExtentAddr

	// Span is the command's trace root, set by an instrumented client. The
	// queue and the device attach stage spans to it; nil when tracing is off.
	Span *obs.Span
}

// WireSize approximates the bytes the command occupies crossing PCIe: a fixed
// 64 B NVMe submission entry plus key/value/bulk payloads.
func (c *Command) WireSize() int64 {
	n := int64(64)
	n += int64(len(c.Key) + len(c.Value) + len(c.Low) + len(c.High))
	for _, p := range c.Pairs {
		n += int64(len(p.Key) + len(p.Value) + 8) // per-pair length headers
	}
	return n
}

// ExtentAddr addresses one checksummed granule of a keyspace cluster in the
// replica-independent form core.ExtentRef defines: the cluster kind (a
// core.ExtentKind value), the secondary-index name for SIDX extents, and the
// granule ordinal.
type ExtentAddr struct {
	Kind    uint8
	Index   string
	Granule int64
	// Bits is how many bits OpCorruptMedia flips (0 = device default).
	Bits int
}

// Completion is the device's response to a command.
type Completion struct {
	Status Status
	// Value holds a single result (OpRetrieve, OpReadExtent) or an encoded
	// scrub report (OpScrubMedia).
	Value []byte
	// Count reports scalar results (bit flips applied by OpCorruptMedia).
	Count int64
	// Pairs holds streamed query results.
	Pairs []KVPair
	// Exists answers OpExist.
	Exists bool
	// Info carries keyspace metadata (OpKeyspaceInfo / status ops).
	Info KeyspaceInfo
	// Done reports background-operation completion for status polls.
	Done bool
	// Progress carries compaction-pipeline progress on OpCompactStatus
	// (nil when the device predates the extension).
	Progress *compaction.Progress
}

// WireSize approximates the completion's size on the return path: a 16 B
// completion entry plus any returned data.
func (c *Completion) WireSize() int64 {
	n := int64(16 + len(c.Value))
	for _, p := range c.Pairs {
		n += int64(len(p.Key) + len(p.Value) + 8)
	}
	if c.Progress != nil {
		n += c.Progress.WireSize()
	}
	return n
}

// KeyspaceInfo mirrors the keyspace-manager metadata the paper describes:
// state, pair count, key bounds.
type KeyspaceInfo struct {
	Name       string
	State      string
	Pairs      int64
	Bytes      int64
	MinKey     []byte
	MaxKey     []byte
	Secondary  []string // names of built secondary indexes
	ZoneCount  int
	CompactDur sim.Time // device-side compaction duration, once finished
}

// submission couples a command with its completion rendezvous.
type submission struct {
	cmd  *Command
	comp *Completion
	done *sim.Event
	// at is when Submit was called — the start of the queue-wait stage,
	// including any time spent blocked on a full submission queue.
	at sim.Time
}

// QueuePair is a bounded NVMe submission/completion queue between one or more
// host submitters and the device dispatch loop.
type QueuePair struct {
	env       *sim.Env
	depth     int
	queue     []*submission
	popWait   []*sim.Proc // device dispatchers waiting for work
	pushWait  []*sim.Proc // submitters waiting for queue space
	closed    bool
	submitted int64
	completed int64
}

// NewQueuePair creates a queue pair with the given submission-queue depth.
func NewQueuePair(env *sim.Env, depth int) *QueuePair {
	if depth < 1 {
		panic("nvme: queue depth must be >= 1")
	}
	return &QueuePair{env: env, depth: depth}
}

// Depth returns the configured queue depth.
func (q *QueuePair) Depth() int { return q.depth }

// Pending returns the number of commands waiting in the submission queue.
func (q *QueuePair) Pending() int { return len(q.queue) }

// Submitted returns the total number of commands ever submitted.
func (q *QueuePair) Submitted() int64 { return q.submitted }

// Completed returns the total number of commands completed.
func (q *QueuePair) Completed() int64 { return q.completed }

// wake moves one waiting process from list to runnable.
func (q *QueuePair) wake(list *[]*sim.Proc) {
	if len(*list) == 0 {
		return
	}
	p := (*list)[0]
	copy(*list, (*list)[1:])
	*list = (*list)[:len(*list)-1]
	q.env.Wake(p)
}

// Close marks the queue closed: once drained, Pop returns (nil, nil) to all
// current and future dispatchers. Submitting to a closed queue panics.
func (q *QueuePair) Close() {
	q.closed = true
	for _, w := range q.popWait {
		q.env.Wake(w)
	}
	q.popWait = q.popWait[:0]
}

// Closed reports whether Close was called.
func (q *QueuePair) Closed() bool { return q.closed }

// Submit enqueues cmd, blocking while the queue is full, and returns a
// handle the caller can Wait on for the completion.
func (q *QueuePair) Submit(p *sim.Proc, cmd *Command) *Handle {
	if q.closed {
		panic("nvme: submit on closed queue")
	}
	at := q.env.Now()
	for len(q.queue) >= q.depth {
		q.pushWait = append(q.pushWait, p)
		p.Block()
	}
	sub := &submission{cmd: cmd, comp: &Completion{}, done: sim.NewEvent(q.env), at: at}
	q.queue = append(q.queue, sub)
	q.submitted++
	q.wake(&q.popWait)
	return &Handle{env: q.env, sub: sub}
}

// Pop removes the oldest submission, blocking while the queue is empty.
// Called by the device dispatch loop. Returns (nil, nil) once the queue is
// closed and drained.
func (q *QueuePair) Pop(p *sim.Proc) (*Command, *Responder) {
	for len(q.queue) == 0 {
		if q.closed {
			return nil, nil
		}
		q.popWait = append(q.popWait, p)
		p.Block()
	}
	sub := q.queue[0]
	copy(q.queue, q.queue[1:])
	q.queue = q.queue[:len(q.queue)-1]
	q.wake(&q.pushWait)
	// Close out the queue-wait stage: submit call to dispatcher pickup.
	sub.cmd.Span.ChildFrom("queue-wait", obs.StageQueue, sub.at).End()
	return sub.cmd, &Responder{q: q, sub: sub}
}

// Handle lets a submitter wait for its command's completion.
type Handle struct {
	env *sim.Env
	sub *submission
}

// Wait blocks until the device completes the command and returns the
// completion.
func (h *Handle) Wait(p *sim.Proc) *Completion {
	p.Wait(h.sub.done)
	return h.sub.comp
}

// Ready reports whether the completion has been posted.
func (h *Handle) Ready() bool { return h.sub.done.Fired() }

// WaitTimeout blocks until the completion arrives or d of virtual time
// passes, whichever is first, returning (completion, true) or (nil, false).
// On timeout the command is merely abandoned by this waiter: the device
// still executes it and posts the completion, which a later Wait would
// observe. Two helper processes arbitrate (a timer and a completion
// watcher); both always terminate because the device completes every
// submitted command, so abandoned handles leak nothing. The timer runs to
// its deadline either way, which can pad the tail of a run's virtual time
// by up to d.
func (h *Handle) WaitTimeout(p *sim.Proc, d sim.Duration) (*Completion, bool) {
	if d <= 0 {
		return h.Wait(p), true
	}
	if h.sub.done.Fired() {
		return h.sub.comp, true
	}
	either := sim.NewEvent(h.env)
	h.env.Go("nvme-timeout", func(tp *sim.Proc) {
		tp.Sleep(d)
		either.Signal()
	})
	h.env.Go("nvme-completion-watch", func(wp *sim.Proc) {
		wp.Wait(h.sub.done)
		either.Signal()
	})
	p.Wait(either)
	if h.sub.done.Fired() {
		return h.sub.comp, true
	}
	return nil, false
}

// Responder posts the completion for a popped command.
type Responder struct {
	q   *QueuePair
	sub *submission
}

// Complete fills in the completion and wakes the submitter.
func (r *Responder) Complete(comp *Completion) {
	*r.sub.comp = *comp
	r.q.completed++
	r.sub.done.Signal()
}
