package nvme

import (
	"testing"
	"time"

	"kvcsd/internal/keyenc"
	"kvcsd/internal/sim"
)

func TestOpcodeStrings(t *testing.T) {
	if OpStore.String() != "Store" || OpBulkStore.String() != "BulkStore" ||
		OpQuerySecondaryRange.String() != "QuerySecondaryRange" {
		t.Fatal("opcode names wrong")
	}
	if Opcode(200).String() != "Opcode(200)" {
		t.Fatal("unknown opcode name wrong")
	}
}

func TestStatusErr(t *testing.T) {
	if StatusOK.Err() != nil {
		t.Fatal("OK should be nil error")
	}
	if StatusNotFound.Err() == nil || StatusNotFound.Err().Error() != "nvme: NotFound" {
		t.Fatalf("err %v", StatusNotFound.Err())
	}
	if Status(99).String() != "Status(99)" {
		t.Fatal("unknown status string")
	}
}

func TestSecondarySpecValidate(t *testing.T) {
	ok := SecondaryIndexSpec{Name: "energy", Offset: 28, Length: 4, Type: keyenc.TypeFloat32}
	if err := ok.Validate(32); err != nil {
		t.Fatal(err)
	}
	cases := []SecondaryIndexSpec{
		{Name: "", Offset: 0, Length: 4, Type: keyenc.TypeFloat32},
		{Name: "x", Offset: -1, Length: 4, Type: keyenc.TypeFloat32},
		{Name: "x", Offset: 0, Length: 0, Type: keyenc.TypeBytes},
		{Name: "x", Offset: 0, Length: 3, Type: keyenc.TypeFloat32},  // width mismatch
		{Name: "x", Offset: 30, Length: 4, Type: keyenc.TypeFloat32}, // beyond value
	}
	for i, c := range cases {
		if err := c.Validate(32); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
	// Unknown value size skips the range check.
	late := SecondaryIndexSpec{Name: "x", Offset: 1000, Length: 4, Type: keyenc.TypeFloat32}
	if err := late.Validate(0); err != nil {
		t.Fatal(err)
	}
}

func TestCommandWireSize(t *testing.T) {
	c := &Command{Op: OpStore, Key: make([]byte, 16), Value: make([]byte, 32)}
	if got := c.WireSize(); got != 64+48 {
		t.Fatalf("wire size %d", got)
	}
	bulk := &Command{Op: OpBulkStore, Pairs: []KVPair{
		{Key: make([]byte, 16), Value: make([]byte, 32)},
		{Key: make([]byte, 16), Value: make([]byte, 32)},
	}}
	if got := bulk.WireSize(); got != 64+2*(16+32+8) {
		t.Fatalf("bulk wire size %d", got)
	}
}

func TestCompletionWireSize(t *testing.T) {
	c := &Completion{Value: make([]byte, 100)}
	if c.WireSize() != 116 {
		t.Fatalf("size %d", c.WireSize())
	}
	q := &Completion{Pairs: []KVPair{{Key: make([]byte, 4), Value: make([]byte, 6)}}}
	if q.WireSize() != 16+18 {
		t.Fatalf("size %d", q.WireSize())
	}
}

func TestQueuePairRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueuePair(env, 8)
	var got *Completion
	env.Go("device", func(p *sim.Proc) {
		cmd, r := q.Pop(p)
		if cmd.Op != OpRetrieve || string(cmd.Key) != "k1" {
			t.Errorf("popped %v %q", cmd.Op, cmd.Key)
		}
		p.Sleep(10 * time.Microsecond) // device processing
		r.Complete(&Completion{Status: StatusOK, Value: []byte("v1")})
	})
	env.Go("host", func(p *sim.Proc) {
		h := q.Submit(p, &Command{Op: OpRetrieve, Key: []byte("k1")})
		got = h.Wait(p)
		if p.Now() != sim.Time(10*time.Microsecond) {
			t.Errorf("completion at %v", p.Now())
		}
	})
	env.Run()
	if got == nil || got.Status != StatusOK || string(got.Value) != "v1" {
		t.Fatalf("completion %+v", got)
	}
	if q.Submitted() != 1 || q.Completed() != 1 || q.Pending() != 0 {
		t.Fatalf("counters %d/%d/%d", q.Submitted(), q.Completed(), q.Pending())
	}
}

func TestQueuePairFIFO(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueuePair(env, 16)
	var order []int
	env.Go("device", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			cmd, r := q.Pop(p)
			order = append(order, int(cmd.Key[0]))
			r.Complete(&Completion{Status: StatusOK})
		}
	})
	for i := 0; i < 5; i++ {
		i := i
		env.Go("host", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i) * time.Microsecond)
			h := q.Submit(p, &Command{Op: OpStore, Key: []byte{byte(i)}})
			h.Wait(p)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v", order)
		}
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueuePair(env, 1)
	var submitTimes []sim.Time
	env.Go("device", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			_, r := q.Pop(p)
			p.Sleep(time.Millisecond)
			r.Complete(&Completion{Status: StatusOK})
		}
	})
	env.Go("host", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			q.Submit(p, &Command{Op: OpStore})
			submitTimes = append(submitTimes, p.Now())
		}
	})
	env.Run()
	// With depth 1 and 1ms service, the 3rd submit cannot happen at t=0.
	if submitTimes[2] == 0 {
		t.Fatalf("no backpressure: %v", submitTimes)
	}
}

func TestHandleReady(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueuePair(env, 4)
	env.Go("host", func(p *sim.Proc) {
		h := q.Submit(p, &Command{Op: OpSync})
		if h.Ready() {
			t.Error("handle ready before device ran")
		}
		// Device completes it.
		cmd, r := q.Pop(p)
		if cmd.Op != OpSync {
			t.Error("wrong op")
		}
		r.Complete(&Completion{Status: StatusOK})
		if !h.Ready() {
			t.Error("handle not ready after completion")
		}
		c := h.Wait(p)
		if c.Status != StatusOK {
			t.Error("bad status")
		}
	})
	env.Run()
}

func TestAsyncCompletionPattern(t *testing.T) {
	// The deferred-compaction pattern: submit returns quickly, host exits,
	// device finishes later.
	env := sim.NewEnv()
	q := NewQueuePair(env, 4)
	var hostDone, deviceDone sim.Time
	env.Go("device", func(p *sim.Proc) {
		cmd, r := q.Pop(p)
		r.Complete(&Completion{Status: StatusOK}) // ack immediately
		if cmd.Op != OpCompact {
			t.Error("wrong op")
		}
		p.Sleep(time.Second) // background compaction continues
		deviceDone = p.Now()
	})
	env.Go("host", func(p *sim.Proc) {
		h := q.Submit(p, &Command{Op: OpCompact})
		h.Wait(p)
		hostDone = p.Now()
	})
	env.Run()
	if hostDone != 0 {
		t.Fatalf("host should return immediately, got %v", hostDone)
	}
	if deviceDone != sim.Time(time.Second) {
		t.Fatalf("device finished at %v", deviceDone)
	}
}

func TestBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueuePair(sim.NewEnv(), 0)
}

func TestMultipleDispatchersDrainQueue(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueuePair(env, 32)
	served := 0
	for i := 0; i < 4; i++ {
		env.Go("dispatcher", func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				_, r := q.Pop(p)
				p.Sleep(time.Millisecond)
				r.Complete(&Completion{Status: StatusOK})
				served++
			}
		})
	}
	var end sim.Time
	env.Go("host", func(p *sim.Proc) {
		var hs []*Handle
		for i := 0; i < 20; i++ {
			hs = append(hs, q.Submit(p, &Command{Op: OpStore}))
		}
		for _, h := range hs {
			h.Wait(p)
		}
		end = p.Now()
	})
	env.Run()
	if served != 20 {
		t.Fatalf("served %d", served)
	}
	// 20 commands, 4 dispatchers, 1ms each => 5ms.
	if end != sim.Time(5*time.Millisecond) {
		t.Fatalf("end %v", end)
	}
}

func TestQueueCloseDrainsDispatchers(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueuePair(env, 4)
	exited := 0
	for i := 0; i < 3; i++ {
		env.Go("dispatcher", func(p *sim.Proc) {
			for {
				cmd, _ := q.Pop(p)
				if cmd == nil {
					exited++
					return
				}
			}
		})
	}
	env.Go("closer", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		q.Close()
		if !q.Closed() {
			t.Error("Closed() false after Close")
		}
	})
	env.Run()
	if exited != 3 {
		t.Fatalf("%d dispatchers exited", exited)
	}
}

func TestSubmitOnClosedQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env := sim.NewEnv()
	q := NewQueuePair(env, 4)
	q.Close()
	env.Go("p", func(p *sim.Proc) {
		q.Submit(p, &Command{Op: OpSync})
	})
	env.Run()
}

func TestPopDrainsQueueBeforeCloseReturnsNil(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueuePair(env, 4)
	var served int
	env.Go("host", func(p *sim.Proc) {
		h := q.Submit(p, &Command{Op: OpSync})
		q.Close()
		// Already-queued commands still complete after Close.
		cmd, r := q.Pop(p)
		if cmd == nil {
			t.Error("queued command dropped at close")
			return
		}
		served++
		r.Complete(&Completion{Status: StatusOK})
		if c := h.Wait(p); c.Status != StatusOK {
			t.Error("completion lost")
		}
		if cmd2, _ := q.Pop(p); cmd2 != nil {
			t.Error("pop after drain should be nil")
		}
	})
	env.Run()
	if served != 1 {
		t.Fatalf("served %d", served)
	}
}
