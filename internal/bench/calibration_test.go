package bench

// Calibration tests assert the paper's comparative shapes — who wins, by
// roughly what factor, in which direction the trend moves — with generous
// tolerances, since absolute virtual-time numbers are a property of the
// simulator, not of the authors' testbed. EXPERIMENTS.md records the exact
// paper-vs-measured values.

import (
	"os"
	"testing"
)

// calScale trims sweeps so the whole calibration suite stays fast.
func calScale() Scale {
	s := DefaultScale()
	s.Threads = []int{2, 32}
	s.Fig10Queries = []int{256, 2048}
	s.VPICParticlesPerFile = 8192
	s.Selectivities = []float64{0.001, 0.01, 0.20}
	return s
}

func TestCalibrationFig7Shape(t *testing.T) {
	s := calScale()
	a, b, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		a.Print(os.Stderr)
		b.Print(os.Stderr)
	}
	// KV-CSD wins at every core count (paper: 7.9x at 2 cores, 4.2x at 32).
	sp2 := a.Float(0, "speedup")
	sp32 := a.Float(1, "speedup")
	if sp2 < 3 || sp2 > 40 {
		t.Errorf("fig7a speedup @2 cores = %.1fx, expected roughly 4-20x", sp2)
	}
	if sp32 < 2 || sp32 > 25 {
		t.Errorf("fig7a speedup @32 cores = %.1fx, expected roughly 2-15x", sp32)
	}
	// RocksDB improves with cores; KV-CSD barely changes (peaks early).
	if r2, r32 := a.Float(0, "rocksdb_write_s"), a.Float(1, "rocksdb_write_s"); r32 >= r2 {
		t.Errorf("rocksdb did not improve with cores: %.4fs -> %.4fs", r2, r32)
	}
	k2, k32 := a.Float(0, "kvcsd_write_s"), a.Float(1, "kvcsd_write_s")
	if k32 < k2*0.5 || k32 > k2*2 {
		t.Errorf("kvcsd write time should be core-insensitive: %.4fs vs %.4fs", k2, k32)
	}
}

func TestCalibrationFig8Shape(t *testing.T) {
	s := calScale()
	s.Fig8ValueSizes = []int{32, 4096}
	tb, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		tb.Print(os.Stderr)
	}
	// KV-CSD wins at every value size, by a growing factor as values grow
	// (paper: ~10x at 4 KiB), and 2 host cores suffice for KV-CSD.
	small := tb.Float(0, "speedup32")
	large := tb.Float(1, "speedup32")
	if small < 2 {
		t.Errorf("fig8 speedup at 32B = %.1fx, want >= 2x", small)
	}
	if large < small {
		t.Errorf("fig8 speedup should grow with value size: %.1fx -> %.1fx", small, large)
	}
	k32 := tb.Float(1, "kvcsd32_s")
	k2 := tb.Float(1, "kvcsd2_s")
	if k2 > k32*1.5 {
		t.Errorf("kvcsd needs only ~2 host cores: 2-core %.4fs vs 32-core %.4fs", k2, k32)
	}
}

func TestCalibrationFig9Shape(t *testing.T) {
	s := calScale()
	s.Threads = []int{4, 32}
	tb, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		tb.Print(os.Stderr)
	}
	last := len(tb.Rows) - 1
	vsAuto := tb.Float(last, "vs_auto")
	vsDefer := tb.Float(last, "vs_defer")
	vsNone := tb.Float(last, "vs_none")
	// Paper at 32 keyspaces: 7.8x / 6.1x / 2.9x vs auto / deferred / none.
	if vsAuto < 1.5 {
		t.Errorf("fig9 vs auto = %.1fx, want >= 1.5x", vsAuto)
	}
	if vsNone < 1.2 {
		t.Errorf("fig9 vs none = %.1fx, want >= 1.2x", vsNone)
	}
	// Mode ordering: disabled is the fastest RocksDB mode.
	rAuto := tb.Float(last, "rocks_auto_s")
	rNone := tb.Float(last, "rocks_none_s")
	if rNone > rAuto {
		t.Errorf("rocksdb 'none' (%.4fs) should not be slower than 'auto' (%.4fs)", rNone, rAuto)
	}
	_ = vsDefer
}

func TestCalibrationFig10Shape(t *testing.T) {
	s := calScale()
	a, b, err := Fig10(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		a.Print(os.Stderr)
		b.Print(os.Stderr)
	}
	// Both engines answer random GETs fast; the gap is small (paper: KV-CSD
	// up to 1.3x faster, narrowing as RocksDB's client-side caching warms).
	first := a.Float(0, "speedup")
	last := a.Float(len(a.Rows)-1, "speedup")
	if first < 0.4 || first > 3 {
		t.Errorf("fig10 first-round speedup = %.1fx, expected small factor", first)
	}
	if last > first+0.3 {
		t.Errorf("rocksdb should catch up with caching: speedup went %.1fx -> %.1fx", first, last)
	}
	// Read inflation: both read far more media bytes than the app asked for;
	// RocksDB's effective inflation falls as its caches absorb re-reads.
	rkFirst := b.Float(1, "read_inflation")
	rkLast := b.Float(len(b.Rows)-1, "read_inflation")
	if rkFirst <= 10 {
		t.Errorf("rocksdb read inflation = %.1f, expected substantial (blocks per small value)", rkFirst)
	}
	if rkLast >= rkFirst {
		t.Errorf("rocksdb inflation should fall with caching: %.1f -> %.1f", rkFirst, rkLast)
	}
}

func TestCalibrationFig11Fig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro benchmark is slow")
	}
	s := calScale()
	res, err := RunMacro(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		res.Fig11.Print(os.Stderr)
		res.Fig12.Print(os.Stderr)
	}
	// Fig 11: effective write-time speedup (paper: ~10.6x); KV-CSD's
	// compaction+indexing run in the async device window.
	eff := float64(res.RocksTotal) / float64(res.KVCSDInsert)
	if eff < 3 || eff > 60 {
		t.Errorf("fig11 effective write speedup = %.1fx, expected roughly 5-30x", eff)
	}
	if res.KVCSDCompact <= 0 || res.KVCSDIndex <= 0 {
		t.Error("device-side compaction/index phases not recorded")
	}
	// Fig 12: KV-CSD wins at high selectivity; its advantage shrinks as
	// selectivity grows (paper: 7.4x at 0.1% -> 1.3x at 20%).
	mid := res.Fig12.Float(1, "speedup")  // 1%
	high := res.Fig12.Float(2, "speedup") // 20%
	if mid < 1.2 {
		t.Errorf("fig12 speedup at 1%% = %.1fx, want KV-CSD ahead", mid)
	}
	if high >= mid {
		t.Errorf("fig12 speedup should shrink at 20%% selectivity: %.1fx -> %.1fx", mid, high)
	}
	// Result counts agreed between engines (checked inside RunMacro; the
	// table records mismatches as notes).
	for _, n := range res.Fig12.Notes {
		if len(n) >= 8 && n[:8] == "MISMATCH" {
			t.Errorf("engines disagreed on query results: %s", n)
		}
	}
}

func TestCalibrationAblations(t *testing.T) {
	s := calScale()
	bulk, err := AblationBulkPut(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		bulk.Print(os.Stderr)
	}
	// Paper: bulk puts ~7x faster than regular puts.
	if sp := bulk.Float(1, "speedup"); sp < 2 {
		t.Errorf("bulk put speedup = %.1fx, want >= 2x", sp)
	}

	stripe, err := AblationStriping(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		stripe.Print(os.Stderr)
	}
	// Wider stripes should not be slower than width 1.
	w1 := stripe.Float(0, "write_s")
	w8 := stripe.Float(3, "write_s")
	if w8 > w1*1.1 {
		t.Errorf("striping should help or be neutral: width1=%.4fs width8=%.4fs", w1, w8)
	}

	defer1, err := AblationDeferredCompaction(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		defer1.Print(os.Stderr)
	}
	if hostVis := defer1.Float(0, "host_visible_s"); hostVis >= defer1.Float(1, "host_visible_s") {
		t.Error("deferred compaction should reduce host-visible time")
	}

	budget, err := AblationSortBudget(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		budget.Print(os.Stderr)
	}
	// More DRAM budget should not make device compaction slower.
	if tight, roomy := budget.Float(0, "compact_s"), budget.Float(3, "compact_s"); roomy > tight*1.1 {
		t.Errorf("bigger sort budget slower: %.4fs -> %.4fs", tight, roomy)
	}

	buf, err := AblationIngestBuffer(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		buf.Print(os.Stderr)
	}

	sep, err := AblationKVSeparation(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		sep.Print(os.Stderr)
	}

	remote, err := AblationRemoteAccess(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		remote.Print(os.Stderr)
	}
	// The fabric adds per-command latency: remote inserts are slower, but
	// not catastrophically (data still moves once, queries return results
	// only).
	local := remote.Float(0, "insert_s")
	fabric := remote.Float(1, "insert_s")
	if fabric <= local {
		t.Error("NVMeOF attachment should cost more than local PCIe")
	}
	if fabric > local*20 {
		t.Errorf("NVMeOF overhead implausibly high: %.4fs vs %.4fs", fabric, local)
	}

	cons, err := AblationConsolidatedIndexing(s)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Verbose() {
		cons.Print(os.Stderr)
	}
	// The point of consolidation: fewer media reads (no per-index
	// keyspace read-back).
	if sepReads, conReads := cons.Rows[0][3], cons.Rows[1][3]; sepReads == "" || conReads == "" {
		t.Error("consolidated ablation rows empty")
	}
}

func TestTable1Renders(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) < 4 {
		t.Fatalf("table 1 rows: %d", len(tb.Rows))
	}
	if testing.Verbose() {
		tb.Print(os.Stderr)
	}
}

func TestScaleMultiply(t *testing.T) {
	s := DefaultScale()
	m := s.Multiply(4)
	if m.Fig7TotalKeys != s.Fig7TotalKeys*4 || m.VPICParticlesPerFile != s.VPICParticlesPerFile*4 {
		t.Fatal("multiply did not scale")
	}
	if same := s.Multiply(1); same.Fig7TotalKeys != s.Fig7TotalKeys {
		t.Fatal("multiply(1) changed scale")
	}
}

func TestTableHelpers(t *testing.T) {
	tb := &Table{Title: "t", Header: []string{"a", "b"}}
	tb.Add("1.5x", "2.25")
	if tb.Float(0, "a") != 1.5 || tb.Float(0, "b") != 2.25 {
		t.Fatalf("float parsing: %v %v", tb.Float(0, "a"), tb.Float(0, "b"))
	}
	if tb.Float(0, "missing") != 0 || tb.Float(5, "a") != 0 {
		t.Fatal("out-of-range lookups should be 0")
	}
}
