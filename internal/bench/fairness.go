package bench

import (
	"fmt"
	"sort"
	"time"

	"kvcsd/internal/nvme"
	"kvcsd/internal/session"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// OverloadFairness measures QoS isolation in the session front end: the real
// deficit-weighted-fair scheduler and per-tenant quotas are driven by mixed
// tenant profiles in virtual time — latency-sensitive readers, one
// well-behaved writer, and one abusive bulk loader that keeps ~2x the
// admission window's worth of scheduler credit outstanding and retries sheds
// almost immediately. Two phases run:
//
//	solo      the readers alone (uncontended baseline for latency-lane p99)
//	overload  every profile at once, the abusive tenant flooding throughout
//
// The summary row reports Jain's fairness index over the readers' overload
// throughputs and the pooled reader p99 degradation versus the uncontended
// phase. With the fair scheduler the expectation is Jain >= 0.9 and p99
// degradation <= 2x; with a FIFO/global pool the abusive tenant would occupy
// the whole admission window and both numbers collapse.
//
// Like the rest of the figures this is a seeded discrete-event simulation:
// arrivals, think times, and service times are virtual, so every run with the
// same Scale is bit-identical and the figure can be regression-gated.
func OverloadFairness(s Scale) (*Table, error) {
	ops := s.FairnessOps
	if ops <= 0 {
		ops = DefaultScale().FairnessOps
	}
	seed := s.Seed

	solo, err := runFairPhase(fairProfiles(ops, false), seed)
	if err != nil {
		return nil, fmt.Errorf("solo phase: %w", err)
	}
	over, err := runFairPhase(fairProfiles(ops, true), seed)
	if err != nil {
		return nil, fmt.Errorf("overload phase: %w", err)
	}

	t := &Table{
		Title:  "Overload fairness: weighted-fair admission under a 2x bulk flood",
		Header: []string{"phase", "tenant", "lane", "ops", "ops_s", "p99_ms", "shed", "jain", "p99_ratio"},
		Notes: []string{
			fmt.Sprintf("%d gets per reader per phase; admission window %d, per-tenant quota %d, dispatch batch %d",
				ops, fairInflight, fairTenantQueue, fairMaxBatch),
			"abusive tenant keeps 16 bulk messages (~1.5 admission windows of scheduler credit) outstanding, retrying sheds immediately",
			"jain = Jain's fairness index over the readers' overload throughputs; p99_ratio = pooled reader p99, overload / solo",
		},
	}

	var soloLat, overLat []time.Duration
	var rates []float64
	for _, r := range solo {
		if r.lane != wire.LaneLatency {
			continue
		}
		soloLat = append(soloLat, r.lat...)
		t.Add("solo", r.name, r.lane.String(), fmt.Sprintf("%d", r.done),
			opsPerSec(r.done, r.end), millis(p99(r.lat)), fmt.Sprintf("%d", r.shed), "-", "-")
	}
	for _, r := range over {
		if r.lane == wire.LaneLatency {
			overLat = append(overLat, r.lat...)
			rates = append(rates, float64(r.done)/time.Duration(r.end).Seconds())
		}
		t.Add("overload", r.name, r.lane.String(), fmt.Sprintf("%d", r.done),
			opsPerSec(r.done, r.end), millis(p99(r.lat)), fmt.Sprintf("%d", r.shed), "-", "-")
	}

	ratio := 0.0
	if base := p99(soloLat); base > 0 {
		ratio = float64(p99(overLat)) / float64(base)
	}
	t.Add("overload", "summary", "-", "-", "-", millis(p99(overLat)), "-",
		fmt.Sprintf("%.4f", jain(rates)), fmt.Sprintf("%.2f", ratio))
	return t, nil
}

// The simulated front end: the admission window, per-tenant quota, and
// dispatch batch mirror a small server.Config; service times model the
// gateway applying requests serially.
const (
	fairInflight    = 32
	fairTenantQueue = 8 // fair slice: a quarter of the admission window
	fairMaxBatch    = 1

	svcGet  = 20 * time.Microsecond
	svcPut  = 30 * time.Microsecond
	svcBulk = 72 * time.Microsecond // 40µs + 2µs per staged pair
)

// fairProfile describes one tenant profile of the harness.
type fairProfile struct {
	tenant  string
	lane    wire.Lane
	workers int
	ops     int // per worker; 0 = flood until every finite profile finishes
	req     *wire.Request
	svc     sim.Duration
	think   sim.Duration // mean of the exponential think time; 0 = none
	retry   sim.Duration // client back-off after a shed
}

func fairProfiles(ops int, overload bool) []fairProfile {
	get := &wire.Request{Op: wire.OpGet, Key: make([]byte, 16)}
	put := &wire.Request{Op: wire.OpPut, Key: make([]byte, 16), Value: make([]byte, 32)}
	bulk := &wire.Request{Op: wire.OpBulkPut, Pairs: make([]nvme.KVPair, 16)}
	for i := range bulk.Pairs {
		bulk.Pairs[i] = nvme.KVPair{Key: make([]byte, 16), Value: make([]byte, 32)}
	}
	ps := []fairProfile{
		{tenant: "reader-1", lane: wire.LaneLatency, workers: 4, ops: ops / 4, req: get, svc: svcGet, think: 300 * time.Microsecond},
		{tenant: "reader-2", lane: wire.LaneLatency, workers: 4, ops: ops / 4, req: get, svc: svcGet, think: 300 * time.Microsecond},
		{tenant: "reader-3", lane: wire.LaneLatency, workers: 4, ops: ops / 4, req: get, svc: svcGet, think: 300 * time.Microsecond},
	}
	if overload {
		ps = append(ps,
			fairProfile{tenant: "writer", lane: wire.LaneNormal, workers: 2, ops: ops / 4, req: put, svc: svcPut, think: 500 * time.Microsecond},
			fairProfile{tenant: "bulk-hog", lane: wire.LaneBulk, workers: 16, req: bulk, svc: svcBulk, retry: 20 * time.Microsecond},
		)
	}
	return ps
}

// fairWorker is one closed-loop client of a profile.
type fairWorker struct {
	res      *fairResult
	tenant   *session.Tenant
	lane     wire.Lane
	cost     int64
	svc      sim.Duration
	think    sim.Duration
	retry    sim.Duration
	ops      int // 0 = flood
	rng      *sim.RNG
	nextAt   sim.Time // when the client (re)sends
	sentAt   sim.Time
	inflight bool
	done     int
}

func (w *fairWorker) finished() bool { return w.ops > 0 && w.done >= w.ops }

// fairResult accumulates one tenant's phase outcome.
type fairResult struct {
	name string
	lane wire.Lane
	done int
	end  time.Duration // virtual time of the tenant's last completion
	lat  []time.Duration
	shed int64
}

// runFairPhase drives the profiles through a session.Scheduler in one
// discrete-event loop: due arrivals are admitted (or shed and backed off),
// then the modeled gateway pops a fair batch and applies it serially in
// virtual service time. The loop ends once every finite profile completes;
// the flood, if present, runs for the whole phase.
func runFairPhase(profiles []fairProfile, seed int64) ([]*fairResult, error) {
	mgr := session.NewManager(session.Config{TenantQueue: fairTenantQueue, Seed: seed})
	sched := session.NewScheduler(mgr.Config(), fairInflight)
	rng := sim.NewRNG(seed)

	results := make([]*fairResult, len(profiles))
	var workers []*fairWorker
	for i, pr := range profiles {
		res := &fairResult{name: pr.tenant, lane: pr.lane}
		results[i] = res
		ten := mgr.Tenant(pr.tenant)
		for j := 0; j < pr.workers; j++ {
			w := &fairWorker{
				res: res, tenant: ten, lane: pr.lane,
				cost: session.RequestCost(pr.req),
				svc:  pr.svc, think: pr.think, retry: pr.retry,
				ops: pr.ops, rng: rng.Fork(int64(i*64 + j)),
			}
			if w.retry <= 0 {
				w.retry = time.Microsecond
			}
			// Stagger first arrivals so the phase does not open with a
			// thundering herd at t=0.
			w.nextAt = sim.Time(w.rng.Float64() * float64(w.svc+w.think))
			workers = append(workers, w)
		}
	}
	allDone := func() bool {
		for _, w := range workers {
			if w.ops > 0 && !w.finished() {
				return false
			}
		}
		return true
	}

	env := sim.NewEnv()
	env.Go("fairness", func(p *sim.Proc) {
		for {
			now := p.Now()
			for _, w := range workers {
				if w.inflight || w.finished() || w.nextAt > now {
					continue
				}
				it := &session.Item{Tenant: w.tenant, Lane: w.lane, Cost: w.cost, Value: w}
				if cause := sched.Enqueue(it); cause != session.CauseNone {
					w.tenant.NoteShed(w.lane, cause)
					w.res.shed++
					w.nextAt = now.Add(w.retry)
					continue
				}
				w.tenant.NoteAdmitted(w.lane)
				w.sentAt = w.nextAt
				w.inflight = true
			}
			if allDone() {
				return
			}
			if sched.Queued() > 0 {
				batch, _ := sched.NextBatch(fairMaxBatch)
				for _, it := range batch {
					w := it.Value.(*fairWorker)
					p.Sleep(w.svc)
					end := p.Now()
					w.tenant.NoteCompleted(w.lane)
					w.inflight = false
					w.done++
					w.res.done++
					w.res.end = time.Duration(end)
					w.res.lat = append(w.res.lat, time.Duration(end-w.sentAt))
					w.nextAt = end
					if w.think > 0 {
						w.nextAt = end.Add(sim.Duration(w.rng.ExpFloat64() * float64(w.think)))
					}
				}
				sched.Release(len(batch))
				continue
			}
			next := sim.MaxTime
			for _, w := range workers {
				if !w.inflight && !w.finished() && w.nextAt < next {
					next = w.nextAt
				}
			}
			if next == sim.MaxTime {
				return
			}
			p.SleepUntil(next)
		}
	})
	env.Run()
	return results, nil
}

// jain computes Jain's fairness index (sum x)^2 / (n * sum x^2): 1.0 means
// perfectly even shares, 1/n means one party took everything.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// p99 returns the 99th-percentile sample.
func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s))*0.99+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func millis(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/1e6) }

func opsPerSec(n int, d time.Duration) string {
	if d <= 0 {
		return "0"
	}
	return fmt.Sprintf("%.0f", float64(n)/d.Seconds())
}
