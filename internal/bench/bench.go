// Package bench regenerates every table and figure of the paper's evaluation
// (§VI): the micro benchmarks (Figures 7a/7b, 8, 9, 10a/10b), the VPIC macro
// benchmarks (Figures 11, 12), the hardware table (Table I), and ablations of
// KV-CSD design choices. The same experiment functions back the cmd/ tools,
// the root testing.B benchmarks, and the calibration tests that assert the
// paper's comparative shapes.
//
// Absolute numbers are virtual-time results from the simulator and are not
// expected to match the paper's testbed; the comparative shapes (who wins,
// by roughly what factor, where crossovers fall) are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"kvcsd/internal/device"
	"kvcsd/internal/host"
	"kvcsd/internal/rocks"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
	"kvcsd/internal/vfs"
	"kvcsd/internal/workload"
)

// Scale sizes the experiments. The default keeps `go test -bench` fast;
// cmd tools scale it up toward paper sizes with -scale.
type Scale struct {
	// Fig 7: total pairs inserted per run into one shared keyspace.
	Fig7TotalKeys int
	// Fig 7/9 thread sweep.
	Threads []int
	// Fig 8: pairs per run and the value sizes swept.
	Fig8TotalKeys  int
	Fig8ValueSizes []int
	// Fig 9: pairs inserted per keyspace (paper: 32M each).
	Fig9KeysPerKeyspace int
	// Fig 10: query-count sweep (paper: 32K..320K) and keyspace count.
	Fig10Queries   []int
	Fig10Keyspaces int
	Fig10KeysPerKS int
	// Fig 11/12: VPIC files and particles per file (paper: 16 x 16M).
	VPICFiles            int
	VPICParticlesPerFile int
	// Fig 12 selectivities, as fractions.
	Selectivities []float64
	// Array scaling: fixed total pairs spread over the device sweep, and the
	// random GETs issued after the fleet compaction.
	ArrayTotalKeys int
	ArrayQueries   int
	// Remote throughput: operations per phase of the network sweep.
	RemoteOps int
	// Overload fairness: point gets per reader tenant per phase (the other
	// profiles are sized relative to this).
	FairnessOps int
	Seed        int64
}

// DefaultScale keeps every figure under a few seconds of real time.
func DefaultScale() Scale {
	return Scale{
		Fig7TotalKeys:        16384,
		Threads:              []int{1, 2, 4, 8, 16, 32},
		Fig8TotalKeys:        8192,
		Fig8ValueSizes:       []int{32, 128, 512, 4096},
		Fig9KeysPerKeyspace:  8192,
		Fig10Queries:         []int{256, 512, 1024, 2048},
		Fig10Keyspaces:       8,
		Fig10KeysPerKS:       16384,
		VPICFiles:            16,
		VPICParticlesPerFile: 16384,
		Selectivities:        []float64{0.001, 0.005, 0.01, 0.05, 0.20},
		ArrayTotalKeys:       16384,
		ArrayQueries:         2048,
		RemoteOps:            2048,
		FairnessOps:          512,
		Seed:                 1,
	}
}

// Multiply scales the data sizes by f (thread lists unchanged).
func (s Scale) Multiply(f int) Scale {
	if f <= 1 {
		return s
	}
	s.Fig7TotalKeys *= f
	s.Fig8TotalKeys *= f
	s.Fig9KeysPerKeyspace *= f
	s.Fig10KeysPerKS *= f
	s.VPICParticlesPerFile *= f
	s.ArrayTotalKeys *= f
	s.RemoteOps *= f
	s.FairnessOps *= f
	for i := range s.Fig10Queries {
		s.Fig10Queries[i] *= f
	}
	return s
}

// Table is one rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Cell lookups for calibration tests.
func (t *Table) col(name string) int {
	for i, h := range t.Header {
		if h == name {
			return i
		}
	}
	return -1
}

// Float returns a numeric cell by row index and column name.
func (t *Table) Float(row int, colName string) float64 {
	c := t.col(colName)
	if c < 0 || row >= len(t.Rows) {
		return 0
	}
	var v float64
	fmt.Sscanf(strings.TrimSuffix(t.Rows[row][c], "x"), "%g", &v)
	return v
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// --- Rig assembly ----------------------------------------------------------

// kvcsdRig is one host + KV-CSD device environment.
type kvcsdRig struct {
	env *sim.Env
	h   *host.Host
	dev *device.Device
	st  *stats.IOStats
	tgt *workload.KVCSDTarget
}

// kvcsdSSDConfig sizes the simulated drive generously relative to the data.
func kvcsdSSDConfig(dataBytes int64) ssd.Config {
	cfg := ssd.DefaultConfig()
	cfg.ZoneSize = 4 << 20
	need := int(dataBytes*8/cfg.ZoneSize) + 512
	if need < 2048 {
		need = 2048
	}
	cfg.NumZones = need
	return cfg
}

func newKVCSDRig(hostCores int, dataBytes int64, seed int64) *kvcsdRig {
	env := sim.NewEnv()
	st := stats.NewIOStats()
	hcfg := host.DefaultHostConfig()
	if hostCores > 0 {
		hcfg.Cores = hostCores
	}
	h := host.New(env, hcfg)
	opts := device.DefaultOptions()
	opts.SSD = kvcsdSSDConfig(dataBytes)
	opts.Engine.SortBudgetBytes = 4 << 20
	opts.Seed = seed
	dev := device.New(env, opts, st)
	return &kvcsdRig{env: env, h: h, dev: dev, st: st, tgt: workload.NewKVCSDTarget(h, dev)}
}

// rocksRig is one host + ext4 + RocksDB-baseline environment.
type rocksRig struct {
	env *sim.Env
	h   *host.Host
	fs  *vfs.FS
	st  *stats.IOStats
	tgt *workload.RocksTarget
}

// rocksOptions scales LSM knobs to the experiment size so flushes and
// compactions actually happen at bench scale.
func rocksOptions(mode rocks.CompactionMode, dataBytes int64) rocks.Options {
	o := rocks.DefaultOptions()
	o.CompactionMode = mode
	mem := dataBytes / 12
	if mem < 24<<10 {
		mem = 24 << 10
	}
	if mem > 64<<20 {
		mem = 64 << 20
	}
	o.MemtableBytes = mem
	o.L0CompactionTrigger = 8
	o.L0SlowdownTrigger = 24
	o.L0StopTrigger = 40
	o.BaseLevelBytes = mem * 8
	o.TargetFileBytes = mem * 2
	// Paper regime: data-size-to-memory-size ratio is high, so caches hold
	// a small fraction of the store.
	o.BlockCacheBytes = dataBytes / 8
	if o.BlockCacheBytes < 128<<10 {
		o.BlockCacheBytes = 128 << 10
	}
	return o
}

func newRocksRig(hostCores int, mode rocks.CompactionMode, dataBytes int64, seed int64) *rocksRig {
	return newRocksRigPer(hostCores, mode, dataBytes, dataBytes, seed)
}

// newRocksRigPer sizes LSM knobs by per-instance bytes while sizing the
// drive and page cache by total bytes.
func newRocksRigPer(hostCores int, mode rocks.CompactionMode, dataBytes, perInstanceBytes, seed int64) *rocksRig {
	env := sim.NewEnv()
	st := stats.NewIOStats()
	hcfg := host.DefaultHostConfig()
	if hostCores > 0 {
		hcfg.Cores = hostCores
	}
	h := host.New(env, hcfg)
	scfg := ssd.DefaultConfig()
	blocks := dataBytes * 10 / int64(scfg.BlockSize)
	if blocks < 1<<18 {
		blocks = 1 << 18
	}
	scfg.ConvBlocks = blocks
	dev := ssd.New(env, scfg, st)
	vcfg := vfs.DefaultConfig()
	vcfg.PageCacheBytes = dataBytes / 8 // paper: high data-size-to-memory-size ratios
	if vcfg.PageCacheBytes < 256<<10 {
		vcfg.PageCacheBytes = 256 << 10
	}
	fsys := vfs.New(dev, h, vcfg, st)
	return &rocksRig{
		env: env, h: h, fs: fsys, st: st,
		tgt: workload.NewRocksTarget(h, fsys, sim.NewRNG(seed), rocksOptions(mode, perInstanceBytes)),
	}
}

// runOne executes fn as the master process of a fresh simulation and returns
// any error it reports.
func runSim(env *sim.Env, fn func(p *sim.Proc) error) error {
	var err error
	env.Go("experiment", func(p *sim.Proc) { err = fn(p) })
	env.Run()
	return err
}
