package bench

import (
	"fmt"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/device"
	"kvcsd/internal/host"
	"kvcsd/internal/keyenc"
	"kvcsd/internal/pcie"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
	"kvcsd/internal/workload"
)

// Ablations quantify the design choices DESIGN.md calls out: bulk PUT
// batching, key-value separation, zone-cluster striping, deferred
// compaction, and the SoC DRAM sort budget.

// AblationBulkPut compares regular PUTs with 128 KiB bulk PUTs (paper: bulk
// messages are ~7x faster).
func AblationBulkPut(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: regular PUT vs 128KiB bulk PUT",
		Header: []string{"mode", "keys", "write_s", "cmds", "speedup"},
	}
	keys := s.Fig7TotalKeys / 4
	var times [2]time.Duration
	var cmds [2]int64
	for i, bulk := range []bool{false, true} {
		cfg := workload.InsertConfig{
			Threads: 4, KeysPerThread: keys / 4, KeySize: 16, ValueSize: 32,
			Bulk: bulk, Seed: s.Seed, KeyspacePrefix: "abl-bulk",
		}
		out, err := runKVCSDInsert(4, cfg)
		if err != nil {
			return nil, err
		}
		times[i] = out.res.WriteTime
		cmds[i] = out.st.Commands.Value()
	}
	t.Add("regular", fmt.Sprint(keys), secs(times[0]), fmt.Sprint(cmds[0]), "1.0x")
	t.Add("bulk", fmt.Sprint(keys), secs(times[1]), fmt.Sprint(cmds[1]), ratio(times[0], times[1]))
	return t, nil
}

// AblationKVSeparation compares separated KLOG/VLOG compaction (two-step
// sort, values move twice) with combined pair records (values ride through
// every merge round).
func AblationKVSeparation(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: key-value separation vs combined pair records",
		Header: []string{"layout", "value_size", "compact_s", "media_write", "media_read"},
	}
	for _, vs := range []int{32, 512} {
		for _, disable := range []bool{false, true} {
			keys := s.Fig7TotalKeys / 4
			data := int64(keys) * int64(16+vs)
			rig := newKVCSDRigWith(32, data*2, s.Seed, func(o *device.Options) {
				o.Engine.DisableKVSeparation = disable
				o.Engine.SortBudgetBytes = int(data / 24)
				if o.Engine.SortBudgetBytes < 16<<10 {
					o.Engine.SortBudgetBytes = 16 << 10
				}
				o.Engine.MergeFanin = 4
			})
			var compactDur time.Duration
			var mw, mr int64
			err := runSim(rig.env, func(p *sim.Proc) error {
				cfg := workload.InsertConfig{
					Threads: 1, KeysPerThread: keys, KeySize: 16, ValueSize: vs,
					Bulk: true, Seed: s.Seed, KeyspacePrefix: "abl-sep",
				}
				res, err := workload.RunInsert(p, rig.tgt, cfg)
				if err != nil {
					return err
				}
				compactDur = res.ReadyTime - res.WriteTime
				mw, mr = rig.st.MediaWrite.Value(), rig.st.MediaRead.Value()
				rig.dev.Shutdown()
				return nil
			})
			if err != nil {
				return nil, err
			}
			layout := "separated"
			if disable {
				layout = "combined"
			}
			t.Add(layout, fmt.Sprint(vs), secs(compactDur),
				stats.HumanBytes(mw), stats.HumanBytes(mr))
		}
	}
	t.Notes = append(t.Notes, "separated: values move exactly twice (bucket sort); combined: values ride every merge round")
	return t, nil
}

// AblationStriping compares zone-cluster stripe widths: width 1 serializes a
// keyspace's writes on one channel; wider stripes spread them (paper §IV,
// random-offset striping over SSD channels).
func AblationStriping(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: zone-cluster stripe width (channel parallelism)",
		Header: []string{"stripe_width", "write_s", "ready_s"},
	}
	keys := s.Fig7TotalKeys
	for _, w := range []int{1, 2, 4, 8} {
		data := int64(keys) * 48
		rig := newKVCSDRigWith(32, data*2, s.Seed, func(o *device.Options) {
			o.Engine.StripeWidth = w
		})
		var res workload.InsertResult
		err := runSim(rig.env, func(p *sim.Proc) error {
			var err error
			res, err = workload.RunInsert(p, rig.tgt, workload.InsertConfig{
				Threads: 8, KeysPerThread: keys / 8, KeySize: 16, ValueSize: 128,
				SharedKeyspace: true, Bulk: true, Seed: s.Seed, KeyspacePrefix: "abl-stripe",
			})
			rig.dev.Shutdown()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprint(w), secs(res.WriteTime), secs(res.ReadyTime))
	}
	return t, nil
}

// AblationDeferredCompaction contrasts the host-visible cost of deferred
// (async, device-side) compaction with synchronously waiting for it — the
// effective write time gap of Figure 11.
func AblationDeferredCompaction(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: deferred (async) vs awaited device compaction",
		Header: []string{"policy", "host_visible_s", "total_to_queryable_s"},
	}
	cfg := workload.InsertConfig{
		Threads: 8, KeysPerThread: s.Fig7TotalKeys / 8, KeySize: 16, ValueSize: 32,
		Bulk: true, Seed: s.Seed, KeyspacePrefix: "abl-defer",
	}
	out, err := runKVCSDInsert(8, cfg)
	if err != nil {
		return nil, err
	}
	t.Add("deferred(async)", secs(out.res.WriteTime), secs(out.res.ReadyTime))
	t.Add("awaited(sync)", secs(out.res.ReadyTime), secs(out.res.ReadyTime))
	t.Notes = append(t.Notes, "a checkpointing application overlaps the async window with its next compute phase")
	return t, nil
}

// AblationSortBudget sweeps the SoC DRAM sort budget, showing the merge-round
// versus DRAM trade-off of the external sort (paper §V: rounds "depend on
// available SoC DRAM space").
func AblationSortBudget(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: SoC DRAM sort budget vs device compaction time",
		Header: []string{"budget", "compact_s"},
	}
	keys := s.Fig7TotalKeys
	data := int64(keys) * 48
	for _, budget := range []int{16 << 10, 64 << 10, 256 << 10, 4 << 20} {
		rig := newKVCSDRigWith(32, data*2, s.Seed, func(o *device.Options) {
			o.Engine.SortBudgetBytes = budget
			o.Engine.MergeFanin = 8
		})
		var res workload.InsertResult
		err := runSim(rig.env, func(p *sim.Proc) error {
			var err error
			res, err = workload.RunInsert(p, rig.tgt, workload.InsertConfig{
				Threads: 1, KeysPerThread: keys, KeySize: 16, ValueSize: 32,
				Bulk: true, Seed: s.Seed, KeyspacePrefix: "abl-budget",
			})
			rig.dev.Shutdown()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(stats.HumanBytes(int64(budget)), secs(res.ReadyTime-res.WriteTime))
	}
	return t, nil
}

// AblationIngestBuffer sweeps the device ingest buffer (paper: 192 KiB).
func AblationIngestBuffer(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: device ingest buffer size",
		Header: []string{"buffer", "write_s"},
	}
	keys := s.Fig7TotalKeys
	for _, buf := range []int{16 << 10, 64 << 10, 192 << 10, 1 << 20} {
		data := int64(keys) * 48
		rig := newKVCSDRigWith(32, data*2, s.Seed, func(o *device.Options) {
			o.Engine.IngestBufferBytes = buf
		})
		var res workload.InsertResult
		err := runSim(rig.env, func(p *sim.Proc) error {
			var err error
			res, err = workload.RunInsert(p, rig.tgt, workload.InsertConfig{
				Threads: 4, KeysPerThread: keys / 4, KeySize: 16, ValueSize: 32,
				SharedKeyspace: true, Bulk: true, Seed: s.Seed, KeyspacePrefix: "abl-buf",
			})
			rig.dev.Shutdown()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Add(stats.HumanBytes(int64(buf)), secs(res.WriteTime))
	}
	return t, nil
}

// AblationConsolidatedIndexing compares building N secondary indexes
// separately (compaction, then one full keyspace read-back per index — the
// paper's current design) against the consolidated single-pass construction
// the paper proposes as future work.
func AblationConsolidatedIndexing(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: separate vs consolidated secondary index construction",
		Header: []string{"strategy", "indexes", "device_busy_s", "media_read", "media_write"},
	}
	specs := []client.IndexSpec{
		{Name: "a", Offset: 0, Length: 4, Type: keyenc.TypeBytes},
		{Name: "b", Offset: 8, Length: 4, Type: keyenc.TypeBytes},
		{Name: "c", Offset: 16, Length: 4, Type: keyenc.TypeBytes},
	}
	keys := s.Fig7TotalKeys
	for _, consolidated := range []bool{false, true} {
		data := int64(keys) * 48
		rig := newKVCSDRig(32, data*2, s.Seed)
		var busy time.Duration
		var mr, mw int64
		err := runSim(rig.env, func(p *sim.Proc) error {
			cl := client.New(rig.h, rig.dev)
			ks, err := cl.CreateKeyspace(p, "abl-con")
			if err != nil {
				return err
			}
			val := make([]byte, 32)
			for i := 0; i < keys; i++ {
				copy(val, workloadValue(i))
				if err := ks.BulkPut(p, workloadKey(i), val); err != nil {
					return err
				}
			}
			t0 := p.Now()
			if consolidated {
				if err := ks.CompactWithIndexes(p, specs); err != nil {
					return err
				}
			} else {
				if err := ks.Compact(p); err != nil {
					return err
				}
				for _, sp := range specs {
					if err := ks.BuildSecondaryIndex(p, sp); err != nil {
						return err
					}
				}
			}
			if err := rig.dev.WaitBackgroundIdle(p); err != nil {
				return err
			}
			busy = time.Duration(p.Now() - t0)
			mr, mw = rig.st.MediaRead.Value(), rig.st.MediaWrite.Value()
			rig.dev.Shutdown()
			return nil
		})
		if err != nil {
			return nil, err
		}
		name := "separate"
		if consolidated {
			name = "consolidated"
		}
		t.Add(name, fmt.Sprint(len(specs)), secs(busy),
			stats.HumanBytes(mr), stats.HumanBytes(mw))
	}
	t.Notes = append(t.Notes,
		"consolidated extraction happens during the compaction's own value pass (paper §V future work)",
		"media reads drop (no per-index keyspace read-back); wall time can rise because one consolidated job does not parallelize across SoC cores the way separate index builds do")
	return t, nil
}

// AblationRemoteAccess contrasts local PCIe attachment with the paper's
// envisioned NVMe-over-Fabrics remote deployment (§II, Figure 2): command
// latency rises with fabric round trips, but offloaded queries still move
// only results — the data-movement advantage grows when the wire is slower.
func AblationRemoteAccess(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: local PCIe vs NVMe-over-Fabrics attachment",
		Header: []string{"link", "insert_s", "get_p99_us", "scan1k_s"},
	}
	keys := s.Fig7TotalKeys
	for _, remote := range []bool{false, true} {
		data := int64(keys) * 48
		rig := newKVCSDRigWith(32, data*2, s.Seed, func(o *device.Options) {
			if remote {
				o.Link = pcie.NVMeOFConfig()
			}
		})
		var insert time.Duration
		var p99 time.Duration
		var scanDur time.Duration
		err := runSim(rig.env, func(p *sim.Proc) error {
			cfg := workload.InsertConfig{
				Threads: 8, KeysPerThread: keys / 8, KeySize: 16, ValueSize: 32,
				Bulk: true, Seed: s.Seed, KeyspacePrefix: "abl-remote",
			}
			res, err := workload.RunInsert(p, rig.tgt, cfg)
			if err != nil {
				return err
			}
			insert = res.WriteTime
			q, err := workload.RunRandomGets(p, rig.tgt, workload.GetConfig{
				Threads: 8, QueriesPerThread: 64, KeysPerThread: cfg.KeysPerThread,
				KeySize: 16, Seed: s.Seed, QuerySeed: 9, KeyspacePrefix: "abl-remote",
			})
			if err != nil {
				return err
			}
			p99 = q.Latency.Quantile(0.99)
			cl := client.New(rig.h, rig.dev)
			ks, err := cl.OpenKeyspace(p, "abl-remote-0")
			if err != nil {
				return err
			}
			t0 := p.Now()
			if _, err := ks.Scan(p, nil, nil, 1000); err != nil {
				return err
			}
			scanDur = time.Duration(p.Now() - t0)
			rig.dev.Shutdown()
			return nil
		})
		if err != nil {
			return nil, err
		}
		name := "pcie-gen3x16"
		if remote {
			name = "nvmeof-100gbe"
		}
		t.Add(name, secs(insert), fmt.Sprintf("%.1f", float64(p99)/1e3), secs(scanDur))
	}
	t.Notes = append(t.Notes, "offloaded queries move only results, so the fabric tax is per-command latency, not data volume")
	return t, nil
}

// workloadKey/-Value are tiny deterministic generators for the ablation.
func workloadKey(i int) []byte {
	k := make([]byte, 16)
	x := uint64(i) * 0x9E3779B97F4A7C15
	for j := 0; j < 8; j++ {
		k[j] = byte(x >> (8 * uint(j)))
	}
	return k
}

func workloadValue(i int) []byte {
	v := make([]byte, 32)
	x := uint64(i)*6364136223846793005 + 1442695040888963407
	for j := 0; j < 32; j++ {
		v[j] = byte(x >> (8 * uint(j%8)))
	}
	return v
}

// newKVCSDRigWith builds a rig with an options hook.
func newKVCSDRigWith(hostCores int, dataBytes int64, seed int64, mod func(*device.Options)) *kvcsdRig {
	env := sim.NewEnv()
	st := stats.NewIOStats()
	hcfg := host.DefaultHostConfig()
	if hostCores > 0 {
		hcfg.Cores = hostCores
	}
	h := host.New(env, hcfg)
	opts := device.DefaultOptions()
	opts.SSD = kvcsdSSDConfig(dataBytes)
	opts.Engine.SortBudgetBytes = 4 << 20
	opts.Seed = seed
	if mod != nil {
		mod(&opts)
	}
	dev := device.New(env, opts, st)
	return &kvcsdRig{env: env, h: h, dev: dev, st: st, tgt: workload.NewKVCSDTarget(h, dev)}
}

// Table1 renders the simulated hardware configuration (paper Table I).
func Table1() *Table {
	t := &Table{
		Title:  "Table I: simulated hardware specification",
		Header: []string{"component", "host", "kvcsd_csd"},
	}
	hc, sc := host.DefaultHostConfig(), host.DefaultSoCConfig()
	dd := device.DefaultOptions()
	t.Add("CPU", fmt.Sprintf("%d cores (speed 1.0)", hc.Cores),
		fmt.Sprintf("%d ARM cores (speed %.2f)", sc.Cores, sc.Speed))
	t.Add("DRAM", "512GB (not a constraint)", stats.HumanBytes(dd.Engine.DRAMBytes))
	t.Add("Storage", "KV-CSD CSD", fmt.Sprintf("%d-zone ZNS SSD, %d channels",
		dd.SSD.NumZones, dd.SSD.Channels))
	t.Add("Link", fmt.Sprintf("PCIe x%d (%.1f GB/s)", dd.Link.Lanes, dd.Link.BandwidthH2D/1e9), "4 PCIe lanes to SSD")
	t.Add("IngestBuffer", "-", stats.HumanBytes(int64(dd.Engine.IngestBufferBytes)))
	return t
}
