package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestObserveStageSumsAndSampler(t *testing.T) {
	s := DefaultScale()
	s.Fig9KeysPerKeyspace = 2048
	res, err := Observe(s, ObserveConfig{
		ForegroundOps:  128,
		SampleInterval: 500 * time.Microsecond,
		Trace:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: every command's stages sum to its client-observed
	// latency within 1%. The attribution model is exact, so in practice this
	// is 0 — anything above the bar is a real regression.
	if res.MaxStageErr > 0.01 {
		t.Errorf("stage attribution off by %.2f%% (worst command)", res.MaxStageErr*100)
	}
	if len(res.Summary.Rows) < 4 {
		t.Errorf("summary covers only %d opcodes", len(res.Summary.Rows))
	}

	// The sampler must have recorded a timeline spanning the compaction, and
	// the bg_jobs column must show the background job coming and going.
	rows := res.Sampler.Rows()
	if len(rows) < 5 {
		t.Fatalf("sampler recorded only %d rows", len(rows))
	}
	bgCol := -1
	for i, c := range res.Sampler.Header() {
		if c == "bg_jobs" {
			bgCol = i
		}
	}
	if bgCol < 0 {
		t.Fatalf("no bg_jobs column in %v", res.Sampler.Header())
	}
	sawBusy, sawIdle := false, false
	for _, r := range rows {
		if r[bgCol] > 0 {
			sawBusy = true
		} else {
			sawIdle = true
		}
	}
	if !sawBusy || !sawIdle {
		t.Errorf("bg_jobs timeline never transitioned (busy=%v idle=%v)", sawBusy, sawIdle)
	}

	var buf bytes.Buffer
	if err := res.Sampler.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "time_s,cmds_per_s,") {
		t.Errorf("csv header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	csvLines := strings.SplitN(buf.String(), "\n", 3)
	if len(csvLines) < 2 || !strings.HasPrefix(csvLines[1], "# units: s,1/s,B/s,") {
		t.Errorf("csv units line = %q", csvLines[1])
	}
}
