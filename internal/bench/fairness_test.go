package bench

import (
	"bytes"
	"testing"
)

// TestOverloadFairnessSmoke runs the overload-fairness harness and asserts
// the acceptance shape: under a 2x bulk flood the well-behaved readers keep
// near-equal throughput (Jain >= 0.9), their latency-lane p99 degrades at
// most 2x versus the uncontended phase, none of their requests are shed, and
// the abusive tenant is the one absorbing the sheds. The harness is a seeded
// virtual-time simulation, so these bounds are exact, not statistical.
func TestOverloadFairnessSmoke(t *testing.T) {
	tab, err := OverloadFairness(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 solo readers + 3 overload readers + writer + flood + summary.
	if len(tab.Rows) != 9 {
		t.Fatalf("table has %d rows, want 9", len(tab.Rows))
	}
	summary := len(tab.Rows) - 1

	if j := tab.Float(summary, "jain"); j < 0.9 {
		t.Errorf("Jain's index %.4f over the readers' overload throughputs, want >= 0.9", j)
	}
	if r := tab.Float(summary, "p99_ratio"); r <= 0 || r > 2.0 {
		t.Errorf("reader p99 degraded %.2fx under overload, want (0, 2.0]", r)
	}
	for i := 3; i <= 6; i++ { // overload readers + writer
		if shed := tab.Rows[i][tab.col("shed")]; shed != "0" {
			t.Errorf("well-behaved tenant %s shed %s requests", tab.Rows[i][1], shed)
		}
	}
	if shed := tab.Float(7, "shed"); shed == 0 {
		t.Error("abusive tenant was never shed: the per-tenant quota is not biting")
	}

	var buf bytes.Buffer
	tab.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty table render")
	}
}
