package bench

import (
	"fmt"
	"time"

	"kvcsd/internal/replica"
	"kvcsd/internal/sim"
)

// failoverNodeSweep is the group-size axis of the failover experiment: the
// smallest quorum-capable group and the five-node group that tolerates two
// losses.
var failoverNodeSweep = []int{3, 5}

// failoverTrials is how many crash/re-elect cycles each row averages over.
const failoverTrials = 5

// failoverResult carries the virtual-clock measurements of one group size.
type failoverResult struct {
	firstElect time.Duration // cold start to first ready leader
	elect      time.Duration // mean crash to next ready leader
	recover    time.Duration // mean crash to first committed write
	elections  int64
}

// FailoverLatency measures how quickly a consensus shard group restores
// service after losing its leader. For each group size a single-shard cluster
// of MemKV replicas is started, warmed with committed writes, and then put
// through crash/failover cycles: the leader is killed, the time until a new
// leader is ready (elected and its no-op entry committed) is the election
// latency, and the time until the next client write commits at quorum is the
// recovery latency. All timings are virtual-clock, so the figure is
// deterministic for a given seed and gateable by bench-compare.
func FailoverLatency(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Consensus failover: leader crash to restored service (virtual clock)",
		Header: []string{"nodes", "first_elect_us", "elect_us", "recover_us", "elections"},
		Notes: []string{
			fmt.Sprintf("mean of %d leader-crash cycles per row; crashed node restarts between cycles", failoverTrials),
			"elect_us: crash to ready leader (no-op committed); recover_us adds the first quorum write",
		},
	}
	for _, n := range failoverNodeSweep {
		res, err := failoverRun(n, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("failover at %d nodes: %w", n, err)
		}
		t.Add(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", float64(res.firstElect)/float64(time.Microsecond)),
			fmt.Sprintf("%.1f", float64(res.elect)/float64(time.Microsecond)),
			fmt.Sprintf("%.1f", float64(res.recover)/float64(time.Microsecond)),
			fmt.Sprintf("%d", res.elections),
		)
	}
	return t, nil
}

// failoverRun executes the crash cycles for one group size.
func failoverRun(nodes int, seed int64) (failoverResult, error) {
	env := sim.NewEnv()
	c := replica.New(env, replica.Options{
		Nodes:             nodes,
		Shards:            1,
		ReplicationFactor: nodes,
		Seed:              seed,
	})
	var res failoverResult
	var runErr error
	env.Go("failover", func(p *sim.Proc) {
		defer c.Stop()
		t0 := p.Now()
		if _, err := c.WaitLeader(p, 0); err != nil {
			runErr = err
			return
		}
		res.firstElect = time.Duration(p.Now() - t0)

		sess := c.Client(1)
		for i := 0; i < 32; i++ {
			k := []byte(fmt.Sprintf("warm%02d", i))
			if err := sess.Put(p, 0, k, []byte("v")); err != nil {
				runErr = fmt.Errorf("warmup put %d: %w", i, err)
				return
			}
		}

		var electSum, recoverSum time.Duration
		for trial := 0; trial < failoverTrials; trial++ {
			leader := c.Leader(0)
			tCrash := p.Now()
			c.Crash(leader)
			if _, err := c.WaitLeader(p, 0); err != nil {
				runErr = fmt.Errorf("trial %d: no leader after crash: %w", trial, err)
				return
			}
			electSum += time.Duration(p.Now() - tCrash)
			k := []byte(fmt.Sprintf("trial%02d", trial))
			if err := sess.Put(p, 0, k, []byte("v")); err != nil {
				runErr = fmt.Errorf("trial %d: post-failover put: %w", trial, err)
				return
			}
			recoverSum += time.Duration(p.Now() - tCrash)
			// Bring the crashed node back and let it catch up so every
			// trial starts from a full group.
			c.Restart(p, leader)
			p.Sleep(20 * time.Millisecond)
		}
		res.elect = electSum / failoverTrials
		res.recover = recoverSum / failoverTrials
		res.elections = c.Elections()
	})
	env.Run()
	return res, runErr
}
