package bench

import (
	"fmt"
	"time"

	"kvcsd/internal/array"
	"kvcsd/internal/device"
	"kvcsd/internal/sim"
)

// scrubIntervalSweep is the scrub-cadence axis: off (the baseline row) and
// three virtual-time cadences from lazy to aggressive. The query window at
// default scale is tens of milliseconds, so even the lazy cadence completes
// passes during it.
var scrubIntervalSweep = []time.Duration{0, 10 * time.Millisecond, 2 * time.Millisecond, 500 * time.Microsecond}

// scrubRunResult carries one cadence's virtual-clock measurements.
type scrubRunResult struct {
	load     time.Duration
	query    time.Duration
	scrubbed int64 // bytes the scrubber verified
	detected int64 // checksum failures (0 on clean media)
}

// ScrubOverhead measures what the background media scrubber costs foreground
// reads. One device is loaded and compacted, then a fixed random point-read
// workload runs while the scrubber re-verifies every checksummed extent at
// the row's cadence — its reads go through the same SSD channels and its
// checksum work through the same SoC cores, so the slowdown is contention,
// not modeling fiat. The first row (scrub off) is the baseline the overhead
// ratios divide by. Virtual-clock, deterministic, gated by bench-compare.
func ScrubOverhead(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Background scrub overhead: verified point reads under a live scrubber (virtual clock)",
		Header: []string{"scrub_interval", "load_s", "query_s", "scrub_mb", "detected", "overhead"},
		Notes: []string{
			fmt.Sprintf("%d keys loaded+compacted, %d random GETs per row; scrubber live during the GET window", s.ArrayTotalKeys, s.ArrayQueries),
			"overhead: query_s relative to the scrub-off baseline row",
		},
	}
	var base time.Duration
	for _, iv := range scrubIntervalSweep {
		res, err := scrubRun(s, iv)
		if err != nil {
			return nil, fmt.Errorf("scrub interval %v: %w", iv, err)
		}
		if iv == 0 {
			base = res.query
		}
		mode := "off"
		if iv > 0 {
			mode = iv.String()
		}
		t.Add(
			mode,
			secs(res.load),
			secs(res.query),
			fmt.Sprintf("%.2f", float64(res.scrubbed)/(1<<20)),
			fmt.Sprintf("%d", res.detected),
			ratio(res.query, base),
		)
	}
	return t, nil
}

// scrubRun executes one cadence: load + compact, then the timed GET sweep.
func scrubRun(s Scale, interval time.Duration) (scrubRunResult, error) {
	env := sim.NewEnv()
	dopts := device.DefaultOptions()
	dopts.SSD = kvcsdSSDConfig(int64(s.ArrayTotalKeys) * 96)
	dopts.Engine.SortBudgetBytes = 4 << 20
	dopts.Engine.ScrubInterval = interval
	arr := array.New(env, array.Options{Devices: 1, Replicas: 1, Seed: s.Seed, Device: dopts})

	var res scrubRunResult
	var runErr error
	env.Go("scrub-overhead", func(p *sim.Proc) {
		defer arr.Shutdown()
		ks, err := arr.CreateKeyspace(p, "bench")
		if err != nil {
			runErr = err
			return
		}
		t0 := p.Now()
		for i := 0; i < s.ArrayTotalKeys; i++ {
			if err := ks.BulkPut(p, scrubKey(i), scrubValue(i)); err != nil {
				runErr = err
				return
			}
		}
		if err := ks.Flush(p); err != nil {
			runErr = err
			return
		}
		if err := ks.Compact(p); err != nil {
			runErr = err
			return
		}
		res.load = time.Duration(p.Now() - t0)

		rng := sim.NewRNG(s.Seed).Fork(0x5c12)
		t1 := p.Now()
		for q := 0; q < s.ArrayQueries; q++ {
			i := int(rng.Uint64() % uint64(s.ArrayTotalKeys))
			if _, _, err := ks.Get(p, scrubKey(i)); err != nil {
				runErr = fmt.Errorf("get %d: %w", q, err)
				return
			}
		}
		res.query = time.Duration(p.Now() - t1)
	})
	env.Run()
	if runErr != nil {
		return res, runErr
	}
	st := arr.Stats()
	res.scrubbed = st.ScrubbedBytes.Value()
	res.detected = st.CorruptDetected.Value()
	return res, nil
}

func scrubKey(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func scrubValue(i int) []byte {
	return []byte(fmt.Sprintf("val-%08d-%056d", i, i))
}
