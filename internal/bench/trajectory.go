package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// TrajectorySchema is bumped whenever the JSON layout changes incompatibly;
// bench-compare refuses to diff trajectories with mismatched schemas.
const TrajectorySchema = 1

// Trajectory is the machine-readable form of one figure: the same numbers the
// rendered Table prints, keyed so that two runs of the same figure can be
// diffed row by row. Virtual-clock figures are deterministic for a given
// (scale, seed); wall-clock figures are machine-dependent and only gated on
// explicit request.
type Trajectory struct {
	Schema int             `json:"schema"`
	Fig    string          `json:"fig"`
	Title  string          `json:"title"`
	Clock  string          `json:"clock"` // "virtual" or "wall"
	Scale  int             `json:"scale"`
	Seed   int64           `json:"seed"`
	Rows   []TrajectoryRow `json:"rows"`
	Notes  []string        `json:"notes,omitempty"`
}

// TrajectoryRow is one table row split into identifying labels (the sweep
// variables plus any non-numeric cells) and numeric metrics.
type TrajectoryRow struct {
	Labels  map[string]string  `json:"labels"`
	Metrics map[string]float64 `json:"metrics"`
}

// Key returns a stable row identity built from the sorted label set, used to
// match rows across two trajectories of the same figure.
func (r TrajectoryRow) Key() string {
	names := make([]string, 0, len(r.Labels))
	for n := range r.Labels {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + r.Labels[n]
	}
	return strings.Join(parts, ",")
}

// ClockVirtual and ClockWall tag how a figure's numbers were measured.
const (
	ClockVirtual = "virtual"
	ClockWall    = "wall"
)

// TrajectoryFromTable converts a rendered Table into a Trajectory. Columns
// named in keyCols become labels (the row identity); every other cell is
// parsed as a metric when numeric ("17.7x" ratios and plain numbers both
// count) and as a label otherwise. Cells that parse to non-finite values are
// dropped — JSON has no encoding for them and a figure that produces one has
// nothing comparable to gate on.
func TrajectoryFromTable(fig, clock string, s Scale, t *Table, keyCols ...string) *Trajectory {
	key := make(map[string]bool, len(keyCols))
	for _, c := range keyCols {
		key[c] = true
	}
	tr := &Trajectory{
		Schema: TrajectorySchema,
		Fig:    fig,
		Title:  t.Title,
		Clock:  clock,
		Scale:  scaleFactor(s),
		Seed:   s.Seed,
		Notes:  t.Notes,
	}
	for _, row := range t.Rows {
		out := TrajectoryRow{
			Labels:  map[string]string{},
			Metrics: map[string]float64{},
		}
		for i, cell := range row {
			if i >= len(t.Header) {
				break
			}
			name := t.Header[i]
			if key[name] {
				out.Labels[name] = cell
				continue
			}
			if v, ok := parseMetric(cell); ok {
				out.Metrics[name] = v
			} else if !nonFinite(cell) {
				out.Labels[name] = cell
			}
		}
		tr.Rows = append(tr.Rows, out)
	}
	return tr
}

// parseMetric accepts plain numbers and "NNx" speedup ratios; it rejects
// non-finite values (inf appears when a baseline denominator is zero).
func parseMetric(cell string) (float64, bool) {
	s := strings.TrimSuffix(strings.TrimSpace(cell), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v != v || v > 1e308 || v < -1e308 {
		return 0, false
	}
	return v, true
}

// nonFinite reports cells that parse as numbers but are not finite — those
// are dropped entirely rather than demoted to labels.
func nonFinite(cell string) bool {
	s := strings.TrimSuffix(strings.TrimSpace(cell), "x")
	v, err := strconv.ParseFloat(s, 64)
	return err == nil && (v != v || v > 1e308 || v < -1e308)
}

// scaleFactor recovers the -scale multiplier from a Scale by comparing
// against the default; Multiply scales Fig7TotalKeys linearly.
func scaleFactor(s Scale) int {
	def := DefaultScale().Fig7TotalKeys
	if def <= 0 || s.Fig7TotalKeys <= 0 {
		return 1
	}
	f := s.Fig7TotalKeys / def
	if f < 1 {
		return 1
	}
	return f
}

// TrajectoryFileName maps a figure id to its on-disk name, sanitizing
// path-hostile characters so ids like "ablation/bulk-put" stay one file.
func TrajectoryFileName(fig string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '_':
			return r
		default:
			return '_'
		}
	}, fig)
	return "BENCH_" + clean + ".json"
}

// WriteTrajectory serializes one trajectory to dir/BENCH_<fig>.json and
// returns the path written.
func WriteTrajectory(dir string, tr *Trajectory) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, TrajectoryFileName(tr.Fig))
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadTrajectory loads and schema-checks one trajectory file.
func ReadTrajectory(path string) (*Trajectory, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tr Trajectory
	if err := json.Unmarshal(b, &tr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if tr.Schema != TrajectorySchema {
		return nil, fmt.Errorf("%s: schema %d, this build understands %d",
			path, tr.Schema, TrajectorySchema)
	}
	return &tr, nil
}

// MetricDirection classifies a metric name for regression gating.
type MetricDirection int

const (
	// DirectionUnknown metrics are reported but never gated.
	DirectionUnknown MetricDirection = iota
	// DirectionHigherBetter gates on drops (throughput, speedup).
	DirectionHigherBetter
	// DirectionLowerBetter gates on rises (latency, amplification, sheds).
	DirectionLowerBetter
)

// ClassifyMetric infers gating direction from the column-naming conventions
// used across the figures: *_ops_s / *_per_s / speedup* / *hit_rate are
// throughput-like, while durations (*_s, *_us, *_ns), percentiles, counts of
// bad events (shed, errs) and amplification factors are cost-like.
func ClassifyMetric(name string) MetricDirection {
	n := strings.ToLower(name)
	switch {
	case strings.Contains(n, "ops_s"), strings.Contains(n, "per_s"),
		strings.Contains(n, "speedup"), strings.HasPrefix(n, "vs_"),
		strings.Contains(n, "hit_rate"):
		return DirectionHigherBetter
	case strings.HasSuffix(n, "_s"), strings.HasSuffix(n, "_us"),
		strings.HasSuffix(n, "_ns"), strings.Contains(n, "p99"),
		strings.Contains(n, "p50"), strings.Contains(n, "amp"),
		strings.Contains(n, "inflation"), strings.Contains(n, "shed"),
		strings.Contains(n, "errs"), strings.Contains(n, "media_"):
		return DirectionLowerBetter
	default:
		return DirectionUnknown
	}
}

// Regression is one gated metric that moved past tolerance in the bad
// direction between a baseline and a current trajectory.
type Regression struct {
	Fig      string
	RowKey   string
	Metric   string
	Baseline float64
	Current  float64
	// Ratio is current/baseline (>1 means the value rose).
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s[%s] %s: %.6g -> %.6g (%.2fx)",
		r.Fig, r.RowKey, r.Metric, r.Baseline, r.Current, r.Ratio)
}

// CompareTrajectories diffs current against baseline row by row and returns
// the regressions beyond tolerance (0.15 = 15% allowed drift). Rows present
// on only one side and DirectionUnknown metrics are skipped: the gate only
// judges numbers it understands on rows it can match.
func CompareTrajectories(baseline, current *Trajectory, tolerance float64) []Regression {
	base := make(map[string]TrajectoryRow, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[r.Key()] = r
	}
	var regs []Regression
	for _, cur := range current.Rows {
		b, ok := base[cur.Key()]
		if !ok {
			continue
		}
		names := make([]string, 0, len(cur.Metrics))
		for n := range cur.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			bv, ok := b.Metrics[name]
			if !ok {
				continue
			}
			cv := cur.Metrics[name]
			dir := ClassifyMetric(name)
			if dir == DirectionUnknown {
				continue
			}
			bad := false
			switch dir {
			case DirectionHigherBetter:
				bad = cv < bv*(1-tolerance)
			case DirectionLowerBetter:
				bad = cv > bv*(1+tolerance)
			}
			// Tiny absolute values are all noise: a 0.0001s stage doubling
			// to 0.0002s is not a regression worth failing CI over.
			if bad && bv < 1e-6 && cv < 1e-6 {
				bad = false
			}
			if bad {
				ratio := 0.0
				if bv != 0 {
					ratio = cv / bv
				}
				regs = append(regs, Regression{
					Fig:      current.Fig,
					RowKey:   cur.Key(),
					Metric:   name,
					Baseline: bv,
					Current:  cv,
					Ratio:    ratio,
				})
			}
		}
	}
	return regs
}
