package bench

import (
	"bytes"
	"testing"
)

// TestRemoteThroughputSmoke runs a tiny version of the network sweep: every
// cell must complete without sheds or errors and render a full table.
func TestRemoteThroughputSmoke(t *testing.T) {
	s := DefaultScale()
	s.RemoteOps = 128
	tab, err := RemoteThroughput(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("sweep has %d rows, want 5", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[5] != "0" {
			t.Errorf("row %d: shed %s requests under an idle admission cap", i, row[5])
		}
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty table render")
	}
}
