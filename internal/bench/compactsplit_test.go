package bench

import (
	"bytes"
	"testing"
)

// TestCompactSplitShape runs the compaction-split figure and asserts the
// subsystem's acceptance shape: under concurrent foreground load the
// collaborative policy finishes compaction faster than both the host-only
// and device-only policies, the parallel device pipeline (width 4) beats the
// sequential baseline (width 1) for every policy without degrading the
// foreground p99 beyond a small bound, and the collaborative rows really did
// split the runs across the link. The harness is a seeded virtual-time
// simulation, so the orderings are exact, not statistical.
func TestCompactSplitShape(t *testing.T) {
	tab, err := CompactSplit(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(compactSplitSweep) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(compactSplitSweep))
	}
	// Row layout follows compactSplitSweep: device{1,4}, host{1,4}, collab{1,4}.
	const (
		dev1, dev4, host1, host4, col1, col4 = 0, 1, 2, 3, 4, 5
	)
	compact := func(row int) float64 { return tab.Float(row, "compact_s") }

	// Tentpole: the load-driven split beats both fixed placements, at both
	// pipeline widths.
	for _, w := range []struct {
		col, dev, host int
		width          string
	}{{col1, dev1, host1, "1"}, {col4, dev4, host4, "4"}} {
		if c, d := compact(w.col), compact(w.dev); c >= d {
			t.Errorf("width %s: collaborative compaction %.4fs not faster than device-only %.4fs", w.width, c, d)
		}
		if c, h := compact(w.col), compact(w.host); c >= h {
			t.Errorf("width %s: collaborative compaction %.4fs not faster than host-only %.4fs", w.width, c, h)
		}
	}
	// The parallel pipeline beats the sequential baseline per policy...
	for _, pair := range [][2]int{{dev4, dev1}, {host4, host1}, {col4, col1}} {
		if par, seq := compact(pair[0]), compact(pair[1]); par >= seq {
			t.Errorf("row %d: pipelined compaction %.4fs not faster than sequential %.4fs", pair[0], par, seq)
		}
		// ...at comparable foreground latency (well under the 25% CI drift
		// tolerance; the widths share the same probe workload).
		p4, p1 := tab.Float(pair[0], "fg_p99_ms"), tab.Float(pair[1], "fg_p99_ms")
		if p4 > p1*1.15 {
			t.Errorf("row %d: pipelined fg p99 %.3fms vs sequential %.3fms, want within 15%%", pair[0], p4, p1)
		}
	}
	// The collaborative planner split the runs; the fixed policies did not.
	for _, row := range []int{col1, col4} {
		if hr, dr := tab.Float(row, "host_runs"), tab.Float(row, "device_runs"); hr == 0 || dr == 0 {
			t.Errorf("collaborative row %d split %v/%v, want both sides engaged", row, hr, dr)
		}
	}
	if hr := tab.Float(host1, "host_runs"); hr == 0 {
		t.Error("host-only row merged no runs on the host")
	}
	if dr := tab.Float(dev1, "device_runs"); dr == 0 {
		t.Error("device-only row merged no runs on the device")
	}

	var buf bytes.Buffer
	tab.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty table render")
	}
}
