package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func sampleTrajectoryTable() *Table {
	t := &Table{
		Title:  "sample",
		Header: []string{"threads", "engine", "write_s", "keys_per_s", "speedup", "write_amp"},
		Notes:  []string{"a note"},
	}
	t.Add("1", "kvcsd", "0.0100", "100000", "2.5x", "3.5")
	t.Add("1", "rocksdb", "0.0250", "40000", "1.0x", "inf")
	return t
}

func TestTrajectoryFromTable(t *testing.T) {
	s := DefaultScale()
	s.Seed = 7
	tr := TrajectoryFromTable("7a", ClockVirtual, s, sampleTrajectoryTable(), "threads", "engine")
	if tr.Schema != TrajectorySchema || tr.Fig != "7a" || tr.Clock != ClockVirtual || tr.Seed != 7 {
		t.Fatalf("header fields wrong: %+v", tr)
	}
	if len(tr.Rows) != 2 {
		t.Fatalf("rows = %d", len(tr.Rows))
	}
	r0 := tr.Rows[0]
	if r0.Labels["threads"] != "1" || r0.Labels["engine"] != "kvcsd" {
		t.Errorf("key columns not labeled: %+v", r0.Labels)
	}
	if r0.Metrics["speedup"] != 2.5 {
		t.Errorf("speedup ratio not parsed: %v", r0.Metrics)
	}
	if r0.Metrics["write_s"] != 0.01 || r0.Metrics["keys_per_s"] != 100000 {
		t.Errorf("numeric cells not parsed: %v", r0.Metrics)
	}
	// "inf" must be dropped, not stored as a label or a metric.
	r1 := tr.Rows[1]
	if _, ok := r1.Metrics["write_amp"]; ok {
		t.Error("inf cell stored as metric")
	}
	if _, ok := r1.Labels["write_amp"]; ok {
		t.Error("inf cell stored as label")
	}
	if r0.Key() == r1.Key() {
		t.Error("distinct rows share a key")
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := DefaultScale()
	tr := TrajectoryFromTable("array", ClockVirtual, s, sampleTrajectoryTable(), "threads", "engine")
	path, err := WriteTrajectory(dir, tr)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if filepath.Base(path) != "BENCH_array.json" {
		t.Errorf("file name = %s", filepath.Base(path))
	}
	got, err := ReadTrajectory(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Fig != tr.Fig || len(got.Rows) != len(tr.Rows) || got.Rows[0].Key() != tr.Rows[0].Key() {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tr)
	}

	// A future schema must be refused, not half-parsed.
	bad := filepath.Join(dir, "BENCH_future.json")
	if err := os.WriteFile(bad, []byte(`{"schema":99,"fig":"future"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrajectory(bad); err == nil {
		t.Error("schema 99 accepted")
	}
}

func TestClassifyMetric(t *testing.T) {
	cases := map[string]MetricDirection{
		"keys_per_s":     DirectionHigherBetter,
		"get_ops_s":      DirectionHigherBetter,
		"speedup32":      DirectionHigherBetter,
		"vs_auto":        DirectionHigherBetter,
		"cache_hit_rate": DirectionHigherBetter,
		"insert_s":       DirectionLowerBetter,
		"get_p99_us":     DirectionLowerBetter,
		"write_amp":      DirectionLowerBetter,
		"read_inflation": DirectionLowerBetter,
		"shed":           DirectionLowerBetter,
		"media_wr_MiB":   DirectionLowerBetter,
		"matches":        DirectionUnknown,
		"cmds":           DirectionUnknown,
	}
	for name, want := range cases {
		if got := ClassifyMetric(name); got != want {
			t.Errorf("ClassifyMetric(%q) = %v, want %v", name, got, want)
		}
	}
}

func trajWithMetric(fig, label string, metrics map[string]float64) *Trajectory {
	return &Trajectory{
		Schema: TrajectorySchema,
		Fig:    fig,
		Clock:  ClockVirtual,
		Rows: []TrajectoryRow{{
			Labels:  map[string]string{"k": label},
			Metrics: metrics,
		}},
	}
}

func TestCompareTrajectories(t *testing.T) {
	base := trajWithMetric("f", "a", map[string]float64{
		"insert_s": 1.0, "keys_per_s": 1000, "cmds": 5,
	})

	// Within tolerance both ways: clean.
	cur := trajWithMetric("f", "a", map[string]float64{
		"insert_s": 1.1, "keys_per_s": 950, "cmds": 99,
	})
	if regs := CompareTrajectories(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}

	// Lower-better metric rose past tolerance.
	cur = trajWithMetric("f", "a", map[string]float64{"insert_s": 1.5, "keys_per_s": 1000})
	regs := CompareTrajectories(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "insert_s" {
		t.Fatalf("slowdown not flagged: %v", regs)
	}
	if regs[0].Ratio < 1.49 || regs[0].Ratio > 1.51 {
		t.Errorf("ratio = %v", regs[0].Ratio)
	}

	// Higher-better metric dropped past tolerance.
	cur = trajWithMetric("f", "a", map[string]float64{"insert_s": 1.0, "keys_per_s": 500})
	regs = CompareTrajectories(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "keys_per_s" {
		t.Fatalf("throughput drop not flagged: %v", regs)
	}

	// An improvement is never a regression.
	cur = trajWithMetric("f", "a", map[string]float64{"insert_s": 0.5, "keys_per_s": 2000})
	if regs = CompareTrajectories(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}

	// Unmatched rows are skipped, not compared against the wrong baseline.
	cur = trajWithMetric("f", "other", map[string]float64{"insert_s": 99})
	if regs = CompareTrajectories(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("unmatched row compared: %v", regs)
	}

	// Sub-microsecond noise stays under the floor.
	tiny := trajWithMetric("f", "a", map[string]float64{"insert_s": 1e-8})
	tinyCur := trajWithMetric("f", "a", map[string]float64{"insert_s": 5e-8})
	if regs = CompareTrajectories(tiny, tinyCur, 0.15); len(regs) != 0 {
		t.Fatalf("noise-floor value flagged: %v", regs)
	}
}
