package bench

import (
	"fmt"
	"strings"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/device"
	"kvcsd/internal/host"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

// ObserveConfig shapes the observability run: a Fig-9-flavoured session —
// bulk insert, device-side compaction, foreground traffic riding alongside it
// — executed with tracing, metrics, and the periodic sampler enabled.
type ObserveConfig struct {
	// Keys bulk-inserted into the compacted keyspace (0 = from Scale).
	Keys int
	// ForegroundOps is the number of Store/Retrieve pairs issued against a
	// second keyspace while the compaction runs in the background.
	ForegroundOps int
	// ValueSize of every pair.
	ValueSize int
	// SampleInterval is the virtual-time sampling period (0 = 250µs).
	SampleInterval time.Duration
	// Trace enables span collection (off keeps only metrics + sampler).
	Trace bool
}

// ObserveResult bundles everything the run produced.
type ObserveResult struct {
	Tracer   *obs.Tracer   // nil unless cfg.Trace
	Registry *obs.Registry // always populated
	Sampler  *obs.Sampler  // time series per device.SamplerColumns
	Summary  *Table        // per-opcode stage latency breakdown
	// MaxStageErr is the worst relative |stage-sum - client latency| over all
	// traced command spans (0 when tracing is off). The stage model is exact,
	// so anything above ~1% indicates an attribution bug.
	MaxStageErr float64
}

// Observe runs the instrumented session and reports stage-attributed
// latencies. The sampler rows cover the whole run, so plotting cmds_per_s
// against bg_jobs shows foreground throughput across the background
// compaction — the effect Figure 9 quantifies end-to-end.
func Observe(s Scale, cfg ObserveConfig) (*ObserveResult, error) {
	if cfg.Keys <= 0 {
		cfg.Keys = s.Fig9KeysPerKeyspace
	}
	if cfg.ForegroundOps <= 0 {
		cfg.ForegroundOps = 512
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 32
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 250 * time.Microsecond
	}

	env := sim.NewEnv()
	st := stats.NewIOStats()
	h := host.New(env, host.DefaultHostConfig())
	opts := device.DefaultOptions()
	opts.SSD = kvcsdSSDConfig(int64(cfg.Keys) * int64(16+cfg.ValueSize))
	opts.Engine.SortBudgetBytes = 4 << 20
	opts.Seed = s.Seed
	opts.Trace = cfg.Trace
	opts.Metrics = true
	dev := device.New(env, opts, st)
	cl := client.New(h, dev)
	sampler := dev.StartSampler(cfg.SampleInterval)

	rng := sim.NewRNG(s.Seed)
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%012d", i)) }
	val := make([]byte, cfg.ValueSize)

	err := runSim(env, func(p *sim.Proc) error {
		// Always shut the device down, even on error: the sampler schedules
		// events forever, so leaving it running would hang env.Run.
		defer dev.Shutdown()

		// A small pre-compacted keyspace serves the foreground GETs issued
		// while the big compaction runs (GETs need a compacted keyspace).
		read, err := cl.CreateKeyspace(p, "obs-read")
		if err != nil {
			return err
		}
		for i := 0; i < 64; i++ {
			if err := read.Put(p, key(i), val); err != nil {
				return err
			}
		}
		if err := read.Compact(p); err != nil {
			return err
		}
		if err := read.WaitCompacted(p); err != nil {
			return err
		}

		bulk, err := cl.CreateKeyspace(p, "obs-bulk")
		if err != nil {
			return err
		}
		for i := 0; i < cfg.Keys; i++ {
			if err := bulk.BulkPut(p, key(i), val); err != nil {
				return err
			}
		}
		if err := bulk.Flush(p); err != nil {
			return err
		}

		fg, err := cl.CreateKeyspace(p, "obs-fg")
		if err != nil {
			return err
		}

		// Kick off the background compaction, then keep foreground traffic
		// flowing while it runs: the sampler's cmds_per_s column against
		// bg_jobs is the Figure-9 story as a timeline.
		if err := bulk.Compact(p); err != nil {
			return err
		}
		for i := 0; i < cfg.ForegroundOps; i++ {
			if err := fg.Put(p, key(rng.Intn(cfg.ForegroundOps)), val); err != nil {
				return err
			}
			if _, _, err := read.Get(p, key(rng.Intn(64))); err != nil {
				return err
			}
		}
		if err := bulk.WaitCompacted(p); err != nil {
			return err
		}
		for i := 0; i < cfg.ForegroundOps; i++ {
			if _, ok, err := bulk.Get(p, key(rng.Intn(cfg.Keys))); err != nil {
				return err
			} else if !ok {
				return fmt.Errorf("observe: key missing after compaction")
			}
		}
		return dev.WaitBackgroundIdle(p)
	})
	if err != nil {
		return nil, err
	}

	res := &ObserveResult{
		Tracer:   dev.Tracer(),
		Registry: dev.Registry(),
		Sampler:  sampler,
		Summary:  observeSummary(dev.Registry()),
	}
	if tr := dev.Tracer(); tr != nil {
		for _, sp := range tr.Finished() {
			// Only command round trips partition exactly; background job spans
			// stage their media time but not their SoC compute.
			if sp.Parent() != nil || sp.Duration() <= 0 || !strings.HasPrefix(sp.Name(), "cmd:") {
				continue
			}
			rel := float64(sp.Duration()-sp.StageSum()) / float64(sp.Duration())
			if rel < 0 {
				rel = -rel
			}
			if rel > res.MaxStageErr {
				res.MaxStageErr = rel
			}
		}
		res.Summary.Notes = append(res.Summary.Notes,
			fmt.Sprintf("stage sums match client-observed latency within %.4f%% (worst span)", res.MaxStageErr*100))
	}
	return res, nil
}

// observeSummary renders the per-opcode stage histograms as a table: where a
// command's latency goes — queue wait, link, device service CPU, or media.
func observeSummary(reg *obs.Registry) *Table {
	t := &Table{
		Title: "Command latency by stage (mean µs per command)",
		Header: []string{"op", "n", "total_us", "p99_us",
			"queue_us", "link_us", "service_us", "media_us"},
	}
	us := func(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/1e3) }
	seen := map[string]bool{}
	for _, name := range reg.HistogramNames() {
		op := name
		if i := len(name) - len("/total"); i > 0 && name[i:] == "/total" {
			op = name[:i]
		} else {
			continue
		}
		if seen[op] {
			continue
		}
		seen[op] = true
		total := reg.Histogram(op + "/total")
		t.Add(op, fmt.Sprint(total.Count()), us(total.Mean()), us(total.Quantile(0.99)),
			us(reg.StageHistogram(op, obs.StageQueue).Mean()),
			us(reg.StageHistogram(op, obs.StageLink).Mean()),
			us(reg.StageHistogram(op, obs.StageService).Mean()),
			us(reg.StageHistogram(op, obs.StageMedia).Mean()))
	}
	t.Notes = append(t.Notes,
		"stages partition each command's client-observed latency: queue = submission-queue wait,",
		"link = host prep + PCIe both directions, service = on-SoC execution, media = NAND channel time")
	return t
}
