package bench

import (
	"fmt"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/compaction"
	"kvcsd/internal/device"
	"kvcsd/internal/host"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

// compactSplitCase is one cell of the policy x pipeline-width sweep.
type compactSplitCase struct {
	policy compaction.Policy
	width  int
}

// compactSplitSweep starts with the sequential device-only row — the seed's
// monolithic compaction — which is the baseline every speedup divides by.
var compactSplitSweep = []compactSplitCase{
	{compaction.PolicyDevice, 1},
	{compaction.PolicyDevice, 4},
	{compaction.PolicyHost, 1},
	{compaction.PolicyHost, 4},
	{compaction.PolicyCollaborative, 1},
	{compaction.PolicyCollaborative, 4},
}

// The contention model. Collaborative compaction only matters when neither
// side is idle, so every cell runs the paper's regime: the host is an
// application server with a handful of spare cores and a compute-bound
// application keeping most of them busy, while foreground point reads keep
// the device SoC queue deep for the whole compaction window.
const (
	csHotKeys     = 1024
	csProbers     = 16                     // closed-loop foreground readers
	csProbeGap    = 5 * time.Microsecond   // think time between GETs
	csHostWorkers = 6                      // application compute procs
	csHostSlice   = 100 * time.Microsecond // CPU burst per loop
	csHostGap     = 5 * time.Microsecond   // pause between bursts
	csHostCores   = 2                      // spare cores the merge shares
	csMinProbes   = 64                     // p99 floor when compaction is quick
	csIdlePoll    = 50 * time.Microsecond  // loops parked before compaction
	csValueBytes  = 256                    // value size; see csValue
)

// compactSplitResult carries one cell's virtual-clock measurements.
type compactSplitResult struct {
	load       time.Duration
	compact    time.Duration
	fgLat      []time.Duration // foreground GETs issued while compaction ran
	hostRuns   int
	deviceRuns int
}

// CompactSplit measures the collaborative compaction subsystem: who should
// merge the sorted runs (device SoC, host CPU, or a load-driven split) and
// how wide the device pipeline should be, judged by compaction wall time
// while foreground readers hammer an already-compacted keyspace on the same
// device and an application workload occupies most of the host CPU. Host and
// collaborative rows run a live host merge loop over the NVMe assist ops, so
// host runs pay the PCIe round trips and contend with the application for
// cores; device runs contend with the foreground readers for the SoC.
// Virtual-clock, deterministic, gated by bench-compare.
func CompactSplit(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Compaction split: merge placement x pipeline width under foreground load (virtual clock)",
		Header: []string{"policy", "width", "load_s", "compact_s", "fg_gets", "fg_p99_ms", "host_runs", "device_runs", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d keys compacted; %d foreground readers probe a hot keyspace, %d application procs oversubscribe a %d-core host",
				s.ArrayTotalKeys, csProbers, csHostWorkers, csHostCores),
			"speedup: compaction wall time relative to the sequential device-only row (the seed's monolithic path)",
		},
	}
	var base time.Duration
	for _, c := range compactSplitSweep {
		res, err := compactSplitRun(s, c.policy, c.width)
		if err != nil {
			return nil, fmt.Errorf("policy %v width %d: %w", c.policy, c.width, err)
		}
		if c.policy == compaction.PolicyDevice && c.width == 1 {
			base = res.compact
		}
		t.Add(
			c.policy.String(),
			fmt.Sprintf("%d", c.width),
			secs(res.load),
			secs(res.compact),
			fmt.Sprintf("%d", len(res.fgLat)),
			millis(p99(res.fgLat)),
			fmt.Sprintf("%d", res.hostRuns),
			fmt.Sprintf("%d", res.deviceRuns),
			// Two decimals: the policy deltas ride on a constant value-pass
			// floor, so one decimal would round them all to 1.0x.
			fmt.Sprintf("%.2fx", float64(base)/float64(res.compact)),
		)
	}
	return t, nil
}

// compactSplitRun executes one cell: load and compact a hot keyspace, bulk
// load the victim keyspace, then compact the victim while the foreground and
// application loads run, timing both sides.
func compactSplitRun(s Scale, pol compaction.Policy, width int) (compactSplitResult, error) {
	env := sim.NewEnv()
	st := stats.NewIOStats()
	opts := device.DefaultOptions()
	opts.SSD = kvcsdSSDConfig(int64(s.ArrayTotalKeys) * (csValueBytes + 128))
	opts.SSD.ZoneSize = 256 << 10
	opts.SSD.NumZones = 4096
	opts.Engine.IngestBufferBytes = 16 << 10
	opts.Engine.SortBudgetBytes = 96 << 10
	opts.Engine.CompactionPolicy = pol
	opts.Engine.PipelineWidth = width
	opts.Seed = s.Seed
	dev := device.New(env, opts, st)
	hcfg := host.DefaultHostConfig()
	hcfg.Cores = csHostCores // the application owns the rest of the socket
	h := host.New(env, hcfg)
	cl := client.New(h, dev)

	// Shared phase state: the load loops park until the victim compaction
	// starts and exit once the run is over. The sim is cooperative, so plain
	// variables are safe and deterministic.
	var (
		compacting bool
		stop       bool
		liveLoops  int
		hostBusy   int
		hot        *client.Keyspace
		res        compactSplitResult
		runErr     error
		probeErr   error
	)

	for w := 0; w < csHostWorkers; w++ {
		liveLoops++
		env.Go(fmt.Sprintf("host-app-%d", w), func(p *sim.Proc) {
			defer func() { liveLoops-- }()
			for !stop {
				if !compacting {
					p.Sleep(csIdlePoll)
					continue
				}
				hostBusy++
				h.Compute(p, csHostSlice)
				hostBusy--
				p.Sleep(csHostGap)
			}
		})
	}
	for w := 0; w < csProbers; w++ {
		liveLoops++
		rng := sim.NewRNG(s.Seed).Fork(int64(0x5911 + w))
		env.Go(fmt.Sprintf("foreground-%d", w), func(p *sim.Proc) {
			defer func() { liveLoops-- }()
			for !stop {
				if !compacting || hot == nil {
					p.Sleep(csIdlePoll)
					continue
				}
				i := int(rng.Uint64() % csHotKeys)
				g0 := p.Now()
				if _, ok, err := hot.Get(p, csKey(i)); err != nil || !ok {
					if probeErr == nil {
						probeErr = fmt.Errorf("foreground get %d: ok=%v err=%v", i, ok, err)
					}
					return
				}
				if compacting {
					res.fgLat = append(res.fgLat, time.Duration(p.Now()-g0))
				}
				p.Sleep(csProbeGap)
			}
		})
	}

	env.Go("compact-split", func(p *sim.Proc) {
		// Quiesce the load loops before Shutdown: a reader blocked in the
		// NVMe submit queue would otherwise wake up on a closed queue.
		defer dev.Shutdown()
		defer func() {
			stop = true
			for liveLoops > 0 {
				p.Sleep(csIdlePoll)
			}
		}()
		runErr = func() error {
			var err error
			hot, err = cl.CreateKeyspace(p, "hot")
			if err != nil {
				return err
			}
			for i := 0; i < csHotKeys; i++ {
				if err := hot.BulkPut(p, csKey(i), csValue(i)); err != nil {
					return err
				}
			}
			if err := hot.Compact(p); err != nil {
				return err
			}
			if err := hot.WaitCompacted(p); err != nil {
				return err
			}

			bulk, err := cl.CreateKeyspace(p, "bulk")
			if err != nil {
				return err
			}
			t0 := p.Now()
			for i := 0; i < s.ArrayTotalKeys; i++ {
				if err := bulk.BulkPut(p, csKey(i), csValue(i)); err != nil {
					return err
				}
			}
			res.load = time.Duration(p.Now() - t0)

			compacting = true
			// Let the application's run-queue fill before the merge loop
			// attaches: its poll reports the host load the planner sees, and
			// a real deployment starts the assist loop on an already-busy
			// application server, not an idle one.
			p.Sleep(time.Millisecond)
			if pol != compaction.PolicyDevice {
				// The merge loop reports the application's live run-queue so
				// the collaborative planner sees real host pressure; Shutdown
				// closes the assist queue and lets the loop return.
				env.Go("host-assist", func(p *sim.Proc) {
					_ = cl.ServeHostMerges(p, func() int { return hostBusy })
				})
			}
			if err := bulk.Compact(p); err != nil {
				return err
			}
			if err := bulk.WaitCompacted(p); err != nil {
				return err
			}
			compacting = false
			// The status polls quantize wall time to their 5ms cadence, so
			// read the job's exact duration from the engine instead.
			cks, err := dev.Engine().Keyspace("bulk")
			if err != nil {
				return err
			}
			res.compact = cks.CompactionDuration()
			// Quick cells still need a comparable p99 sample.
			for len(res.fgLat) < csMinProbes && probeErr == nil {
				i := len(res.fgLat)
				g0 := p.Now()
				if _, ok, err := hot.Get(p, csKey(i%csHotKeys)); err != nil || !ok {
					return fmt.Errorf("floor get %d: ok=%v err=%v", i, ok, err)
				}
				res.fgLat = append(res.fgLat, time.Duration(p.Now()-g0))
				p.Sleep(csProbeGap)
			}

			pr, done, err := bulk.CompactionProgress(p)
			if err != nil || !done {
				return fmt.Errorf("compaction progress: done=%v err=%v", done, err)
			}
			res.hostRuns = int(pr.HostRuns)
			res.deviceRuns = int(pr.DeviceRuns)
			return nil
		}()
	})
	env.Run()
	if runErr == nil {
		runErr = probeErr
	}
	return res, runErr
}

func csKey(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

// Values are mid-sized on purpose. The key sort is the collaborative half of
// the compaction, so keys must stay a meaningful share of the bytes for the
// policies to move work around (the paper's metadata-heavy VPIC regime) —
// but the value-distribution passes are the media-bound stages the parallel
// pipeline overlaps, so values must carry enough bytes for width to matter.
func csValue(i int) []byte {
	v := make([]byte, 0, csValueBytes)
	v = append(v, fmt.Sprintf("val-%08d-", i)...)
	for len(v) < csValueBytes {
		v = append(v, byte('a'+i%23))
	}
	return v
}
