package bench

import (
	"fmt"
	"time"

	"kvcsd/internal/rocks"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
	"kvcsd/internal/workload"
)

// insertOutcome captures one insertion run plus its I/O statistics.
type insertOutcome struct {
	res workload.InsertResult
	st  *stats.IOStats
}

// runKVCSDInsert executes one KV-CSD insertion experiment.
func runKVCSDInsert(hostCores int, cfg workload.InsertConfig) (insertOutcome, error) {
	data := int64(cfg.Threads*cfg.KeysPerThread) * int64(cfg.KeySize+cfg.ValueSize)
	rig := newKVCSDRig(hostCores, data, cfg.Seed)
	var out insertOutcome
	err := runSim(rig.env, func(p *sim.Proc) error {
		res, err := workload.RunInsert(p, rig.tgt, cfg)
		if err != nil {
			return err
		}
		out = insertOutcome{res: res, st: rig.st}
		rig.dev.Shutdown()
		return nil
	})
	return out, err
}

// runRocksInsert executes one baseline insertion experiment. LSM knobs are
// sized to the per-instance data so flushes and compactions occur at bench
// scale just as they do at paper scale.
func runRocksInsert(hostCores int, mode rocks.CompactionMode, cfg workload.InsertConfig) (insertOutcome, error) {
	data := int64(cfg.Threads*cfg.KeysPerThread) * int64(cfg.KeySize+cfg.ValueSize)
	perInstance := data
	if !cfg.SharedKeyspace && cfg.Threads > 0 {
		perInstance = data / int64(cfg.Threads)
	}
	rig := newRocksRigPer(hostCores, mode, data, perInstance, cfg.Seed)
	var out insertOutcome
	err := runSim(rig.env, func(p *sim.Proc) error {
		res, err := workload.RunInsert(p, rig.tgt, cfg)
		if err != nil {
			return err
		}
		out = insertOutcome{res: res, st: rig.st}
		return closeRocks(p, rig.tgt, cfg)
	})
	return out, err
}

func closeRocks(p *sim.Proc, tgt *workload.RocksTarget, cfg workload.InsertConfig) error {
	seen := map[string]bool{}
	for t := 0; t < cfg.Threads; t++ {
		name := workload.KeyspaceNameFor(cfg, t)
		if seen[name] {
			continue
		}
		seen[name] = true
		if db := tgt.DB(name); db != nil {
			if err := db.Close(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig7 reproduces Figures 7a and 7b: 32M (scaled) pairs into one shared
// keyspace with 1..32 application threads; KV-CSD with bulk puts + deferred
// compaction versus RocksDB with automatic compaction. The paper's claims:
// RocksDB needs all 32 cores to peak while KV-CSD peaks at ~2; KV-CSD is
// ~4.2x faster at 32 cores and ~7.9x at 2; RocksDB shows multifold extra
// storage I/O from compaction.
func Fig7(s Scale) (*Table, *Table, error) {
	a := &Table{
		Title:  "Figure 7a: time to insert keys into a single keyspace vs host CPU cores",
		Header: []string{"threads", "kvcsd_write_s", "rocksdb_write_s", "speedup", "kvcsd_compact_s"},
	}
	b := &Table{
		Title:  "Figure 7b: I/O statistics during insertion",
		Header: []string{"threads", "engine", "media_write", "media_read", "host_dev_xfer", "write_amp"},
	}
	for _, th := range s.Threads {
		keysPer := s.Fig7TotalKeys / th
		base := workload.InsertConfig{
			Threads: th, KeysPerThread: keysPer, KeySize: 16, ValueSize: 32,
			SharedKeyspace: true, Seed: s.Seed, KeyspacePrefix: "fig7",
		}
		kcfg := base
		kcfg.Bulk = true
		kv, err := runKVCSDInsert(th, kcfg)
		if err != nil {
			return nil, nil, fmt.Errorf("fig7 kvcsd t=%d: %w", th, err)
		}
		rk, err := runRocksInsert(th, rocks.CompactionAuto, base)
		if err != nil {
			return nil, nil, fmt.Errorf("fig7 rocks t=%d: %w", th, err)
		}
		a.Add(fmt.Sprint(th), secs(kv.res.WriteTime), secs(rk.res.WriteTime),
			ratio(rk.res.WriteTime, kv.res.WriteTime),
			secs(kv.res.ReadyTime-kv.res.WriteTime))
		for _, e := range []struct {
			name string
			st   *stats.IOStats
		}{{"kvcsd", kv.st}, {"rocksdb", rk.st}} {
			b.Add(fmt.Sprint(th), e.name,
				stats.HumanBytes(e.st.MediaWrite.Value()),
				stats.HumanBytes(e.st.MediaRead.Value()),
				stats.HumanBytes(e.st.HostToDevice.Value()+e.st.DeviceToHost.Value()),
				fmt.Sprintf("%.2f", e.st.WriteAmplification()))
		}
	}
	a.Notes = append(a.Notes,
		"kvcsd write time excludes device-side compaction (deferred+offloaded); kvcsd_compact_s is the async device window",
		"rocksdb write time includes waiting for background compaction to drain (paper methodology)")
	b.Notes = append(b.Notes, "host_dev_xfer for rocksdb counts block traffic to the drive; for kvcsd it is PCIe command/DMA traffic")
	return a, b, nil
}

// Fig8 reproduces Figure 8: value-size sweep at 32 threads. RocksDB runs
// with all host cores; KV-CSD runs with both 2 and 32 host cores to show the
// paper's point that 2 cores already saturate the device.
func Fig8(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 8: time to insert keys with different value sizes",
		Header: []string{"value_size", "rocksdb32_s", "kvcsd32_s", "kvcsd2_s", "speedup32", "speedup2"},
	}
	threads := 32
	for _, vs := range s.Fig8ValueSizes {
		keysPer := s.Fig8TotalKeys / threads
		base := workload.InsertConfig{
			Threads: threads, KeysPerThread: keysPer, KeySize: 16, ValueSize: vs,
			SharedKeyspace: true, Seed: s.Seed, KeyspacePrefix: "fig8",
		}
		kcfg := base
		kcfg.Bulk = true
		rk, err := runRocksInsert(32, rocks.CompactionAuto, base)
		if err != nil {
			return nil, fmt.Errorf("fig8 rocks v=%d: %w", vs, err)
		}
		kv32, err := runKVCSDInsert(32, kcfg)
		if err != nil {
			return nil, fmt.Errorf("fig8 kvcsd32 v=%d: %w", vs, err)
		}
		kv2, err := runKVCSDInsert(2, kcfg)
		if err != nil {
			return nil, fmt.Errorf("fig8 kvcsd2 v=%d: %w", vs, err)
		}
		t.Add(fmt.Sprint(vs), secs(rk.res.WriteTime), secs(kv32.res.WriteTime), secs(kv2.res.WriteTime),
			ratio(rk.res.WriteTime, kv32.res.WriteTime), ratio(rk.res.WriteTime, kv2.res.WriteTime))
	}
	t.Notes = append(t.Notes, "paper: ~10x at 4KiB values; KV-CSD on 2 host cores still ~8.9x faster than RocksDB on 32")
	return t, nil
}

// Fig9 reproduces Figure 9: per-thread keyspaces, scaling keyspace count and
// data size, with RocksDB in all three compaction modes. Paper: at 32
// keyspaces KV-CSD is ~7.8x/6.1x/2.9x faster than auto/deferred/disabled.
func Fig9(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 9: insertion time as keyspace count and data size increase",
		Header: []string{"keyspaces", "kvcsd_s", "rocks_auto_s", "rocks_defer_s", "rocks_none_s", "vs_auto", "vs_defer", "vs_none"},
	}
	for _, th := range s.Threads {
		base := workload.InsertConfig{
			Threads: th, KeysPerThread: s.Fig9KeysPerKeyspace, KeySize: 16, ValueSize: 32,
			Seed: s.Seed, KeyspacePrefix: "fig9",
		}
		kcfg := base
		kcfg.Bulk = true
		kv, err := runKVCSDInsert(th, kcfg)
		if err != nil {
			return nil, fmt.Errorf("fig9 kvcsd k=%d: %w", th, err)
		}
		times := map[rocks.CompactionMode]time.Duration{}
		for _, mode := range []rocks.CompactionMode{rocks.CompactionAuto, rocks.CompactionDeferred, rocks.CompactionDisabled} {
			rk, err := runRocksInsert(th, mode, base)
			if err != nil {
				return nil, fmt.Errorf("fig9 rocks %v k=%d: %w", mode, th, err)
			}
			times[mode] = rk.res.WriteTime
		}
		t.Add(fmt.Sprint(th), secs(kv.res.WriteTime),
			secs(times[rocks.CompactionAuto]), secs(times[rocks.CompactionDeferred]), secs(times[rocks.CompactionDisabled]),
			ratio(times[rocks.CompactionAuto], kv.res.WriteTime),
			ratio(times[rocks.CompactionDeferred], kv.res.WriteTime),
			ratio(times[rocks.CompactionDisabled], kv.res.WriteTime))
	}
	t.Notes = append(t.Notes, "each keyspace holds its own pairs (per-thread keyspace / per-thread RocksDB instance on shared ext4)")
	return t, nil
}

// Fig10 reproduces Figures 10a and 10b: random GETs against data loaded into
// Fig10Keyspaces keyspaces, sweeping total query count; caches cold at the
// start of each run. Paper: KV-CSD up to ~1.3x faster; RocksDB improves with
// query count thanks to client-side caching; RocksDB reads far more bytes
// from storage than it returns (read inflation).
func Fig10(s Scale) (*Table, *Table, error) {
	a := &Table{
		Title:  "Figure 10a: time to execute random GET operations",
		Header: []string{"queries", "kvcsd_s", "rocksdb_s", "speedup", "kvcsd_p99_us", "rocks_p99_us"},
	}
	b := &Table{
		Title:  "Figure 10b: GET-phase I/O statistics",
		Header: []string{"queries", "engine", "media_read", "app_read", "read_inflation", "cache_hit_rate"},
	}
	ks := s.Fig10Keyspaces
	insert := workload.InsertConfig{
		Threads: ks, KeysPerThread: s.Fig10KeysPerKS, KeySize: 16, ValueSize: 32,
		Seed: s.Seed, KeyspacePrefix: "fig10",
	}
	data := int64(ks*s.Fig10KeysPerKS) * 48

	// One loaded KV-CSD rig reused across query sweeps.
	kvRig := newKVCSDRig(32, data, s.Seed)
	kvTimes := map[int]sim.Duration{}
	kvP99 := map[int]sim.Duration{}
	kvIO := map[int][2]int64{} // media read, app read
	err := runSim(kvRig.env, func(p *sim.Proc) error {
		kcfg := insert
		kcfg.Bulk = true
		if _, err := workload.RunInsert(p, kvRig.tgt, kcfg); err != nil {
			return err
		}
		for _, q := range s.Fig10Queries {
			r0, a0 := kvRig.st.MediaRead.Value(), kvRig.st.AppRead.Value()
			res, err := workload.RunRandomGets(p, kvRig.tgt, workload.GetConfig{
				Threads: ks, QueriesPerThread: q / ks, KeysPerThread: s.Fig10KeysPerKS,
				KeySize: 16, Seed: s.Seed, QuerySeed: int64(q), KeyspacePrefix: "fig10",
			})
			if err != nil {
				return err
			}
			kvTimes[q] = res.QueryTime
			kvP99[q] = res.Latency.Quantile(0.99)
			kvIO[q] = [2]int64{kvRig.st.MediaRead.Value() - r0, kvRig.st.AppRead.Value() - a0}
		}
		kvRig.dev.Shutdown()
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fig10 kvcsd: %w", err)
	}

	rkRig := newRocksRig(32, rocks.CompactionAuto, data, s.Seed)
	rkTimes := map[int]sim.Duration{}
	rkP99 := map[int]sim.Duration{}
	rkIO := map[int][2]int64{}
	rkHit := map[int]float64{}
	err = runSim(rkRig.env, func(p *sim.Proc) error {
		if _, err := workload.RunInsert(p, rkRig.tgt, insert); err != nil {
			return err
		}
		for _, q := range s.Fig10Queries {
			r0, a0 := rkRig.st.MediaRead.Value(), rkRig.st.AppRead.Value()
			h0, m0 := rkRig.st.CacheHits.Value(), rkRig.st.CacheMisses.Value()
			res, err := workload.RunRandomGets(p, rkRig.tgt, workload.GetConfig{
				Threads: ks, QueriesPerThread: q / ks, KeysPerThread: s.Fig10KeysPerKS,
				KeySize: 16, Seed: s.Seed, QuerySeed: int64(q), KeyspacePrefix: "fig10",
			})
			if err != nil {
				return err
			}
			rkTimes[q] = res.QueryTime
			rkP99[q] = res.Latency.Quantile(0.99)
			rkIO[q] = [2]int64{rkRig.st.MediaRead.Value() - r0, rkRig.st.AppRead.Value() - a0}
			dh := float64(rkRig.st.CacheHits.Value() - h0)
			dm := float64(rkRig.st.CacheMisses.Value() - m0)
			if dh+dm > 0 {
				rkHit[q] = dh / (dh + dm)
			}
		}
		return closeRocks(p, rkRig.tgt, insert)
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fig10 rocks: %w", err)
	}

	for _, q := range s.Fig10Queries {
		a.Add(fmt.Sprint(q), secs(kvTimes[q]), secs(rkTimes[q]), ratio(rkTimes[q], kvTimes[q]),
			fmt.Sprintf("%.1f", float64(kvP99[q])/1e3), fmt.Sprintf("%.1f", float64(rkP99[q])/1e3))
		inflK := float64(0)
		if kvIO[q][1] > 0 {
			inflK = float64(kvIO[q][0]) / float64(kvIO[q][1])
		}
		inflR := float64(0)
		if rkIO[q][1] > 0 {
			inflR = float64(rkIO[q][0]) / float64(rkIO[q][1])
		}
		b.Add(fmt.Sprint(q), "kvcsd", stats.HumanBytes(kvIO[q][0]), stats.HumanBytes(kvIO[q][1]),
			fmt.Sprintf("%.1f", inflK), "-")
		b.Add(fmt.Sprint(q), "rocksdb", stats.HumanBytes(rkIO[q][0]), stats.HumanBytes(rkIO[q][1]),
			fmt.Sprintf("%.1f", inflR), fmt.Sprintf("%.2f", rkHit[q]))
	}
	a.Notes = append(a.Notes, "caches dropped before each query round; rocksdb block cache warms across a round (client-side caching)")
	return a, b, nil
}
