package bench

import (
	"fmt"
	"sync"
	"time"

	"kvcsd/internal/device"
	"kvcsd/internal/remote"
	"kvcsd/internal/server"
)

// RemoteThroughput sweeps the network service layer: a loopback
// kvcsd-server fronting one simulated device, driven by the pipelined
// remote client at increasing connection counts and pipeline depths. Each
// cell loads s.RemoteOps pairs through batched bulk puts, compacts, then
// issues s.RemoteOps point gets from a worker pool sized to saturate the
// configured window.
//
// Unlike the virtual-time figures, the columns here are wall-clock: the
// benchmark measures the real TCP + goroutine path around the simulation,
// so absolute numbers vary by machine. The shape — pipelining and extra
// connections recovering throughput lost to per-request round trips — is
// the result.
func RemoteThroughput(s Scale) (*Table, error) {
	sweep := []struct {
		conns    int
		pipeline int
	}{
		{1, 1},
		{1, 8},
		{1, 32},
		{2, 32},
		{4, 32},
	}

	t := &Table{
		Title:  "Remote throughput: connections x pipeline depth (wall-clock)",
		Header: []string{"conns", "pipeline", "load_s", "get_s", "get_ops_s", "shed", "accepted"},
		Notes: []string{
			fmt.Sprintf("%d ops per phase over loopback TCP; wall-clock, machine-dependent", s.RemoteOps),
			"gets issued by a worker pool sized to the total window (conns x pipeline, capped at 64)",
		},
	}

	for _, cfg := range sweep {
		loadDur, getDur, met, err := remoteRun(s, cfg.conns, cfg.pipeline)
		if err != nil {
			return nil, fmt.Errorf("conns=%d pipeline=%d: %w", cfg.conns, cfg.pipeline, err)
		}
		opsPerSec := float64(s.RemoteOps) / getDur.Seconds()
		t.Add(
			fmt.Sprintf("%d", cfg.conns),
			fmt.Sprintf("%d", cfg.pipeline),
			secs(loadDur),
			secs(getDur),
			fmt.Sprintf("%.0f", opsPerSec),
			fmt.Sprintf("%d", met.Shed),
			fmt.Sprintf("%d", met.Accepted),
		)
	}
	return t, nil
}

// remoteRun executes one sweep cell against a fresh server.
func remoteRun(s Scale, conns, pipeline int) (load, get time.Duration, met server.MetricsSnapshot, err error) {
	dopts := device.DefaultOptions()
	dopts.Seed = s.Seed
	srv := server.NewDevice(dopts, server.DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return 0, 0, met, err
	}
	defer srv.Close()

	ropts := remote.DefaultOptions()
	ropts.Conns = conns
	ropts.Pipeline = pipeline
	c, err := remote.Dial(addr.String(), ropts)
	if err != nil {
		return 0, 0, met, err
	}
	defer c.Close()

	ks, err := c.CreateKeyspace("bench")
	if err != nil {
		return 0, 0, met, err
	}

	t0 := time.Now()
	for i := 0; i < s.RemoteOps; i++ {
		if err := ks.BulkPut(workloadKey(i), workloadValue(i)); err != nil {
			return 0, 0, met, err
		}
	}
	if err := ks.Flush(); err != nil {
		return 0, 0, met, err
	}
	load = time.Since(t0)

	if err := ks.Compact(); err != nil {
		return 0, 0, met, err
	}
	if err := ks.WaitCompacted(); err != nil {
		return 0, 0, met, err
	}

	workers := conns * pipeline
	if workers > 64 {
		workers = 64
	}
	if workers < 1 {
		workers = 1
	}
	t1 := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	per := (s.RemoteOps + workers - 1) / workers
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < per; q++ {
				i := w*per + q
				if i >= s.RemoteOps {
					return
				}
				if _, ok, err := ks.Get(workloadKey(i)); err != nil || !ok {
					errCh <- fmt.Errorf("get %d: ok=%v err=%v", i, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	get = time.Since(t1)
	close(errCh)
	for e := range errCh {
		return 0, 0, met, e
	}
	return load, get, srv.Metrics(), nil
}
