package bench

import (
	"fmt"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/keyenc"
	"kvcsd/internal/rocks"
	"kvcsd/internal/sim"
	"kvcsd/internal/vpic"
	"kvcsd/internal/workload"
)

// The macro benchmark (paper §VI-C) loads a VPIC particle dump — 16 files,
// one loader thread and one keyspace per file, one key-value pair per
// particle (16 B particle ID key, 32 B payload value) — then queries by
// kinetic energy at several selectivity levels.
//
// KV-CSD: the loader inserts with bulk puts, invokes compaction and
// secondary-index construction, and exits; the device does both
// asynchronously. Queries are device-side secondary range queries streaming
// back full particles.
//
// RocksDB: the loader inserts a primary pair plus an auxiliary
// energy-keyed pair per particle (1 B prefix distinguishes them); automatic
// compaction sorts both. A query is two-step: range-scan the auxiliary
// index, then point-GET each matching particle.

const (
	rocksPrimaryPrefix = 0x00
	rocksAuxPrefix     = 0x01
)

// MacroResult carries both figures plus the measurements behind them.
type MacroResult struct {
	Fig11 *Table
	Fig12 *Table

	KVCSDInsert  time.Duration
	KVCSDCompact time.Duration
	KVCSDIndex   time.Duration
	RocksInsert  time.Duration
	RocksTotal   time.Duration
}

// RunMacro executes the full write + query phases for both engines.
func RunMacro(s Scale) (*MacroResult, error) {
	ds := vpic.Generate(s.Seed, s.VPICFiles, s.VPICParticlesPerFile)
	out := &MacroResult{}

	kvQueryTimes, kvCounts, err := runMacroKVCSD(s, ds, out)
	if err != nil {
		return nil, fmt.Errorf("macro kvcsd: %w", err)
	}
	rkQueryTimes, rkCounts, err := runMacroRocks(s, ds, out)
	if err != nil {
		return nil, fmt.Errorf("macro rocks: %w", err)
	}

	out.Fig11 = &Table{
		Title:  "Figure 11: breakdown of KV-CSD and RocksDB insertion time (VPIC dump)",
		Header: []string{"engine", "insert_s", "compaction_s", "sec_index_s", "effective_write_s", "where"},
	}
	out.Fig11.Add("kvcsd", secs(out.KVCSDInsert), secs(out.KVCSDCompact), secs(out.KVCSDIndex),
		secs(out.KVCSDInsert), "compaction+indexing async in device")
	out.Fig11.Add("rocksdb", secs(out.RocksInsert), secs(out.RocksTotal-out.RocksInsert), "(in compaction)",
		secs(out.RocksTotal), "all on host; app waits")
	out.Fig11.Add("speedup", "-", "-", "-", ratio(out.RocksTotal, out.KVCSDInsert), "effective write time")
	out.Fig11.Notes = append(out.Fig11.Notes,
		fmt.Sprintf("dataset: %d files x %d particles (48B each)", s.VPICFiles, s.VPICParticlesPerFile),
		"paper: 66s effective vs 704s => ~10.6x")

	out.Fig12 = &Table{
		Title:  "Figure 12: KV-CSD vs RocksDB secondary index (energy) query time",
		Header: []string{"selectivity_pct", "matches", "kvcsd_s", "rocksdb_s", "speedup"},
	}
	for i, sel := range s.Selectivities {
		out.Fig12.Add(fmt.Sprintf("%.2f", sel*100), fmt.Sprint(kvCounts[i]),
			secs(kvQueryTimes[i]), secs(rkQueryTimes[i]), ratio(rkQueryTimes[i], kvQueryTimes[i]))
		if kvCounts[i] != rkCounts[i] {
			out.Fig12.Notes = append(out.Fig12.Notes,
				fmt.Sprintf("MISMATCH at %.2f%%: kvcsd=%d rocks=%d", sel*100, kvCounts[i], rkCounts[i]))
		}
	}
	out.Fig12.Notes = append(out.Fig12.Notes,
		"paper: ~7.4x at 0.1% falling to ~1.3x at 20% (RocksDB client-side caching pays off at low selectivity)")
	return out, nil
}

func runMacroKVCSD(s Scale, ds *vpic.Dataset, out *MacroResult) ([]time.Duration, []int, error) {
	data := int64(ds.TotalParticles()) * vpic.ParticleSize
	rig := newKVCSDRig(32, data*2, s.Seed)
	queryTimes := make([]time.Duration, len(s.Selectivities))
	counts := make([]int, len(s.Selectivities))
	err := runSim(rig.env, func(p *sim.Proc) error {
		cl := client.New(rig.h, rig.dev)
		// Write phase: 16 loader threads, one keyspace per file.
		start := p.Now()
		var loaders []*sim.Proc
		handles := make([]*client.Keyspace, len(ds.Files))
		errs := make([]error, len(ds.Files))
		for i := range ds.Files {
			i := i
			loaders = append(loaders, rig.env.Go(fmt.Sprintf("loader-%d", i), func(lp *sim.Proc) {
				ks, err := cl.CreateKeyspace(lp, fmt.Sprintf("particles-%d", i))
				if err != nil {
					errs[i] = err
					return
				}
				handles[i] = ks
				for j := range ds.Files[i].Particles {
					pt := &ds.Files[i].Particles[j]
					if err := ks.BulkPut(lp, pt.Key(), pt.Payload[:]); err != nil {
						errs[i] = err
						return
					}
				}
				// Invoke compaction and secondary index construction; both
				// run asynchronously in the device.
				if err := ks.Compact(lp); err != nil {
					errs[i] = err
					return
				}
				errs[i] = ks.BuildSecondaryIndex(lp, client.IndexSpec{
					Name: "energy", Offset: vpic.EnergyOffset, Length: 4, Type: keyenc.TypeFloat32,
				})
			}))
		}
		p.Join(loaders...)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		out.KVCSDInsert = time.Duration(p.Now() - start)

		// Device-side background phases (not visible to the application).
		cDone := p.Now()
		for _, ks := range handles {
			if err := ks.WaitCompacted(p); err != nil {
				return err
			}
		}
		out.KVCSDCompact = time.Duration(p.Now()-start) - out.KVCSDInsert
		cDone = p.Now()
		for _, ks := range handles {
			if err := ks.WaitIndexBuilt(p, "energy"); err != nil {
				return err
			}
		}
		out.KVCSDIndex = time.Duration(p.Now() - cDone)

		// Query phase: energy > threshold, per selectivity, 16 query threads.
		for si, sel := range s.Selectivities {
			lo := keyenc.PutFloat32(vpic.EnergyThreshold(sel))
			q0 := p.Now()
			var readers []*sim.Proc
			matches := make([]int, len(handles))
			for i, ks := range handles {
				i, ks := i, ks
				readers = append(readers, rig.env.Go(fmt.Sprintf("query-%d", i), func(rp *sim.Proc) {
					pairs, err := ks.QuerySecondaryRange(rp, "energy", lo, nil, 0)
					if err != nil {
						errs[i] = err
						return
					}
					matches[i] = len(pairs)
				}))
			}
			p.Join(readers...)
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			queryTimes[si] = time.Duration(p.Now() - q0)
			for _, m := range matches {
				counts[si] += m
			}
		}
		rig.dev.Shutdown()
		return nil
	})
	return queryTimes, counts, err
}

func runMacroRocks(s Scale, ds *vpic.Dataset, out *MacroResult) ([]time.Duration, []int, error) {
	data := int64(ds.TotalParticles()) * vpic.ParticleSize * 2 // primary + aux rows
	rig := newRocksRig(32, rocks.CompactionAuto, data, s.Seed)
	queryTimes := make([]time.Duration, len(s.Selectivities))
	counts := make([]int, len(s.Selectivities))
	err := runSim(rig.env, func(p *sim.Proc) error {
		start := p.Now()
		var loaders []*sim.Proc
		kss := make([]workload.KS, len(ds.Files))
		errs := make([]error, len(ds.Files))
		for i := range ds.Files {
			i := i
			ks, err := rig.tgt.CreateKeyspace(p, fmt.Sprintf("particles-%d", i))
			if err != nil {
				return err
			}
			kss[i] = ks
			loaders = append(loaders, rig.env.Go(fmt.Sprintf("loader-%d", i), func(lp *sim.Proc) {
				for j := range ds.Files[i].Particles {
					pt := &ds.Files[i].Particles[j]
					// Primary pair: 0x00 | ID16 -> payload.
					pk := append([]byte{rocksPrimaryPrefix}, pt.Key()...)
					if err := ks.Put(lp, pk, pt.Payload[:]); err != nil {
						errs[i] = err
						return
					}
					// Auxiliary pair: 0x01 | energy(order-preserving) | ID16 -> nil.
					ak := make([]byte, 0, 21)
					ak = append(ak, rocksAuxPrefix)
					ak = append(ak, keyenc.PutFloat32(pt.Energy())...)
					ak = append(ak, pt.Key()...)
					if err := ks.Put(lp, ak, nil); err != nil {
						errs[i] = err
						return
					}
				}
			}))
		}
		p.Join(loaders...)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		out.RocksInsert = time.Duration(p.Now() - start)
		// Wait for automatic compaction to conclude (paper methodology);
		// this sorts both primary and auxiliary rows.
		for _, ks := range kss {
			if err := rig.tgt.EndInsert(p, ks); err != nil {
				return err
			}
		}
		out.RocksTotal = time.Duration(p.Now() - start)

		// Query phase: two-step — scan the aux index, then point-GET the
		// matching particles by ID.
		for si, sel := range s.Selectivities {
			rig.tgt.DropCaches()
			t := vpic.EnergyThreshold(sel)
			lo := append([]byte{rocksAuxPrefix}, keyenc.PutFloat32(t)...)
			hi := []byte{rocksAuxPrefix + 1}
			q0 := p.Now()
			var readers []*sim.Proc
			matches := make([]int, len(kss))
			for i := range kss {
				i := i
				db := rig.tgt.DB(fmt.Sprintf("particles-%d", i))
				readers = append(readers, rig.env.Go(fmt.Sprintf("query-%d", i), func(rp *sim.Proc) {
					var ids [][]byte
					_, err := db.Scan(rp, lo, hi, 0, func(k, v []byte) bool {
						id := append([]byte(nil), k[len(k)-16:]...)
						ids = append(ids, id)
						return true
					})
					if err != nil {
						errs[i] = err
						return
					}
					for _, id := range ids {
						pk := append([]byte{rocksPrimaryPrefix}, id...)
						_, found, err := db.Get(rp, pk)
						if err != nil {
							errs[i] = err
							return
						}
						if found {
							matches[i]++
						}
					}
				}))
			}
			p.Join(readers...)
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			queryTimes[si] = time.Duration(p.Now() - q0)
			for _, m := range matches {
				counts[si] += m
			}
		}
		for i := range kss {
			if err := rig.tgt.DB(fmt.Sprintf("particles-%d", i)).Close(p); err != nil {
				return err
			}
		}
		return nil
	})
	return queryTimes, counts, err
}
