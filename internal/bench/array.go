package bench

import (
	"fmt"
	"time"

	"kvcsd/internal/array"
)

// arrayDeviceSweep is the device-count axis of the array-scaling experiment.
var arrayDeviceSweep = []int{1, 2, 4, 8}

// ArrayScaling runs the multi-device scaling experiment: a fixed total key
// volume is loaded into a range-sharded keyspace over 1..maxDevices devices
// (replicas copies of every shard), then compacted by the fleet scheduler
// and queried. Near-linear insert speedup over the single-device row is the
// reproduction target; the write-amplification column shows the replication
// overhead (about R times the R=1 bytes).
func ArrayScaling(s Scale, maxDevices, replicas int) (*Table, error) {
	if maxDevices < 1 {
		maxDevices = 1
	}
	if replicas < 1 {
		replicas = 1
	}
	t := &Table{
		Title: fmt.Sprintf("Array scaling: %d keys over 1..%d devices, R=%d (KV-CSD array)",
			s.ArrayTotalKeys, maxDevices, replicas),
		Header: []string{"devices", "replicas", "insert_s", "keys_per_s", "speedup", "get_p99_us", "media_wr_MiB", "write_amp"},
		Notes: []string{
			"fixed total volume; speedup is insert throughput vs the 1-device row",
			"write_amp = fleet media writes / logical bytes; replication multiplies it by ~R",
		},
	}
	logical := float64(s.ArrayTotalKeys) * float64(16+128)
	var base float64
	for _, d := range arrayDeviceSweep {
		if d > maxDevices {
			break
		}
		cfg := array.DefaultScalingConfig()
		cfg.Devices = d
		cfg.Replicas = replicas
		cfg.TotalKeys = s.ArrayTotalKeys
		cfg.Queries = s.ArrayQueries
		cfg.Seed = s.Seed
		res, err := array.RunScaling(cfg)
		if err != nil {
			return nil, fmt.Errorf("array scaling at %d devices: %w", d, err)
		}
		if base == 0 {
			base = res.Throughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = res.Throughput / base
		}
		mediaWr := res.Stats.MediaWrite.Value()
		t.Add(
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", res.Replicas),
			secs(res.InsertTime),
			fmt.Sprintf("%.0f", res.Throughput),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%.1f", float64(res.GetP99)/float64(time.Microsecond)),
			fmt.Sprintf("%.1f", float64(mediaWr)/float64(1<<20)),
			fmt.Sprintf("%.1f", float64(mediaWr)/logical),
		)
	}
	return t, nil
}
