package remote_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"kvcsd/internal/client"
	"kvcsd/internal/device"
	"kvcsd/internal/host"
	"kvcsd/internal/keyenc"
	"kvcsd/internal/nvme"
	"kvcsd/internal/remote"
	"kvcsd/internal/server"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

const (
	eqKeys   = 600
	eqSeed   = 0x5EED
	eqIndex  = "temp"
	eqValLen = 64
)

func eqKey(i int) []byte {
	return []byte(fmt.Sprintf("key-%06d", i))
}

// eqValue embeds a little-endian uint32 "temperature" at offset 0 so a
// secondary index can be built over it.
func eqValue(i int) []byte {
	v := make([]byte, eqValLen)
	binary.LittleEndian.PutUint32(v, uint32((i*2654435761)%100000))
	for j := 4; j < eqValLen; j++ {
		v[j] = byte(i + j)
	}
	return v
}

func eqSpec() client.IndexSpec {
	return client.IndexSpec{Name: eqIndex, Offset: 0, Length: 4, Type: keyenc.TypeUint32}
}

// inProcessResults runs the seeded workload against a device directly
// through the in-process client library and collects every observable
// result.
type results struct {
	gets    map[string][]byte
	misses  []string
	scan    []nvme.KVPair
	secLo   []nvme.KVPair
	secPt   []nvme.KVPair
	existY  bool
	existN  bool
	pairs   int64
	zoneCnt int
}

func secondaryBounds() (lo, hi, pt []byte) {
	lo = keyenc.PutUint32(10000)
	hi = keyenc.PutUint32(30000)
	// Point-query the secondary value of key 7.
	pt = keyenc.PutUint32(binary.LittleEndian.Uint32(eqValue(7)))
	return
}

func inProcessResults(t *testing.T) *results {
	t.Helper()
	env := sim.NewEnv()
	st := stats.NewIOStats()
	h := host.New(env, host.DefaultHostConfig())
	opts := device.DefaultOptions()
	opts.Seed = eqSeed
	dev := device.New(env, opts, st)
	cl := client.New(h, dev)

	r := &results{gets: make(map[string][]byte)}
	env.Go("workload", func(p *sim.Proc) {
		ks, err := cl.CreateKeyspace(p, "eq")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		for i := 0; i < eqKeys; i++ {
			if err := ks.BulkPut(p, eqKey(i), eqValue(i)); err != nil {
				t.Errorf("bulkput %d: %v", i, err)
				return
			}
		}
		if err := ks.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		if err := ks.CompactWithIndexes(p, []client.IndexSpec{eqSpec()}); err != nil {
			t.Errorf("compact: %v", err)
			return
		}
		if err := ks.WaitCompacted(p); err != nil {
			t.Errorf("wait compacted: %v", err)
			return
		}
		if err := ks.WaitIndexBuilt(p, eqIndex); err != nil {
			t.Errorf("wait index: %v", err)
			return
		}
		for i := 0; i < eqKeys; i += 7 {
			v, ok, err := ks.Get(p, eqKey(i))
			if err != nil || !ok {
				t.Errorf("get %d: ok=%v err=%v", i, ok, err)
				return
			}
			r.gets[string(eqKey(i))] = v
		}
		if _, ok, _ := ks.Get(p, []byte("nope")); ok {
			t.Error("phantom key")
		}
		r.scan, err = ks.Scan(p, eqKey(100), eqKey(200), 0)
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		lo, hi, pt := secondaryBounds()
		r.secLo, err = ks.QuerySecondaryRange(p, eqIndex, lo, hi, 0)
		if err != nil {
			t.Errorf("secondary range: %v", err)
			return
		}
		r.secPt, err = ks.QuerySecondaryPoint(p, eqIndex, pt, 0)
		if err != nil {
			t.Errorf("secondary point: %v", err)
			return
		}
		r.existY, _ = ks.Exist(p, eqKey(3))
		r.existN, _ = ks.Exist(p, []byte("nope"))
		info, err := ks.Info(p)
		if err != nil {
			t.Errorf("info: %v", err)
			return
		}
		r.pairs = info.Pairs
		dev.Shutdown()
	})
	env.Run()
	return r
}

// TestLoopbackEquivalence drives the identical workload through a loopback
// TCP server with a pipelined remote client and requires byte-identical
// results — the protocol round trip must be invisible.
func TestLoopbackEquivalence(t *testing.T) {
	want := inProcessResults(t)
	if t.Failed() {
		t.Fatal("in-process baseline failed")
	}

	opts := device.DefaultOptions()
	opts.Seed = eqSeed
	srv := server.NewDevice(opts, server.DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	ropts := remote.DefaultOptions()
	ropts.Conns = 2
	ropts.Pipeline = 32
	rc, err := remote.Dial(addr.String(), ropts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	ks, err := rc.CreateKeyspace("eq")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < eqKeys; i++ {
		if err := ks.BulkPut(eqKey(i), eqValue(i)); err != nil {
			t.Fatalf("bulkput %d: %v", i, err)
		}
	}
	if err := ks.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := ks.CompactWithIndexes([]client.IndexSpec{eqSpec()}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := ks.WaitCompacted(); err != nil {
		t.Fatalf("wait compacted: %v", err)
	}
	if err := ks.WaitIndexBuilt(eqIndex); err != nil {
		t.Fatalf("wait index: %v", err)
	}

	// Sequential reads must match the in-process run byte for byte.
	for key, wantV := range want.gets {
		v, ok, err := ks.Get([]byte(key))
		if err != nil || !ok {
			t.Fatalf("remote get %q: ok=%v err=%v", key, ok, err)
		}
		if !bytes.Equal(v, wantV) {
			t.Fatalf("remote get %q: value mismatch", key)
		}
	}
	if _, ok, _ := ks.Get([]byte("nope")); ok {
		t.Fatal("remote phantom key")
	}
	scan, err := ks.Scan(eqKey(100), eqKey(200), 0)
	if err != nil {
		t.Fatalf("remote scan: %v", err)
	}
	comparePairs(t, "scan", scan, want.scan)
	lo, hi, pt := secondaryBounds()
	secLo, err := ks.QuerySecondaryRange(eqIndex, lo, hi, 0)
	if err != nil {
		t.Fatalf("remote secondary range: %v", err)
	}
	comparePairs(t, "secondary-range", secLo, want.secLo)
	secPt, err := ks.QuerySecondaryPoint(eqIndex, pt, 0)
	if err != nil {
		t.Fatalf("remote secondary point: %v", err)
	}
	comparePairs(t, "secondary-point", secPt, want.secPt)
	if y, _ := ks.Exist(eqKey(3)); y != want.existY {
		t.Fatalf("exist(key3) = %v, want %v", y, want.existY)
	}
	if n, _ := ks.Exist([]byte("nope")); n != want.existN {
		t.Fatalf("exist(nope) = %v, want %v", n, want.existN)
	}
	info, err := ks.Info()
	if err != nil {
		t.Fatalf("remote info: %v", err)
	}
	if info.Pairs != want.pairs {
		t.Fatalf("info.Pairs = %d, want %d", info.Pairs, want.pairs)
	}

	// Pipelined concurrent gets across the pool must each return the right
	// value (out-of-order completion exercises the request-ID demux).
	var wg sync.WaitGroup
	errs := make(chan error, eqKeys)
	for i := 0; i < eqKeys; i += 3 {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, ok, err := ks.Get(eqKey(i))
			if err != nil || !ok {
				errs <- fmt.Errorf("concurrent get %d: ok=%v err=%v", i, ok, err)
				return
			}
			if !bytes.Equal(v, eqValue(i)) {
				errs <- fmt.Errorf("concurrent get %d: wrong value", i)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func comparePairs(t *testing.T, what string, got, want []nvme.KVPair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", what, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("%s: pair %d mismatch", what, i)
		}
	}
}
