// Package remote is the network client for a kvcsd-server: the same surface
// as the in-process client library (internal/client), minus the *sim.Proc
// arguments — callers are ordinary goroutines in wall-clock time.
//
// Each connection multiplexes many concurrent requests: calls tag frames
// with unique request IDs, a reader goroutine demultiplexes completions
// (which arrive in completion order, not send order), and a per-connection
// slot semaphore bounds the pipeline depth. A Client can hold several
// connections and deals them out round-robin.
//
// Failure handling reuses the client library's rules: remote device errors
// are rebuilt as *client.StatusError so errors.Is(err, client.ErrNotFound)
// and client.Retryable work unchanged, and the retry loop replays exactly
// the verbs wire.Op.Idempotent allows — plus the transport-only outcomes
// (connection loss, server overload, draining) that are always ambiguous
// and therefore only safe for idempotent verbs too.
package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/compaction"
	"kvcsd/internal/core"
	"kvcsd/internal/obs"
	"kvcsd/internal/wire"
)

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("remote: client closed")

// errConnBroken reports a connection that died with in-flight requests; the
// underlying cause is wrapped.
var errConnBroken = errors.New("remote: connection broken")

// Options tunes a Client.
type Options struct {
	// Conns is the connection pool size (default 1).
	Conns int
	// Pipeline is the per-connection cap on outstanding requests
	// (default 64).
	Pipeline int
	// Retry bounds attempts and backoff, interpreted in real time. The zero
	// value means a single attempt with no timeout.
	Retry client.RetryPolicy
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// Tracer, when set, records one wall-clock span per RPC attempt and
	// propagates its trace context in the frame header, so server-side spans
	// caused by the call become its descendants in a merged trace
	// (obs.WriteMergedChromeTrace).
	Tracer *obs.WallTracer
	// Tenant, when set, makes every pool connection open a session for this
	// tenant on dial (wire.OpHello) and resume it — replaying any responses
	// the server backlogged — when the connection is redialed. Requests then
	// carry the session token, so the server bills them to the tenant's
	// fair share and suppresses duplicate request IDs.
	Tenant string
	// Class is the session-wide lane override declared in the handshake
	// (wire.LaneOverride of a lane; 0 keeps per-opcode defaults).
	Class uint8
}

// DefaultOptions returns the default client tuning with the client
// library's default retry policy.
func DefaultOptions() Options {
	return Options{
		Conns:       1,
		Pipeline:    64,
		Retry:       client.DefaultRetryPolicy(),
		DialTimeout: 5 * time.Second,
	}
}

func (o *Options) normalize() {
	if o.Conns <= 0 {
		o.Conns = 1
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 64
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// Client is a pipelined connection pool to one kvcsd-server.
type Client struct {
	addr   string
	opts   Options
	nextID atomic.Uint64
	closed atomic.Bool

	mu   sync.Mutex
	pool []*poolConn
	next int
}

// Dial connects to a kvcsd-server. All pool connections are established
// eagerly so configuration errors surface here, not mid-workload — including
// the session handshake when a tenant is configured.
func Dial(addr string, opts Options) (*Client, error) {
	opts.normalize()
	c := &Client{addr: addr, opts: opts}
	for i := 0; i < opts.Conns; i++ {
		pc, err := c.dialConn(0)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.pool = append(c.pool, pc)
	}
	return c, nil
}

// Close tears down every connection; in-flight calls fail with a broken-
// connection error.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, pc := range c.pool {
		pc.markDead(ErrClosed)
	}
	return nil
}

// Addr returns the server address this client dials.
func (c *Client) Addr() string { return c.addr }

// dialConn establishes one connection. With a tenant configured it performs
// the session handshake synchronously before the read loop starts (the reply
// is the first frame on a fresh socket); resume carries the previous
// incarnation's token so a redial resumes its session and the server replays
// backlogged responses.
func (c *Client) dialConn(resume uint64) (*poolConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	pc := &poolConn{
		nc:      nc,
		pending: make(map[uint64]chan *wire.Response),
		acc:     make(map[uint64]*wire.Response),
		slots:   make(chan struct{}, c.opts.Pipeline),
		broken:  make(chan struct{}),
	}
	if c.opts.Tenant != "" {
		if err := c.handshake(pc, resume); err != nil {
			nc.Close()
			return nil, err
		}
	}
	go pc.readLoop()
	return pc, nil
}

// handshake opens (or resumes) the connection's session. Called before the
// read loop starts, so it owns the socket: the first response frame is the
// handshake reply; any replayed backlog frames follow it and are picked up
// by the read loop, where waiters re-registered under their stable request
// IDs receive them.
func (c *Client) handshake(pc *poolConn, resume uint64) error {
	req := &wire.Request{
		ID: c.nextID.Add(1), Op: wire.OpHello,
		Hello: &wire.HelloMsg{Tenant: c.opts.Tenant, Class: c.opts.Class, Resume: resume},
	}
	if err := wire.WriteRequest(pc.nc, req); err != nil {
		return fmt.Errorf("remote: session handshake write: %w", err)
	}
	h, payload, err := wire.ReadFrame(pc.nc)
	if err != nil {
		return fmt.Errorf("remote: session handshake read: %w", err)
	}
	if h.Kind != wire.KindResponse || h.ID != req.ID {
		return fmt.Errorf("remote: session handshake got unexpected frame (kind %d id %d)", h.Kind, h.ID)
	}
	resp, err := wire.DecodeResponse(h, payload)
	if err != nil {
		return fmt.Errorf("remote: session handshake decode: %w", err)
	}
	if rerr := respError(req.Op, resp); rerr != nil {
		return fmt.Errorf("remote: session handshake refused: %w", rerr)
	}
	if resp.Hello == nil || resp.Hello.Token == 0 {
		return fmt.Errorf("remote: session handshake reply carried no token")
	}
	pc.sess = resp.Hello.Token
	return nil
}

// conn deals out the next connection round-robin, redialing dead ones in
// place so a reconnect repairs the pool without abandoning its slot — and,
// when sessions are on, resumes the dead connection's session.
func (c *Client) conn() (*poolConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pool) == 0 {
		return nil, ErrClosed
	}
	i := c.next % len(c.pool)
	c.next++
	pc := c.pool[i]
	if !pc.dead.Load() {
		return pc, nil
	}
	fresh, err := c.dialConn(pc.sess)
	if err != nil {
		return nil, fmt.Errorf("%w: redial: %v", errConnBroken, err)
	}
	c.pool[i] = fresh
	return fresh, nil
}

// poolConn is one multiplexed connection.
type poolConn struct {
	nc net.Conn
	// wmu serializes frame writes from concurrent callers.
	wmu sync.Mutex
	// mu guards pending; acc is touched only by the reader.
	mu      sync.Mutex
	pending map[uint64]chan *wire.Response
	acc     map[uint64]*wire.Response
	// slots bounds the pipeline depth.
	slots chan struct{}
	// broken is closed when the connection dies; err holds the cause.
	broken   chan struct{}
	dead     atomic.Bool
	deadOnce sync.Once
	err      error
	// sess is the session token negotiated at dial (0 = no session); set
	// before the read loop starts and immutable afterwards.
	sess uint64
}

// readLoop demultiplexes response frames to waiting callers, accumulating
// streamed chunks (FlagMore) so each caller receives one whole response.
func (pc *poolConn) readLoop() {
	for {
		h, payload, err := wire.ReadFrame(pc.nc)
		if err != nil {
			pc.markDead(fmt.Errorf("%w: %v", errConnBroken, err))
			return
		}
		if h.Kind != wire.KindResponse {
			pc.markDead(fmt.Errorf("%w: server sent non-response frame", errConnBroken))
			return
		}
		chunk, err := wire.DecodeResponse(h, payload)
		if err != nil {
			pc.markDead(fmt.Errorf("%w: undecodable response: %v", errConnBroken, err))
			return
		}
		full, done := wire.Accumulate(pc.acc[h.ID], chunk)
		if !done {
			pc.acc[h.ID] = full
			continue
		}
		delete(pc.acc, h.ID)
		pc.mu.Lock()
		ch := pc.pending[h.ID]
		delete(pc.pending, h.ID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- full // cap 1: never blocks, and abandoned waiters removed themselves
		}
	}
}

func (pc *poolConn) markDead(cause error) {
	pc.deadOnce.Do(func() {
		pc.err = cause
		pc.dead.Store(true)
		pc.nc.Close()
		close(pc.broken)
	})
}

func (pc *poolConn) addWaiter(id uint64) chan *wire.Response {
	ch := make(chan *wire.Response, 1)
	pc.mu.Lock()
	pc.pending[id] = ch
	pc.mu.Unlock()
	return ch
}

func (pc *poolConn) removeWaiter(id uint64) {
	pc.mu.Lock()
	delete(pc.pending, id)
	pc.mu.Unlock()
}

// Retryable reports whether an error may be safely retried for an
// idempotent verb: the client library's device-status rules, the
// transport-level shed/drain statuses, and any connection-loss error.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if client.Retryable(err) {
		return true
	}
	if errors.Is(err, wire.ErrOverloaded) || errors.Is(err, wire.ErrShuttingDown) ||
		errors.Is(err, wire.ErrUnavailable) {
		return true
	}
	if errors.Is(err, errConnBroken) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// respError converts a non-OK response into an error: transport statuses map
// to their wire sentinels, device statuses are rebuilt as the client
// library's *client.StatusError so its errors.Is/Retryable rules apply.
func respError(op wire.Op, resp *wire.Response) error {
	if resp.Status == wire.StatusOK {
		return nil
	}
	if terr := resp.Status.Err(); terr != nil {
		if resp.Err != "" {
			return fmt.Errorf("%w: %s", terr, resp.Err)
		}
		return terr
	}
	ns, _ := resp.Status.NVMe()
	return &client.StatusError{Op: op.NVMe(), Status: ns}
}

// doOnce performs a single attempt: admit into the pipeline, write the
// frame, wait for the demultiplexed response or a timeout. Each attempt gets
// its own wall span (and trace context), so a retried call shows every
// attempt — and which one the server-side work belongs to — in the trace.
func (c *Client) doOnce(req *wire.Request, timeout time.Duration) (*wire.Response, error) {
	span := c.opts.Tracer.Start("remote:"+req.Op.String(), 0)
	defer span.End()
	req.Trace = wire.TraceContext{TraceID: span.TraceID(), SpanID: span.ID()}

	pc, err := c.conn()
	if err != nil {
		return nil, err
	}
	select {
	case pc.slots <- struct{}{}:
	case <-pc.broken:
		return nil, pc.err
	}
	defer func() { <-pc.slots }()

	req.Session = pc.sess
	ch := pc.addWaiter(req.ID)
	pc.wmu.Lock()
	err = wire.WriteRequest(pc.nc, req)
	pc.wmu.Unlock()
	if err != nil {
		pc.removeWaiter(req.ID)
		pc.markDead(fmt.Errorf("%w: write: %v", errConnBroken, err))
		return nil, pc.err
	}

	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-pc.broken:
		pc.removeWaiter(req.ID)
		return nil, pc.err
	case <-timeoutC:
		// The request may still complete server-side; the reader will find
		// no waiter and drop the late response.
		pc.removeWaiter(req.ID)
		return nil, &client.TimeoutError{Op: req.Op.NVMe(), Timeout: timeout}
	}
}

// call runs one request under the retry policy. Non-idempotent verbs get a
// single attempt regardless of policy — a replay of one that actually
// landed would report a wrong outcome.
func (c *Client) call(req *wire.Request) (*wire.Response, error) {
	// One ID per logical call, stable across attempts: a sessioned server
	// recognizes a retry of a request it already holds (in flight, applied,
	// or backlogged) and answers it without applying twice.
	req.ID = c.nextID.Add(1)
	pol := c.opts.Retry
	backoff := pol.BaseBackoff
	attempts := 0
	for {
		attempts++
		resp, err := c.doOnce(req, pol.Timeout)
		if err == nil {
			err = respError(req.Op, resp)
			if err == nil {
				return resp, nil
			}
		}
		if !req.Op.Idempotent() || !Retryable(err) ||
			pol.MaxAttempts <= 1 || attempts >= pol.MaxAttempts {
			return nil, err
		}
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
	}
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.call(&wire.Request{Op: wire.OpPing})
	return err
}

// Stats fetches the server's statistics snapshot.
func (c *Client) Stats() (*wire.StatsReport, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("remote: stats response carried no report")
	}
	return resp.Stats, nil
}

// PowerCut yanks power on a device (array member id; 0 on a single-device
// server) and returns the server's report.
func (c *Client) PowerCut(device int) (string, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpPowerCut, Device: uint32(device)})
	if err != nil {
		return "", err
	}
	return resp.Report, nil
}

// Recover restarts a powered-off device and returns the recovery report.
func (c *Client) Recover(device int) (string, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpRecover, Device: uint32(device)})
	if err != nil {
		return "", err
	}
	return resp.Report, nil
}

// Scrub runs a media scrub of one device (array member id; 0 on a
// single-device server). An array server also repairs what it finds from
// healthy replica copies. Returns the decoded report plus the server's
// one-line summary.
func (c *Client) Scrub(device int) (*core.ScrubReport, string, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpScrub, Device: uint32(device)})
	if err != nil {
		return nil, "", err
	}
	rep, err := core.DecodeScrubReport(resp.Value)
	if err != nil {
		return nil, resp.Report, err
	}
	return rep, resp.Report, nil
}

// SetCompactionPolicy installs the compaction policy and pipeline width on
// the server's device (every healthy member of an array) and returns the
// resulting active config.
func (c *Client) SetCompactionPolicy(cfg compaction.Config) (compaction.Config, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpCompactPolicy, Value: compaction.EncodeConfig(cfg)})
	if err != nil {
		return compaction.Config{}, err
	}
	return compaction.DecodeConfig(resp.Value)
}

// CompactionPolicy queries the server's active compaction config.
func (c *Client) CompactionPolicy() (compaction.Config, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpCompactPolicy})
	if err != nil {
		return compaction.Config{}, err
	}
	return compaction.DecodeConfig(resp.Value)
}

// MigrateCold triggers one lifetime-aware cold-placement sweep on a device
// (array member id; 0 on a single-device server) and returns how many zones
// moved to the cold tier.
func (c *Client) MigrateCold(device int) (int64, error) {
	resp, err := c.call(&wire.Request{Op: wire.OpMigrateCold, Device: uint32(device)})
	if err != nil {
		return 0, err
	}
	return resp.Moved, nil
}

// Corrupt flips addr.Bits bits inside one extent of keyspace on a device —
// the remote fault-injection hook mirroring PowerCut. Returns the server's
// report line.
func (c *Client) Corrupt(device int, keyspace string, addr wire.ExtentAddr) (string, error) {
	resp, err := c.call(&wire.Request{
		Op:       wire.OpCorrupt,
		Device:   uint32(device),
		Keyspace: keyspace,
		Extent:   &addr,
	})
	if err != nil {
		return "", err
	}
	return resp.Report, nil
}
