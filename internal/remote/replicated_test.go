package remote_test

import (
	"bytes"
	"fmt"
	"testing"

	"kvcsd/internal/array"
	"kvcsd/internal/remote"
	"kvcsd/internal/server"
)

// TestReplicatedServerEndToEnd drives a consensus-backed array server over
// the wire: keyspace creation fans out into shard groups, puts commit at
// quorum, gets go through the leader's read-index, and the Stats response
// carries the live ring table (shard → members, epoch, leader).
func TestReplicatedServerEndToEnd(t *testing.T) {
	opts := array.DefaultOptions()
	opts.Devices = 4
	opts.Seed = 7
	cfg := server.DefaultConfig()
	cfg.Replicated = true
	srv := server.NewArray(opts, cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	rc, err := remote.Dial(addr.String(), remote.DefaultOptions())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	ks, err := rc.CreateRangeSharded("rdata", 2)
	if err != nil {
		t.Fatalf("create replicated keyspace: %v", err)
	}
	const n = 24
	for i := 0; i < n; i++ {
		if err := ks.Put(repKey(i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := ks.Delete(repKey(3)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := ks.Get(repKey(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if i == 3 {
			if ok {
				t.Fatalf("deleted key %d still visible: %q", i, v)
			}
			continue
		}
		if !ok || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("get %d: ok=%v val=%q", i, ok, v)
		}
	}
	if ok, err := ks.Exist(repKey(5)); err != nil || !ok {
		t.Fatalf("exist: ok=%v err=%v", ok, err)
	}

	// Reopen resolves to the same replicated keyspace.
	if _, err := rc.OpenKeyspace("rdata"); err != nil {
		t.Fatalf("reopen: %v", err)
	}

	rep, err := rc.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var shards int
	for _, e := range rep.Ring {
		if e.Keyspace != "rdata" {
			continue
		}
		shards++
		if e.Leader < 0 {
			t.Fatalf("shard %d has no leader in ring table: %+v", e.Shard, e)
		}
		if e.Epoch == 0 {
			t.Fatalf("shard %d has zero epoch: %+v", e.Shard, e)
		}
		if len(e.Members) != 3 {
			t.Fatalf("shard %d: want 3 members, got %v", e.Shard, e.Members)
		}
	}
	if shards != 2 {
		t.Fatalf("ring table lists %d rdata shards, want 2\nring: %+v", shards, rep.Ring)
	}
}

func repKey(i int) []byte {
	// Spread keys across the full uint64 prefix space so both shards see
	// traffic.
	return []byte{byte(i * 11), 0, 0, 0, 0, 0, 0, byte(i)}
}
