package remote

import (
	"bytes"
	"fmt"
	"testing"

	"kvcsd/internal/compaction"
	"kvcsd/internal/device"
	"kvcsd/internal/server"
)

// startColdServer starts a single-device server whose device carries a cold
// zone tier and compacts quickly at test scale.
func startColdServer(t *testing.T) string {
	t.Helper()
	opts := device.DefaultOptions()
	opts.Seed = 23
	opts.SSD.ZoneSize = 256 << 10
	opts.SSD.NumZones = 2048
	opts.SSD.ColdZones = 256
	opts.Engine.IngestBufferBytes = 16 << 10
	opts.Engine.SortBudgetBytes = 64 << 10
	opts.Engine.ColdHeatThreshold = 1
	opts.Engine.ColdMigrateBatch = 64
	srv := server.NewDevice(opts, server.DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

// The full remote compaction-control surface: install a policy, compact,
// read live progress and the stats compaction section, then sweep the cold
// tier — all over TCP frames.
func TestRemoteCompactionControl(t *testing.T) {
	addr := startColdServer(t)
	cl, err := Dial(addr, DefaultOptions())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	got, err := cl.SetCompactionPolicy(compaction.Config{
		Policy:        compaction.PolicyDevice,
		PipelineWidth: 4,
	})
	if err != nil {
		t.Fatalf("set policy: %v", err)
	}
	if got.Policy != compaction.PolicyDevice || got.PipelineWidth != 4 {
		t.Fatalf("policy echo: %+v", got)
	}
	if got, err = cl.CompactionPolicy(); err != nil || got.PipelineWidth != 4 {
		t.Fatalf("policy query: %+v err=%v", got, err)
	}

	ks, err := cl.CreateKeyspace("remote-tiers")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	const n = 4000
	val := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 64) }
	for i := 0; i < n; i++ {
		if err := ks.BulkPut([]byte(fmt.Sprintf("key-%06d", i)), val(i)); err != nil {
			t.Fatalf("bulkput %d: %v", i, err)
		}
	}
	if err := ks.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := ks.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := ks.WaitCompacted(); err != nil {
		t.Fatalf("wait: %v", err)
	}

	pr, done, err := ks.CompactionProgress()
	if err != nil || !done {
		t.Fatalf("progress: done=%v err=%v", done, err)
	}
	if pr.BytesMoved == 0 || pr.DeviceRuns == 0 || pr.Occupancy != 0 {
		t.Fatalf("progress after compaction: %+v", pr)
	}

	rep, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	found := false
	for _, row := range rep.Compactions {
		if row.Keyspace == "remote-tiers" && row.Progress.BytesMoved > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats compaction section missing keyspace: %+v", rep.Compactions)
	}

	moved, err := cl.MigrateCold(0)
	if err != nil {
		t.Fatalf("migrate cold: %v", err)
	}
	if moved == 0 {
		t.Fatal("cold sweep moved no zones")
	}
	for i := 0; i < n; i += 131 {
		v, ok, err := ks.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d after cold migration: ok=%v err=%v", i, ok, err)
		}
	}
}
