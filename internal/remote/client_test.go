package remote

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/device"
	"kvcsd/internal/nvme"
	"kvcsd/internal/server"
	"kvcsd/internal/wire"
)

func startTestServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	opts := device.DefaultOptions()
	opts.Seed = 11
	srv := server.NewDevice(opts, server.DefaultConfig())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

// TestReconnectRetriesIdempotent kills the client's TCP connection out from
// under it and verifies the next idempotent call transparently redials and
// replays under the retry policy.
func TestReconnectRetriesIdempotent(t *testing.T) {
	_, addr := startTestServer(t)

	opts := DefaultOptions()
	opts.Retry = client.RetryPolicy{
		Timeout:     5 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		MaxAttempts: 5,
	}
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	ks, err := c.CreateKeyspace("r")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := ks.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := ks.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := ks.WaitCompacted(); err != nil {
		t.Fatalf("wait compacted: %v", err)
	}

	// Cut the wire under the client.
	c.mu.Lock()
	c.pool[0].nc.Close()
	c.mu.Unlock()

	// The next get must ride out the dead connection: broken-conn error,
	// redial, replay.
	v, ok, err := ks.Get([]byte("k"))
	if err != nil || !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("get after cut: v=%q ok=%v err=%v", v, ok, err)
	}
}

// TestPipelinedConcurrentCalls hammers one connection with concurrent
// requests to exercise the ID demux under the race detector.
func TestPipelinedConcurrentCalls(t *testing.T) {
	_, addr := startTestServer(t)
	opts := DefaultOptions()
	opts.Pipeline = 16
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	ks, err := c.CreateKeyspace("p")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if err := ks.Put(key(i), val(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := ks.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := ks.WaitCompacted(); err != nil {
		t.Fatalf("wait compacted: %v", err)
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			v, ok, err := ks.Get(key(i))
			if err != nil || !ok || !bytes.Equal(v, val(i)) {
				errs <- fmt.Errorf("get %d: ok=%v err=%v", i, ok, err)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("k%04d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("v%04d", i)) }

// TestRetryableClassification pins the retry matrix: client-library rules,
// transport sheds, connection loss — and nothing else.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{wire.ErrOverloaded, true},
		{wire.ErrShuttingDown, true},
		{wire.ErrUnavailable, true},
		{fmt.Errorf("%w: cut", errConnBroken), true},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{&client.StatusError{Op: nvme.OpRetrieve, Status: nvme.StatusInternal}, true},
		{&client.StatusError{Op: nvme.OpRetrieve, Status: nvme.StatusPoweredOff}, true},
		{&client.StatusError{Op: nvme.OpRetrieve, Status: nvme.StatusNotFound}, false},
		{&client.TimeoutError{Op: nvme.OpRetrieve, Timeout: time.Second}, true},
		{wire.ErrBadRequest, false},
		{errors.New("weird"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestStatusErrorsMapToClientLibrary verifies a remote miss surfaces as
// client.ErrNotFound via errors.Is, so code written against the in-process
// client ports unchanged.
func TestStatusErrorsMapToClientLibrary(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr, DefaultOptions())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	if _, err := c.OpenKeyspace("missing"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("open missing: %v, want client.ErrNotFound", err)
	}
	ks, err := c.CreateKeyspace("m")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := ks.Put([]byte("yes"), []byte("v")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := ks.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := ks.WaitCompacted(); err != nil {
		t.Fatalf("wait compacted: %v", err)
	}
	if _, ok, err := ks.Get([]byte("nope")); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v, want clean miss", ok, err)
	}
	if _, err := c.CreateKeyspace("m"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}
