package remote

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/compaction"
	"kvcsd/internal/nvme"
	"kvcsd/internal/wire"
)

// Keyspace is a handle to a named keyspace on the server, mirroring the
// in-process client.Keyspace surface. Unlike the in-process handle it is
// safe for concurrent use; bulk staging is guarded by a mutex.
type Keyspace struct {
	c    *Client
	name string

	mu        sync.Mutex
	bulkPairs []nvme.KVPair
	bulkBytes int
}

// CreateKeyspace creates a keyspace and returns a handle to it. Against an
// array backend the keyspace is pinned to one ring position.
func (c *Client) CreateKeyspace(name string) (*Keyspace, error) {
	_, err := c.call(&wire.Request{Op: wire.OpCreateKeyspace, Keyspace: name})
	if err != nil {
		return nil, err
	}
	return &Keyspace{c: c, name: name}, nil
}

// CreateRangeSharded creates a range-sharded keyspace with parts partitions
// (meaningful against an array backend; a single-device server ignores the
// partition count).
func (c *Client) CreateRangeSharded(name string, parts int) (*Keyspace, error) {
	_, err := c.call(&wire.Request{Op: wire.OpCreateKeyspace, Keyspace: name, Parts: uint32(parts)})
	if err != nil {
		return nil, err
	}
	return &Keyspace{c: c, name: name}, nil
}

// OpenKeyspace opens an existing keyspace.
func (c *Client) OpenKeyspace(name string) (*Keyspace, error) {
	_, err := c.call(&wire.Request{Op: wire.OpOpenKeyspace, Keyspace: name})
	if err != nil {
		return nil, err
	}
	return &Keyspace{c: c, name: name}, nil
}

// DeleteKeyspace removes a keyspace and all its pairs.
func (c *Client) DeleteKeyspace(name string) error {
	_, err := c.call(&wire.Request{Op: wire.OpDeleteKeyspace, Keyspace: name})
	return err
}

// Name returns the keyspace name.
func (k *Keyspace) Name() string { return k.name }

func wireSpec(s client.IndexSpec) wire.IndexSpec {
	return wire.IndexSpec{
		Name:   s.Name,
		Offset: uint32(s.Offset),
		Length: uint32(s.Length),
		Type:   uint8(s.Type),
	}
}

func wireSpecs(specs []client.IndexSpec) []wire.IndexSpec {
	out := make([]wire.IndexSpec, len(specs))
	for i, s := range specs {
		out[i] = wireSpec(s)
	}
	return out
}

// Put stores one pair.
func (k *Keyspace) Put(key, value []byte) error {
	_, err := k.c.call(&wire.Request{Op: wire.OpPut, Keyspace: k.name, Key: key, Value: value})
	return err
}

// Delete removes one pair.
func (k *Keyspace) Delete(key []byte) error {
	_, err := k.c.call(&wire.Request{Op: wire.OpDelete, Keyspace: k.name, Key: key})
	return err
}

// BulkPut stages a pair into the bulk message buffer, flushing automatically
// once the staged bytes reach the client library's bulk message size.
func (k *Keyspace) BulkPut(key, value []byte) error {
	return k.stage(nvme.KVPair{Key: key, Value: value})
}

// BulkDelete stages a tombstone into the bulk message buffer.
func (k *Keyspace) BulkDelete(key []byte) error {
	return k.stage(nvme.KVPair{Key: key, Tombstone: true})
}

func (k *Keyspace) stage(kv nvme.KVPair) error {
	k.mu.Lock()
	k.bulkPairs = append(k.bulkPairs, kv)
	k.bulkBytes += len(kv.Key) + len(kv.Value)
	var flush []nvme.KVPair
	if k.bulkBytes >= client.BulkMessageBytes {
		flush = k.bulkPairs
		k.bulkPairs = nil
		k.bulkBytes = 0
	}
	k.mu.Unlock()
	if flush == nil {
		return nil
	}
	return k.sendBulk(flush)
}

// Flush sends any staged bulk pairs as one message.
func (k *Keyspace) Flush() error {
	k.mu.Lock()
	flush := k.bulkPairs
	k.bulkPairs = nil
	k.bulkBytes = 0
	k.mu.Unlock()
	if len(flush) == 0 {
		return nil
	}
	return k.sendBulk(flush)
}

func (k *Keyspace) sendBulk(pairs []nvme.KVPair) error {
	_, err := k.c.call(&wire.Request{Op: wire.OpBulkPut, Keyspace: k.name, Pairs: pairs})
	return err
}

// Sync flushes staged pairs and forces the device WAL to media.
func (k *Keyspace) Sync() error {
	if err := k.Flush(); err != nil {
		return err
	}
	_, err := k.c.call(&wire.Request{Op: wire.OpSync, Keyspace: k.name})
	return err
}

// Get retrieves a value; ok is false when the key does not exist.
func (k *Keyspace) Get(key []byte) ([]byte, bool, error) {
	resp, err := k.c.call(&wire.Request{Op: wire.OpGet, Keyspace: k.name, Key: key})
	if err != nil {
		if errors.Is(err, client.ErrNotFound) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return resp.Value, true, nil
}

// Exist reports whether a key exists.
func (k *Keyspace) Exist(key []byte) (bool, error) {
	resp, err := k.c.call(&wire.Request{Op: wire.OpExist, Keyspace: k.name, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Exists, nil
}

// Scan returns pairs with lo <= key < hi (nil bounds are open); limit 0
// means unlimited. Large results arrive as streamed frames reassembled
// transparently.
func (k *Keyspace) Scan(lo, hi []byte, limit int) ([]nvme.KVPair, error) {
	resp, err := k.c.call(&wire.Request{Op: wire.OpScan, Keyspace: k.name, Low: lo, High: hi, Limit: uint32(limit)})
	if err != nil {
		return nil, err
	}
	return resp.Pairs, nil
}

// QuerySecondaryRange queries a secondary index by encoded-secondary-key
// range.
func (k *Keyspace) QuerySecondaryRange(index string, lo, hi []byte, limit int) ([]nvme.KVPair, error) {
	resp, err := k.c.call(&wire.Request{
		Op: wire.OpSecondaryRange, Keyspace: k.name,
		Index: wire.IndexSpec{Name: index}, Low: lo, High: hi, Limit: uint32(limit),
	})
	if err != nil {
		return nil, err
	}
	return resp.Pairs, nil
}

// QuerySecondaryPoint queries a secondary index for one exact secondary key.
func (k *Keyspace) QuerySecondaryPoint(index string, key []byte, limit int) ([]nvme.KVPair, error) {
	resp, err := k.c.call(&wire.Request{
		Op: wire.OpSecondaryPoint, Keyspace: k.name,
		Index: wire.IndexSpec{Name: index}, Key: key, Limit: uint32(limit),
	})
	if err != nil {
		return nil, err
	}
	return resp.Pairs, nil
}

// Compact kicks an asynchronous compaction.
func (k *Keyspace) Compact() error {
	_, err := k.c.call(&wire.Request{Op: wire.OpCompact, Keyspace: k.name})
	return err
}

// CompactWithIndexes kicks a compaction that also builds the given
// secondary indexes in the same pass.
func (k *Keyspace) CompactWithIndexes(specs []client.IndexSpec) error {
	_, err := k.c.call(&wire.Request{Op: wire.OpCompactWithIndexes, Keyspace: k.name, Indexes: wireSpecs(specs)})
	return err
}

// CompactDone polls whether the last compaction has finished.
func (k *Keyspace) CompactDone() (bool, error) {
	resp, err := k.c.call(&wire.Request{Op: wire.OpCompactStatus, Keyspace: k.name})
	if err != nil {
		return false, err
	}
	return resp.Done, nil
}

// CompactionProgress returns the keyspace's live compaction-pipeline
// progress alongside the done flag (an array server aggregates shards into
// one row).
func (k *Keyspace) CompactionProgress() (compaction.Progress, bool, error) {
	resp, err := k.c.call(&wire.Request{Op: wire.OpCompactStatus, Keyspace: k.name})
	if err != nil {
		return compaction.Progress{}, false, err
	}
	if resp.Progress == nil {
		return compaction.Progress{}, resp.Done, fmt.Errorf("remote: server reported no compaction progress")
	}
	return *resp.Progress, resp.Done, nil
}

// WaitCompacted polls until compaction completes. The server advances the
// device's virtual clock while background work runs, so real-time polling
// terminates.
func (k *Keyspace) WaitCompacted() error {
	return k.poll(func() (bool, error) { return k.CompactDone() })
}

// BuildSecondaryIndex declares and starts building a secondary index.
func (k *Keyspace) BuildSecondaryIndex(spec client.IndexSpec) error {
	_, err := k.c.call(&wire.Request{Op: wire.OpBuildIndex, Keyspace: k.name, Index: wireSpec(spec)})
	return err
}

// IndexBuilt polls whether the named index is ready.
func (k *Keyspace) IndexBuilt(name string) (bool, error) {
	resp, err := k.c.call(&wire.Request{Op: wire.OpIndexStatus, Keyspace: k.name, Index: wire.IndexSpec{Name: name}})
	if err != nil {
		return false, err
	}
	return resp.Done, nil
}

// WaitIndexBuilt polls until the named index is ready.
func (k *Keyspace) WaitIndexBuilt(name string) error {
	return k.poll(func() (bool, error) { return k.IndexBuilt(name) })
}

func (k *Keyspace) poll(done func() (bool, error)) error {
	for {
		ok, err := done()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// Info returns the keyspace's current state and statistics.
func (k *Keyspace) Info() (nvme.KeyspaceInfo, error) {
	resp, err := k.c.call(&wire.Request{Op: wire.OpKeyspaceInfo, Keyspace: k.name})
	if err != nil {
		return nvme.KeyspaceInfo{}, err
	}
	return resp.Info, nil
}
