package keyenc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUint32RoundTripAndOrder(t *testing.T) {
	rt := func(v uint32) bool { return Uint32(PutUint32(v)) == v }
	if err := quick.Check(rt, nil); err != nil {
		t.Fatal(err)
	}
	ord := func(a, b uint32) bool {
		c := Compare(PutUint32(a), PutUint32(b))
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64RoundTripAndOrder(t *testing.T) {
	rt := func(v uint64) bool { return Uint64(PutUint64(v)) == v }
	if err := quick.Check(rt, nil); err != nil {
		t.Fatal(err)
	}
	ord := func(a, b uint64) bool {
		c := Compare(PutUint64(a), PutUint64(b))
		return (a < b) == (c < 0) && (a == b) == (c == 0)
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt32Order(t *testing.T) {
	ord := func(a, b int32) bool {
		c := Compare(PutInt32(a), PutInt32(b))
		return (a < b) == (c < 0) && (a == b) == (c == 0)
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
	if Int32(PutInt32(-1)) != -1 || Int32(PutInt32(math.MinInt32)) != math.MinInt32 {
		t.Fatal("int32 round trip failed at boundaries")
	}
}

func TestInt64Order(t *testing.T) {
	ord := func(a, b int64) bool {
		c := Compare(PutInt64(a), PutInt64(b))
		return (a < b) == (c < 0) && (a == b) == (c == 0)
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	for _, v := range vals {
		if Int64(PutInt64(v)) != v {
			t.Fatalf("round trip failed for %d", v)
		}
	}
}

func TestFloat32Order(t *testing.T) {
	ord := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		c := Compare(PutFloat32(a), PutFloat32(b))
		if a < b {
			return c < 0
		}
		if a > b {
			return c > 0
		}
		return true // -0 and +0 have distinct encodings; either order is fine across runs
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	vals := []float32{0, 1, -1, 3.14, -3.14, math.MaxFloat32, -math.MaxFloat32, float32(math.Inf(1)), float32(math.Inf(-1))}
	for _, v := range vals {
		if got := Float32(PutFloat32(v)); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestFloat64OrderAndRoundTrip(t *testing.T) {
	ord := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c := Compare(PutFloat64(a), PutFloat64(b))
		if a < b {
			return c < 0
		}
		if a > b {
			return c > 0
		}
		return true
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
	rt := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		return Float64(PutFloat64(v)) == v
	}
	if err := quick.Check(rt, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedKey16(t *testing.T) {
	k := MakeFixedKey16(0xDEADBEEF)
	if k.ID() != 0xDEADBEEF {
		t.Fatalf("id = %x", k.ID())
	}
	if len(k.Bytes()) != 16 {
		t.Fatalf("len %d", len(k.Bytes()))
	}
	ord := func(a, b uint64) bool {
		ka, kb := MakeFixedKey16(a), MakeFixedKey16(b)
		c := Compare(ka.Bytes(), kb.Bytes())
		return (a < b) == (c < 0) && (a == b) == (c == 0)
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryTypeString(t *testing.T) {
	names := map[SecondaryType]string{
		TypeBytes: "bytes", TypeUint32: "uint32", TypeInt32: "int32",
		TypeUint64: "uint64", TypeInt64: "int64",
		TypeFloat32: "float32", TypeFloat64: "float64",
	}
	for ty, want := range names {
		if ty.String() != want {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
	if SecondaryType(99).String() != "SecondaryType(99)" {
		t.Errorf("unknown type string %q", SecondaryType(99).String())
	}
}

func TestSecondaryTypeWidth(t *testing.T) {
	if TypeBytes.Width() != 0 || TypeUint32.Width() != 4 || TypeFloat64.Width() != 8 {
		t.Fatal("widths wrong")
	}
}

func TestNormalizeBytes(t *testing.T) {
	raw := []byte{1, 2, 3}
	out, err := TypeBytes.Normalize(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, raw) {
		t.Fatalf("out %v", out)
	}
	raw[0] = 9 // mutating input must not affect output
	if out[0] != 1 {
		t.Fatal("Normalize did not copy")
	}
}

func TestNormalizeWidthError(t *testing.T) {
	if _, err := TypeUint32.Normalize([]byte{1, 2}); err == nil {
		t.Fatal("expected width error")
	}
	if _, err := TypeFloat64.Normalize(make([]byte, 4)); err == nil {
		t.Fatal("expected width error")
	}
}

func TestNormalizeNumericOrder(t *testing.T) {
	// Little-endian raw floats should normalize to order-preserving keys.
	enc := func(v float32) []byte {
		bits := math.Float32bits(v)
		return []byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24)}
	}
	ord := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		ka, err1 := TypeFloat32.Normalize(enc(a))
		kb, err2 := TypeFloat32.Normalize(enc(b))
		if err1 != nil || err2 != nil {
			return false
		}
		c := Compare(ka, kb)
		if a < b {
			return c < 0
		}
		if a > b {
			return c > 0
		}
		return true
	}
	if err := quick.Check(ord, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeUnknownType(t *testing.T) {
	if _, err := SecondaryType(42).Normalize(nil); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestNormalizeInt64(t *testing.T) {
	raw := make([]byte, 8)
	for i, v := range []int64{-5, 0, 5} {
		u := uint64(v)
		for j := 0; j < 8; j++ {
			raw[j] = byte(u >> (8 * j))
		}
		k, err := TypeInt64.Normalize(raw)
		if err != nil {
			t.Fatal(err)
		}
		if Int64(k) != v {
			t.Fatalf("case %d: got %d want %d", i, Int64(k), v)
		}
	}
}
