// Package keyenc provides order-preserving key encodings shared by the
// KV-CSD device engine and the software baseline.
//
// Keys are compared bytewise (bytes.Compare); the encoders here map numeric
// types onto byte strings such that the bytewise order equals the numeric
// order. This matches the paper's secondary-index model, where an application
// declares "bytes [off, off+len) of the value are a 32-bit integer" and the
// device sorts extracted keys to build the SIDX.
package keyenc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Compare orders two keys bytewise; shorter prefixes sort first.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// PutUint32 encodes v big-endian so bytewise order preserves numeric order.
func PutUint32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// Uint32 decodes a key written by PutUint32.
func Uint32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }

// PutUint64 encodes v big-endian so bytewise order preserves numeric order.
func PutUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Uint64 decodes a key written by PutUint64.
func Uint64(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// PutInt32 encodes a signed 32-bit integer order-preservingly by flipping the
// sign bit before big-endian encoding.
func PutInt32(v int32) []byte {
	return PutUint32(uint32(v) ^ 0x80000000)
}

// Int32 decodes a key written by PutInt32.
func Int32(b []byte) int32 {
	return int32(Uint32(b) ^ 0x80000000)
}

// PutInt64 encodes a signed 64-bit integer order-preservingly.
func PutInt64(v int64) []byte {
	return PutUint64(uint64(v) ^ (1 << 63))
}

// Int64 decodes a key written by PutInt64.
func Int64(b []byte) int64 {
	return int64(Uint64(b) ^ (1 << 63))
}

// PutFloat32 encodes an IEEE-754 float32 order-preservingly (total order with
// -0 < +0 treated by bit pattern; NaNs sort above +Inf).
func PutFloat32(v float32) []byte {
	bits := math.Float32bits(v)
	if bits&(1<<31) != 0 {
		bits = ^bits // negative: flip all bits
	} else {
		bits |= 1 << 31 // positive: flip sign bit
	}
	return PutUint32(bits)
}

// Float32 decodes a key written by PutFloat32.
func Float32(b []byte) float32 {
	bits := Uint32(b)
	if bits&(1<<31) != 0 {
		bits &^= 1 << 31
	} else {
		bits = ^bits
	}
	return math.Float32frombits(bits)
}

// PutFloat64 encodes an IEEE-754 float64 order-preservingly.
func PutFloat64(v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return PutUint64(bits)
}

// Float64 decodes a key written by PutFloat64.
func Float64(b []byte) float64 {
	bits := Uint64(b)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits)
}

// FixedKey16 is the paper's 16-byte particle/record identifier key.
type FixedKey16 [16]byte

// MakeFixedKey16 builds a 16-byte key from a 64-bit id (high 8 bytes zero,
// low 8 bytes big-endian id) so ids sort numerically.
func MakeFixedKey16(id uint64) FixedKey16 {
	var k FixedKey16
	binary.BigEndian.PutUint64(k[8:], id)
	return k
}

// ID extracts the 64-bit id from a key built by MakeFixedKey16.
func (k FixedKey16) ID() uint64 { return binary.BigEndian.Uint64(k[8:]) }

// Bytes returns the key as a slice (a copy is not made; do not mutate).
func (k FixedKey16) Bytes() []byte { return k[:] }

// SecondaryType identifies how secondary-index key bytes inside a value are
// interpreted, matching the paper's "byte range and type" configuration.
type SecondaryType uint8

// Supported secondary key types.
const (
	TypeBytes SecondaryType = iota // raw bytes, compared bytewise
	TypeUint32
	TypeInt32
	TypeUint64
	TypeInt64
	TypeFloat32
	TypeFloat64
)

// String names the type.
func (t SecondaryType) String() string {
	switch t {
	case TypeBytes:
		return "bytes"
	case TypeUint32:
		return "uint32"
	case TypeInt32:
		return "int32"
	case TypeUint64:
		return "uint64"
	case TypeInt64:
		return "int64"
	case TypeFloat32:
		return "float32"
	case TypeFloat64:
		return "float64"
	default:
		return fmt.Sprintf("SecondaryType(%d)", uint8(t))
	}
}

// Width returns the byte width of fixed-size types, or 0 for TypeBytes.
func (t SecondaryType) Width() int {
	switch t {
	case TypeUint32, TypeInt32, TypeFloat32:
		return 4
	case TypeUint64, TypeInt64, TypeFloat64:
		return 8
	default:
		return 0
	}
}

// Normalize converts the raw value bytes of a secondary field into an
// order-preserving key. For TypeBytes it returns a copy of raw; for numeric
// types raw must be a little-endian machine encoding of the declared width
// (how a simulation writes struct fields), and the result compares in numeric
// order.
func (t SecondaryType) Normalize(raw []byte) ([]byte, error) {
	if w := t.Width(); w != 0 && len(raw) != w {
		return nil, fmt.Errorf("keyenc: %s field requires %d bytes, got %d", t, w, len(raw))
	}
	switch t {
	case TypeBytes:
		out := make([]byte, len(raw))
		copy(out, raw)
		return out, nil
	case TypeUint32:
		return PutUint32(binary.LittleEndian.Uint32(raw)), nil
	case TypeInt32:
		return PutInt32(int32(binary.LittleEndian.Uint32(raw))), nil
	case TypeUint64:
		return PutUint64(binary.LittleEndian.Uint64(raw)), nil
	case TypeInt64:
		return PutInt64(int64(binary.LittleEndian.Uint64(raw))), nil
	case TypeFloat32:
		return PutFloat32(math.Float32frombits(binary.LittleEndian.Uint32(raw))), nil
	case TypeFloat64:
		return PutFloat64(math.Float64frombits(binary.LittleEndian.Uint64(raw))), nil
	default:
		return nil, fmt.Errorf("keyenc: unknown secondary type %d", uint8(t))
	}
}
