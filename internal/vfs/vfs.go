// Package vfs models the host filesystem under the software key-value store
// baseline — the layer whose overhead motivates KV-CSD (paper §II, "Host
// Software Overhead").
//
// It is an ext4-flavoured filesystem over the SSD's conventional block
// namespace: append-oriented files mapped to 4 KiB blocks, an LRU page cache,
// journaled fsync, and per-call kernel-crossing CPU costs. Reads always move
// whole blocks from media even when the caller wants a few dozen bytes —
// the read inflation Figure 10b measures. DropCaches models the paper's
// "we clean OS page cache at the beginning of each run".
package vfs

import (
	"container/list"
	"errors"
	"fmt"
	"sort"

	"kvcsd/internal/host"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
)

// Errors returned by filesystem operations.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrNoSpace  = errors.New("vfs: out of space")
	ErrClosed   = errors.New("vfs: file closed")
	ErrBounds   = errors.New("vfs: read beyond end of file")
)

// Config tunes the filesystem model.
type Config struct {
	PageCacheBytes     int64 // page cache capacity
	JournalBlocksPerTx int   // journal blocks written per fsync
	WritebackBytes     int64 // dirty bytes per file before synchronous writeback
}

// DefaultConfig returns production-ish defaults: 1 GiB page cache, 2 journal
// blocks per transaction, 1 MiB writeback granularity.
func DefaultConfig() Config {
	return Config{
		PageCacheBytes:     1 << 30,
		JournalBlocksPerTx: 2,
		WritebackBytes:     1 << 20,
	}
}

// FS is the simulated filesystem.
type FS struct {
	cfg    Config
	dev    *ssd.Device
	h      *host.Host
	st     *stats.IOStats
	bs     int
	files  map[string]*inode
	inoSeq int64

	// Block allocation: journal region first, then data blocks.
	journalLBAs int64
	journalPtr  int64
	nextLBA     int64
	freeLBAs    []int64

	cache *pageCache
}

type inode struct {
	id     int64
	blocks []int64 // allocated LBAs, in file order
	size   int64   // durable + buffered size
	synced int64   // bytes known flushed to device
	// dirty holds appended-but-unflushed bytes (the page-cache dirty tail).
	dirty []byte
	nlink int
	// lock serializes mutation (Append/Sync can yield mid-writeback while
	// other simulation processes write the same file, e.g. a shared WAL).
	lock *sim.Resource
}

// lockFor lazily creates and acquires the inode write lock.
func (ino *inode) lockFor(p *sim.Proc) {
	if ino.lock == nil {
		ino.lock = sim.NewResource(p.Env(), "inode-lock", 1)
	}
	p.Acquire(ino.lock)
}

// New creates a filesystem on the device's conventional namespace.
func New(dev *ssd.Device, h *host.Host, cfg Config, st *stats.IOStats) *FS {
	bs := dev.Config().BlockSize
	journal := int64(256) // reserved journal region
	return &FS{
		cfg:         cfg,
		dev:         dev,
		h:           h,
		st:          st,
		bs:          bs,
		files:       make(map[string]*inode),
		journalLBAs: journal,
		nextLBA:     journal,
		cache:       newPageCache(cfg.PageCacheBytes, bs),
	}
}

// BlockSize returns the filesystem block size.
func (fs *FS) BlockSize() int { return fs.bs }

// Stats returns the stats block the filesystem records into.
func (fs *FS) Stats() *stats.IOStats { return fs.st }

// DropCaches empties the page cache (echoing /proc/sys/vm/drop_caches).
func (fs *FS) DropCaches() { fs.cache.clear() }

// CacheBytes returns the bytes currently held in the page cache.
func (fs *FS) CacheBytes() int64 { return fs.cache.used }

func (fs *FS) allocBlock() (int64, error) {
	if n := len(fs.freeLBAs); n > 0 {
		lba := fs.freeLBAs[n-1]
		fs.freeLBAs = fs.freeLBAs[:n-1]
		return lba, nil
	}
	if fs.nextLBA >= fs.dev.Config().ConvBlocks {
		return 0, ErrNoSpace
	}
	lba := fs.nextLBA
	fs.nextLBA++
	return lba, nil
}

// Create creates a new empty file open for appending.
func (fs *FS) Create(p *sim.Proc, name string) (*File, error) {
	fs.h.Syscall(p)
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, name)
	}
	fs.inoSeq++
	ino := &inode{id: fs.inoSeq, nlink: 1}
	fs.files[name] = ino
	return &File{fs: fs, ino: ino, name: name}, nil
}

// Open opens an existing file.
func (fs *FS) Open(p *sim.Proc, name string) (*File, error) {
	fs.h.Syscall(p)
	ino, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return &File{fs: fs, ino: ino, name: name}, nil
}

// Exists reports whether a file is present.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Size returns a file's size without opening it.
func (fs *FS) Size(name string) (int64, error) {
	ino, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return ino.size, nil
}

// Remove deletes a file, trimming its blocks back to the device.
func (fs *FS) Remove(p *sim.Proc, name string) error {
	fs.h.Syscall(p)
	ino, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(fs.files, name)
	ino.nlink = 0
	for _, lba := range ino.blocks {
		_ = fs.dev.TrimBlock(p, lba)
		fs.freeLBAs = append(fs.freeLBAs, lba)
		fs.cache.invalidate(ino.id, lba)
	}
	ino.blocks = nil
	ino.dirty = nil
	return nil
}

// Rename atomically renames a file, replacing any existing target (POSIX
// rename semantics, used for MANIFEST/CURRENT swaps).
func (fs *FS) Rename(p *sim.Proc, from, to string) error {
	fs.h.Syscall(p)
	ino, ok := fs.files[from]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, from)
	}
	if old, ok := fs.files[to]; ok && old != ino {
		// Drop the replaced file's blocks.
		for _, lba := range old.blocks {
			_ = fs.dev.TrimBlock(p, lba)
			fs.freeLBAs = append(fs.freeLBAs, lba)
			fs.cache.invalidate(old.id, lba)
		}
	}
	delete(fs.files, from)
	fs.files[to] = ino
	return nil
}

// List returns all file names, sorted.
func (fs *FS) List() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes returns the sum of all file sizes.
func (fs *FS) TotalBytes() int64 {
	var n int64
	for _, ino := range fs.files {
		n += ino.size
	}
	return n
}

// File is an open file handle supporting append and positional reads.
type File struct {
	fs     *FS
	ino    *inode
	name   string
	closed bool
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Size returns the current file size including unflushed appends.
func (f *File) Size() int64 { return f.ino.size }

// Append writes data at the end of the file. Data lands in the dirty page
// tail; full blocks are written back once WritebackBytes accumulate.
func (f *File) Append(p *sim.Proc, data []byte) error {
	if f.closed {
		return ErrClosed
	}
	fs := f.fs
	fs.h.Syscall(p)
	f.ino.lockFor(p)
	defer p.Release(f.ino.lock)
	fs.h.Copy(p, int64(len(data))) // user->page-cache copy
	f.ino.dirty = append(f.ino.dirty, data...)
	f.ino.size += int64(len(data))
	fs.st.FSWrites.Add(1)
	if int64(len(f.ino.dirty)) >= fs.cfg.WritebackBytes {
		return f.writeback(p, false)
	}
	return nil
}

// writeback flushes dirty bytes to the device. Unless final, a partial tail
// block stays dirty so later appends don't force read-modify-write.
func (f *File) writeback(p *sim.Proc, final bool) error {
	fs := f.fs
	ino := f.ino
	full := len(ino.dirty) / fs.bs
	n := full * fs.bs
	if final {
		n = len(ino.dirty)
	}
	if n == 0 {
		return nil
	}
	// Gather the dirty blocks and submit contiguous-LBA runs as single
	// parallel requests (kernel writeback coalescing).
	var lbas []int64
	var blocks [][]byte
	for off := 0; off < n; off += fs.bs {
		end := off + fs.bs
		if end > len(ino.dirty) {
			end = len(ino.dirty)
		}
		lba, err := fs.allocBlock()
		if err != nil {
			return err
		}
		blk := make([]byte, fs.bs)
		copy(blk, ino.dirty[off:end])
		lbas = append(lbas, lba)
		blocks = append(blocks, blk)
	}
	for i := 0; i < len(lbas); {
		j := i + 1
		for j < len(lbas) && lbas[j] == lbas[j-1]+1 {
			j++
		}
		if err := fs.dev.WriteBlockRun(p, lbas[i], blocks[i:j]); err != nil {
			return fmt.Errorf("vfs: writeback %s: %w", f.name, err)
		}
		i = j
	}
	for i, lba := range lbas {
		ino.blocks = append(ino.blocks, lba)
		fs.cache.put(ino.id, lba, blocks[i])
	}
	ino.synced += int64(n)
	ino.dirty = ino.dirty[n:]
	if final && len(ino.dirty) == 0 {
		ino.dirty = nil
	}
	return nil
}

// Sync flushes all dirty data and journals the metadata transaction — the
// fsync path with its commit-record writes.
func (f *File) Sync(p *sim.Proc) error {
	if f.closed {
		return ErrClosed
	}
	fs := f.fs
	fs.h.Syscall(p)
	f.ino.lockFor(p)
	defer p.Release(f.ino.lock)
	if err := f.writeback(p, true); err != nil {
		return err
	}
	// Journal commit: JournalBlocksPerTx block writes into the journal region.
	blk := make([]byte, fs.bs)
	for i := 0; i < fs.cfg.JournalBlocksPerTx; i++ {
		lba := fs.journalPtr % fs.journalLBAs
		fs.journalPtr++
		if err := fs.dev.WriteBlock(p, lba, blk); err != nil {
			return fmt.Errorf("vfs: journal: %w", err)
		}
	}
	return nil
}

// ReadAt reads len(buf) bytes at offset off. Reads traverse the page cache;
// misses fetch whole blocks from the device (read inflation). Reads of bytes
// still in the dirty tail are served from memory.
func (f *File) ReadAt(p *sim.Proc, buf []byte, off int64) error {
	if f.closed {
		return ErrClosed
	}
	fs := f.fs
	ino := f.ino
	// Snapshot the mutable state once: concurrent appends/writebacks only
	// grow the file, and flushed blocks are immutable, so reads against a
	// consistent prefix snapshot stay correct without taking the write lock.
	synced := ino.synced
	dirty := ino.dirty
	size := synced + int64(len(dirty))
	if off < 0 || off+int64(len(buf)) > size {
		return ErrBounds
	}
	fs.h.Syscall(p)
	fs.st.FSReads.Add(1)
	n := 0
	for n < len(buf) {
		pos := off + int64(n)
		if pos >= synced {
			// Dirty-tail hit: straight memory copy.
			c := copy(buf[n:], dirty[pos-synced:])
			fs.h.Copy(p, int64(c))
			fs.st.CacheHits.Add(1)
			n += c
			continue
		}
		blkIdx := pos / int64(fs.bs)
		blkOff := int(pos % int64(fs.bs))
		lba := ino.blocks[blkIdx]
		data, hit := fs.cache.get(ino.id, lba)
		if hit {
			fs.st.CacheHits.Add(1)
		} else {
			fs.st.CacheMisses.Add(1)
			// Readahead: fetch up to the rest of the requested range (and
			// at least one block) in contiguous-LBA runs, one parallel
			// request per run.
			lastBlk := (off + int64(len(buf)) - 1) / int64(fs.bs)
			if max := synced - 1; lastBlk > max/int64(fs.bs) {
				lastBlk = max / int64(fs.bs)
			}
			runLen := 1
			for blkIdx+int64(runLen) <= lastBlk &&
				ino.blocks[blkIdx+int64(runLen)] == lba+int64(runLen) &&
				runLen < 32 {
				if _, cached := fs.cache.get(ino.id, lba+int64(runLen)); cached {
					break
				}
				runLen++
			}
			run, err := fs.dev.ReadBlockRun(p, lba, runLen)
			if err != nil {
				return fmt.Errorf("vfs: read %s: %w", f.name, err)
			}
			for i, blk := range run {
				fs.cache.put(ino.id, lba+int64(i), blk)
			}
			data = run[0]
		}
		avail := fs.bs - blkOff
		// Clamp to synced bytes within this block.
		if lim := synced - pos; int64(avail) > lim {
			avail = int(lim)
		}
		c := copy(buf[n:], data[blkOff:blkOff+avail])
		fs.h.Copy(p, int64(c))
		n += c
	}
	return nil
}

// Close flushes nothing (like POSIX close) and invalidates the handle.
func (f *File) Close() error {
	f.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// Page cache: LRU over (inode, lba) -> block bytes.

type cacheKey struct {
	ino int64
	lba int64
}

type cacheEntry struct {
	key  cacheKey
	data []byte
}

type pageCache struct {
	capacity int64
	used     int64
	bs       int
	ll       *list.List
	idx      map[cacheKey]*list.Element
}

func newPageCache(capacity int64, bs int) *pageCache {
	return &pageCache{capacity: capacity, bs: bs, ll: list.New(), idx: make(map[cacheKey]*list.Element)}
}

func (c *pageCache) get(ino, lba int64) ([]byte, bool) {
	if el, ok := c.idx[cacheKey{ino, lba}]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).data, true
	}
	return nil, false
}

func (c *pageCache) put(ino, lba int64, data []byte) {
	key := cacheKey{ino, lba}
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.idx[key] = el
	c.used += int64(len(data))
	for c.used > c.capacity && c.ll.Len() > 0 {
		back := c.ll.Back()
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.idx, ent.key)
		c.used -= int64(len(ent.data))
	}
}

func (c *pageCache) invalidate(ino, lba int64) {
	if el, ok := c.idx[cacheKey{ino, lba}]; ok {
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.idx, ent.key)
		c.used -= int64(len(ent.data))
	}
}

func (c *pageCache) clear() {
	c.ll.Init()
	c.idx = make(map[cacheKey]*list.Element)
	c.used = 0
}
