package vfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"kvcsd/internal/host"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
)

type fixture struct {
	env *sim.Env
	fs  *FS
	dev *ssd.Device
	st  *stats.IOStats
}

func newFixture(cfg Config) *fixture {
	env := sim.NewEnv()
	st := stats.NewIOStats()
	scfg := ssd.DefaultConfig()
	scfg.NumZones = 4
	scfg.ConvBlocks = 8192
	dev := ssd.New(env, scfg, st)
	h := host.New(env, host.DefaultHostConfig())
	return &fixture{env: env, fs: New(dev, h, cfg, st), dev: dev, st: st}
}

func (fx *fixture) run(t *testing.T, fn func(p *sim.Proc)) sim.Time {
	t.Helper()
	fx.env.Go("test", fn)
	return fx.env.Run()
}

func TestCreateWriteReadBack(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		f, err := fx.fs.Create(p, "a.sst")
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte("0123456789"), 2000) // 20 KB, crosses blocks
		if err := f.Append(p, data); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(p); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(data))
		if err := f.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatal("data mismatch")
		}
		// Partial mid-file read.
		small := make([]byte, 100)
		if err := f.ReadAt(p, small, 12345); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(small, data[12345:12445]) {
			t.Fatal("partial read mismatch")
		}
	})
}

func TestReadFromDirtyTail(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "x")
		if err := f.Append(p, []byte("unsynced data")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		if err := f.ReadAt(p, buf, 2); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "synced d" {
			t.Fatalf("dirty read %q", buf)
		}
	})
	if fx.st.MediaRead.Value() != 0 {
		t.Fatal("dirty-tail read touched media")
	}
}

func TestReadStraddlingSyncedAndDirty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WritebackBytes = 4096
	fx := newFixture(cfg)
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "x")
		first := bytes.Repeat([]byte{'A'}, 4096)
		if err := f.Append(p, first); err != nil { // hits writeback threshold
			t.Fatal(err)
		}
		if err := f.Append(p, []byte("tail")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 10)
		if err := f.ReadAt(p, buf, 4090); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "AAAAAAtail" {
			t.Fatalf("straddle read %q", buf)
		}
	})
}

func TestOpenNonexistent(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		if _, err := fx.fs.Open(p, "ghost"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestCreateDuplicate(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		if _, err := fx.fs.Create(p, "dup"); err != nil {
			t.Fatal(err)
		}
		if _, err := fx.fs.Create(p, "dup"); !errors.Is(err, ErrExist) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestRemoveFreesBlocks(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "victim")
		_ = f.Append(p, make([]byte, 64<<10))
		_ = f.Sync(p)
		free0 := fx.dev.FreeConvBlocks()
		if err := fx.fs.Remove(p, "victim"); err != nil {
			t.Fatal(err)
		}
		if fx.dev.FreeConvBlocks() <= free0 {
			t.Fatal("remove did not trim blocks")
		}
		if fx.fs.Exists("victim") {
			t.Fatal("file still exists")
		}
		if _, err := fx.fs.Size("victim"); !errors.Is(err, ErrNotExist) {
			t.Fatal("size of removed file should fail")
		}
	})
}

func TestRenameReplacesTarget(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		a, _ := fx.fs.Create(p, "MANIFEST-tmp")
		_ = a.Append(p, []byte("new manifest"))
		_ = a.Sync(p)
		b, _ := fx.fs.Create(p, "MANIFEST")
		_ = b.Append(p, []byte("old"))
		_ = b.Sync(p)
		if err := fx.fs.Rename(p, "MANIFEST-tmp", "MANIFEST"); err != nil {
			t.Fatal(err)
		}
		if fx.fs.Exists("MANIFEST-tmp") {
			t.Fatal("source still exists")
		}
		f, err := fx.fs.Open(p, "MANIFEST")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 12)
		if err := f.ReadAt(p, buf, 0); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "new manifest" {
			t.Fatalf("content %q", buf)
		}
	})
}

func TestRenameMissingSource(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		if err := fx.fs.Rename(p, "no", "where"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestReadBeyondEOF(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "short")
		_ = f.Append(p, []byte("12345"))
		buf := make([]byte, 10)
		if err := f.ReadAt(p, buf, 0); !errors.Is(err, ErrBounds) {
			t.Fatalf("err = %v", err)
		}
		if err := f.ReadAt(p, buf[:2], -1); !errors.Is(err, ErrBounds) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestClosedHandle(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "c")
		_ = f.Close()
		if err := f.Append(p, []byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatal(err)
		}
		if err := f.ReadAt(p, []byte{0}, 0); !errors.Is(err, ErrClosed) {
			t.Fatal(err)
		}
		if err := f.Sync(p); !errors.Is(err, ErrClosed) {
			t.Fatal(err)
		}
	})
}

func TestPageCacheHitAvoidsMedia(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "cached")
		_ = f.Append(p, make([]byte, 8192))
		_ = f.Sync(p)
		fx.fs.DropCaches()
		buf := make([]byte, 100)
		before := fx.st.MediaRead.Value()
		_ = f.ReadAt(p, buf, 0) // miss
		mid := fx.st.MediaRead.Value()
		_ = f.ReadAt(p, buf, 50) // same block: hit
		after := fx.st.MediaRead.Value()
		if mid-before != 4096 {
			t.Fatalf("miss read %d bytes from media", mid-before)
		}
		if after != mid {
			t.Fatal("cache hit touched media")
		}
	})
	if fx.st.CacheHits.Value() == 0 || fx.st.CacheMisses.Value() == 0 {
		t.Fatalf("hit/miss accounting: %s", fx.st.String())
	}
}

func TestDropCaches(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "x")
		_ = f.Append(p, make([]byte, 4096))
		_ = f.Sync(p)
		if fx.fs.CacheBytes() == 0 {
			t.Fatal("writeback should populate cache")
		}
		fx.fs.DropCaches()
		if fx.fs.CacheBytes() != 0 {
			t.Fatal("cache not dropped")
		}
		buf := make([]byte, 10)
		before := fx.st.MediaRead.Value()
		_ = f.ReadAt(p, buf, 0)
		if fx.st.MediaRead.Value() == before {
			t.Fatal("read after drop should hit media")
		}
	})
}

func TestCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageCacheBytes = 8192 // two blocks
	fx := newFixture(cfg)
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "big")
		_ = f.Append(p, make([]byte, 64<<10))
		_ = f.Sync(p)
		if fx.fs.CacheBytes() > 8192 {
			t.Fatalf("cache grew to %d", fx.fs.CacheBytes())
		}
	})
}

func TestReadInflationAccounting(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "x")
		_ = f.Append(p, make([]byte, 8192))
		_ = f.Sync(p)
		fx.fs.DropCaches()
		buf := make([]byte, 48) // want 48 bytes...
		_ = f.ReadAt(p, buf, 0)
	})
	// ...but a whole 4 KiB block moves from media.
	if fx.st.MediaRead.Value() != 4096 {
		t.Fatalf("media read %d, want 4096", fx.st.MediaRead.Value())
	}
}

func TestJournalWritesOnSync(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JournalBlocksPerTx = 2
	fx := newFixture(cfg)
	fx.run(t, func(p *sim.Proc) {
		f, _ := fx.fs.Create(p, "j")
		_ = f.Append(p, []byte("tiny"))
		before := fx.st.MediaWrite.Value()
		_ = f.Sync(p)
		// 1 data block + 2 journal blocks.
		if got := fx.st.MediaWrite.Value() - before; got != 3*4096 {
			t.Fatalf("sync wrote %d bytes", got)
		}
	})
}

func TestListSorted(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		for _, n := range []string{"c", "a", "b"} {
			if _, err := fx.fs.Create(p, n); err != nil {
				t.Fatal(err)
			}
		}
		got := fx.fs.List()
		if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
			t.Fatalf("list %v", got)
		}
	})
}

func TestTotalBytes(t *testing.T) {
	fx := newFixture(DefaultConfig())
	fx.run(t, func(p *sim.Proc) {
		a, _ := fx.fs.Create(p, "a")
		_ = a.Append(p, make([]byte, 100))
		b, _ := fx.fs.Create(p, "b")
		_ = b.Append(p, make([]byte, 200))
		if fx.fs.TotalBytes() != 300 {
			t.Fatalf("total %d", fx.fs.TotalBytes())
		}
	})
}

func TestAppendReadRoundTripProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var total int
		for _, c := range chunks {
			total += len(c)
		}
		if total == 0 || total > 1<<20 {
			return true
		}
		fx := newFixture(DefaultConfig())
		ok := true
		fx.run(t, func(p *sim.Proc) {
			f, err := fx.fs.Create(p, "prop")
			if err != nil {
				ok = false
				return
			}
			var want []byte
			for _, c := range chunks {
				if err := f.Append(p, c); err != nil {
					ok = false
					return
				}
				want = append(want, c...)
			}
			if err := f.Sync(p); err != nil {
				ok = false
				return
			}
			got := make([]byte, len(want))
			if err := f.ReadAt(p, got, 0); err != nil || !bytes.Equal(got, want) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSyscallCostCharged(t *testing.T) {
	fx := newFixture(DefaultConfig())
	end := fx.run(t, func(p *sim.Proc) {
		_, _ = fx.fs.Create(p, "t")
	})
	if end == 0 {
		t.Fatal("create should consume syscall time")
	}
}
