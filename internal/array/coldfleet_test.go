package array

import (
	"bytes"
	"testing"

	"kvcsd/internal/compaction"
	"kvcsd/internal/device"
	"kvcsd/internal/sim"
)

// coldFleetOptions builds a small fleet whose devices carry a cold zone tier
// and a parallel compaction pipeline, sized so a few thousand puts span
// several zones per shard.
func coldFleetOptions() Options {
	opts := DefaultOptions()
	opts.Devices = 2
	opts.Replicas = 1
	opts.Metrics = true
	opts.MaxConcurrentCompactions = 1 // serialize admissions through the stagger
	d := device.DefaultOptions()
	d.SSD.ZoneSize = 256 << 10
	d.SSD.NumZones = 2048
	d.SSD.ColdZones = 512
	d.Engine.IngestBufferBytes = 16 << 10
	d.Engine.SortBudgetBytes = 64 << 10
	d.Engine.CompactionPolicy = compaction.PolicyDevice
	d.Engine.PipelineWidth = 4
	d.Engine.ColdHeatThreshold = 1
	d.Engine.ColdMigrateBatch = 64
	opts.Device = d
	return opts
}

// Fleet compaction on cold-tiered devices runs the lifetime-aware placement
// sweep inside each device's admission window: never-read sorted zones move
// to the cold tier, the fleet gauge counts them, and reads still verify.
func TestFleetCompactionMigratesCold(t *testing.T) {
	env := sim.NewEnv()
	a := New(env, coldFleetOptions())
	const keys = 3000
	run(t, env, func(p *sim.Proc) error {
		ks, err := a.CreateRangeSharded(p, "tiers", 4)
		if err != nil {
			return err
		}
		for i := 0; i < keys; i++ {
			if err := ks.BulkPut(p, scaleKey(3, i), scaleValue(3, i, 64)); err != nil {
				return err
			}
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		moved := a.Registry().Gauge("array/cold_zones_migrated").Value()
		if moved <= 0 {
			t.Fatalf("fleet compaction migrated no zones to the cold tier")
		}
		for i := 0; i < keys; i += 97 {
			v, found, err := ks.Get(p, scaleKey(3, i))
			if err != nil || !found || !bytes.Equal(v, scaleValue(3, i, 64)) {
				t.Fatalf("get %d after cold migration: found=%v err=%v", i, found, err)
			}
		}
		a.Shutdown()
		return nil
	})
}

// The occupancy-aware stagger must hold the second device's admission while
// still letting every admission complete: two serialized device windows with
// pipelined compactions finish, and the pipelines report drained.
func TestOccupancyAwareStaggerCompletes(t *testing.T) {
	env := sim.NewEnv()
	a := New(env, coldFleetOptions())
	run(t, env, func(p *sim.Proc) error {
		ks, err := a.CreateRangeSharded(p, "staggered", 4)
		if err != nil {
			return err
		}
		for i := 0; i < 2400; i++ {
			if err := ks.BulkPut(p, scaleKey(4, i), scaleValue(4, i, 64)); err != nil {
				return err
			}
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		if a.admits < 2 {
			t.Fatalf("expected at least 2 staggered admissions, got %d", a.admits)
		}
		// The scheduler's own drain wait ran against the prior admission; by
		// completion every shard's pipeline must be empty.
		for _, pt := range ks.parts {
			for ri := range pt.replicas {
				pr, done, err := pt.handles[ri].CompactionProgress(p)
				if err != nil {
					return err
				}
				if !done || pr.Occupancy != 0 {
					t.Fatalf("shard %s replica %d: done=%v occupancy=%d", pt.name, ri, done, pr.Occupancy)
				}
			}
		}
		a.Shutdown()
		return nil
	})
}
