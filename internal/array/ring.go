// Package array is the host-side fleet layer over N simulated KV-CSD
// devices: the deployment the paper sketches in §II (Figure 2), where an
// array of computational storage devices sits behind NVMe-oF serving many
// hosts. One Array owns N complete device stacks (SSD + SoC engine + PCIe or
// NVMe-oF link) inside a single deterministic simulation and routes keyspace
// operations across them:
//
//   - placement: a seeded consistent-hash ring pins whole keyspaces to
//     devices; an optional key-range split mode spreads one large keyspace
//     over P partitions for parallel bandwidth;
//   - replication: writes fan out to R replicas, reads follow a read
//     preference and fail over to the next replica when a device errors;
//   - queries: range and secondary-index queries scatter to the owning
//     shards in parallel and gather their result streams in key order;
//   - background work: a fleet compaction scheduler staggers device
//     compactions under an admission cap so one device's background work
//     does not stall the array.
package array

import (
	"fmt"
	"sort"
)

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	dev  int
}

// Ring is a seeded consistent-hash ring over device IDs. Placement depends
// only on (seed, devices, vnodes, name), so every run — and every process —
// computes the same shard map.
type Ring struct {
	seed    int64
	devices int
	vnodes  int
	points  []ringPoint
}

// NewRing builds a ring with vnodes virtual nodes per device. vnodes <= 0
// defaults to 64, enough to keep per-device load within a few percent of
// even for small fleets.
func NewRing(seed int64, devices, vnodes int) *Ring {
	if devices < 1 {
		panic("array: ring needs at least one device")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{seed: seed, devices: devices, vnodes: vnodes}
	r.points = make([]ringPoint, 0, devices*vnodes)
	for d := 0; d < devices; d++ {
		for v := 0; v < vnodes; v++ {
			h := ringHash(seed, fmt.Sprintf("dev-%d-vn-%d", d, v))
			r.points = append(r.points, ringPoint{hash: h, dev: d})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].dev < r.points[j].dev
	})
	return r
}

// Devices returns the device count the ring was built over.
func (r *Ring) Devices() int { return r.devices }

// Owners returns the devices responsible for name: the ring successor of
// hash(name) plus the next replicas-1 distinct devices clockwise. The first
// entry is the primary. replicas is clamped to the device count.
func (r *Ring) Owners(name string, replicas int) []int {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > r.devices {
		replicas = r.devices
	}
	h := ringHash(r.seed, name)
	// Binary search for the successor point.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]int, 0, replicas)
	seen := make(map[int]bool, replicas)
	for n := 0; n < len(r.points) && len(owners) < replicas; n++ {
		pt := r.points[(i+n)%len(r.points)]
		if !seen[pt.dev] {
			seen[pt.dev] = true
			owners = append(owners, pt.dev)
		}
	}
	return owners
}

// ringHash mixes the seed and a name into a 64-bit point deterministically
// (FNV-1a over the name, then a splitmix64-style finalizer with the seed).
func ringHash(seed int64, name string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	h ^= uint64(seed) * 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	return h ^ (h >> 31)
}
