package array

import (
	"encoding/binary"
	"errors"
	"fmt"

	"kvcsd/internal/client"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
)

// partition is one shard of an array keyspace: a device-side keyspace
// replicated on R devices. Pinned keyspaces have exactly one partition
// covering the whole key range; range-split keyspaces have P partitions
// with contiguous uint64-prefix ranges.
type partition struct {
	name     string // device-side keyspace name
	lo       uint64 // first key prefix owned (inclusive)
	hi       uint64 // last key prefix owned (inclusive)
	replicas []int  // device IDs, ring primary first
	handles  []*client.Keyspace
	staged   int64 // bytes staged via BulkPut since the last flush
}

// Keyspace is an array-level keyspace handle: operations are routed to the
// owning partitions and replicated across their devices.
type Keyspace struct {
	a     *Array
	name  string
	split bool
	parts []*partition
	specs []client.IndexSpec // secondary indexes declared through the array
}

// Name returns the keyspace name.
func (k *Keyspace) Name() string { return k.name }

// Partitions returns the number of shards (1 for pinned keyspaces).
func (k *Keyspace) Partitions() int { return len(k.parts) }

// Replicas returns the device IDs holding partition pi, primary first.
func (k *Keyspace) Replicas(pi int) []int {
	return append([]int(nil), k.parts[pi].replicas...)
}

// ShardName returns the device-side keyspace name of partition pi ("name" for
// pinned keyspaces, "name#pN" for range shards) — the name extent-level
// tooling (scrub, corrupt) must address devices with.
func (k *Keyspace) ShardName(pi int) string { return k.parts[pi].name }

// OwnersOf returns the device IDs holding the shard a key routes to,
// primary first.
func (k *Keyspace) OwnersOf(key []byte) []int {
	return append([]int(nil), k.partitionFor(key).replicas...)
}

// ShardMap renders the placement as "partition -> devices" rows, in
// partition order — the deterministic shard map tests assert on.
func (k *Keyspace) ShardMap() []string {
	out := make([]string, len(k.parts))
	for i, pt := range k.parts {
		out[i] = fmt.Sprintf("%s -> %v", pt.name, pt.replicas)
	}
	return out
}

// --- Creation and lifecycle -----------------------------------------------

// CreateKeyspace creates a keyspace pinned to one ring position: all its
// pairs live on the primary device and its R-1 ring successors.
func (a *Array) CreateKeyspace(p *sim.Proc, name string) (*Keyspace, error) {
	return a.create(p, name, 1)
}

// CreateRangeSharded creates one large keyspace split into parts contiguous
// key ranges (by the big-endian uint64 prefix of the key), each range an
// independently placed, replicated device keyspace. parts <= 0 defaults to
// the device count.
func (a *Array) CreateRangeSharded(p *sim.Proc, name string, parts int) (*Keyspace, error) {
	if parts <= 0 {
		parts = a.opts.Devices
	}
	return a.create(p, name, parts)
}

func (a *Array) create(p *sim.Proc, name string, parts int) (*Keyspace, error) {
	if _, ok := a.keyspaces[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrKeyspaceExists, name)
	}
	if _, ok := a.replicated[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrKeyspaceExists, name)
	}
	k := &Keyspace{a: a, name: name, split: parts > 1}
	step := rangeStep(parts)
	for i := 0; i < parts; i++ {
		pname := name
		if k.split {
			pname = fmt.Sprintf("%s#p%d", name, i)
		}
		pt := &partition{
			name:     pname,
			replicas: a.ring.Owners(pname, a.opts.Replicas),
		}
		if k.split {
			pt.lo = uint64(i) * step
			pt.hi = pt.lo + step - 1
			if i == parts-1 {
				pt.hi = ^uint64(0)
			}
		} else {
			pt.hi = ^uint64(0)
		}
		pt.handles = make([]*client.Keyspace, len(pt.replicas))
		errs := a.fanout(p, pt.replicas, func(q *sim.Proc, ri int) error {
			h, err := a.members[pt.replicas[ri]].Client.CreateKeyspace(q, pname)
			if err != nil {
				return err
			}
			pt.handles[ri] = h
			return nil
		})
		if err := a.writeOutcome(pt, errs); err != nil {
			return nil, err
		}
		k.parts = append(k.parts, pt)
	}
	a.keyspaces[name] = k
	a.ksOrder = append(a.ksOrder, name)
	return k, nil
}

// OpenKeyspace returns the handle for a keyspace this router created.
func (a *Array) OpenKeyspace(name string) (*Keyspace, error) {
	k, ok := a.keyspaces[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrKeyspaceUnknown, name)
	}
	return k, nil
}

// Keyspaces returns the names of all routed keyspaces in creation order.
func (a *Array) Keyspaces() []string {
	return append([]string(nil), a.ksOrder...)
}

// DeleteKeyspace removes a keyspace from every owning device.
func (a *Array) DeleteKeyspace(p *sim.Proc, name string) error {
	k, ok := a.keyspaces[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrKeyspaceUnknown, name)
	}
	for _, pt := range k.parts {
		pt := pt
		errs := a.fanout(p, pt.replicas, func(q *sim.Proc, ri int) error {
			return a.members[pt.replicas[ri]].Client.DeleteKeyspace(q, pt.name)
		})
		if err := a.writeOutcome(pt, errs); err != nil {
			return err
		}
	}
	delete(a.keyspaces, name)
	for i, n := range a.ksOrder {
		if n == name {
			a.ksOrder = append(a.ksOrder[:i], a.ksOrder[i+1:]...)
			break
		}
	}
	return nil
}

// --- Routing helpers ------------------------------------------------------

// rangeStep returns the width of each of parts contiguous uint64 ranges.
func rangeStep(parts int) uint64 {
	if parts <= 1 {
		return 0
	}
	return ^uint64(0)/uint64(parts) + 1
}

// keyPrefix interprets the first 8 key bytes as a big-endian uint64
// (shorter keys are zero-padded), the coordinate range-split routing uses.
func keyPrefix(key []byte) uint64 {
	var b [8]byte
	copy(b[:], key)
	return binary.BigEndian.Uint64(b[:])
}

// partitionFor routes a key to its owning partition.
func (k *Keyspace) partitionFor(key []byte) *partition {
	if !k.split {
		return k.parts[0]
	}
	step := rangeStep(len(k.parts))
	i := int(keyPrefix(key) / step)
	if i >= len(k.parts) {
		i = len(k.parts) - 1
	}
	return k.parts[i]
}

// fanout runs fn once per replica concurrently (inline when there is only
// one) and returns the per-replica errors in replica order. Spawn order is
// the replica order, so scheduling is deterministic.
func (a *Array) fanout(p *sim.Proc, replicas []int, fn func(q *sim.Proc, ri int) error) []error {
	errs := make([]error, len(replicas))
	if len(replicas) == 1 {
		errs[0] = fn(p, 0)
		return errs
	}
	procs := make([]*sim.Proc, len(replicas))
	for ri := range replicas {
		ri := ri
		procs[ri] = a.env.Go(fmt.Sprintf("fanout-d%d", replicas[ri]), func(q *sim.Proc) {
			errs[ri] = fn(q, ri)
		})
	}
	p.Join(procs...)
	return errs
}

// writeOutcome folds per-replica write errors into one result and updates
// device health. Policy: a logical error (not retryable) wins — replicas
// must agree on logical outcomes; otherwise the write succeeds if at least
// one replica acknowledged (failed replicas are marked), and fails with the
// first device error only when every replica failed.
func (a *Array) writeOutcome(pt *partition, errs []error) error {
	var firstDev error
	var logical error
	acked := 0
	for ri, err := range errs {
		m := a.members[pt.replicas[ri]]
		switch {
		case err == nil:
			acked++
			a.noteSuccess(m)
		case client.Retryable(err):
			a.noteFailure(m)
			if firstDev == nil {
				firstDev = err
			}
		default:
			if logical == nil {
				logical = err
			}
		}
	}
	if logical != nil {
		return logical
	}
	if acked > 0 {
		return nil
	}
	if firstDev != nil {
		return firstDev
	}
	return ErrNoReplicas
}

// healthyReplicas returns replica indices whose device is not down (all of
// them when everything is down, so last-resort writes still go somewhere).
func (a *Array) healthyReplicas(pt *partition) []int {
	out := make([]int, 0, len(pt.replicas))
	for ri, dev := range pt.replicas {
		if a.members[dev].Healthy() {
			out = append(out, ri)
		}
	}
	if len(out) == 0 {
		for ri := range pt.replicas {
			out = append(out, ri)
		}
	}
	return out
}

// writeAll applies fn to every healthy replica of pt in parallel and folds
// the outcome.
func (k *Keyspace) writeAll(p *sim.Proc, pt *partition, fn func(q *sim.Proc, h *client.Keyspace) error) error {
	live := k.a.healthyReplicas(pt)
	devs := make([]int, len(live))
	for i, ri := range live {
		devs[i] = pt.replicas[ri]
	}
	errs := k.a.fanout(p, devs, func(q *sim.Proc, i int) error {
		return fn(q, pt.handles[live[i]])
	})
	// Fold over the attempted replicas only.
	folded := &partition{name: pt.name, replicas: devs}
	return k.a.writeOutcome(folded, errs)
}

// --- Writes ---------------------------------------------------------------

// Put stores one pair on every replica of the owning shard (write fan-out).
// Down replicas get a hint replayed when they rejoin.
func (k *Keyspace) Put(p *sim.Proc, key, value []byte) error {
	pt := k.partitionFor(key)
	k.a.hintDown(pt, hintPut, key, value)
	return k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
		return h.Put(q, key, value)
	})
}

// Delete records a tombstone on every replica of the owning shard.
func (k *Keyspace) Delete(p *sim.Proc, key []byte) error {
	pt := k.partitionFor(key)
	k.a.hintDown(pt, hintDelete, key, nil)
	return k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
		return h.Delete(q, key)
	})
}

// BulkPut stages a pair into the owning shard's bulk message on every
// replica. When a shard's staged bytes reach the bulk message size, all its
// replicas flush in parallel (the array's counterpart to the client's
// 128 KiB auto-flush, lifted to the fleet so replica transfers overlap).
func (k *Keyspace) BulkPut(p *sim.Proc, key, value []byte) error {
	pt := k.partitionFor(key)
	add := int64(len(key) + len(value) + 8)
	if pt.staged+add >= client.BulkMessageBytes && pt.staged > 0 {
		if err := k.flushPartition(p, pt); err != nil {
			return err
		}
	}
	pt.staged += add
	k.a.hintDown(pt, hintBulkPut, key, value)
	for _, ri := range k.a.healthyReplicas(pt) {
		if err := pt.handles[ri].BulkPut(p, key, value); err != nil {
			return err
		}
	}
	return nil
}

// BulkDelete stages a tombstone the same way BulkPut stages a pair.
func (k *Keyspace) BulkDelete(p *sim.Proc, key []byte) error {
	pt := k.partitionFor(key)
	add := int64(len(key) + 8)
	if pt.staged+add >= client.BulkMessageBytes && pt.staged > 0 {
		if err := k.flushPartition(p, pt); err != nil {
			return err
		}
	}
	pt.staged += add
	k.a.hintDown(pt, hintBulkDelete, key, nil)
	for _, ri := range k.a.healthyReplicas(pt) {
		if err := pt.handles[ri].BulkDelete(p, key); err != nil {
			return err
		}
	}
	return nil
}

// flushPartition pushes one shard's staged pairs on all replicas in
// parallel.
func (k *Keyspace) flushPartition(p *sim.Proc, pt *partition) error {
	pt.staged = 0
	return k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
		return h.Flush(q)
	})
}

// Flush pushes every shard's staged bulk pairs.
func (k *Keyspace) Flush(p *sim.Proc) error {
	for _, pt := range k.parts {
		if err := k.flushPartition(p, pt); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes staged pairs and the device-side ingest buffers everywhere.
func (k *Keyspace) Sync(p *sim.Proc) error {
	for _, pt := range k.parts {
		pt := pt
		pt.staged = 0
		if err := k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
			return h.Sync(q)
		}); err != nil {
			return err
		}
	}
	return nil
}

// --- Reads with failover --------------------------------------------------

// errReadMiss is the internal sentinel a read callback returns when the
// replica answered healthily but does not hold the key. The router then
// consults the remaining replicas before concluding not-found: a replica that
// rejoined after a power cut may have lost its unsynced tail while a peer
// still holds those pairs.
var errReadMiss = errors.New("array: replica miss")

// readWithFailover tries fn against the shard's replicas in read-preference
// order, failing over on device-level errors (updating health) and on healthy
// misses (stale-replica protection). The zero-th return reports which replica
// served.
func (k *Keyspace) readWithFailover(p *sim.Proc, pt *partition, fn func(q *sim.Proc, h *client.Keyspace) error) (int, error) {
	order := k.a.readOrder(pt.replicas)
	var lastErr error
	missedOn := -1
	for _, ri := range order {
		m := k.a.members[pt.replicas[ri]]
		err := fn(p, pt.handles[ri])
		if err == nil {
			k.a.noteSuccess(m)
			return pt.replicas[ri], nil
		}
		if errors.Is(err, errReadMiss) {
			k.a.noteSuccess(m)
			if missedOn < 0 {
				missedOn = pt.replicas[ri]
			}
			continue
		}
		if client.Corrupted(err) {
			// Rotted bytes on this replica, not a sick device: fail over
			// without a health strike and schedule background read-repair.
			k.a.scheduleRepair(pt.replicas[ri])
			lastErr = err
			continue
		}
		if !client.Retryable(err) {
			return pt.replicas[ri], err
		}
		k.a.noteFailure(m)
		lastErr = err
	}
	if missedOn >= 0 {
		return missedOn, errReadMiss
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return -1, lastErr
}

// Get retrieves the value for a key, failing over to a replica when the
// preferred device errors.
func (k *Keyspace) Get(p *sim.Proc, key []byte) ([]byte, bool, error) {
	pt := k.partitionFor(key)
	var val []byte
	_, err := k.readWithFailover(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
		v, ok, err := h.Get(q, key)
		if err != nil {
			return err
		}
		if !ok {
			return errReadMiss // consult the other replicas before not-found
		}
		val = v
		return nil
	})
	if errors.Is(err, errReadMiss) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Exist probes for a key without transferring its value.
func (k *Keyspace) Exist(p *sim.Proc, key []byte) (bool, error) {
	pt := k.partitionFor(key)
	_, err := k.readWithFailover(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
		v, err := h.Exist(q, key)
		if err != nil {
			return err
		}
		if !v {
			return errReadMiss
		}
		return nil
	})
	if errors.Is(err, errReadMiss) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Info aggregates keyspace metadata across shards (primary replica values;
// pairs, bytes, and zones sum, key bounds widen).
func (k *Keyspace) Info(p *sim.Proc) (nvme.KeyspaceInfo, error) {
	var out nvme.KeyspaceInfo
	out.Name = k.name
	for i, pt := range k.parts {
		pt := pt
		var info nvme.KeyspaceInfo
		_, err := k.readWithFailover(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
			v, err := h.Info(q)
			if err != nil {
				return err
			}
			info = v
			return nil
		})
		if err != nil {
			return nvme.KeyspaceInfo{}, err
		}
		out.Pairs += info.Pairs
		out.Bytes += info.Bytes
		out.ZoneCount += info.ZoneCount
		if info.CompactDur > out.CompactDur {
			out.CompactDur = info.CompactDur
		}
		if i == 0 {
			out.State = info.State
			out.MinKey = info.MinKey
			out.MaxKey = info.MaxKey
			out.Secondary = info.Secondary
		} else {
			if info.State != out.State {
				out.State = "MIXED"
			}
			if len(info.MinKey) > 0 && (len(out.MinKey) == 0 || string(info.MinKey) < string(out.MinKey)) {
				out.MinKey = info.MinKey
			}
			if string(info.MaxKey) > string(out.MaxKey) {
				out.MaxKey = info.MaxKey
			}
		}
	}
	return out, nil
}
