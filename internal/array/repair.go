package array

import (
	"fmt"

	"kvcsd/internal/core"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
)

// Read-repair (DESIGN.md §11). When a replica answers a read with
// StatusCorrupted the router fails the read over to a healthy peer (the
// degraded-read path — no health strike, the device itself is fine) and
// schedules an asynchronous repair of the rotted replica: scrub it to
// enumerate the bad extents, fetch each extent's clean bytes from a replica
// that still verifies, and rewrite them in place. Compaction is
// deterministic, so the logical bytes at an (keyspace, kind, index, granule)
// address are identical on every replica — the repair payload is re-verified
// against the stored checksum device-side before programming.

// scheduleRepair spawns an asynchronous scrub-and-repair pass over one
// device, deduplicating concurrent triggers (every failed-over read of a
// rotted replica would otherwise queue its own pass).
func (a *Array) scheduleRepair(dev int) {
	if a.repairing[dev] {
		return
	}
	a.repairing[dev] = true
	proc := a.env.Go(fmt.Sprintf("read-repair-d%d", dev), func(q *sim.Proc) {
		defer func() { a.repairing[dev] = false }()
		_, _ = a.RepairDevice(q, dev)
	})
	a.repairs = append(a.repairs, proc)
}

// WaitRepairsIdle blocks until every scheduled read-repair pass finishes.
func (a *Array) WaitRepairsIdle(p *sim.Proc) {
	procs := a.repairs
	a.repairs = nil
	p.Join(procs...)
}

// RepairDevice synchronously scrubs one device and repairs every corrupt
// extent it reports from a healthy replica of the owning shard. The returned
// report is the device's scrub report with Repaired updated to the extents
// this pass actually rewrote. Extents with no healthy peer copy are left in
// place (the shard stays degraded until one recovers); repeated scrub strikes
// against their zones eventually quarantine the zones device-side.
func (a *Array) RepairDevice(p *sim.Proc, dev int) (*core.ScrubReport, error) {
	m := a.members[dev]
	rep, err := m.Client.ScrubMedia(p)
	if err != nil {
		return nil, err
	}
	for _, ext := range rep.Corrupt {
		if a.repairExtent(p, dev, ext) {
			rep.Repaired++
		}
	}
	return rep, nil
}

// repairExtent rewrites one corrupt extent on dev from the first healthy
// replica that serves a verified copy. Reports whether the rewrite landed.
func (a *Array) repairExtent(p *sim.Proc, dev int, ext core.ExtentRef) bool {
	pt := a.partitionByName(ext.Keyspace)
	if pt == nil {
		return false // keyspace deleted (or never routed) — nothing to restore
	}
	addr := nvme.ExtentAddr{Kind: uint8(ext.Kind), Index: ext.Index, Granule: ext.Granule}
	for _, peer := range pt.replicas {
		if peer == dev || !a.members[peer].Healthy() {
			continue
		}
		data, err := a.members[peer].Client.ReadExtent(p, ext.Keyspace, addr)
		if err != nil {
			continue // peer's copy is rotted too (or the peer is failing); try the next
		}
		if err := a.members[dev].Client.RepairExtent(p, ext.Keyspace, addr, data); err != nil {
			return false
		}
		return true
	}
	return false
}

// ScrubDevice runs one synchronous scrub pass on a device without repairing
// (inspection, CLI) and returns its report.
func (a *Array) ScrubDevice(p *sim.Proc, dev int) (*core.ScrubReport, error) {
	return a.members[dev].Client.ScrubMedia(p)
}

// ScrubAll scrubs every healthy device and merges the reports (device order).
func (a *Array) ScrubAll(p *sim.Proc) (*core.ScrubReport, error) {
	total := &core.ScrubReport{}
	for _, m := range a.members {
		if !m.Healthy() {
			continue
		}
		rep, err := m.Client.ScrubMedia(p)
		if err != nil {
			return nil, err
		}
		total.Keyspaces += rep.Keyspaces
		total.ScannedBytes += rep.ScannedBytes
		total.Corrupt = append(total.Corrupt, rep.Corrupt...)
		total.Repaired += rep.Repaired
		total.Quarantined += rep.Quarantined
	}
	return total, nil
}

// partitionByName resolves a device-side keyspace name (shard name) back to
// its partition, across every routed keyspace.
func (a *Array) partitionByName(name string) *partition {
	for _, ksName := range a.ksOrder {
		for _, pt := range a.keyspaces[ksName].parts {
			if pt.name == name {
				return pt
			}
		}
	}
	return nil
}

// CorruptExtent flips bits inside one granule of one device's replica of a
// shard — the array-level fault-injection hook the chaos campaign drives.
func (a *Array) CorruptExtent(p *sim.Proc, dev int, keyspace string, addr nvme.ExtentAddr) (int64, error) {
	return a.members[dev].Client.CorruptMedia(p, keyspace, addr)
}
