package array

import (
	"errors"
	"fmt"
	"sort"

	"kvcsd/internal/client"
	"kvcsd/internal/nvme"
	"kvcsd/internal/replica"
	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

// ReplicatedKeyspace is a consensus-backed array keyspace: the key range is
// split into shards, each shard a replicated state machine whose members are
// device-side keyspaces ("name#g<s>") on ring-placed devices. Writes commit
// at quorum through the shard's leader and reads go through the leader's
// read-index, so — unlike the fan-out replication of plain array keyspaces —
// a power-cut replica can never serve stale data.
//
// The handle is safe for concurrent simulation processes (the server gateway
// runs pipelined requests as overlapping procs): each operation checks a
// replica session out of a pool, so every in-flight op has its own
// (client, seq) identity and retries stay exactly-once through session dedup.
// A session is owned by one proc at a time; sharing one session across
// concurrent ops would let a retried low-seq write be falsely deduplicated by
// a concurrent higher-seq write on the same client.
type ReplicatedKeyspace struct {
	a       *Array
	name    string
	shards  int
	cluster *replica.Cluster

	// sessions is the idle-session pool; nextClient numbers fresh sessions.
	// Sim procs are cooperatively scheduled and checkout/checkin never yield,
	// so the pool needs no lock.
	sessions   []*replica.Session
	nextClient uint64
}

// checkout takes an idle session or mints a fresh client identity.
func (k *ReplicatedKeyspace) checkout() *replica.Session {
	if n := len(k.sessions); n > 0 {
		s := k.sessions[n-1]
		k.sessions = k.sessions[:n-1]
		return s
	}
	k.nextClient++
	return k.cluster.Client(k.nextClient)
}

// checkin returns a session to the pool. Safe even after an ambiguous
// failure: a dangling proposal that commits later deduplicates against its
// own (client, seq), and the next op on this session uses a higher seq.
func (k *ReplicatedKeyspace) checkin(s *replica.Session) {
	k.sessions = append(k.sessions, s)
}

// deviceSM adapts one device-side keyspace to the replica.StateMachine
// interface. The device keyspace lifecycle is the paper's write-once ingest
// pipeline (WRITABLE until compaction seals it), so interleaved point reads
// cannot be served by the device while ingest is open; the state machine
// therefore keeps its working view in SoC DRAM (the mem map below, the same
// place the engine's ingest index lives) and pushes every apply into the
// device keyspace as durable ingest traffic — charging real device put
// latency on the apply path. Snapshot streams from the DRAM view; Restore
// drops and rebuilds the device keyspace from the snapshot. The keyspace is
// materialized lazily so the group shells every node hosts for resharding
// cost nothing until state actually lands on them.
type deviceSM struct {
	a    *Array
	ks   string // device-side keyspace name
	node int    // device ID
	h    *client.Keyspace
	mem  map[string][]byte
}

func (s *deviceSM) handle(p *sim.Proc) (*client.Keyspace, error) {
	if s.h != nil {
		return s.h, nil
	}
	m := s.a.members[s.node]
	h, err := m.Client.OpenKeyspace(p, s.ks)
	if err != nil {
		h, err = m.Client.CreateKeyspace(p, s.ks)
		if err != nil {
			return nil, err
		}
	}
	s.h = h
	return h, nil
}

// Apply implements replica.StateMachine: updates the DRAM view and ingests
// the pair (or tombstone) into the device keyspace.
func (s *deviceSM) Apply(p *sim.Proc, cmd replica.Command) error {
	h, err := s.handle(p)
	if err != nil {
		return err
	}
	if s.mem == nil {
		s.mem = make(map[string][]byte)
	}
	if cmd.Kind == wire.EntryDelete {
		if _, ok := s.mem[string(cmd.Key)]; !ok {
			return nil // absent key: skip the device tombstone too
		}
		delete(s.mem, string(cmd.Key))
		err = h.Delete(p, cmd.Key)
		if errors.Is(err, client.ErrNotFound) {
			err = nil
		}
		return err
	}
	v := append([]byte(nil), cmd.Value...)
	s.mem[string(cmd.Key)] = v
	return h.Put(p, cmd.Key, cmd.Value)
}

// Lookup implements replica.StateMachine, serving from the DRAM view (the
// device keyspace is still in its ingest phase and cannot point-read).
func (s *deviceSM) Lookup(p *sim.Proc, key []byte) ([]byte, bool, error) {
	v, ok := s.mem[string(key)]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Snapshot implements replica.StateMachine; pairs are sorted for determinism.
func (s *deviceSM) Snapshot(p *sim.Proc) ([]nvme.KVPair, error) {
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]nvme.KVPair, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, nvme.KVPair{Key: []byte(k), Value: s.mem[k]})
	}
	return pairs, nil
}

// Restore implements replica.StateMachine: the device keyspace is dropped and
// rebuilt from the snapshot, erasing any pairs a previous incarnation of the
// shard (or an un-replicated tail lost to a power cut) left behind.
func (s *deviceSM) Restore(p *sim.Proc, pairs []nvme.KVPair) error {
	if s.h == nil && s.mem == nil && len(pairs) == 0 {
		return nil // nothing materialized, nothing to reset
	}
	s.mem = make(map[string][]byte, len(pairs))
	m := s.a.members[s.node]
	if s.h != nil {
		if err := m.Client.DeleteKeyspace(p, s.ks); err != nil {
			return err
		}
		s.h = nil
	}
	h, err := s.handle(p)
	if err != nil {
		return err
	}
	for _, kv := range pairs {
		s.mem[string(kv.Key)] = append([]byte(nil), kv.Value...)
		if err := h.BulkPut(p, kv.Key, kv.Value); err != nil {
			return err
		}
	}
	if len(pairs) > 0 {
		if err := h.Flush(p); err != nil {
			return err
		}
	}
	return h.Sync(p)
}

// CreateReplicated creates a consensus-backed keyspace split into shards key
// ranges (same big-endian-prefix routing as CreateRangeSharded). Each shard's
// members come from the placement ring; the replication factor is the array's
// Replicas option, raised to 3 when the fleet allows it so shard groups can
// tolerate a device loss without losing quorum. shards <= 0 defaults to the
// device count.
func (a *Array) CreateReplicated(p *sim.Proc, name string, shards int) (*ReplicatedKeyspace, error) {
	if _, ok := a.keyspaces[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrKeyspaceExists, name)
	}
	if _, ok := a.replicated[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrKeyspaceExists, name)
	}
	if shards <= 0 {
		shards = a.opts.Devices
	}
	rf := a.opts.Replicas
	if rf < 3 && a.opts.Devices >= 3 {
		rf = 3
	}
	k := &ReplicatedKeyspace{a: a, name: name, shards: shards}
	k.cluster = replica.New(a.env, replica.Options{
		Nodes:             a.opts.Devices,
		Shards:            shards,
		ReplicationFactor: rf,
		Seed:              deriveSeed(a.opts.Seed, len(a.replicated)+1),
		Members: func(shard int) []int {
			return a.ring.Owners(groupName(name, shard), rf)
		},
		NewSM: func(shard, node int) replica.StateMachine {
			return &deviceSM{a: a, ks: groupName(name, shard), node: node}
		},
		Registry:    a.reg,
		GaugePrefix: name + "/",
	})
	// Wait until every shard has a ready leader so the first client op does
	// not eat the initial election timeout. Register the keyspace only once
	// every shard can serve: a half-initialized registration would make a
	// retry fail with ErrKeyspaceExists and hand leaderless shards to opens.
	for s := 0; s < shards; s++ {
		if _, err := k.cluster.WaitLeader(p, s); err != nil {
			k.cluster.Stop()
			return nil, err
		}
	}
	a.replicated[name] = k
	a.repOrder = append(a.repOrder, name)
	return k, nil
}

// groupName is the device-side keyspace name of one shard group.
func groupName(name string, shard int) string {
	return fmt.Sprintf("%s#g%d", name, shard)
}

// OpenReplicated returns the handle for a replicated keyspace this router
// created.
func (a *Array) OpenReplicated(name string) (*ReplicatedKeyspace, error) {
	k, ok := a.replicated[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrKeyspaceUnknown, name)
	}
	return k, nil
}

// ReplicatedKeyspaces returns the names of all replicated keyspaces in
// creation order.
func (a *Array) ReplicatedKeyspaces() []string {
	return append([]string(nil), a.repOrder...)
}

// Name returns the keyspace name.
func (k *ReplicatedKeyspace) Name() string { return k.name }

// Shards returns the shard-group count.
func (k *ReplicatedKeyspace) Shards() int { return k.shards }

// Cluster exposes the underlying consensus cluster (fault injection, tests).
func (k *ReplicatedKeyspace) Cluster() *replica.Cluster { return k.cluster }

// shardFor routes a key to its shard group by big-endian uint64 prefix.
func (k *ReplicatedKeyspace) shardFor(key []byte) int {
	if k.shards == 1 {
		return 0
	}
	i := int(keyPrefix(key) / rangeStep(k.shards))
	if i >= k.shards {
		i = k.shards - 1
	}
	return i
}

// Put commits one pair through the owning shard group's leader at quorum.
func (k *ReplicatedKeyspace) Put(p *sim.Proc, key, value []byte) error {
	s := k.checkout()
	defer k.checkin(s)
	return s.Put(p, k.shardFor(key), key, value)
}

// Delete commits a deletion through the owning shard group at quorum.
func (k *ReplicatedKeyspace) Delete(p *sim.Proc, key []byte) error {
	s := k.checkout()
	defer k.checkin(s)
	return s.Delete(p, k.shardFor(key), key)
}

// Get performs a linearizable read via the shard leader's read-index.
func (k *ReplicatedKeyspace) Get(p *sim.Proc, key []byte) ([]byte, bool, error) {
	s := k.checkout()
	defer k.checkin(s)
	return s.Get(p, k.shardFor(key), key)
}

// Leader returns the device currently leading a shard group (-1 unknown).
func (k *ReplicatedKeyspace) Leader(shard int) int { return k.cluster.Leader(shard) }

// Members returns the devices holding a shard group.
func (k *ReplicatedKeyspace) Members(shard int) []int { return k.cluster.Members(shard) }

// Epoch returns a shard's current ownership epoch.
func (k *ReplicatedKeyspace) Epoch(shard int) uint64 { return k.cluster.Epoch(shard) }

// MoveShard streams a shard's state to device to and atomically flips
// ownership from device from (elastic resharding).
func (k *ReplicatedKeyspace) MoveShard(p *sim.Proc, shard, from, to int) error {
	return k.cluster.MoveShard(p, shard, from, to)
}

// RouteTable renders the shard-ownership view as wire ring entries.
func (k *ReplicatedKeyspace) RouteTable() []wire.RingEntry {
	return k.cluster.RouteTable(k.name)
}

// RingTable renders the whole array's ownership view — every plain keyspace
// partition (epoch 1, no leader: ownership is static ring placement) and
// every replicated shard group (live epoch and leader) — as wire ring
// entries, in creation order.
func (a *Array) RingTable() []wire.RingEntry {
	var out []wire.RingEntry
	for _, name := range a.ksOrder {
		k := a.keyspaces[name]
		for i, pt := range k.parts {
			members := make([]uint32, len(pt.replicas))
			for j, d := range pt.replicas {
				members[j] = uint32(d)
			}
			out = append(out, wire.RingEntry{
				Keyspace: name,
				Shard:    uint32(i),
				Epoch:    1,
				Leader:   -1,
				Members:  members,
			})
		}
	}
	for _, name := range a.repOrder {
		out = append(out, a.replicated[name].RouteTable()...)
	}
	return out
}
