package array

import (
	"encoding/binary"
	"fmt"
	"time"

	"kvcsd/internal/device"
	"kvcsd/internal/obs"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
)

// ScalingConfig parameterizes one array-scaling run: a fixed total workload
// spread over a varying device count, so throughput growth measures how
// close the fleet is to linear scaling.
type ScalingConfig struct {
	// Devices and Replicas size the array.
	Devices  int
	Replicas int
	// TotalKeys is the fixed total insert volume (split across devices).
	TotalKeys int
	// ValueBytes per pair (default 128).
	ValueBytes int
	// Writers is the number of concurrent client writer procs (default =
	// 4 per device, enough to overlap bulk-flush round trips with device
	// ingest so the sweep measures device bandwidth, not client latency).
	Writers int
	// Queries is the number of random point GETs after compaction.
	Queries int
	// Seed drives placement, per-device behavior, and the workload.
	Seed int64
	// NVMeOF attaches devices over NVMe-over-Fabrics.
	NVMeOF bool
	// Trace and Metrics enable fleet-wide observability for the run.
	Trace   bool
	Metrics bool
}

// DefaultScalingConfig returns a small, fast run (the bench default).
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Devices:    4,
		Replicas:   1,
		TotalKeys:  16384,
		ValueBytes: 128,
		Queries:    2048,
		Seed:       1,
	}
}

// ScalingResult reports one array-scaling run.
type ScalingResult struct {
	Devices  int
	Replicas int
	Keys     int

	// InsertTime covers bulk load + flush; CompactTime the fleet compaction
	// pass; QueryTime the GET phase.
	InsertTime  time.Duration
	CompactTime time.Duration
	QueryTime   time.Duration
	// Throughput is insert keys per virtual second.
	Throughput float64
	// GetP99 is the client-observed 99th-percentile GET latency.
	GetP99 time.Duration

	// Stats is the fleet-wide sum; PerDevice the per-member blocks.
	Stats     *stats.IOStats
	PerDevice []*stats.IOStats

	// Registry and Tracer expose the run's observability (nil unless the
	// config enabled them).
	Registry *obs.Registry
	Tracer   *obs.Tracer

	// ShardMap is the placement, for determinism checks.
	ShardMap []string
}

// scalingSSDConfig sizes each member drive generously for its data share.
func scalingSSDConfig(dataBytes int64) ssd.Config {
	cfg := ssd.DefaultConfig()
	cfg.ZoneSize = 4 << 20
	need := int(dataBytes*8/cfg.ZoneSize) + 512
	if need < 2048 {
		need = 2048
	}
	cfg.NumZones = need
	return cfg
}

// RunScaling executes one array-scaling experiment in a fresh simulation:
// Writers concurrent clients bulk-load TotalKeys uniform pairs into one
// range-sharded keyspace (one partition per device), the fleet compaction
// scheduler sorts every shard, and Queries random GETs measure read latency.
// Everything is derived from Seed, so two runs with equal configs produce
// byte-identical traces.
func RunScaling(cfg ScalingConfig) (*ScalingResult, error) {
	if cfg.Devices < 1 {
		cfg.Devices = 1
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 128
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4 * cfg.Devices
	}
	env := sim.NewEnv()
	perDevBytes := int64(cfg.TotalKeys) * int64(16+cfg.ValueBytes) / int64(cfg.Devices)
	dopts := device.DefaultOptions()
	dopts.SSD = scalingSSDConfig(perDevBytes * int64(cfg.Replicas))
	dopts.Engine.SortBudgetBytes = 4 << 20
	aopts := Options{
		Devices:                  cfg.Devices,
		Replicas:                 cfg.Replicas,
		Seed:                     cfg.Seed,
		Device:                   dopts,
		NVMeOF:                   cfg.NVMeOF,
		ReadPreference:           ReadRoundRobin,
		FailureThreshold:         3,
		MaxConcurrentCompactions: maxInt(2, (cfg.Devices+1)/2),
		CompactionStagger:        100 * time.Microsecond,
		Trace:                    cfg.Trace,
		Metrics:                  cfg.Metrics,
	}
	a := New(env, aopts)
	res := &ScalingResult{
		Devices:  cfg.Devices,
		Replicas: a.Options().Replicas,
		Keys:     cfg.TotalKeys,
		Registry: a.Registry(),
		Tracer:   a.Tracer(),
	}
	getHist := stats.NewHistogram("array/get")
	err := runMaster(env, func(p *sim.Proc) error {
		ks, err := a.CreateRangeSharded(p, "scale", cfg.Devices)
		if err != nil {
			return err
		}
		res.ShardMap = ks.ShardMap()

		// Insert phase: Writers concurrent procs, interleaved key ranges.
		t0 := p.Now()
		werrs := make([]error, cfg.Writers)
		procs := make([]*sim.Proc, cfg.Writers)
		for w := 0; w < cfg.Writers; w++ {
			w := w
			procs[w] = env.Go(fmt.Sprintf("writer-%d", w), func(q *sim.Proc) {
				for i := w; i < cfg.TotalKeys; i += cfg.Writers {
					key := scaleKey(cfg.Seed, i)
					val := scaleValue(cfg.Seed, i, cfg.ValueBytes)
					if err := ks.BulkPut(q, key, val); err != nil {
						werrs[w] = err
						return
					}
				}
			})
		}
		p.Join(procs...)
		for _, e := range werrs {
			if e != nil {
				return e
			}
		}
		if err := ks.Flush(p); err != nil {
			return err
		}
		res.InsertTime = time.Duration(p.Now() - t0)

		// Fleet compaction pass (admission-gated, staggered).
		t1 := p.Now()
		if err := ks.Compact(p); err != nil {
			return err
		}
		res.CompactTime = time.Duration(p.Now() - t1)

		// Query phase: random GETs over the loaded population.
		t2 := p.Now()
		rng := sim.NewRNG(cfg.Seed ^ 0x5EED)
		for q := 0; q < cfg.Queries; q++ {
			i := int(rng.Uint64() % uint64(maxInt(cfg.TotalKeys, 1)))
			g0 := p.Now()
			_, ok, err := ks.Get(p, scaleKey(cfg.Seed, i))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("array scaling: key %d missing after compaction", i)
			}
			getHist.Record(time.Duration(p.Now() - g0))
		}
		res.QueryTime = time.Duration(p.Now() - t2)
		a.Shutdown()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.InsertTime > 0 {
		res.Throughput = float64(cfg.TotalKeys) / res.InsertTime.Seconds()
	}
	res.GetP99 = getHist.Quantile(0.99)
	res.Stats = a.Stats()
	for _, m := range a.Members() {
		res.PerDevice = append(res.PerDevice, m.Stats)
	}
	return res, nil
}

// runMaster executes fn as the master process of a fresh simulation.
func runMaster(env *sim.Env, fn func(p *sim.Proc) error) error {
	var err error
	env.Go("experiment", func(p *sim.Proc) { err = fn(p) })
	env.Run()
	return err
}

// scaleKey derives the i-th workload key (16 bytes, uniform prefix).
func scaleKey(seed int64, i int) []byte {
	k := make([]byte, 16)
	x := scaleMix(uint64(seed)<<32 ^ uint64(i))
	binary.BigEndian.PutUint64(k, x)
	binary.BigEndian.PutUint64(k[8:], uint64(i))
	return k
}

// scaleValue derives the value for key i.
func scaleValue(seed int64, i, size int) []byte {
	v := make([]byte, size)
	x := scaleMix(uint64(seed)<<33 ^ uint64(i) ^ 0xABCD)
	for j := 0; j < size; j += 8 {
		for b := 0; b < 8 && j+b < size; b++ {
			v[j+b] = byte(x >> (8 * uint(b)))
		}
		x = scaleMix(x)
	}
	return v
}

// scaleMix is a splitmix64 step.
func scaleMix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
