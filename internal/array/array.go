package array

import (
	"errors"
	"fmt"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/core"
	"kvcsd/internal/device"
	"kvcsd/internal/host"
	"kvcsd/internal/obs"
	"kvcsd/internal/pcie"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
)

// Errors returned by the array router.
var (
	// ErrNoReplicas reports that every replica of a shard failed (or every
	// owning device is marked down).
	ErrNoReplicas = errors.New("array: no replica available")
	// ErrKeyspaceUnknown reports an Open/Delete of a keyspace this router
	// never created.
	ErrKeyspaceUnknown = errors.New("array: keyspace unknown to router")
	// ErrKeyspaceExists reports a Create of a name already routed.
	ErrKeyspaceExists = errors.New("array: keyspace already routed")
)

// ReadPreference selects which replica serves reads first.
type ReadPreference int

// Read preferences.
const (
	// ReadPrimary always tries the ring primary first — maximal cache
	// locality, uneven load.
	ReadPrimary ReadPreference = iota
	// ReadRoundRobin rotates reads across healthy replicas — even load,
	// the deployment default for R > 1.
	ReadRoundRobin
)

// Options assembles an array.
type Options struct {
	// Devices is the fleet size (>= 1).
	Devices int
	// Replicas is the number of copies of every keyspace (clamped to
	// Devices; default 1 = no replication).
	Replicas int
	// VirtualNodes per device on the placement ring (default 64).
	VirtualNodes int
	// Seed drives ring placement and per-device seeds.
	Seed int64
	// Device is the per-device template; the zero value means
	// device.DefaultOptions(). Each device gets a distinct derived seed.
	Device device.Options
	// Host configures the router host (zero value = default host).
	Host host.Config
	// NVMeOF attaches devices over NVMe-over-Fabrics instead of local PCIe
	// (the paper's Figure 2 deployment).
	NVMeOF bool
	// ReadPreference selects the replica read order.
	ReadPreference ReadPreference
	// FailureThreshold is the number of consecutive device-level errors
	// after which a device is marked down and skipped by the router
	// (default 3).
	FailureThreshold int
	// MaxConcurrentCompactions caps how many devices may run scheduled
	// compactions at once (default 2).
	MaxConcurrentCompactions int
	// CompactionStagger delays successive compaction admissions so the
	// fleet's background I/O ramps instead of bursting (default 100µs).
	CompactionStagger time.Duration
	// Trace collects every device's command spans into one fleet tracer.
	Trace bool
	// Metrics publishes all devices into one registry, gauges namespaced
	// "dev<N>/".
	Metrics bool
}

// DefaultOptions returns a 4-device, 2-replica array of default devices.
func DefaultOptions() Options {
	return Options{
		Devices:                  4,
		Replicas:                 2,
		Seed:                     1,
		ReadPreference:           ReadRoundRobin,
		FailureThreshold:         3,
		MaxConcurrentCompactions: 2,
		CompactionStagger:        100 * time.Microsecond,
	}
}

// Member is one device of the array plus the router's view of it.
type Member struct {
	ID     int
	Dev    *device.Device
	Client *client.Client
	Stats  *stats.IOStats

	failures int // consecutive device-level errors
	down     bool
}

// Healthy reports whether the router still routes to this device.
func (m *Member) Healthy() bool { return !m.down }

// Failures returns the current consecutive-failure count.
func (m *Member) Failures() int { return m.failures }

// DeviceHealth is a point-in-time health snapshot of one member.
type DeviceHealth struct {
	ID       int
	Down     bool
	Failures int
}

// Array is a host-side router over N KV-CSD devices.
type Array struct {
	env     *sim.Env
	h       *host.Host
	opts    Options
	members []*Member
	ring    *Ring

	reg *obs.Registry // fleet registry (nil unless Metrics)
	tr  *obs.Tracer   // fleet tracer (nil unless Trace)

	gate        *sim.Resource // compaction admission gate
	gDown       *sim.Gauge    // array/devices_down
	gCompactRun *sim.Gauge    // array/compactions_running
	gColdMoves  *sim.Gauge    // array/cold_zones_migrated
	lastAdmit   sim.Time      // last compaction admission (stagger)
	admits      int64         // compaction admissions so far
	lastJobs    []*compactJob // previous admission (occupancy-aware stagger)
	rr          int           // round-robin read cursor

	keyspaces map[string]*Keyspace
	ksOrder   []string // creation order, for deterministic iteration

	// replicated holds consensus-backed keyspaces (see groups.go).
	replicated map[string]*ReplicatedKeyspace
	repOrder   []string

	// hints queues writes missed by down devices, replayed on rejoin
	// (hinted handoff — see rejoin.go).
	hints map[int][]hint

	// repairing dedupes in-flight read-repair passes per device; repairs
	// holds their procs for WaitRepairsIdle (see repair.go).
	repairing map[int]bool
	repairs   []*sim.Proc
}

// New builds and starts an array in the simulation environment. Each device
// is a complete stack (its own SSD, SoC engine, and link) with its own
// IOStats block; the router host is shared.
func New(env *sim.Env, opts Options) *Array {
	if opts.Devices < 1 {
		opts.Devices = 1
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Replicas > opts.Devices {
		opts.Replicas = opts.Devices
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 3
	}
	if opts.MaxConcurrentCompactions <= 0 {
		opts.MaxConcurrentCompactions = 2
	}
	if opts.CompactionStagger < 0 {
		opts.CompactionStagger = 0
	}
	hcfg := opts.Host
	if hcfg.Cores == 0 {
		hcfg = host.DefaultHostConfig()
	}
	a := &Array{
		env:        env,
		h:          host.New(env, hcfg),
		opts:       opts,
		ring:       NewRing(opts.Seed, opts.Devices, opts.VirtualNodes),
		gate:       sim.NewResource(env, "array-compact-gate", opts.MaxConcurrentCompactions),
		keyspaces:  make(map[string]*Keyspace),
		replicated: make(map[string]*ReplicatedKeyspace),
		hints:      make(map[int][]hint),
		repairing:  make(map[int]bool),
	}
	if opts.Metrics {
		a.reg = obs.NewRegistry(env)
		a.gDown = a.reg.Gauge("array/devices_down")
		a.gCompactRun = a.reg.Gauge("array/compactions_running")
		a.gColdMoves = a.reg.Gauge("array/cold_zones_migrated")
	}
	if opts.Trace {
		a.tr = obs.NewTracer(env)
	}
	devTemplate := opts.Device
	if isZeroDeviceOptions(devTemplate) {
		devTemplate = device.DefaultOptions()
	}
	if opts.NVMeOF {
		devTemplate.Link = pcie.NVMeOFConfig()
	}
	for i := 0; i < opts.Devices; i++ {
		dopts := devTemplate
		dopts.Seed = deriveSeed(opts.Seed, i)
		dopts.Trace = opts.Trace
		dopts.Metrics = opts.Metrics
		dopts.SharedRegistry = a.reg
		dopts.SharedTracer = a.tr
		dopts.GaugePrefix = fmt.Sprintf("dev%d/", i)
		st := stats.NewIOStats()
		dev := device.New(env, dopts, st)
		a.members = append(a.members, &Member{
			ID:     i,
			Dev:    dev,
			Client: client.New(a.h, dev),
			Stats:  st,
		})
	}
	return a
}

// isZeroDeviceOptions reports whether the template was left unset.
func isZeroDeviceOptions(o device.Options) bool {
	return o.QueueDepth == 0 && o.SSD.Channels == 0 && o.SoC.Cores == 0
}

// deriveSeed gives each device an independent deterministic seed.
func deriveSeed(seed int64, dev int) int64 {
	return seed ^ (int64(dev+1) * 0x9E3779B9)
}

// Env returns the simulation environment.
func (a *Array) Env() *sim.Env { return a.env }

// Host returns the router host.
func (a *Array) Host() *host.Host { return a.h }

// Options returns the array configuration (after defaulting).
func (a *Array) Options() Options { return a.opts }

// Ring returns the placement ring (inspection, tests).
func (a *Array) Ring() *Ring { return a.ring }

// Members returns all members in device-ID order.
func (a *Array) Members() []*Member { return a.members }

// Member returns the member with the given device ID.
func (a *Array) Member(id int) *Member { return a.members[id] }

// Registry returns the fleet metrics registry (nil unless Options.Metrics).
func (a *Array) Registry() *obs.Registry { return a.reg }

// Tracer returns the fleet tracer (nil unless Options.Trace).
func (a *Array) Tracer() *obs.Tracer { return a.tr }

// Stats returns a fresh IOStats block holding the sum of every device's
// counters (stats.Merge) — the array-wide I/O totals.
func (a *Array) Stats() *stats.IOStats {
	total := stats.NewIOStats()
	for _, m := range a.members {
		total.Merge(m.Stats)
	}
	return total
}

// Health returns a snapshot of every member's health, in device-ID order.
func (a *Array) Health() []DeviceHealth {
	out := make([]DeviceHealth, len(a.members))
	for i, m := range a.members {
		out[i] = DeviceHealth{ID: m.ID, Down: m.down, Failures: m.failures}
	}
	return out
}

// noteFailure records a device-level error; at FailureThreshold consecutive
// errors the device is marked down and the router stops routing to it.
func (a *Array) noteFailure(m *Member) {
	m.failures++
	if !m.down && m.failures >= a.opts.FailureThreshold {
		m.down = true
		if a.gDown != nil {
			a.gDown.Add(1)
		}
	}
}

// noteSuccess clears the consecutive-failure counter and revives a down
// device (the only probe path back: a read that failed over may still be
// retried against a recovering device by lowering FailureThreshold traffic).
func (a *Array) noteSuccess(m *Member) {
	m.failures = 0
	if m.down {
		m.down = false
		if a.gDown != nil {
			a.gDown.Add(-1)
		}
	}
}

// MarkDown forces a device down (operator action / tests).
func (a *Array) MarkDown(id int) {
	m := a.members[id]
	if !m.down {
		m.down = true
		if a.gDown != nil {
			a.gDown.Add(1)
		}
	}
}

// MarkUp forces a device back up.
func (a *Array) MarkUp(id int) {
	m := a.members[id]
	m.failures = 0
	if m.down {
		m.down = false
		if a.gDown != nil {
			a.gDown.Add(-1)
		}
	}
}

// PowerCut cuts power to one device and marks it down: the router fails
// reads over to the surviving replicas immediately (degraded reads) while
// the dead replica waits for RestartDevice.
func (a *Array) PowerCut(p *sim.Proc, id int) ssd.PowerCutReport {
	rep := a.members[id].Dev.PowerCut(p)
	a.MarkDown(id)
	// Consensus shard groups on the device lose their volatile state too;
	// their leaders fail over to the surviving members.
	for _, name := range a.repOrder {
		a.replicated[name].cluster.Crash(id)
	}
	return rep
}

// RestartDevice power-cycles a downed device and, on successful recovery,
// replays the writes it missed while down (hinted handoff) and rejoins it to
// the router: subsequent reads and writes route to it again.
func (a *Array) RestartDevice(p *sim.Proc, id int) (*core.RecoveryReport, error) {
	rep, err := a.members[id].Dev.Restart(p)
	if err != nil {
		return rep, err
	}
	if err := a.replayHints(p, id); err != nil {
		return rep, err
	}
	a.MarkUp(id)
	// Rejoin the device's shard groups: state machines reset to their
	// snapshots and the logs replay as the commit indexes re-advance.
	for _, name := range a.repOrder {
		a.replicated[name].cluster.Restart(p, id)
	}
	return rep, nil
}

// readOrder returns replica indices (positions into a partition's replica
// list) in the order reads should try them: healthy devices first, ordered
// by the read preference, then down devices as a last resort.
func (a *Array) readOrder(replicas []int) []int {
	n := len(replicas)
	order := make([]int, n)
	start := 0
	if a.opts.ReadPreference == ReadRoundRobin && n > 1 {
		start = a.rr % n
		a.rr++
	}
	for i := 0; i < n; i++ {
		order[i] = (start + i) % n
	}
	// Stable partition: healthy before down, preserving preference order.
	healthy := make([]int, 0, n)
	downs := make([]int, 0, n)
	for _, ri := range order {
		if a.members[replicas[ri]].Healthy() {
			healthy = append(healthy, ri)
		} else {
			downs = append(downs, ri)
		}
	}
	return append(healthy, downs...)
}

// WaitBackgroundIdle blocks until every device's background jobs finish.
func (a *Array) WaitBackgroundIdle(p *sim.Proc) error {
	for _, m := range a.members {
		if err := m.Dev.WaitBackgroundIdle(p); err != nil {
			return err
		}
	}
	return nil
}

// Shutdown closes every device's command queue; in-flight commands complete
// and the dispatch loops exit. Consensus clusters of replicated keyspaces
// stop first so their tickers release the simulation.
func (a *Array) Shutdown() {
	for _, name := range a.repOrder {
		a.replicated[name].cluster.Stop()
	}
	for _, m := range a.members {
		m.Dev.Shutdown()
	}
}
