package array

import (
	"fmt"
	"time"

	"kvcsd/internal/client"
	"kvcsd/internal/sim"
)

// compactJob is one device-side compaction: one replica of one shard.
type compactJob struct {
	pt    *partition
	ri    int // replica index within pt
	specs []client.IndexSpec
	err   error
}

// Compact runs the fleet compaction scheduler over this keyspace: every
// replica of every shard is compacted, but admissions are grouped per device
// and throttled by the array's admission gate and stagger delay, so the
// fleet's background I/O ramps instead of all devices seeking at once.
func (k *Keyspace) Compact(p *sim.Proc) error {
	return k.a.compact(p, []*Keyspace{k}, nil)
}

// CompactWithIndexes compacts like Compact but declares secondary indexes
// upfront so each device extracts them during its compaction data pass.
// The specs are remembered for scatter-gather secondary queries.
func (k *Keyspace) CompactWithIndexes(p *sim.Proc, specs []client.IndexSpec) error {
	for _, s := range specs {
		k.rememberSpec(s)
	}
	return k.a.compact(p, []*Keyspace{k}, specs)
}

// CompactAll schedules compaction of every routed keyspace in one fleet
// pass — shards of different keyspaces on the same device share that
// device's admission slot.
func (a *Array) CompactAll(p *sim.Proc) error {
	kss := make([]*Keyspace, 0, len(a.ksOrder))
	for _, name := range a.ksOrder {
		kss = append(kss, a.keyspaces[name])
	}
	return a.compact(p, kss, nil)
}

// compact is the scheduler core. Jobs are grouped by device; one proc per
// device acquires the admission gate (FIFO, capacity
// MaxConcurrentCompactions), waits out the stagger interval, issues the
// device's compactions, and polls them to completion before releasing the
// slot. A shard succeeds when at least one replica compacted; replicas that
// failed retryably are marked unhealthy and left for reads to fail over
// past.
func (a *Array) compact(p *sim.Proc, kss []*Keyspace, specs []client.IndexSpec) error {
	// Group jobs by device, preserving (keyspace, partition, replica) order.
	perDev := make([][]*compactJob, a.opts.Devices)
	var shards []*partition
	jobsByPart := make(map[*partition][]*compactJob)
	for _, k := range kss {
		for _, pt := range k.parts {
			shards = append(shards, pt)
			for _, ri := range a.healthyReplicas(pt) {
				job := &compactJob{pt: pt, ri: ri, specs: specs}
				dev := pt.replicas[ri]
				perDev[dev] = append(perDev[dev], job)
				jobsByPart[pt] = append(jobsByPart[pt], job)
			}
		}
	}
	procs := make([]*sim.Proc, 0, a.opts.Devices)
	for dev := range perDev {
		jobs := perDev[dev]
		if len(jobs) == 0 {
			continue
		}
		procs = append(procs, a.env.Go(fmt.Sprintf("compact-d%d", dev), func(q *sim.Proc) {
			a.runDeviceCompactions(q, jobs)
		}))
	}
	p.Join(procs...)
	// Fold per shard: >= 1 replica compacted means the shard is compacted.
	for _, pt := range shards {
		jobs := jobsByPart[pt]
		errs := make([]error, len(jobs))
		devs := make([]int, len(jobs))
		for i, j := range jobs {
			errs[i] = j.err
			devs[i] = pt.replicas[j.ri]
		}
		folded := &partition{name: pt.name, replicas: devs}
		if err := a.writeOutcome(folded, errs); err != nil {
			return err
		}
	}
	return nil
}

// runDeviceCompactions admits one device into the compaction window and
// drives its jobs: issue every compaction (the device acks immediately and
// compacts asynchronously), then poll each to completion.
func (a *Array) runDeviceCompactions(q *sim.Proc, jobs []*compactJob) {
	q.Acquire(a.gate)
	defer q.Release(a.gate)
	// Stagger successive admissions so background I/O ramps across the fleet.
	if a.opts.CompactionStagger > 0 {
		if a.admits > 0 {
			next := a.lastAdmit + sim.Time(a.opts.CompactionStagger)
			if q.Now() < next {
				q.SleepUntil(next)
			}
		}
		a.admits++
		a.lastAdmit = q.Now()
	}
	// Occupancy-aware stagger: beyond the fixed delay, hold this admission
	// until the previously admitted device's compaction pipelines have
	// drained their buffered chunks — admission by live backpressure.
	prev := a.lastJobs
	a.lastJobs = jobs
	a.drainPipelines(q, prev)
	if a.gCompactRun != nil {
		a.gCompactRun.Add(1)
		defer a.gCompactRun.Add(-1)
	}
	for _, j := range jobs {
		h := j.pt.handles[j.ri]
		if len(j.specs) > 0 {
			j.err = h.CompactWithIndexes(q, j.specs)
		} else {
			j.err = h.Compact(q)
		}
	}
	for _, j := range jobs {
		if j.err != nil {
			continue
		}
		j.err = j.pt.handles[j.ri].WaitCompacted(q)
	}
	// Lifetime-aware placement rides the compaction window: once this
	// device's compactions settle, run one cold-placement sweep on it.
	// Advisory — devices without a cold tier report zero moves.
	dev := jobs[0].pt.replicas[jobs[0].ri]
	if moved, err := a.members[dev].Client.MigrateCold(q); err == nil && a.gColdMoves != nil {
		a.gColdMoves.Add(float64(moved))
	}
}

// drainPipelines polls the previous admission's compaction progress until
// every pipeline's occupancy reaches zero (bounded, advisory: errors or a
// stuck pipeline stop the wait after the iteration cap).
func (a *Array) drainPipelines(q *sim.Proc, prev []*compactJob) {
	for iter := 0; iter < 256; iter++ {
		occ := 0
		for _, j := range prev {
			pr, _, err := j.pt.handles[j.ri].CompactionProgress(q)
			if err != nil {
				return
			}
			occ += int(pr.Occupancy)
		}
		if occ == 0 {
			return
		}
		q.Sleep(time.Millisecond)
	}
}

// CompactDone polls every shard once and reports whether compaction has
// completed on all healthy replicas — the non-blocking counterpart of
// WaitCompacted, used by status RPCs that must not park the caller.
func (k *Keyspace) CompactDone(p *sim.Proc) (bool, error) {
	all := true
	for _, pt := range k.parts {
		pt := pt
		if err := k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
			done, err := h.CompactDone(q)
			if err != nil {
				return err
			}
			if !done {
				all = false
			}
			return nil
		}); err != nil {
			return false, err
		}
	}
	return all, nil
}

// WaitCompacted polls until every shard reports compaction complete on the
// healthy replicas (used after an async Compact issued elsewhere).
func (k *Keyspace) WaitCompacted(p *sim.Proc) error {
	for _, pt := range k.parts {
		pt := pt
		if err := k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
			return h.WaitCompacted(q)
		}); err != nil {
			return err
		}
	}
	return nil
}
