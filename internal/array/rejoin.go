// Hinted handoff: writes addressed to a down replica are recorded on the
// router and replayed when the device rejoins after RestartDevice, so a
// power-cut replica catches up on everything it missed before it serves reads
// again. Hints capture the logical op (put / delete, single or bulk) in issue
// order; replay streams them through the recovered member's own client and
// syncs, making the caught-up state durable before the member is marked up.

package array

import (
	"kvcsd/internal/client"
	"kvcsd/internal/sim"
)

// hintOp is the logical operation a hint replays.
type hintOp uint8

const (
	hintPut hintOp = iota
	hintDelete
	hintBulkPut
	hintBulkDelete
)

// hint is one missed write for one down replica.
type hint struct {
	h   *client.Keyspace // the down member's handle for the partition
	op  hintOp
	key []byte
	val []byte
}

// hintDown records op for every down replica of pt. Keys and values are
// copied: callers may reuse their buffers.
func (a *Array) hintDown(pt *partition, op hintOp, key, val []byte) {
	for ri, dev := range pt.replicas {
		if a.members[dev].Healthy() {
			continue
		}
		h := hint{h: pt.handles[ri], op: op, key: append([]byte(nil), key...)}
		if val != nil {
			h.val = append([]byte(nil), val...)
		}
		a.hints[dev] = append(a.hints[dev], h)
	}
}

// HintedWrites returns how many writes are queued for a down device.
func (a *Array) HintedWrites(id int) int { return len(a.hints[id]) }

// replayHints streams a rejoining device's missed writes through its client
// in original issue order, then flushes and syncs every touched keyspace so
// the caught-up state is durable before the member serves reads.
func (a *Array) replayHints(p *sim.Proc, id int) error {
	hints := a.hints[id]
	if len(hints) == 0 {
		return nil
	}
	delete(a.hints, id)
	var order []*client.Keyspace
	touched := make(map[*client.Keyspace]bool)
	for _, h := range hints {
		var err error
		switch h.op {
		case hintPut:
			err = h.h.Put(p, h.key, h.val)
		case hintDelete:
			err = h.h.Delete(p, h.key)
		case hintBulkPut:
			err = h.h.BulkPut(p, h.key, h.val)
		case hintBulkDelete:
			err = h.h.BulkDelete(p, h.key)
		}
		if err != nil {
			return err
		}
		if !touched[h.h] {
			touched[h.h] = true
			order = append(order, h.h)
		}
	}
	for _, h := range order {
		if err := h.Flush(p); err != nil {
			return err
		}
		if err := h.Sync(p); err != nil {
			return err
		}
	}
	return nil
}
