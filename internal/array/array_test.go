package array

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"kvcsd/internal/client"
	"kvcsd/internal/keyenc"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
)

// run executes fn as the master proc of a fresh simulation and fails the
// test on error.
func run(t *testing.T, env *sim.Env, fn func(p *sim.Proc) error) {
	t.Helper()
	if err := runMaster(env, fn); err != nil {
		t.Fatalf("simulation: %v", err)
	}
}

// --- Ring placement -------------------------------------------------------

func TestRingPlacementDeterministic(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta", "vpic-ts0", "vpic-ts1"}
	r1 := NewRing(7, 8, 0)
	r2 := NewRing(7, 8, 0)
	for _, n := range names {
		a, b := r1.Owners(n, 3), r2.Owners(n, 3)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("same seed, different owners for %q: %v vs %v", n, a, b)
		}
		if len(a) != 3 {
			t.Fatalf("wanted 3 owners for %q, got %v", n, a)
		}
		seen := map[int]bool{}
		for _, d := range a {
			if seen[d] {
				t.Fatalf("duplicate owner for %q: %v", n, a)
			}
			seen[d] = true
		}
	}
	// A different seed must move at least one placement.
	r3 := NewRing(8, 8, 0)
	moved := false
	for _, n := range names {
		if fmt.Sprint(r1.Owners(n, 3)) != fmt.Sprint(r3.Owners(n, 3)) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("seed change did not move any placement")
	}
	// Replica clamp.
	if got := len(NewRing(1, 2, 0).Owners("x", 5)); got != 2 {
		t.Fatalf("owners not clamped to device count: %d", got)
	}
}

// TestShardMapDeterministic builds the same range-sharded keyspace in two
// independent simulations and requires identical shard maps.
func TestShardMapDeterministic(t *testing.T) {
	build := func() []string {
		env := sim.NewEnv()
		opts := DefaultOptions()
		opts.Seed = 42
		a := New(env, opts)
		var sm []string
		run(t, env, func(p *sim.Proc) error {
			ks, err := a.CreateRangeSharded(p, "big", 8)
			if err != nil {
				return err
			}
			sm = ks.ShardMap()
			a.Shutdown()
			return nil
		})
		return sm
	}
	m1, m2 := build(), build()
	if fmt.Sprint(m1) != fmt.Sprint(m2) {
		t.Fatalf("shard maps differ across runs:\n%v\n%v", m1, m2)
	}
	if len(m1) != 8 {
		t.Fatalf("wanted 8 partitions, got %d", len(m1))
	}
}

// --- Scatter-gather range queries -----------------------------------------

func TestScatterGatherOrderedMerge(t *testing.T) {
	env := sim.NewEnv()
	opts := DefaultOptions()
	opts.Replicas = 1
	a := New(env, opts)
	const keys = 512
	run(t, env, func(p *sim.Proc) error {
		ks, err := a.CreateRangeSharded(p, "scan", 4)
		if err != nil {
			return err
		}
		for i := 0; i < keys; i++ {
			if err := ks.BulkPut(p, scaleKey(1, i), scaleValue(1, i, 64)); err != nil {
				return err
			}
		}
		if err := ks.Flush(p); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		// Every shard should hold a slice of a uniform key population.
		nonEmpty := 0
		for pi := range ks.parts {
			pairs, err := ks.parts[pi].handles[0].Scan(p, nil, nil, 0)
			if err != nil {
				return err
			}
			if len(pairs) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < 3 {
			t.Errorf("wanted >= 3 non-empty shards, got %d", nonEmpty)
		}
		got, err := ks.Scan(p, nil, nil, 0)
		if err != nil {
			return err
		}
		if len(got) != keys {
			t.Errorf("scan returned %d pairs, want %d", len(got), keys)
		}
		for i := 1; i < len(got); i++ {
			if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
				t.Fatalf("scan not strictly ordered at %d: %x >= %x", i, got[i-1].Key, got[i].Key)
			}
		}
		// Limited scan returns the global (not per-shard) smallest keys.
		top, err := ks.Scan(p, nil, nil, 10)
		if err != nil {
			return err
		}
		if len(top) != 10 {
			t.Fatalf("limited scan returned %d pairs", len(top))
		}
		for i := range top {
			if !bytes.Equal(top[i].Key, got[i].Key) {
				t.Fatalf("limited scan diverges from full scan at %d", i)
			}
		}
		a.Shutdown()
		return nil
	})
}

func TestMergeStreams(t *testing.T) {
	mk := func(ks ...byte) []nvme.KVPair {
		out := make([]nvme.KVPair, len(ks))
		for i, k := range ks {
			out[i] = nvme.KVPair{Key: []byte{k}}
		}
		return out
	}
	less := func(a, b nvme.KVPair) bool { return bytes.Compare(a.Key, b.Key) < 0 }
	got := mergeStreams([][]nvme.KVPair{mk(1, 4, 7), mk(2, 5), mk(0, 3, 6, 8)}, 0, less)
	want := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("merged %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Key[0] != w {
			t.Fatalf("merge order wrong at %d: %d != %d", i, got[i].Key[0], w)
		}
	}
	if n := len(mergeStreams([][]nvme.KVPair{mk(1, 4), mk(2)}, 2, less)); n != 2 {
		t.Fatalf("limit not applied: %d", n)
	}
}

// --- Replication and failover ---------------------------------------------

func TestReplicaFailoverOnInjectedFault(t *testing.T) {
	env := sim.NewEnv()
	opts := DefaultOptions()
	opts.Replicas = 2
	opts.ReadPreference = ReadPrimary
	opts.FailureThreshold = 1
	a := New(env, opts)
	const keys = 64
	run(t, env, func(p *sim.Proc) error {
		ks, err := a.CreateKeyspace(p, "repl")
		if err != nil {
			return err
		}
		primary := ks.Replicas(0)[0]
		for i := 0; i < keys; i++ {
			if err := ks.BulkPut(p, scaleKey(3, i), scaleValue(3, i, 32)); err != nil {
				return err
			}
		}
		if err := ks.Flush(p); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		// Sanity read before the fault.
		if _, ok, err := ks.Get(p, scaleKey(3, 0)); err != nil || !ok {
			return fmt.Errorf("pre-fault get: ok=%v err=%v", ok, err)
		}
		// Break the primary's media for the next zone read. The read must
		// fail over to the replica and still return the value.
		a.Member(primary).Dev.SSD().InjectFault("zone-read", -1, 1)
		val, ok, err := ks.Get(p, scaleKey(3, 1))
		if err != nil {
			return fmt.Errorf("failover get: %v", err)
		}
		if !ok || !bytes.Equal(val, scaleValue(3, 1, 32)) {
			t.Errorf("failover get returned wrong value (ok=%v)", ok)
		}
		if !a.Member(primary).Healthy() {
			// threshold 1: the failed primary is now marked down.
		} else {
			t.Errorf("primary %d still healthy after injected fault", primary)
		}
		// Subsequent reads skip the down primary entirely — no re-arm needed.
		for i := 0; i < keys; i++ {
			v, ok, err := ks.Get(p, scaleKey(3, i))
			if err != nil || !ok || !bytes.Equal(v, scaleValue(3, i, 32)) {
				return fmt.Errorf("post-failover get %d: ok=%v err=%v", i, ok, err)
			}
		}
		// A successful read against the primary revives it.
		a.MarkUp(primary)
		if !a.Member(primary).Healthy() {
			t.Error("MarkUp did not revive the primary")
		}
		a.Shutdown()
		return nil
	})
}

// TestFaultIsolation is the 4-device isolation check: a media fault on one
// member must fail reads over to its replica and leave the other devices
// healthy and serving.
func TestFaultIsolation(t *testing.T) {
	env := sim.NewEnv()
	opts := DefaultOptions() // 4 devices, 2 replicas
	opts.ReadPreference = ReadPrimary
	opts.FailureThreshold = 1
	a := New(env, opts)
	const keys = 256
	run(t, env, func(p *sim.Proc) error {
		ks, err := a.CreateRangeSharded(p, "iso", 4)
		if err != nil {
			return err
		}
		for i := 0; i < keys; i++ {
			if err := ks.BulkPut(p, scaleKey(9, i), scaleValue(9, i, 48)); err != nil {
				return err
			}
		}
		if err := ks.Flush(p); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		// Fault every future zone read on device 0 (enough for the whole
		// read phase: one arm per read, re-armed each time it fires).
		victim := 0
		for i := 0; i < keys; i++ {
			a.Member(victim).Dev.SSD().InjectFault("zone-read", -1, 1)
			v, ok, err := ks.Get(p, scaleKey(9, i))
			if err != nil || !ok || !bytes.Equal(v, scaleValue(9, i, 48)) {
				return fmt.Errorf("get %d during device-%d fault: ok=%v err=%v", i, victim, ok, err)
			}
		}
		for _, h := range a.Health() {
			if h.ID == victim {
				if !h.Down {
					t.Errorf("victim device %d not marked down", victim)
				}
				continue
			}
			if h.Down || h.Failures != 0 {
				t.Errorf("device %d disturbed by device %d fault: %+v", h.ID, victim, h)
			}
		}
		a.Shutdown()
		return nil
	})
}

// --- Determinism of the scaling bench -------------------------------------

func TestScalingRunDeterministic(t *testing.T) {
	cfg := DefaultScalingConfig()
	cfg.Devices = 4
	cfg.Replicas = 2
	cfg.TotalKeys = 2048
	cfg.Queries = 256
	cfg.Trace = true
	cfg.Metrics = true
	capture := func() (string, string, *ScalingResult) {
		res, err := RunScaling(cfg)
		if err != nil {
			t.Fatalf("RunScaling: %v", err)
		}
		var trace bytes.Buffer
		if err := res.Tracer.WriteChromeTrace(&trace); err != nil {
			t.Fatalf("trace export: %v", err)
		}
		var reg bytes.Buffer
		if err := res.Registry.Dump(&reg); err != nil {
			t.Fatalf("registry dump: %v", err)
		}
		return trace.String(), reg.String(), res
	}
	t1, r1, res1 := capture()
	t2, r2, res2 := capture()
	if t1 != t2 {
		t.Fatal("Chrome traces differ between identical runs")
	}
	if r1 != r2 {
		t.Fatal("registry dumps differ between identical runs")
	}
	if res1.InsertTime != res2.InsertTime || res1.QueryTime != res2.QueryTime {
		t.Fatalf("virtual times differ: %v/%v vs %v/%v",
			res1.InsertTime, res1.QueryTime, res2.InsertTime, res2.QueryTime)
	}
	if len(t1) == 0 || res1.GetP99 <= 0 {
		t.Fatal("scaling run produced no trace or latency data")
	}
	if fmt.Sprint(res1.ShardMap) != fmt.Sprint(res2.ShardMap) {
		t.Fatal("shard maps differ between identical runs")
	}
}

// --- Secondary-index scatter-gather ---------------------------------------

func TestSecondaryQueryMergedAcrossShards(t *testing.T) {
	env := sim.NewEnv()
	opts := DefaultOptions()
	opts.Replicas = 1
	a := New(env, opts)
	const keys = 512
	mkVal := func(i int) []byte {
		v := make([]byte, 32)
		binary.LittleEndian.PutUint32(v, uint32(i%97))
		return v
	}
	run(t, env, func(p *sim.Proc) error {
		ks, err := a.CreateRangeSharded(p, "sec", 4)
		if err != nil {
			return err
		}
		for i := 0; i < keys; i++ {
			if err := ks.BulkPut(p, scaleKey(11, i), mkVal(i)); err != nil {
				return err
			}
		}
		if err := ks.Flush(p); err != nil {
			return err
		}
		spec := client.IndexSpec{Name: "f", Offset: 0, Length: 4, Type: keyenc.TypeUint32}
		if err := ks.CompactWithIndexes(p, []client.IndexSpec{spec}); err != nil {
			return err
		}
		if err := ks.WaitIndexBuilt(p, "f"); err != nil {
			return err
		}
		got, err := ks.QuerySecondaryRange(p, "f", nil, nil, 0)
		if err != nil {
			return err
		}
		if len(got) != keys {
			t.Errorf("secondary full range returned %d pairs, want %d", len(got), keys)
		}
		// Ordered by (normalized secondary, primary) across all shards.
		for i := 1; i < len(got); i++ {
			sa, _ := spec.Type.Normalize(got[i-1].Value[:4])
			sb, _ := spec.Type.Normalize(got[i].Value[:4])
			if c := bytes.Compare(sa, sb); c > 0 ||
				(c == 0 && bytes.Compare(got[i-1].Key, got[i].Key) >= 0) {
				t.Fatalf("secondary merge out of order at %d", i)
			}
		}
		a.Shutdown()
		return nil
	})
}

// --- Replication visibility -----------------------------------------------

// TestReplicatedWriteLandsOnAllReplicas checks the write fan-out: after a
// replicated load, each replica of a shard holds every pair of that shard.
func TestReplicatedWriteLandsOnAllReplicas(t *testing.T) {
	env := sim.NewEnv()
	opts := DefaultOptions()
	opts.Devices = 3
	opts.Replicas = 2
	a := New(env, opts)
	run(t, env, func(p *sim.Proc) error {
		ks, err := a.CreateKeyspace(p, "dup")
		if err != nil {
			return err
		}
		const keys = 128
		for i := 0; i < keys; i++ {
			if err := ks.BulkPut(p, scaleKey(5, i), scaleValue(5, i, 32)); err != nil {
				return err
			}
		}
		if err := ks.Flush(p); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		pt := ks.parts[0]
		if len(pt.replicas) != 2 {
			t.Fatalf("wanted 2 replicas, got %v", pt.replicas)
		}
		for ri, h := range pt.handles {
			info, err := h.Info(p)
			if err != nil {
				return err
			}
			if info.Pairs != keys {
				t.Errorf("replica %d (dev %d) holds %d pairs, want %d",
					ri, pt.replicas[ri], info.Pairs, keys)
			}
		}
		a.Shutdown()
		return nil
	})
}
