package array

import (
	"fmt"
	"testing"

	"kvcsd/internal/sim"
	"kvcsd/internal/wire"
)

func runReplicated(t *testing.T, opts Options, fn func(p *sim.Proc, a *Array)) {
	t.Helper()
	env := sim.NewEnv()
	a := New(env, opts)
	env.Go("main", func(p *sim.Proc) {
		defer a.Shutdown()
		fn(p, a)
	})
	env.Run()
}

func TestReplicatedKeyspacePutGet(t *testing.T) {
	opts := DefaultOptions()
	runReplicated(t, opts, func(p *sim.Proc, a *Array) {
		k, err := a.CreateReplicated(p, "orders", 2)
		if err != nil {
			t.Fatalf("CreateReplicated: %v", err)
		}
		for i := 0; i < 40; i++ {
			key := []byte(fmt.Sprintf("k%03d", i))
			if err := k.Put(p, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		if err := k.Delete(p, []byte("k003")); err != nil {
			t.Fatalf("delete: %v", err)
		}
		v, found, err := k.Get(p, []byte("k007"))
		if err != nil || !found || string(v) != "v7" {
			t.Fatalf("get k007 = %q found=%v err=%v", v, found, err)
		}
		if _, found, err := k.Get(p, []byte("k003")); err != nil || found {
			t.Fatalf("deleted key found=%v err=%v", found, err)
		}
		// Members come from the placement ring and every shard has a leader.
		for s := 0; s < k.Shards(); s++ {
			want := a.Ring().Owners(groupName("orders", s), 3)
			got := k.Members(s)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("shard %d members %v, want ring owners %v", s, got, want)
			}
			if ld := k.Leader(s); !containsInt(want, ld) {
				t.Fatalf("shard %d leader %d not a member of %v", s, ld, want)
			}
		}
	})
}

func containsInt(v []int, x int) bool {
	for _, e := range v {
		if e == x {
			return true
		}
	}
	return false
}

func TestReplicatedKeyspaceSurvivesDevicePowerCut(t *testing.T) {
	opts := DefaultOptions()
	runReplicated(t, opts, func(p *sim.Proc, a *Array) {
		k, err := a.CreateReplicated(p, "orders", 1)
		if err != nil {
			t.Fatalf("CreateReplicated: %v", err)
		}
		for i := 0; i < 20; i++ {
			key := []byte(fmt.Sprintf("k%03d", i))
			if err := k.Put(p, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		leader := k.Leader(0)
		a.PowerCut(p, leader)
		// Writes and linearizable reads keep working against the surviving
		// quorum while the old leader is dark.
		if err := k.Put(p, []byte("k099"), []byte("after-cut")); err != nil {
			t.Fatalf("put during outage: %v", err)
		}
		v, found, err := k.Get(p, []byte("k005"))
		if err != nil || !found || string(v) != "v5" {
			t.Fatalf("get during outage = %q found=%v err=%v", v, found, err)
		}
		if nl := k.Leader(0); nl == leader {
			t.Fatalf("leadership did not move off the power-cut device %d", leader)
		}
		if _, err := a.RestartDevice(p, leader); err != nil {
			t.Fatalf("RestartDevice: %v", err)
		}
		v, found, err = k.Get(p, []byte("k099"))
		if err != nil || !found || string(v) != "after-cut" {
			t.Fatalf("get after rejoin = %q found=%v err=%v", v, found, err)
		}
	})
}

func TestReplicatedKeyspaceMoveShard(t *testing.T) {
	opts := DefaultOptions()
	runReplicated(t, opts, func(p *sim.Proc, a *Array) {
		k, err := a.CreateReplicated(p, "orders", 1)
		if err != nil {
			t.Fatalf("CreateReplicated: %v", err)
		}
		for i := 0; i < 30; i++ {
			key := []byte(fmt.Sprintf("k%03d", i))
			if err := k.Put(p, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		members := k.Members(0)
		to := -1
		for d := 0; d < opts.Devices; d++ {
			if !containsInt(members, d) {
				to = d
				break
			}
		}
		if to < 0 {
			t.Skip("no free device to move to")
		}
		from := members[0]
		epoch := k.Epoch(0)
		if err := k.MoveShard(p, 0, from, to); err != nil {
			t.Fatalf("MoveShard: %v", err)
		}
		after := k.Members(0)
		if containsInt(after, from) || !containsInt(after, to) {
			t.Fatalf("ownership after move = %v, want %d->%d", after, from, to)
		}
		if k.Epoch(0) <= epoch {
			t.Fatalf("epoch did not advance: %d -> %d", epoch, k.Epoch(0))
		}
		// Data survived the move, including on the new member.
		v, found, err := k.Get(p, []byte("k011"))
		if err != nil || !found || string(v) != "v11" {
			t.Fatalf("get after move = %q found=%v err=%v", v, found, err)
		}
	})
}

func TestReplicatedKeyspaceConcurrentProcs(t *testing.T) {
	// Regression: the server gateway runs pipelined requests as overlapping
	// sim procs against one ReplicatedKeyspace handle. Each in-flight op must
	// get its own replica session — sharing one (client, seq) stream across
	// concurrent ops lets a retried low-seq write be falsely deduplicated by
	// a concurrent higher-seq write and acknowledged without applying.
	opts := DefaultOptions()
	runReplicated(t, opts, func(p *sim.Proc, a *Array) {
		k, err := a.CreateReplicated(p, "orders", 1)
		if err != nil {
			t.Fatalf("CreateReplicated: %v", err)
		}
		env := p.Env()
		var procs []*sim.Proc
		for w := 0; w < 8; w++ {
			w := w
			procs = append(procs, env.Go("writer", func(q *sim.Proc) {
				for j := 0; j < 5; j++ {
					key := []byte(fmt.Sprintf("c%02d-%02d", w, j))
					if err := k.Put(q, key, key); err != nil {
						t.Errorf("concurrent put %s: %v", key, err)
					}
				}
			}))
		}
		p.Join(procs...)
		if k.nextClient < 2 {
			t.Fatalf("concurrent ops shared one session (nextClient=%d)", k.nextClient)
		}
		for w := 0; w < 8; w++ {
			for j := 0; j < 5; j++ {
				key := []byte(fmt.Sprintf("c%02d-%02d", w, j))
				v, found, err := k.Get(p, key)
				if err != nil || !found || string(v) != string(key) {
					t.Fatalf("get %s = %q found=%v err=%v", key, v, found, err)
				}
			}
		}
	})
}

func TestArrayRingTable(t *testing.T) {
	opts := DefaultOptions()
	runReplicated(t, opts, func(p *sim.Proc, a *Array) {
		if _, err := a.CreateRangeSharded(p, "plain", 2); err != nil {
			t.Fatalf("CreateRangeSharded: %v", err)
		}
		k, err := a.CreateReplicated(p, "orders", 2)
		if err != nil {
			t.Fatalf("CreateReplicated: %v", err)
		}
		ring := a.RingTable()
		if len(ring) != 4 {
			t.Fatalf("ring entries = %d, want 4 (2 plain + 2 replicated)", len(ring))
		}
		byName := map[string][]wire.RingEntry{}
		for _, e := range ring {
			byName[e.Keyspace] = append(byName[e.Keyspace], e)
		}
		for _, e := range byName["plain"] {
			if e.Leader != -1 || e.Epoch != 1 {
				t.Fatalf("plain entry has consensus fields set: %+v", e)
			}
		}
		for _, e := range byName["orders"] {
			if e.Leader < 0 {
				t.Fatalf("replicated entry missing leader: %+v", e)
			}
			if int(e.Leader) != k.Leader(int(e.Shard)) {
				t.Fatalf("ring leader %d != cluster leader %d", e.Leader, k.Leader(int(e.Shard)))
			}
		}
		// Duplicate names are rejected across both keyspace families.
		if _, err := a.CreateReplicated(p, "plain", 1); err == nil {
			t.Fatalf("replicated over plain name must fail")
		}
		if _, err := a.CreateKeyspace(p, "orders"); err == nil {
			t.Fatalf("plain over replicated name must fail")
		}
	})
}
