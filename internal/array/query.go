package array

import (
	"bytes"
	"fmt"

	"kvcsd/internal/client"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
)

// --- Scatter-gather primary range queries ---------------------------------

// Scan returns pairs with lo <= key < hi in key order, capped at limit
// (0 = all). The query scatters to every partition whose key range overlaps
// [lo, hi) — in parallel, one stream per shard — and gathers the per-shard
// sorted streams with a k-way merge, so the caller sees one ordered stream
// regardless of how the keyspace is sharded.
func (k *Keyspace) Scan(p *sim.Proc, lo, hi []byte, limit int) ([]nvme.KVPair, error) {
	parts := k.overlapping(lo, hi)
	streams, err := k.scatter(p, parts, func(q *sim.Proc, h *client.Keyspace) ([]nvme.KVPair, error) {
		return h.Scan(q, lo, hi, limit)
	})
	if err != nil {
		return nil, err
	}
	return mergeStreams(streams, limit, func(a, b nvme.KVPair) bool {
		return bytes.Compare(a.Key, b.Key) < 0
	}), nil
}

// overlapping returns the partitions whose prefix range can contain keys in
// [lo, hi), in partition (key) order. The prefix test is conservative for
// truncated bounds: an extra shard only returns an empty stream.
func (k *Keyspace) overlapping(lo, hi []byte) []*partition {
	if !k.split {
		return k.parts
	}
	loPfx := uint64(0)
	if len(lo) > 0 {
		loPfx = keyPrefix(lo)
	}
	hiPfx := ^uint64(0)
	if len(hi) > 0 {
		hiPfx = keyPrefix(hi)
	}
	out := make([]*partition, 0, len(k.parts))
	for _, pt := range k.parts {
		if pt.hi >= loPfx && pt.lo <= hiPfx {
			out = append(out, pt)
		}
	}
	return out
}

// scatter runs fn against every listed partition concurrently (each with
// replica failover) and returns the per-partition result streams in
// partition order. Read order is drawn in the parent before spawning so the
// round-robin cursor advances deterministically.
func (k *Keyspace) scatter(p *sim.Proc, parts []*partition, fn func(q *sim.Proc, h *client.Keyspace) ([]nvme.KVPair, error)) ([][]nvme.KVPair, error) {
	streams := make([][]nvme.KVPair, len(parts))
	errs := make([]error, len(parts))
	run := func(q *sim.Proc, i int) {
		_, err := k.readWithFailover(q, parts[i], func(q *sim.Proc, h *client.Keyspace) error {
			pairs, err := fn(q, h)
			if err != nil {
				return err
			}
			streams[i] = pairs
			return nil
		})
		errs[i] = err
	}
	if len(parts) == 1 {
		run(p, 0)
	} else {
		procs := make([]*sim.Proc, len(parts))
		for i := range parts {
			i := i
			procs[i] = k.a.env.Go(fmt.Sprintf("scatter-%s", parts[i].name), func(q *sim.Proc) {
				run(q, i)
			})
		}
		p.Join(procs...)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return streams, nil
}

// mergeStreams k-way merges sorted streams into one sorted stream, capped at
// limit (0 = all). Ties break toward the lower stream index, which is
// partition order — deterministic by construction.
func mergeStreams(streams [][]nvme.KVPair, limit int, less func(a, b nvme.KVPair) bool) []nvme.KVPair {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	if limit > 0 && limit < total {
		total = limit
	}
	out := make([]nvme.KVPair, 0, total)
	cursors := make([]int, len(streams))
	for len(out) < total {
		best := -1
		for i, s := range streams {
			if cursors[i] >= len(s) {
				continue
			}
			if best == -1 || less(s[cursors[i]], streams[best][cursors[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		out = append(out, streams[best][cursors[best]])
		cursors[best]++
	}
	return out
}

// --- Secondary indexes across shards --------------------------------------

// BuildSecondaryIndex declares and starts building a secondary index on
// every replica of every shard. The spec is remembered so scatter-gather
// secondary queries can re-derive each result's secondary key for the merge.
func (k *Keyspace) BuildSecondaryIndex(p *sim.Proc, spec client.IndexSpec) error {
	k.rememberSpec(spec)
	for _, pt := range k.parts {
		pt := pt
		if err := k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
			return h.BuildSecondaryIndex(q, spec)
		}); err != nil {
			return err
		}
	}
	return nil
}

// IndexBuilt polls every shard once and reports whether the named index is
// ready on all healthy replicas — the non-blocking counterpart of
// WaitIndexBuilt for status RPCs.
func (k *Keyspace) IndexBuilt(p *sim.Proc, name string) (bool, error) {
	all := true
	for _, pt := range k.parts {
		pt := pt
		if err := k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
			done, err := h.IndexBuilt(q, name)
			if err != nil {
				return err
			}
			if !done {
				all = false
			}
			return nil
		}); err != nil {
			return false, err
		}
	}
	return all, nil
}

// WaitIndexBuilt waits until the named index is ready on the healthy
// replicas of every shard. A replica that errors retryably is tolerated as
// long as one copy per shard finishes — reads fail over past the laggard.
func (k *Keyspace) WaitIndexBuilt(p *sim.Proc, name string) error {
	for _, pt := range k.parts {
		pt := pt
		if err := k.writeAll(p, pt, func(q *sim.Proc, h *client.Keyspace) error {
			return h.WaitIndexBuilt(q, name)
		}); err != nil {
			return err
		}
	}
	return nil
}

// rememberSpec records (or replaces) a declared index spec.
func (k *Keyspace) rememberSpec(spec client.IndexSpec) {
	for i, s := range k.specs {
		if s.Name == spec.Name {
			k.specs[i] = spec
			return
		}
	}
	k.specs = append(k.specs, spec)
}

// specFor returns the declared spec for an index name.
func (k *Keyspace) specFor(index string) (client.IndexSpec, bool) {
	for _, s := range k.specs {
		if s.Name == index {
			return s, true
		}
	}
	return client.IndexSpec{}, false
}

// secondaryKey re-derives a result pair's normalized secondary key from its
// value, exactly as the device-side extractor does, so shard streams ordered
// by secondary key can be merged host-side.
func secondaryKey(spec client.IndexSpec, pair nvme.KVPair) []byte {
	end := spec.Offset + spec.Length
	if spec.Offset < 0 || end > len(pair.Value) {
		return nil
	}
	norm, err := spec.Type.Normalize(pair.Value[spec.Offset:end])
	if err != nil {
		return nil
	}
	return norm
}

// QuerySecondaryRange returns pairs whose secondary key is in [lo, hi),
// ordered by (secondary key, primary key). A secondary index does not align
// with the primary key ranges, so the query scatters to every shard and
// merges by the re-derived secondary key.
func (k *Keyspace) QuerySecondaryRange(p *sim.Proc, index string, lo, hi []byte, limit int) ([]nvme.KVPair, error) {
	spec, ok := k.specFor(index)
	if !ok && len(k.parts) > 1 {
		return nil, fmt.Errorf("array: secondary index %q not declared through this router", index)
	}
	streams, err := k.scatter(p, k.parts, func(q *sim.Proc, h *client.Keyspace) ([]nvme.KVPair, error) {
		return h.QuerySecondaryRange(q, index, lo, hi, limit)
	})
	if err != nil {
		return nil, err
	}
	if len(streams) == 1 {
		return capPairs(streams[0], limit), nil
	}
	return mergeStreams(streams, limit, func(a, b nvme.KVPair) bool {
		sa, sb := secondaryKey(spec, a), secondaryKey(spec, b)
		if c := bytes.Compare(sa, sb); c != 0 {
			return c < 0
		}
		return bytes.Compare(a.Key, b.Key) < 0
	}), nil
}

// QuerySecondaryPoint returns pairs whose secondary key equals key, ordered
// by primary key across shards.
func (k *Keyspace) QuerySecondaryPoint(p *sim.Proc, index string, key []byte, limit int) ([]nvme.KVPair, error) {
	streams, err := k.scatter(p, k.parts, func(q *sim.Proc, h *client.Keyspace) ([]nvme.KVPair, error) {
		return h.QuerySecondaryPoint(q, index, key, limit)
	})
	if err != nil {
		return nil, err
	}
	if len(streams) == 1 {
		return capPairs(streams[0], limit), nil
	}
	return mergeStreams(streams, limit, func(a, b nvme.KVPair) bool {
		return bytes.Compare(a.Key, b.Key) < 0
	}), nil
}

// capPairs applies a result limit to a single already-sorted stream.
func capPairs(pairs []nvme.KVPair, limit int) []nvme.KVPair {
	if limit > 0 && len(pairs) > limit {
		return pairs[:limit]
	}
	return pairs
}
