package array

import (
	"bytes"
	"fmt"
	"testing"

	"kvcsd/internal/sim"
)

// TestPowerCutReplicaRejoins is the array-level crash-recovery acceptance
// path: in a 3-device replicated array, one replica loses power mid-service,
// reads degrade to the survivors without client-visible errors, and after
// RestartDevice the recovered replica rejoins and serves again.
func TestPowerCutReplicaRejoins(t *testing.T) {
	env := sim.NewEnv()
	opts := DefaultOptions()
	opts.Devices = 3
	opts.Replicas = 2
	opts.ReadPreference = ReadPrimary
	a := New(env, opts)
	const keys = 96
	run(t, env, func(p *sim.Proc) error {
		defer a.Shutdown()
		ks, err := a.CreateKeyspace(p, "pc")
		if err != nil {
			return err
		}
		for i := 0; i < keys; i++ {
			if err := ks.BulkPut(p, scaleKey(9, i), scaleValue(9, i, 48)); err != nil {
				return err
			}
		}
		if err := ks.Sync(p); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}

		// Cut power to the partition's primary replica.
		victim := ks.Replicas(0)[0]
		rep := a.PowerCut(p, victim)
		_ = rep // torn-byte details are device-level; here only routing matters
		if a.Member(victim).Healthy() {
			t.Errorf("victim %d still healthy after power cut", victim)
		}

		// Degraded reads: every get and a full scan must succeed against the
		// surviving replica with no client-visible error.
		for i := 0; i < keys; i++ {
			v, ok, err := ks.Get(p, scaleKey(9, i))
			if err != nil || !ok || !bytes.Equal(v, scaleValue(9, i, 48)) {
				return fmt.Errorf("degraded get %d: ok=%v err=%v", i, ok, err)
			}
		}
		if pairs, err := ks.Scan(p, nil, nil, 0); err != nil || len(pairs) != keys {
			return fmt.Errorf("degraded scan: %d pairs, err=%v", len(pairs), err)
		}

		// Restart: the replica recovers from its own media and rejoins.
		rrep, err := a.RestartDevice(p, victim)
		if err != nil {
			return fmt.Errorf("restart device %d: %v", victim, err)
		}
		if rrep == nil {
			return fmt.Errorf("restart returned no recovery report")
		}
		if !a.Member(victim).Healthy() {
			t.Errorf("victim %d not healthy after restart", victim)
		}

		// Post-rejoin, primary-preference reads route to the restarted device
		// again; gets and scans must all succeed with exact values.
		for i := 0; i < keys; i++ {
			v, ok, err := ks.Get(p, scaleKey(9, i))
			if err != nil || !ok || !bytes.Equal(v, scaleValue(9, i, 48)) {
				return fmt.Errorf("post-rejoin get %d: ok=%v err=%v", i, ok, err)
			}
		}
		if pairs, err := ks.Scan(p, nil, nil, 0); err != nil || len(pairs) != keys {
			return fmt.Errorf("post-rejoin scan: %d pairs, err=%v", len(pairs), err)
		}
		return nil
	})
}

// TestPowerCutDuringLoadRejoins cuts power while unsynced writes are still
// streaming to a replicated keyspace: the array keeps serving, and the
// restarted replica recovers exactly its durable prefix and rejoins.
func TestPowerCutDuringLoadRejoins(t *testing.T) {
	env := sim.NewEnv()
	opts := DefaultOptions()
	opts.Devices = 3
	opts.Replicas = 2
	a := New(env, opts)
	const keys = 120
	run(t, env, func(p *sim.Proc) error {
		defer a.Shutdown()
		ks, err := a.CreateKeyspace(p, "pc2")
		if err != nil {
			return err
		}
		victim := ks.Replicas(0)[0]
		for i := 0; i < keys; i++ {
			if err := ks.BulkPut(p, scaleKey(11, i), scaleValue(11, i, 48)); err != nil {
				return err
			}
			if i == keys/2 {
				a.PowerCut(p, victim)
			}
		}
		// Writes after the cut succeeded via the surviving replica and were
		// queued as hints for the dead one.
		if a.HintedWrites(victim) == 0 {
			return fmt.Errorf("no hints queued for the down replica")
		}
		// Restart replays the hints before the member rejoins.
		if _, err := a.RestartDevice(p, victim); err != nil {
			return fmt.Errorf("restart: %v", err)
		}
		if a.HintedWrites(victim) != 0 {
			return fmt.Errorf("hints not drained after rejoin")
		}
		if err := ks.Sync(p); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		for i := 0; i < keys; i++ {
			v, ok, err := ks.Get(p, scaleKey(11, i))
			if err != nil || !ok || !bytes.Equal(v, scaleValue(11, i, 48)) {
				return fmt.Errorf("get %d after rejoin: ok=%v err=%v", i, ok, err)
			}
		}
		return nil
	})
}
