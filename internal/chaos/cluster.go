package chaos

import (
	"fmt"
	"strings"
	"time"

	"kvcsd/internal/linearize"
	"kvcsd/internal/replica"
	"kvcsd/internal/sim"
)

// ClusterOptions configures a cluster-consistency campaign: many short
// seeded scenarios, each a fresh replica cluster under concurrent client
// load with one nemesis injection — a leader kill, a partition, or a
// resharding migration with a mid-stream power cut — followed by a
// linearizability check of the full operation history.
type ClusterOptions struct {
	// Seed derives every scenario's cluster seed, workload, and nemesis.
	Seed int64
	// Scenarios is the number of independent scenarios to run.
	Scenarios int
	// Nodes, Shards, ReplicationFactor shape each scenario's cluster.
	Nodes             int
	Shards            int
	ReplicationFactor int
	// Clients and OpsPerClient shape the concurrent workload.
	Clients      int
	OpsPerClient int
	// Keys is the size of the shared key space (contention knob).
	Keys int
	// RetryAttempts bounds client retries; keeping it low lets operations
	// racing a fault end ambiguously, which is the hard case for the checker.
	RetryAttempts int
	// UnsafeStaleReads runs every scenario with the deliberately broken
	// read path — the campaign's negative control MUST report violations.
	UnsafeStaleReads bool
}

// DefaultClusterOptions covers the acceptance campaign: >= 100 scenarios.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Seed:              1,
		Scenarios:         100,
		Nodes:             4,
		Shards:            2,
		ReplicationFactor: 3,
		Clients:           3,
		OpsPerClient:      12,
		Keys:              8,
		RetryAttempts:     6,
	}
}

// Nemesis kinds, chosen per scenario from the seed.
const (
	nemesisLeaderKill = iota
	nemesisPartition
	nemesisIsolate
	nemesisReshard
	nemesisBlackout
	nemesisKinds
)

var nemesisNames = [...]string{"leader-kill", "partition", "isolate", "reshard", "blackout"}

// ClusterScenario is the outcome of one scenario.
type ClusterScenario struct {
	Seed       int64
	Nemesis    string
	Ops        int
	Unknown    int
	Failed     int
	Elections  int64
	Frames     int64
	Keys       int
	States     int
	Violations []linearize.Violation
}

// ClusterResult is the campaign outcome.
type ClusterResult struct {
	Options   ClusterOptions
	Scenarios []ClusterScenario
	// Violations is the total violation count across all scenarios.
	Violations int
}

// Summary renders the campaign deterministically, one line per scenario.
func (r *ClusterResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster campaign seed=%d scenarios=%d violations=%d\n",
		r.Options.Seed, len(r.Scenarios), r.Violations)
	for i, s := range r.Scenarios {
		fmt.Fprintf(&b, "#%03d seed=%d %s ops=%d unknown=%d failed=%d elections=%d frames=%d keys=%d states=%d",
			i, s.Seed, s.Nemesis, s.Ops, s.Unknown, s.Failed, s.Elections, s.Frames, s.Keys, s.States)
		if n := len(s.Violations); n > 0 {
			fmt.Fprintf(&b, " VIOLATIONS=%d", n)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FirstViolation renders the first violation found, for failure messages.
func (r *ClusterResult) FirstViolation() string {
	for i, s := range r.Scenarios {
		if len(s.Violations) > 0 {
			return fmt.Sprintf("scenario #%d (seed=%d, %s):\n%s", i, s.Seed, s.Nemesis, s.Violations[0])
		}
	}
	return ""
}

// RunCluster executes the campaign. Every scenario is an independent
// simulation: concurrent clients issue put/get/delete against consensus
// shard groups while the nemesis kills leaders, partitions links, or
// power-cuts a device mid-migration; afterwards the recorded history is
// checked for linearizability.
func RunCluster(opts ClusterOptions) *ClusterResult {
	res := &ClusterResult{Options: opts}
	root := sim.NewRNG(opts.Seed)
	for i := 0; i < opts.Scenarios; i++ {
		seed := root.Int63()
		sc := runClusterScenario(opts, seed, i)
		res.Scenarios = append(res.Scenarios, sc)
		res.Violations += len(sc.Violations)
	}
	return res
}

func runClusterScenario(opts ClusterOptions, seed int64, index int) ClusterScenario {
	env := sim.NewEnv()
	c := replica.New(env, replica.Options{
		Nodes:             opts.Nodes,
		Shards:            opts.Shards,
		ReplicationFactor: opts.ReplicationFactor,
		Seed:              seed,
		RetryAttempts:     opts.RetryAttempts,
		UnsafeStaleReads:  opts.UnsafeStaleReads,
	})
	rec := linearize.NewRecorder(env)
	rng := sim.NewRNG(seed).Fork(0xC4A05)
	kind := rng.Intn(nemesisKinds)
	sc := ClusterScenario{Seed: seed, Nemesis: nemesisNames[kind]}

	env.Go("scenario", func(p *sim.Proc) {
		defer c.Stop()
		var clients []*sim.Proc
		for cl := 0; cl < opts.Clients; cl++ {
			id := uint64(cl + 1)
			crng := rng.Fork(int64(cl + 1))
			clients = append(clients, env.Go(fmt.Sprintf("client:%d", cl), func(cp *sim.Proc) {
				runClusterClient(cp, c, rec, opts, id, crng)
			}))
		}
		nemesis := env.Go("nemesis", func(np *sim.Proc) {
			runNemesis(np, c, opts, kind, rng.Fork(0x4E454D))
		})
		p.Join(clients...)
		p.Join(nemesis)
	})
	env.Run()

	history := rec.History()
	sc.Ops = len(history)
	for _, op := range history {
		switch op.Outcome {
		case linearize.OutcomeUnknown:
			sc.Unknown++
		case linearize.OutcomeFailed:
			sc.Failed++
		}
	}
	sc.Elections = c.Elections()
	sc.Frames = c.FramesSent()
	check := linearize.Check(history)
	sc.Keys = check.Keys
	sc.States = check.States
	sc.Violations = check.Violations
	return sc
}

// runClusterClient issues the recorded workload for one client.
func runClusterClient(p *sim.Proc, c *replica.Cluster, rec *linearize.Recorder,
	opts ClusterOptions, id uint64, rng *sim.RNG) {
	env := p.Env()
	session := c.Client(id)
	for i := 0; i < opts.OpsPerClient; i++ {
		p.Sleep(sim.Duration(rng.Intn(int(2 * time.Millisecond))))
		k := rng.Intn(opts.Keys)
		shard := k % opts.Shards
		key := fmt.Sprintf("key-%02d", k)
		switch draw := rng.Intn(100); {
		case draw < 45: // put
			value := fmt.Sprintf("c%d-%d", id, i)
			h := rec.Invoke(id, linearize.OpPut, key, value)
			err := session.Put(p, shard, []byte(key), []byte(value))
			recordWrite(env, h, err)
		case draw < 60: // delete
			h := rec.Invoke(id, linearize.OpDelete, key, "")
			err := session.Delete(p, shard, []byte(key))
			recordWrite(env, h, err)
		default: // get
			h := rec.Invoke(id, linearize.OpGet, key, "")
			v, found, err := session.Get(p, shard, []byte(key))
			switch {
			case err == nil:
				h.OK(env, found, string(v))
			case replica.Definite(err):
				h.Failed(env)
			default:
				h.Unknown(env)
			}
		}
	}
}

func recordWrite(env *sim.Env, h *linearize.Handle, err error) {
	switch {
	case err == nil:
		h.OK(env, false, "")
	case replica.Definite(err):
		h.Failed(env)
	default:
		h.Unknown(env)
	}
}

// runNemesis injects one fault sequence, then repairs everything it broke so
// the scenario always ends with a functioning cluster.
func runNemesis(p *sim.Proc, c *replica.Cluster, opts ClusterOptions, kind int, rng *sim.RNG) {
	p.Sleep(sim.Duration(1+rng.Intn(4)) * time.Millisecond)
	shard := rng.Intn(opts.Shards)
	// Strike a real leader: before the first election the cluster has nothing
	// worth breaking, and clients are still waiting for it too.
	leader, err := c.WaitLeader(p, shard)
	if err != nil {
		return
	}
	switch kind {
	case nemesisLeaderKill:
		victim := leader
		c.Crash(victim)
		p.Sleep(sim.Duration(5+rng.Intn(10)) * time.Millisecond)
		c.Restart(p, victim)

	case nemesisPartition:
		a := rng.Intn(opts.Nodes)
		b := (a + 1 + rng.Intn(opts.Nodes-1)) % opts.Nodes
		c.Partition(a, b)
		p.Sleep(sim.Duration(5+rng.Intn(10)) * time.Millisecond)
		c.Heal()

	case nemesisIsolate:
		c.Isolate(leader)
		p.Sleep(sim.Duration(5+rng.Intn(10)) * time.Millisecond)
		c.Heal()

	case nemesisReshard:
		members := c.Members(shard)
		to := -1
		for n := 0; n < opts.Nodes; n++ {
			if !containsNode(members, n) {
				to = n
				break
			}
		}
		if to < 0 {
			// Fully replicated everywhere: degrade to a leader kill.
			victim := c.Leader(shard)
			if victim < 0 {
				victim = 0
			}
			c.Crash(victim)
			p.Sleep(sim.Duration(5+rng.Intn(10)) * time.Millisecond)
			c.Restart(p, victim)
			return
		}
		from := members[rng.Intn(len(members))]
		// Power-cut the migration target (or an old owner) mid-stream.
		cutMigration(p, c, rng, from, to, shard)

	case nemesisBlackout:
		// Take out a quorum: isolate the leader plus one more member for
		// longer than a client's retry budget. Proposals appended at the
		// isolated leader before its CheckQuorum step-down cannot commit or
		// abort until the heal, so clients exhaust their retries and must
		// record those writes as ambiguous — the hard case for the checker.
		members := c.Members(shard)
		other := leader
		for _, m := range members {
			if m != leader {
				other = m
				break
			}
		}
		c.Isolate(leader)
		if other != leader {
			c.Isolate(other)
		}
		p.Sleep(sim.Duration(30+rng.Intn(15)) * time.Millisecond)
		c.Heal()
	}
}

// cutMigration runs the mid-stream power cut for the reshard nemesis.
func cutMigration(p *sim.Proc, c *replica.Cluster, rng *sim.RNG, from, to, shard int) {
	cutTarget := to
	if rng.Intn(2) == 0 {
		cutTarget = from
	}
	cutter := p.Env().Go("nemesis:cut", func(cp *sim.Proc) {
		cp.Sleep(sim.Duration(1+rng.Intn(3)) * time.Millisecond)
		c.Crash(cutTarget)
		cp.Sleep(sim.Duration(5+rng.Intn(10)) * time.Millisecond)
		c.Restart(cp, cutTarget)
	})
	// The move may fail cleanly under the power cut; that is part of the
	// contract being tested — ownership must stay safe either way.
	_ = c.MoveShard(p, shard, from, to)
	p.Join(cutter)
}

func containsNode(v []int, x int) bool {
	for _, e := range v {
		if e == x {
			return true
		}
	}
	return false
}
