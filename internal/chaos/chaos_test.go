package chaos

import (
	"strings"
	"testing"
)

// TestCampaign runs the full default campaign: >= 200 seeded crash points
// across load and compaction, every one of which must recover with zero lost
// acked-then-synced writes, zero torn records surfaced, and secondary indexes
// in exact agreement with primaries.
func TestCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is long")
	}
	res := Run(DefaultOptions())
	if got := len(res.Points); got < 200 {
		t.Fatalf("campaign covered %d crash points, want >= 200", got)
	}
	if res.Failures != 0 {
		for _, pt := range res.Points {
			if pt.Err != "" {
				t.Errorf("%s cut=%d: %s", pt.Phase, pt.Cut, pt.Err)
			}
		}
		t.Fatalf("%d/%d crash points failed", res.Failures, len(res.Points))
	}
	// The campaign must actually exercise torn-write repair somewhere, or the
	// crash points are all landing on quiesced media.
	var torn, frames int
	for _, pt := range res.Points {
		torn += pt.TornRecords
		frames += pt.RecoveredFrames
	}
	if torn == 0 && frames == 0 {
		t.Fatal("campaign never saw a torn record or rolled a frame forward")
	}
	if !strings.Contains(res.Summary(), "failures=0") {
		t.Fatalf("summary disagrees with result:\n%s", res.Summary())
	}
}

// TestCampaignDeterministic reruns a smaller campaign with the same seed and
// requires a byte-identical summary.
func TestCampaignDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.Ops = 96
	opts.CutEvery = 8
	opts.CompactionCuts = 4
	a := Run(opts).Summary()
	b := Run(opts).Summary()
	if a != b {
		t.Fatalf("summaries differ across reruns:\n--- first\n%s--- second\n%s", a, b)
	}
	if a == "" || !strings.HasPrefix(a, "chaos campaign seed=1") {
		t.Fatalf("unexpected summary:\n%s", a)
	}
}

// TestCampaignSeedSensitivity: a different seed must still pass but may tear
// different bytes — only invariants are asserted, not identical summaries.
func TestCampaignSeedSensitivity(t *testing.T) {
	opts := DefaultOptions()
	opts.Seed = 42
	opts.Ops = 64
	opts.CutEvery = 16
	opts.CompactionCuts = 2
	res := Run(opts)
	if res.Failures != 0 {
		t.Fatalf("seed 42 campaign failed:\n%s", res.Summary())
	}
}
