package chaos

import "testing"

// TestCompactionChaosSmoke runs only the compaction-subsystem crash points —
// power cuts inside a pipelined collaborative compaction and inside a
// cold-migration sweep — sized to stay fast enough for the race-detector CI
// step. Every point must recover clean, and the pipeline points must show
// the host assist loop actually merged jobs (otherwise the cuts never landed
// on a split compaction and the phase tests nothing).
func TestCompactionChaosSmoke(t *testing.T) {
	opts := DefaultOptions()
	opts.Ops = 192
	opts.CutEvery = opts.Ops + 1 // no load-phase points
	opts.CompactionCuts = 0
	opts.PipelineCuts = 6
	opts.MigrationCuts = 4
	res := Run(opts)
	if got := len(res.Points); got != opts.PipelineCuts+opts.MigrationCuts {
		t.Fatalf("campaign covered %d crash points, want %d", got, opts.PipelineCuts+opts.MigrationCuts)
	}
	if res.Failures != 0 {
		t.Fatalf("compaction chaos failed:\n%s", res.Summary())
	}
	var hostJobs, migrated int
	for _, pt := range res.Points {
		switch pt.Phase {
		case "pipeline":
			hostJobs += pt.HostJobs
		case "migrate":
			migrated++
		default:
			t.Errorf("unexpected phase %q", pt.Phase)
		}
	}
	if hostJobs == 0 {
		t.Error("no pipeline point engaged the host assist loop")
	}
	if migrated != opts.MigrationCuts {
		t.Errorf("ran %d migration points, want %d", migrated, opts.MigrationCuts)
	}
}

// TestCompactionChaosDeterministic reruns a tiny compaction-subsystem
// campaign and requires byte-identical summaries: the pipeline's stage
// procs, the assist loop, and the migration sweep must all stay on the
// seeded virtual-time clock.
func TestCompactionChaosDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.Ops = 96
	opts.CutEvery = opts.Ops + 1
	opts.CompactionCuts = 0
	opts.PipelineCuts = 2
	opts.MigrationCuts = 2
	a := Run(opts).Summary()
	b := Run(opts).Summary()
	if a != b {
		t.Fatalf("summaries differ across reruns:\n--- first\n%s--- second\n%s", a, b)
	}
}
