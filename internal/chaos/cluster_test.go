package chaos

import (
	"strings"
	"testing"
)

// TestClusterCampaignLinearizable is the acceptance campaign: >= 100 seeded
// scenarios of leader kills, partitions, isolations, and mid-migration power
// cuts, every recorded history linearizable.
func TestClusterCampaignLinearizable(t *testing.T) {
	opts := DefaultClusterOptions()
	if opts.Scenarios < 100 {
		t.Fatalf("campaign must cover >= 100 scenarios, got %d", opts.Scenarios)
	}
	res := RunCluster(opts)
	if res.Violations != 0 {
		t.Fatalf("campaign found %d linearizability violations\n%s\n%s",
			res.Violations, res.Summary(), res.FirstViolation())
	}
	// The campaign must actually have exercised faults and concurrency.
	var elections int64
	unknown := 0
	kinds := map[string]bool{}
	for _, s := range res.Scenarios {
		elections += s.Elections
		unknown += s.Unknown
		kinds[s.Nemesis] = true
	}
	if elections < int64(opts.Scenarios) {
		t.Fatalf("suspiciously few elections (%d) — nemesis not biting", elections)
	}
	if unknown == 0 {
		t.Fatalf("no ambiguous outcomes in %d scenarios — faults not racing ops", opts.Scenarios)
	}
	for _, k := range nemesisNames {
		if !kinds[k] {
			t.Fatalf("nemesis kind %q never ran", k)
		}
	}
}

// TestClusterChaosSmoke is the short CI campaign run under -race.
func TestClusterChaosSmoke(t *testing.T) {
	opts := DefaultClusterOptions()
	opts.Scenarios = 10
	res := RunCluster(opts)
	if res.Violations != 0 {
		t.Fatalf("smoke campaign found violations\n%s\n%s", res.Summary(), res.FirstViolation())
	}
}

// TestClusterCampaignDeterministic re-runs a small campaign and compares the
// rendered summaries byte for byte.
func TestClusterCampaignDeterministic(t *testing.T) {
	opts := DefaultClusterOptions()
	opts.Scenarios = 6
	a := RunCluster(opts).Summary()
	b := RunCluster(opts).Summary()
	if a != b {
		t.Fatalf("campaign not deterministic:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if !strings.Contains(a, "scenarios=6") {
		t.Fatalf("unexpected summary:\n%s", a)
	}
}

// TestStaleReadNegativeControl proves the checker has teeth: running the
// same campaign with the deliberately broken read path (no read-index, reads
// served by whatever replica rotation lands on) MUST produce violations.
func TestStaleReadNegativeControl(t *testing.T) {
	opts := DefaultClusterOptions()
	opts.Scenarios = 40
	opts.UnsafeStaleReads = true
	res := RunCluster(opts)
	if res.Violations == 0 {
		t.Fatalf("negative control failed: stale-read bug not caught in %d scenarios\n%s",
			opts.Scenarios, res.Summary())
	}
}
