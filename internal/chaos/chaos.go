// Package chaos runs deterministic power-loss campaigns against the simulated
// KV-CSD. A campaign replays one scripted workload many times; each replay
// cuts power at a different crash point — after every k-th acknowledged op
// during load, and at seeded virtual-time offsets inside compaction — then
// restarts the device and checks the recovery invariants:
//
//   - no write that was acknowledged and then synced is lost;
//   - no torn or fabricated record ever surfaces to a query (every visible
//     value is byte-identical to what the workload wrote for that key);
//   - secondary indexes agree exactly with the primary index.
//
// Everything is driven by virtual time and seeded RNGs, so a campaign's
// Summary is byte-identical across reruns with the same Options.
package chaos

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"kvcsd/internal/device"
	"kvcsd/internal/keyenc"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
	"kvcsd/internal/stats"
)

// Options configures a campaign.
type Options struct {
	// Seed drives per-point device seeds and the compaction cut offsets.
	Seed int64
	// Ops is the scripted workload length (stores of distinct keys).
	Ops int
	// SyncEvery issues an explicit Sync after every SyncEvery-th store; pairs
	// up to the last successful Sync are the "acked-then-flushed" set that
	// must survive any crash.
	SyncEvery int
	// CutEvery places a load-phase crash point after every CutEvery-th op.
	CutEvery int
	// CompactionCuts is the number of crash points placed at seeded
	// virtual-time offsets inside a compaction run.
	CompactionCuts int
	// PipelineCuts is the number of crash points placed inside a
	// collaborative, width-4 pipelined compaction with a live host assist
	// loop — cuts land mid-pipeline and mid-host-merge.
	PipelineCuts int
	// MigrationCuts is the number of crash points placed inside a cold-tier
	// migration sweep following compaction.
	MigrationCuts int
	// ValueSize pads every value to this many bytes (>= 24).
	ValueSize int
	// Device is the device template; the zero value selects a small
	// fast-to-crash configuration.
	Device device.Options
}

// DefaultOptions returns a campaign with 180 load-phase, 24
// compaction-phase, 12 pipelined-compaction and 8 cold-migration crash
// points.
func DefaultOptions() Options {
	return Options{
		Seed:           1,
		Ops:            360,
		SyncEvery:      16,
		CutEvery:       2,
		CompactionCuts: 24,
		PipelineCuts:   12,
		MigrationCuts:  8,
		ValueSize:      64,
	}
}

// Point is the outcome of one crash point.
type Point struct {
	// Phase is "load", "compact", "pipeline" or "migrate".
	Phase string
	// Cut is the op index (load) or the virtual-ns offset into the phase.
	Cut int64
	// HostJobs counts merge jobs the host assist loop completed at a
	// pipeline point (before the cut plus during the re-compaction).
	HostJobs int
	// Synced is how many pairs were acked and synced before the cut.
	Synced int
	// Present is how many pairs a full primary scan returned after recovery.
	Present int
	// Recovery scrub counters for this point.
	TornRecords, RecoveredFrames, RepairedZones, OrphanZones int
	LostBytes                                                int64
	// Err is the first invariant violation, empty when the point passed.
	Err string
}

// Result is the campaign outcome.
type Result struct {
	Seed     int64
	Points   []Point
	Failures int
}

// Summary renders the campaign deterministically, one line per crash point.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos campaign seed=%d points=%d failures=%d\n",
		r.Seed, len(r.Points), r.Failures)
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%s cut=%d synced=%d present=%d torn=%d frames=%d zones=%d orphans=%d lost=%d",
			pt.Phase, pt.Cut, pt.Synced, pt.Present, pt.TornRecords,
			pt.RecoveredFrames, pt.RepairedZones, pt.OrphanZones, pt.LostBytes)
		if pt.Err != "" {
			fmt.Fprintf(&b, " FAIL(%s)", pt.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// secSpec is the secondary index every campaign keyspace carries: the first 8
// value bytes, compared bytewise.
func secSpec() nvme.SecondaryIndexSpec {
	return nvme.SecondaryIndexSpec{Name: "sec", Offset: 0, Length: 8, Type: keyenc.TypeBytes}
}

// keyFor, valueFor and keyIndex define the scripted workload. Values embed
// the secondary field first so torn bytes anywhere corrupt the comparison.
func keyFor(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

func valueFor(i, size int) []byte {
	v := fmt.Sprintf("%08d|val-%06d|", i%97, i)
	for len(v) < size {
		v += "x"
	}
	return []byte(v[:size])
}

func keyIndex(key []byte) (int, bool) {
	s := string(key)
	if !strings.HasPrefix(s, "key-") {
		return 0, false
	}
	n, err := strconv.Atoi(s[4:])
	return n, err == nil
}

// Run executes the campaign: every load-phase crash point, then a probe run
// measuring the compaction window, then every compaction-phase crash point.
func Run(opts Options) *Result {
	if opts.Ops <= 0 {
		opts.Ops = DefaultOptions().Ops
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultOptions().SyncEvery
	}
	if opts.CutEvery <= 0 {
		opts.CutEvery = DefaultOptions().CutEvery
	}
	if opts.ValueSize < 24 {
		opts.ValueSize = DefaultOptions().ValueSize
	}
	res := &Result{Seed: opts.Seed}
	for cut := opts.CutEvery - 1; cut < opts.Ops; cut += opts.CutEvery {
		pt := runLoadPoint(opts, cut)
		res.Points = append(res.Points, pt)
	}
	if opts.CompactionCuts > 0 {
		window := probeCompaction(opts)
		rng := sim.NewRNG(opts.Seed).Fork(0x43484153) // "CHAS"
		for j := 0; j < opts.CompactionCuts; j++ {
			off := sim.Duration(rng.Float64() * float64(window))
			pt := runCompactPoint(opts, j, off)
			res.Points = append(res.Points, pt)
		}
	}
	if opts.PipelineCuts > 0 {
		window := probeTunedWindow(opts, -2, tunePipeline, true, false)
		rng := sim.NewRNG(opts.Seed).Fork(0x50495045) // "PIPE"
		for j := 0; j < opts.PipelineCuts; j++ {
			off := sim.Duration(rng.Float64() * float64(window))
			res.Points = append(res.Points, runPipelinePoint(opts, j, off))
		}
	}
	if opts.MigrationCuts > 0 {
		window := probeTunedWindow(opts, -3, tuneMigrate, false, true)
		rng := sim.NewRNG(opts.Seed).Fork(0x4D494752) // "MIGR"
		for j := 0; j < opts.MigrationCuts; j++ {
			off := sim.Duration(rng.Float64() * float64(window))
			res.Points = append(res.Points, runMigratePoint(opts, j, off))
		}
	}
	for _, pt := range res.Points {
		if pt.Err != "" {
			res.Failures++
		}
	}
	return res
}

// newPointDevice builds a fresh simulation and device for one crash point;
// tune (optional) reshapes the device template for phase-specific points.
func newPointDevice(opts Options, salt int64, tune func(*device.Options)) (*sim.Env, *device.Device) {
	env := sim.NewEnv()
	dopts := opts.Device
	if dopts.QueueDepth == 0 && dopts.SSD.Channels == 0 {
		dopts = device.DefaultOptions()
		dopts.SSD.ZoneSize = 256 << 10
		dopts.SSD.NumZones = 1024
		dopts.Engine.IngestBufferBytes = 16 << 10
		dopts.Engine.SortBudgetBytes = 64 << 10
		dopts.Engine.StripeWidth = 2
	}
	if tune != nil {
		tune(&dopts)
	}
	dopts.Seed = opts.Seed ^ (salt+1)*0x9E3779B9
	return env, device.New(env, dopts, stats.NewIOStats())
}

func submit(p *sim.Proc, d *device.Device, cmd *nvme.Command) *nvme.Completion {
	return d.Queue().Submit(p, cmd).Wait(p)
}

// prologue creates and syncs the campaign keyspace so its existence itself is
// durable before any crash point.
func prologue(p *sim.Proc, d *device.Device) error {
	if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
		return fmt.Errorf("create: %v", c.Status)
	}
	if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
		return fmt.Errorf("create-sync: %v", c.Status)
	}
	return nil
}

// load stores ops [0, upto] with the scripted sync cadence and returns how
// many pairs were acked and synced.
func load(p *sim.Proc, d *device.Device, opts Options, upto int) (int, error) {
	synced := 0
	for i := 0; i <= upto; i++ {
		c := submit(p, d, &nvme.Command{
			Op: nvme.OpStore, Keyspace: "chaos",
			Key: keyFor(i), Value: valueFor(i, opts.ValueSize),
		})
		if c.Status != nvme.StatusOK {
			return synced, fmt.Errorf("store %d: %v", i, c.Status)
		}
		if (i+1)%opts.SyncEvery == 0 {
			if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
				return synced, fmt.Errorf("sync at %d: %v", i, c.Status)
			}
			synced = i + 1
		}
	}
	return synced, nil
}

// compactAndIndex brings the recovered keyspace to a queryable state with the
// campaign's secondary index built, whatever state recovery left it in.
func compactAndIndex(p *sim.Proc, d *device.Device) error {
	c := submit(p, d, &nvme.Command{
		Op: nvme.OpCompactWithIndexes, Keyspace: "chaos",
		Indexes: []nvme.SecondaryIndexSpec{secSpec()},
	})
	if c.Status != nvme.StatusOK {
		// Already compacted (the cut landed after compaction finished):
		// build the index on its own.
		if c := submit(p, d, &nvme.Command{Op: nvme.OpBuildSecondaryIndex, Keyspace: "chaos", Index: secSpec()}); c.Status != nvme.StatusOK {
			return fmt.Errorf("build index: %v", c.Status)
		}
	}
	for i := 0; ; i++ {
		if i > 100000 {
			return fmt.Errorf("compaction stuck")
		}
		c := submit(p, d, &nvme.Command{Op: nvme.OpCompactStatus, Keyspace: "chaos"})
		if c.Status != nvme.StatusOK {
			return fmt.Errorf("compact status: %v", c.Status)
		}
		if c.Done {
			break
		}
		p.Sleep(time.Millisecond)
	}
	for i := 0; ; i++ {
		if i > 100000 {
			return fmt.Errorf("index build stuck")
		}
		c := submit(p, d, &nvme.Command{Op: nvme.OpIndexStatus, Keyspace: "chaos", Index: secSpec()})
		if c.Status != nvme.StatusOK {
			return fmt.Errorf("index status: %v", c.Status)
		}
		if c.Done {
			return nil
		}
		p.Sleep(time.Millisecond)
	}
}

// verify checks the three recovery invariants after the keyspace is
// compacted: synced pairs all present, every visible value exact, secondary
// index in exact agreement with the primary.
func verify(p *sim.Proc, d *device.Device, opts Options, pt *Point, lastStored int) {
	c := submit(p, d, &nvme.Command{Op: nvme.OpQueryPrimaryRange, Keyspace: "chaos"})
	if c.Status != nvme.StatusOK {
		pt.Err = fmt.Sprintf("primary scan: %v", c.Status)
		return
	}
	pt.Present = len(c.Pairs)
	seen := make(map[int]bool, len(c.Pairs))
	bySec := make(map[string][]string)
	for _, pr := range c.Pairs {
		i, ok := keyIndex(pr.Key)
		if !ok || i > lastStored {
			pt.Err = fmt.Sprintf("alien key %q surfaced", pr.Key)
			return
		}
		if !bytes.Equal(pr.Value, valueFor(i, opts.ValueSize)) {
			pt.Err = fmt.Sprintf("torn value surfaced for %q", pr.Key)
			return
		}
		seen[i] = true
		sec := string(pr.Value[:8])
		bySec[sec] = append(bySec[sec], string(pr.Key))
	}
	for i := 0; i < pt.Synced; i++ {
		if !seen[i] {
			pt.Err = fmt.Sprintf("lost acked+synced pair %q", keyFor(i))
			return
		}
	}
	// Secondary index: the full secondary scan must enumerate exactly the
	// primary pairs, and every point query must return exactly the primaries
	// carrying that secondary value.
	cs := submit(p, d, &nvme.Command{Op: nvme.OpQuerySecondaryRange, Keyspace: "chaos", Index: secSpec()})
	if cs.Status != nvme.StatusOK {
		pt.Err = fmt.Sprintf("secondary scan: %v", cs.Status)
		return
	}
	if len(cs.Pairs) != len(c.Pairs) {
		pt.Err = fmt.Sprintf("secondary scan %d pairs, primary %d", len(cs.Pairs), len(c.Pairs))
		return
	}
	secs := make([]string, 0, len(bySec))
	for s := range bySec {
		secs = append(secs, s)
	}
	sort.Strings(secs)
	for _, s := range secs {
		cq := submit(p, d, &nvme.Command{Op: nvme.OpQuerySecondaryPoint, Keyspace: "chaos", Index: secSpec(), Key: []byte(s)})
		if cq.Status != nvme.StatusOK {
			pt.Err = fmt.Sprintf("secondary point %q: %v", s, cq.Status)
			return
		}
		got := make([]string, 0, len(cq.Pairs))
		for _, pr := range cq.Pairs {
			got = append(got, string(pr.Key))
		}
		sort.Strings(got)
		want := append([]string(nil), bySec[s]...)
		sort.Strings(want)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			pt.Err = fmt.Sprintf("secondary point %q: got %d keys, want %d", s, len(got), len(want))
			return
		}
	}
}

// runLoadPoint crashes after acking op `cut` during load.
func runLoadPoint(opts Options, cut int) Point {
	pt := Point{Phase: "load", Cut: int64(cut)}
	env, d := newPointDevice(opts, int64(cut), nil)
	env.Go("chaos", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := prologue(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		synced, err := load(p, d, opts, cut)
		if err != nil {
			pt.Err = err.Error()
			return
		}
		pt.Synced = synced
		d.PowerCut(p)
		rep, err := d.Restart(p)
		if err != nil {
			pt.Err = fmt.Sprintf("restart: %v", err)
			return
		}
		pt.TornRecords, pt.RecoveredFrames = rep.TornRecords, rep.RecoveredFrames
		pt.RepairedZones, pt.OrphanZones, pt.LostBytes = rep.RepairedZones, rep.OrphanZones, rep.LostBytes
		if err := compactAndIndex(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		verify(p, d, opts, &pt, cut)
	})
	env.Run()
	return pt
}

// probeCompaction runs the workload once with no cut and measures the
// compaction window (virtual time from issue to done); compaction-phase cut
// offsets are drawn from it.
func probeCompaction(opts Options) sim.Duration {
	var window sim.Duration
	env, d := newPointDevice(opts, -1, nil)
	env.Go("chaos", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := prologue(p, d); err != nil {
			return
		}
		if _, err := load(p, d, opts, opts.Ops-1); err != nil {
			return
		}
		submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "chaos"})
		start := p.Now()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
			return
		}
		for {
			c := submit(p, d, &nvme.Command{Op: nvme.OpCompactStatus, Keyspace: "chaos"})
			if c.Status != nvme.StatusOK {
				return
			}
			if c.Done {
				break
			}
			p.Sleep(10 * time.Microsecond)
		}
		window = sim.Duration(p.Now() - start)
	})
	env.Run()
	if window <= 0 {
		window = time.Millisecond
	}
	return window
}

// runCompactPoint loads and syncs the full workload, starts compaction, cuts
// power `off` into it, and verifies recovery: with everything synced, every
// single pair must survive.
func runCompactPoint(opts Options, idx int, off sim.Duration) Point {
	pt := Point{Phase: "compact", Cut: int64(off)}
	env, d := newPointDevice(opts, int64(1<<20+idx), nil)
	env.Go("chaos", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := prologue(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		if _, err := load(p, d, opts, opts.Ops-1); err != nil {
			pt.Err = err.Error()
			return
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
			pt.Err = fmt.Sprintf("final sync: %v", c.Status)
			return
		}
		pt.Synced = opts.Ops
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
			pt.Err = fmt.Sprintf("compact: %v", c.Status)
			return
		}
		p.Sleep(off)
		d.PowerCut(p)
		rep, err := d.Restart(p)
		if err != nil {
			pt.Err = fmt.Sprintf("restart: %v", err)
			return
		}
		pt.TornRecords, pt.RecoveredFrames = rep.TornRecords, rep.RecoveredFrames
		pt.RepairedZones, pt.OrphanZones, pt.LostBytes = rep.RepairedZones, rep.OrphanZones, rep.LostBytes
		if err := compactAndIndex(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		verify(p, d, opts, &pt, opts.Ops-1)
	})
	env.Run()
	return pt
}
