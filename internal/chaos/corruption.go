package chaos

import (
	"bytes"
	"fmt"
	"strings"

	"kvcsd/internal/array"
	"kvcsd/internal/core"
	"kvcsd/internal/device"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
)

// Corruption campaign: the silent-corruption counterpart of the power-cut
// campaign. Every scenario builds a fresh 3-device / 2-replica array, loads a
// scripted workload, injects bit-rot with one of four nemeses, and then holds
// the end-to-end integrity invariant:
//
//	every Get returns either the exact bytes that were written or a typed
//	error — never silently wrong data.
//
// After the degraded sweep the scenario drives scrub-and-repair passes and
// checks convergence: repairable rot (a healthy replica copy exists) must
// vanish, unrepairable rot (both copies poisoned) must keep failing typed and
// eventually quarantine its zones.

// Corruption nemeses, applied round-robin by scenario index.
const (
	// rotDuringLoad arms ambient seeded decay on one replica's media for the
	// whole load + compaction + query window; reads surface the rot.
	rotDuringLoad = iota
	// rotThenCompact poisons a VLOG extent on one replica before compaction:
	// the sort's verified value pass must fail typed on that copy — never
	// launder poisoned bytes into checksummed sorted output — while the
	// shard compacts on its peer.
	rotThenCompact
	// rotTwoReplicas poisons the same SORTED granule on both copies: reads
	// of those keys must fail typed forever (never fabricate bytes), and
	// repeated scrub strikes must quarantine the zones.
	rotTwoReplicas
	// rotMidMigration power-cuts one replica, writes hinted keys, poisons
	// the surviving copy, then restarts the cut device and repairs from it.
	rotMidMigration
	numRotNemeses
)

var rotNemesisNames = [numRotNemeses]string{
	"rot-during-load",
	"rot-then-compact",
	"rot-on-two-replicas",
	"rot-mid-migration",
}

// CorruptionOptions parameterizes the corruption campaign.
type CorruptionOptions struct {
	// Seed derives every scenario's array seed and injection randomness.
	Seed int64
	// Scenarios is the campaign size; nemeses rotate by scenario index.
	Scenarios int
	// Keys and ValueSize shape the scripted workload.
	Keys      int
	ValueSize int
	// DisableVerify is the negative control: checksum verification is
	// switched off in every device engine, and the campaign pins the
	// both-replicas nemesis so failover cannot mask the poisoned bytes.
	// With verification disabled the injected rot MUST surface as silently
	// wrong answers — proving the checksums are load-bearing.
	DisableVerify bool
}

// DefaultCorruptionOptions returns the full campaign: 64 scenarios, 16 per
// nemesis.
func DefaultCorruptionOptions() CorruptionOptions {
	return CorruptionOptions{Seed: 1, Scenarios: 64, Keys: 96, ValueSize: 64}
}

// CorruptionScenario is one scenario's outcome.
type CorruptionScenario struct {
	Index   int
	Nemesis string
	Seed    int64

	Reads     int // total Gets issued (degraded sweep + final sweep)
	TypedErrs int // degraded-sweep reads answered with a typed error
	Wrong     int // silently wrong answers (poisoned bytes or lost keys)

	FinalErrs int  // typed errors remaining after repair
	Converged bool // final sweep fully byte-exact
	Residual  int  // corrupt extents still reported by the closing scrub

	Detected    int64 // stats: checksum verification failures
	Repaired    int64 // stats: extents rewritten by repair
	Quarantined int64 // stats: zones retired by scrub strikes

	Err string // harness-level failure ("" = clean)
}

// CorruptionResult is the campaign outcome.
type CorruptionResult struct {
	Options   CorruptionOptions
	Scenarios []CorruptionScenario
	Wrong     int // total silent-wrong-answer violations
	Diverged  int // repairable scenarios that failed to converge
	Harness   int // scenarios with harness-level errors
}

// Summary renders one deterministic line per scenario.
func (r *CorruptionResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "corruption campaign: %d scenarios, %d wrong, %d diverged, %d harness errors\n",
		len(r.Scenarios), r.Wrong, r.Diverged, r.Harness)
	for _, sc := range r.Scenarios {
		fmt.Fprintf(&b, "#%03d %-19s reads=%d typed=%d wrong=%d detected=%d repaired=%d quarantined=%d residual=%d converged=%v",
			sc.Index, sc.Nemesis, sc.Reads, sc.TypedErrs, sc.Wrong,
			sc.Detected, sc.Repaired, sc.Quarantined, sc.Residual, sc.Converged)
		if sc.Err != "" {
			fmt.Fprintf(&b, " ERR=%s", sc.Err)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FirstViolation describes the first silent wrong answer or harness error,
// "" when the campaign is clean.
func (r *CorruptionResult) FirstViolation() string {
	for _, sc := range r.Scenarios {
		if sc.Wrong > 0 {
			return fmt.Sprintf("scenario #%d (%s, seed %d): %d silently wrong answers",
				sc.Index, sc.Nemesis, sc.Seed, sc.Wrong)
		}
		if sc.Err != "" {
			return fmt.Sprintf("scenario #%d (%s, seed %d): harness error: %s",
				sc.Index, sc.Nemesis, sc.Seed, sc.Err)
		}
	}
	return ""
}

// RunCorruption executes the campaign.
func RunCorruption(opts CorruptionOptions) *CorruptionResult {
	def := DefaultCorruptionOptions()
	if opts.Scenarios <= 0 {
		opts.Scenarios = def.Scenarios
	}
	if opts.Keys <= 0 {
		opts.Keys = def.Keys
	}
	if opts.ValueSize <= 0 {
		opts.ValueSize = def.ValueSize
	}
	res := &CorruptionResult{Options: opts}
	for i := 0; i < opts.Scenarios; i++ {
		sc := runCorruptionScenario(opts, i)
		res.Scenarios = append(res.Scenarios, sc)
		res.Wrong += sc.Wrong
		if sc.Err != "" {
			res.Harness++
		}
		// Only rot with a surviving replica copy is expected to converge.
		if sc.Nemesis != rotNemesisNames[rotTwoReplicas] && !sc.Converged {
			res.Diverged++
		}
	}
	return res
}

// corruptionDevice is the small per-scenario device template (mirrors the
// power-cut campaign's newPointDevice sizing).
func corruptionDevice(disableVerify bool) device.Options {
	dopts := device.DefaultOptions()
	dopts.SSD.ZoneSize = 256 << 10
	dopts.SSD.NumZones = 1024
	dopts.Engine.IngestBufferBytes = 16 << 10
	dopts.Engine.SortBudgetBytes = 64 << 10
	dopts.Engine.StripeWidth = 2
	dopts.Engine.DisableVerify = disableVerify
	return dopts
}

// rotBits is how many bits each targeted injection flips — enough that a
// poisoned granule virtually always breaks the workload's value bytes.
const rotBits = 16

func runCorruptionScenario(opts CorruptionOptions, idx int) CorruptionScenario {
	nem := idx % numRotNemeses
	if opts.DisableVerify {
		nem = rotTwoReplicas // failover must not mask the poison
	}
	seed := opts.Seed ^ (int64(idx+1) * 0x6C62272E)
	sc := CorruptionScenario{Index: idx, Nemesis: rotNemesisNames[nem], Seed: seed}

	env := sim.NewEnv()
	arr := array.New(env, array.Options{
		Devices:                  3,
		Replicas:                 2,
		Seed:                     seed,
		ReadPreference:           array.ReadRoundRobin,
		FailureThreshold:         3,
		MaxConcurrentCompactions: 2,
		Device:                   corruptionDevice(opts.DisableVerify),
	})
	env.Go("corruption-chaos", func(p *sim.Proc) {
		defer arr.Shutdown()
		if err := corruptionScenarioBody(p, arr, opts, nem, seed, &sc); err != nil {
			sc.Err = err.Error()
		}
	})
	env.Run()

	st := arr.Stats()
	sc.Detected = st.CorruptDetected.Value()
	sc.Repaired = st.RepairedExtents.Value()
	sc.Quarantined = st.QuarantinedZones.Value()
	return sc
}

func corruptionScenarioBody(p *sim.Proc, arr *array.Array, opts CorruptionOptions, nem int, seed int64, sc *CorruptionScenario) error {
	ks, err := arr.CreateKeyspace(p, "rot")
	if err != nil {
		return err
	}
	owners := ks.Replicas(0)
	total := opts.Keys

	load := func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := ks.Put(p, keyFor(i), valueFor(i, opts.ValueSize)); err != nil {
				return err
			}
		}
		return ks.Sync(p)
	}

	// --- inject + load + compact, per nemesis -----------------------------
	switch nem {
	case rotDuringLoad:
		// Ambient decay on one replica's media across the whole window.
		// Compaction and queries on that copy may fail typed; the shard
		// survives on the peer either way.
		arr.Member(owners[0]).Dev.SSD().SetFaultProfile(&ssd.FaultProfile{
			Seed:    seed,
			RotRate: map[string]float64{"zone-read": 0.05},
			RotBits: 3,
		})
		if err := load(0, total); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}

	case rotThenCompact:
		// Poison a VLOG granule on one replica before compaction: its
		// verified value pass fails typed (the status poll surfaces the
		// error) and the peer carries the shard. The rotted log is
		// unrecoverable once the peer compacts and releases its own log —
		// the replica stays degraded, but reads keep failing over correctly.
		if err := load(0, total); err != nil {
			return err
		}
		if err := corruptOn(p, arr, owners[0], core.ExtentVLOG, 0); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}

	case rotTwoReplicas:
		// Poison the same SORTED granule on both copies after a clean
		// compaction: no healthy source remains, so affected reads must
		// fail typed forever.
		if err := load(0, total); err != nil {
			return err
		}
		if err := ks.Compact(p); err != nil {
			return err
		}
		for _, dev := range owners {
			if err := corruptOn(p, arr, dev, core.ExtentSorted, 0); err != nil {
				return err
			}
		}

	case rotMidMigration:
		// Power-cut one replica, write hinted keys, compact the survivor,
		// poison it, then restart the cut device, let the hints replay and
		// its own compaction catch up, and repair the survivor from it.
		if err := load(0, total); err != nil {
			return err
		}
		arr.PowerCut(p, owners[0])
		extra := 16
		if err := load(total, total+extra); err != nil {
			return err
		}
		total += extra
		if err := ks.Compact(p); err != nil {
			return err
		}
		if err := corruptOn(p, arr, owners[1], core.ExtentSorted, 0); err != nil {
			return err
		}
	}

	// --- degraded sweep: the invariant must hold mid-fault ----------------
	wrong, typed := corruptionSweep(p, ks, opts, total)
	sc.Reads += total
	sc.Wrong += wrong
	sc.TypedErrs = typed

	// --- heal the fleet and drive repair to convergence -------------------
	if nem == rotDuringLoad {
		arr.Member(owners[0]).Dev.SSD().SetFaultProfile(nil)
	}
	if nem == rotMidMigration {
		if _, err := arr.RestartDevice(p, owners[0]); err != nil {
			return err
		}
		// The restarted replica recovered WRITABLE (it was cut before its
		// compaction); compact it so its sorted extents can seed repairs.
		if err := ks.Compact(p); err != nil {
			return err
		}
	}
	arr.WaitRepairsIdle(p)
	// Three passes: enough for repairable rot to heal and for unrepairable
	// zones to accumulate quarantine strikes (Config.QuarantineThreshold).
	for pass := 0; pass < 3; pass++ {
		for _, dev := range owners {
			if _, err := arr.RepairDevice(p, dev); err != nil {
				return fmt.Errorf("repair pass %d device %d: %w", pass, dev, err)
			}
		}
	}
	arr.WaitRepairsIdle(p)

	// --- final sweep + residual scrub -------------------------------------
	wrong, typed = corruptionSweep(p, ks, opts, total)
	sc.Reads += total
	sc.Wrong += wrong
	sc.FinalErrs = typed
	sc.Converged = typed == 0 && wrong == 0
	for _, dev := range owners {
		rep, err := arr.ScrubDevice(p, dev)
		if err != nil {
			return fmt.Errorf("closing scrub device %d: %w", dev, err)
		}
		sc.Residual += len(rep.Corrupt)
	}
	return nil
}

// corruptOn poisons granule g of one extent kind of the scenario keyspace on
// one device, through the full host->device command path.
func corruptOn(p *sim.Proc, arr *array.Array, dev int, kind core.ExtentKind, granule int64) error {
	_, err := arr.CorruptExtent(p, dev, "rot", nvme.ExtentAddr{
		Kind:    uint8(kind),
		Granule: granule,
		Bits:    rotBits,
	})
	return err
}

// corruptionSweep reads every key back and classifies each answer: byte-exact,
// typed error, or silently wrong (poisoned bytes or a synced key vanishing).
func corruptionSweep(p *sim.Proc, ks *array.Keyspace, opts CorruptionOptions, total int) (wrong, typed int) {
	for i := 0; i < total; i++ {
		v, ok, err := ks.Get(p, keyFor(i))
		switch {
		case err != nil:
			typed++
		case !ok:
			wrong++ // a synced key vanished: silent data loss
		case !bytes.Equal(v, valueFor(i, opts.ValueSize)):
			wrong++ // poisoned bytes served as a successful read
		}
	}
	return wrong, typed
}
