package chaos

import (
	"strings"
	"testing"
)

// TestCorruptionChaos runs the full campaign: 64 scenarios across the four
// rot nemeses. The invariant is absolute — no scenario may ever serve
// silently wrong bytes — and every scenario with a surviving replica copy
// must converge back to fully byte-exact reads after repair.
func TestCorruptionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("full corruption campaign is long; see TestCorruptionChaosSmoke")
	}
	res := RunCorruption(DefaultCorruptionOptions())
	assertCorruptionClean(t, res)
	if res.Options.Scenarios < 60 {
		t.Fatalf("campaign ran %d scenarios, want >= 60", res.Options.Scenarios)
	}
	// The campaign must actually have exercised the machinery: rot detected,
	// extents repaired, and the unrepairable nemesis must trip quarantine.
	var detected, repaired, quarantined int64
	for _, sc := range res.Scenarios {
		detected += sc.Detected
		repaired += sc.Repaired
		if sc.Nemesis == rotNemesisNames[rotTwoReplicas] {
			quarantined += sc.Quarantined
		}
	}
	if detected == 0 || repaired == 0 {
		t.Fatalf("campaign exercised nothing: detected=%d repaired=%d\n%s",
			detected, repaired, res.Summary())
	}
	if quarantined == 0 {
		t.Fatalf("two-replica rot never quarantined a zone\n%s", res.Summary())
	}
}

// TestCorruptionChaosSmoke is the CI-sized subset (one scenario per nemesis,
// run under -race by the chaos-smoke job).
func TestCorruptionChaosSmoke(t *testing.T) {
	opts := DefaultCorruptionOptions()
	opts.Scenarios = 4
	res := RunCorruption(opts)
	assertCorruptionClean(t, res)
}

// TestCorruptionChaosDeterministic re-runs a slice of the campaign and
// demands an identical summary: the whole fault model is seeded.
func TestCorruptionChaosDeterministic(t *testing.T) {
	opts := DefaultCorruptionOptions()
	opts.Scenarios = 4
	a := RunCorruption(opts).Summary()
	b := RunCorruption(opts).Summary()
	if a != b {
		t.Fatalf("campaign not deterministic:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}

// TestCorruptionNegativeControl disables checksum verification and asserts
// the injected rot now DOES surface as silently wrong answers — the proof
// that the verified-read path is load-bearing, not vacuously green.
func TestCorruptionNegativeControl(t *testing.T) {
	opts := DefaultCorruptionOptions()
	opts.Scenarios = 4
	opts.DisableVerify = true
	res := RunCorruption(opts)
	if res.Wrong == 0 {
		t.Fatalf("verification disabled but zero wrong answers — the campaign "+
			"would not catch a verify bypass\n%s", res.Summary())
	}
	for _, sc := range res.Scenarios {
		if sc.Err != "" {
			t.Fatalf("negative control scenario #%d harness error: %s", sc.Index, sc.Err)
		}
	}
}

func assertCorruptionClean(t *testing.T, res *CorruptionResult) {
	t.Helper()
	if v := res.FirstViolation(); v != "" {
		t.Fatalf("%s\n%s", v, res.Summary())
	}
	if res.Diverged > 0 {
		t.Fatalf("%d repairable scenarios failed to converge\n%s", res.Diverged, res.Summary())
	}
	if !strings.Contains(res.Summary(), "wrong") {
		t.Fatal("summary lost its header")
	}
}
