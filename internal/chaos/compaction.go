// Compaction-subsystem crash points: power cuts inside a pipelined
// collaborative compaction (host assist loop live, width-4 device pipeline)
// and inside a cold-tier migration sweep. Both phases stress the subsystem's
// crash-safety invariants — persist-before-release on the log swap and the
// migration snapshot, host-merge jobs failing over to the SoC when the
// assist queue dies, and the recovery sweep reclaiming orphan cold zones —
// with the same verification as every other point: nothing synced is lost,
// nothing torn surfaces, secondary indexes agree with primaries.
package chaos

import (
	"fmt"
	"time"

	"kvcsd/internal/compaction"
	"kvcsd/internal/core"
	"kvcsd/internal/device"
	"kvcsd/internal/host"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
)

// tunePipeline reshapes the point device so the scripted workload exercises
// the collaborative planner and the parallel device pipeline: a width-4
// pipeline, the collaborative policy, and a sort budget small enough that
// the campaign's ops form several klog runs for the planner to split.
func tunePipeline(d *device.Options) {
	d.Engine.CompactionPolicy = compaction.PolicyCollaborative
	d.Engine.PipelineWidth = 4
	d.Engine.SortBudgetBytes = 2 << 10
}

// tuneMigrate dedicates part of the zoned namespace to a slower cold tier so
// a MigrateCold sweep has somewhere to move the (never-read, heat-zero)
// sorted value zones, and something to leave orphaned when power dies
// between the copy and the metadata persist.
func tuneMigrate(d *device.Options) {
	d.SSD.ColdZones = 128
	d.SSD.ColdReadFactor = 3
	d.SSD.ColdWriteFactor = 2
}

// assistLoop is the campaign's host half of collaborative compaction — a
// raw-opcode ServeHostMerges. It long-polls merge jobs, k-way merges them on
// a modeled host CPU, and pushes each result back; it exits when the device
// closes the assist queue (power cut or shutdown) or transport fails. jobs
// counts completed merges so tests can assert the split actually engaged.
func assistLoop(p *sim.Proc, d *device.Device, h *host.Host, jobs *int) {
	for {
		comp := submit(p, d, &nvme.Command{Op: nvme.OpHostMergePoll})
		if comp.Status != nvme.StatusOK || comp.Done {
			return
		}
		var merged []byte
		if runs, err := compaction.DecodeRuns(comp.Value); err == nil {
			merged, _ = core.MergeEncodedKlogRuns(p, h, runs)
		}
		// An empty push reports host failure; the device re-merges on the SoC.
		c := submit(p, d, &nvme.Command{
			Op:     nvme.OpHostMergePush,
			Extent: nvme.ExtentAddr{Granule: comp.Count},
			Value:  merged,
		})
		if c.Status != nvme.StatusOK {
			return
		}
		*jobs++
	}
}

// waitCompactDone polls the keyspace until compaction reports done.
func waitCompactDone(p *sim.Proc, d *device.Device) error {
	for i := 0; ; i++ {
		if i > 100000 {
			return fmt.Errorf("compaction stuck")
		}
		c := submit(p, d, &nvme.Command{Op: nvme.OpCompactStatus, Keyspace: "chaos"})
		if c.Status != nvme.StatusOK {
			return fmt.Errorf("compact status: %v", c.Status)
		}
		if c.Done {
			return nil
		}
		p.Sleep(10 * time.Microsecond)
	}
}

// probeTunedWindow measures, with no cut, the virtual-time window the
// compaction-phase (or, with migrate set, the migration-phase) of a tuned
// point occupies; crash offsets for that phase are drawn from it.
func probeTunedWindow(opts Options, salt int64, tune func(*device.Options), withAssist, migrate bool) sim.Duration {
	var window sim.Duration
	env, d := newPointDevice(opts, salt, tune)
	h := host.New(env, host.DefaultHostConfig())
	env.Go("chaos", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := prologue(p, d); err != nil {
			return
		}
		if _, err := load(p, d, opts, opts.Ops-1); err != nil {
			return
		}
		submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "chaos"})
		if withAssist {
			var jobs int
			env.Go("assist", func(ap *sim.Proc) { assistLoop(ap, d, h, &jobs) })
		}
		start := p.Now()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
			return
		}
		if err := waitCompactDone(p, d); err != nil {
			return
		}
		if migrate {
			start = p.Now()
			if c := submit(p, d, &nvme.Command{Op: nvme.OpMigrateCold}); c.Status != nvme.StatusOK {
				return
			}
		}
		window = sim.Duration(p.Now() - start)
	})
	env.Run()
	if window <= 0 {
		window = time.Millisecond
	}
	return window
}

// runPipelinePoint loads and syncs the full workload, starts a collaborative
// width-4 compaction with a live host assist loop, and cuts power `off` into
// it. The cut can land with a merge job in flight on the host (the submitter
// falls back via ErrAssistClosed), between pipeline stages, or inside the
// value distribution; in every case recovery must surface exactly the synced
// pairs. After restart a fresh assist loop re-attaches, so the re-compaction
// that builds the verification index is itself collaborative.
func runPipelinePoint(opts Options, idx int, off sim.Duration) Point {
	pt := Point{Phase: "pipeline", Cut: int64(off)}
	env, d := newPointDevice(opts, int64(2<<20+idx), tunePipeline)
	h := host.New(env, host.DefaultHostConfig())
	liveAssists := 0
	spawnAssist := func() {
		liveAssists++
		env.Go("assist", func(ap *sim.Proc) {
			defer func() { liveAssists-- }()
			assistLoop(ap, d, h, &pt.HostJobs)
		})
	}
	env.Go("chaos", func(p *sim.Proc) {
		defer d.Shutdown()
		// Quiesce before the queue closes: closing the assist queue unparks
		// any polling loop, which then observes Done and exits without
		// submitting to a closed queue.
		defer func() {
			d.Engine().CloseAssist()
			for liveAssists > 0 {
				p.Sleep(10 * time.Microsecond)
			}
		}()
		if err := prologue(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		if _, err := load(p, d, opts, opts.Ops-1); err != nil {
			pt.Err = err.Error()
			return
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
			pt.Err = fmt.Sprintf("final sync: %v", c.Status)
			return
		}
		pt.Synced = opts.Ops
		spawnAssist()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
			pt.Err = fmt.Sprintf("compact: %v", c.Status)
			return
		}
		p.Sleep(off)
		d.PowerCut(p)
		rep, err := d.Restart(p)
		if err != nil {
			pt.Err = fmt.Sprintf("restart: %v", err)
			return
		}
		pt.TornRecords, pt.RecoveredFrames = rep.TornRecords, rep.RecoveredFrames
		pt.RepairedZones, pt.OrphanZones, pt.LostBytes = rep.RepairedZones, rep.OrphanZones, rep.LostBytes
		spawnAssist()
		if err := compactAndIndex(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		verify(p, d, opts, &pt, opts.Ops-1)
	})
	env.Run()
	return pt
}

// runMigratePoint compacts the full synced workload, then cuts power `off`
// into a cold-tier migration sweep. The sweep persists the metadata snapshot
// referencing fresh cold zones before releasing the hot originals, so a cut
// at any offset leaves either tier fully readable — at worst orphan cold
// zones for the recovery sweep to reclaim — and never a value that moved
// but is referenced nowhere.
func runMigratePoint(opts Options, idx int, off sim.Duration) Point {
	pt := Point{Phase: "migrate", Cut: int64(off)}
	env, d := newPointDevice(opts, int64(3<<20+idx), tuneMigrate)
	env.Go("chaos", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := prologue(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		if _, err := load(p, d, opts, opts.Ops-1); err != nil {
			pt.Err = err.Error()
			return
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
			pt.Err = fmt.Sprintf("final sync: %v", c.Status)
			return
		}
		pt.Synced = opts.Ops
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "chaos"}); c.Status != nvme.StatusOK {
			pt.Err = fmt.Sprintf("compact: %v", c.Status)
			return
		}
		if err := waitCompactDone(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		// The sweep runs inside one command on another proc; the cut lands
		// mid-sweep and the command completes with StatusPoweredOff.
		migrateDone := false
		env.Go("migrate", func(mp *sim.Proc) {
			submit(mp, d, &nvme.Command{Op: nvme.OpMigrateCold})
			migrateDone = true
		})
		p.Sleep(off)
		d.PowerCut(p)
		for !migrateDone {
			p.Sleep(10 * time.Microsecond)
		}
		rep, err := d.Restart(p)
		if err != nil {
			pt.Err = fmt.Sprintf("restart: %v", err)
			return
		}
		pt.TornRecords, pt.RecoveredFrames = rep.TornRecords, rep.RecoveredFrames
		pt.RepairedZones, pt.OrphanZones, pt.LostBytes = rep.RepairedZones, rep.OrphanZones, rep.LostBytes
		if err := compactAndIndex(p, d); err != nil {
			pt.Err = err.Error()
			return
		}
		verify(p, d, opts, &pt, opts.Ops-1)
	})
	env.Run()
	return pt
}
