package device

import (
	"errors"
	"testing"

	"kvcsd/internal/core"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
)

func newTestDevice() (*sim.Env, *Device, *stats.IOStats) {
	env := sim.NewEnv()
	st := stats.NewIOStats()
	opts := DefaultOptions()
	opts.SSD.ZoneSize = 256 << 10
	opts.SSD.NumZones = 1024
	opts.Engine.IngestBufferBytes = 16 << 10
	opts.Engine.SortBudgetBytes = 64 << 10
	opts.Engine.StripeWidth = 2
	return env, New(env, opts, st), st
}

// submit sends one command through the queue and waits for its completion.
func submit(p *sim.Proc, d *Device, cmd *nvme.Command) *nvme.Completion {
	return d.Queue().Submit(p, cmd).Wait(p)
}

func TestCommandSurface(t *testing.T) {
	env, d, st := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("create: %v", c.Status)
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusExists {
			t.Fatalf("dup create: %v", c.Status)
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpOpenKeyspace, Keyspace: "nope"}); c.Status != nvme.StatusNotFound {
			t.Fatalf("open missing: %v", c.Status)
		}
		// Store + bulk store.
		if c := submit(p, d, &nvme.Command{Op: nvme.OpStore, Keyspace: "ks", Key: []byte("a"), Value: []byte("1")}); c.Status != nvme.StatusOK {
			t.Fatalf("store: %v", c.Status)
		}
		bulk := &nvme.Command{Op: nvme.OpBulkStore, Keyspace: "ks", Pairs: []nvme.KVPair{
			{Key: []byte("b"), Value: []byte("2")},
			{Key: []byte("c"), Value: []byte("3")},
		}}
		if c := submit(p, d, bulk); c.Status != nvme.StatusOK {
			t.Fatalf("bulk: %v", c.Status)
		}
		// Query before compaction is a state error.
		if c := submit(p, d, &nvme.Command{Op: nvme.OpRetrieve, Keyspace: "ks", Key: []byte("a")}); c.Status != nvme.StatusKeyspaceState {
			t.Fatalf("early retrieve: %v", c.Status)
		}
		// Compact (async ack) + status poll.
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("compact: %v", c.Status)
		}
		for {
			c := submit(p, d, &nvme.Command{Op: nvme.OpCompactStatus, Keyspace: "ks"})
			if c.Status != nvme.StatusOK {
				t.Fatalf("compact status: %v", c.Status)
			}
			if c.Done {
				break
			}
			p.Sleep(1e6)
		}
		// Retrieve, exist, range.
		c := submit(p, d, &nvme.Command{Op: nvme.OpRetrieve, Keyspace: "ks", Key: []byte("b")})
		if c.Status != nvme.StatusOK || string(c.Value) != "2" {
			t.Fatalf("retrieve: %v %q", c.Status, c.Value)
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpRetrieve, Keyspace: "ks", Key: []byte("zz")}); c.Status != nvme.StatusNotFound {
			t.Fatalf("missing retrieve: %v", c.Status)
		}
		c = submit(p, d, &nvme.Command{Op: nvme.OpExist, Keyspace: "ks", Key: []byte("c")})
		if c.Status != nvme.StatusOK || !c.Exists {
			t.Fatalf("exist: %+v", c)
		}
		c = submit(p, d, &nvme.Command{Op: nvme.OpQueryPrimaryRange, Keyspace: "ks"})
		if c.Status != nvme.StatusOK || len(c.Pairs) != 3 {
			t.Fatalf("range: %v %d pairs", c.Status, len(c.Pairs))
		}
		// Info.
		c = submit(p, d, &nvme.Command{Op: nvme.OpKeyspaceInfo, Keyspace: "ks"})
		if c.Status != nvme.StatusOK || c.Info.State != "COMPACTED" || c.Info.Pairs != 3 {
			t.Fatalf("info: %+v", c.Info)
		}
		// Unknown opcode.
		if c := submit(p, d, &nvme.Command{Op: nvme.Opcode(250)}); c.Status != nvme.StatusInvalid {
			t.Fatalf("unknown op: %v", c.Status)
		}
		// Delete.
		if c := submit(p, d, &nvme.Command{Op: nvme.OpDeleteKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("delete: %v", c.Status)
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpDeleteKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusNotFound {
			t.Fatalf("double delete: %v", c.Status)
		}
	})
	env.Run()
	if st.Commands.Value() == 0 {
		t.Fatal("no commands recorded")
	}
}

func TestStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want nvme.Status
	}{
		{nil, nvme.StatusOK},
		{core.ErrKeyspaceNotFound, nvme.StatusNotFound},
		{core.ErrIndexNotFound, nvme.StatusNotFound},
		{core.ErrKeyspaceExists, nvme.StatusExists},
		{core.ErrIndexExists, nvme.StatusExists},
		{core.ErrKeyspaceState, nvme.StatusKeyspaceState},
		{core.ErrDeleted, nvme.StatusKeyspaceState},
		{core.ErrNoZones, nvme.StatusNoSpace},
		{ssd.ErrDeviceCapacity, nvme.StatusNoSpace},
		{core.ErrKeyTooLarge, nvme.StatusInvalid},
		{errors.New("anything else"), nvme.StatusInternal},
	}
	for _, c := range cases {
		if got := statusOf(c.err); got != c.want {
			t.Errorf("statusOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestShutdownDrainsInFlight(t *testing.T) {
	env, d, _ := newTestDevice()
	var completed bool
	env.Go("host", func(p *sim.Proc) {
		h := d.Queue().Submit(p, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "ks"})
		d.Shutdown()
		c := h.Wait(p)
		completed = c.Status == nvme.StatusOK
	})
	env.Run()
	if !completed {
		t.Fatal("in-flight command dropped at shutdown")
	}
}

func TestDefaultDispatchersMatchSoCCores(t *testing.T) {
	env, d, _ := newTestDevice()
	// 4 dispatchers should allow 4 commands to be serviced concurrently.
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		var hs []*nvme.Handle
		for i := 0; i < 4; i++ {
			hs = append(hs, d.Queue().Submit(p, &nvme.Command{
				Op: nvme.OpCreateKeyspace, Keyspace: string(rune('a' + i)),
			}))
		}
		for _, h := range hs {
			if c := h.Wait(p); c.Status != nvme.StatusOK {
				t.Fatalf("create failed: %v", c.Status)
			}
		}
	})
	env.Run()
	if d.Engine().Manager().Names()[0] != "a" {
		t.Fatal("keyspaces missing")
	}
}
