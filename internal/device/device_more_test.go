package device

import (
	"bytes"
	"fmt"
	"testing"

	"kvcsd/internal/keyenc"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
)

// loadParticles inserts n pairs whose last 4 bytes are a float32 attribute.
func loadParticles(p *sim.Proc, d *Device, ks string, n int) error {
	if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: ks}); c.Status != nvme.StatusOK {
		return fmt.Errorf("create: %v", c.Status)
	}
	var pairs []nvme.KVPair
	for i := 0; i < n; i++ {
		v := make([]byte, 16)
		copy(v[12:], keyenc.PutFloat32(float32(i%10))) // big-endian tag for TypeBytes
		pairs = append(pairs, nvme.KVPair{Key: keyenc.PutUint64(uint64(i)), Value: v})
		if len(pairs) == 512 {
			if c := submit(p, d, &nvme.Command{Op: nvme.OpBulkStore, Keyspace: ks, Pairs: pairs}); c.Status != nvme.StatusOK {
				return fmt.Errorf("bulk: %v", c.Status)
			}
			pairs = nil
		}
	}
	if len(pairs) > 0 {
		if c := submit(p, d, &nvme.Command{Op: nvme.OpBulkStore, Keyspace: ks, Pairs: pairs}); c.Status != nvme.StatusOK {
			return fmt.Errorf("bulk: %v", c.Status)
		}
	}
	return nil
}

func waitCompacted(p *sim.Proc, d *Device, ks string) {
	for {
		c := submit(p, d, &nvme.Command{Op: nvme.OpCompactStatus, Keyspace: ks})
		if c.Done {
			return
		}
		p.Sleep(1e6)
	}
}

func TestSecondaryCommandsThroughQueue(t *testing.T) {
	env, d, _ := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := loadParticles(p, d, "ks", 1000); err != nil {
			t.Error(err)
			return
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Errorf("compact: %v", c.Status)
			return
		}
		waitCompacted(p, d, "ks")
		spec := nvme.SecondaryIndexSpec{Name: "tag", Offset: 12, Length: 4, Type: keyenc.TypeBytes}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpBuildSecondaryIndex, Keyspace: "ks", Index: spec}); c.Status != nvme.StatusOK {
			t.Errorf("build: %v", c.Status)
			return
		}
		for {
			c := submit(p, d, &nvme.Command{Op: nvme.OpIndexStatus, Keyspace: "ks", Index: spec})
			if c.Status != nvme.StatusOK {
				t.Errorf("index status: %v", c.Status)
				return
			}
			if c.Done {
				break
			}
			p.Sleep(1e6)
		}
		// Point query on the secondary key.
		c := submit(p, d, &nvme.Command{
			Op: nvme.OpQuerySecondaryPoint, Keyspace: "ks",
			Index: nvme.SecondaryIndexSpec{Name: "tag"},
			Key:   keyenc.PutFloat32(3),
		})
		if c.Status != nvme.StatusOK || len(c.Pairs) != 100 {
			t.Errorf("point query: %v %d pairs", c.Status, len(c.Pairs))
		}
		// Range query over the secondary key.
		c = submit(p, d, &nvme.Command{
			Op: nvme.OpQuerySecondaryRange, Keyspace: "ks",
			Index: nvme.SecondaryIndexSpec{Name: "tag"},
			Low:   keyenc.PutFloat32(3), High: keyenc.PutFloat32(5),
		})
		if c.Status != nvme.StatusOK || len(c.Pairs) != 200 {
			t.Errorf("range query: %v %d pairs", c.Status, len(c.Pairs))
		}
		// Unknown index.
		c = submit(p, d, &nvme.Command{
			Op: nvme.OpQuerySecondaryRange, Keyspace: "ks",
			Index: nvme.SecondaryIndexSpec{Name: "ghost"},
		})
		if c.Status != nvme.StatusNotFound {
			t.Errorf("ghost index: %v", c.Status)
		}
	})
	env.Run()
}

func TestCompactWithIndexesCommand(t *testing.T) {
	env, d, _ := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := loadParticles(p, d, "ks", 800); err != nil {
			t.Error(err)
			return
		}
		c := submit(p, d, &nvme.Command{
			Op: nvme.OpCompactWithIndexes, Keyspace: "ks",
			Indexes: []nvme.SecondaryIndexSpec{
				{Name: "tag", Offset: 12, Length: 4, Type: keyenc.TypeBytes},
			},
		})
		if c.Status != nvme.StatusOK {
			t.Errorf("compact+idx: %v", c.Status)
			return
		}
		waitCompacted(p, d, "ks")
		if err := d.WaitBackgroundIdle(p); err != nil {
			t.Error(err)
			return
		}
		info := submit(p, d, &nvme.Command{Op: nvme.OpKeyspaceInfo, Keyspace: "ks"})
		if len(info.Info.Secondary) != 1 || info.Info.Secondary[0] != "tag" {
			t.Errorf("info secondary: %v", info.Info.Secondary)
		}
		q := submit(p, d, &nvme.Command{
			Op: nvme.OpQuerySecondaryPoint, Keyspace: "ks",
			Index: nvme.SecondaryIndexSpec{Name: "tag"},
			Key:   keyenc.PutFloat32(7),
		})
		if q.Status != nvme.StatusOK || len(q.Pairs) != 80 {
			t.Errorf("query after consolidated: %v %d", q.Status, len(q.Pairs))
		}
	})
	env.Run()
}

func TestSyncCommandAndAccessors(t *testing.T) {
	env, d, st := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := loadParticles(p, d, "s", 100); err != nil {
			t.Error(err)
			return
		}
		before := st.MediaWrite.Value()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "s"}); c.Status != nvme.StatusOK {
			t.Errorf("sync: %v", c.Status)
		}
		if st.MediaWrite.Value() <= before {
			t.Error("sync flushed nothing to media")
		}
	})
	env.Run()
	if d.Link() == nil || d.SSD() == nil || d.Stats() != st {
		t.Fatal("accessors broken")
	}
}

func TestQueryWithLimitThroughQueue(t *testing.T) {
	env, d, _ := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := loadParticles(p, d, "lim", 500); err != nil {
			t.Error(err)
			return
		}
		_ = submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "lim"})
		waitCompacted(p, d, "lim")
		c := submit(p, d, &nvme.Command{Op: nvme.OpQueryPrimaryRange, Keyspace: "lim", ResultLimit: 25})
		if c.Status != nvme.StatusOK || len(c.Pairs) != 25 {
			t.Errorf("limited range: %v %d", c.Status, len(c.Pairs))
		}
		// Results sorted and values intact.
		for i := 1; i < len(c.Pairs); i++ {
			if bytes.Compare(c.Pairs[i-1].Key, c.Pairs[i].Key) >= 0 {
				t.Error("range results unsorted")
				break
			}
		}
	})
	env.Run()
}

func TestDeleteWhileIndexBuildingDeferred(t *testing.T) {
	env, d, _ := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if err := loadParticles(p, d, "del", 2000); err != nil {
			t.Error(err)
			return
		}
		_ = submit(p, d, &nvme.Command{
			Op: nvme.OpCompactWithIndexes, Keyspace: "del",
			Indexes: []nvme.SecondaryIndexSpec{
				{Name: "tag", Offset: 12, Length: 4, Type: keyenc.TypeBytes},
			},
		})
		// Delete immediately: must wait for background work, then remove.
		c := submit(p, d, &nvme.Command{Op: nvme.OpDeleteKeyspace, Keyspace: "del"})
		if c.Status != nvme.StatusOK {
			t.Errorf("delete during background work: %v", c.Status)
			return
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpKeyspaceInfo, Keyspace: "del"}); c.Status != nvme.StatusNotFound {
			t.Errorf("keyspace survived delete: %v", c.Status)
		}
		if free := d.Engine().ZoneManager().UsedZones(); free != 0 {
			t.Errorf("zones leaked after delete: %d", free)
		}
	})
	env.Run()
}
