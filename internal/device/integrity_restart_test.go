package device

import (
	"fmt"
	"testing"
	"time"

	"kvcsd/internal/core"
	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
)

// TestRestartWithLatentBitRot combines the two corruption modes in one zone
// history: latent bit-rot in snapshot-covered VLOG granules AND a power cut
// tearing an in-flight append. The two must stay separately attributed — the
// recovery scrub realigns the torn zone without touching (or laundering) the
// rot, the media scrub then finds exactly the two rotted granules, and each
// granule repairs exactly once.
func TestRestartWithLatentBitRot(t *testing.T) {
	env, d, st := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("create: %v", c.Status)
		}
		var pairs []nvme.KVPair
		for i := 0; i < 500; i++ {
			pairs = append(pairs, nvme.KVPair{
				Key:   []byte(fmt.Sprintf("key-%04d", i)),
				Value: []byte(fmt.Sprintf("value-%04d-%048d", i, i)),
			})
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpBulkStore, Keyspace: "ks", Pairs: pairs}); c.Status != nvme.StatusOK {
			t.Fatalf("bulk: %v", c.Status)
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("sync: %v", c.Status)
		}

		// Snapshot clean copies of the first two VLOG granules (the replica
		// donor's role in this single-device test), then rot them in place.
		var donors [2][]byte
		for g := int64(0); g < 2; g++ {
			addr := nvme.ExtentAddr{Kind: uint8(core.ExtentVLOG), Granule: g}
			c := submit(p, d, &nvme.Command{Op: nvme.OpReadExtent, Keyspace: "ks", Extent: addr})
			if c.Status != nvme.StatusOK {
				t.Fatalf("read extent %d: %v", g, c.Status)
			}
			donors[g] = c.Value
		}
		for g := int64(0); g < 2; g++ {
			addr := nvme.ExtentAddr{Kind: uint8(core.ExtentVLOG), Granule: g, Bits: 8}
			if c := submit(p, d, &nvme.Command{Op: nvme.OpCorruptMedia, Keyspace: "ks", Extent: addr}); c.Status != nvme.StatusOK {
				t.Fatalf("corrupt granule %d: %v", g, c.Status)
			}
		}

		// Keep ingesting unsynced data while a second proc waits for a flush
		// burst to start issuing media writes, then cuts power so the append
		// tears mid-granule.
		var cutRep ssd.PowerCutReport
		cutter := env.Go("cutter", func(cp *sim.Proc) {
			base := st.MediaWrite.Value()
			for st.MediaWrite.Value() == base && !d.PoweredOff() {
				cp.Sleep(time.Microsecond)
			}
			cutRep = d.PowerCut(cp)
		})
		cut := false
		for i := 0; i < 3000; i++ {
			key := []byte(fmt.Sprintf("post-%04d", i))
			val := []byte(fmt.Sprintf("postval-%04d-%044d", i, i))
			c := submit(p, d, &nvme.Command{Op: nvme.OpStore, Keyspace: "ks", Key: key, Value: val})
			if c.Status == nvme.StatusPoweredOff {
				cut = true
				break
			}
			if c.Status != nvme.StatusOK {
				t.Fatalf("store %d: %v", i, c.Status)
			}
		}
		p.Join(cutter)
		if !cut {
			t.Fatal("power cut never landed during the unsynced ingest")
		}
		if cutRep.TornZones == 0 {
			t.Fatalf("cut tore no zone (in-flight appends: %d)", cutRep.InFlightAppends)
		}

		rep, err := d.Restart(p)
		if err != nil {
			t.Fatalf("restart: %v", err)
		}
		// The recovery scrub's job is write-pointer realignment; the latent
		// rot sits in snapshot-covered granules it must not read, flag, or
		// overwrite.
		if rep.RepairedZones == 0 {
			t.Fatal("recovery realigned no zone despite a torn append")
		}
		if n := st.CorruptDetected.Value(); n != 0 {
			t.Fatalf("restart detected %d corruptions (media scrub's job, not recovery's)", n)
		}
		if n := st.RepairedExtents.Value(); n != 0 {
			t.Fatalf("restart repaired %d extents (zone realignment must not count as extent repair)", n)
		}

		// One media scrub pass: exactly the two rotted granules, and not the
		// granule the recovery completed (its checksum coverage was dropped,
		// so it cannot be double-counted as corrupt).
		scrub := func() *core.ScrubReport {
			c := submit(p, d, &nvme.Command{Op: nvme.OpScrubMedia})
			if c.Status != nvme.StatusOK {
				t.Fatalf("scrub: %v", c.Status)
			}
			sr, err := core.DecodeScrubReport(c.Value)
			if err != nil {
				t.Fatalf("decode scrub report: %v", err)
			}
			return sr
		}
		sr := scrub()
		if len(sr.Corrupt) != 2 {
			t.Fatalf("scrub found %d corrupt extents, want exactly the 2 rotted granules: %+v", len(sr.Corrupt), sr.Corrupt)
		}
		for i, ext := range sr.Corrupt {
			if ext.Kind != core.ExtentVLOG || ext.Granule != int64(i) {
				t.Fatalf("corrupt extent %d = %s granule %d, want vlog granule %d", i, ext.Kind, ext.Granule, i)
			}
		}
		if n := st.CorruptDetected.Value(); n != 2 {
			t.Fatalf("detected counter = %d, want 2", n)
		}

		// Repair each granule once from its saved donor copy; a second scrub
		// pass must come back clean without growing the repair count.
		for g := int64(0); g < 2; g++ {
			addr := nvme.ExtentAddr{Kind: uint8(core.ExtentVLOG), Granule: g}
			if c := submit(p, d, &nvme.Command{Op: nvme.OpRepairExtent, Keyspace: "ks", Extent: addr, Value: donors[g]}); c.Status != nvme.StatusOK {
				t.Fatalf("repair granule %d: %v", g, c.Status)
			}
		}
		if n := st.RepairedExtents.Value(); n != 2 {
			t.Fatalf("repaired extents = %d, want 2 (one per rotted granule)", n)
		}
		sr = scrub()
		if len(sr.Corrupt) != 0 {
			t.Fatalf("post-repair scrub still finds %d corrupt extents: %+v", len(sr.Corrupt), sr.Corrupt)
		}
		if n := st.RepairedExtents.Value(); n != 2 {
			t.Fatalf("repaired extents grew to %d after a clean scrub (double-counted)", n)
		}

		// With the rot repaired, compaction reads the VLOG clean and every
		// synced pair survives the whole ordeal byte-exact.
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("compact: %v", c.Status)
		}
		waitCompacted(p, d, "ks")
		for _, pr := range pairs {
			c := submit(p, d, &nvme.Command{Op: nvme.OpRetrieve, Keyspace: "ks", Key: pr.Key})
			if c.Status != nvme.StatusOK || string(c.Value) != string(pr.Value) {
				t.Fatalf("lost synced pair %q: %v %q", pr.Key, c.Status, c.Value)
			}
		}
	})
	env.Run()
}

// TestCompactionFailsTypedOnRottedVLOG rots a value granule and then compacts:
// the sort's verified reads must kill the compaction with StatusCorrupted
// surfaced through the status poll — never a sorted run built from poisoned
// bytes, and never a waiter polling forever.
func TestCompactionFailsTypedOnRottedVLOG(t *testing.T) {
	env, d, _ := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("create: %v", c.Status)
		}
		for i := 0; i < 300; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			val := []byte(fmt.Sprintf("value-%04d-%040d", i, i))
			if c := submit(p, d, &nvme.Command{Op: nvme.OpStore, Keyspace: "ks", Key: key, Value: val}); c.Status != nvme.StatusOK {
				t.Fatalf("store %d: %v", i, c.Status)
			}
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("sync: %v", c.Status)
		}
		addr := nvme.ExtentAddr{Kind: uint8(core.ExtentVLOG), Granule: 0, Bits: 8}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCorruptMedia, Keyspace: "ks", Extent: addr}); c.Status != nvme.StatusOK {
			t.Fatalf("corrupt: %v", c.Status)
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("compact: %v", c.Status)
		}
		for i := 0; ; i++ {
			c := submit(p, d, &nvme.Command{Op: nvme.OpCompactStatus, Keyspace: "ks"})
			if c.Done {
				t.Fatal("compaction succeeded over a rotted VLOG granule")
			}
			if c.Status != nvme.StatusOK {
				if c.Status != nvme.StatusCorrupted {
					t.Fatalf("compact status = %v, want %v", c.Status, nvme.StatusCorrupted)
				}
				return
			}
			if i > 10000 {
				t.Fatal("compact status never surfaced the corruption")
			}
			p.Sleep(time.Millisecond)
		}
	})
	env.Run()
}
