package device

import (
	"fmt"
	"testing"

	"kvcsd/internal/nvme"
	"kvcsd/internal/sim"
)

// TestRestartRecoversSyncedWrites cuts power after an explicit Sync and
// verifies every synced pair survives the restart.
func TestRestartRecoversSyncedWrites(t *testing.T) {
	env, d, _ := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("create: %v", c.Status)
		}
		var pairs []nvme.KVPair
		for i := 0; i < 500; i++ {
			pairs = append(pairs, nvme.KVPair{
				Key:   []byte(fmt.Sprintf("key-%04d", i)),
				Value: []byte(fmt.Sprintf("value-%04d-%032d", i, i)),
			})
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpBulkStore, Keyspace: "ks", Pairs: pairs}); c.Status != nvme.StatusOK {
			t.Fatalf("bulk: %v", c.Status)
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("sync: %v", c.Status)
		}

		d.PowerCut(p)
		if !d.PoweredOff() {
			t.Fatal("device should be powered off")
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpRetrieve, Keyspace: "ks", Key: pairs[0].Key}); c.Status != nvme.StatusPoweredOff {
			t.Fatalf("powered-off retrieve: %v", c.Status)
		}

		rep, err := d.Restart(p)
		if err != nil {
			t.Fatalf("restart: %v", err)
		}
		if d.PoweredOff() {
			t.Fatal("device should be powered on")
		}
		if rep.Keyspaces != 1 {
			t.Fatalf("scrubbed keyspaces = %d, want 1", rep.Keyspaces)
		}

		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("compact: %v", c.Status)
		}
		waitCompacted(p, d, "ks")
		for _, pr := range pairs {
			c := submit(p, d, &nvme.Command{Op: nvme.OpRetrieve, Keyspace: "ks", Key: pr.Key})
			if c.Status != nvme.StatusOK || string(c.Value) != string(pr.Value) {
				t.Fatalf("lost synced pair %q: %v %q", pr.Key, c.Status, c.Value)
			}
		}
	})
	env.Run()
}

// TestRestartDuringIngest cuts power while unsynced writes are in flight:
// recovery must come back clean (no invariant violation, no error) and every
// pair synced before the cut must survive.
func TestRestartDuringIngest(t *testing.T) {
	env, d, _ := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("create: %v", c.Status)
		}
		synced := 0
		for i := 0; i < 300; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			val := []byte(fmt.Sprintf("value-%04d-%048d", i, i))
			if c := submit(p, d, &nvme.Command{Op: nvme.OpStore, Keyspace: "ks", Key: key, Value: val}); c.Status != nvme.StatusOK {
				t.Fatalf("store %d: %v", i, c.Status)
			}
			if i == 199 {
				if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "ks"}); c.Status != nvme.StatusOK {
					t.Fatalf("sync: %v", c.Status)
				}
				synced = i + 1
			}
		}
		// Cut with the tail of the workload unsynced (some flushed frames may
		// roll forward, the DRAM buffer is gone).
		d.PowerCut(p)
		if _, err := d.Restart(p); err != nil {
			t.Fatalf("restart: %v", err)
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCompact, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("compact: %v", c.Status)
		}
		waitCompacted(p, d, "ks")
		for i := 0; i < synced; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			want := fmt.Sprintf("value-%04d-%048d", i, i)
			c := submit(p, d, &nvme.Command{Op: nvme.OpRetrieve, Keyspace: "ks", Key: key})
			if c.Status != nvme.StatusOK || string(c.Value) != want {
				t.Fatalf("lost synced pair %q: %v %q", key, c.Status, c.Value)
			}
		}
	})
	env.Run()
}

// TestRestartIsIdempotent power-cycles twice in a row; the second cycle must
// find nothing left to repair.
func TestRestartIsIdempotent(t *testing.T) {
	env, d, _ := newTestDevice()
	env.Go("host", func(p *sim.Proc) {
		defer d.Shutdown()
		if c := submit(p, d, &nvme.Command{Op: nvme.OpCreateKeyspace, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("create: %v", c.Status)
		}
		for i := 0; i < 100; i++ {
			key := []byte(fmt.Sprintf("k%03d", i))
			if c := submit(p, d, &nvme.Command{Op: nvme.OpStore, Keyspace: "ks", Key: key, Value: key}); c.Status != nvme.StatusOK {
				t.Fatalf("store: %v", c.Status)
			}
		}
		if c := submit(p, d, &nvme.Command{Op: nvme.OpSync, Keyspace: "ks"}); c.Status != nvme.StatusOK {
			t.Fatalf("sync: %v", c.Status)
		}
		d.PowerCut(p)
		if _, err := d.Restart(p); err != nil {
			t.Fatalf("first restart: %v", err)
		}
		d.PowerCut(p)
		rep, err := d.Restart(p)
		if err != nil {
			t.Fatalf("second restart: %v", err)
		}
		if rep.TornRecords != 0 || rep.RepairedZones != 0 || rep.OrphanZones != 0 {
			t.Fatalf("second restart repaired things: %+v", rep)
		}
		if d.Restarts() != 2 {
			t.Fatalf("restarts = %d, want 2", d.Restarts())
		}
	})
	env.Run()
}
