// Package device assembles a complete KV-CSD computational storage device:
// the ZNS SSD, the SoC (4 ARM cores running the core.Engine as a userspace
// SPDK-style driver), the NVMe queue pair facing the host, and the dispatch
// loops that execute incoming commands.
//
// Dispatch mirrors the prototype's concurrency: one dispatcher per SoC core
// pops commands from the submission queue and executes them on the engine.
// Long-running operations — compaction, secondary index construction — are
// acknowledged immediately and continue as device background jobs, which is
// what makes them invisible to foreground host threads (paper §V).
package device

import (
	"errors"
	"time"

	"kvcsd/internal/compaction"
	"kvcsd/internal/core"
	"kvcsd/internal/host"
	"kvcsd/internal/nvme"
	"kvcsd/internal/obs"
	"kvcsd/internal/pcie"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
	"kvcsd/internal/stats"
)

// Options assembles a device.
type Options struct {
	SSD    ssd.Config
	SoC    host.Config
	Link   pcie.Config
	Engine core.Config
	// QueueDepth is the NVMe submission queue depth.
	QueueDepth int
	// Dispatchers is the number of command dispatch loops (default: SoC cores).
	Dispatchers int
	// Seed drives all device-internal randomness.
	Seed int64
	// Trace enables command/job span tracing (internal/obs). Off by default;
	// when off the hot path pays only nil checks.
	Trace bool
	// Metrics enables the metrics registry: stage histograms per opcode plus
	// device gauges (zones, DRAM, background jobs).
	Metrics bool
	// SharedRegistry, when non-nil (and Metrics is set), makes the device
	// publish into this registry instead of creating a private one — how an
	// array aggregates N devices into one dump. Per-device gauges are
	// namespaced under GaugePrefix; the device does not attach its IOStats
	// (the array attaches a merged block itself).
	SharedRegistry *obs.Registry
	// SharedTracer, when non-nil (and Trace is set), collects this device's
	// command spans into a fleet-wide tracer instead of a private one.
	SharedTracer *obs.Tracer
	// GaugePrefix namespaces this device's gauges in the registry (e.g.
	// "dev3/" yields "dev3/ssd/zones_open"). Empty means no prefix.
	GaugePrefix string
}

// DefaultOptions returns the Table-I-flavoured device.
func DefaultOptions() Options {
	return Options{
		SSD:        ssd.DefaultConfig(),
		SoC:        host.DefaultSoCConfig(),
		Link:       pcie.DefaultConfig(),
		Engine:     core.DefaultConfig(),
		QueueDepth: 256,
		Seed:       1,
	}
}

// Device is a running KV-CSD instance.
type Device struct {
	env    *sim.Env
	opts   Options
	ssd    *ssd.Device
	soc    *host.Host
	link   *pcie.Link
	engine *core.Engine
	queue  *nvme.QueuePair
	st     *stats.IOStats
	rng    *sim.RNG
	closed bool

	// Power-loss state (see restart.go).
	poweredOff bool
	restarts   int

	// Observability (nil unless enabled in Options).
	tr       *obs.Tracer
	reg      *obs.Registry
	gaugeReg *obs.Registry // namespaced view engines publish gauges into
	samplers []*obs.Sampler
}

// New creates and starts a device in the simulation environment. Its
// dispatch loops run until Shutdown.
func New(env *sim.Env, opts Options, st *stats.IOStats) *Device {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Dispatchers <= 0 {
		// SPDK-style async I/O: each core juggles several outstanding
		// commands; CPU bursts still contend for the real cores.
		opts.Dispatchers = opts.SoC.Cores * 4
	}
	rng := sim.NewRNG(opts.Seed)
	dev := ssd.New(env, opts.SSD, st)
	dev.SetSeed(opts.Seed)
	soc := host.New(env, opts.SoC)
	d := &Device{
		env:    env,
		opts:   opts,
		ssd:    dev,
		soc:    soc,
		link:   pcie.New(env, opts.Link, st),
		engine: core.NewEngine(env, dev, soc, opts.Engine, rng.Fork(1), st),
		queue:  nvme.NewQueuePair(env, opts.QueueDepth),
		st:     st,
		rng:    rng,
	}
	// The collaborative planner reads the submission-queue backlog as its
	// foreground-pressure signal.
	d.engine.SetQueueProbe(func() int { return d.queue.Pending() })
	if opts.Trace || opts.Metrics {
		if opts.Metrics {
			if opts.SharedRegistry != nil {
				d.reg = opts.SharedRegistry
			} else {
				d.reg = obs.NewRegistry(env)
				d.reg.AttachIOStats(st)
			}
		}
		if opts.Trace {
			if opts.SharedTracer != nil {
				d.tr = opts.SharedTracer
			} else {
				d.tr = obs.NewTracer(env)
			}
			d.tr.SetRegistry(d.reg)
		}
		gaugeReg := d.reg
		if gaugeReg != nil {
			gaugeReg = gaugeReg.Namespace(opts.GaugePrefix)
		}
		d.gaugeReg = gaugeReg
		d.ssd.SetObs(d.tr, gaugeReg)
		d.engine.SetObs(d.tr, gaugeReg)
		d.link.SetTracer(d.tr)
	}
	for i := 0; i < opts.Dispatchers; i++ {
		env.Go("kvcsd-dispatch", d.dispatchLoop)
	}
	if opts.Engine.ScrubInterval > 0 {
		env.Go("kvcsd-scrub", d.scrubLoop)
	}
	return d
}

// scrubLoop runs the background media scrubber every Engine.ScrubInterval of
// virtual time. Scrub reads go through the SSD channels and its checksum work
// through the SoC cores, contending with foreground commands the way paper
// compaction does. The loop exits at Shutdown (it must, or the simulation's
// event queue never drains) and skips passes while the device is powered off.
func (d *Device) scrubLoop(p *sim.Proc) {
	for {
		p.Sleep(sim.Duration(d.opts.Engine.ScrubInterval))
		if d.closed {
			return
		}
		if d.poweredOff {
			continue
		}
		rep, err := d.engine.MediaScrub(p)
		if err != nil || rep == nil {
			continue // scrub is advisory; errors surface via counters
		}
		if d.gaugeReg != nil {
			d.gaugeReg.Gauge("scrub/scanned_bytes").Add(float64(rep.ScannedBytes))
			d.gaugeReg.Gauge("scrub/corrupt_extents").Add(float64(len(rep.Corrupt)))
			d.gaugeReg.Gauge("scrub/quarantined_zones").Add(float64(rep.Quarantined))
		}
	}
}

// Queue returns the NVMe queue pair clients submit to.
func (d *Device) Queue() *nvme.QueuePair { return d.queue }

// Link returns the PCIe link clients transfer over.
func (d *Device) Link() *pcie.Link { return d.link }

// Engine exposes the device engine (tools, tests).
func (d *Device) Engine() *core.Engine { return d.engine }

// SSD exposes the underlying drive (tools, tests).
func (d *Device) SSD() *ssd.Device { return d.ssd }

// Stats returns the device's I/O statistics block.
func (d *Device) Stats() *stats.IOStats { return d.st }

// Tracer returns the device tracer, or nil when tracing is disabled.
func (d *Device) Tracer() *obs.Tracer { return d.tr }

// Registry returns the metrics registry, or nil when metrics are disabled.
func (d *Device) Registry() *obs.Registry { return d.reg }

// SamplerColumns are the per-interval rates and instantaneous levels a
// device sampler records. Rates are averaged over the sampling interval;
// levels are read at the sample instant.
var SamplerColumns = []string{
	"cmds_per_s",    // completed commands per second
	"app_write_Bps", // application bytes ingested per second
	"media_read_Bps",
	"media_write_Bps",
	"h2d_Bps",     // PCIe host->device bytes per second
	"d2h_Bps",     // PCIe device->host bytes per second
	"outstanding", // commands submitted but not completed
	"open_zones",
	"bg_jobs", // running background jobs (compaction, index builds)
}

// SamplerUnits carries one unit per SamplerColumns entry; StartSampler
// attaches them so WriteCSV emits a "# units:" line under the header.
var SamplerUnits = []string{
	"1/s", "B/s", "B/s", "B/s", "B/s", "B/s", "cmds", "zones", "jobs",
}

// StartSampler begins recording a device time-series every interval of
// virtual time. The sampler is stopped automatically at Shutdown (or earlier
// via its own Stop). Rows follow SamplerColumns.
func (d *Device) StartSampler(interval time.Duration) *obs.Sampler {
	prev := d.st.Clone()
	var prevCmds int64
	s := obs.StartSampler(d.env, interval, SamplerColumns, func(now sim.Time, dt time.Duration) []float64 {
		cur := d.st
		delta := cur.Delta(prev)
		cmds := d.queue.Completed() - prevCmds
		prev = cur.Clone()
		prevCmds = d.queue.Completed()
		sec := dt.Seconds()
		rate := func(n int64) float64 {
			if sec <= 0 {
				return 0
			}
			return float64(n) / sec
		}
		return []float64{
			rate(cmds),
			rate(delta.AppWrite.Value()),
			rate(delta.MediaRead.Value()),
			rate(delta.MediaWrite.Value()),
			rate(delta.HostToDevice.Value()),
			rate(delta.DeviceToHost.Value()),
			float64(d.queue.Submitted() - d.queue.Completed()),
			float64(d.ssd.OpenZones()),
			float64(d.engine.BackgroundJobs()),
		}
	})
	s.SetUnits(SamplerUnits)
	d.samplers = append(d.samplers, s)
	return s
}

// WaitBackgroundIdle blocks until device background jobs finish.
func (d *Device) WaitBackgroundIdle(p *sim.Proc) error {
	return d.engine.WaitBackgroundIdle(p)
}

// Shutdown closes the command queue: in-flight commands complete, then the
// dispatch loops exit. Any running samplers record a final row and stop.
func (d *Device) Shutdown() {
	d.closed = true
	// Fail outstanding host-merge jobs and release parked poll dispatchers;
	// in-flight compactions fall back to device-side merging.
	d.engine.CloseAssist()
	d.queue.Close()
	for _, s := range d.samplers {
		s.Stop()
	}
}

// dispatchLoop pops commands and executes them on the engine.
func (d *Device) dispatchLoop(p *sim.Proc) {
	for {
		cmd, resp := d.queue.Pop(p)
		if cmd == nil {
			return // queue closed and drained
		}
		d.st.Commands.Add(1)
		// Everything from pickup to completion is "service" time; media spans
		// recorded below it claim their share out of it.
		svc := cmd.Span.Child("service", obs.StageService)
		if svc != nil {
			d.tr.Push(p, svc)
		}
		comp := d.execute(p, cmd)
		if svc != nil {
			d.tr.Pop(p)
			svc.End()
		}
		resp.Complete(comp)
	}
}

// execute runs one command synchronously (background ops return fast and
// continue as engine jobs).
func (d *Device) execute(p *sim.Proc, cmd *nvme.Command) *nvme.Completion {
	if d.poweredOff {
		return &nvme.Completion{Status: nvme.StatusPoweredOff}
	}
	eng := d.engine
	switch cmd.Op {
	case nvme.OpCreateKeyspace:
		return statusOnly(eng.CreateKeyspace(p, cmd.Keyspace))

	case nvme.OpOpenKeyspace:
		_, err := eng.Keyspace(cmd.Keyspace)
		return statusOnly(err)

	case nvme.OpDeleteKeyspace:
		return statusOnly(eng.DeleteKeyspace(p, cmd.Keyspace))

	case nvme.OpStore:
		return statusOnly(eng.Put(p, cmd.Keyspace, cmd.Key, cmd.Value))

	case nvme.OpDelete:
		return statusOnly(eng.Delete(p, cmd.Keyspace, cmd.Key))

	case nvme.OpBulkStore:
		ops := make([]core.KVOp, len(cmd.Pairs))
		for i, pr := range cmd.Pairs {
			ops[i] = core.KVOp{Key: pr.Key, Value: pr.Value, Delete: pr.Tombstone}
		}
		return statusOnly(eng.BulkOps(p, cmd.Keyspace, ops))

	case nvme.OpSync:
		return statusOnly(eng.Sync(p, cmd.Keyspace))

	case nvme.OpCompact:
		return statusOnly(eng.Compact(p, cmd.Keyspace))

	case nvme.OpCompactWithIndexes:
		specs := make([]core.SecondarySpec, len(cmd.Indexes))
		for i, ix := range cmd.Indexes {
			specs[i] = core.SecondarySpec{Name: ix.Name, Offset: ix.Offset, Length: ix.Length, Type: ix.Type}
		}
		return statusOnly(eng.CompactWithIndexes(p, cmd.Keyspace, specs))

	case nvme.OpCompactStatus:
		ks, err := eng.Keyspace(cmd.Keyspace)
		if err != nil {
			return statusOnly(err)
		}
		done := ks.State() == core.StateCompacted
		// A dead compaction attempt (e.g. a rotted log extent failed the
		// sort's verified reads) must surface as a typed status, not leave
		// the waiter polling a keyspace that will never reach COMPACTED.
		if !done && ks.CompactErr() != nil {
			return statusOnly(ks.CompactErr())
		}
		pr := ks.CompactionProgress()
		return &nvme.Completion{Status: nvme.StatusOK, Done: done, Progress: &pr}

	case nvme.OpHostMergePoll:
		// Long-poll: the dispatcher parks until a merge job arrives (there
		// are several dispatch loops, so foreground commands keep flowing).
		job, ok := eng.AssistQueue().Poll(p, cmd.ResultLimit)
		if !ok {
			return &nvme.Completion{Status: nvme.StatusOK, Done: true}
		}
		return &nvme.Completion{Status: nvme.StatusOK, Value: job.Payload, Count: int64(job.ID)}

	case nvme.OpHostMergePush:
		var herr error
		if len(cmd.Value) == 0 {
			herr = errors.New("device: host merge pushed no data")
		}
		// Unknown job IDs (stale pushes after a power cut rebuilt the
		// engine) are ignored by the queue.
		eng.AssistQueue().Complete(uint64(cmd.Extent.Granule), cmd.Value, herr)
		return &nvme.Completion{Status: nvme.StatusOK}

	case nvme.OpCompactPolicy:
		if len(cmd.Value) > 0 {
			cc, err := compaction.DecodeConfig(cmd.Value)
			if err != nil {
				return &nvme.Completion{Status: nvme.StatusInvalid}
			}
			eng.SetCompactionConfig(cc)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Value: compaction.EncodeConfig(eng.CompactionConfig())}

	case nvme.OpMigrateCold:
		moved, err := eng.MigrateCold(p)
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Count: int64(moved)}

	case nvme.OpBuildSecondaryIndex:
		spec := core.SecondarySpec{
			Name:   cmd.Index.Name,
			Offset: cmd.Index.Offset,
			Length: cmd.Index.Length,
			Type:   cmd.Index.Type,
		}
		return statusOnly(eng.BuildSecondaryIndex(p, cmd.Keyspace, spec))

	case nvme.OpIndexStatus:
		ks, err := eng.Keyspace(cmd.Keyspace)
		if err != nil {
			return statusOnly(err)
		}
		for _, n := range ks.SecondaryIndexNames() {
			if n == cmd.Index.Name {
				return &nvme.Completion{Status: nvme.StatusOK, Done: true}
			}
		}
		return &nvme.Completion{Status: nvme.StatusOK, Done: false}

	case nvme.OpRetrieve:
		v, found, err := eng.Get(p, cmd.Keyspace, cmd.Key)
		if err != nil {
			return statusOnly(err)
		}
		if !found {
			return &nvme.Completion{Status: nvme.StatusNotFound}
		}
		return &nvme.Completion{Status: nvme.StatusOK, Value: v}

	case nvme.OpExist:
		ok, err := eng.Exist(p, cmd.Keyspace, cmd.Key)
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Exists: ok}

	case nvme.OpQueryPrimaryRange, nvme.OpList:
		var pairs []nvme.KVPair
		_, err := eng.RangePrimary(p, cmd.Keyspace, cmd.Low, cmd.High, cmd.ResultLimit, func(pr core.Pair) bool {
			pairs = append(pairs, nvme.KVPair{Key: pr.Key, Value: pr.Value})
			return true
		})
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Pairs: pairs}

	case nvme.OpQuerySecondaryRange:
		var pairs []nvme.KVPair
		_, err := eng.RangeSecondary(p, cmd.Keyspace, cmd.Index.Name, cmd.Low, cmd.High, cmd.ResultLimit, func(pr core.Pair) bool {
			pairs = append(pairs, nvme.KVPair{Key: pr.Key, Value: pr.Value})
			return true
		})
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Pairs: pairs}

	case nvme.OpQuerySecondaryPoint:
		var pairs []nvme.KVPair
		_, err := eng.GetSecondary(p, cmd.Keyspace, cmd.Index.Name, cmd.Key, cmd.ResultLimit, func(pr core.Pair) bool {
			pairs = append(pairs, nvme.KVPair{Key: pr.Key, Value: pr.Value})
			return true
		})
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Pairs: pairs}

	case nvme.OpScrubMedia:
		rep, err := eng.MediaScrub(p)
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Value: core.EncodeScrubReport(rep)}

	case nvme.OpReadExtent:
		data, err := eng.ReadExtent(p, extentRef(cmd))
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Value: data}

	case nvme.OpRepairExtent:
		return statusOnly(eng.RepairExtent(p, extentRef(cmd), cmd.Value))

	case nvme.OpCorruptMedia:
		flips, err := eng.CorruptExtent(extentRef(cmd), cmd.Extent.Bits)
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Count: int64(flips)}

	case nvme.OpKeyspaceInfo:
		info, err := eng.KeyspaceInfo(cmd.Keyspace)
		if err != nil {
			return statusOnly(err)
		}
		return &nvme.Completion{Status: nvme.StatusOK, Info: nvme.KeyspaceInfo{
			Name:       info.Name,
			State:      info.State.String(),
			Pairs:      info.Pairs,
			Bytes:      info.Bytes,
			MinKey:     info.MinKey,
			MaxKey:     info.MaxKey,
			Secondary:  info.Secondary,
			ZoneCount:  info.ZoneCount,
			CompactDur: sim.Time(info.CompactDur),
		}}

	default:
		return &nvme.Completion{Status: nvme.StatusInvalid}
	}
}

// extentRef translates a command's extent address to the core form.
func extentRef(cmd *nvme.Command) core.ExtentRef {
	return core.ExtentRef{
		Keyspace: cmd.Keyspace,
		Kind:     core.ExtentKind(cmd.Extent.Kind),
		Index:    cmd.Extent.Index,
		Granule:  cmd.Extent.Granule,
	}
}

// statusOnly maps an engine error to a completion status.
func statusOnly(err error) *nvme.Completion {
	return &nvme.Completion{Status: statusOf(err)}
}

func statusOf(err error) nvme.Status {
	switch {
	case err == nil:
		return nvme.StatusOK
	case errors.Is(err, core.ErrKeyspaceNotFound), errors.Is(err, core.ErrIndexNotFound):
		return nvme.StatusNotFound
	case errors.Is(err, core.ErrKeyspaceExists), errors.Is(err, core.ErrIndexExists):
		return nvme.StatusExists
	case errors.Is(err, core.ErrKeyspaceState), errors.Is(err, core.ErrDeleted):
		return nvme.StatusKeyspaceState
	case errors.Is(err, core.ErrNoZones), errors.Is(err, ssd.ErrDeviceCapacity):
		return nvme.StatusNoSpace
	case errors.Is(err, core.ErrKeyTooLarge), errors.Is(err, core.ErrValueTooLarge):
		return nvme.StatusInvalid
	case errors.Is(err, ssd.ErrPoweredOff):
		return nvme.StatusPoweredOff
	case errors.Is(err, core.ErrCorrupted):
		return nvme.StatusCorrupted
	case errors.Is(err, core.ErrExtentGone):
		return nvme.StatusNotFound
	default:
		return nvme.StatusInternal
	}
}
