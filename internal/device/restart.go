// Power loss and restart. A power cut freezes the SSD media (tearing the
// in-flight zone append) and discards everything the device held in DRAM:
// ingest buffers, sort batches, the engine's entire in-memory state. Restart
// models the controller coming back up: a fresh engine is constructed over
// the surviving media, Manager.Recover rebuilds the keyspace table from the
// metadata zones, and the recovery scrub realigns the log clusters and rolls
// forward whatever flush frames survived past the last snapshot.
package device

import (
	"time"

	"kvcsd/internal/core"
	"kvcsd/internal/sim"
	"kvcsd/internal/ssd"
)

// PoweredOff reports whether the device is currently without power.
func (d *Device) PoweredOff() bool { return d.poweredOff }

// Restarts returns how many times the device has been power-cycled.
func (d *Device) Restarts() int { return d.restarts }

// PowerCut cuts power at the current instant. The SSD tears the in-flight
// zone append at a seeded offset and freezes; every command — in flight or
// submitted later — completes with StatusPoweredOff; background jobs die at
// their next media operation. Idempotent while powered off.
func (d *Device) PowerCut(p *sim.Proc) ssd.PowerCutReport {
	if d.poweredOff {
		return ssd.PowerCutReport{}
	}
	d.poweredOff = true
	d.engine.Halt()
	// Fail host-merge jobs and release parked poll dispatchers: waiting
	// compactions fall back to device merging and then die against the
	// powered-off media; the host assist loop sees Done and exits.
	d.engine.CloseAssist()
	return d.ssd.PowerCut(p)
}

// Restart power-cycles the device: it quiesces the dead controller (every
// in-flight command and background job fails against the powered-off media),
// powers the SSD back on, and brings up a fresh engine that Recovers from the
// metadata zones and Scrubs the media. On success the device serves commands
// again over exactly the durable state.
func (d *Device) Restart(p *sim.Proc) (*core.RecoveryReport, error) {
	if !d.poweredOff {
		d.PowerCut(p)
	}
	// Quiesce: old background jobs and in-flight commands must all have died
	// (against ErrPoweredOff) before power returns, or a stale job waking
	// later could write into zones the new engine owns.
	_ = d.engine.WaitBackgroundIdle(p)
	for d.queue.Submitted() > d.queue.Completed() {
		p.Sleep(10 * time.Microsecond)
	}

	start := p.Now()
	sp := d.tr.StartRoot(p, "restart", "job")
	if sp != nil {
		d.tr.Push(p, sp)
	}
	defer func() {
		if sp != nil {
			d.tr.Pop(p)
			sp.End()
		}
	}()

	d.ssd.PowerOn()
	d.restarts++
	eng := core.NewEngine(d.env, d.ssd, d.soc, d.opts.Engine, d.rng.Fork(int64(d.restarts)+1), d.st)
	eng.SetObs(d.tr, d.gaugeReg)
	eng.SetQueueProbe(func() int { return d.queue.Pending() })
	if err := eng.Recover(p); err != nil {
		d.ssd.PowerCut(p) // recovery failed: the device stays dark
		return nil, err
	}
	rep, err := eng.Scrub(p)
	if err != nil {
		d.ssd.PowerCut(p)
		return rep, err
	}
	d.engine = eng
	d.poweredOff = false
	if d.gaugeReg != nil {
		d.gaugeReg.Gauge("recovery/scrubbed_bytes").Set(float64(rep.ScrubbedBytes))
		d.gaugeReg.Gauge("recovery/torn_records").Set(float64(rep.TornRecords))
		d.gaugeReg.Gauge("recovery/lost_bytes").Set(float64(rep.LostBytes))
		d.gaugeReg.Gauge("recovery/wall_ns").Set(float64(p.Now() - start))
		d.gaugeReg.Gauge("recovery/restarts").Set(float64(d.restarts))
	}
	return rep, nil
}

// SetFaultProfile arms (or with nil disarms) the SSD's seeded probabilistic
// fault schedule.
func (d *Device) SetFaultProfile(fp *ssd.FaultProfile) { d.ssd.SetFaultProfile(fp) }
