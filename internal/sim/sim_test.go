package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv()
	var at Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		at = p.Now()
	})
	end := e.Run()
	if at != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", at)
	}
	if end != at {
		t.Fatalf("Run returned %v, want %v", end, at)
	}
}

func TestSleepZeroYields(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	want := "a1,b1,a2"
	if got := fmt.Sprint(order[0], ",", order[1], ",", order[2]); got != want {
		t.Fatalf("order %v, want %v", got, want)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEnv()
	e.Go("p", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	e.Run()
}

func TestEqualTimeEventsFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestResourceSerializesUse(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "cpu", 1)
	ends := make([]Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Use(r, 10*time.Millisecond)
			ends[i] = p.Now()
		})
	}
	e.Run()
	if ends[0] != Time(10*time.Millisecond) || ends[1] != Time(20*time.Millisecond) {
		t.Fatalf("ends = %v, want [10ms 20ms]", ends)
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "cpu", 4)
	var finish Time
	done := 0
	for i := 0; i < 8; i++ {
		e.Go("w", func(p *Proc) {
			p.Use(r, 10*time.Millisecond)
			done++
			finish = p.Now()
		})
	}
	e.Run()
	if done != 8 {
		t.Fatalf("done = %d", done)
	}
	// 8 jobs, 4 servers, 10ms each => 2 waves => 20ms.
	if finish != Time(20*time.Millisecond) {
		t.Fatalf("finish = %v, want 20ms", finish)
	}
	if r.MaxInUse() != 4 {
		t.Fatalf("max in use %d, want 4", r.MaxInUse())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "chan", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(Duration(i) * time.Microsecond) // stagger arrivals
			p.Use(r, time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v not FIFO by arrival", order)
		}
	}
}

func TestResourceHandoffKeepsUtilization(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "x", 1)
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) { p.Use(r, time.Second) })
	}
	e.Run()
	if got := r.Utilization(); got < 0.999 || got > 1.001 {
		t.Fatalf("utilization %v, want ~1.0", got)
	}
	if r.BusyTime() != 3*time.Second {
		t.Fatalf("busy time %v", r.BusyTime())
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEnv()
	r := NewResource(e, "x", 1)
	e.Go("p", func(p *Proc) { p.Release(r) })
	e.Run()
}

func TestEventBroadcast(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	woke := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			p.Wait(ev)
			woke++
			if p.Now() != Time(7*time.Millisecond) {
				t.Errorf("woke at %v", p.Now())
			}
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		ev.Signal()
	})
	e.Run()
	if woke != 3 {
		t.Fatalf("woke = %d", woke)
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	e.Go("s", func(p *Proc) { ev.Signal() })
	e.Go("w", func(p *Proc) {
		p.Sleep(time.Millisecond)
		before := p.Now()
		p.Wait(ev)
		if p.Now() != before {
			t.Error("wait on fired event advanced time")
		}
	})
	e.Run()
	if !ev.Fired() || ev.FiredAt() != 0 {
		t.Fatalf("fired=%v at=%v", ev.Fired(), ev.FiredAt())
	}
}

func TestDoubleSignalNoop(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e)
	e.Go("s", func(p *Proc) {
		ev.Signal()
		p.Sleep(time.Millisecond)
		ev.Signal()
		if ev.FiredAt() != 0 {
			t.Error("second signal changed FiredAt")
		}
	})
	e.Run()
}

func TestJoin(t *testing.T) {
	e := NewEnv()
	var children []*Proc
	e.Go("parent", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			d := Duration(i) * time.Second
			children = append(children, e.Go("child", func(c *Proc) { c.Sleep(d) }))
		}
		p.Join(children...)
		if p.Now() != Time(3*time.Second) {
			t.Errorf("join finished at %v, want 3s", p.Now())
		}
	})
	e.Run()
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEnv()
	ev := NewEvent(e)
	e.Go("stuck", func(p *Proc) { p.Wait(ev) })
	e.Run()
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected propagated panic")
		}
	}()
	e := NewEnv()
	e.Go("bad", func(p *Proc) { panic("boom") })
	e.Run()
}

func TestRunTwicePanics(t *testing.T) {
	e := NewEnv()
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	e.Run()
}

func TestGaugeTimeWeightedMean(t *testing.T) {
	e := NewEnv()
	var g *Gauge
	e.Go("g", func(p *Proc) {
		g = NewGauge(e)
		g.Set(10)
		p.Sleep(time.Second)
		g.Set(20)
		p.Sleep(time.Second)
		g.Set(0)
	})
	e.Run()
	if g.Max() != 20 {
		t.Fatalf("max %v", g.Max())
	}
	if m := g.Mean(); m < 14.99 || m > 15.01 {
		t.Fatalf("mean %v, want 15", m)
	}
}

func TestTransferTime(t *testing.T) {
	cases := []struct {
		n    int64
		bw   float64
		want Duration
	}{
		{0, 1e9, 0},
		{-5, 1e9, 0},
		{1e9, 1e9, time.Second},
		{4096, 1e9, 4096 * time.Nanosecond},
		{1, 0, 0},
	}
	for _, c := range cases {
		if got := TransferTime(c.n, c.bw); got != c.want {
			t.Errorf("TransferTime(%d, %v) = %v, want %v", c.n, c.bw, got, c.want)
		}
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return TransferTime(x, 1e8) <= TransferTime(y, 1e8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEnv()
		cpu := NewResource(e, "cpu", 2)
		ch := NewResource(e, "ch", 1)
		rng := NewRNG(42)
		var times []Time
		for i := 0; i < 20; i++ {
			d := Duration(rng.Intn(1000)+1) * time.Microsecond
			e.Go("w", func(p *Proc) {
				p.Use(cpu, d)
				p.Use(ch, d/2)
				times = append(times, p.Now())
			})
		}
		e.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(1)
	a := g.Fork(1)
	b := g.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("forked streams look identical (%d/100 equal)", same)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds() = %v", tm.Seconds())
	}
	if tm.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatalf("Add failed")
	}
	if tm.String() != "1.5s" {
		t.Fatalf("String() = %q", tm.String())
	}
}

func TestManyProcessesStress(t *testing.T) {
	e := NewEnv()
	cpu := NewResource(e, "cpu", 8)
	n := 500
	finished := 0
	for i := 0; i < n; i++ {
		e.Go("w", func(p *Proc) {
			for j := 0; j < 5; j++ {
				p.Use(cpu, time.Microsecond)
			}
			finished++
		})
	}
	e.Run()
	if finished != n {
		t.Fatalf("finished %d/%d", finished, n)
	}
	if cpu.Acquires() != int64(n*5) {
		t.Fatalf("acquires %d", cpu.Acquires())
	}
}

func TestResourceQueueLen(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "x", 1)
	e.Go("holder", func(p *Proc) {
		p.Acquire(r)
		p.Sleep(time.Second)
		if r.QueueLen() != 2 {
			t.Errorf("queue len %d, want 2", r.QueueLen())
		}
		p.Release(r)
	})
	for i := 0; i < 2; i++ {
		e.Go("waiter", func(p *Proc) {
			p.Sleep(time.Millisecond)
			p.Acquire(r)
			p.Release(r)
		})
	}
	e.Run()
}
