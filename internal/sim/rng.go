package sim

import "math/rand"

// RNG is a deterministic random source for simulation components. It wraps
// math/rand.Rand with an explicit seed so every run is reproducible; no
// simulation code may use the global rand functions.
type RNG struct {
	r *rand.Rand
}

// NewRNG creates a deterministic generator from the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic stream, keyed by id, so that
// components consume random numbers without perturbing each other.
func (g *RNG) Fork(id int64) *RNG {
	const golden = int64(0x9E3779B97F4A7C15 >> 1)
	return NewRNG(g.r.Int63() ^ (id * golden))
}

// Intn returns a uniform int in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform uint64.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// NormFloat64 returns a standard normal float64.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bytes fills b with random bytes.
func (g *RNG) Bytes(b []byte) {
	g.r.Read(b) //nolint:errcheck // rand.Read never fails
}
