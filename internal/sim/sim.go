// Package sim implements a deterministic discrete-event simulator.
//
// The simulator provides virtual time, cooperatively scheduled processes,
// capacity-limited FIFO resources, and one-shot events. Exactly one process
// runs at a time: a process executes real Go code (building blocks, sorting
// keys, moving bytes) and yields to the scheduler whenever it needs virtual
// time to pass — sleeping, acquiring a busy resource, or waiting on an event.
// Events with equal timestamps fire in the order they were scheduled, so every
// run of a simulation is fully deterministic.
//
// All timing in the KV-CSD reproduction flows through this package: host CPU
// cores, SoC CPU cores, SSD channels and the PCIe link are Resources, and the
// virtual-time critical path through them is what the benchmark harness
// reports as "time".
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is deliberately the
// same base type as time.Duration so the helpers in this package interoperate
// with untyped constants like 5 * time.Microsecond.
type Duration = time.Duration

// MaxTime is the largest representable virtual timestamp.
const MaxTime = Time(math.MaxInt64)

// String formats a Time using time.Duration notation (e.g. "1.5ms").
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the timestamp expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// event is a scheduled wake-up of a process.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	proc *Proc
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Env is a simulation environment: an event queue, a virtual clock, and the
// set of live processes. An Env must be driven by Run from the goroutine that
// created it.
type Env struct {
	now     Time
	seq     uint64
	events  eventQueue
	yield   chan struct{} // running process -> scheduler
	live    int           // processes spawned and not yet finished
	procs   map[int]*Proc // live processes, for deadlock diagnostics
	procSeq int
	running *Proc
	panicV  interface{} // panic propagated out of a process
	didRun  bool
}

// NewEnv creates an empty simulation environment at virtual time zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{}), procs: make(map[int]*Proc)}
}

// Now returns the current virtual time. Outside Run it reports the time the
// clock stopped at.
func (e *Env) Now() Time { return e.now }

// schedule enqueues a wake-up for p at time at.
func (e *Env) schedule(p *Proc, at Time) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, proc: p})
}

// Proc is a simulation process. Each process runs on its own goroutine but is
// scheduled cooperatively: it owns the simulation until it blocks via Sleep,
// Acquire, Wait, or returns.
type Proc struct {
	env    *Env
	name   string
	id     int
	resume chan struct{}
	done   bool
	doneEv *Event // fired when the process body returns
}

// Go spawns a new process that begins at the current virtual time. The
// returned Proc can be waited on via its Done event.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{
		env:    e,
		name:   name,
		id:     e.procSeq,
		resume: make(chan struct{}),
	}
	p.doneEv = NewEvent(e)
	e.live++
	e.procs[p.id] = p
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				if e.panicV == nil {
					e.panicV = fmt.Sprintf("sim: process %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			p.done = true
			e.live--
			delete(e.procs, p.id)
			p.doneEv.Signal()
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.schedule(p, e.now)
	return p
}

// Run drives the simulation until no events remain. It panics if a process
// panicked (propagating the message) and returns the final virtual time.
func (e *Env) Run() Time {
	if e.didRun {
		panic("sim: Env.Run called twice")
	}
	e.didRun = true
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.proc.done {
			continue
		}
		e.now = ev.at
		e.running = ev.proc
		ev.proc.resume <- struct{}{}
		<-e.yield
		e.running = nil
		if e.panicV != nil {
			panic(e.panicV)
		}
	}
	if e.live > 0 {
		var names []string
		for _, p := range e.procs {
			names = append(names, p.name)
		}
		sort.Strings(names)
		panic(fmt.Sprintf("sim: deadlock — %d process(es) blocked with no pending events: %v", e.live, names))
	}
	return e.now
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// ID returns the process's unique id (sequential from 1 per Env).
func (p *Proc) ID() int { return p.id }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Done returns an event that fires when the process body has returned.
func (p *Proc) Done() *Event { return p.doneEv }

// block hands control back to the scheduler without scheduling a wake-up;
// some other process must wake us via env.schedule(p, ...).
func (p *Proc) block() {
	p.env.yield <- struct{}{}
	<-p.resume
}

// Block parks the process with no scheduled wake-up; some other process must
// call Env.Wake(p). This is the primitive for building custom queues and
// condition variables (e.g. the NVMe submission queue).
func (p *Proc) Block() { p.block() }

// Wake schedules a parked process to resume at the current virtual time.
func (e *Env) Wake(p *Proc) { e.schedule(p, e.now) }

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero. Sleep(0) still yields, letting same-time events interleave
// in FIFO order.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p, p.env.now.Add(d))
	p.block()
}

// Yield lets other runnable processes at the current instant proceed.
func (p *Proc) Yield() { p.Sleep(0) }

// Resource is a FIFO resource with a fixed number of interchangeable servers
// (e.g. CPU cores, an SSD channel, a DMA engine). Acquire blocks until a
// server is free; waiters are granted strictly in arrival order.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	// freeAt holds per-server completion times for Reserve-mode resources.
	freeAt []Time

	// accounting
	busy        Duration // total server-busy virtual time
	acquires    int64
	lastChange  Time
	utilWeight  float64 // integral of inUse over time, for Utilization
	createdAt   Time
	maxObserved int
}

// NewResource creates a resource with the given server count (capacity >= 1).
func NewResource(e *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: e, name: name, capacity: capacity, createdAt: e.now, lastChange: e.now}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held servers.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes blocked waiting for a server.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) accumulate() {
	now := r.env.now
	r.utilWeight += float64(r.inUse) * float64(now-r.lastChange)
	r.lastChange = now
}

// Acquire obtains one server, blocking in FIFO order until one is available.
func (p *Proc) Acquire(r *Resource) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.accumulate()
		r.inUse++
		if r.inUse > r.maxObserved {
			r.maxObserved = r.inUse
		}
		r.acquires++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block()
	// Release granted us the server before waking us.
}

// Release returns one server to the resource and wakes the oldest waiter.
func (p *Proc) Release(r *Resource) {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		// Hand the server directly to the next waiter: inUse stays constant.
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.acquires++
		r.env.schedule(next, r.env.now)
		return
	}
	r.accumulate()
	r.inUse--
}

// Reserve books the earliest-available server for d of virtual time without
// blocking the caller, returning the completion timestamp. This is the
// queue-depth model for device channels: a caller can reserve several
// channels at once and SleepUntil the latest completion, getting parallel
// I/O across channels. A resource must be used either exclusively through
// Acquire/Use or exclusively through Reserve — mixing the two would let
// reservations jump the FIFO queue.
func (r *Resource) Reserve(d Duration) Time {
	if d < 0 {
		d = 0
	}
	if r.freeAt == nil {
		r.freeAt = make([]Time, r.capacity)
	}
	best := 0
	for i := 1; i < r.capacity; i++ {
		if r.freeAt[i] < r.freeAt[best] {
			best = i
		}
	}
	start := r.env.now
	if r.freeAt[best] > start {
		start = r.freeAt[best]
	}
	r.freeAt[best] = start.Add(d)
	r.busy += d
	r.acquires++
	return r.freeAt[best]
}

// SleepUntil suspends the process until the given virtual timestamp (no-op
// if it is in the past).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.env.now {
		return
	}
	p.Sleep(Duration(t - p.env.now))
}

// Use acquires a server, holds it for d of virtual time, and releases it.
// This is the workhorse for charging CPU or channel busy time.
func (p *Proc) Use(r *Resource, d Duration) {
	if d < 0 {
		d = 0
	}
	p.Acquire(r)
	r.busy += d
	p.Sleep(d)
	p.Release(r)
}

// BusyTime returns the total virtual time servers of r have been held via Use.
func (r *Resource) BusyTime() Duration { return r.busy }

// Acquires returns the number of grants performed.
func (r *Resource) Acquires() int64 { return r.acquires }

// MaxInUse returns the high-water mark of concurrently held servers.
func (r *Resource) MaxInUse() int { return r.maxObserved }

// NextFree returns the earliest virtual time any server sheds its
// reservations (never before now). Inspection only — no side effects — for
// Reserve-mode resources like device channels; a value after now means the
// resource has a backlog.
func (r *Resource) NextFree() Time {
	if r.freeAt == nil {
		return r.env.now
	}
	best := r.freeAt[0]
	for _, t := range r.freeAt[1:] {
		if t < best {
			best = t
		}
	}
	if best < r.env.now {
		return r.env.now
	}
	return best
}

// Utilization reports mean busy servers / capacity over the resource lifetime.
func (r *Resource) Utilization() float64 {
	r.accumulate()
	elapsed := float64(r.env.now - r.createdAt)
	if elapsed <= 0 {
		return 0
	}
	return r.utilWeight / (elapsed * float64(r.capacity))
}

// Event is a one-shot broadcast: processes Wait on it; Signal wakes all
// current and future waiters (waiting on an already-signalled event returns
// immediately).
type Event struct {
	env     *Env
	fired   bool
	at      Time
	waiters []*Proc
}

// NewEvent creates an unfired event.
func NewEvent(e *Env) *Event { return &Event{env: e} }

// Fired reports whether Signal has been called.
func (ev *Event) Fired() bool { return ev.fired }

// FiredAt returns the virtual time Signal was called; valid only if Fired.
func (ev *Event) FiredAt() Time { return ev.at }

// Signal fires the event, waking every waiter at the current virtual time.
// Signalling twice is a no-op.
func (ev *Event) Signal() {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.at = ev.env.now
	for _, w := range ev.waiters {
		ev.env.schedule(w, ev.env.now)
	}
	ev.waiters = nil
}

// Wait blocks the process until the event fires. Returns immediately if it
// already has.
func (p *Proc) Wait(ev *Event) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.block()
}

// WaitAll blocks until every event in evs has fired.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// Join waits for all given processes to finish.
func (p *Proc) Join(procs ...*Proc) {
	for _, q := range procs {
		p.Wait(q.Done())
	}
}

// Gauge tracks a time-weighted value (e.g. queue depth, DRAM in use) for
// reporting mean and max over a run. Set/Add run on the simulation goroutine;
// Value and Max may be read concurrently (the live telemetry endpoint polls
// them), so the fields are mutex-guarded. Mean reads the environment's
// current time and is only meaningful from the simulation goroutine.
type Gauge struct {
	env    *Env
	mu     sync.Mutex
	val    float64
	max    float64
	weight float64
	last   Time
	start  Time
}

// NewGauge creates a gauge starting at zero.
func NewGauge(e *Env) *Gauge { return &Gauge{env: e, last: e.now, start: e.now} }

// Set records a new instantaneous value.
func (g *Gauge) Set(v float64) {
	now := g.env.now
	g.mu.Lock()
	g.weight += g.val * float64(now-g.last)
	g.last = now
	g.val = v
	if v > g.max {
		g.max = v
	}
	g.mu.Unlock()
}

// Add increments the current value by delta.
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	v := g.val + delta
	g.mu.Unlock()
	g.Set(v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val
}

// Max returns the maximum value observed.
func (g *Gauge) Max() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Mean returns the time-weighted mean value since creation.
func (g *Gauge) Mean() float64 {
	now := g.env.now
	g.mu.Lock()
	defer g.mu.Unlock()
	elapsed := float64(now - g.start)
	if elapsed <= 0 {
		return g.val
	}
	return (g.weight + g.val*float64(now-g.last)) / elapsed
}

// TransferTime returns the virtual time needed to move n bytes over a link
// with the given bandwidth in bytes/second, rounded up to whole nanoseconds.
func TransferTime(n int64, bytesPerSec float64) Duration {
	if n <= 0 || bytesPerSec <= 0 {
		return 0
	}
	ns := float64(n) / bytesPerSec * 1e9
	return Duration(math.Ceil(ns))
}

// SortedResourceNames is a test helper: returns names sorted, for stable output.
func SortedResourceNames(rs []*Resource) []string {
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.name
	}
	sort.Strings(names)
	return names
}
